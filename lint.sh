#!/bin/sh
# Repo lint: fail on uninitialized Bytes.create outside the allowlist.
#
# Bytes.create returns UNINITIALIZED memory; everywhere the repo needs
# zeroed bytes it must use Bytes.make n '\000' (CLAUDE.md gotcha — a
# Guest_mem or loader built on Bytes.create would leak heap garbage into
# the "guest"). The files below are audited: every Bytes.create there is
# immediately and fully overwritten (codec output buffers, synthetic
# image section builders, a read_file that really_input-fills it).
# Add a file here only after checking the same holds.

set -eu
cd "$(dirname "$0")"

allowlist='
lib/bootstrap/loader.ml
lib/compress/bwt.ml
lib/compress/bzip2.ml
lib/compress/codec.ml
lib/compress/gzip.ml
lib/compress/lz4.ml
lib/compress/lz77.ml
lib/compress/lzma.ml
lib/compress/lzo.ml
lib/compress/mtf.ml
lib/compress/xz.ml
lib/elf/note.ml
lib/elf/parser.ml
lib/elf/relocation.ml
lib/guest/boot_params.ml
lib/kernel/image.ml
lib/kernel/initrd.ml
lib/kernel/rootfs.ml
lib/monitor/snapshot.ml
bin/relocs.ml
'

status=0
for f in $(find lib bin bench examples -name '*.ml' 2>/dev/null | sort); do
  case "$allowlist" in
  *"
$f
"*) continue ;;
  esac
  if grep -n 'Bytes\.create' "$f"; then
    echo "lint: $f uses Bytes.create (uninitialized) and is not allowlisted" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: use Bytes.make n '\\000', or audit the use and extend lint.sh" >&2
fi

# Catch-all exception handlers in lib/ mask the typed failure taxonomy:
# `try ... with _ ->` absorbs Guest_panic and Corrupt alike, and the
# fault campaign's soundness check (zero silent successes) only means
# something if no library code swallows exceptions blind. Match the
# specific exception, or classify through Imk_fault.Failure.classify
# (which re-raises what it cannot place). No file is currently
# allowlisted; add one only with a comment proving the handler cannot
# hide a typed boot failure.
catchall_allowlist='
'

for f in $(find lib -name '*.ml' 2>/dev/null | sort); do
  case "$catchall_allowlist" in
  *"
$f
"*) continue ;;
  esac
  if grep -n 'with[[:space:]]*_[[:space:]]*->' "$f"; then
    echo "lint: $f has a catch-all exception handler; match specific exceptions" >&2
    status=1
  fi
done

# Telemetry must flow as raw floats from Experiments.output to the
# BENCH_<exp>.json writer. Re-parsing numbers out of rendered table
# cells is the bug class behind the old value_column heuristic (any
# header ending in "ms" — "atoms", "programs" — got read as
# milliseconds), so float-from-string conversion is banned in
# lib/harness/ outright: parsing belongs in Imk_util.Minjson, rendering
# in Imk_util.Table, and the harness passes structured summaries
# between them.
for f in $(find lib/harness -name '*.ml' 2>/dev/null | sort); do
  if grep -n 'float_of_string' "$f"; then
    echo "lint: $f parses floats from strings; feed telemetry raw floats instead" >&2
    status=1
  fi
done

# Unchecked memory access is allowed only under the audited
# unsafe-after-validation pattern (DESIGN.md §4): a bounds proof
# established up front — Kraft-validated decode tables whose every entry
# was range-checked at build time, a refill loop whose guard is the
# bounds check, an LZ77 copy whose window arithmetic was validated
# before the byte loop. Each allowlisted file carries a comment stating
# the proof next to each unsafe access; extend the list only with both
# the audit and the comment. Everything else goes through the checked
# accessors (Guest_mem, Byteio) — one stray unsafe_set corrupts guest
# memory silently instead of raising Fault/Corrupt.
unsafe_allowlist='
lib/compress/bitio.ml
lib/compress/huffman.ml
lib/compress/lz77.ml
lib/util/crc.ml
'

for f in $(find lib bin bench examples -name '*.ml' 2>/dev/null | sort); do
  case "$unsafe_allowlist" in
  *"
$f
"*) continue ;;
  esac
  if grep -n '\(Bytes\|Array\)\.unsafe_\(get\|set\)' "$f"; then
    echo "lint: $f uses unchecked access; use checked accessors, or audit the use and extend lint.sh" >&2
    status=1
  fi
done

# Guest_mem.raw escapes the backing store from the write tracker, so it
# conservatively dirties the whole guest — one call turns the next Arena
# scrub into a whole-guest re-zero and (for Snapshot.capture's old
# full-image path) copies 100x more bytes than a boot wrote. Production
# code observes guests through the read-only accessors instead
# (fold_dirty_ranges / blit_to_bytes / crc32_range). No production file
# is currently allowlisted; tests may use raw for byte-equality and
# backing-store identity assertions (the scan skips test/).
raw_allowlist='
'

for f in $(find lib bin bench examples -name '*.ml' 2>/dev/null | sort); do
  case "$raw_allowlist" in
  *"
$f
"*) continue ;;
  esac
  if grep -n 'Guest_mem\.raw' "$f"; then
    echo "lint: $f calls Guest_mem.raw (whole-guest dirty); use the read-only accessors" >&2
    status=1
  fi
done

# Polymorphic compare in the hot sorts of the randomization and ELF
# layers costs a C call per comparison and (worse) silently "works" on
# any type, hiding a key change. The layout/relocation sorts run on
# every boot; they must spell out a monomorphic comparator
# (Int.compare / String.compare on each field) instead of passing the
# stdlib's `compare` to sort.
for f in $(find lib/randomize lib/elf -name '*.ml' 2>/dev/null | sort); do
  if grep -n 'sort\(_uniq\)\?[[:space:]]\+compare' "$f"; then
    echo "lint: $f sorts with polymorphic compare; use a monomorphic comparator (Int.compare per field)" >&2
    status=1
  fi
done

exit "$status"
