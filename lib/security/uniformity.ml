let chi_square ~observed =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Uniformity.chi_square: no bins";
  let total = Array.fold_left ( + ) 0 observed in
  if total = 0 then invalid_arg "Uniformity.chi_square: no samples";
  let expected = float_of_int total /. float_of_int k in
  Array.fold_left
    (fun acc o ->
      let d = float_of_int o -. expected in
      acc +. (d *. d /. expected))
    0. observed

let z_of_alpha = function
  | 0.05 -> 1.6449
  | 0.01 -> 2.3263
  | 0.001 -> 3.0902
  | a -> invalid_arg (Printf.sprintf "Uniformity.critical_value: alpha %g" a)

(* Wilson–Hilferty: chi2_q ≈ df (1 - 2/(9 df) + z sqrt(2/(9 df)))^3 *)
let critical_value ~df ~alpha =
  let z = z_of_alpha alpha in
  let d = float_of_int df in
  let t = 1. -. (2. /. (9. *. d)) +. (z *. sqrt (2. /. (9. *. d))) in
  d *. t *. t *. t

type verdict = {
  slots : int;
  draws : int;
  statistic : float;
  threshold : float;
  uniform : bool;
}

let verdict ~observed ~draws =
  let slots = Array.length observed in
  let statistic = chi_square ~observed in
  let threshold = critical_value ~df:(slots - 1) ~alpha:0.01 in
  { slots; draws; statistic; threshold; uniform = statistic < threshold }

let test_virtual_offsets ~image_memsz ~draws ~seed =
  let slots = Imk_randomize.Kaslr.virtual_slots ~image_memsz in
  let observed = Array.make slots 0 in
  let master = Imk_entropy.Prng.create ~seed in
  let lo = Imk_memory.Addr.kmap_base + Imk_memory.Addr.default_phys_load in
  let first = Imk_memory.Addr.align_up lo Imk_memory.Addr.kernel_align in
  for _ = 1 to draws do
    (* each boot gets a fresh generator, as VM instances do *)
    let rng = Imk_entropy.Prng.split master in
    let base = Imk_randomize.Kaslr.choose_virtual rng ~image_memsz in
    let slot = (base - first) / Imk_memory.Addr.kernel_align in
    observed.(slot) <- observed.(slot) + 1
  done;
  verdict ~observed ~draws

let test_permutation_positions ~sections ~draws ~seed =
  let observed = Array.make sections 0 in
  let master = Imk_entropy.Prng.create ~seed in
  for _ = 1 to draws do
    let rng = Imk_entropy.Prng.split master in
    let perm = Imk_entropy.Shuffle.permutation rng sections in
    (* position of element 0 after the shuffle *)
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) perm;
    observed.(!pos) <- observed.(!pos) + 1
  done;
  verdict ~observed ~draws

let test_permutation_matrix ~sections ~draws ~seed =
  (* full element x position contingency table: a shuffle biased for any
     element, not just element 0, shows up here. Under uniformity the
     counts matrix of a random permutation is doubly constrained (rows
     and columns each sum to [draws]), so the statistic is asymptotically
     chi-square with (s-1)^2 degrees of freedom, not s^2 - 1 — build the
     verdict by hand rather than through [verdict]. *)
  let counts = Array.make_matrix sections sections 0 in
  let master = Imk_entropy.Prng.create ~seed in
  for _ = 1 to draws do
    let rng = Imk_entropy.Prng.split master in
    let perm = Imk_entropy.Shuffle.permutation rng sections in
    Array.iteri (fun e p -> counts.(e).(p) <- counts.(e).(p) + 1) perm
  done;
  let expected = float_of_int draws /. float_of_int sections in
  let statistic =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc o ->
            let d = float_of_int o -. expected in
            acc +. (d *. d /. expected))
          acc row)
      0. counts
  in
  let df = (sections - 1) * (sections - 1) in
  let threshold = critical_value ~df ~alpha:0.01 in
  {
    slots = sections * sections;
    draws;
    statistic;
    threshold;
    uniform = statistic < threshold;
  }

let test_pool_bit_balance ~source ~draws ~seed =
  (* each of the 64 bit positions of [Pool.draw_u64] should be set in
     half the draws. Per bit the (ones, zeros) pair is a 2-bin chi-square
     with one degree of freedom; bits are independent under the null, so
     the summed statistic has df = 64 — again not [verdict]'s slots-1. *)
  let bits = 64 in
  let ones = Array.make bits 0 in
  let pool = Imk_entropy.Pool.create source ~seed in
  for _ = 1 to draws do
    let v = Imk_entropy.Pool.draw_u64 pool in
    for b = 0 to bits - 1 do
      if Int64.logand (Int64.shift_right_logical v b) 1L = 1L then
        ones.(b) <- ones.(b) + 1
    done
  done;
  let half = float_of_int draws /. 2. in
  let statistic =
    Array.fold_left
      (fun acc o ->
        let d = float_of_int o -. half in
        acc +. (2. *. d *. d /. half))
      0. ones
  in
  let threshold = critical_value ~df:bits ~alpha:0.01 in
  {
    slots = bits;
    draws;
    statistic;
    threshold;
    uniform = statistic < threshold;
  }
