(** Statistical check of offset-selection uniformity.

    §4.3 claims in-monitor randomization provides "entropy equivalent to
    that of Linux" because the slot-selection algorithm is shared. The
    entropy claim needs every aligned slot to be equiprobable — a biased
    generator would silently lose bits. This module tests that with a
    chi-square goodness-of-fit over many independent offset draws, using
    the Wilson–Hilferty approximation for the critical value (exact
    enough at hundreds of degrees of freedom). *)

val chi_square : observed:int array -> float
(** [chi_square ~observed] is the statistic against the uniform
    expectation (total/slots per bin). Raises [Invalid_argument] on empty
    input or zero total. *)

val critical_value : df:int -> alpha:float -> float
(** [critical_value ~df ~alpha] approximates the upper-[alpha] quantile
    of the chi-square distribution (supported [alpha]: 0.05, 0.01,
    0.001). *)

type verdict = {
  slots : int;
  draws : int;
  statistic : float;
  threshold : float;  (** critical value at the 1% level *)
  uniform : bool;  (** statistic below threshold *)
}

val test_virtual_offsets : image_memsz:int -> draws:int -> seed:int64 -> verdict
(** [test_virtual_offsets ~image_memsz ~draws ~seed] draws KASLR virtual
    bases with fresh generators (split per draw, as VM boots are) and
    tests slot uniformity at the 1% level. *)

val test_permutation_positions : sections:int -> draws:int -> seed:int64 -> verdict
(** [test_permutation_positions ~sections ~draws ~seed] checks FGKASLR's
    shuffle: where the {e first} section lands must be uniform over all
    positions. *)

val test_permutation_matrix : sections:int -> draws:int -> seed:int64 -> verdict
(** [test_permutation_matrix ~sections ~draws ~seed] tests the whole
    element × position contingency table of {!Imk_entropy.Shuffle}
    permutations — a bias affecting any element is visible, not only
    element 0. The doubly-constrained counts give (sections-1)² degrees
    of freedom; [slots] reports sections². Use [draws] ≥ 5 × sections per
    cell rule of thumb. *)

val test_pool_bit_balance :
  source:Imk_entropy.Pool.source -> draws:int -> seed:int64 -> verdict
(** [test_pool_bit_balance ~source ~draws ~seed] draws 64-bit words from
    an {!Imk_entropy.Pool} of the given kind and checks every bit
    position is set in half the draws (summed per-bit chi-square,
    df = 64). A stuck or correlated bit in either entropy source would
    silently halve KASLR entropy; this is the direct check. *)
