(** A pool that recycles {!Guest_mem} buffers across boots.

    The repeated-boot harness allocates one guest memory per boot;
    faulting in a fresh zeroed 256 MiB buffer each time costs far more
    real time than the boot's actual data movement. The arena keeps
    released buffers and scrubs only their dirty extent (the bytes the
    previous boot wrote), so a recycled buffer is observably identical to
    a fresh [Guest_mem.create ~size]: all-zero and with an empty dirty
    extent. This is also a security property of the simulator — no bytes
    of a previous guest may survive into the next one — and is enforced
    by a qcheck property in [test/test_memory.ml].

    Virtual-clock accounting is unaffected: boots charge zeroing costs
    through [Imk_vclock.Charge] exactly as before; only real allocation
    work is removed ("virtual time, real work", DESIGN.md §4.1).

    All operations are thread-safe; one arena may serve a whole domain
    pool. *)

type t

val create : ?max_per_size:int -> ?max_bytes:int -> unit -> t
(** [create ()] makes an empty arena. At most [max_per_size] free buffers
    are retained per distinct size (default
    [max 2 (Domain.recommended_domain_count ())] — enough for every
    worker of a default-size domain pool), and at most [max_bytes] in
    total (default 8 GiB); releases beyond either bound simply drop the
    buffer for the GC, so the arena degrades to today's
    allocate-per-boot behaviour rather than hoarding memory. *)

val borrow : t -> size:int -> Guest_mem.t
(** [borrow t ~size] returns an all-zero guest memory of exactly [size]
    bytes — recycled if a buffer of that size is free, freshly allocated
    otherwise. The caller owns it until {!release}. *)

val release : t -> Guest_mem.t -> unit
(** [release t mem] scrubs [mem] (zeroing its dirty extent) and returns
    it to the pool. The caller must not use [mem] afterwards. Buffers
    borrowed elsewhere may also be released here, as long as every write
    to them went through the [Guest_mem] API ([Guest_mem.raw] marks the
    whole guest dirty, so even that is safe — just slow to scrub). *)

val with_buffer : t -> size:int -> (Guest_mem.t -> 'a) -> 'a
(** [with_buffer t ~size f] brackets {!borrow} and {!release}: [f] runs
    with a fresh-equivalent buffer, and the buffer is scrubbed and
    returned to the pool whether [f] returns or raises. This is the
    exception-safe way to run a boot against the arena — a fault-injected
    boot that dies mid-run must not leak its buffer or poison the pool
    with a dirty one. [f] must not retain the buffer past its return. *)

val pooled_bytes : t -> int
(** Total bytes currently held in free lists. *)

val stats : t -> int * int
(** [(hits, misses)] — borrows served from the pool vs fresh
    allocations, for telemetry and tests. *)
