(* Guest-memory arena: recycle Guest_mem buffers across boots.

   Allocating and page-fault-zeroing a fresh 256 MiB guest for every boot
   dominates the harness's wall clock (the virtual clock charges for
   zeroing stay with the boot path — this pool only removes the *real*
   allocation work, per the "virtual time, real work" rule). Buffers are
   scrubbed on release, so a borrowed buffer is indistinguishable from a
   fresh [Guest_mem.create]: all-zero, empty dirty extent, no bytes from
   the previous tenant. Firecracker wins the same way by recycling microVM
   resources across instantiations.

   The pool is shared between domains (the harness fans boots out over a
   domain pool), so the free lists live behind a mutex. Scrubbing happens
   outside the lock. *)

type t = {
  lock : Mutex.t;
  free : (int, Guest_mem.t list) Hashtbl.t;  (* size -> scrubbed buffers *)
  max_per_size : int;
  max_bytes : int;
  mutable pooled_bytes : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?max_per_size ?(max_bytes = 8 * 1024 * 1024 * 1024) () =
  let max_per_size =
    match max_per_size with
    | Some n ->
        if n < 0 then invalid_arg "Arena.create: negative max_per_size";
        n
    | None -> max 2 (Domain.recommended_domain_count ())
  in
  {
    lock = Mutex.create ();
    free = Hashtbl.create 4;
    max_per_size;
    max_bytes;
    pooled_bytes = 0;
    hits = 0;
    misses = 0;
  }

let borrow t ~size =
  if size <= 0 then invalid_arg "Arena.borrow: non-positive size";
  Mutex.lock t.lock;
  let reused =
    match Hashtbl.find_opt t.free size with
    | Some (m :: rest) ->
        Hashtbl.replace t.free size rest;
        t.pooled_bytes <- t.pooled_bytes - size;
        t.hits <- t.hits + 1;
        Some m
    | Some [] | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.lock;
  match reused with Some m -> m | None -> Guest_mem.create ~size

let release t mem =
  (* the expensive part — zeroing the dirty extent — runs outside the
     lock so concurrent borrowers are not serialized behind it *)
  Guest_mem.scrub mem;
  let size = Guest_mem.size mem in
  Mutex.lock t.lock;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.free size) in
  if
    List.length existing < t.max_per_size
    && t.pooled_bytes + size <= t.max_bytes
  then begin
    Hashtbl.replace t.free size (mem :: existing);
    t.pooled_bytes <- t.pooled_bytes + size
  end;
  (* otherwise drop it on the floor for the GC — the pool is full *)
  Mutex.unlock t.lock

let with_buffer t ~size f =
  let mem = borrow t ~size in
  match f mem with
  | v ->
      release t mem;
      v
  | exception e ->
      (* the bracket's whole point: a boot that dies mid-run must neither
         leak its buffer nor return it unscrubbed — release scrubs *)
      release t mem;
      raise e

let pooled_bytes t =
  Mutex.lock t.lock;
  let n = t.pooled_bytes in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  s
