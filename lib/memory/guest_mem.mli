(** Guest physical memory.

    A flat byte array addressed by guest-physical address starting at 0 —
    the memory a VMM allocates for a microVM. All accesses are
    bounds-checked: an out-of-range access is a guest triple-fault in real
    life and a typed error here. The module is pure data movement; boot
    paths charge virtual-clock costs separately (DESIGN.md §4.1). *)

type t

exception Fault of string
(** Raised on out-of-bounds access, with a description of the access. *)

val create : size:int -> t
(** [create ~size] allocates zeroed guest memory. *)

val size : t -> int

val dirty_extent : t -> (int * int) option
(** [dirty_extent t] is the smallest [(lo, hi)] half-open byte range
    covering every write since creation or the last {!scrub}, or [None]
    if nothing was written. Internally writes are tracked as a small
    bounded set of ranges (so a boot that dirties bootinfo pages low in
    the guest and a randomized image high in it does not dirty the gap);
    this returns their envelope. Taking {!raw} conservatively dirties the
    whole guest, since writes through it are invisible to the tracker. *)

val scrub : t -> unit
(** [scrub t] zeroes every dirty range and resets the tracker, restoring
    the all-zero state of a fresh [create] while touching only the bytes
    a previous user actually wrote — the cheap half of recycling guest
    memory through {!Arena}. Real work only; virtual-clock zeroing
    charges are the boot path's business, exactly as for [create]. *)

val write_bytes : t -> pa:int -> bytes -> unit
(** [write_bytes t ~pa b] copies all of [b] to physical address [pa]. *)

val write_sub : t -> pa:int -> src:bytes -> src_off:int -> len:int -> unit

val read_bytes : t -> pa:int -> len:int -> bytes

val copy_within : t -> src:int -> dst:int -> len:int -> unit
(** [copy_within t ~src ~dst ~len] moves a region inside guest memory —
    what the bootstrap loader does when copying the compressed kernel out
    of the way or copying text during FGKASLR. Overlap-safe. *)

val zero : t -> pa:int -> len:int -> unit

val valid : t -> pa:int -> len:int -> bool
(** [valid t ~pa ~len] is true when [\[pa, pa+len)] lies inside guest
    memory — the test a batch caller runs before committing to
    {!with_validated_range}, falling back to per-site checked accessors
    (and their per-site error messages) when it fails. *)

val with_validated_range : t -> pa:int -> len:int -> (bytes -> 'a) -> 'a
(** [with_validated_range t ~pa ~len f] bounds-checks and dirties
    [\[pa, pa+len)] once, then passes the backing store to [f] for
    direct [Imk_util.Byteio] access — one check + one dirty-tracker
    update for a whole run of nearby sites instead of one per access.
    The contract is the audited unsafe-after-validation pattern
    (DESIGN.md §4): [f] must confine every write to the validated range,
    or the dirty-extent tracker goes dishonest and recycled arenas leak
    stale bytes. Raises {!Fault} if the range is out of bounds. Reads
    outside the range are harmless to the tracker but get no bounds
    protection beyond the byte array's own. *)

val get_u8 : t -> pa:int -> int
val get_u32 : t -> pa:int -> int
val set_u32 : t -> pa:int -> int -> unit
val get_u32_signed : t -> pa:int -> int
val get_addr : t -> pa:int -> int
val set_addr : t -> pa:int -> int -> unit

val get_i64 : t -> pa:int -> int64
(** [get_i64 t ~pa] reads 8 raw bytes without the native-int range check
    of {!get_addr} — for probing memory that may hold arbitrary data
    (e.g. an attacker guessing at function magics). *)

val raw : t -> bytes
(** [raw t] exposes the backing store for read-mostly bulk operations
    (e.g. byte-equality checks in tests). Because writes through the
    escaped buffer are invisible to the tracker, taking [raw]
    conservatively dirties the whole guest — which turns the next
    {!Arena} scrub into a full re-zero. Production code must use the
    read-only accessors below instead ([lint.sh] bans new [raw] call
    sites outside an explicit allowlist). *)

val fold_dirty_ranges :
  t -> init:'a -> f:('a -> lo:int -> hi:int -> 'a) -> 'a
(** [fold_dirty_ranges t ~init ~f] folds [f] over the dirty ranges as
    sorted, merged half-open [\[lo, hi)] intervals — every byte written
    since creation or the last {!scrub}, each seen exactly once. Read
    only: the tracker is not modified, so capturing a snapshot from the
    fold leaves the guest's scrub cost untouched. *)

val blit_to_bytes : t -> pa:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** [blit_to_bytes t ~pa ~dst ~dst_off ~len] copies [len] bytes starting
    at physical address [pa] into [dst] at [dst_off] without going
    through {!raw} — a read, so the dirty tracker is untouched. Raises
    {!Fault} if the source range is outside guest memory and
    [Invalid_argument] if the destination range is out of bounds. *)

val crc32_range : t -> pa:int -> len:int -> int
(** [crc32_range t ~pa ~len] is the CRC-32 of the given physical range,
    computed on the backing store without copying and without touching
    the dirty tracker — the page-hashing / layout-probe primitive.
    Raises {!Fault} if the range is out of bounds. *)
