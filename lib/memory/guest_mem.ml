type t = {
  data : bytes;
  mutable dirty_lo : int;  (* lowest byte written since the last scrub *)
  mutable dirty_hi : int;  (* one past the highest byte written *)
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create ~size =
  if size <= 0 then invalid_arg "Guest_mem.create: non-positive size";
  { data = Bytes.make size '\000'; dirty_lo = max_int; dirty_hi = 0 }

let size t = Bytes.length t.data

let check t pa len what =
  if pa < 0 || len < 0 || pa + len > Bytes.length t.data then
    fault "%s at %#x+%d outside guest memory of %d bytes" what pa len
      (Bytes.length t.data)

(* every mutation widens the dirty extent; scrubbing only has to erase
   the bytes a boot actually touched, not the whole guest *)
let touch t pa len =
  if len > 0 then begin
    if pa < t.dirty_lo then t.dirty_lo <- pa;
    if pa + len > t.dirty_hi then t.dirty_hi <- pa + len
  end

let dirty_extent t = if t.dirty_hi <= t.dirty_lo then None else Some (t.dirty_lo, t.dirty_hi)

let scrub t =
  (match dirty_extent t with
  | None -> ()
  | Some (lo, hi) -> Bytes.fill t.data lo (hi - lo) '\000');
  t.dirty_lo <- max_int;
  t.dirty_hi <- 0

let write_bytes t ~pa b =
  check t pa (Bytes.length b) "write";
  touch t pa (Bytes.length b);
  Bytes.blit b 0 t.data pa (Bytes.length b)

let write_sub t ~pa ~src ~src_off ~len =
  check t pa len "write";
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Guest_mem.write_sub: source range";
  touch t pa len;
  Bytes.blit src src_off t.data pa len

let read_bytes t ~pa ~len =
  check t pa len "read";
  Bytes.sub t.data pa len

let copy_within t ~src ~dst ~len =
  check t src len "copy source";
  check t dst len "copy destination";
  touch t dst len;
  Bytes.blit t.data src t.data dst len

let zero t ~pa ~len =
  check t pa len "zero";
  touch t pa len;
  Bytes.fill t.data pa len '\000'

let get_u8 t ~pa =
  check t pa 1 "read u8";
  Imk_util.Byteio.get_u8 t.data pa

let get_u32 t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32 t.data pa

let set_u32 t ~pa v =
  check t pa 4 "write u32";
  touch t pa 4;
  Imk_util.Byteio.set_u32 t.data pa v

let get_u32_signed t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32_signed t.data pa

let get_addr t ~pa =
  check t pa 8 "read u64";
  Imk_util.Byteio.get_addr t.data pa

let set_addr t ~pa v =
  check t pa 8 "write u64";
  touch t pa 8;
  Imk_util.Byteio.set_addr t.data pa v

let get_i64 t ~pa =
  check t pa 8 "read i64";
  Imk_util.Byteio.get_i64 t.data pa

let raw t =
  (* the backing store escapes the write-tracking API: assume the whole
     guest is dirty so arena recycling can never leak stale bytes *)
  touch t 0 (Bytes.length t.data);
  t.data
