(* Dirty bytes are tracked as a small bounded set of disjoint-ish ranges
   rather than one envelope: a KASLR boot writes bootinfo pages low in the
   guest and the relocated image wherever entropy placed it, and a single
   [lo, hi) extent would span the gap and make recycling re-zero almost the
   whole guest. A handful of ranges keeps [scrub] proportional to bytes
   actually written. *)
let max_ranges = 8

type t = {
  data : bytes;
  range_lo : int array;  (* [max_ranges] slots; first [nranges] are live *)
  range_hi : int array;  (* one past the highest byte of each range *)
  mutable nranges : int;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create ~size =
  if size <= 0 then invalid_arg "Guest_mem.create: non-positive size";
  {
    data = Bytes.make size '\000';
    range_lo = Array.make max_ranges 0;
    range_hi = Array.make max_ranges 0;
    nranges = 0;
  }

let size t = Bytes.length t.data

let check t pa len what =
  if pa < 0 || len < 0 || pa + len > Bytes.length t.data then
    fault "%s at %#x+%d outside guest memory of %d bytes" what pa len
      (Bytes.length t.data)

(* every mutation lands in some dirty range; scrubbing only has to erase
   the bytes a boot actually touched, not the whole guest *)
let touch t pa len =
  if len > 0 then begin
    let lo = pa and hi = pa + len in
    let n = t.nranges in
    let rec grow j =
      if j >= n then false
      else if lo <= t.range_hi.(j) && hi >= t.range_lo.(j) then begin
        (* overlaps or abuts range [j]: widen it in place. The widened
           range may now overlap a sibling; scrub just fills a few bytes
           twice, which costs less than re-normalizing on every write. *)
        if lo < t.range_lo.(j) then t.range_lo.(j) <- lo;
        if hi > t.range_hi.(j) then t.range_hi.(j) <- hi;
        true
      end
      else grow (j + 1)
    in
    if not (grow 0) then
      if n < max_ranges then begin
        t.range_lo.(n) <- lo;
        t.range_hi.(n) <- hi;
        t.nranges <- n + 1
      end
      else begin
        (* out of slots: fold into the nearest range, over-approximating
           the dirty set (never under — recycled buffers must come back
           all-zero) while bounding tracker size *)
        let best = ref 0 and best_gap = ref max_int in
        for j = 0 to n - 1 do
          let gap =
            if lo > t.range_hi.(j) then lo - t.range_hi.(j)
            else if hi < t.range_lo.(j) then t.range_lo.(j) - hi
            else 0
          in
          if gap < !best_gap then begin
            best_gap := gap;
            best := j
          end
        done;
        let j = !best in
        if lo < t.range_lo.(j) then t.range_lo.(j) <- lo;
        if hi > t.range_hi.(j) then t.range_hi.(j) <- hi
      end
  end

let dirty_extent t =
  if t.nranges = 0 then None
  else begin
    let lo = ref max_int and hi = ref 0 in
    for j = 0 to t.nranges - 1 do
      if t.range_lo.(j) < !lo then lo := t.range_lo.(j);
      if t.range_hi.(j) > !hi then hi := t.range_hi.(j)
    done;
    Some (!lo, !hi)
  end

let scrub t =
  for j = 0 to t.nranges - 1 do
    Bytes.fill t.data t.range_lo.(j) (t.range_hi.(j) - t.range_lo.(j)) '\000'
  done;
  t.nranges <- 0

let write_bytes t ~pa b =
  check t pa (Bytes.length b) "write";
  touch t pa (Bytes.length b);
  Bytes.blit b 0 t.data pa (Bytes.length b)

let write_sub t ~pa ~src ~src_off ~len =
  check t pa len "write";
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Guest_mem.write_sub: source range";
  touch t pa len;
  Bytes.blit src src_off t.data pa len

let read_bytes t ~pa ~len =
  check t pa len "read";
  Bytes.sub t.data pa len

let copy_within t ~src ~dst ~len =
  check t src len "copy source";
  check t dst len "copy destination";
  touch t dst len;
  Bytes.blit t.data src t.data dst len

let zero t ~pa ~len =
  check t pa len "zero";
  touch t pa len;
  Bytes.fill t.data pa len '\000'

let valid t ~pa ~len = pa >= 0 && len >= 0 && pa + len <= Bytes.length t.data

let with_validated_range t ~pa ~len f =
  check t pa len "validated run";
  touch t pa len;
  f t.data

let get_u8 t ~pa =
  check t pa 1 "read u8";
  Imk_util.Byteio.get_u8 t.data pa

let get_u32 t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32 t.data pa

let set_u32 t ~pa v =
  check t pa 4 "write u32";
  touch t pa 4;
  Imk_util.Byteio.set_u32 t.data pa v

let get_u32_signed t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32_signed t.data pa

let get_addr t ~pa =
  check t pa 8 "read u64";
  Imk_util.Byteio.get_addr t.data pa

let set_addr t ~pa v =
  check t pa 8 "write u64";
  touch t pa 8;
  Imk_util.Byteio.set_addr t.data pa v

let get_i64 t ~pa =
  check t pa 8 "read i64";
  Imk_util.Byteio.get_i64 t.data pa

let raw t =
  (* the backing store escapes the write-tracking API: assume the whole
     guest is dirty so arena recycling can never leak stale bytes *)
  touch t 0 (Bytes.length t.data);
  t.data

(* --- read-only bulk accessors: none of these touch the dirty tracker,
   which is the point — snapshot capture and page hashing must observe a
   guest without inflating the next arena scrub into a whole-guest
   re-zero (the failure mode of going through [raw]) --- *)

let fold_dirty_ranges t ~init ~f =
  let n = t.nranges in
  if n = 0 then init
  else begin
    (* normalize the tracker's possibly-overlapping slots into sorted,
       merged ranges so callers see each dirty byte exactly once *)
    let rs = Array.init n (fun j -> (t.range_lo.(j), t.range_hi.(j))) in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) rs;
    let acc = ref init in
    let lo = ref (fst rs.(0)) and hi = ref (snd rs.(0)) in
    for j = 1 to n - 1 do
      let l, h = rs.(j) in
      if l <= !hi then begin
        if h > !hi then hi := h
      end
      else begin
        acc := f !acc ~lo:!lo ~hi:!hi;
        lo := l;
        hi := h
      end
    done;
    f !acc ~lo:!lo ~hi:!hi
  end

let blit_to_bytes t ~pa ~dst ~dst_off ~len =
  check t pa len "read blit";
  if dst_off < 0 || len > Bytes.length dst - dst_off then
    invalid_arg "Guest_mem.blit_to_bytes: destination range";
  Bytes.blit t.data pa dst dst_off len

let crc32_range t ~pa ~len =
  check t pa len "crc probe";
  Imk_util.Crc.crc32 t.data pa len
