type t = {
  trace : Trace.t;
  cm : Cost_model.t;
  jitter : Imk_entropy.Prng.t option;
  sched : Sched.timeline option;
  mutable deadline : Deadline.t option;
}

let create ?jitter ?sched trace cm =
  (match sched with
  | Some tl when not (Sched.timeline_clock tl == Trace.clock trace) ->
      invalid_arg "Charge.create: trace does not record against the timeline"
  | _ -> ());
  { trace; cm; jitter; sched; deadline = None }

let trace t = t.trace
let model t = t.cm
let clock t = Trace.clock t.trace
let set_deadline t d = t.deadline <- d
let deadline t = t.deadline

let span t phase label f =
  Trace.with_span t.trace phase label (fun () ->
      let v = f () in
      (* the phase boundary: the span's work is done and charged; an
         armed over-budget deadline aborts here, never mid-transform *)
      (match t.deadline with None -> () | Some d -> Deadline.check d);
      v)

let jittered t ns =
  match t.jitter with
  | None -> ns
  | Some rng -> Cost_model.jitter t.cm rng ns

let pay t ns =
  let ns = jittered t ns in
  match t.sched with
  | None -> Clock.advance (Trace.clock t.trace) ns
  | Some _ -> Sched.wait ns

let pay_using t r ns =
  let ns = jittered t ns in
  match t.sched with
  | None -> Clock.advance (Trace.clock t.trace) ns
  | Some _ -> Sched.busy r ns

let pay_span t phase label ns = span t phase label (fun () -> pay t ns)
