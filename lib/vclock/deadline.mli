(** Virtual-time deadlines: a budget attached to a clock.

    A deadline is the first timer-like facility on the virtual clock (a
    stepping stone toward a discrete-event core): code keeps doing real
    work and charging it as usual, and the budget is enforced at phase
    boundaries — {!Charge.span} calls {!check} when a span closes, so an
    over-budget boot attempt aborts at the first phase boundary past the
    limit with a typed {!Exceeded}, which
    [Imk_fault.Failure.classify] maps to [Deadline_exceeded].

    Checking only at span boundaries is deliberate: a phase's data
    transformation always completes and its cost always lands on the
    clock before the overrun is observed, exactly like a supervisor that
    polls a wall-clock timeout between phases rather than preempting
    mid-memcpy. *)

type t

exception Exceeded of string
(** Raised by {!check} once the clock has passed the limit. The message
    names the deadline and the overrun, e.g.
    ["boot-attempt: budget 5000000 ns overrun by 41000 ns"]. *)

val arm : Clock.t -> label:string -> budget_ns:int -> t
(** [arm clk ~label ~budget_ns] starts a budget of [budget_ns] virtual
    nanoseconds from the clock's current time. Raises [Invalid_argument]
    on a non-positive budget. *)

val rearm : t -> budget_ns:int -> unit
(** [rearm t ~budget_ns] grants a fresh budget starting now (a retried
    attempt gets a clean slate). *)

val disarm : t -> unit
(** [disarm t] suspends enforcement — {!check} never raises until the
    next {!rearm}. Supervisors disarm the deadline while paying for
    recovery (backoff, re-derivation) between attempts. *)

val armed : t -> bool

val budget_ns : t -> int
(** The budget granted by the last {!arm}/{!rearm}. *)

val label : t -> string

val remaining_ns : t -> int
(** Budget left before {!check} raises; [max_int] while disarmed, 0 when
    already past the limit. *)

val exceeded : t -> bool
(** [exceeded t] is true once the clock has passed the limit (without
    raising). *)

val check : t -> unit
(** [check t] raises {!Exceeded} if the clock has passed the limit.
    Called by {!Charge.span} at every span close. *)
