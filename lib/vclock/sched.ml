type rclass = Disk | Decompress

let rclass_name = function Disk -> "disk" | Decompress -> "decompress"
let rclass_index = function Disk -> 0 | Decompress -> 1

(* Pending events keyed by (time, seq): seq is a global counter stamped
   at push, so ties resolve in schedule order and the interleaving is a
   pure function of the charges. Parallel arrays, as in lib/fleet/sim.ml
   — the payload array holds the event actions. *)
module Heap = struct
  type 'a t = {
    mutable keys : int array;
    mutable seqs : int array;
    mutable payloads : 'a array;
    dummy : 'a;
    mutable len : int;
  }

  let create ~dummy =
    {
      keys = Array.make 64 0;
      seqs = Array.make 64 0;
      payloads = Array.make 64 dummy;
      dummy;
      len = 0;
    }

  let len t = t.len

  let lt t i j =
    t.keys.(i) < t.keys.(j)
    || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

  let swap t i j =
    let k = t.keys.(i) in
    t.keys.(i) <- t.keys.(j);
    t.keys.(j) <- k;
    let s = t.seqs.(i) in
    t.seqs.(i) <- t.seqs.(j);
    t.seqs.(j) <- s;
    let v = t.payloads.(i) in
    t.payloads.(i) <- t.payloads.(j);
    t.payloads.(j) <- v

  let push t ~key ~seq payload =
    if t.len = Array.length t.keys then begin
      let grow a fill =
        let b = Array.make (2 * t.len) fill in
        Array.blit a 0 b 0 t.len;
        b
      in
      t.keys <- grow t.keys 0;
      t.seqs <- grow t.seqs 0;
      t.payloads <- grow t.payloads t.dummy
    end;
    t.keys.(t.len) <- key;
    t.seqs.(t.len) <- seq;
    t.payloads.(t.len) <- payload;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && lt t !i ((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      swap t !i p;
      i := p
    done

  let min_key t =
    if t.len = 0 then invalid_arg "Sched.Heap.min_key: empty";
    t.keys.(0)

  let min_seq t =
    if t.len = 0 then invalid_arg "Sched.Heap.min_seq: empty";
    t.seqs.(0)

  let pop t =
    if t.len = 0 then invalid_arg "Sched.Heap.pop: empty";
    let payload = t.payloads.(0) in
    t.len <- t.len - 1;
    t.keys.(0) <- t.keys.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.payloads.(0) <- t.payloads.(t.len);
    t.payloads.(t.len) <- t.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.len && lt t l !s then s := l;
      if r < t.len && lt t r !s then s := r;
      if !s = !i then continue := false
      else begin
        swap t !s !i;
        i := !s
      end
    done;
    payload
end

type timeline = { id : int; clock : Clock.t }

type waiter = {
  w_req : int;
  w_tl : timeline;
  w_ns : int;
  w_k : (unit, unit) Effect.Deep.continuation;
}

type resource = {
  capacity : int;
  mutable in_use : int;
  mutable peak_in_use : int;
  waiters : waiter Queue.t;
  mutable acquires : int;
  mutable releases : int;
  mutable grant_log : int list; (* request ids, most recent grant first *)
}

type t = {
  heap : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable now : int;
  mutable next_tl : int;
  mutable live : int; (* fibers spawned and not yet completed *)
  mutable failures : (int * exn) list; (* (timeline id, exn), latest first *)
  resources : resource array; (* indexed by rclass_index *)
}

type rstats = {
  capacity : int;
  acquires : int;
  releases : int;
  peak_in_use : int;
  grant_order : int list;
}

type _ Effect.t +=
  | Wait : int -> unit Effect.t
  | Busy : rclass * int -> unit Effect.t

let make_resource capacity =
  {
    capacity;
    in_use = 0;
    peak_in_use = 0;
    waiters = Queue.create ();
    acquires = 0;
    releases = 0;
    grant_log = [];
  }

let create ?(disk_capacity = 1) ?(decompress_slots = 1) () =
  if disk_capacity < 1 then invalid_arg "Sched.create: disk capacity < 1";
  if decompress_slots < 1 then invalid_arg "Sched.create: decompress slots < 1";
  {
    heap = Heap.create ~dummy:ignore;
    seq = 0;
    now = 0;
    next_tl = 0;
    live = 0;
    failures = [];
    resources = [| make_resource disk_capacity; make_resource decompress_slots |];
  }

let timeline t =
  let id = t.next_tl in
  t.next_tl <- id + 1;
  { id; clock = Clock.create () }

let timeline_clock tl = tl.clock
let now t = t.now

let push_event t ~time act =
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.heap ~key:time ~seq act

(* a fiber only runs at its own clock time, so resume can never need to
   move a clock backward; if it would, scheduling itself is broken *)
let sync_clock t tl =
  let d = t.now - Clock.now tl.clock in
  if d < 0 then invalid_arg "Sched: timeline clock ahead of the scheduler";
  if d > 0 then Clock.advance tl.clock d

(* grant one unit: hold for [ns], then release and hand the freed unit
   to the next queued request (FIFO) before resuming the holder. Grants
   can only ever happen in request order — a request is granted
   immediately only when no one queues ([in_use < capacity] implies an
   empty queue), otherwise from the queue head on release. *)
let rec grant t res ~req ~tl ~ns k =
  res.in_use <- res.in_use + 1;
  if res.in_use > res.peak_in_use then res.peak_in_use <- res.in_use;
  res.grant_log <- req :: res.grant_log;
  push_event t ~time:(t.now + ns) (fun () ->
      res.in_use <- res.in_use - 1;
      res.releases <- res.releases + 1;
      (match Queue.take_opt res.waiters with
      | Some w -> grant t res ~req:w.w_req ~tl:w.w_tl ~ns:w.w_ns w.w_k
      | None -> ());
      sync_clock t tl;
      Effect.Deep.continue k ())

let spawn ?(at = 0) t tl f =
  if at < 0 then invalid_arg "Sched.spawn: negative start time";
  t.live <- t.live + 1;
  push_event t ~time:at (fun () ->
      sync_clock t tl;
      Effect.Deep.match_with f ()
        {
          Effect.Deep.retc = (fun () -> t.live <- t.live - 1);
          exnc =
            (fun e ->
              t.live <- t.live - 1;
              t.failures <- (tl.id, e) :: t.failures);
          effc =
            (fun (type a) (eff : a Effect.t) :
                 ((a, unit) Effect.Deep.continuation -> unit) option ->
              match eff with
              | Wait ns ->
                  Some
                    (fun k ->
                      push_event t ~time:(t.now + ns) (fun () ->
                          sync_clock t tl;
                          Effect.Deep.continue k ()))
              | Busy (r, ns) ->
                  Some
                    (fun k ->
                      let res = t.resources.(rclass_index r) in
                      res.acquires <- res.acquires + 1;
                      let req = res.acquires in
                      if res.in_use < res.capacity then
                        grant t res ~req ~tl ~ns k
                      else
                        Queue.add
                          { w_req = req; w_tl = tl; w_ns = ns; w_k = k }
                          res.waiters)
              | _ -> None);
        })

let run t =
  while Heap.len t.heap > 0 do
    let time = Heap.min_key t.heap in
    let act = Heap.pop t.heap in
    if time < t.now then invalid_arg "Sched.run: event in the past";
    t.now <- time;
    act ()
  done;
  if t.live > 0 then
    invalid_arg "Sched.run: fibers still blocked on an empty heap";
  Array.iteri
    (fun i res ->
      if res.in_use <> 0 || not (Queue.is_empty res.waiters) then
        invalid_arg
          (Printf.sprintf "Sched.run: %s resource not drained"
             (rclass_name (if i = 0 then Disk else Decompress))))
    t.resources;
  match List.rev t.failures with
  | [] -> ()
  | (_, e) :: _ -> raise e

let wait ns =
  if ns < 0 then invalid_arg "Sched.wait: negative duration";
  Effect.perform (Wait ns)

let busy r ns =
  if ns < 0 then invalid_arg "Sched.busy: negative duration";
  Effect.perform (Busy (r, ns))

let resource_stats t r =
  let res = t.resources.(rclass_index r) in
  {
    capacity = res.capacity;
    acquires = res.acquires;
    releases = res.releases;
    peak_in_use = res.peak_in_use;
    grant_order = List.rev res.grant_log;
  }
