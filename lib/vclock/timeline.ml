type stamp = { arrival_ns : int; start_ns : int; finish_ns : int }

let stamp ~arrival_ns ~start_ns ~finish_ns =
  if arrival_ns < 0 then
    invalid_arg
      (Printf.sprintf "Timeline.stamp: negative arrival %d" arrival_ns);
  if start_ns < arrival_ns then
    invalid_arg
      (Printf.sprintf "Timeline.stamp: start %d before arrival %d" start_ns
         arrival_ns);
  if finish_ns < start_ns then
    invalid_arg
      (Printf.sprintf "Timeline.stamp: finish %d before start %d" finish_ns
         start_ns);
  { arrival_ns; start_ns; finish_ns }

let queue_wait_ns s = s.start_ns - s.arrival_ns
let service_ns s = s.finish_ns - s.start_ns
let sojourn_ns s = s.finish_ns - s.arrival_ns
