(** Discrete-event virtual-time scheduler (DESIGN.md §10).

    The linear {!Clock} charges one boot's costs in program order; this
    module generalizes it to many interleaved boot timelines advancing
    through a single event heap, with contended resources — shared
    disk-read bandwidth and a bounded pool of decompress slots — modeled
    as FIFO queues whose waits stretch the charged spans of concurrent
    boots.

    Each boot runs as a fiber ([spawn]) against its own {!timeline},
    whose embedded {!Clock.t} is the one its {!Trace.t} records against.
    Charging suspends the fiber ({!wait}/{!busy} perform an effect); the
    scheduler resumes fibers strictly in [(time, seq)] order, advancing
    each timeline's clock to the event time on resume. Real work between
    charges moves no virtual time, so a fiber's clock always equals the
    scheduler's [now] while it runs — deciding resource availability at
    perform time is exact, never a causality violation.

    Solo equivalence (the {e event-core-solo} oracle, DESIGN.md §8): a
    single fiber never queues, so every charge advances its clock by
    exactly the charged amount and the recorded spans are identical —
    labels, order and instants — to the linear clock's. *)

type t
(** One shared event timeline: a heap of pending events plus the
    contended resources. Single-domain; never share across workers. *)

type timeline
(** One boot's virtual timeline: an identity plus a private {!Clock.t}
    the scheduler advances at each resume. *)

type rclass =
  | Disk  (** shared disk-read bandwidth (image/blob reads) *)
  | Decompress  (** bounded pool of per-core decompress slots *)

val rclass_name : rclass -> string
(** ["disk"] / ["decompress"], for stats rows and error text. *)

val create : ?disk_capacity:int -> ?decompress_slots:int -> unit -> t
(** [create ()] is an empty scheduler at time 0. Capacities default to 1
    (full contention); [Invalid_argument] if either is below 1. *)

val timeline : t -> timeline
(** [timeline t] mints a fresh timeline (and clock) at time 0. *)

val timeline_clock : timeline -> Clock.t
(** The clock a {!Trace.t} (and {!Deadline}) for this timeline must
    record against — {!Charge.create} checks the identity. *)

val spawn : ?at:int -> t -> timeline -> (unit -> unit) -> unit
(** [spawn t tl f] schedules fiber [f] to start on [tl] at virtual time
    [at] (default 0). [f]'s charges must go through a scheduled
    {!Charge} bound to [tl] (or {!wait}/{!busy} directly). An exception
    escaping [f] is captured and re-raised by {!run} — the fiber holds
    no resource while running ({!busy} is atomic), so nothing leaks. *)

val run : t -> unit
(** Drain the event heap: process events in [(time, seq)] order until
    every fiber has completed. Re-raises the chronologically first fiber
    exception (deterministic), after the remaining fibers finish.
    [Invalid_argument] if fibers remain blocked on an empty heap or a
    resource is still held — both indicate a scheduler bug, not user
    error. *)

val now : t -> int
(** Current scheduler time; after {!run}, the makespan (the time the
    last event fired). *)

val wait : int -> unit
(** [wait ns] suspends the calling fiber for [ns] virtual nanoseconds
    (an uncontended charge). [Invalid_argument] on negative [ns],
    mirroring {!Clock.advance}. Raises [Effect.Unhandled] outside a
    {!spawn}ed fiber. *)

val busy : rclass -> int -> unit
(** [busy r ns] occupies one unit of [r] for [ns] virtual nanoseconds:
    acquire (queueing FIFO behind earlier requests while [r] is at
    capacity), hold for [ns], release — atomically from the fiber's view,
    so the fiber can never exit while holding a slot. The fiber's clock
    on return includes any queue wait, which is how contention stretches
    the enclosing span. *)

type rstats = {
  capacity : int;
  acquires : int;  (** requests issued (granted or still queued) *)
  releases : int;  (** holds completed; equals [acquires] after {!run} *)
  peak_in_use : int;  (** high-water concurrent holds; never > capacity *)
  grant_order : int list;
      (** 1-based request ids in grant order — FIFO iff ascending *)
}

val resource_stats : t -> rclass -> rstats
(** Conservation/FIFO counters for the test suites (DESIGN.md §10). *)

(** The event heap, exposed for the qcheck ordering property: dequeue
    order must equal a stable sort by [(key, seq)]. Parallel int arrays
    (the [lib/fleet/sim.ml] pattern) — no per-event allocation. *)
module Heap : sig
  type 'a t

  val create : dummy:'a -> 'a t
  (** [dummy] backfills popped slots so payloads don't leak. *)

  val len : 'a t -> int
  val push : 'a t -> key:int -> seq:int -> 'a -> unit

  val min_key : 'a t -> int
  (** Key of the minimum element; [Invalid_argument] when empty. *)

  val min_seq : 'a t -> int
  (** Sequence number of the minimum element. *)

  val pop : 'a t -> 'a
  (** Remove and return the minimum element's payload. *)
end
