(** Charging context: a trace, a cost model, and optional run-to-run
    jitter.

    Boot paths thread one of these through their phases instead of three
    separate values. When a jitter generator is present every payment is
    perturbed by ~1% gaussian noise, producing the min/max spread the
    paper's error bars show; without one, boots are exactly
    deterministic (the mode tests use). *)

type t

val create : ?jitter:Imk_entropy.Prng.t -> Trace.t -> Cost_model.t -> t
val trace : t -> Trace.t
val model : t -> Cost_model.t
val clock : t -> Clock.t

val set_deadline : t -> Deadline.t option -> unit
(** [set_deadline t d] attaches (or detaches, with [None]) a virtual-time
    budget. While attached, every {!span} close calls {!Deadline.check},
    so charging past the budget raises {!Deadline.Exceeded} at the next
    phase boundary. A fresh context has no deadline. *)

val deadline : t -> Deadline.t option

val span : t -> Trace.phase -> string -> (unit -> 'a) -> 'a
(** [span t phase label f] is [Trace.with_span] on the context's trace,
    followed by a {!Deadline.check} when a deadline is attached — phase
    boundaries are where overruns surface. *)

val pay : t -> int -> unit
(** [pay t ns] advances the clock by [ns] (jittered when enabled). *)

val pay_span : t -> Trace.phase -> string -> int -> unit
(** [pay_span t phase label ns] opens a span just to charge [ns]. *)
