(** Charging context: a trace, a cost model, and optional run-to-run
    jitter.

    Boot paths thread one of these through their phases instead of three
    separate values. When a jitter generator is present every payment is
    perturbed by ~1% gaussian noise, producing the min/max spread the
    paper's error bars show; without one, boots are exactly
    deterministic (the mode tests use).

    A context is either {e linear} (the default: payments advance the
    trace's clock directly, exactly as before the event core existed) or
    {e scheduled} ([~sched]: payments suspend the calling {!Sched}
    fiber, and the scheduler advances the timeline's clock at resume —
    including any queue wait behind other boots). Solo scheduled boots
    charge identical spans to linear ones (the event-core-solo oracle,
    DESIGN.md §8/§10). *)

type t

val create :
  ?jitter:Imk_entropy.Prng.t -> ?sched:Sched.timeline -> Trace.t -> Cost_model.t -> t
(** [create trace cm] is a linear context. With [~sched:tl] payments go
    through the event scheduler instead; [trace] must record against
    [Sched.timeline_clock tl] (checked, [Invalid_argument]) so spans and
    deadlines observe the scheduled time. *)

val trace : t -> Trace.t
val model : t -> Cost_model.t
val clock : t -> Clock.t

val set_deadline : t -> Deadline.t option -> unit
(** [set_deadline t d] attaches (or detaches, with [None]) a virtual-time
    budget. While attached, every {!span} close calls {!Deadline.check},
    so charging past the budget raises {!Deadline.Exceeded} at the next
    phase boundary. A fresh context has no deadline. *)

val deadline : t -> Deadline.t option

val span : t -> Trace.phase -> string -> (unit -> 'a) -> 'a
(** [span t phase label f] is [Trace.with_span] on the context's trace,
    followed by a {!Deadline.check} when a deadline is attached — phase
    boundaries are where overruns surface. In scheduled mode the span's
    instants come off the timeline's clock, so queue waits inside [f]
    stretch the span and deadlines still fire at span close. *)

val pay : t -> int -> unit
(** [pay t ns] advances the clock by [ns] (jittered when enabled). In
    scheduled mode the calling fiber suspends for [ns] instead — an
    uncontended charge, identical to linear for a solo boot. *)

val pay_using : t -> Sched.rclass -> int -> unit
(** [pay_using t r ns] is {!pay} through contended resource [r]: in
    scheduled mode the fiber occupies one unit of [r] for [ns] (queueing
    FIFO while [r] is saturated, which stretches the enclosing span); in
    linear mode it is exactly [pay t ns]. Boot paths classify their
    disk reads as {!Sched.Disk} and codec decompression as
    {!Sched.Decompress}. *)

val pay_span : t -> Trace.phase -> string -> int -> unit
(** [pay_span t phase label ns] opens a span just to charge [ns]. *)
