type t = {
  clk : Clock.t;
  label : string;
  mutable budget_ns : int;
  mutable limit_ns : int; (* absolute deadline; max_int while disarmed *)
}

exception Exceeded of string

let arm clk ~label ~budget_ns =
  if budget_ns <= 0 then invalid_arg "Deadline.arm: non-positive budget";
  { clk; label; budget_ns; limit_ns = Clock.now clk + budget_ns }

let rearm t ~budget_ns =
  if budget_ns <= 0 then invalid_arg "Deadline.rearm: non-positive budget";
  t.budget_ns <- budget_ns;
  t.limit_ns <- Clock.now t.clk + budget_ns

let disarm t = t.limit_ns <- max_int
let armed t = t.limit_ns <> max_int
let budget_ns t = t.budget_ns
let label t = t.label

let remaining_ns t =
  if t.limit_ns = max_int then max_int
  else max 0 (t.limit_ns - Clock.now t.clk)

let exceeded t = Clock.now t.clk > t.limit_ns

let check t =
  let now = Clock.now t.clk in
  if now > t.limit_ns then
    raise
      (Exceeded
         (Printf.sprintf "%s: budget %d ns overrun by %d ns" t.label
            t.budget_ns (now - t.limit_ns)))
