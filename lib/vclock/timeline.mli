(** Request timestamps on the virtual clock.

    A serving simulation stamps every request three times — when it
    arrives, when a server starts booting for it, and when the boot
    finishes — all in virtual nanoseconds on the same axis the boot
    itself charges ({!Clock}). The derived intervals are the SLO
    quantities a fleet campaign reports: queue wait, service time and
    sojourn (arrival to finish).

    A stamp is validated at construction: time never runs backwards on
    the virtual clock, so [arrival <= start <= finish] always, and a
    violation is a scheduling bug that must surface immediately rather
    than flow into telemetry as a negative latency. *)

type stamp = private {
  arrival_ns : int;  (** when the request entered the system *)
  start_ns : int;  (** when a server began serving it *)
  finish_ns : int;  (** when its boot (or restore) completed *)
}

val stamp : arrival_ns:int -> start_ns:int -> finish_ns:int -> stamp
(** [stamp ~arrival_ns ~start_ns ~finish_ns] validates
    [0 <= arrival_ns <= start_ns <= finish_ns] and raises
    [Invalid_argument] otherwise. *)

val queue_wait_ns : stamp -> int
(** [start_ns - arrival_ns]: virtual time spent in the admission queue. *)

val service_ns : stamp -> int
(** [finish_ns - start_ns]: virtual time a server spent on the request. *)

val sojourn_ns : stamp -> int
(** [finish_ns - arrival_ns]: the latency the client observes. *)
