module Stats = Imk_util.Stats
module W = Imk_fault.Weather

type config = {
  arrival : Arrival.model;
  seed : int;
  requests : int;
  servers : int;
  pool_capacity : int;
  queue_capacity : int;
  cold_ns : int array;
  warm_ns : int array;
  fault_ns : int array;
  weather : W.t option;
  seams : Imk_fault.Inject.kind list;
}

type report = {
  requests : int;
  completed : int;
  dropped : int;
  cold_starts : int;
  warm_starts : int;
  fault_starts : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  hit_rate : float;
  distinct_layouts : int;
  sojourn : Stats.summary;
  cold_service : Stats.summary;
  warm_service : Stats.summary;
  fault_service : Stats.summary;
  queue_wait : Stats.summary;
  queue_depth : Stats.summary;
  makespan_ns : int;
}

(* binary min-heap of in-flight boots, keyed (finish_ns, seq): seq is
   the start order, so ties resolve deterministically and the completion
   order is a pure function of the schedule. Stored as parallel arrays —
   a record per push would mint a million short-lived blocks per cell,
   and at fleet scale minor-GC pressure is the scaling limit (every
   minor collection is a stop-the-world barrier across domains). *)
module Heap = struct
  type t = {
    mutable keys : int array;
    mutable seqs : int array;
    mutable insts : Pool.instance array;
    mutable len : int;
  }

  let dummy_inst = { Pool.id = 0; layout_seed = 0 }

  let create () =
    {
      keys = Array.make 64 0;
      seqs = Array.make 64 0;
      insts = Array.make 64 dummy_inst;
      len = 0;
    }

  let len t = t.len

  let lt t i j =
    t.keys.(i) < t.keys.(j)
    || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

  let swap t i j =
    let k = t.keys.(i) in
    t.keys.(i) <- t.keys.(j);
    t.keys.(j) <- k;
    let s = t.seqs.(i) in
    t.seqs.(i) <- t.seqs.(j);
    t.seqs.(j) <- s;
    let v = t.insts.(i) in
    t.insts.(i) <- t.insts.(j);
    t.insts.(j) <- v

  let push t ~key ~seq inst =
    if t.len = Array.length t.keys then begin
      let grow a fill =
        let b = Array.make (2 * t.len) fill in
        Array.blit a 0 b 0 t.len;
        b
      in
      t.keys <- grow t.keys 0;
      t.seqs <- grow t.seqs 0;
      t.insts <- grow t.insts dummy_inst
    end;
    t.keys.(t.len) <- key;
    t.seqs.(t.len) <- seq;
    t.insts.(t.len) <- inst;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && lt t !i ((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      swap t !i p;
      i := p
    done

  let min_key t =
    if t.len = 0 then invalid_arg "Sim.Heap.min_key: empty";
    t.keys.(0)

  (* returns the popped instance; read [min_key] first for its time *)
  let pop t =
    if t.len = 0 then invalid_arg "Sim.Heap.pop: empty";
    let inst = t.insts.(0) in
    t.len <- t.len - 1;
    t.keys.(0) <- t.keys.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.insts.(0) <- t.insts.(t.len);
    t.insts.(t.len) <- dummy_inst;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.len && lt t l !s then s := l;
      if r < t.len && lt t r !s then s := r;
      if !s = !i then continue := false
      else begin
        swap t !s !i;
        i := !s
      end
    done;
    inst
end

(* LSD radix sort on non-negative ints, 16-bit digits: the SLO sample
   buffers hold up to [requests] entries apiece, and summarizing them
   with [Array.sort Float.compare] costs a closure call per comparison —
   measured at more than half of a 1M-request cell's wall clock. Two to
   four counting passes replace the comparison sort; samples are virtual
   nanoseconds and queue depths, all >= 0 by construction. Returns the
   array holding the sorted prefix (either [a] or [scratch], whichever
   the final pass landed in). *)
let radix_sort ~scratch ~counts (a : int array) len =
  let max_v = ref 0 in
  for i = 0 to len - 1 do
    if a.(i) > !max_v then max_v := a.(i)
  done;
  let src = ref a and dst = ref scratch in
  let shift = ref 0 in
  while !max_v lsr !shift > 0 do
    Array.fill counts 0 65536 0;
    let s = !src and d = !dst in
    for i = 0 to len - 1 do
      let dgt = (s.(i) lsr !shift) land 0xFFFF in
      counts.(dgt) <- counts.(dgt) + 1
    done;
    let acc = ref 0 in
    for dgt = 0 to 65535 do
      let c = counts.(dgt) in
      counts.(dgt) <- !acc;
      acc := !acc + c
    done;
    for i = 0 to len - 1 do
      let v = s.(i) in
      let dgt = (v lsr !shift) land 0xFFFF in
      d.(counts.(dgt)) <- v;
      counts.(dgt) <- counts.(dgt) + 1
    done;
    let t = !src in
    src := !dst;
    dst := t;
    shift := !shift + 16
  done;
  !src

let validate cfg =
  Arrival.validate cfg.arrival;
  if cfg.requests < 0 then invalid_arg "Sim.run: negative requests";
  if cfg.servers < 1 then invalid_arg "Sim.run: servers must be >= 1";
  if cfg.queue_capacity < 0 then
    invalid_arg "Sim.run: negative queue_capacity";
  let samples what a ~required =
    if required && Array.length a = 0 then
      invalid_arg (Printf.sprintf "Sim.run: empty %s samples" what);
    Array.iter
      (fun ns ->
        if ns < 0 then
          invalid_arg (Printf.sprintf "Sim.run: negative %s sample" what))
      a
  in
  samples "cold_ns" cfg.cold_ns ~required:true;
  samples "warm_ns" cfg.warm_ns ~required:true;
  samples "fault_ns" cfg.fault_ns ~required:(cfg.weather <> None)

(* the layout fingerprint of a freshly booted instance: pure in
   (seed, id), the same allocation-free mix the arrival streams use —
   every cold boot randomizes a new layout, every warm reuse freezes
   one. Storm cells mint hundreds of thousands of instances, so this
   runs hot. *)
let layout_seed ~seed ~id =
  let h = ((seed * 2) + 3) * 0x9E3779B97F4A7C1 in
  let h = h + ((id + 1) * 0x2545F4914F6CDD1D) in
  let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
  h lxor (h lsr 31)

type start_class = Cold | Warm | Faulty

let run cfg =
  validate cfg;
  let n = cfg.requests in
  let pool = Pool.create ~capacity:cfg.pool_capacity in
  let heap = Heap.create () in
  let seq = ref 0 in
  (* admission queue as a ring of (request index, arrival) int pairs:
     bounded by queue_capacity, so it never grows and never allocates *)
  let qcap = max 1 cfg.queue_capacity in
  let q_idx = Array.make qcap 0 in
  let q_arr = Array.make qcap 0 in
  let q_head = ref 0 in
  let qlen = ref 0 in
  let free = ref cfg.servers in
  let next_id = ref 0 in
  (* SLO sample buffers hold raw virtual nanoseconds (and queue depths)
     as ints; they are converted to floats once, after the radix sort,
     when each summary is built *)
  let cap = max 1 n in
  let sojourn = Array.make cap 0 and n_all = ref 0 in
  let cold_s = Array.make cap 0 and n_cold = ref 0 in
  let warm_s = Array.make cap 0 and n_warm = ref 0 in
  let fault_s = Array.make cap 0 and n_fault = ref 0 in
  let wait_s = Array.make cap 0 in
  let depth = Array.make cap 0 in
  let dropped = ref 0 in
  let makespan = ref 0 in
  let cold_len = Array.length cfg.cold_ns in
  let warm_len = Array.length cfg.warm_ns in
  let fault_len = Array.length cfg.fault_ns in
  let classify index =
    match cfg.weather with
    | None -> `Normal
    | Some w -> (
        let fc = W.forecast w ~run:(index + 1) ~seams:cfg.seams in
        match fc.W.fault with
        | Some _ -> `Faulty
        | None -> if fc.W.cold then `Forced_cold else `Normal)
  in
  let fresh_instance () =
    let id = !next_id in
    incr next_id;
    { Pool.id; layout_seed = layout_seed ~seed:cfg.seed ~id }
  in
  (* begin serving request [index] at [now_ns]; the caller holds a free
     server. Latencies are recorded here — the finish time is already
     determined — and only the pool release waits for the completion
     event. The interval identities are Imk_vclock.Timeline's, inlined:
     wait = start - arrival, service = finish - start (the start-class
     cost), sojourn = wait + service; allocating a stamp per request is
     pure minor-GC pressure at fleet scale, and test_fleet pins the
     Timeline accessors to these identities. *)
  let start ~index ~arrival_ns ~now_ns =
    let cls, inst, cost =
      match classify index with
      | `Faulty ->
          (Faulty, fresh_instance (), cfg.fault_ns.(index mod fault_len))
      | `Forced_cold ->
          (Cold, fresh_instance (), cfg.cold_ns.(index mod cold_len))
      | `Normal -> (
          match Pool.acquire pool ~now_ns with
          | Some inst -> (Warm, inst, cfg.warm_ns.(index mod warm_len))
          | None -> (Cold, fresh_instance (), cfg.cold_ns.(index mod cold_len)))
    in
    let wait = now_ns - arrival_ns in
    let finish = now_ns + cost in
    sojourn.(!n_all) <- wait + cost;
    wait_s.(!n_all) <- wait;
    incr n_all;
    (* per-class rows carry the service time alone — what the start
       class cost, with queueing reported separately — so cold vs warm
       compares boot paths, not congestion *)
    (match cls with
    | Cold ->
        cold_s.(!n_cold) <- cost;
        incr n_cold
    | Warm ->
        warm_s.(!n_warm) <- cost;
        incr n_warm
    | Faulty ->
        fault_s.(!n_fault) <- cost;
        incr n_fault);
    if finish > !makespan then makespan := finish;
    decr free;
    incr seq;
    Heap.push heap ~key:finish ~seq:!seq inst
  in
  let start_queued ~now_ns =
    while !free > 0 && !qlen > 0 do
      let h = !q_head in
      q_head := (h + 1) mod qcap;
      decr qlen;
      start ~index:q_idx.(h) ~arrival_ns:q_arr.(h) ~now_ns
    done
  in
  (* retire every boot finishing at or before [t]: the instance goes
     back to the warm pool at its finish time, and queued requests start
     the moment a server frees — possibly finishing before [t] too,
     which is why the loop re-reads the heap minimum *)
  let complete_until t =
    while Heap.len heap > 0 && Heap.min_key heap <= t do
      let finish = Heap.min_key heap in
      let inst = Heap.pop heap in
      Pool.release pool inst ~now_ns:finish;
      incr free;
      start_queued ~now_ns:finish
    done
  in
  let t_arr = ref 0 in
  for i = 0 to n - 1 do
    t_arr := !t_arr + Arrival.gap_ns cfg.arrival ~seed:cfg.seed ~index:i;
    complete_until !t_arr;
    depth.(i) <- !qlen;
    if !free > 0 then start ~index:i ~arrival_ns:!t_arr ~now_ns:!t_arr
    else if !qlen < cfg.queue_capacity then begin
      let tail = (!q_head + !qlen) mod qcap in
      q_idx.(tail) <- i;
      q_arr.(tail) <- !t_arr;
      incr qlen
    end
    else incr dropped
  done;
  complete_until max_int;
  (* one scratch + counts pair serves all six summaries: each [summ]
     call radix-sorts its buffer and copies the sorted prefix out into
     the float array before the next call reuses the scratch space *)
  let scratch = Array.make cap 0 in
  let counts = Array.make 65536 0 in
  let summ a len =
    if len = 0 then Stats.empty
    else begin
      let sorted = radix_sort ~scratch ~counts a len in
      Stats.summarize_sorted (Array.init len (fun i -> float_of_int sorted.(i)))
    end
  in
  {
    requests = n;
    completed = !n_all;
    dropped = !dropped;
    cold_starts = !n_cold;
    warm_starts = !n_warm;
    fault_starts = !n_fault;
    pool_hits = Pool.hits pool;
    pool_misses = Pool.misses pool;
    pool_evictions = Pool.evictions pool;
    hit_rate = Pool.hit_rate pool;
    (* [layout_seed] is a bijection of [id] for a fixed seed — the
       affine step multiplies by an odd constant (invertible mod 2^63)
       and each xor-shift / odd-multiply finalizer round is invertible —
       and every minted instance serves the request that minted it, so
       the distinct-layout count is exactly the mint count. No hash
       table on the hot path. *)
    distinct_layouts = !next_id;
    sojourn = summ sojourn !n_all;
    cold_service = summ cold_s !n_cold;
    warm_service = summ warm_s !n_warm;
    fault_service = summ fault_s !n_fault;
    queue_wait = summ wait_s !n_all;
    queue_depth = summ depth n;
    makespan_ns = !makespan;
  }

let instantiation_rate ~cores ~window_ms samples =
  if cores < 1 then invalid_arg "Sim.instantiation_rate: cores must be >= 1";
  if Array.length samples = 0 then
    invalid_arg "Sim.instantiation_rate: empty samples";
  if not (Float.is_finite window_ms) || window_ms <= 0. then
    invalid_arg "Sim.instantiation_rate: window must be positive";
  Array.iter
    (fun s ->
      if not (Float.is_finite s) || s <= 0. then
        invalid_arg "Sim.instantiation_rate: samples must be positive")
    samples;
  let n = Array.length samples in
  let completed = ref 0 in
  let span_ms = ref 0. in
  for core = 0 to cores - 1 do
    let t = ref 0. and i = ref core in
    while !t < window_ms do
      t := !t +. samples.(!i mod n);
      if !t <= window_ms then begin
        incr completed;
        if !t > !span_ms then span_ms := !t
      end;
      incr i
    done
  done;
  if !completed = 0 then 0.
  else float_of_int !completed /. (!span_ms /. 1000.)
