(** Seed-deterministic request arrival models.

    A serving campaign needs a virtual-time stream of boot requests, not
    a fixed-size batch. The two models here cover the workloads the
    Firecracker studies describe: memoryless background traffic
    ([Poisson]) and thundering-herd invocation spikes ([Bursty], a
    periodic burst window at a higher rate — the open-loop analogue of
    {!Imk_fault.Weather}'s storm windows).

    Every inter-arrival gap is a pure function of
    [(model, seed, index)]: two workers asking for request [i]'s gap get
    the same answer, which is what lets a campaign shard a request
    stream without the shards drifting ("bit-identical for any
    [--jobs]"). *)

type model =
  | Poisson of { rate_per_s : float }
      (** memoryless arrivals at [rate_per_s] requests per virtual
          second; gaps are exponential *)
  | Bursty of {
      base_per_s : float;  (** rate outside burst windows *)
      burst_per_s : float;  (** rate inside burst windows *)
      burst_len : int;  (** requests per burst window *)
      period : int;  (** requests per full cycle; [burst_len <= period] *)
    }
      (** the first [burst_len] of every [period] consecutive request
          indices arrive at [burst_per_s], the rest at [base_per_s] *)

val model_name : model -> string
(** "poisson" / "bursty" — telemetry row labels. *)

val validate : model -> unit
(** Raises [Invalid_argument] on non-positive rates, non-finite rates,
    [burst_len < 0], [period <= 0] or [burst_len > period]. *)

val gap_ns : model -> seed:int -> index:int -> int
(** [gap_ns model ~seed ~index] is the virtual-nanosecond gap between
    request [index - 1] and request [index] (0-based; the first gap is
    from time 0). Pure in [(model, seed, index)] and at least 1 ns, so
    arrival times are strictly increasing. Raises like {!validate} on a
    malformed model and [Invalid_argument] on a negative [index]. *)

val arrivals : model -> seed:int -> n:int -> int array
(** [arrivals model ~seed ~n] is the absolute arrival time of each of
    the first [n] requests: the prefix sums of {!gap_ns}, strictly
    increasing. *)
