(** The deterministic serving simulator.

    One campaign cell: a virtual-time stream of boot requests
    ({!Arrival}) scheduled onto [servers] concurrent boot slots with a
    bounded warm pool ({!Pool}) and a bounded FIFO admission queue.
    Requests that find every server busy wait in the queue; requests
    that find the queue full are dropped. Every request is stamped on
    the virtual clock ({!Imk_vclock.Timeline}) and the report carries
    the SLO distributions: cold vs warm sojourn, queue wait, queue
    depth, pool hit rate, drop count.

    "Virtual time, real work" at fleet scale: a million requests cannot
    each run a real boot, so service costs are drawn from calibration
    samples measured on real supervised boots ([cold_ns]), real snapshot
    restores ([warm_ns]) and real fault-laden supervised boots with
    their recovery charged ([fault_ns]) — the same split the throughput
    experiment has always used, extended with scheduling. The draw is
    cyclic by request index, so every cost is a pure function of the
    request and the run is bit-identical however the campaign fans its
    cells over domains.

    The optional {!Imk_fault.Weather} overlay reads each request's
    forecast (pure in the request index): a drawn fault serves the
    request from the [fault_ns] samples on a fresh instance (supervised
    recovery included in the calibrated cost), and a cold-cache forecast
    forces a cold start even when warm instances are idle. Weather never
    consults the pool, so pool hit/miss counters describe exactly the
    requests that were free to use it. *)

type config = {
  arrival : Arrival.model;
  seed : int;  (** arrival gaps and instance layouts derive from it *)
  requests : int;
  servers : int;  (** concurrent boot slots; >= 1 *)
  pool_capacity : int;  (** warm-pool bound ({!Pool.create}) *)
  queue_capacity : int;  (** admission-queue bound; 0 = drop when busy *)
  cold_ns : int array;  (** calibrated cold-boot costs; non-empty *)
  warm_ns : int array;  (** calibrated warm-restore costs; non-empty *)
  fault_ns : int array;
      (** calibrated fault-laden boot costs, recovery included;
          non-empty whenever [weather] is present *)
  weather : Imk_fault.Weather.t option;
  seams : Imk_fault.Inject.kind list;
      (** seams the weather draws corruptions from; order matters, keep
          it fixed across a campaign *)
}

type report = {
  requests : int;
  completed : int;  (** served to completion; [completed + dropped = requests] *)
  dropped : int;  (** rejected at a full admission queue *)
  cold_starts : int;  (** served on a fresh instance (pool miss or forced) *)
  warm_starts : int;  (** served on a pooled warm instance *)
  fault_starts : int;  (** served under an armed weather fault *)
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  hit_rate : float;  (** [pool_hits / (pool_hits + pool_misses)] *)
  distinct_layouts : int;
      (** distinct instance layouts that served at least one request —
          the diversity a warm pool freezes and cold boots restore *)
  sojourn : Imk_util.Stats.summary;
      (** arrival-to-finish for all completed requests, ns — the SLO a
          client observes, queueing included *)
  cold_service : Imk_util.Stats.summary;
      (** start-to-finish of cold starts alone, ns — the boot path's
          cost with congestion factored out; {!Imk_util.Stats.empty}
          when none *)
  warm_service : Imk_util.Stats.summary;
  fault_service : Imk_util.Stats.summary;
  queue_wait : Imk_util.Stats.summary;  (** ns, all completed requests *)
  queue_depth : Imk_util.Stats.summary;
      (** queue length sampled at each arrival, before admission *)
  makespan_ns : int;  (** virtual time of the last completion *)
}

val run : config -> report
(** [run config] simulates the whole request stream. Pure: equal configs
    give equal reports. Raises [Invalid_argument] on a malformed config
    (bad arrival model, [servers < 1], negative counts or capacities,
    empty sample arrays, negative sample costs). *)

val instantiation_rate : cores:int -> window_ms:float -> float array -> float
(** [instantiation_rate ~cores ~window_ms samples] is the throughput
    experiment's platform metric: each core boots back to back, drawing
    cyclically from the sampled boot-time distribution (milliseconds),
    and boots completing within [window_ms] count. The rate divides by
    the actual elapsed span — the latest counted completion across
    cores — not by the full window: the final boot of a window rarely
    lands exactly on its edge, and dividing by the window biases the
    reported boots/sec low. [0.] when no boot fits the window. Raises
    [Invalid_argument] on [cores < 1], an empty [samples], or
    non-positive samples or window (the schedule would not advance). *)
