type instance = { id : int; layout_seed : int }

type t = {
  capacity : int;
  mutable idle : instance list;  (* most recently used first *)
  mutable n_idle : int;
  mutable last_ns : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Pool.create: negative capacity";
  {
    capacity;
    idle = [];
    n_idle = 0;
    last_ns = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let size t = t.n_idle

let touch t ~now_ns =
  if now_ns < t.last_ns then
    invalid_arg
      (Printf.sprintf "Pool: time ran backwards (%d after %d)" now_ns
         t.last_ns);
  t.last_ns <- now_ns

let acquire t ~now_ns =
  touch t ~now_ns;
  match t.idle with
  | [] ->
      t.misses <- t.misses + 1;
      None
  | inst :: rest ->
      t.idle <- rest;
      t.n_idle <- t.n_idle - 1;
      t.hits <- t.hits + 1;
      Some inst

(* drop the last element — the least recently used. The idle list never
   exceeds [capacity + 1] entries and capacities are small (a handful of
   resident instances per cell), so the linear walk is fine. *)
let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: tl -> x :: drop_last tl

let release t inst ~now_ns =
  touch t ~now_ns;
  if t.capacity = 0 then t.evictions <- t.evictions + 1
  else begin
    t.idle <- inst :: t.idle;
    t.n_idle <- t.n_idle + 1;
    if t.n_idle > t.capacity then begin
      t.idle <- drop_last t.idle;
      t.n_idle <- t.n_idle - 1;
      t.evictions <- t.evictions + 1
    end
  end

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
