(** A bounded warm pool of instances, LRU-evicted.

    The warm tier of the serving simulator: instances released after a
    boot stay resident (their guest memory recycled through
    {!Imk_memory.Arena} by the calibration boots, their randomized
    layout frozen) and the next request that finds one skips the cold
    boot. The pool is bounded — a host packs thousands of microVMs
    precisely because idle ones are evicted — and eviction is
    least-recently-used.

    Determinism contract: the pool is plain sequential state, one per
    campaign cell, driven with non-decreasing [now_ns] timestamps
    (enforced with [Invalid_argument] — LRU order degenerates silently
    if time runs backwards). {!acquire} returns the most recently used
    instance (the hottest), eviction drops the least recently used. *)

type instance = {
  id : int;  (** creation order within the cell, 0-based *)
  layout_seed : int;
      (** fingerprint of the instance's randomized layout — frozen for
          as long as the instance is reused warm *)
}

type t

val create : capacity:int -> t
(** [create ~capacity] is an empty pool retaining at most [capacity]
    idle instances. [capacity = 0] is legal (every release evicts, every
    acquire misses). Raises [Invalid_argument] on a negative capacity. *)

val capacity : t -> int

val size : t -> int
(** Idle instances currently pooled; never exceeds {!capacity}. *)

val acquire : t -> now_ns:int -> instance option
(** [acquire t ~now_ns] takes the most recently used idle instance, or
    [None] (a pool miss — the caller boots cold). Counted in
    {!hits}/{!misses}. *)

val release : t -> instance -> now_ns:int -> unit
(** [release t inst ~now_ns] returns a served instance to the pool as
    the most recently used. If the pool is full the least recently used
    idle instance is evicted (counted in {!evictions}); with
    [capacity = 0] the released instance itself is evicted. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)], or [0.] before any acquire. *)
