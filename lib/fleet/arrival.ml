type model =
  | Poisson of { rate_per_s : float }
  | Bursty of {
      base_per_s : float;
      burst_per_s : float;
      burst_len : int;
      period : int;
    }

let model_name = function Poisson _ -> "poisson" | Bursty _ -> "bursty"

let check_rate what r =
  if not (Float.is_finite r) || r <= 0. then
    invalid_arg (Printf.sprintf "Arrival: %s must be positive, got %g" what r)

let validate = function
  | Poisson { rate_per_s } -> check_rate "rate_per_s" rate_per_s
  | Bursty { base_per_s; burst_per_s; burst_len; period } ->
      check_rate "base_per_s" base_per_s;
      check_rate "burst_per_s" burst_per_s;
      if burst_len < 0 then invalid_arg "Arrival: burst_len must be >= 0";
      if period <= 0 then invalid_arg "Arrival: period must be >= 1";
      if burst_len > period then
        invalid_arg "Arrival: burst_len must not exceed period"

let rate_at model ~index =
  match model with
  | Poisson { rate_per_s } -> rate_per_s
  | Bursty { base_per_s; burst_per_s; burst_len; period } ->
      if index mod period < burst_len then burst_per_s else base_per_s

(* A splitmix-style finalizer on native ints: the same per-index stream
   idea Imk_fault.Weather uses, but allocation-free — gap_ns runs once
   per simulated request (tens of millions per campaign) and a boxed
   Int64 PRNG state here is pure GC pressure. 63-bit OCaml ints keep
   the multiply-xor-shift avalanche; constants fit in 62 bits. *)
let mix ~seed ~index =
  let h = ((seed * 2) + 1) * 0x9E3779B97F4A7C1 in
  let h = h + (index * 0x2545F4914F6CDD1D) in
  let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
  let h = (h lxor (h lsr 27)) * 0x14D049BB133111EB in
  h lxor (h lsr 31)

let gap_ns model ~seed ~index =
  validate model;
  if index < 0 then invalid_arg "Arrival.gap_ns: negative index";
  let rate = rate_at model ~index in
  (* 53 uniform mantissa bits, u in [0, 1) *)
  let u =
    float_of_int (mix ~seed ~index land ((1 lsl 53) - 1)) *. 0x1p-53
  in
  (* inverse-CDF exponential draw; log1p (-. u) is exact near u = 0 and
     finite for every u in [0, 1) *)
  let gap_s = -.log1p (-.u) /. rate in
  max 1 (int_of_float (gap_s *. 1e9))

let arrivals model ~seed ~n =
  if n < 0 then invalid_arg "Arrival.arrivals: negative n";
  let t = ref 0 in
  Array.init n (fun index ->
      t := !t + gap_ns model ~seed ~index;
      !t)
