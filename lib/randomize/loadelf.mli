(** Placing a kernel ELF into guest memory.

    Shared by the monitor (direct boot: "reads the kernel image one
    segment at a time directly into guest memory at the physical location
    specified by each program header", §5.2) and the bootstrap loader
    (which does the same copies from inside the guest, after
    decompression). With an FGKASLR {!Fgkaslr.plan}, function sections are
    placed at their shuffled addresses in the same pass — the one-pass
    advantage in-monitor randomization gets for free. *)

exception Load_error of string

val fn_sections : Imk_elf.Types.t -> (int * int) array
(** [(link va, size)] of every [.text.<fn>] section, ascending by VA.
    Empty for kernels not built with -ffunction-sections. *)

val alloc_sections : Imk_elf.Types.t -> Imk_elf.Types.section list
(** The SHF_ALLOC sections in file order — the list {!place} walks.
    Exposed so a boot-plan cache can derive it once per image. *)

val image_memsz : Imk_elf.Types.t -> int
(** Memory span of all allocatable sections (including NOBITS), from
    {!Imk_memory.Addr.link_base} to the last byte — what offset selection
    must leave room for. *)

val text_bytes : Imk_elf.Types.t -> int
(** Total bytes of executable sections — the copy volume FGKASLR's
    bootstrap path pays twice for (§5.2). *)

val place :
  Imk_memory.Guest_mem.t ->
  Imk_elf.Types.t ->
  phys_load:int ->
  plan:Fgkaslr.plan option ->
  unit
(** [place mem elf ~phys_load ~plan] copies every allocatable PROGBITS
    section to [phys_load + (va' - link_base)], where [va'] is the
    section's link VA, displaced by [plan] for function sections. NOBITS
    (.bss) regions are zeroed. Raises {!Load_error} if the image does not
    fit or sections fall outside memory. *)

val place_list :
  Imk_memory.Guest_mem.t ->
  Imk_elf.Types.section list ->
  phys_load:int ->
  plan:Fgkaslr.plan option ->
  unit
(** {!place} over a precomputed {!alloc_sections} list (the cached-plan
    path); the sections are only read, never mutated. *)
