open Imk_memory

type plan = {
  count : int;
  order : int array;
  old_va : int array;
  size : int array;
  new_va : int array;
  sorted_old : int array;
}

let validate_sections sections =
  let n = Array.length sections in
  for i = 1 to n - 1 do
    let prev_va, prev_sz = sections.(i - 1) in
    let va, _ = sections.(i) in
    if va < prev_va + prev_sz then
      invalid_arg "Fgkaslr.make_plan: overlapping or unsorted sections"
  done

let layout ~order ~sections ~text_base =
  let n = Array.length sections in
  let old_va = Array.map fst sections in
  let size = Array.map snd sections in
  let new_va = Array.make n 0 in
  let cursor = ref text_base in
  Array.iter
    (fun original ->
      let va = Addr.align_up !cursor 16 in
      new_va.(original) <- va;
      cursor := va + size.(original))
    order;
  let sorted_old = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare old_va.(a) old_va.(b)) sorted_old;
  { count = n; order; old_va; size; new_va; sorted_old }

let make_plan rng ~sections ~text_base =
  validate_sections sections;
  let order = Array.init (Array.length sections) (fun i -> i) in
  Imk_entropy.Shuffle.shuffle_in_place rng order;
  layout ~order ~sections ~text_base

let plan_of_pairs pairs =
  let n = Array.length pairs in
  let order = Array.init n (fun i -> i) in
  let old_va = Array.map (fun (o, _, _) -> o) pairs in
  let new_va = Array.map (fun (_, nv, _) -> nv) pairs in
  let size = Array.map (fun (_, _, s) -> s) pairs in
  let sorted_old = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare old_va.(a) old_va.(b)) sorted_old;
  { count = n; order; old_va; size; new_va; sorted_old }

let identity_plan ~sections ~text_base =
  validate_sections sections;
  let order = Array.init (Array.length sections) (fun i -> i) in
  layout ~order ~sections ~text_base

(* binary search: greatest section whose old_va <= va; displacement
   applies only if va falls inside that section *)
let displace plan va =
  if plan.count = 0 then va
  else begin
    let lo = ref 0 and hi = ref (plan.count - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let idx = plan.sorted_old.(mid) in
      if plan.old_va.(idx) <= va then begin
        found := idx;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !found >= 0 && va < plan.old_va.(!found) + plan.size.(!found) then
      va + (plan.new_va.(!found) - plan.old_va.(!found))
    else va
  end

let displacement_pairs plan =
  Array.map
    (fun original ->
      (plan.old_va.(original), plan.new_va.(original), plan.size.(original)))
    plan.order

(* --- table fixups --- *)

let table_count mem ~pa ~entry_bytes ~header_bytes ~what =
  let count = Guest_mem.get_u32 mem ~pa in
  if count < 0 || count > 10_000_000 then
    raise (Kaslr.Reloc_error (what ^ ": implausible entry count"));
  ignore entry_bytes;
  ignore header_bytes;
  count

let fixup_kallsyms mem ~pa plan =
  let header = Imk_kernel.Image.kallsyms_header_bytes in
  let entry = Imk_kernel.Image.kallsyms_entry_bytes in
  let count =
    table_count mem ~pa:(pa + 8) ~entry_bytes:entry ~header_bytes:header
      ~what:"kallsyms"
  in
  (* Offsets are relative to the kallsyms base, which is the kmap base at
     link time; the global delta moves the base itself (via its ordinary
     relocation) and cancels out of the offsets, so the fixup only applies
     per-function displacements, which are delta-free. *)
  let link_base = Addr.kmap_base in
  let entries =
    Array.init count (fun k ->
        let off_pa = pa + header + (k * entry) in
        let off = Guest_mem.get_u32 mem ~pa:off_pa in
        let id = Guest_mem.get_u32 mem ~pa:(off_pa + 4) in
        let old_sym_va = link_base + off in
        let new_sym_va = displace plan old_sym_va in
        (new_sym_va - link_base, id))
  in
  (* monomorphic lexicographic order — identical to polymorphic [compare]
     on int tuples, minus the per-element dispatch in this hot sort *)
  Array.sort
    (fun (o1, i1) (o2, i2) ->
      match Int.compare o1 o2 with 0 -> Int.compare i1 i2 | c -> c)
    entries;
  Array.iteri
    (fun k (off, id) ->
      let off_pa = pa + header + (k * entry) in
      Guest_mem.set_u32 mem ~pa:off_pa off;
      Guest_mem.set_u32 mem ~pa:(off_pa + 4) id)
    entries

let fixup_extab mem ~pa ~extab_va plan =
  let header = Imk_kernel.Image.extab_header_bytes in
  let entry = Imk_kernel.Image.extab_entry_bytes in
  let count =
    table_count mem ~pa ~entry_bytes:entry ~header_bytes:header ~what:"extab"
  in
  let entries =
    Array.init count (fun k ->
        let off = header + (k * entry) in
        let entry_va = extab_va + off in
        let fault_disp = Guest_mem.get_u32_signed mem ~pa:(pa + off) in
        let handler_disp = Guest_mem.get_u32_signed mem ~pa:(pa + off + 4) in
        let fault_fn = Guest_mem.get_u32 mem ~pa:(pa + off + 8) in
        let handler_fn = Guest_mem.get_u32 mem ~pa:(pa + off + 12) in
        let fault_off = Guest_mem.get_u32 mem ~pa:(pa + off + 16) in
        let fault_va = entry_va + fault_disp in
        let handler_va = entry_va + 4 + handler_disp in
        let new_fault = displace plan fault_va in
        let new_handler = displace plan handler_va in
        (new_fault, new_handler, fault_fn, handler_fn, fault_off))
  in
  Array.sort
    (fun (a1, b1, c1, d1, e1) (a2, b2, c2, d2, e2) ->
      match Int.compare a1 a2 with
      | 0 -> (
          match Int.compare b1 b2 with
          | 0 -> (
              match Int.compare c1 c2 with
              | 0 -> (
                  match Int.compare d1 d2 with
                  | 0 -> Int.compare e1 e2
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
    entries;
  Array.iteri
    (fun k (fault_va, handler_va, fault_fn, handler_fn, fault_off) ->
      let off = header + (k * entry) in
      let entry_va = extab_va + off in
      Guest_mem.set_u32 mem ~pa:(pa + off) ((fault_va - entry_va) land 0xffffffff);
      Guest_mem.set_u32 mem ~pa:(pa + off + 4)
        ((handler_va - (entry_va + 4)) land 0xffffffff);
      Guest_mem.set_u32 mem ~pa:(pa + off + 8) fault_fn;
      Guest_mem.set_u32 mem ~pa:(pa + off + 12) handler_fn;
      Guest_mem.set_u32 mem ~pa:(pa + off + 16) fault_off)
    entries

let fixup_orc mem ~pa ~orc_va plan =
  let header = Imk_kernel.Image.orc_header_bytes in
  let entry = Imk_kernel.Image.orc_entry_bytes in
  let count =
    table_count mem ~pa ~entry_bytes:entry ~header_bytes:header ~what:"orc"
  in
  let entries =
    Array.init count (fun k ->
        let off = header + (k * entry) in
        let entry_va = orc_va + off in
        let ip_disp = Guest_mem.get_u32_signed mem ~pa:(pa + off) in
        let id = Guest_mem.get_u32 mem ~pa:(pa + off + 4) in
        (displace plan (entry_va + ip_disp), id))
  in
  Array.sort
    (fun (v1, i1) (v2, i2) ->
      match Int.compare v1 v2 with 0 -> Int.compare i1 i2 | c -> c)
    entries;
  Array.iteri
    (fun k (ip_va, id) ->
      let off = header + (k * entry) in
      let entry_va = orc_va + off in
      Guest_mem.set_u32 mem ~pa:(pa + off) ((ip_va - entry_va) land 0xffffffff);
      Guest_mem.set_u32 mem ~pa:(pa + off + 4) id)
    entries
