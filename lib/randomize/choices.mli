(** A pinned entropy schedule for differential boot oracles.

    The monitor and the bootstrap loader share {!Kaslr} and {!Fgkaslr},
    but they consume randomness differently: the monitor draws a physical
    base, then a virtual base, then the shuffle from one host-pool stream,
    while the loader draws only a virtual base and the shuffle from its
    own rdrand-style stream. Because {!Imk_entropy.Prng.next_aligned} and
    {!Imk_entropy.Prng.next_int} use rejection sampling, the two streams
    cannot be aligned by seed arithmetic — the draw {e positions} differ.

    [Choices] factors the schedule instead: one independent generator per
    {e decision} (physical base, virtual base, section shuffle), all
    derived from a single seed. A boot given a schedule makes the same
    virtual-base and shuffle decisions whether the monitor or the loader
    executes it, so everything downstream — placement, relocation
    application, table fixups — is the code under test, byte for byte.
    The cross-path oracle (`Imk_check`, DESIGN.md §8) boots both paths on
    one schedule and asserts layout equality.

    Production boots never construct one: without a schedule both
    principals keep their historical per-principal streams, bit for
    bit. *)

type t

val of_seed : int64 -> t
(** [of_seed seed] fixes the schedule. Cheap; the decision streams are
    created on demand. *)

val seed : t -> int64

val physical_rng : t -> Imk_entropy.Prng.t
(** Fresh generator for the physical-base decision. Only the monitor
    draws from it (the loader always loads at the default physical
    base), which is exactly why it gets a stream of its own: consuming
    it must not shift the virtual-base draw. *)

val virtual_rng : t -> Imk_entropy.Prng.t
(** Fresh generator for the virtual-base decision — same first draw on
    every call, so monitor and loader agree on the KASLR delta. *)

val shuffle_rng : t -> Imk_entropy.Prng.t
(** Fresh generator for the FGKASLR section shuffle. *)
