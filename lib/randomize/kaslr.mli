(** Coarse-grained KASLR: offset selection and relocation handling.

    This is the algorithm both principals share (paper §4.3: "the
    computational steps for in-monitor (FG)KASLR are the same as those in
    the Linux bootstrap loader", which is also why the entropy is
    equivalent). The bootstrap loader calls it from guest context; the
    monitor calls it before VM entry. Only the caller's cost accounting
    differs. *)

exception Reloc_error of string
(** Raised when a relocation cannot be applied: a 32-bit site whose new
    value escapes the 32-bit kernel window, a site outside the loaded
    image, or an inverse value that underflows. A real loader would boot a
    corrupt kernel; we fail loudly. *)

val choose_physical :
  Imk_entropy.Prng.t -> image_memsz:int -> mem_bytes:int -> int
(** [choose_physical rng ~image_memsz ~mem_bytes] picks the physical load
    address: a {!Imk_memory.Addr.kernel_align}-aligned slot in
    [[default_phys_load, mem_bytes - image_memsz]]. Falls back to the
    default load address when memory is too small to randomize. *)

val choose_virtual : Imk_entropy.Prng.t -> image_memsz:int -> int
(** [choose_virtual rng ~image_memsz] picks the virtual base: an aligned
    offset between the default kernel address (16 MiB above
    [kmap_base]) and the 1 GiB maximum, leaving room for the image
    (§4.3). The result is the randomized equivalent of
    {!Imk_memory.Addr.link_base}. *)

val virtual_slots : image_memsz:int -> int
(** [virtual_slots ~image_memsz] is how many distinct virtual bases
    {!choose_virtual} can return — the KASLR entropy denominator used by
    the security analysis. *)

val apply :
  mem:Imk_memory.Guest_mem.t ->
  relocs:Imk_elf.Relocation.table ->
  site_pa:(int -> int) ->
  new_va_of:(int -> int) ->
  unit
(** [apply ~mem ~relocs ~site_pa ~new_va_of] walks the relocation table
    and patches every site in guest memory. [site_pa] maps a link-time
    site VA to the guest-physical address where that site now lives
    (identity-plus-load-offset for KASLR; additionally displaced by the
    section map for FGKASLR). [new_va_of] maps a link-time {e target} VA
    to its randomized VA. Handles the three kinds of §3.2: 64-bit add,
    32-bit add with range check, 32-bit inverse subtract.

    Sites are patched in table order, batched into monotone physical
    runs that pay one {!Imk_memory.Guest_mem.with_validated_range}
    bounds check + dirty-tracker update each instead of one per site;
    values written, patch order, raised errors and their messages are
    identical to the per-site path (runs that fail validation are
    replayed site-by-site through the checked accessors). *)

val delta_new_va : delta:int -> int -> int
(** [delta_new_va ~delta va] is the plain-KASLR [new_va_of]: adds the
    virtual offset, validating that [va] lies in the kernel window. *)
