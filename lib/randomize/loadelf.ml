open Imk_memory

exception Load_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Load_error s)) fmt

let fn_sections (elf : Imk_elf.Types.t) =
  let secs =
    Array.to_list elf.sections
    |> List.filter Imk_elf.Types.is_function_section
    |> List.map (fun (s : Imk_elf.Types.section) -> (s.addr, s.size))
    |> List.sort (fun (va_a, sz_a) (va_b, sz_b) ->
           match Int.compare va_a va_b with
           | 0 -> Int.compare sz_a sz_b
           | c -> c)
  in
  Array.of_list secs

let alloc_sections (elf : Imk_elf.Types.t) =
  Array.to_list elf.sections
  |> List.filter (fun (s : Imk_elf.Types.section) ->
         s.flags land Imk_elf.Types.shf_alloc <> 0)

let image_memsz elf =
  List.fold_left
    (fun acc (s : Imk_elf.Types.section) -> max acc (s.addr + s.size - Addr.link_base))
    0 (alloc_sections elf)

let text_bytes elf =
  List.fold_left
    (fun acc (s : Imk_elf.Types.section) ->
      if s.flags land Imk_elf.Types.shf_execinstr <> 0 then acc + s.size else acc)
    0 (alloc_sections elf)

let place_list mem sections ~phys_load ~plan =
  let displaced va =
    match plan with None -> va | Some p -> Fgkaslr.displace p va
  in
  List.iter
    (fun (s : Imk_elf.Types.section) ->
      let va' = displaced s.addr in
      let pa = phys_load + (va' - Addr.link_base) in
      if pa < 0 || pa + s.size > Guest_mem.size mem then
        fail "section %s does not fit at pa %#x" s.name pa;
      if s.sh_type = Imk_elf.Types.sht_nobits then Guest_mem.zero mem ~pa ~len:s.size
      else Guest_mem.write_bytes mem ~pa s.data)
    sections

let place mem elf ~phys_load ~plan =
  place_list mem (alloc_sections elf) ~phys_load ~plan
