type t = { seed : int64 }

let of_seed seed = { seed }
let seed t = t.seed

(* one independent stream per decision: Prng.create splitmixes the seed,
   so xor-ing a large odd tag yields unrelated streams even for nearby
   schedule seeds. Each accessor returns a *fresh* generator positioned
   at the start of its stream — both principals see the same first
   draw(s) no matter what the other decisions consumed. *)
let stream t tag = Imk_entropy.Prng.create ~seed:(Int64.logxor t.seed tag)

let physical_rng t = stream t 0x9E3779B97F4A7C15L
let virtual_rng t = stream t 0xC2B2AE3D27D4EB4FL
let shuffle_rng t = stream t 0x165667B19E3779F9L
