open Imk_memory

exception Reloc_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Reloc_error s)) fmt

let choose_physical rng ~image_memsz ~mem_bytes =
  let lo = Addr.default_phys_load in
  let hi = mem_bytes - image_memsz in
  if hi < lo then lo
  else Imk_entropy.Prng.next_aligned rng ~lo ~hi ~align:Addr.kernel_align

let virtual_bounds ~image_memsz =
  let lo = Addr.kmap_base + Addr.default_phys_load in
  let hi = Addr.kmap_base + Addr.kaslr_max_offset - image_memsz in
  (lo, hi)

let choose_virtual rng ~image_memsz =
  let lo, hi = virtual_bounds ~image_memsz in
  if hi < lo then lo
  else Imk_entropy.Prng.next_aligned rng ~lo ~hi ~align:Addr.kernel_align

let virtual_slots ~image_memsz =
  let lo, hi = virtual_bounds ~image_memsz in
  if hi < lo then 1
  else
    let first = Addr.align_up lo Addr.kernel_align in
    ((hi - first) / Addr.kernel_align) + 1

let delta_new_va ~delta va =
  if not (Addr.is_kernel_va va) then
    fail "relocation target %#x outside the kernel window" va;
  va + delta

(* Relocation application is batched: the site arrays arrive sorted by
   link VA, and [site_pa] is piecewise-affine (constant offset for
   KASLR, per-section offsets under FGKASLR), so consecutive sites map
   to monotone stretches of guest-physical addresses. Each stretch pays
   one Guest_mem bounds check + dirty-tracker update via
   [with_validated_range] and then patches through Imk_util.Byteio on
   the validated run — instead of a checked read, a checked write and a
   tracker walk per site. A stretch that fails validation (a site
   outside the loaded image — the corrupt-relocs case) is replayed
   site-by-site through the checked accessors so the per-site error
   messages are exactly those of the unbatched path. *)

let run_span_max = 1 lsl 20
(* caps the validated span (and so the per-run dirty over-approximation)
   when sorted sites straddle a sparse region; sites of a healthy image
   lie inside its already-dirty placed extent, so the tracker outcome is
   unchanged either way *)

let apply ~mem ~relocs ~site_pa ~new_va_of =
  let open Imk_elf.Relocation in
  (* per-site checked path: the reference semantics, and the fallback
     that keeps error reporting identical when a run fails validation *)
  let patch kind site_va =
      let pa = site_pa site_va in
      match kind with
      | Abs64 ->
          let old_va =
            (* a site pointing at garbage can hold a value outside the
               native-int range; that is a corrupt-relocs symptom, not a
               programming error *)
            try Guest_mem.get_addr mem ~pa
            with Invalid_argument _ ->
              fail "abs64 site %#x holds a non-address value" site_va
          in
          Guest_mem.set_addr mem ~pa (new_va_of old_va)
      | Abs32 ->
          let low = Guest_mem.get_u32 mem ~pa in
          let old_va =
            try Addr.va_of_low32 low
            with Invalid_argument _ ->
              fail "abs32 site %#x holds non-kernel value %#x" site_va low
          in
          let nva = new_va_of old_va in
          if not (Addr.is_kernel_va nva) then
            fail "abs32 relocation at %#x overflows 32 bits" site_va;
          Guest_mem.set_u32 mem ~pa (Addr.low32 nva)
      | Inv32 ->
          let stored = Guest_mem.get_u32 mem ~pa in
          let old_va = Addr.inverse_base - stored in
          if not (Addr.is_kernel_va old_va) then
            fail "inv32 site %#x holds non-kernel value %#x" site_va stored;
          let nva = new_va_of old_va in
          let stored' = Addr.inverse_base - nva in
          if stored' < 0 || stored' > 0xffffffff then
            fail "inv32 relocation at %#x underflows" site_va;
          Guest_mem.set_u32 mem ~pa stored'
  in
  (* same transformation and same failure messages as [patch], but on a
     run [with_validated_range] already bounds-checked and dirtied *)
  let patch_in kind data pa site_va =
    match kind with
    | Abs64 ->
        let old_va =
          try Imk_util.Byteio.get_addr data pa
          with Invalid_argument _ ->
            fail "abs64 site %#x holds a non-address value" site_va
        in
        Imk_util.Byteio.set_addr data pa (new_va_of old_va)
    | Abs32 ->
        let low = Imk_util.Byteio.get_u32 data pa in
        let old_va =
          try Addr.va_of_low32 low
          with Invalid_argument _ ->
            fail "abs32 site %#x holds non-kernel value %#x" site_va low
        in
        let nva = new_va_of old_va in
        if not (Addr.is_kernel_va nva) then
          fail "abs32 relocation at %#x overflows 32 bits" site_va;
        Imk_util.Byteio.set_u32 data pa (Addr.low32 nva)
    | Inv32 ->
        let stored = Imk_util.Byteio.get_u32 data pa in
        let old_va = Addr.inverse_base - stored in
        if not (Addr.is_kernel_va old_va) then
          fail "inv32 site %#x holds non-kernel value %#x" site_va stored;
        let nva = new_va_of old_va in
        let stored' = Addr.inverse_base - nva in
        if stored' < 0 || stored' > 0xffffffff then
          fail "inv32 relocation at %#x underflows" site_va;
        Imk_util.Byteio.set_u32 data pa stored'
  in
  let apply_kind kind width sites =
    let n = Array.length sites in
    if n > 0 then begin
      let pas = Array.map site_pa sites in
      let i = ref 0 in
      while !i < n do
        let start = !i in
        let lo = pas.(start) in
        let j = ref start in
        (* extend while the physical addresses stay strictly forward and
           non-overlapping and the run stays within the span cap *)
        while
          !j + 1 < n
          && pas.(!j + 1) >= pas.(!j) + width
          && pas.(!j + 1) + width - lo <= run_span_max
        do
          incr j
        done;
        let len = pas.(!j) + width - lo in
        if Guest_mem.valid mem ~pa:lo ~len then
          Guest_mem.with_validated_range mem ~pa:lo ~len (fun data ->
              for k = start to !j do
                patch_in kind data pas.(k) sites.(k)
              done)
        else
          for k = start to !j do
            try patch kind sites.(k)
            with Guest_mem.Fault m ->
              fail "relocation site %#x outside the loaded image: %s" sites.(k)
                m
          done;
        i := !j + 1
      done
    end
  in
  apply_kind Abs64 8 relocs.abs64;
  apply_kind Abs32 4 relocs.abs32;
  apply_kind Inv32 4 relocs.inv32
