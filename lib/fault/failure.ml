type t =
  | Corrupt_image of string
  | Bad_reloc of string
  | Decode_error of string
  | Transient of string
  | Guest_panic of string
  | Deadline_exceeded of string

let kind_name = function
  | Corrupt_image _ -> "corrupt-image"
  | Bad_reloc _ -> "bad-reloc"
  | Decode_error _ -> "decode-error"
  | Transient _ -> "transient"
  | Guest_panic _ -> "guest-panic"
  | Deadline_exceeded _ -> "deadline-exceeded"

let message = function
  | Corrupt_image m | Bad_reloc m | Decode_error m | Transient m
  | Guest_panic m | Deadline_exceeded m ->
      m

let describe f = kind_name f ^ ": " ^ message f

let classify = function
  | Imk_monitor.Vmm.Boot_error m -> Some (Corrupt_image m)
  | Imk_monitor.Vmm.Transient m -> Some (Transient m)
  | Imk_monitor.Snapshot.Corrupt m -> Some (Decode_error m)
  (* one shared exception for every Imk_elf decoder (Parser, Note) *)
  | Imk_elf.Types.Malformed m -> Some (Corrupt_image m)
  | Imk_elf.Relocation.Bad_table m -> Some (Bad_reloc m)
  | Imk_kernel.Bzimage.Malformed m -> Some (Corrupt_image m)
  | Imk_kernel.Relocs_tool.Unsupported m -> Some (Bad_reloc m)
  | Imk_kernel.Rootfs.Corrupt m -> Some (Decode_error m)
  | Imk_kernel.Initrd.Corrupt m -> Some (Decode_error m)
  | Imk_compress.Codec.Corrupt m -> Some (Decode_error m)
  | Imk_bootstrap.Loader.Loader_error m -> Some (Corrupt_image m)
  | Imk_guest.Boot_info.Invalid m -> Some (Corrupt_image m)
  | Imk_guest.Runtime.Panic m -> Some (Guest_panic m)
  | Imk_memory.Guest_mem.Fault m -> Some (Guest_panic m)
  | Imk_vclock.Deadline.Exceeded m -> Some (Deadline_exceeded m)
  | _ -> None

let recoverable = function
  | Transient _ | Deadline_exceeded _ -> true
  | Corrupt_image _ | Bad_reloc _ | Decode_error _ | Guest_panic _ -> false

(* recovery actions a supervised boot can take; recorded in its report so
   telemetry can show what degraded gracefully and what it cost *)
type event =
  | Retried of { attempt : int; failure : t; backoff_ns : int }
  | Fell_back_to_cold_boot of t
  | Rederived_relocs of t
  | Deadline_aborted of { failure : t; fresh_budget_ns : int }
  | Retry_budget_exhausted of t
  | Breaker_opened of { failure : t; consecutive : int }
  | Breaker_short_circuit of { failure : t }
  | Breaker_probe of { succeeded : bool }

let event_name = function
  | Retried _ -> "retried"
  | Fell_back_to_cold_boot _ -> "cold-boot-fallback"
  | Rederived_relocs _ -> "rederived-relocs"
  | Deadline_aborted _ -> "deadline-aborted"
  | Retry_budget_exhausted _ -> "retry-budget-exhausted"
  | Breaker_opened _ -> "breaker-opened"
  | Breaker_short_circuit _ -> "breaker-short-circuit"
  | Breaker_probe _ -> "breaker-probe"

let describe_event = function
  | Retried { attempt; failure; backoff_ns } ->
      Printf.sprintf "retried (attempt %d, backoff %d ns) after %s" attempt
        backoff_ns (describe failure)
  | Fell_back_to_cold_boot f -> "cold-boot fallback after " ^ describe f
  | Rederived_relocs f -> "re-derived relocs from the ELF after " ^ describe f
  | Deadline_aborted { failure; fresh_budget_ns } ->
      Printf.sprintf "aborted attempt on %s; fresh budget %d ns"
        (describe failure) fresh_budget_ns
  | Retry_budget_exhausted f ->
      "campaign retry budget exhausted; failing fast on " ^ describe f
  | Breaker_opened { failure; consecutive } ->
      Printf.sprintf "breaker opened after %d consecutive persistent failures (last: %s)"
        consecutive (describe failure)
  | Breaker_short_circuit { failure } ->
      "breaker open: boot short-circuited (last: " ^ describe failure ^ ")"
  | Breaker_probe { succeeded } ->
      if succeeded then "half-open probe boot succeeded: breaker closed"
      else "half-open probe boot failed: breaker re-opened"
