(** Deterministic fault injection at the boot path's input seams.

    An injected corruption is a pure function of [(kind, seed)] and the
    pristine bytes: arming the same kind with the same seed on two disks
    holding the same files produces byte-identical corruption, which is
    what makes the faults campaign reproducible and [--jobs]-invariant.

    Every kind is {e guaranteed detectable}: the corruption is placed
    where an existing validator must trip over it (magic words, CRCs,
    length bounds, the guest's own boot-integrity walk). The campaign
    turns that guarantee into a soundness check — a boot that stays
    green under an armed fault is a bug in the validators, not in the
    injector. *)

type kind =
  | Truncate_image
      (** Cut 1..64 bytes off the kernel image's tail. For an ELF this
          truncates the section-header table (the writer emits it last)
          → parser bounds failure. *)
  | Flip_image_magic
      (** Flip one bit in the leading 4-byte magic. Breaks the ELF
          ident (routing the image to the bzImage decoder) and the
          bzImage magic alike — either decoder fails typed. *)
  | Flip_entry_magic
      (** Flip one of bits 0..47 of the entry function's 8-byte magic
          word inside a vmlinux. Loads fine; the guest's integrity walk
          starts at the entry function and panics on the mismatch. *)
  | Truncate_relocs
      (** Cut 1..8 bytes off the relocation table (exactly [16 + 8n]
          bytes long) → typed [Bad_table], the re-derivation fallback's
          trigger. *)
  | Flip_relocs_magic
      (** Flip one bit in the relocation table's magic → [Bad_table].
          Count-field corruption is deliberately not offered: it is not
          guaranteed detectable (a zero KASLR delta boots green over a
          short table). *)
  | Truncate_bzimage
      (** Cut 1..1024 bytes off a bzImage's tail — the payload escapes
          the image bounds. *)
  | Flip_bz_payload_crc
      (** Flip one bit of the codec frame's stored CRC inside a
          bzImage payload; every codec verifies it after
          decompression. *)
  | Read_fault_entry_magic
      (** Leave the on-disk bytes pristine but corrupt each read of the
          kernel image ({!Imk_storage.Disk.set_fault}) at the entry
          function's magic — the disk/snapshot read-corruption model. *)
  | Transient_init of int
      (** Raise {!Imk_monitor.Vmm.Transient} from the first [n]
          "vmm-init" phases of boots using the armed hook; the [n+1]th
          attempt proceeds. Exercises retry/backoff, not corruption. *)

val name : kind -> string
(** Stable short tag (telemetry row labels, [BENCH_faults.json]). *)

val all : kind list
(** One representative of each kind ([Transient_init 1] for the
    transient family). *)

type armed = { inject : (string -> unit) option }
(** What {!arm} hands back: disk faults need no hook (the corruption
    already sits on / in front of the disk); transient faults return
    the hook to pass to {!Imk_monitor.Vmm.boot}'s [?inject]. *)

val arm :
  kind ->
  seed:int ->
  disk:Imk_storage.Disk.t ->
  kernel_path:string ->
  ?relocs_path:string ->
  unit ->
  armed
(** [arm kind ~seed ~disk ~kernel_path ?relocs_path ()] injects the
    fault into [disk]'s view of the named files (content replaced with
    a corrupted copy, or a read fault installed). The disk should be
    private to one boot run. Raises [Invalid_argument] if [kind] needs
    a relocation table and [relocs_path] is missing — a harness wiring
    error, not a boot failure. *)

val flip_bit : bytes -> off:int -> bit:int -> unit
(** [flip_bit b ~off ~bit] flips bit [bit] (LSB-first across
    consecutive bytes) of the field starting at [off], in place. *)

val flip_one_bit : seed:int -> bytes -> bytes
(** [flip_one_bit ~seed b] is a fresh copy of [b] with one
    seed-selected bit flipped anywhere in it — for corrupting
    CRC-framed blobs (snapshots) where any single-bit flip is
    detectable by construction. *)

val entry_magic_offset : bytes -> int
(** File offset of the entry function's magic word in a vmlinux ELF
    (exposed for tests). *)
