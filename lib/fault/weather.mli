(** Seed-deterministic correlated fault processes ("weather").

    {!Inject} arms one fault against one boot; a fleet campaign needs
    whole runs of weather: per-seam fault rates, cold-cache overload,
    and correlated bursts where failures cluster instead of arriving
    independently. A weather value generalizes one-shot injection into
    a process over the run index while staying a pure function of
    [(profile, seed, run)] — two workers forecasting the same run get
    the same answer, which is what keeps a fault-laden campaign
    bit-identical for any [--jobs] fan-out.

    The storm profile draws its bursts per {e window} of
    {!window_len} consecutive runs: a window is either stormy (high
    fault and cold-cache rates) or quiet (background rates), modelling
    the correlated failures — a flaky disk, a thundering herd of cold
    starts — that one-shot injection cannot. *)

type profile =
  | Calm  (** no faults at all: the control rows of a campaign *)
  | Flaky  (** low independent per-boot rates, no bursts *)
  | Storm  (** burst windows with high fault and cold-start rates *)

val profile_name : profile -> string
(** "calm" / "flaky" / "storm" — telemetry row labels. *)

val profile_of_name : string -> profile option
val all_profiles : profile list

type t

val make : profile -> seed:int -> t
(** [make profile ~seed] fixes the whole campaign's weather. Every
    forecast derives from [seed] alone. *)

val profile : t -> profile
val seed : t -> int

type forecast = {
  fault : Inject.kind option;
      (** seam to arm against this run's private disk, if any *)
  cold : bool;
      (** drop this run's page cache first: the overload / cold-start
          condition that makes an attempt overrun its
          {!Imk_vclock.Deadline} budget *)
}

val window_len : int
(** Runs per storm burst window. *)

val in_burst : t -> run:int -> bool
(** [in_burst t ~run] is whether [run] (1-based) falls in a stormy
    window. Always false for calm and flaky profiles. *)

val forecast : t -> run:int -> seams:Inject.kind list -> forecast
(** [forecast t ~run ~seams] draws run [run]'s weather: maybe a
    transient, maybe a corruption picked uniformly from [seams] (the
    injectable seams of the boot path under test), maybe a cold cache.
    Pure in [(t, run)]; [seams] order matters, so keep it fixed across
    a campaign. *)

val fault_seed : t -> run:int -> int
(** The seed to pass to {!Inject.arm} for run [run] — pure in
    [(t, run)], distinct per run. *)
