type profile = Calm | Flaky | Storm

let profile_name = function
  | Calm -> "calm"
  | Flaky -> "flaky"
  | Storm -> "storm"

let profile_of_name = function
  | "calm" -> Some Calm
  | "flaky" -> Some Flaky
  | "storm" -> Some Storm
  | _ -> None

let all_profiles = [ Calm; Flaky; Storm ]

type t = { profile : profile; seed : int }

let make profile ~seed = { profile; seed }
let profile t = t.profile
let seed t = t.seed

type forecast = { fault : Inject.kind option; cold : bool }

let window_len = 8

(* Fixed 64-bit mix (splitmix's golden-ratio multiplier) so nearby
   campaign seeds and run indices land on unrelated PRNG streams; every
   draw below is a pure function of (seed, run). *)
let stream t ~salt ~index =
  Imk_entropy.Prng.create
    ~seed:
      (Int64.add
         (Int64.mul (Int64.of_int ((t.seed * 2) + salt)) 0x9E3779B97F4A7C15L)
         (Int64.of_int index))

let in_burst t ~run =
  match t.profile with
  | Calm | Flaky -> false
  | Storm ->
      (* bursts are correlated over the run index: a whole window of
         [window_len] consecutive runs is either stormy or quiet *)
      let window = (max 1 run - 1) / window_len in
      Imk_entropy.Prng.next_int (stream t ~salt:1 ~index:window) 2 = 0

(* per-boot percent rates: (transient seam, corrupt seams, cold cache) *)
let rates t ~run =
  match t.profile with
  | Calm -> (0, 0, 0)
  | Flaky -> (10, 6, 8)
  | Storm -> if in_burst t ~run then (20, 45, 35) else (4, 6, 6)

let forecast t ~run ~seams =
  let transient_pct, corrupt_pct, cold_pct = rates t ~run in
  let rng = stream t ~salt:2 ~index:run in
  (* fixed draw order — the stream is consumed identically whether or
     not a fault fires, so forecasts never depend on each other *)
  let u = Imk_entropy.Prng.next_int rng 100 in
  let init_failures = 1 + Imk_entropy.Prng.next_int rng 2 in
  let seam_idx =
    match seams with
    | [] -> 0
    | l -> Imk_entropy.Prng.next_int rng (List.length l)
  in
  let cold_u = Imk_entropy.Prng.next_int rng 100 in
  let fault =
    if u < transient_pct then Some (Inject.Transient_init init_failures)
    else if u < transient_pct + corrupt_pct && seams <> [] then
      Some (List.nth seams seam_idx)
    else None
  in
  { fault; cold = cold_u < cold_pct }

let fault_seed t ~run = (t.seed * 7919) + (131 * run) + 7
