(** Typed failure taxonomy for supervised boots.

    Every exception a boot path can raise on corrupted input maps onto
    one of five kinds. The mapping is the contract the fault-injection
    campaign enforces: an injected corruption must surface as one of
    these (or as a guest-side {!Imk_guest.Runtime.Panic} from the
    integrity walk) — a boot that stays green over corrupted bytes is a
    soundness bug, and an exception {!classify} cannot place is an
    unclassified escape, which is equally a bug. *)

type t =
  | Corrupt_image of string
      (** A kernel image (ELF or bzImage) failed structural validation:
          bad magic, truncated tables, out-of-range offsets. *)
  | Bad_reloc of string
      (** The relocation table is unusable: bad magic, truncated
          entries, or an extraction path that cannot serve the image. *)
  | Decode_error of string
      (** A framed payload failed its own integrity check: codec CRC,
          snapshot CRC, rootfs/initrd archive corruption. *)
  | Transient of string
      (** A fault the monitor believes is not persistent (injected VMM
          init hiccup); retrying is sensible. *)
  | Guest_panic of string
      (** The guest itself detected the problem: a missed relocation in
          the integrity walk or a memory-fault during boot. *)

val kind_name : t -> string
(** Stable short tag ("corrupt-image", "bad-reloc", "decode-error",
    "transient", "guest-panic") — used as telemetry column values and in
    [BENCH_faults.json]. *)

val message : t -> string
(** The underlying exception's message. *)

val describe : t -> string
(** ["kind: message"]. *)

val classify : exn -> t option
(** [classify e] maps a boot-path exception onto the taxonomy, or [None]
    for exceptions that are not typed boot failures (programming errors
    like [Invalid_argument] — the supervisor re-raises those rather than
    masking them). *)

(** Recovery actions a {!Imk_harness.Boot_supervisor} took, in order.
    Each is recorded in the supervision report; retry/backoff and
    re-derivation work is separately charged to the virtual clock. *)
type event =
  | Retried of { attempt : int; failure : t; backoff_ns : int }
      (** A transient failure was retried after paying [backoff_ns]. *)
  | Fell_back_to_cold_boot of t
      (** Snapshot restore failed its validation; a cold boot was run
          instead. *)
  | Rederived_relocs of t
      (** The relocation table was corrupt; a fresh one was re-derived
          from the kernel ELF. *)

val event_name : event -> string
(** Stable short tag ("retried", "cold-boot-fallback",
    "rederived-relocs"). *)

val describe_event : event -> string
