(** Typed failure taxonomy for supervised boots.

    Every exception a boot path can raise on corrupted input maps onto
    one of five kinds. The mapping is the contract the fault-injection
    campaign enforces: an injected corruption must surface as one of
    these (or as a guest-side {!Imk_guest.Runtime.Panic} from the
    integrity walk) — a boot that stays green over corrupted bytes is a
    soundness bug, and an exception {!classify} cannot place is an
    unclassified escape, which is equally a bug. *)

type t =
  | Corrupt_image of string
      (** A kernel image (ELF or bzImage) failed structural validation:
          bad magic, truncated tables, out-of-range offsets. *)
  | Bad_reloc of string
      (** The relocation table is unusable: bad magic, truncated
          entries, or an extraction path that cannot serve the image. *)
  | Decode_error of string
      (** A framed payload failed its own integrity check: codec CRC,
          snapshot CRC, rootfs/initrd archive corruption. *)
  | Transient of string
      (** A fault the monitor believes is not persistent (injected VMM
          init hiccup); retrying is sensible. *)
  | Guest_panic of string
      (** The guest itself detected the problem: a missed relocation in
          the integrity walk or a memory-fault during boot. *)
  | Deadline_exceeded of string
      (** The attempt charged past its {!Imk_vclock.Deadline} budget —
          an overload symptom, not corruption. The supervisor aborts the
          attempt and falls back (snapshot-or-cold) with a fresh
          budget. *)

val kind_name : t -> string
(** Stable short tag ("corrupt-image", "bad-reloc", "decode-error",
    "transient", "guest-panic", "deadline-exceeded") — used as telemetry
    column values and in [BENCH_faults.json]. *)

val message : t -> string
(** The underlying exception's message. *)

val describe : t -> string
(** ["kind: message"]. *)

val classify : exn -> t option
(** [classify e] maps a boot-path exception onto the taxonomy, or [None]
    for exceptions that are not typed boot failures (programming errors
    like [Invalid_argument] — the supervisor re-raises those rather than
    masking them). *)

val recoverable : t -> bool
(** [recoverable f] is true for the kinds a supervisor has a generic
    recovery for regardless of configuration: transients (retry) and
    deadline overruns (abort + fresh-budget fallback). [Bad_reloc] and a
    snapshot's [Decode_error] are also recoverable {e when} the config
    carries a relocs path / a cold-boot fallback — the campaign, which
    knows the config, accounts for those separately. *)

(** Recovery actions a {!Imk_harness.Boot_supervisor} took, in order.
    Each is recorded in the supervision report; retry/backoff and
    re-derivation work is separately charged to the virtual clock. *)
type event =
  | Retried of { attempt : int; failure : t; backoff_ns : int }
      (** A transient failure was retried after paying [backoff_ns]. *)
  | Fell_back_to_cold_boot of t
      (** Snapshot restore failed its validation; a cold boot was run
          instead. *)
  | Rederived_relocs of t
      (** The relocation table was corrupt; a fresh one was re-derived
          from the kernel ELF. *)
  | Deadline_aborted of { failure : t; fresh_budget_ns : int }
      (** An attempt overran its virtual-time budget and was aborted at
          a phase boundary; the follow-up attempt got a fresh budget of
          [fresh_budget_ns]. *)
  | Retry_budget_exhausted of t
      (** A transient would have been retried, but the campaign-level
          retry budget was dry — the supervisor failed fast instead of
          spinning through a storm. *)
  | Breaker_opened of { failure : t; consecutive : int }
      (** [consecutive] persistent failures in a row tripped the
          kernel-config's circuit breaker. *)
  | Breaker_short_circuit of { failure : t }
      (** The breaker was open: the boot was rejected without an
          attempt, for a small charged cost; [failure] is the last
          failure the breaker saw. *)
  | Breaker_probe of { succeeded : bool }
      (** The half-open probe boot ran: success closes the breaker,
          failure re-opens it for another cooldown. *)

val event_name : event -> string
(** Stable short tag ("retried", "cold-boot-fallback",
    "rederived-relocs", "deadline-aborted", "retry-budget-exhausted",
    "breaker-opened", "breaker-short-circuit", "breaker-probe"). *)

val describe_event : event -> string
