(* Deterministic fault injection at the boot path's input seams.

   Every corruption here is chosen to be *structurally guaranteed*
   detectable by an existing validator — that is the property the faults
   campaign enforces, so the injector must not produce corruptions that
   can legally decode to something valid:

   - ELF tail truncation always cuts the section-header table (the
     writer emits it last), failing the parser's bounds check.
   - Image-magic flips break both the ELF ident and the bzImage magic,
     so whichever decoder the monitor routes to fails typed.
   - Function-magic flips touch only bits 0..47 of the 8-byte word:
     flipping bit 62/63 would push the stored value outside the
     native-int range and surface as an untyped [Invalid_argument] from
     [Byteio.get_addr] instead of a classified failure.
   - Relocation-table faults hit the magic field or truncate entries —
     never the count fields, whose corruption is not guaranteed
     detectable (a zero KASLR delta would relocate nothing and boot
     green over a short table).
   - bzImage payload faults flip the codec frame's stored CRC, which
     every codec (including store) verifies after decompression. *)

type kind =
  | Truncate_image
  | Flip_image_magic
  | Flip_entry_magic
  | Truncate_relocs
  | Flip_relocs_magic
  | Truncate_bzimage
  | Flip_bz_payload_crc
  | Read_fault_entry_magic
  | Transient_init of int

let name = function
  | Truncate_image -> "truncate-image"
  | Flip_image_magic -> "flip-image-magic"
  | Flip_entry_magic -> "flip-entry-magic"
  | Truncate_relocs -> "truncate-relocs"
  | Flip_relocs_magic -> "flip-relocs-magic"
  | Truncate_bzimage -> "truncate-bzimage"
  | Flip_bz_payload_crc -> "flip-bz-payload-crc"
  | Read_fault_entry_magic -> "read-fault-entry-magic"
  | Transient_init n -> Printf.sprintf "transient-init-%d" n

let all =
  [
    Truncate_image;
    Flip_image_magic;
    Flip_entry_magic;
    Truncate_relocs;
    Flip_relocs_magic;
    Truncate_bzimage;
    Flip_bz_payload_crc;
    Read_fault_entry_magic;
    Transient_init 1;
  ]

let flip_bit b ~off ~bit =
  let byte = off + (bit / 8) in
  Bytes.set b byte
    (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))))

let flip_one_bit ~seed b =
  let b = Bytes.copy b in
  if Bytes.length b = 0 then invalid_arg "Inject.flip_one_bit: empty";
  flip_bit b ~off:0 ~bit:(abs seed mod (Bytes.length b * 8));
  b

(* file offset of the entry function's 8-byte magic word: the section
   that covers e_entry, at the entry's displacement into it *)
let entry_magic_offset b =
  let elf = Imk_elf.Parser.parse b in
  let entry = elf.Imk_elf.Types.entry in
  let sec =
    Array.to_list elf.Imk_elf.Types.sections
    |> List.find_opt (fun (s : Imk_elf.Types.section) ->
           s.Imk_elf.Types.sh_type = Imk_elf.Types.sht_progbits
           && s.Imk_elf.Types.size > 0
           && s.Imk_elf.Types.addr <= entry
           && entry < s.Imk_elf.Types.addr + s.Imk_elf.Types.size)
  in
  match sec with
  | Some s -> s.Imk_elf.Types.offset + (entry - s.Imk_elf.Types.addr)
  | None -> invalid_arg "Inject: entry point outside every progbits section"

type armed = { inject : (string -> unit) option }

let no_hook = { inject = None }

let arm kind ~seed ~disk ~kernel_path ?relocs_path () =
  let seed = abs seed in
  (* [Disk.find] applies armed read faults, but nothing is armed yet on
     a per-run disk, and content corruption always copies first *)
  let pristine path = Bytes.copy (Imk_storage.Disk.find disk path) in
  let replace path b = Imk_storage.Disk.add disk ~name:path b in
  let truncate path ~drop =
    let b = pristine path in
    if Bytes.length b <= drop then
      invalid_arg ("Inject.arm: " ^ path ^ " too small to truncate");
    replace path (Bytes.sub b 0 (Bytes.length b - drop))
  in
  let relocs () =
    match relocs_path with
    | Some p -> p
    | None -> invalid_arg ("Inject.arm: " ^ name kind ^ " needs ~relocs_path")
  in
  (* the bz kinds read header fields; arming them on a non-bzImage would
     corrupt an arbitrary offset — not guaranteed detectable, so refuse *)
  let require_bzimage b =
    if Bytes.length b < 32 || Imk_util.Byteio.get_u32 b 0 <> 0x425a494d then
      invalid_arg
        ("Inject.arm: " ^ name kind ^ " needs a bzImage at " ^ kernel_path)
  in
  match kind with
  | Truncate_image ->
      (* the writer puts the section-header table last: any tail cut
         lands in it *)
      truncate kernel_path ~drop:(1 + (seed mod 64));
      no_hook
  | Flip_image_magic ->
      let b = pristine kernel_path in
      flip_bit b ~off:0 ~bit:(seed mod 32);
      replace kernel_path b;
      no_hook
  | Flip_entry_magic ->
      let b = pristine kernel_path in
      let off = entry_magic_offset b in
      flip_bit b ~off ~bit:(seed mod 48);
      replace kernel_path b;
      no_hook
  | Truncate_relocs ->
      (* a table is exactly [16 + 8n] bytes; dropping 1..8 always fails
         the entry-count bound *)
      truncate (relocs ()) ~drop:(1 + (seed mod 8));
      no_hook
  | Flip_relocs_magic ->
      let p = relocs () in
      let b = pristine p in
      flip_bit b ~off:0 ~bit:(seed mod 32);
      replace p b;
      no_hook
  | Truncate_bzimage ->
      (* the payload is the file's tail; any cut makes it escape the
         image *)
      require_bzimage (Imk_storage.Disk.find disk kernel_path);
      truncate kernel_path ~drop:(1 + (seed mod 1024));
      no_hook
  | Flip_bz_payload_crc ->
      let b = pristine kernel_path in
      require_bzimage b;
      let payload_off = Imk_util.Byteio.get_u32 b 24 in
      if payload_off + 20 > Bytes.length b then
        invalid_arg "Inject.arm: bzImage payload escapes the image";
      (* codec frame: magic, name hash, orig_len, then the CRC at +16 *)
      flip_bit b ~off:(payload_off + 16) ~bit:(seed mod 32);
      replace kernel_path b;
      no_hook
  | Read_fault_entry_magic ->
      (* content on disk stays pristine; the read path corrupts — the
         snapshot/disk read-corruption model. [Disk.find] hands the
         fault a private copy, so the fault function stays pure. *)
      let off = entry_magic_offset (pristine kernel_path) in
      let bit = seed mod 48 in
      Imk_storage.Disk.set_fault disk ~name:kernel_path (fun copy ->
          flip_bit copy ~off ~bit;
          copy);
      no_hook
  | Transient_init n ->
      let remaining = ref n in
      {
        inject =
          Some
            (fun phase ->
              if phase = "vmm-init" && !remaining > 0 then begin
                decr remaining;
                raise
                  (Imk_monitor.Vmm.Transient "injected VMM init failure")
              end);
      }
