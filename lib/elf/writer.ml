open Imk_util

(* string table: NUL-separated names, first byte NUL; offsets by name *)
let build_strtab names =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '\000';
  let offsets = Hashtbl.create (List.length names * 2) in
  List.iter
    (fun name ->
      if not (Hashtbl.mem offsets name) then begin
        Hashtbl.add offsets name (Buffer.length buf);
        Buffer.add_string buf name;
        Buffer.add_char buf '\000'
      end)
    names;
  (Buffer.to_bytes buf, offsets)

let validate (t : Types.t) =
  let hdr_end = Layout.header_end ~phnum:(Array.length t.segments) in
  (* collect (offset, size) of real data sections, check ordering *)
  let spans =
    Array.to_list t.sections
    |> List.filter (fun (s : Types.section) -> s.sh_type <> Types.sht_nobits)
    |> List.map (fun (s : Types.section) -> (s.offset, s.size, s.name))
    |> List.sort (fun (o1, s1, n1) (o2, s2, n2) ->
           match Int.compare o1 o2 with
           | 0 -> (
               match Int.compare s1 s2 with
               | 0 -> String.compare n1 n2
               | c -> c)
           | c -> c)
  in
  let rec check prev_end = function
    | [] -> ()
    | (off, size, name) :: rest ->
        if off < hdr_end then
          invalid_arg ("Elf.Writer: section overlaps headers: " ^ name);
        if off < prev_end then
          invalid_arg ("Elf.Writer: overlapping section data: " ^ name);
        check (off + size) rest
  in
  check hdr_end spans

let write (t : Types.t) =
  validate t;
  let nuser = Array.length t.sections in
  let phnum = Array.length t.segments in
  (* section header order: NULL, user sections, .symtab, .strtab, .shstrtab *)
  let symtab_ndx = nuser + 1 in
  let strtab_ndx = nuser + 2 in
  let shstr_ndx = nuser + 3 in
  let shnum = nuser + 4 in
  (* encode symbols *)
  let strtab, sym_offsets =
    build_strtab (Array.to_list (Array.map (fun s -> s.Types.sym_name) t.symbols))
  in
  let symtab = Bytes.make ((Array.length t.symbols + 1) * Types.sym_size) '\000' in
  Array.iteri
    (fun i (sym : Types.symbol) ->
      let base = (i + 1) * Types.sym_size in
      let name_off = Hashtbl.find sym_offsets sym.sym_name in
      Byteio.set_u32 symtab base name_off;
      Byteio.set_u8 symtab (base + 4) sym.sym_type;
      Byteio.set_u8 symtab (base + 5) 0;
      let st_shndx = if sym.shndx < 0 then 0xfff1 (* SHN_ABS *) else sym.shndx + 1 in
      Byteio.set_u16 symtab (base + 6) st_shndx;
      Byteio.set_addr symtab (base + 8) sym.value;
      Byteio.set_addr symtab (base + 16) sym.sym_size)
    t.symbols;
  let shstrtab, shname_offsets =
    let user_names = Array.to_list (Array.map (fun s -> s.Types.name) t.sections) in
    build_strtab (user_names @ [ ".symtab"; ".strtab"; ".shstrtab" ])
  in
  (* place the tables after all section data *)
  let data_end = max (Layout.file_end t.sections) (Layout.header_end ~phnum) in
  let symtab_off = Layout.align_up data_end 8 in
  let strtab_off = symtab_off + Bytes.length symtab in
  let shstr_off = strtab_off + Bytes.length strtab in
  let shoff = Layout.align_up (shstr_off + Bytes.length shstrtab) 8 in
  let total = shoff + (shnum * Types.shdr_size) in
  let out = Bytes.make total '\000' in
  (* ELF header *)
  Byteio.blit_string Types.elf_magic out 0;
  Byteio.set_u8 out 4 Types.elfclass64;
  Byteio.set_u8 out 5 Types.elfdata2lsb;
  Byteio.set_u8 out 6 1 (* EV_CURRENT *);
  Byteio.set_u16 out 16 Types.et_exec;
  Byteio.set_u16 out 18 Types.em_x86_64;
  Byteio.set_u32 out 20 1;
  Byteio.set_addr out 24 t.entry;
  Byteio.set_addr out 32 (if phnum = 0 then 0 else Types.ehdr_size);
  Byteio.set_addr out 40 shoff;
  Byteio.set_u32 out 48 0 (* e_flags *);
  Byteio.set_u16 out 52 Types.ehdr_size;
  Byteio.set_u16 out 54 Types.phdr_size;
  Byteio.set_u16 out 56 phnum;
  Byteio.set_u16 out 58 Types.shdr_size;
  Byteio.set_u16 out 60 shnum;
  Byteio.set_u16 out 62 shstr_ndx;
  (* program headers *)
  Array.iteri
    (fun i (p : Types.segment) ->
      let base = Types.ehdr_size + (i * Types.phdr_size) in
      Byteio.set_u32 out base p.p_type;
      Byteio.set_u32 out (base + 4) p.p_flags;
      Byteio.set_addr out (base + 8) p.p_offset;
      Byteio.set_addr out (base + 16) p.p_vaddr;
      Byteio.set_addr out (base + 24) p.p_paddr;
      Byteio.set_addr out (base + 32) p.p_filesz;
      Byteio.set_addr out (base + 40) p.p_memsz;
      Byteio.set_addr out (base + 48) p.p_align)
    t.segments;
  (* section data *)
  Array.iter
    (fun (s : Types.section) ->
      if s.sh_type <> Types.sht_nobits then
        Bytes.blit s.data 0 out s.offset (Bytes.length s.data))
    t.sections;
  Bytes.blit symtab 0 out symtab_off (Bytes.length symtab);
  Bytes.blit strtab 0 out strtab_off (Bytes.length strtab);
  Bytes.blit shstrtab 0 out shstr_off (Bytes.length shstrtab);
  (* section headers *)
  let write_shdr ndx ~name_off ~sh_type ~flags ~addr ~offset ~size ~link ~info
      ~addralign ~entsize =
    let base = shoff + (ndx * Types.shdr_size) in
    Byteio.set_u32 out base name_off;
    Byteio.set_u32 out (base + 4) sh_type;
    Byteio.set_addr out (base + 8) flags;
    Byteio.set_addr out (base + 16) addr;
    Byteio.set_addr out (base + 24) offset;
    Byteio.set_addr out (base + 32) size;
    Byteio.set_u32 out (base + 40) link;
    Byteio.set_u32 out (base + 44) info;
    Byteio.set_addr out (base + 48) addralign;
    Byteio.set_addr out (base + 56) entsize
  in
  (* index 0: NULL (already zero) *)
  Array.iteri
    (fun i (s : Types.section) ->
      write_shdr (i + 1)
        ~name_off:(Hashtbl.find shname_offsets s.name)
        ~sh_type:s.sh_type ~flags:s.flags ~addr:s.addr ~offset:s.offset
        ~size:s.size ~link:0 ~info:0 ~addralign:s.addralign ~entsize:s.entsize)
    t.sections;
  write_shdr symtab_ndx
    ~name_off:(Hashtbl.find shname_offsets ".symtab")
    ~sh_type:Types.sht_symtab ~flags:0 ~addr:0 ~offset:symtab_off
    ~size:(Bytes.length symtab) ~link:strtab_ndx ~info:1 ~addralign:8
    ~entsize:Types.sym_size;
  write_shdr strtab_ndx
    ~name_off:(Hashtbl.find shname_offsets ".strtab")
    ~sh_type:Types.sht_strtab ~flags:0 ~addr:0 ~offset:strtab_off
    ~size:(Bytes.length strtab) ~link:0 ~info:0 ~addralign:1 ~entsize:0;
  write_shdr shstr_ndx
    ~name_off:(Hashtbl.find shname_offsets ".shstrtab")
    ~sh_type:Types.sht_strtab ~flags:0 ~addr:0 ~offset:shstr_off
    ~size:(Bytes.length shstrtab) ~link:0 ~info:0 ~addralign:1 ~entsize:0;
  out
