exception Bad_table of string

type kind = Abs64 | Abs32 | Inv32

let kind_name = function
  | Abs64 -> "abs64"
  | Abs32 -> "abs32"
  | Inv32 -> "inv32"

type table = { abs64 : int array; abs32 : int array; inv32 : int array }

let empty = { abs64 = [||]; abs32 = [||]; inv32 = [||] }

let entry_count t =
  Array.length t.abs64 + Array.length t.abs32 + Array.length t.inv32

let iter t ~f =
  Array.iter (f Abs64) t.abs64;
  Array.iter (f Abs32) t.abs32;
  Array.iter (f Inv32) t.inv32

let map_sites t ~f =
  {
    abs64 = Array.map f t.abs64;
    abs32 = Array.map f t.abs32;
    inv32 = Array.map f t.inv32;
  }

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let sorted_dedup_invariant t =
  strictly_increasing t.abs64 && strictly_increasing t.abs32
  && strictly_increasing t.inv32

let magic = 0x52454c4f (* "RELO" *)

let encode t =
  let n = entry_count t in
  let out = Bytes.create (16 + (n * 8)) in
  Imk_util.Byteio.set_u32 out 0 magic;
  Imk_util.Byteio.set_u32 out 4 (Array.length t.abs64);
  Imk_util.Byteio.set_u32 out 8 (Array.length t.abs32);
  Imk_util.Byteio.set_u32 out 12 (Array.length t.inv32);
  let pos = ref 16 in
  let put v =
    Imk_util.Byteio.set_addr out !pos v;
    pos := !pos + 8
  in
  Array.iter put t.abs64;
  Array.iter put t.abs32;
  Array.iter put t.inv32;
  out

let bad msg = raise (Bad_table ("Relocation.decode: " ^ msg))

let decode b =
  if Bytes.length b < 16 then bad "truncated header";
  if Imk_util.Byteio.get_u32 b 0 <> magic then bad "bad magic";
  let n64 = Imk_util.Byteio.get_u32 b 4 in
  let n32 = Imk_util.Byteio.get_u32 b 8 in
  let ninv = Imk_util.Byteio.get_u32 b 12 in
  if Bytes.length b < 16 + ((n64 + n32 + ninv) * 8) then bad "truncated entries";
  let pos = ref 16 in
  let take n =
    Array.init n (fun _ ->
        let v =
          (* a site beyond the native-int range is corruption, not a
             programming error *)
          try Imk_util.Byteio.get_addr b !pos
          with Invalid_argument m -> bad m
        in
        pos := !pos + 8;
        v)
  in
  let abs64 = take n64 in
  let abs32 = take n32 in
  let inv32 = take ninv in
  { abs64; abs32; inv32 }

let size_bytes t = 16 + (entry_count t * 8)
