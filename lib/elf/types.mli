(** ELF64 object model.

    The synthetic kernels are real ELF64 files: a 64-byte header, program
    headers describing PT_LOAD segments, section data, a symbol table with
    string tables, and section headers — everything the monitor and the
    bootstrap loader parse when loading a kernel. Constants follow the
    ELF64 specification (only the subset exercised by kernel images is
    modelled). *)

exception Malformed of string
(** The one typed error for structurally bad ELF input, shared by every
    [Imk_elf] decoder ({!Parser}, {!Note}): bad magic, wrong class,
    truncated tables, out-of-range offsets, inconsistent note sizes. A
    malformed image must never surface as a raw [Invalid_argument] — the
    boot-failure taxonomy ([Imk_fault.Failure]) classifies this
    exception, and unclassified escapes are a bug. *)

(** {1 Constants} *)

val elf_magic : string
(** ["\x7fELF"]. *)

val elfclass64 : int
val elfdata2lsb : int
val et_exec : int
val em_x86_64 : int

val sht_null : int
val sht_progbits : int
val sht_symtab : int
val sht_strtab : int
val sht_nobits : int
val sht_note : int

val shf_write : int
val shf_alloc : int
val shf_execinstr : int

val pt_load : int
val pt_note : int

val pf_x : int
val pf_w : int
val pf_r : int

val ehdr_size : int
val phdr_size : int
val shdr_size : int
val sym_size : int

val stt_func : int
val stt_object : int

(** {1 Structures} *)

type section = {
  name : string;
  sh_type : int;
  flags : int;
  addr : int;  (** link-time virtual address (0 for non-alloc) *)
  offset : int;  (** file offset of the data *)
  size : int;  (** in-memory size; equals [Bytes.length data] except NOBITS *)
  addralign : int;
  entsize : int;
  data : bytes;  (** empty for SHT_NOBITS *)
}

type segment = {
  p_type : int;
  p_flags : int;
  p_offset : int;
  p_vaddr : int;
  p_paddr : int;  (** physical load address *)
  p_filesz : int;
  p_memsz : int;
  p_align : int;
}

type symbol = {
  sym_name : string;
  value : int;  (** virtual address *)
  sym_size : int;
  sym_type : int;  (** {!stt_func} or {!stt_object} *)
  shndx : int;  (** index into [sections]; [-1] = SHN_ABS/UNDEF *)
}

type t = {
  entry : int;  (** entry point virtual address (startup_64) *)
  sections : section array;
      (** user sections only; the NULL section and the symbol/string-table
          sections are materialized by the writer and stripped by the
          parser *)
  segments : segment array;
  symbols : symbol array;
}

val section_by_name : t -> string -> section option
(** [section_by_name t name] finds the first section named [name]. *)

val section_index : t -> string -> int option
(** [section_index t name] is its index in [t.sections]. *)

val is_function_section : section -> bool
(** [is_function_section s] recognizes the [.text.<fn>] sections produced
    by -ffunction-sections builds — the randomization unit of FGKASLR. *)

val pp_section : Format.formatter -> section -> unit
val pp : Format.formatter -> t -> unit
