open Imk_util

exception Malformed = Types.Malformed

let fail msg = raise (Malformed msg)

(* [off] and [len] each come from 64-bit file fields and can be as large
   as [Byteio.get_addr]'s 2^62 - 1 bound, so [off + len] can overflow
   OCaml's 63-bit int to a negative value and slip past a naive
   [off + len > length] check; compare against [length - len] instead *)
let check_bounds b off len what =
  if off < 0 || len < 0 || len > Bytes.length b || off > Bytes.length b - len
  then fail (what ^ ": out of bounds")

(* 64-bit header fields too large for a native int raise
   [Invalid_argument] inside [Byteio.get_addr]; that is malformed input,
   not a programming error *)
let wrap_byteio what f =
  try f () with Invalid_argument m -> fail (what ^ ": " ^ m)

let is_elf b =
  Bytes.length b >= 4 && Bytes.sub_string b 0 4 = Types.elf_magic

let check_ident b =
  if Bytes.length b < Types.ehdr_size then fail "truncated ELF header";
  if not (is_elf b) then fail "bad ELF magic";
  if Byteio.get_u8 b 4 <> Types.elfclass64 then fail "not ELFCLASS64";
  if Byteio.get_u8 b 5 <> Types.elfdata2lsb then fail "not little-endian"

let entry_point b =
  check_ident b;
  wrap_byteio "ELF header" (fun () -> Byteio.get_addr b 24)

let read_cstr b off =
  let n = Bytes.length b in
  if off < 0 || off >= n then fail "string table offset out of range";
  let rec stop i = if i >= n || Bytes.get b i = '\000' then i else stop (i + 1) in
  Bytes.sub_string b off (stop off - off)

type raw_shdr = {
  rs_name : int;
  rs_type : int;
  rs_flags : int;
  rs_addr : int;
  rs_offset : int;
  rs_size : int;
  rs_link : int;
  rs_addralign : int;
  rs_entsize : int;
}

let parse b =
  check_ident b;
  wrap_byteio "ELF image" @@ fun () ->
  let entry = Byteio.get_addr b 24 in
  let phoff = Byteio.get_addr b 32 in
  let shoff = Byteio.get_addr b 40 in
  let phnum = Byteio.get_u16 b 56 in
  let shnum = Byteio.get_u16 b 60 in
  let shstrndx = Byteio.get_u16 b 62 in
  check_bounds b phoff (phnum * Types.phdr_size) "program headers";
  check_bounds b shoff (shnum * Types.shdr_size) "section headers";
  let segments =
    Array.init phnum (fun i ->
        let base = phoff + (i * Types.phdr_size) in
        {
          Types.p_type = Byteio.get_u32 b base;
          p_flags = Byteio.get_u32 b (base + 4);
          p_offset = Byteio.get_addr b (base + 8);
          p_vaddr = Byteio.get_addr b (base + 16);
          p_paddr = Byteio.get_addr b (base + 24);
          p_filesz = Byteio.get_addr b (base + 32);
          p_memsz = Byteio.get_addr b (base + 40);
          p_align = Byteio.get_addr b (base + 48);
        })
  in
  let raw =
    Array.init shnum (fun i ->
        let base = shoff + (i * Types.shdr_size) in
        {
          rs_name = Byteio.get_u32 b base;
          rs_type = Byteio.get_u32 b (base + 4);
          rs_flags = Byteio.get_addr b (base + 8);
          rs_addr = Byteio.get_addr b (base + 16);
          rs_offset = Byteio.get_addr b (base + 24);
          rs_size = Byteio.get_addr b (base + 32);
          rs_link = Byteio.get_u32 b (base + 40);
          rs_addralign = Byteio.get_addr b (base + 48);
          rs_entsize = Byteio.get_addr b (base + 56);
        })
  in
  if shnum = 0 then fail "no sections";
  if shstrndx >= shnum then fail "shstrndx out of range";
  let shstr = raw.(shstrndx) in
  check_bounds b shstr.rs_offset shstr.rs_size "shstrtab";
  let shstrtab = Bytes.sub b shstr.rs_offset shstr.rs_size in
  let name_of rs = read_cstr shstrtab rs.rs_name in
  (* locate symtab + its strtab *)
  let symtab_ndx = ref (-1) in
  Array.iteri
    (fun i rs -> if rs.rs_type = Types.sht_symtab && !symtab_ndx = -1 then symtab_ndx := i)
    raw;
  (* user sections: every section except NULL(0), symtab, its strtab, and
     shstrtab *)
  let strtab_ndx = if !symtab_ndx >= 0 then raw.(!symtab_ndx).rs_link else -1 in
  let is_user i _rs =
    i <> 0 && i <> !symtab_ndx && i <> strtab_ndx && i <> shstrndx
  in
  let user_indices =
    Array.to_list (Array.mapi (fun i rs -> (i, rs)) raw)
    |> List.filter (fun (i, rs) -> is_user i rs)
    |> List.map fst
  in
  (* map raw index -> user index for symbol shndx translation *)
  let user_pos = Hashtbl.create 64 in
  List.iteri (fun pos i -> Hashtbl.add user_pos i pos) user_indices;
  let sections =
    Array.of_list
      (List.map
         (fun i ->
           let rs = raw.(i) in
           let data =
             if rs.rs_type = Types.sht_nobits then Bytes.create 0
             else begin
               check_bounds b rs.rs_offset rs.rs_size (name_of rs);
               Bytes.sub b rs.rs_offset rs.rs_size
             end
           in
           {
             Types.name = name_of rs;
             sh_type = rs.rs_type;
             flags = rs.rs_flags;
             addr = rs.rs_addr;
             offset = rs.rs_offset;
             size = rs.rs_size;
             addralign = rs.rs_addralign;
             entsize = rs.rs_entsize;
             data;
           })
         user_indices)
  in
  let symbols =
    if !symtab_ndx < 0 then [||]
    else begin
      let st = raw.(!symtab_ndx) in
      if strtab_ndx < 0 || strtab_ndx >= shnum then fail "symtab has no strtab";
      let strt = raw.(strtab_ndx) in
      check_bounds b st.rs_offset st.rs_size "symtab";
      check_bounds b strt.rs_offset strt.rs_size "strtab";
      let strtab = Bytes.sub b strt.rs_offset strt.rs_size in
      let count = st.rs_size / Types.sym_size in
      (* skip the mandatory null symbol at index 0 *)
      Array.init (max 0 (count - 1)) (fun k ->
          let base = st.rs_offset + ((k + 1) * Types.sym_size) in
          let st_shndx = Byteio.get_u16 b (base + 6) in
          let shndx =
            if st_shndx = 0 || st_shndx >= 0xff00 then -1
            else
              match Hashtbl.find_opt user_pos st_shndx with
              | Some pos -> pos
              | None -> -1
          in
          {
            Types.sym_name = read_cstr strtab (Byteio.get_u32 b base);
            sym_type = Byteio.get_u8 b (base + 4) land 0xf;
            shndx;
            value = Byteio.get_addr b (base + 8);
            sym_size = Byteio.get_addr b (base + 16);
          })
    end
  in
  { Types.entry; sections; segments; symbols }
