(** Relocation tables — the [vmlinux.relocs] companion file.

    Linux's build appends relocation information to the kernel image before
    compression (paper §2.2, Figure 2); the same data can be produced
    separately by the in-tree [relocs] tool, which is how the paper's
    modified Firecracker receives it (§4.3, Figure 8). The table divides
    entries into the three kinds the bootstrap loader distinguishes
    (§3.2):

    - 64-bit absolute addresses that get the offset {e added};
    - 32-bit absolute addresses that get the offset {e added};
    - 32-bit {e inverse} addresses that get the offset {e subtracted}.

    Each entry records the link-time virtual address of the {e site} — the
    location in the kernel image holding the value to patch. *)

exception Bad_table of string
(** A corrupt relocs file: bad magic, truncated header or entries, a site
    address outside the native-int range. Typed (rather than
    [Invalid_argument]) so the boot-failure taxonomy can classify it and
    a supervisor can fall back to re-deriving the table from the ELF. *)

type kind = Abs64 | Abs32 | Inv32

val kind_name : kind -> string

type table = {
  abs64 : int array;  (** site vaddrs of 64-bit absolute relocations *)
  abs32 : int array;  (** site vaddrs of 32-bit absolute relocations *)
  inv32 : int array;  (** site vaddrs of 32-bit inverse relocations *)
}

val empty : table

val entry_count : table -> int
(** [entry_count t] is the total number of entries across the three
    kinds — the unit of relocation-handling cost. *)

val iter : table -> f:(kind -> int -> unit) -> unit
(** [iter t ~f] visits every entry (all abs64, then abs32, then inv32). *)

val map_sites : table -> f:(int -> int) -> table
(** [map_sites t ~f] rewrites every site address — used when function
    sections move under FGKASLR and the sites themselves relocate. *)

val sorted_dedup_invariant : table -> bool
(** [sorted_dedup_invariant t] checks each kind's sites are strictly
    increasing — the form the kernel build emits and property tests
    expect. *)

val encode : table -> bytes
(** [encode t] serializes to the on-disk .relocs format: magic, three
    counts, then the site arrays as 64-bit little-endian values. *)

val decode : bytes -> table
(** [decode b] parses {!encode}'s output. Raises {!Bad_table} on bad
    magic or truncation (a corrupt relocs file must fail loudly — silently
    mis-relocating a kernel is the worst possible outcome). *)

val size_bytes : table -> int
(** [size_bytes t] is the encoded size, reported in Table 1. *)
