exception Malformed of string

let elf_magic = "\x7fELF"
let elfclass64 = 2
let elfdata2lsb = 1
let et_exec = 2
let em_x86_64 = 62
let sht_null = 0
let sht_progbits = 1
let sht_symtab = 2
let sht_strtab = 3
let sht_nobits = 8
let sht_note = 7
let shf_write = 1
let shf_alloc = 2
let shf_execinstr = 4
let pt_load = 1
let pt_note = 4
let pf_x = 1
let pf_w = 2
let pf_r = 4
let ehdr_size = 64
let phdr_size = 56
let shdr_size = 64
let sym_size = 24
let stt_func = 2
let stt_object = 1

type section = {
  name : string;
  sh_type : int;
  flags : int;
  addr : int;
  offset : int;
  size : int;
  addralign : int;
  entsize : int;
  data : bytes;
}

type segment = {
  p_type : int;
  p_flags : int;
  p_offset : int;
  p_vaddr : int;
  p_paddr : int;
  p_filesz : int;
  p_memsz : int;
  p_align : int;
}

type symbol = {
  sym_name : string;
  value : int;
  sym_size : int;
  sym_type : int;
  shndx : int;
}

type t = {
  entry : int;
  sections : section array;
  segments : segment array;
  symbols : symbol array;
}

let section_by_name t name =
  Array.find_opt (fun s -> s.name = name) t.sections

let section_index t name =
  let found = ref None in
  Array.iteri
    (fun i s -> if s.name = name && !found = None then found := Some i)
    t.sections;
  !found

let is_function_section s =
  String.length s.name > 6 && String.sub s.name 0 6 = ".text."

let pp_section ppf s =
  Format.fprintf ppf "%-24s type=%d flags=%#x addr=%#x off=%#x size=%d align=%d"
    s.name s.sh_type s.flags s.addr s.offset s.size s.addralign

let pp ppf t =
  Format.fprintf ppf "@[<v>entry=%#x@,%d sections, %d segments, %d symbols@,"
    t.entry (Array.length t.sections) (Array.length t.segments)
    (Array.length t.symbols);
  Array.iter (fun s -> Format.fprintf ppf "%a@," pp_section s) t.sections;
  Format.fprintf ppf "@]"
