(** ELF note sections.

    §4.3 closes with: the kernel constants the monitor needs
    (CONFIG_PHYSICAL_START/ALIGN, [__START_KERNEL_map],
    KERNEL_IMAGE_SIZE) "could be prepended to the kernel binary as an ELF
    note, making them easy to retrieve" — instead of hardcoding them.
    This module implements standard ELF note encoding (4-byte-aligned
    name/desc records) plus the concrete KASLR-constants note the
    synthetic kernels carry in a [.note.kaslr] section, which the monitor
    reads and checks before randomizing. *)

type t = { owner : string; note_type : int; desc : bytes }

val encode : t -> bytes
(** Standard layout: namesz, descsz, type, NUL-terminated owner padded to
    4 bytes, desc padded to 4 bytes. *)

val decode : bytes -> t
(** Raises {!Types.Malformed} on truncation or inconsistent sizes. *)

(** {1 The KASLR-constants note} *)

val kaslr_owner : string
(** ["IMK-KASLR"]. *)

val kaslr_note_type : int

type kaslr_constants = {
  phys_start : int;  (** CONFIG_PHYSICAL_START *)
  phys_align : int;  (** CONFIG_PHYSICAL_ALIGN *)
  kmap_base : int;  (** __START_KERNEL_map *)
  image_size_max : int;  (** KERNEL_IMAGE_SIZE (the fixmap limit) *)
}

val encode_kaslr : kaslr_constants -> t
val decode_kaslr : t -> kaslr_constants
(** Raises {!Types.Malformed} if the note is not a KASLR-constants note. *)

val section_name : string
(** [".note.kaslr"]. *)
