open Imk_util

type t = { owner : string; note_type : int; desc : bytes }

let align4 n = (n + 3) land lnot 3

let encode t =
  let namesz = String.length t.owner + 1 in
  let descsz = Bytes.length t.desc in
  let total = 12 + align4 namesz + align4 descsz in
  let out = Bytes.make total '\000' in
  Byteio.set_u32 out 0 namesz;
  Byteio.set_u32 out 4 descsz;
  Byteio.set_u32 out 8 t.note_type;
  Byteio.blit_string t.owner out 12;
  Bytes.blit t.desc 0 out (12 + align4 namesz) descsz;
  out

let malformed msg = raise (Types.Malformed msg)

let decode b =
  if Bytes.length b < 12 then malformed "Elf.Note.decode: truncated header";
  let namesz = Byteio.get_u32 b 0 in
  let descsz = Byteio.get_u32 b 4 in
  let note_type = Byteio.get_u32 b 8 in
  if namesz < 1 || 12 + align4 namesz + align4 descsz > Bytes.length b then
    malformed "Elf.Note.decode: inconsistent sizes";
  let owner = Bytes.sub_string b 12 (namesz - 1) in
  let desc = Bytes.sub b (12 + align4 namesz) descsz in
  { owner; note_type; desc }

let kaslr_owner = "IMK-KASLR"
let kaslr_note_type = 0x4b41 (* "KA" *)
let section_name = ".note.kaslr"

type kaslr_constants = {
  phys_start : int;
  phys_align : int;
  kmap_base : int;
  image_size_max : int;
}

let encode_kaslr c =
  let desc = Bytes.create 32 in
  Byteio.set_addr desc 0 c.phys_start;
  Byteio.set_addr desc 8 c.phys_align;
  Byteio.set_addr desc 16 c.kmap_base;
  Byteio.set_addr desc 24 c.image_size_max;
  { owner = kaslr_owner; note_type = kaslr_note_type; desc }

let decode_kaslr t =
  if t.owner <> kaslr_owner || t.note_type <> kaslr_note_type then
    malformed "Elf.Note.decode_kaslr: not a KASLR-constants note";
  if Bytes.length t.desc <> 32 then
    malformed "Elf.Note.decode_kaslr: bad descriptor size";
  {
    phys_start = Byteio.get_addr t.desc 0;
    phys_align = Byteio.get_addr t.desc 8;
    kmap_base = Byteio.get_addr t.desc 16;
    image_size_max = Byteio.get_addr t.desc 24;
  }
