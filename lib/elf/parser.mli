(** ELF64 parsing.

    Inverts {!Writer.write}: reads the header, program headers, section
    headers, section data and the symbol table, returning the same
    {!Types.t} the writer consumed (the NULL section and the three
    generated table sections are stripped). Both the monitor and the
    bootstrap loader use this to load kernels, so malformed input must
    fail with a typed error rather than produce a half-loaded kernel. *)

exception Malformed of string
(** Raised on any structural problem: bad magic, wrong class, truncated
    tables, out-of-range offsets, 64-bit fields too large for a native
    int. The same exception as {!Types.Malformed}, shared by every
    [Imk_elf] decoder — existing handlers keep working. *)

val parse : bytes -> Types.t
(** [parse b] parses a full ELF image. *)

val entry_point : bytes -> int
(** [entry_point b] reads just [e_entry] — what a boot protocol needs
    before committing to a full parse. *)

val is_elf : bytes -> bool
(** [is_elf b] checks the magic without raising. *)
