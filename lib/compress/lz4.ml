let min_match = 4

(* 255-run length extension used by both fields of the token byte. *)
let put_ext buf n =
  let n = ref n in
  while !n >= 255 do
    Buffer.add_char buf '\255';
    n := !n - 255
  done;
  Buffer.add_char buf (Char.chr !n)

let flush_sequence buf literals ~m =
  let lit_len = Buffer.length literals in
  let lit_field = min lit_len 15 in
  let match_field =
    match m with
    | None -> 0
    | Some (_, len) -> min (len - min_match) 15
  in
  Buffer.add_char buf (Char.chr ((lit_field lsl 4) lor match_field));
  if lit_field = 15 then put_ext buf (lit_len - 15);
  Buffer.add_buffer buf literals;
  Buffer.clear literals;
  match m with
  | None -> ()
  | Some (dist, len) ->
      Buffer.add_char buf (Char.chr (dist land 0xff));
      Buffer.add_char buf (Char.chr ((dist lsr 8) land 0xff));
      if match_field = 15 then put_ext buf (len - min_match - 15)

let encode_payload input =
  let buf = Buffer.create (Bytes.length input / 2) in
  let literals = Buffer.create 256 in
  let emit = function
    | Lz77.Literal c -> Buffer.add_char literals c
    | Lz77.Match { dist; len } -> flush_sequence buf literals ~m:(Some (dist, len))
  in
  Lz77.parse Lz77.lz4_config input ~f:emit;
  (* final literals-only sequence (always present, possibly empty, so the
     decoder has an unambiguous end) *)
  flush_sequence buf literals ~m:None;
  Buffer.to_bytes buf

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let n = Bytes.length b in
  let pos = ref src_off in
  let byte () =
    if !pos >= n then raise (Codec.Corrupt "lz4: truncated");
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    c
  in
  let ext base =
    if base < 15 then base
    else begin
      let total = ref base in
      let rec go () =
        let c = byte () in
        total := !total + c;
        if c = 255 then go ()
      in
      go ();
      !total
    end
  in
  (* write confinement: every store below is at dst_off + w + k with
     w + k < w + len <= orig_len (checked per token), every load from
     dst is at dst_off + w + k - dist >= dst_off since dist <= w *)
  let w = ref 0 in
  let rec sequence () =
    let token = byte () in
    let lit_len = ext (token lsr 4) in
    if !w + lit_len > orig_len || !pos + lit_len > n then
      raise (Codec.Corrupt "lz4: literal run overflow");
    Bytes.blit b !pos dst (dst_off + !w) lit_len;
    pos := !pos + lit_len;
    w := !w + lit_len;
    if !pos < n then begin
      let lo = byte () in
      let hi = byte () in
      let dist = lo lor (hi lsl 8) in
      let len = ext (token land 0xf) + min_match in
      if dist = 0 || dist > !w then raise (Codec.Corrupt "lz4: bad distance");
      if !w + len > orig_len then raise (Codec.Corrupt "lz4: match overflow");
      for k = 0 to len - 1 do
        Bytes.set dst (dst_off + !w + k) (Bytes.get dst (dst_off + !w + k - dist))
      done;
      w := !w + len;
      sequence ()
    end
  in
  if orig_len > 0 || n > src_off then sequence ();
  if !w <> orig_len then raise (Codec.Corrupt "lz4: short stream")

let decode_payload b ~orig_len =
  let out = Bytes.create orig_len in
  decode_payload_into b ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
  out

let codec =
  Codec.make ~name:"lz4" ~encode:encode_payload ~decode_into:decode_payload_into
