(* Both endpoints batch bits through an int accumulator instead of
   moving one bit at a time. Bits are MSB-first within each byte (the
   canonical-Huffman convention), so the writer flushes from the top of
   its accumulator and the reader serves from the top of its buffered
   window. Only the low [nbits] bits of an accumulator are meaningful;
   higher bits may hold stale garbage, and every extraction masks, so
   the hot paths never pay to keep the high bits clean. *)

module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int; mutable total : int }

  let create () = { buf = Buffer.create 4096; acc = 0; nbits = 0; total = 0 }

  let put_bits w v n =
    if n < 0 || n > 24 then invalid_arg "Bitio.put_bits: n out of range";
    w.acc <- (w.acc lsl n) lor (v land ((1 lsl n) - 1));
    w.nbits <- w.nbits + n;
    w.total <- w.total + n;
    (* flush whole bytes from the top; nbits stays < 8 between calls, so
       the accumulator never exceeds 7 + 24 bits *)
    while w.nbits >= 8 do
      w.nbits <- w.nbits - 8;
      Buffer.add_char w.buf (Char.chr ((w.acc lsr w.nbits) land 0xff))
    done

  let put_bit w b = put_bits w (b land 1) 1

  let put_code w ~code ~len = put_bits w code len

  let align_byte w =
    let pad = (8 - (w.nbits land 7)) land 7 in
    if pad > 0 then put_bits w 0 pad

  let contents w =
    align_byte w;
    Buffer.to_bytes w.buf

  let bit_length w = w.total
end

module Reader = struct
  type t = {
    data : bytes;
    len : int;
    mutable pos : int;  (* next byte to refill from *)
    mutable acc : int;  (* low [nbits] bits pending, next bit on top *)
    mutable nbits : int;
  }

  exception Truncated

  let create data ~pos = { data; len = Bytes.length data; pos; acc = 0; nbits = 0 }

  (* Refill whole bytes until [need] bits are buffered or the stream is
     exhausted. [need] <= 25, so the live window stays under 32 bits and
     the left shifts can never push meaningful bits past an OCaml int.
     The bounds check is the loop condition itself; the unsafe_get reads
     a byte the check just proved in range. *)
  let refill r need =
    while r.nbits < need && r.pos < r.len do
      r.acc <- (r.acc lsl 8) lor Char.code (Bytes.unsafe_get r.data r.pos);
      r.pos <- r.pos + 1;
      r.nbits <- r.nbits + 8
    done

  let peek_bits r n =
    if n < 0 || n > 24 then invalid_arg "Bitio.peek_bits: n out of range";
    if r.nbits < n then refill r n;
    if r.nbits >= n then (r.acc lsr (r.nbits - n)) land ((1 lsl n) - 1)
    else
      (* stream exhausted: pad with zero bits on the right, as zlib does —
         consume catches any attempt to actually claim the padding *)
      ((r.acc land ((1 lsl r.nbits) - 1)) lsl (n - r.nbits)) land ((1 lsl n) - 1)

  let consume r n =
    if r.nbits < n then begin
      refill r n;
      if r.nbits < n then raise Truncated
    end;
    r.nbits <- r.nbits - n

  let get_bit r =
    if r.nbits = 0 then begin
      refill r 1;
      if r.nbits = 0 then raise Truncated
    end;
    r.nbits <- r.nbits - 1;
    (r.acc lsr r.nbits) land 1

  let get_bits r n =
    if n < 0 || n > 24 then invalid_arg "Bitio.get_bits: n out of range";
    if r.nbits < n then begin
      refill r n;
      if r.nbits < n then raise Truncated
    end;
    r.nbits <- r.nbits - n;
    (r.acc lsr r.nbits) land ((1 lsl n) - 1)

  let align_byte r = r.nbits <- r.nbits - (r.nbits land 7)

  let byte_pos r = r.pos - (r.nbits lsr 3)
end
