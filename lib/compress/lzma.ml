let min_match = 3

type models = {
  is_match : Range_coder.prob; (* ctx: previous decision was a match *)
  literal : Range_coder.prob array; (* 8 contexts of a 256-node tree *)
  len_choice : Range_coder.prob;
  len_low : Range_coder.prob; (* 3-bit tree *)
  len_high : Range_coder.prob; (* 9-bit tree *)
  dist_slot : Range_coder.prob; (* 5-bit tree *)
}

let make_models () =
  {
    is_match = Range_coder.make_probs 2;
    literal = Array.init 8 (fun _ -> Range_coder.make_probs 256);
    len_choice = Range_coder.make_probs 2;
    len_low = Range_coder.make_probs 8;
    len_high = Range_coder.make_probs 512;
    dist_slot = Range_coder.make_probs 32;
  }

let lit_ctx prev = prev lsr 5

(* Distance d-1 is coded as a bit-length slot (0..20) plus the bits below
   the leading one as direct bits. *)
let bit_length v =
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 1) in
  go 0 v

let encode_payload input =
  let e = Range_coder.Encoder.create () in
  let m = make_models () in
  let prev_byte = ref 0 and prev_match = ref 0 in
  let pos = ref 0 in
  let emit = function
    | Lz77.Literal c ->
        Range_coder.Encoder.encode_bit e m.is_match !prev_match 0;
        Range_coder.Encoder.encode_tree e m.literal.(lit_ctx !prev_byte) (Char.code c) 8;
        prev_byte := Char.code c;
        prev_match := 0;
        incr pos
    | Lz77.Match { dist; len } ->
        Range_coder.Encoder.encode_bit e m.is_match !prev_match 1;
        let l = len - min_match in
        if l < 8 then begin
          Range_coder.Encoder.encode_bit e m.len_choice 0 0;
          Range_coder.Encoder.encode_tree e m.len_low l 3
        end
        else begin
          Range_coder.Encoder.encode_bit e m.len_choice 0 1;
          Range_coder.Encoder.encode_tree e m.len_high (l - 8) 9
        end;
        let d = dist - 1 in
        let slot = bit_length d in
        Range_coder.Encoder.encode_tree e m.dist_slot slot 5;
        if slot >= 2 then
          Range_coder.Encoder.encode_direct e (d land ((1 lsl (slot - 1)) - 1)) (slot - 1);
        pos := !pos + len;
        prev_match := 1;
        prev_byte := Char.code (Bytes.get input (!pos - 1))
  in
  Lz77.parse Lz77.lzma_config input ~f:emit;
  Range_coder.Encoder.finish e

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let d = Range_coder.Decoder.create b ~pos:src_off in
  let m = make_models () in
  (* write confinement: stores land at dst_off + w (+ k) with
     w (+ k) < orig_len checked per decision; loads from dst are at
     dst_off + w + k - dist >= dst_off since dist <= w *)
  let w = ref 0 and prev_byte = ref 0 and prev_match = ref 0 in
  while !w < orig_len do
    if Range_coder.Decoder.decode_bit d m.is_match !prev_match = 0 then begin
      let c = Range_coder.Decoder.decode_tree d m.literal.(lit_ctx !prev_byte) 8 in
      Bytes.set dst (dst_off + !w) (Char.chr c);
      prev_byte := c;
      prev_match := 0;
      incr w
    end
    else begin
      let l =
        if Range_coder.Decoder.decode_bit d m.len_choice 0 = 0 then
          Range_coder.Decoder.decode_tree d m.len_low 3
        else 8 + Range_coder.Decoder.decode_tree d m.len_high 9
      in
      let len = l + min_match in
      let slot = Range_coder.Decoder.decode_tree d m.dist_slot 5 in
      let dval =
        if slot = 0 then 0
        else if slot = 1 then 1
        else
          (1 lsl (slot - 1)) lor Range_coder.Decoder.decode_direct d (slot - 1)
      in
      let dist = dval + 1 in
      if dist > !w then raise (Codec.Corrupt "lzma: distance before start");
      if !w + len > orig_len then raise (Codec.Corrupt "lzma: match overflow");
      for k = 0 to len - 1 do
        Bytes.set dst (dst_off + !w + k) (Bytes.get dst (dst_off + !w + k - dist))
      done;
      w := !w + len;
      prev_byte := Char.code (Bytes.get dst (dst_off + !w - 1));
      prev_match := 1
    end
  done

let decode_payload b ~orig_len =
  let out = Bytes.create orig_len in
  decode_payload_into b ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
  out

let codec =
  Codec.make ~name:"lzma" ~encode:encode_payload ~decode_into:decode_payload_into
