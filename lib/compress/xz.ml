let stream_flags = 0x01 (* check type: CRC32 *)

let encode_payload input =
  let inner = Lzma.encode_payload input in
  let out = Bytes.create (1 + 4 + Bytes.length inner) in
  Imk_util.Byteio.set_u8 out 0 stream_flags;
  Imk_util.Byteio.set_u32 out 1 (Imk_util.Crc.crc32 inner 0 (Bytes.length inner));
  Bytes.blit inner 0 out 5 (Bytes.length inner);
  out

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let n = Bytes.length b in
  if n - src_off < 5 then raise (Codec.Corrupt "xz: truncated container");
  if Imk_util.Byteio.get_u8 b src_off <> stream_flags then
    raise (Codec.Corrupt "xz: unsupported stream flags");
  let crc = Imk_util.Byteio.get_u32 b (src_off + 1) in
  if Imk_util.Crc.crc32 b (src_off + 5) (n - src_off - 5) <> crc then
    raise (Codec.Corrupt "xz: compressed payload CRC mismatch");
  Lzma.decode_payload_into b ~src_off:(src_off + 5) ~dst ~dst_off ~orig_len

let codec =
  Codec.make ~name:"xz" ~encode:encode_payload ~decode_into:decode_payload_into
