(** Shared LZ77 match finder.

    All dictionary codecs in this library (LZ4, LZO, gzip's DEFLATE-style
    layer, LZMA) are LZ77 parsers differing only in window size, match
    search effort and back-end encoding. This module supplies the parser:
    a hash-chain match finder that walks the input once and emits a token
    stream. Codecs differ by their {!config} and by how they serialize the
    tokens, which is what gives them their characteristic ratio/speed
    trade-offs on the kernel images. *)

type token =
  | Literal of char
  | Match of { dist : int; len : int }
      (** copy [len] bytes from [dist] bytes back; [dist >= 1],
          [dist <= window] and [len >= min_match] of the config. *)

type config = {
  window : int;  (** maximum match distance *)
  min_match : int;  (** shortest usable match, 3 or 4 *)
  max_match : int;  (** longest encodable match *)
  hash_bits : int;  (** size of the head table = 2^hash_bits *)
  max_chain : int;  (** probes per position; higher = better ratio, slower *)
}

val lz4_config : config
(** 64 KiB window, min match 4, shallow chains — fast, modest ratio. *)

val lzo_config : config
(** 48 KiB window, min match 3, single-probe — fastest, weakest ratio. *)

val deflate_config : config
(** 32 KiB window, min match 3, deep chains — the gzip work profile. *)

val lzma_config : config
(** 1 MiB window, min match 2 encoded as ≥3 here, very deep chains —
    the slow/high-ratio end of the spectrum. *)

val parse : config -> bytes -> f:(token -> unit) -> unit
(** [parse cfg input ~f] scans [input] left to right, calling [f] for each
    token. Concatenating the tokens (literals verbatim, matches resolved
    against already-produced output) reconstructs [input] exactly. *)

val into_output :
  dst:bytes ->
  dst_off:int ->
  orig_len:int ->
  (lit:(char -> unit) -> cpy:(dist:int -> len:int -> unit) -> unit) ->
  unit
(** [into_output ~dst ~dst_off ~orig_len produce] replays a token stream
    into the caller-owned window [\[dst_off, dst_off + orig_len)] of
    [dst] without materializing tokens: [produce] receives a literal
    sink and a match-copy sink and calls them in stream order. Each copy
    validates its whole range once (distance within produced output, end
    within [orig_len]) and then moves bytes with [Bytes.blit], or with
    an unsafe forward byte-replication loop when the match overlaps its
    own output — the audited unsafe-after-validation pattern
    (DESIGN.md §4.7). Write confinement: no byte outside the window is
    ever written, even on corrupt streams, which is what lets codecs
    decode straight into guest-destined buffers. Raises [Codec.Corrupt]
    on any overflow or bad distance; [Invalid_argument] only if the
    window itself does not fit in [dst] (a caller bug, not input). The
    hot decode path for gzip; LZ4/LZO reach it through
    {!apply_tokens_into}. *)

val with_output :
  orig_len:int ->
  (lit:(char -> unit) -> cpy:(dist:int -> len:int -> unit) -> unit) ->
  bytes
(** [with_output ~orig_len produce] is {!into_output} into a fresh
    buffer of exactly [orig_len] bytes — the allocating copy-decode
    path. *)

val apply_tokens_into :
  dst:bytes ->
  dst_off:int ->
  orig_len:int ->
  ((token -> unit) -> unit) ->
  unit
(** [apply_tokens_into ~dst ~dst_off ~orig_len produce] is
    {!into_output} for a producer that emits {!token} values. Raises
    [Codec.Corrupt] if tokens overflow the window or a match reaches
    before the start. *)

val apply_tokens : orig_len:int -> (((token -> unit) -> unit)) -> bytes
(** [apply_tokens ~orig_len produce] is {!apply_tokens_into} into a
    fresh buffer of exactly [orig_len] bytes. *)
