let block_size = 128 * 1024
let runa = 0
let runb = 1
let eob = 257
let alphabet = 258

(* Zero-run length in bijective base 2 over digits {RUNA=1, RUNB=2},
   least significant digit first — the actual bzip2 scheme. *)
let emit_run out n =
  let n = ref n in
  while !n > 0 do
    if !n land 1 = 1 then begin
      out runa;
      n := (!n - 1) / 2
    end
    else begin
      out runb;
      n := (!n - 2) / 2
    end
  done

let rle2_encode mtf =
  let out = ref [] in
  let push s = out := s :: !out in
  let zeros = ref 0 in
  Array.iter
    (fun v ->
      if v = 0 then incr zeros
      else begin
        emit_run push !zeros;
        zeros := 0;
        push (v + 1)
      end)
    mtf;
  emit_run push !zeros;
  push eob;
  Array.of_list (List.rev !out)

let rle2_decode syms =
  let out = ref [] in
  let produced = ref 0 in
  let run = ref 0 and place = ref 1 in
  let emit v =
    incr produced;
    (* a corrupt stream can encode astronomically long zero runs; no
       valid block exceeds the block size *)
    if !produced > block_size then raise (Codec.Corrupt "bzip2: run overflow");
    out := v :: !out
  in
  let flush_run () =
    for _ = 1 to !run do
      emit 0
    done;
    run := 0;
    place := 1
  in
  let finished = ref false in
  Array.iter
    (fun s ->
      if !finished then ()
      else if s = runa then begin
        run := !run + !place;
        place := !place * 2;
        if !run > block_size then raise (Codec.Corrupt "bzip2: run overflow")
      end
      else if s = runb then begin
        run := !run + (2 * !place);
        place := !place * 2;
        if !run > block_size then raise (Codec.Corrupt "bzip2: run overflow")
      end
      else if s = eob then begin
        flush_run ();
        finished := true
      end
      else begin
        flush_run ();
        out := (s - 1) :: !out
      end)
    syms;
  if not !finished then raise (Codec.Corrupt "bzip2: missing end-of-block");
  Array.of_list (List.rev !out)

let encode_block w block =
  let { Bwt.last_column; primary } = Bwt.forward block in
  let syms = rle2_encode (Mtf.encode last_column) in
  let freqs = Array.make alphabet 0 in
  Array.iter (fun s -> freqs.(s) <- freqs.(s) + 1) syms;
  let lens = Huffman.lengths_of_freqs freqs in
  Bitio.Writer.put_bits w (Bytes.length block) 24;
  Bitio.Writer.put_bits w primary 24;
  Huffman.write_lengths w lens;
  let enc = Huffman.encoder_of_lengths lens in
  Array.iter (fun s -> Huffman.encode enc w s) syms

let decode_block r =
  let len = Bitio.Reader.get_bits r 24 in
  let primary = Bitio.Reader.get_bits r 24 in
  let lens = Huffman.read_lengths r alphabet in
  let dec = Huffman.decoder_of_lengths lens in
  let syms = ref [] in
  let rec read () =
    let s = Huffman.decode dec r in
    syms := s :: !syms;
    if s <> eob then read ()
  in
  read ();
  let mtf = rle2_decode (Array.of_list (List.rev !syms)) in
  if Array.length mtf <> len then raise (Codec.Corrupt "bzip2: block length mismatch");
  let block = Bwt.inverse { Bwt.last_column = Mtf.decode mtf; primary } in
  if Bytes.length block <> len then raise (Codec.Corrupt "bzip2: inverse BWT length");
  block

let encode_payload input =
  let n = Bytes.length input in
  let w = Bitio.Writer.create () in
  let nblocks = if n = 0 then 0 else ((n - 1) / block_size) + 1 in
  Bitio.Writer.put_bits w nblocks 16;
  for b = 0 to nblocks - 1 do
    let off = b * block_size in
    let len = min block_size (n - off) in
    encode_block w (Bytes.sub input off len)
  done;
  Bitio.Writer.contents w

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let r = Bitio.Reader.create b ~pos:src_off in
  let nblocks = Bitio.Reader.get_bits r 16 in
  let w = ref 0 in
  for _ = 1 to nblocks do
    let block = decode_block r in
    let len = Bytes.length block in
    if !w + len > orig_len then
      raise (Codec.Corrupt "bzip2: stream length mismatch");
    Bytes.blit block 0 dst (dst_off + !w) len;
    w := !w + len
  done;
  if !w <> orig_len then raise (Codec.Corrupt "bzip2: stream length mismatch")

let decode_payload b ~orig_len =
  let out = Bytes.create orig_len in
  decode_payload_into b ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
  out

let codec =
  Codec.make ~name:"bzip2" ~encode:encode_payload ~decode_into:decode_payload_into
