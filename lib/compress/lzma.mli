(** LZMA-style codec: large-window LZ77 + adaptive range coding.

    A 1 MiB-window, deep-chain LZ77 parse is entropy-coded with the
    adaptive binary models of real LZMA: a match/literal switch
    conditioned on the previous decision, literal bit-trees conditioned on
    the previous byte's high bits (lc = 3), a two-tier length coder, and a
    distance-slot tree followed by direct bits. Best ratio of the suite
    and the slowest — the xz/lzma end of the paper's Figure 3 spectrum. *)

val codec : Codec.t

val encode_payload : bytes -> bytes
val decode_payload : bytes -> orig_len:int -> bytes

val decode_payload_into :
  bytes -> src_off:int -> dst:bytes -> dst_off:int -> orig_len:int -> unit
(** Sink form of {!decode_payload}: decodes the payload starting at
    [src_off] into [\[dst_off, dst_off + orig_len)] of [dst], confining
    every write to that window. The Xz container decodes through this
    after its own integrity check. *)
