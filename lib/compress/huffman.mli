(** Canonical Huffman coding.

    Shared by the gzip-style and bzip2-style codecs. Codes are canonical:
    only the per-symbol code *lengths* are stored in compressed streams,
    and both sides rebuild identical codebooks from them, exactly as
    DEFLATE and bzip2 do. *)

val lengths_of_freqs : ?max_len:int -> int array -> int array
(** [lengths_of_freqs ?max_len freqs] computes code lengths for each
    symbol from its frequency. Symbols with zero frequency get length 0
    (no code). Lengths are limited to [max_len] (default 15) with a
    Kraft-sum repair pass when the raw Huffman tree is deeper. If exactly
    one symbol occurs it receives length 1. *)

val kraft_sum_valid : int array -> bool
(** [kraft_sum_valid lens] checks Σ 2^(-len) ≤ 1 over nonzero lengths —
    the decodability invariant the property tests assert. *)

type encoder

val encoder_of_lengths : int array -> encoder
(** [encoder_of_lengths lens] assigns canonical codes (shorter codes
    first, ties broken by symbol index). *)

val encode : encoder -> Bitio.Writer.t -> int -> unit
(** [encode enc w sym] writes [sym]'s code. Raises [Invalid_argument] if
    [sym] has no code (length 0). *)

type decoder

val decoder_of_lengths : int array -> decoder
(** [decoder_of_lengths lens] builds the canonical decoder for the same
    lengths: a zlib-style lookup table (9-bit root, one subtable level
    for codes up to the 15-bit cap — see DESIGN.md §4 for the layout)
    plus the bit-serial reference fields. Raises [Codec.Corrupt] if the
    lengths are not decodable (Kraft sum > 1, or a length outside
    [0, 15]). *)

val decode : decoder -> Bitio.Reader.t -> int
(** [decode dec r] reads one symbol through the lookup table — one
    {!Bitio.Reader.peek_bits}/[consume] pair for codes up to 9 bits, two
    for longer ones. Raises [Codec.Corrupt] on a prefix that matches no
    symbol and [Bitio.Reader.Truncated] when the stream ends inside a
    code. *)

val decode_ref : decoder -> Bitio.Reader.t -> int
(** [decode_ref dec r] is the original one-bit-at-a-time canonical walk,
    kept as the reference implementation. On any stream it decodes the
    same symbol sequence as {!decode} and fails at the same symbol;
    the failure exception may differ only at end-of-stream (the walk
    reports [Truncated] where the table can already prove [Corrupt]).
    The qcheck differential suite in [test_compress.ml] enforces this. *)

val write_lengths : Bitio.Writer.t -> int array -> unit
(** [write_lengths w lens] stores a length table as 4-bit nibbles —
    the simple table header both codecs here use. *)

val read_lengths : Bitio.Reader.t -> int -> int array
(** [read_lengths r n] reads back [n] nibble lengths. *)
