(* Build raw Huffman code lengths with a pairing of the two least frequent
   subtrees, then canonicalize. A simple array-based priority selection is
   enough: alphabets here are at most a few hundred symbols. *)

let raw_lengths freqs =
  let n = Array.length freqs in
  let lens = Array.make n 0 in
  let live =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if freqs.(i) > 0 then Some i else None)
            (Seq.init n (fun i -> i))))
  in
  match live with
  | [] -> lens
  | [ only ] ->
      lens.(only) <- 1;
      lens
  | _ ->
      (* nodes: (freq, members) where members lists leaf symbols; merging
         two nodes deepens every member by one. *)
      let nodes = ref (List.map (fun i -> (freqs.(i), [ i ])) live) in
      let pop_min () =
        match !nodes with
        | [] -> assert false
        | first :: _ ->
            let best =
              List.fold_left
                (fun acc node -> if fst node < fst acc then node else acc)
                first !nodes
            in
            (* remove one occurrence (physical equality) *)
            let removed = ref false in
            nodes :=
              List.filter
                (fun node ->
                  if (not !removed) && node == best then begin
                    removed := true;
                    false
                  end
                  else true)
                !nodes;
            best
      in
      while List.length !nodes > 1 do
        let f1, m1 = pop_min () in
        let f2, m2 = pop_min () in
        List.iter (fun i -> lens.(i) <- lens.(i) + 1) m1;
        List.iter (fun i -> lens.(i) <- lens.(i) + 1) m2;
        nodes := (f1 + f2, m1 @ m2) :: !nodes
      done;
      lens

let kraft_sum lens =
  Array.fold_left
    (fun acc l -> if l > 0 then acc +. (1. /. float_of_int (1 lsl l)) else acc)
    0. lens

let kraft_sum_valid lens = kraft_sum lens <= 1. +. 1e-9

let lengths_of_freqs ?(max_len = 15) freqs =
  let lens = raw_lengths freqs in
  let too_deep = Array.exists (fun l -> l > max_len) lens in
  if not too_deep then lens
  else begin
    (* Clamp and repair the Kraft inequality by demoting the deepest
       still-shortenable codes — the standard zlib-style fixup. *)
    Array.iteri (fun i l -> if l > max_len then lens.(i) <- max_len) lens;
    let over () = kraft_sum lens > 1. +. 1e-12 in
    while over () do
      (* lengthen the symbol with the smallest length < max_len; this
         frees the most code space per step *)
      let best = ref (-1) in
      Array.iteri
        (fun i l ->
          if l > 0 && l < max_len && (!best = -1 || l < lens.(!best)) then
            best := i)
        lens;
      if !best = -1 then invalid_arg "Huffman: cannot satisfy max_len";
      lens.(!best) <- lens.(!best) + 1
    done;
    lens
  end

(* Canonical code assignment shared by encoder and decoder. *)
let canonical_codes lens =
  let max_len = Array.fold_left max 0 lens in
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lens;
  let next = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for l = 1 to max_len do
    code := (!code + count.(l - 1)) lsl 1;
    next.(l) <- !code
  done;
  let codes = Array.make (Array.length lens) 0 in
  for i = 0 to Array.length lens - 1 do
    let l = lens.(i) in
    if l > 0 then begin
      codes.(i) <- next.(l);
      next.(l) <- next.(l) + 1
    end
  done;
  (codes, max_len)

type encoder = { e_lens : int array; e_codes : int array }

let encoder_of_lengths lens =
  let codes, _ = canonical_codes lens in
  { e_lens = Array.copy lens; e_codes = codes }

let encode enc w sym =
  let len = enc.e_lens.(sym) in
  if len = 0 then invalid_arg "Huffman.encode: symbol has no code";
  Bitio.Writer.put_code w ~code:enc.e_codes.(sym) ~len

(* The decoder is table-driven, zlib-style. A root table indexed by the
   next [root_bits] bits (root_bits = min(max_len, 9)) resolves every
   code of length <= root_bits in one lookup; longer codes land on a
   link entry pointing at a subtable indexed by the remaining bits. All
   tables live in one flat int array, entries packed as:

     0                      invalid (no code has this prefix)
     > 0                    (symbol lsl 5) lor bits_to_consume
     < 0, v = -entry        link: (subtable_offset lsl 5) lor sub_bits

   Code lengths are capped at 15 (write_lengths / lengths_of_freqs), so
   subtables index at most 6 bits and one level of linking suffices.
   Construction validates everything up front — the Kraft check rejects
   over-subscribed length sets before any table is sized, and every slot
   written is derived from a canonical code that the check proved
   prefix-free — so [decode] may index the table with
   [Array.unsafe_get]: the index is [peek_bits] output masked to
   root_bits/sub_bits, which by construction is within the table.
   Malformed streams hit 0-entries and raise [Codec.Corrupt]; truncated
   streams fail in [Bitio.Reader.consume] with [Truncated]. *)

type decoder = {
  d_max_len : int;
  d_root_bits : int;
  d_table : int array;
  (* bit-serial canonical-walk fields: the reference decoder the qcheck
     differential property replays against the table *)
  d_first_code : int array;  (** smallest code of each length *)
  d_first_index : int array;  (** index into [d_symbols] for that code *)
  d_count : int array;
  d_symbols : int array;  (** symbols sorted by (length, symbol) *)
}

let max_code_len = 15

let decoder_of_lengths lens =
  if not (kraft_sum_valid lens) then
    raise (Codec.Corrupt "huffman: over-subscribed code lengths");
  if Array.exists (fun l -> l < 0 || l > max_code_len) lens then
    raise (Codec.Corrupt "huffman: code length out of range");
  let codes, max_len = canonical_codes lens in
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lens;
  let symbols =
    let syms = ref [] in
    for i = Array.length lens - 1 downto 0 do
      if lens.(i) > 0 then syms := i :: !syms
    done;
    let arr = Array.of_list !syms in
    Array.sort
      (fun a b ->
        match Int.compare lens.(a) lens.(b) with 0 -> Int.compare a b | c -> c)
      arr;
    arr
  in
  let first_code = Array.make (max_len + 1) 0 in
  let first_index = Array.make (max_len + 1) 0 in
  let code = ref 0 and index = ref 0 in
  for l = 1 to max_len do
    code := (!code + if l = 1 then 0 else count.(l - 1)) lsl 1;
    first_code.(l) <- !code;
    first_index.(l) <- !index;
    index := !index + count.(l)
  done;
  (* table construction *)
  let root_bits = min max_len 9 in
  let root_size = 1 lsl root_bits in
  let n = Array.length lens in
  (* pass 1: widest overflow per root prefix sizes the subtables *)
  let sub_bits = Array.make root_size 0 in
  for sym = 0 to n - 1 do
    let l = lens.(sym) in
    if l > root_bits then begin
      let prefix = codes.(sym) lsr (l - root_bits) in
      if l - root_bits > sub_bits.(prefix) then sub_bits.(prefix) <- l - root_bits
    end
  done;
  let sub_off = Array.make root_size 0 in
  let total = ref root_size in
  for p = 0 to root_size - 1 do
    if sub_bits.(p) > 0 then begin
      sub_off.(p) <- !total;
      total := !total + (1 lsl sub_bits.(p))
    end
  done;
  let table = Array.make !total 0 in
  for p = 0 to root_size - 1 do
    if sub_bits.(p) > 0 then table.(p) <- -((sub_off.(p) lsl 5) lor sub_bits.(p))
  done;
  (* pass 2: every code owns the index range sharing its bits as prefix *)
  for sym = 0 to n - 1 do
    let l = lens.(sym) in
    if l > 0 then
      if l <= root_bits then begin
        let base = codes.(sym) lsl (root_bits - l) in
        let entry = (sym lsl 5) lor l in
        for k = 0 to (1 lsl (root_bits - l)) - 1 do
          table.(base + k) <- entry
        done
      end
      else begin
        let over = l - root_bits in
        let prefix = codes.(sym) lsr over in
        let sb = sub_bits.(prefix) in
        let low = codes.(sym) land ((1 lsl over) - 1) in
        let base = sub_off.(prefix) + (low lsl (sb - over)) in
        let entry = (sym lsl 5) lor over in
        for k = 0 to (1 lsl (sb - over)) - 1 do
          table.(base + k) <- entry
        done
      end
  done;
  {
    d_max_len = max_len;
    d_root_bits = root_bits;
    d_table = table;
    d_first_code = first_code;
    d_first_index = first_index;
    d_count = count;
    d_symbols = symbols;
  }

let corrupt () = raise (Codec.Corrupt "huffman: invalid code")

let decode dec r =
  if dec.d_max_len = 0 then corrupt ();
  let e =
    Array.unsafe_get dec.d_table (Bitio.Reader.peek_bits r dec.d_root_bits)
  in
  if e > 0 then begin
    Bitio.Reader.consume r (e land 0x1f);
    e lsr 5
  end
  else if e < 0 then begin
    let link = -e in
    Bitio.Reader.consume r dec.d_root_bits;
    let idx = Bitio.Reader.peek_bits r (link land 0x1f) in
    let e2 = Array.unsafe_get dec.d_table ((link lsr 5) + idx) in
    if e2 > 0 then begin
      Bitio.Reader.consume r (e2 land 0x1f);
      e2 lsr 5
    end
    else corrupt ()
  end
  else corrupt ()

(* the original one-bit-at-a-time canonical walk, kept as the reference
   implementation the table decoder is differentially tested against *)
let decode_ref dec r =
  let code = ref 0 and len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    code := (!code lsl 1) lor Bitio.Reader.get_bit r;
    incr len;
    if !len > dec.d_max_len then raise (Codec.Corrupt "huffman: invalid code");
    let offset = !code - dec.d_first_code.(!len) in
    if offset >= 0 && offset < dec.d_count.(!len) then
      result := dec.d_symbols.(dec.d_first_index.(!len) + offset)
  done;
  !result

let write_lengths w lens =
  Array.iter
    (fun l ->
      if l > 15 then invalid_arg "Huffman.write_lengths: length > 15";
      Bitio.Writer.put_bits w l 4)
    lens

let read_lengths r n = Array.init n (fun _ -> Bitio.Reader.get_bits r 4)
