exception Corrupt of string

type t = {
  name : string;
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
  decompress_into : bytes -> dst:bytes -> dst_off:int -> int;
}

let magic = 0x494d4b43 (* "IMKC" *)
let header_len = 4 + 4 + 8 + 4

let name_hash name = Imk_util.Crc.crc32_string name

let frame ~name ~orig ~payload =
  let out = Bytes.create (header_len + Bytes.length payload) in
  Imk_util.Byteio.set_u32 out 0 magic;
  Imk_util.Byteio.set_u32 out 4 (name_hash name);
  Imk_util.Byteio.set_addr out 8 (Bytes.length orig);
  Imk_util.Byteio.set_u32 out 16 (Imk_util.Crc.crc32 orig 0 (Bytes.length orig));
  Bytes.blit payload 0 out header_len (Bytes.length payload);
  out

let max_orig_len = 1 lsl 30
(* kernels are well under 1 GiB; anything larger in a header is corruption
   and must not drive decoder allocations *)

(* header validation without touching the payload: [unframe] adds the
   payload copy for the allocating path, [decompress_into] decodes from
   the frame in place at offset [header_len] *)
let parse_header ~name b =
  if Bytes.length b < header_len then raise (Corrupt "frame: truncated header");
  if Imk_util.Byteio.get_u32 b 0 <> magic then raise (Corrupt "frame: bad magic");
  if Imk_util.Byteio.get_u32 b 4 <> name_hash name then
    raise (Corrupt ("frame: payload is not " ^ name));
  let orig_len =
    try Imk_util.Byteio.get_addr b 8
    with Invalid_argument _ -> raise (Corrupt "frame: implausible length")
  in
  if orig_len < 0 || orig_len > max_orig_len then
    raise (Corrupt "frame: implausible length");
  let crc = Imk_util.Byteio.get_u32 b 16 in
  (orig_len, crc)

let unframe ~name b =
  let orig_len, crc = parse_header ~name b in
  (orig_len, crc, Bytes.sub b header_len (Bytes.length b - header_len))

let check_crc ~orig_crc data =
  if Imk_util.Crc.crc32 data 0 (Bytes.length data) <> orig_crc then
    raise (Corrupt "frame: CRC mismatch after decompression")

let make ~name ~encode ~decode_into =
  let compress input = frame ~name ~orig:input ~payload:(encode input) in
  let run_decode b ~src_off ~dst ~dst_off ~orig_len =
    (* malformed payloads surface as low-level exceptions from the
       bit readers and range coders; all of them mean one thing here *)
    try decode_into b ~src_off ~dst ~dst_off ~orig_len with
    | Corrupt _ as e -> raise e
    | Bitio.Reader.Truncated -> raise (Corrupt (name ^ ": truncated bitstream"))
    | Invalid_argument m -> raise (Corrupt (name ^ ": malformed stream: " ^ m))
    | Failure m -> raise (Corrupt (name ^ ": malformed stream: " ^ m))
  in
  let decompress framed =
    let orig_len, crc, payload = unframe ~name framed in
    let out = Bytes.create orig_len in
    run_decode payload ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
    check_crc ~orig_crc:crc out;
    out
  in
  let decompress_into framed ~dst ~dst_off =
    if dst_off < 0 || dst_off > Bytes.length dst then
      invalid_arg "Codec.decompress_into: dst_off";
    let orig_len, crc = parse_header ~name framed in
    (* [orig_len] comes from the (untrusted) frame, so a window that
       does not fit is corruption, never a caller bug *)
    if orig_len > Bytes.length dst - dst_off then
      raise (Corrupt "frame: output exceeds destination");
    run_decode framed ~src_off:header_len ~dst ~dst_off ~orig_len;
    if Imk_util.Crc.crc32 dst dst_off orig_len <> crc then
      raise (Corrupt "frame: CRC mismatch after decompression");
    orig_len
  in
  { name; compress; decompress; decompress_into }
