let codec =
  Codec.make ~name:"none"
    ~encode:(fun input -> Bytes.copy input)
    ~decode_into:(fun b ~src_off ~dst ~dst_off ~orig_len ->
      if Bytes.length b - src_off <> orig_len then
        raise (Codec.Corrupt "store: length mismatch");
      Bytes.blit b src_off dst dst_off orig_len)
