let flush_literals buf literals =
  (* runs longer than 128 split into several control bytes *)
  let s = Buffer.contents literals in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let run = min 128 (n - !i) in
    Buffer.add_char buf (Char.chr (run - 1));
    Buffer.add_substring buf s !i run;
    i := !i + run
  done;
  Buffer.clear literals

let encode_payload input =
  let buf = Buffer.create (Bytes.length input / 2) in
  let literals = Buffer.create 256 in
  let emit = function
    | Lz77.Literal c -> Buffer.add_char literals c
    | Lz77.Match { dist; len } ->
        flush_literals buf literals;
        Buffer.add_char buf (Char.chr (0x80 lor (len - 3)));
        Buffer.add_char buf (Char.chr (dist land 0xff));
        Buffer.add_char buf (Char.chr ((dist lsr 8) land 0xff))
  in
  Lz77.parse Lz77.lzo_config input ~f:emit;
  flush_literals buf literals;
  Buffer.to_bytes buf

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let n = Bytes.length b in
  let pos = ref src_off in
  let byte () =
    if !pos >= n then raise (Codec.Corrupt "lzo: truncated");
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    c
  in
  Lz77.apply_tokens_into ~dst ~dst_off ~orig_len (fun consume ->
      while !pos < n do
        let c = byte () in
        if c < 0x80 then
          for _ = 0 to c do
            if !pos >= n then raise (Codec.Corrupt "lzo: truncated literal run");
            consume (Lz77.Literal (Bytes.get b !pos));
            incr pos
          done
        else begin
          let len = (c land 0x7f) + 3 in
          let lo = byte () in
          let hi = byte () in
          let dist = lo lor (hi lsl 8) in
          consume (Lz77.Match { dist; len })
        end
      done)

let decode_payload b ~orig_len =
  let out = Bytes.create orig_len in
  decode_payload_into b ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
  out

let codec =
  Codec.make ~name:"lzo" ~encode:encode_payload ~decode_into:decode_payload_into
