type token = Literal of char | Match of { dist : int; len : int }

type config = {
  window : int;
  min_match : int;
  max_match : int;
  hash_bits : int;
  max_chain : int;
}

let lz4_config =
  { window = 65535; min_match = 4; max_match = 273; hash_bits = 14; max_chain = 8 }

let lzo_config =
  { window = 49151; min_match = 3; max_match = 66; hash_bits = 13; max_chain = 1 }

let deflate_config =
  { window = 32768; min_match = 3; max_match = 258; hash_bits = 15; max_chain = 64 }

let lzma_config =
  { window = 1 lsl 20; min_match = 3; max_match = 273; hash_bits = 16; max_chain = 128 }

(* Multiplicative hash of the [min_match] (3 or 4) bytes at [i]. *)
let hash cfg input i =
  let b k = Char.code (Bytes.unsafe_get input (i + k)) in
  let v =
    if cfg.min_match >= 4 then
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
    else b 0 lor (b 1 lsl 8) lor (b 2 lsl 16)
  in
  let h = v * 0x9e3779b1 land 0x3fff_ffff in
  h lsr (30 - cfg.hash_bits)

let match_length input ~pos ~cand ~limit =
  let n = ref 0 in
  while
    pos + !n < limit && Bytes.unsafe_get input (cand + !n) = Bytes.unsafe_get input (pos + !n)
  do
    incr n
  done;
  !n

let parse cfg input ~f =
  let n = Bytes.length input in
  let head = Array.make (1 lsl cfg.hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let insert i =
    let h = hash cfg input i in
    prev.(i) <- head.(h);
    head.(h) <- i
  in
  let find_best i =
    let h = hash cfg input i in
    let limit = min n (i + cfg.max_match) in
    let best_len = ref 0 and best_dist = ref 0 in
    let cand = ref head.(h) and probes = ref cfg.max_chain in
    while !cand >= 0 && !probes > 0 do
      if i - !cand <= cfg.window then begin
        let len = match_length input ~pos:i ~cand:!cand ~limit in
        if len > !best_len then begin
          best_len := len;
          best_dist := i - !cand
        end;
        cand := prev.(!cand);
        decr probes
      end
      else begin
        (* chain has left the window; older entries are further still *)
        cand := -1
      end
    done;
    (!best_len, !best_dist)
  in
  let i = ref 0 in
  while !i < n do
    let pos = !i in
    if pos + cfg.min_match <= n then begin
      let len, dist = find_best pos in
      if len >= cfg.min_match then begin
        f (Match { dist; len });
        (* index every covered position so later matches can reach back
           into this run *)
        let stop = min (pos + len) (n - cfg.min_match) in
        let j = ref pos in
        while !j < stop do
          insert !j;
          incr j
        done;
        i := pos + len
      end
      else begin
        insert pos;
        f (Literal (Bytes.get input pos));
        i := pos + 1
      end
    end
    else begin
      f (Literal (Bytes.get input pos));
      i := pos + 1
    end
  done

let into_output ~dst ~dst_off ~orig_len produce =
  (* write-confinement (DESIGN.md §4.7): this one check, plus the per-
     token checks inside [lit]/[cpy], proves every access below stays in
     [dst_off, dst_off + orig_len): literals write at dst_off + w with
     w < orig_len; copies write [dst_off+w, dst_off+w+len) with
     w + len <= orig_len and read from dst_off + w - dist >= dst_off
     because dist <= w. Sink decoders inherit the guarantee — corrupt
     streams raise [Codec.Corrupt] before any out-of-window write. *)
  if dst_off < 0 || orig_len < 0 || dst_off > Bytes.length dst - orig_len then
    invalid_arg "Lz77.into_output: destination range";
  let w = ref 0 in
  let lit c =
    if !w >= orig_len then raise (Codec.Corrupt "lz77: literal overflow");
    Bytes.unsafe_set dst (dst_off + !w) c;
    incr w
  in
  let cpy ~dist ~len =
    if dist <= 0 || dist > !w then raise (Codec.Corrupt "lz77: bad distance");
    if len < 0 || !w + len > orig_len then
      raise (Codec.Corrupt "lz77: match overflow");
    let src = dst_off + !w - dist in
    if dist >= len then Bytes.blit dst src dst (dst_off + !w) len
    else
      (* overlapping (RLE-style) match: must replicate forward
         byte-at-a-time — blit's memmove semantics would be wrong *)
      for k = 0 to len - 1 do
        Bytes.unsafe_set dst (dst_off + !w + k) (Bytes.unsafe_get dst (src + k))
      done;
    w := !w + len
  in
  produce ~lit ~cpy;
  if !w <> orig_len then raise (Codec.Corrupt "lz77: short token stream")

let with_output ~orig_len produce =
  let out = Bytes.create orig_len in
  into_output ~dst:out ~dst_off:0 ~orig_len produce;
  out

let apply_tokens_into ~dst ~dst_off ~orig_len produce =
  into_output ~dst ~dst_off ~orig_len (fun ~lit ~cpy ->
      produce (function
        | Literal c -> lit c
        | Match { dist; len } -> cpy ~dist ~len))

let apply_tokens ~orig_len produce =
  let out = Bytes.create orig_len in
  apply_tokens_into ~dst:out ~dst_off:0 ~orig_len produce;
  out
