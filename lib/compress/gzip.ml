(* DEFLATE length codes: base lengths and extra-bit counts for symbols
   257..284 (we fold DEFLATE's special 285/len-258 case into the last
   entry's extra bits). *)
let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 7 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let eob = 256
let n_litlen = 257 + Array.length length_base
let n_dist = Array.length dist_base

let find_code base extra v name =
  let n = Array.length base in
  let rec go i =
    if i + 1 >= n then i
    else if v < base.(i + 1) then i
    else go (i + 1)
  in
  let i = go 0 in
  if v < base.(i) || v - base.(i) >= 1 lsl extra.(i) then
    invalid_arg ("Gzip." ^ name ^ ": value out of range");
  (i, extra.(i), v - base.(i))

let length_code len =
  let i, bits, v = find_code length_base length_extra len "length_code" in
  (257 + i, bits, v)

let distance_code dist =
  let i, bits, v = find_code dist_base dist_extra dist "distance_code" in
  (i, bits, v)

let encode_payload input =
  (* pass 1: token list + frequency counts *)
  let tokens = ref [] in
  let lit_freq = Array.make n_litlen 0 in
  let dist_freq = Array.make n_dist 0 in
  let emit tok =
    tokens := tok :: !tokens;
    match tok with
    | Lz77.Literal c -> lit_freq.(Char.code c) <- lit_freq.(Char.code c) + 1
    | Lz77.Match { dist; len } ->
        let ls, _, _ = length_code len in
        let ds, _, _ = distance_code dist in
        lit_freq.(ls) <- lit_freq.(ls) + 1;
        dist_freq.(ds) <- dist_freq.(ds) + 1
  in
  Lz77.parse { Lz77.deflate_config with max_match = 258 } input ~f:emit;
  lit_freq.(eob) <- 1;
  let lit_lens = Huffman.lengths_of_freqs lit_freq in
  let dist_lens = Huffman.lengths_of_freqs dist_freq in
  let w = Bitio.Writer.create () in
  Huffman.write_lengths w lit_lens;
  Huffman.write_lengths w dist_lens;
  let lit_enc = Huffman.encoder_of_lengths lit_lens in
  let dist_enc = Huffman.encoder_of_lengths dist_lens in
  List.iter
    (fun tok ->
      match tok with
      | Lz77.Literal c -> Huffman.encode lit_enc w (Char.code c)
      | Lz77.Match { dist; len } ->
          let ls, lbits, lv = length_code len in
          Huffman.encode lit_enc w ls;
          if lbits > 0 then Bitio.Writer.put_bits w lv lbits;
          let ds, dbits, dv = distance_code dist in
          Huffman.encode dist_enc w ds;
          if dbits > 0 then Bitio.Writer.put_bits w dv dbits)
    (List.rev !tokens);
  Huffman.encode lit_enc w eob;
  Bitio.Writer.contents w

let decode_payload_into b ~src_off ~dst ~dst_off ~orig_len =
  let r = Bitio.Reader.create b ~pos:src_off in
  let lit_lens = Huffman.read_lengths r n_litlen in
  let dist_lens = Huffman.read_lengths r n_dist in
  let lit_dec = Huffman.decoder_of_lengths lit_lens in
  let dist_dec = Huffman.decoder_of_lengths dist_lens in
  Lz77.into_output ~dst ~dst_off ~orig_len (fun ~lit ~cpy ->
      let rec go () =
        let sym = Huffman.decode lit_dec r in
        if sym < 256 then begin
          lit (Char.unsafe_chr sym);
          go ()
        end
        else if sym = eob then ()
        else begin
          let i = sym - 257 in
          if i >= Array.length length_base then
            raise (Codec.Corrupt "gzip: bad length symbol");
          let len = length_base.(i) + Bitio.Reader.get_bits r length_extra.(i) in
          let ds = Huffman.decode dist_dec r in
          let dist = dist_base.(ds) + Bitio.Reader.get_bits r dist_extra.(ds) in
          cpy ~dist ~len;
          go ()
        end
      in
      go ())

let decode_payload b ~orig_len =
  let out = Bytes.create orig_len in
  decode_payload_into b ~src_off:0 ~dst:out ~dst_off:0 ~orig_len;
  out

let codec =
  Codec.make ~name:"gzip" ~encode:encode_payload ~decode_into:decode_payload_into
