(** Bit-level I/O for the entropy-coded codecs (gzip, bzip2).

    Bits are written most-significant-first within each byte, the
    convention used by canonical-Huffman decoders that consume codes from
    the top of the bit reservoir. Both directions batch through an int
    accumulator: the writer flushes whole bytes as they complete, and the
    reader refills whole bytes and serves {!Reader.peek_bits} from the
    buffered window — the table-driven Huffman decoder's contract. *)

module Writer : sig
  type t

  val create : unit -> t

  val put_bit : t -> int -> unit
  (** [put_bit w b] appends the low bit of [b]. *)

  val put_bits : t -> int -> int -> unit
  (** [put_bits w v n] appends the low [n] bits of [v], most significant
      first. [n] must be in [0, 24]. *)

  val put_code : t -> code:int -> len:int -> unit
  (** [put_code w ~code ~len] is [put_bits w code len]; the natural call
      for emitting a Huffman code. *)

  val align_byte : t -> unit
  (** [align_byte w] pads with zero bits to the next byte boundary. *)

  val contents : t -> bytes
  (** [contents w] finalizes (byte-aligns) and returns the stream. *)

  val bit_length : t -> int
  (** [bit_length w] is the number of bits written so far. *)
end

module Reader : sig
  type t

  exception Truncated
  (** Raised when reading past the end of the stream. *)

  val create : bytes -> pos:int -> t
  (** [create b ~pos] reads bits starting at byte offset [pos] of [b]. *)

  val get_bit : t -> int

  val get_bits : t -> int -> int
  (** [get_bits r n] reads [n] bits (MSB-first), [n] in [0, 24]. *)

  val peek_bits : t -> int -> int
  (** [peek_bits r n] returns the next [n] bits without consuming them,
      [n] in [0, 24]. Past the end of the stream the result is padded on
      the right with zero bits — the zlib convention that lets a table
      lookup index with a full window near end-of-stream; {!consume}
      refuses to actually claim padding. *)

  val consume : t -> int -> unit
  (** [consume r n] discards [n] bits previously seen via {!peek_bits}.
      Raises {!Truncated} if fewer than [n] real bits remain. *)

  val align_byte : t -> unit

  val byte_pos : t -> int
  (** [byte_pos r] is the offset of the next unread byte once aligned. *)
end
