(** The common compression-codec interface.

    Each codec turns an arbitrary byte string into a self-describing frame
    and back. The frame carries the codec id, the uncompressed length and
    a CRC-32 of the original data, so decompression validates integrity —
    the same job the per-format trailers (gzip CRC, xz check, ...) do for
    real kernels. Frames are produced by {!frame} and consumed by
    {!unframe}; the raw codecs under this interface only see payloads.

    The six registered codecs mirror the six kernel compression schemes the
    paper's Figure 3 compares. Decompression *rates* for the virtual clock
    live in [Imk_vclock.Cost_model]; this library is pure data
    transformation. *)

exception Corrupt of string
(** Raised by [decompress] / [decompress_into] on malformed or
    integrity-failing input. *)

type t = {
  name : string;  (** "none", "lz4", "lzo", "gzip", "bzip2", "xz", "lzma" *)
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
      (** The allocating copy-decode path: extracts the payload and
          returns a fresh buffer of the original data. *)
  decompress_into : bytes -> dst:bytes -> dst_off:int -> int;
      (** [decompress_into framed ~dst ~dst_off] decodes straight from
          the frame into the caller-owned window starting at [dst_off],
          returning the number of bytes written (the frame's original
          length) — no intermediate payload copy or output allocation.
          Write confinement: no byte outside
          [\[dst_off, dst_off + orig_len)] is ever written, even on
          corrupt input (on failure the window's contents are
          unspecified, everything outside it is untouched). Raises
          {!Corrupt} when the frame is malformed, fails its CRC, or
          claims an original length that does not fit in [dst];
          [Invalid_argument] only for an out-of-range [dst_off] (a
          caller bug, not input). *)
}

val frame : name:string -> orig:bytes -> payload:bytes -> bytes
(** [frame ~name ~orig ~payload] wraps [payload] with the standard header:
    magic, codec-name hash, original length, CRC-32 of [orig]. *)

val unframe : name:string -> bytes -> int * int * bytes
(** [unframe ~name b] validates the header and returns
    [(orig_len, crc, payload)]. Raises {!Corrupt} on bad magic, codec
    mismatch or truncation. *)

val check_crc : orig_crc:int -> bytes -> unit
(** [check_crc ~orig_crc data] raises {!Corrupt} if the CRC-32 of [data]
    differs from [orig_crc]. *)

val make :
  name:string ->
  encode:(bytes -> bytes) ->
  decode_into:
    (bytes -> src_off:int -> dst:bytes -> dst_off:int -> orig_len:int -> unit) ->
  t
(** [make ~name ~encode ~decode_into] lifts a raw payload codec into the
    framed interface, adding header handling and the CRC check.
    [decode_into b ~src_off ~dst ~dst_off ~orig_len] must decode the
    payload found at [src_off] (extending to the end of [b]) into
    exactly [orig_len] bytes at [dst_off], confining every write to that
    window; both [decompress] (via a fresh output buffer) and
    [decompress_into] (in place on the frame) are derived from it. *)
