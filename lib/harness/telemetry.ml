let schema_version = 2

type row = {
  label : string;
  total : Imk_util.Stats.summary;
  phases : (string * Imk_util.Stats.summary) list;
}

type file = {
  schema : int;
  experiment : string;
  runs : int;
  jobs : int;
  scale : int;
  functions : int option;
  wall_clock_s : float;
  rows : row list;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Identify the headline millisecond column of a rendered table. Only a
   structural sanity check nowadays (the JSON is fed raw floats, never
   parsed out of cells): bench warns when an experiment renders a
   millisecond column but provides no structured telemetry. A column is
   a millisecond column when its header is exactly "ms" or ends in the
   token " ms" — a bare "ms" suffix also matched "atoms"/"programs". *)
let value_column headers =
  let lower = List.map String.lowercase_ascii headers in
  let index_of p =
    let rec go i = function
      | [] -> None
      | h :: t -> if p h then Some i else go (i + 1) t
    in
    go 0 lower
  in
  let ms_token h =
    h = "ms"
    ||
    let n = String.length h in
    n > 3 && String.sub h (n - 3) 3 = " ms"
  in
  match index_of (fun h -> h = "total ms") with
  | Some i -> Some i
  | None -> (
      match index_of (fun h -> h = "boot ms" || h = "create ms") with
      | Some i -> Some i
      | None -> index_of ms_token)

let summary_to_ms (s : Imk_util.Stats.summary) =
  let ms = Imk_util.Units.ns_float_to_ms in
  {
    s with
    Imk_util.Stats.mean = ms s.Imk_util.Stats.mean;
    min = ms s.Imk_util.Stats.min;
    max = ms s.Imk_util.Stats.max;
    stddev = ms s.Imk_util.Stats.stddev;
    p50 = ms s.Imk_util.Stats.p50;
    p90 = ms s.Imk_util.Stats.p90;
    p99 = ms s.Imk_util.Stats.p99;
  }

let check_duplicates ~what rows =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r.label then
        invalid_arg
          (Printf.sprintf
             "Telemetry.%s: duplicate label %S — two table rows would \
              silently shadow each other in the JSON"
             what r.label);
      Hashtbl.add seen r.label ())
    rows

let rows (o : Experiments.output) =
  let rows =
    List.map
      (fun (r : Experiments.boot_row) ->
        {
          label = r.Experiments.label;
          total = summary_to_ms r.Experiments.total;
          phases =
            List.map
              (fun (p, s) -> (p, summary_to_ms s))
              r.Experiments.phases;
        })
      o.Experiments.telemetry
  in
  check_duplicates ~what:"rows" rows;
  rows

let boot_means o =
  List.map (fun r -> (r.label, r.total.Imk_util.Stats.mean)) (rows o)

let summary_json (s : Imk_util.Stats.summary) =
  Printf.sprintf
    "\"n\": %d, \"mean_ms\": %.6f, \"min_ms\": %.6f, \"max_ms\": %.6f, \
     \"stddev_ms\": %.6f, \"p50_ms\": %.6f, \"p90_ms\": %.6f, \"p99_ms\": %.6f"
    s.Imk_util.Stats.n s.Imk_util.Stats.mean s.Imk_util.Stats.min
    s.Imk_util.Stats.max s.Imk_util.Stats.stddev s.Imk_util.Stats.p50
    s.Imk_util.Stats.p90 s.Imk_util.Stats.p99

let to_json ~experiment ~runs ~jobs ~scale ~functions ~wall_clock_s rows =
  check_duplicates ~what:"to_json" rows;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema\": %d,\n" schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"experiment\": \"%s\",\n" (json_escape experiment));
  Buffer.add_string buf (Printf.sprintf "  \"runs\": %d,\n" runs);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %d,\n" scale);
  Buffer.add_string buf
    (match functions with
    | None -> "  \"functions\": null,\n"
    | Some f -> Printf.sprintf "  \"functions\": %d,\n" f);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_clock_s\": %.3f,\n" wall_clock_s);
  Buffer.add_string buf "  \"boot_ms\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"label\": \"%s\",\n      \"mean_ms\": %.6f,\n"
           (json_escape r.label) r.total.Imk_util.Stats.mean);
      Buffer.add_string buf
        (Printf.sprintf "      \"total\": { %s },\n" (summary_json r.total));
      Buffer.add_string buf "      \"phases\": [";
      List.iteri
        (fun j (p, s) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\n        { \"phase\": \"%s\", %s }"
               (json_escape p) (summary_json s)))
        r.phases;
      if r.phases <> [] then Buffer.add_string buf "\n      ";
      Buffer.add_string buf "] }")
    rows;
  if rows <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(* ---------- reading BENCH_<exp>.json back (the --baseline gate) ---------- *)

module J = Imk_util.Minjson

let summary_of_json j =
  let f k = J.to_float (J.member_exn k j) in
  {
    Imk_util.Stats.n = J.to_int (J.member_exn "n" j);
    mean = f "mean_ms";
    min = f "min_ms";
    max = f "max_ms";
    stddev = f "stddev_ms";
    p50 = f "p50_ms";
    p90 = f "p90_ms";
    p99 = f "p99_ms";
  }

let of_json s =
  let j = J.parse s in
  let schema = J.to_int (J.member_exn "schema" j) in
  if schema <> schema_version then
    invalid_arg
      (Printf.sprintf
         "Telemetry.of_json: schema %d, this reader needs schema %d — \
          regenerate the file with the current bench"
         schema schema_version);
  let rows =
    List.map
      (fun rj ->
        {
          label = J.to_string (J.member_exn "label" rj);
          total = summary_of_json (J.member_exn "total" rj);
          phases =
            List.map
              (fun pj ->
                (J.to_string (J.member_exn "phase" pj), summary_of_json pj))
              (J.to_list (J.member_exn "phases" rj));
        })
      (J.to_list (J.member_exn "boot_ms" j))
  in
  check_duplicates ~what:"of_json" rows;
  {
    schema;
    experiment = J.to_string (J.member_exn "experiment" j);
    runs = J.to_int (J.member_exn "runs" j);
    jobs = J.to_int (J.member_exn "jobs" j);
    scale = J.to_int (J.member_exn "scale" j);
    functions =
      (match J.member_exn "functions" j with
      | J.Null -> None
      | v -> Some (J.to_int v));
    wall_clock_s = J.to_float (J.member_exn "wall_clock_s" j);
    rows;
  }

(* ---------- regression gate ---------- *)

type delta = {
  d_label : string;
  d_phase : string option;  (* None = the headline total *)
  baseline_p50 : float;
  current_p50 : float;
  change_pct : float;
  degenerate : bool;
  regression : bool;
}

let default_threshold_pct = 5.0

let diff ?(threshold_pct = default_threshold_pct) ~baseline ~current () =
  List.concat_map
    (fun cur ->
      match
        List.find_opt (fun b -> b.label = cur.label) baseline.rows
      with
      | None -> []
      | Some base ->
          let mk d_phase (bs : Imk_util.Stats.summary)
              (cs : Imk_util.Stats.summary) =
            let change_pct =
              if bs.Imk_util.Stats.p50 = 0. then 0.
              else
                (cs.Imk_util.Stats.p50 -. bs.Imk_util.Stats.p50)
                /. bs.Imk_util.Stats.p50 *. 100.
            in
            (* a single-sample side has no distribution: its p90/p99
               alias its p50 and its "p50" is one draw — a delta built
               on one cannot be evidence of a regression *)
            let degenerate =
              bs.Imk_util.Stats.n < 2 || cs.Imk_util.Stats.n < 2
            in
            {
              d_label = cur.label;
              d_phase;
              baseline_p50 = bs.Imk_util.Stats.p50;
              current_p50 = cs.Imk_util.Stats.p50;
              change_pct;
              degenerate;
              (* only the headline total trips the gate; per-phase rows
                 are diagnostic (they tell you where a regression
                 lives, but phase shifts that cancel are not one) *)
              regression =
                d_phase = None && (not degenerate)
                && change_pct > threshold_pct;
            }
          in
          mk None base.total cur.total
          :: List.filter_map
               (fun (p, cs) ->
                 Option.map
                   (fun bs -> mk (Some p) bs cs)
                   (List.assoc_opt p base.phases))
               cur.phases)
    current.rows

let regressions deltas = List.filter (fun d -> d.regression) deltas

let missing_labels ~baseline ~current =
  let labels f = List.map (fun r -> r.label) f.rows in
  let not_in l r = List.filter (fun x -> not (List.mem x l)) r in
  ( not_in (labels current) (labels baseline),
    not_in (labels baseline) (labels current) )

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
