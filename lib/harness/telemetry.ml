let schema_version = 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* pick the column whose mean the JSON should carry: experiments label
   their headline number "total ms" (boot experiments), else the first
   millisecond column wins ("boot ms", "create ms", ...) *)
let value_column headers =
  let lower = List.map String.lowercase_ascii headers in
  let index_of p =
    let rec go i = function
      | [] -> None
      | h :: t -> if p h then Some i else go (i + 1) t
    in
    go 0 lower
  in
  match index_of (fun h -> h = "total ms") with
  | Some i -> Some i
  | None -> (
      match index_of (fun h -> h = "boot ms" || h = "create ms") with
      | Some i -> Some i
      | None ->
          index_of (fun h ->
              let n = String.length h in
              n >= 2 && String.sub h (n - 2) 2 = "ms"))

let boot_means (o : Experiments.output) =
  let headers = Imk_util.Table.headers o.Experiments.table in
  match value_column headers with
  | None -> []
  | Some vi ->
      List.filter_map
        (fun row ->
          let cells = Array.of_list row in
          if vi >= Array.length cells then None
          else
            match float_of_string_opt (String.trim cells.(vi)) with
            | None -> None
            | Some v ->
                (* the label is the row's non-numeric cells left of the
                   value — e.g. "aws/kaslr/lz4" for a fig9 row *)
                let label =
                  Array.to_list (Array.sub cells 0 vi)
                  |> List.filter (fun c ->
                         c <> "" && float_of_string_opt (String.trim c) = None)
                  |> String.concat "/"
                in
                Some ((if label = "" then "all" else label), v))
        (Imk_util.Table.rows o.Experiments.table)

let to_json ~experiment ~runs ~jobs ~scale ~functions ~wall_clock_s boot_ms =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema\": %d,\n" schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"experiment\": \"%s\",\n" (json_escape experiment));
  Buffer.add_string buf (Printf.sprintf "  \"runs\": %d,\n" runs);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %d,\n" scale);
  Buffer.add_string buf
    (match functions with
    | None -> "  \"functions\": null,\n"
    | Some f -> Printf.sprintf "  \"functions\": %d,\n" f);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_clock_s\": %.3f,\n" wall_clock_s);
  Buffer.add_string buf "  \"boot_ms\": [";
  List.iteri
    (fun i (label, mean) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"label\": \"%s\", \"mean_ms\": %.3f }"
           (json_escape label) mean))
    boot_ms;
  if boot_ms <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
