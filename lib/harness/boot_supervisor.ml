open Imk_vclock
module Failure = Imk_fault.Failure

type ctx = {
  cache : Imk_storage.Page_cache.t;
  inject : (string -> unit) option;
  plans : Imk_monitor.Plan_cache.t option;
}

let plain_ctx ?plans cache = { cache; inject = None; plans }

type report = {
  outcome : (Imk_guest.Runtime.verify_stats, Failure.t) result;
  attempts : int;
  events : Failure.event list;
  total_ns : int;
}

let default_max_retries = 3

let backoff_base_ns = 200_000
(* first retry waits ~0.2 ms of virtual time, doubling per retry — small
   against a multi-ms boot but visible in the trace *)

let make_charge ~jitter ~seed =
  let clock = Clock.create () in
  let trace = Trace.create clock in
  let jitter_rng =
    if jitter then Some (Imk_entropy.Prng.create ~seed:(Int64.add seed 7919L))
    else None
  in
  (trace, Charge.create ?jitter:jitter_rng trace Cost_model.default)

let modeled (vm : Imk_monitor.Vm_config.t) n =
  Imk_kernel.Config.modeled_of_actual vm.Imk_monitor.Vm_config.kernel_config n

(* Replace a corrupt relocation table with one re-derived from the
   kernel ELF (Figure 8's extraction path — proven to boot verify-green
   by test_boot_paths). Real work, charged in its own span: read the
   image, parse it, walk every function for relocation sites. *)
let rederive_relocs ch ctx (vm : Imk_monitor.Vm_config.t) path =
  Charge.span ch Trace.In_monitor "rederive-relocs" (fun () ->
      let cm = Charge.model ch in
      let kernel, cached =
        Imk_storage.Page_cache.read ctx.cache vm.Imk_monitor.Vm_config.kernel_path
      in
      Charge.pay ch
        (Cost_model.read_cost cm ~cached (modeled vm (Bytes.length kernel)));
      let elf = Imk_elf.Parser.parse kernel in
      Charge.pay ch
        (Cost_model.elf_parse_cost cm
           ~sections:(modeled vm (Array.length elf.Imk_elf.Types.sections)));
      let table = Imk_kernel.Relocs_tool.extract kernel in
      Charge.pay ch
        (Cost_model.reloc_cost cm ~in_guest:false
           ~entries:(modeled vm (Imk_elf.Relocation.entry_count table)));
      Imk_storage.Disk.add
        (Imk_storage.Page_cache.disk ctx.cache)
        ~name:path
        (Imk_elf.Relocation.encode table))

let supervise_on ch ?arena ~max_retries ~ctx (vm : Imk_monitor.Vm_config.t) =
  let events = ref [] in
  let push e = events := e :: !events in
  let attempts = ref 0 in
  let boot_attempt () =
    incr attempts;
    match arena with
    | None ->
        (Imk_monitor.Vmm.boot ?inject:ctx.inject ?plans:ctx.plans ch ctx.cache
           vm)
          .Imk_monitor.Vmm.stats
    | Some a ->
        Imk_memory.Arena.with_buffer a ~size:vm.Imk_monitor.Vm_config.mem_bytes
          (fun mem ->
            (Imk_monitor.Vmm.boot ?inject:ctx.inject ?plans:ctx.plans ~mem ch
               ctx.cache vm)
              .Imk_monitor.Vmm.stats)
  in
  let rederived = ref false in
  let rec go retries_left =
    match boot_attempt () with
    | stats -> Ok stats
    | exception e -> (
        match Failure.classify e with
        | None -> raise e (* programming error, not a boot failure *)
        | Some f -> recover f retries_left)
  and recover f retries_left =
    match f with
    | Failure.Transient _ when retries_left > 0 ->
        let backoff = backoff_base_ns * (1 lsl (max_retries - retries_left)) in
        Charge.pay_span ch Trace.In_monitor "retry-backoff" backoff;
        push (Failure.Retried { attempt = !attempts; failure = f; backoff_ns = backoff });
        go (retries_left - 1)
    | Failure.Bad_reloc _
      when (not !rederived) && vm.Imk_monitor.Vm_config.relocs_path <> None -> (
        rederived := true;
        match
          rederive_relocs ch ctx vm
            (Option.get vm.Imk_monitor.Vm_config.relocs_path)
        with
        | () ->
            push (Failure.Rederived_relocs f);
            go retries_left
        | exception e2 -> (
            (* the kernel image is corrupt too: report that, typed *)
            match Failure.classify e2 with
            | Some f2 -> Error f2
            | None -> raise e2))
    | _ -> Error f
  in
  let outcome = go max_retries in
  (outcome, !attempts, List.rev !events)

let supervise ?(jitter = true) ?arena ?(max_retries = default_max_retries)
    ~seed ~ctx vm =
  let trace, ch = make_charge ~jitter ~seed in
  let vm = { vm with Imk_monitor.Vm_config.seed } in
  let outcome, attempts, events = supervise_on ch ?arena ~max_retries ~ctx vm in
  (* recovery spans (retry-backoff, rederive-relocs) included *)
  Boot_runner.emit_trace trace;
  { outcome; attempts; events; total_ns = Trace.total trace }

let supervise_snapshot ?(jitter = true) ?arena
    ?(max_retries = default_max_retries) ~seed ~ctx ~snapshot_path
    ~working_set_pages vm =
  let trace, ch = make_charge ~jitter ~seed in
  let vm = { vm with Imk_monitor.Vm_config.seed } in
  match
    let snap =
      Charge.span ch Trace.In_monitor "snapshot-load" (fun () ->
          let blob, cached =
            Imk_storage.Page_cache.read ctx.cache snapshot_path
          in
          Charge.pay ch
            (Cost_model.read_cost (Charge.model ch) ~cached
               (modeled vm (Bytes.length blob)));
          Imk_monitor.Snapshot.load ~config:vm blob)
    in
    Imk_monitor.Snapshot.restore ch snap ~working_set_pages
  with
  | r ->
      Boot_runner.emit_trace trace;
      {
        outcome = Ok r.Imk_monitor.Vmm.stats;
        attempts = 1;
        events = [];
        total_ns = Trace.total trace;
      }
  | exception e -> (
      match Failure.classify e with
      | None -> raise e
      | Some f ->
          (* persistent restore failure: degrade to a supervised cold
             boot on the same virtual clock, so the fallback's full cost
             lands in one report *)
          let outcome, attempts, events =
            supervise_on ch ?arena ~max_retries ~ctx vm
          in
          Boot_runner.emit_trace trace;
          {
            outcome;
            attempts = attempts + 1;
            events = Failure.Fell_back_to_cold_boot f :: events;
            total_ns = Trace.total trace;
          })

let supervise_many ?(jitter = true) ?jobs ?max_retries ~runs ~ctx_for ~make_vm
    () =
  let jobs = max 1 (Option.value ~default:!Boot_runner.default_jobs jobs) in
  Imk_util.Par.map_tasks ~jobs ~tasks:runs (fun ~worker:_ i ->
      let run = i + 1 in
      let seed = Boot_runner.run_seed run in
      let ctx = ctx_for ~run in
      supervise ~jitter ?max_retries ~seed ~ctx (make_vm ~seed))
