open Imk_vclock
module Failure = Imk_fault.Failure

type ctx = {
  cache : Imk_storage.Page_cache.t;
  inject : (string -> unit) option;
  plans : Imk_monitor.Plan_cache.t option;
}

let plain_ctx ?plans cache = { cache; inject = None; plans }

type report = {
  outcome : (Imk_guest.Runtime.verify_stats, Failure.t) result;
  attempts : int;
  events : Failure.event list;
  total_ns : int;
  recovery : (string * int) list;
}

let default_max_retries = 3

let backoff_base_ns = 200_000
(* first retry waits ~0.2 ms of virtual time, doubling per retry — small
   against a multi-ms boot but visible in the trace *)

let short_circuit_ns = 25_000
(* rejecting a boot while the breaker is open is cheap but not free: the
   launcher still looks up breaker state and reports the refusal *)

type policy = {
  max_retries : int;
  attempt_budget_ns : int option;
  breaker_threshold : int;
  breaker_cooldown : int;
  retry_budget : int;
}

let default_policy =
  {
    max_retries = default_max_retries;
    attempt_budget_ns = None;
    breaker_threshold = 3;
    breaker_cooldown = 2;
    retry_budget = max_int;
  }

type breaker_state = Closed | Open of int

type fleet = {
  policy : policy;
  mutable state : breaker_state;
  mutable consecutive : int;
  mutable trips : int;
  mutable last_failure : Failure.t option;
  mutable retries_left : int;
}

let fleet ?(policy = default_policy) () =
  {
    policy;
    state = Closed;
    consecutive = 0;
    trips = 0;
    last_failure = None;
    retries_left = policy.retry_budget;
  }

let breaker_trips f = f.trips
let retries_left f = f.retries_left

let breaker_state_name f =
  match f.state with
  | Closed -> "closed"
  | Open 0 -> "half-open"
  | Open _ -> "open"

let make_charge ~jitter ~seed =
  let clock = Clock.create () in
  let trace = Trace.create clock in
  let jitter_rng =
    if jitter then Some (Imk_entropy.Prng.create ~seed:(Int64.add seed 7919L))
    else None
  in
  (trace, Charge.create ?jitter:jitter_rng trace Cost_model.default)

let modeled (vm : Imk_monitor.Vm_config.t) n =
  Imk_kernel.Config.modeled_of_actual vm.Imk_monitor.Vm_config.kernel_config n

(* Replace a corrupt relocation table with one re-derived from the
   kernel ELF (Figure 8's extraction path — proven to boot verify-green
   by test_boot_paths). Real work, charged in its own span: read the
   image, parse it, walk every function for relocation sites. *)
let rederive_relocs ch ctx (vm : Imk_monitor.Vm_config.t) path =
  Charge.span ch Trace.In_monitor "rederive-relocs" (fun () ->
      let cm = Charge.model ch in
      let kernel, cached =
        Imk_storage.Page_cache.read ctx.cache vm.Imk_monitor.Vm_config.kernel_path
      in
      Charge.pay_using ch Sched.Disk
        (Cost_model.read_cost cm ~cached (modeled vm (Bytes.length kernel)));
      let elf = Imk_elf.Parser.parse kernel in
      Charge.pay ch
        (Cost_model.elf_parse_cost cm
           ~sections:(modeled vm (Array.length elf.Imk_elf.Types.sections)));
      let table = Imk_kernel.Relocs_tool.extract kernel in
      Charge.pay ch
        (Cost_model.reloc_cost cm ~in_guest:false
           ~entries:(modeled vm (Imk_elf.Relocation.entry_count table)));
      Imk_storage.Disk.add
        (Imk_storage.Page_cache.disk ctx.cache)
        ~name:path
        (Imk_elf.Relocation.encode table))

(* --- circuit breaker: per-kernel-config, campaign-scoped state --- *)

type admission = Admit | Probe | Reject of Failure.t

let admit = function
  | None -> Admit
  | Some f -> (
      match f.state with
      | Closed -> Admit
      | Open 0 -> Probe
      | Open n ->
          f.state <- Open (n - 1);
          Reject
            (Option.value
               ~default:(Failure.Transient "breaker open")
               f.last_failure))

let persistent = function Failure.Transient _ -> false | _ -> true

(* breaker bookkeeping after a supervised boot; the extra events it
   returns are appended to the report in occurrence order *)
let breaker_note fleet ~probing (outcome : (_, Failure.t) result) =
  match fleet with
  | None -> []
  | Some f -> (
      match outcome with
      | Ok _ ->
          if probing then begin
            f.state <- Closed;
            f.consecutive <- 0;
            [ Failure.Breaker_probe { succeeded = true } ]
          end
          else begin
            f.consecutive <- 0;
            []
          end
      | Error fl ->
          f.last_failure <- Some fl;
          if probing then begin
            f.state <- Open f.policy.breaker_cooldown;
            [ Failure.Breaker_probe { succeeded = false } ]
          end
          else if persistent fl then begin
            f.consecutive <- f.consecutive + 1;
            if f.consecutive >= f.policy.breaker_threshold then begin
              f.state <- Open f.policy.breaker_cooldown;
              f.trips <- f.trips + 1;
              let consecutive = f.consecutive in
              f.consecutive <- 0;
              [ Failure.Breaker_opened { failure = fl; consecutive } ]
            end
            else []
          end
          else [])

(* Seal a report: every labelled recovery interval plus the successful
   attempt must cover the trace total exactly — if a charge ever lands
   outside the supervisor's accounting, the report (and with it the
   faults/resilience telemetry) would silently drift from the --trace
   timeline, so a mismatch is a programming error, not a boot failure. *)
let finish trace ~outcome ~attempts ~events ~recovery_rev ~success_ns =
  Boot_runner.emit_trace trace;
  let total_ns = Trace.total trace in
  let recovery = List.rev recovery_rev in
  let accounted =
    success_ns + List.fold_left (fun acc (_, d) -> acc + d) 0 recovery
  in
  if accounted <> total_ns then
    invalid_arg
      (Printf.sprintf
         "Boot_supervisor: recovery spans (%d ns) + successful attempt (%d \
          ns) do not cover the trace total (%d ns)"
         (accounted - success_ns) success_ns total_ns);
  { outcome; attempts; events; total_ns; recovery }

let resolve_retries max_retries fleet =
  match (max_retries, fleet) with
  | Some m, _ -> m
  | None, Some f -> f.policy.max_retries
  | None, None -> default_max_retries

let attempt_budget fleet =
  match fleet with
  | Some { policy = { attempt_budget_ns = Some b; _ }; _ } -> Some b
  | _ -> None

let reject_report ch trace failure =
  let clk = Charge.clock ch in
  let mark = Clock.now clk in
  Charge.pay_span ch Trace.In_monitor "breaker-short-circuit" short_circuit_ns;
  finish trace ~outcome:(Error failure) ~attempts:0
    ~events:[ Failure.Breaker_short_circuit { failure } ]
    ~recovery_rev:[ ("breaker-short-circuit", Clock.elapsed_since clk mark) ]
    ~success_ns:0

let supervise_on ch ?arena ?fleet ~max_retries ~ctx
    (vm : Imk_monitor.Vm_config.t) =
  let clk = Charge.clock ch in
  let events = ref [] in
  let recovery = ref [] (* reverse occurrence order *) in
  let push e = events := e :: !events in
  let add_recovery label mark =
    recovery := (label, Clock.elapsed_since clk mark) :: !recovery
  in
  let attempts = ref 0 in
  let budget = attempt_budget fleet in
  let deadline =
    Option.map (fun b -> Deadline.arm clk ~label:"boot-attempt" ~budget_ns:b)
      budget
  in
  let boot_attempt () =
    incr attempts;
    (match deadline with
    | Some d ->
        (* every attempt gets a fresh budget; recovery work between
           attempts runs with the deadline detached *)
        Deadline.rearm d ~budget_ns:(Option.get budget);
        Charge.set_deadline ch (Some d)
    | None -> ());
    Fun.protect
      ~finally:(fun () -> Charge.set_deadline ch None)
      (fun () ->
        match arena with
        | None ->
            (Imk_monitor.Vmm.boot ?inject:ctx.inject ?plans:ctx.plans ch
               ctx.cache vm)
              .Imk_monitor.Vmm.stats
        | Some a ->
            Imk_memory.Arena.with_buffer a
              ~size:vm.Imk_monitor.Vm_config.mem_bytes (fun mem ->
                (Imk_monitor.Vmm.boot ?inject:ctx.inject ?plans:ctx.plans ~mem
                   ch ctx.cache vm)
                  .Imk_monitor.Vmm.stats))
  in
  let campaign_can_retry () =
    match fleet with None -> true | Some f -> f.retries_left > 0
  in
  let consume_campaign_retry () =
    match fleet with None -> () | Some f -> f.retries_left <- f.retries_left - 1
  in
  let rederived = ref false in
  let deadline_fallback_used = ref false in
  let success_ns = ref 0 in
  let rec go retries_left =
    let mark = Clock.now clk in
    match boot_attempt () with
    | stats ->
        success_ns := Clock.elapsed_since clk mark;
        Ok stats
    | exception e -> (
        match Failure.classify e with
        | None -> raise e (* programming error, not a boot failure *)
        | Some f ->
            add_recovery "failed-attempt" mark;
            recover f retries_left)
  and recover f retries_left =
    match f with
    | Failure.Transient _ when retries_left > 0 && campaign_can_retry () ->
        consume_campaign_retry ();
        let backoff = backoff_base_ns * (1 lsl (max_retries - retries_left)) in
        let mark = Clock.now clk in
        Charge.pay_span ch Trace.In_monitor "retry-backoff" backoff;
        add_recovery "retry-backoff" mark;
        push (Failure.Retried { attempt = !attempts; failure = f; backoff_ns = backoff });
        go (retries_left - 1)
    | Failure.Transient _ when retries_left > 0 ->
        (* per-boot retries remain, but the campaign budget is dry:
           fail fast instead of spinning through a storm *)
        push (Failure.Retry_budget_exhausted f);
        Error f
    | Failure.Deadline_exceeded _
      when (not !deadline_fallback_used) && Option.is_some deadline ->
        (* the attempt aborted at a phase boundary past its budget; one
           fallback attempt runs with a fresh budget *)
        deadline_fallback_used := true;
        push
          (Failure.Deadline_aborted
             { failure = f; fresh_budget_ns = Option.get budget });
        go retries_left
    | Failure.Bad_reloc _
      when (not !rederived) && vm.Imk_monitor.Vm_config.relocs_path <> None -> (
        rederived := true;
        let mark = Clock.now clk in
        match
          rederive_relocs ch ctx vm
            (Option.get vm.Imk_monitor.Vm_config.relocs_path)
        with
        | () ->
            add_recovery "rederive-relocs" mark;
            push (Failure.Rederived_relocs f);
            go retries_left
        | exception e2 -> (
            (* the kernel image is corrupt too: report that, typed *)
            match Failure.classify e2 with
            | Some f2 ->
                add_recovery "rederive-relocs" mark;
                Error f2
            | None -> raise e2))
    | _ -> Error f
  in
  let outcome = go max_retries in
  (outcome, !attempts, List.rev !events, !recovery, !success_ns)

let supervise ?(jitter = true) ?arena ?fleet ?max_retries ~seed ~ctx vm =
  let max_retries = resolve_retries max_retries fleet in
  let trace, ch = make_charge ~jitter ~seed in
  let vm = { vm with Imk_monitor.Vm_config.seed } in
  match admit fleet with
  | Reject failure -> reject_report ch trace failure
  | (Admit | Probe) as adm ->
      let probing = adm = Probe in
      let max_retries = if probing then 0 else max_retries in
      let outcome, attempts, events, recovery_rev, success_ns =
        supervise_on ch ?arena ?fleet ~max_retries ~ctx vm
      in
      let events = events @ breaker_note fleet ~probing outcome in
      finish trace ~outcome ~attempts ~events ~recovery_rev ~success_ns

let supervise_snapshot ?(jitter = true) ?arena ?fleet ?max_retries ~seed ~ctx
    ~snapshot_path ~working_set_pages vm =
  let max_retries = resolve_retries max_retries fleet in
  let trace, ch = make_charge ~jitter ~seed in
  let clk = Charge.clock ch in
  let vm = { vm with Imk_monitor.Vm_config.seed } in
  match admit fleet with
  | Reject failure -> reject_report ch trace failure
  | (Admit | Probe) as adm -> (
      let probing = adm = Probe in
      let max_retries = if probing then 0 else max_retries in
      let restore_deadline =
        Option.map
          (fun b -> Deadline.arm clk ~label:"snapshot-restore" ~budget_ns:b)
          (attempt_budget fleet)
      in
      let restore_mark = Clock.now clk in
      match
        Charge.set_deadline ch restore_deadline;
        Fun.protect
          ~finally:(fun () -> Charge.set_deadline ch None)
          (fun () ->
            let snap =
              Charge.span ch Trace.In_monitor "snapshot-load" (fun () ->
                  let blob, cached =
                    Imk_storage.Page_cache.read ctx.cache snapshot_path
                  in
                  Charge.pay_using ch Sched.Disk
                    (Cost_model.read_cost (Charge.model ch) ~cached
                       (modeled vm (Bytes.length blob)));
                  Imk_monitor.Snapshot.load ~config:vm blob)
            in
            Imk_monitor.Snapshot.restore ch snap ~working_set_pages)
      with
      | r ->
          let outcome = Ok r.Imk_monitor.Vmm.stats in
          let events = breaker_note fleet ~probing outcome in
          finish trace ~outcome ~attempts:1 ~events ~recovery_rev:[]
            ~success_ns:(Clock.elapsed_since clk restore_mark)
      | exception e -> (
          match Failure.classify e with
          | None -> raise e
          | Some f ->
              (* restore failure (a typed corruption, or a deadline
                 overrun on a cold snapshot read): degrade to a
                 supervised cold boot on the same virtual clock, so the
                 fallback's full cost lands in one report *)
              let restore_ns = Clock.elapsed_since clk restore_mark in
              let outcome, attempts, events, recovery_rev, success_ns =
                supervise_on ch ?arena ?fleet ~max_retries ~ctx vm
              in
              let events = Failure.Fell_back_to_cold_boot f :: events in
              let events = events @ breaker_note fleet ~probing outcome in
              finish trace ~outcome ~attempts:(attempts + 1) ~events
                ~recovery_rev:(recovery_rev @ [ ("failed-restore", restore_ns) ])
                ~success_ns))

let supervise_many ?(jitter = true) ?jobs ?max_retries ~runs ~ctx_for ~make_vm
    () =
  let jobs = max 1 (Option.value ~default:!Boot_runner.default_jobs jobs) in
  Imk_util.Par.map_tasks ~jobs ~tasks:runs (fun ~worker:_ i ->
      let run = i + 1 in
      let seed = Boot_runner.run_seed run in
      let ctx = ctx_for ~run in
      supervise ~jitter ?max_retries ~seed ~ctx (make_vm ~seed))
