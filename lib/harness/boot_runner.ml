open Imk_vclock

type phase_stats = {
  in_monitor : Imk_util.Stats.summary;
  bootstrap : Imk_util.Stats.summary;
  decompression : Imk_util.Stats.summary;
  linux_boot : Imk_util.Stats.summary;
  total : Imk_util.Stats.summary;
}

let ms s = Imk_util.Units.ns_float_to_ms s.Imk_util.Stats.mean

let default_jobs = ref 1

let trace_sink : (Trace.t -> unit) option ref = ref None

let emit_trace trace =
  match !trace_sink with Some f -> f trace | None -> ()

let boot_once ?(jitter = true) ?arena ?mem ?plans ~seed ~cache vm =
  let clock = Clock.create () in
  let trace = Trace.create clock in
  let jitter_rng =
    if jitter then Some (Imk_entropy.Prng.create ~seed:(Int64.add seed 7919L))
    else None
  in
  let ch = Charge.create ?jitter:jitter_rng trace Cost_model.default in
  let result =
    Imk_monitor.Vmm.boot ?arena ?mem ?plans ch cache
      { vm with Imk_monitor.Vm_config.seed }
  in
  emit_trace trace;
  (trace, result)

let warm_seed i = Int64.of_int (1000 + i)
let run_seed i = Int64.of_int (2000 + i)
let contend_seed ~run ~slot = Int64.of_int (3000 + (run * 256) + slot)

(* a phase the boot never entered (direct boots have no decompression)
   reports 0 ns; drop it so its summary says n = 0 instead of averaging
   fabricated zero samples *)
let record_trace trace =
  let breakdown =
    List.filter_map
      (fun (p, ns) -> if ns = 0 then None else Some (p, float_of_int ns))
      (Trace.breakdown trace)
  in
  (breakdown, float_of_int (Trace.total trace))

(* aggregation replays the sequential fold so summaries are identical
   whatever the fan-out was: samples are prepended record by record *)
let summarize_recorded recorded =
  let phase_samples = Hashtbl.create 8 in
  let totals = ref [] in
  let record phase v =
    let prev =
      Option.value ~default:[] (Hashtbl.find_opt phase_samples phase)
    in
    Hashtbl.replace phase_samples phase (v :: prev)
  in
  Array.iter
    (fun (breakdown, total) ->
      List.iter (fun (phase, v) -> record phase v) breakdown;
      totals := total :: !totals)
    recorded;
  let summary phase =
    match Hashtbl.find_opt phase_samples phase with
    | None | Some [] -> Imk_util.Stats.empty
    | Some samples -> Imk_util.Stats.summarize samples
  in
  {
    in_monitor = summary Trace.In_monitor;
    bootstrap = summary Trace.Bootstrap_setup;
    decompression = summary Trace.Decompression;
    linux_boot = summary Trace.Linux_boot;
    total =
      (match !totals with
      | [] -> Imk_util.Stats.empty
      | samples -> Imk_util.Stats.summarize samples);
  }

let boot_many ?(warmups = 5) ?(cold = false) ?jobs ?arena ?plans ~runs ~cache
    ~make_vm () =
  let jobs = max 1 (Option.value ~default:!default_jobs jobs) in
  (* one full boot: returns its phase breakdown (as floats, the exact
     samples the sequential path has always recorded) and total, and
     hands the guest memory back to the arena *)
  let boot ~seed ~cache =
    if cold then Imk_storage.Page_cache.drop_caches cache;
    let vm = make_vm ~seed in
    let record (trace, _result) = record_trace trace in
    match arena with
    | None -> record (boot_once ?plans ~seed ~cache vm)
    | Some a ->
        (* bracketed borrow: a boot that raises (fault-injection runs)
           still hands its buffer back to the pool *)
        Imk_memory.Arena.with_buffer a ~size:vm.Imk_monitor.Vm_config.mem_bytes
          (fun mem -> record (boot_once ~mem ?plans ~seed ~cache vm))
  in
  (* recorded boots in run order (index i = run i+1, seed run_seed (i+1)) *)
  let recorded =
    if jobs = 1 then begin
      for i = 1 to warmups do
        ignore (boot ~seed:(warm_seed i) ~cache)
      done;
      Imk_util.Par.map_tasks ~tasks:runs (fun ~worker:_ i ->
          boot ~seed:(run_seed (i + 1)) ~cache)
    end
    else begin
      (* Parallel protocol, bit-identical to sequential: the first boot
         (warmup 1, or run 1 when there are no warmups) runs on the
         calling domain against the shared cache, priming it with every
         file a boot of this configuration reads (the read set does not
         depend on the seed) and building any lazy workspace artifacts.
         Each worker then gets its own clone of the primed cache, so all
         remaining boots observe exactly the cache state they would have
         seen sequentially — and each boot's virtual clock, jitter and
         entropy are functions of its per-run seed alone. *)
      let first_is_warmup = warmups > 0 in
      let first_run =
        if first_is_warmup then begin
          ignore (boot ~seed:(warm_seed 1) ~cache);
          None
        end
        else if runs > 0 then Some (boot ~seed:(run_seed 1) ~cache)
        else None
      in
      let rem_warm = if first_is_warmup then warmups - 1 else 0 in
      let rem_runs = if first_is_warmup then runs else max 0 (runs - 1) in
      let caches =
        Array.init jobs (fun _ -> Imk_storage.Page_cache.clone cache)
      in
      let results =
        Imk_util.Par.map_tasks ~jobs ~tasks:(rem_warm + rem_runs)
          (fun ~worker t ->
            let cache = caches.(worker) in
            if t < rem_warm then begin
              ignore (boot ~seed:(warm_seed (t + 2)) ~cache);
              None
            end
            else
              let run = t - rem_warm + (if first_is_warmup then 1 else 2) in
              Some (boot ~seed:(run_seed run) ~cache))
      in
      let out = Array.make runs None in
      (match first_run with Some r -> out.(0) <- Some r | None -> ());
      Array.iteri
        (fun t r ->
          match r with
          | None -> ()
          | Some r ->
              let i = t - rem_warm + (if first_is_warmup then 0 else 1) in
              out.(i) <- Some r)
        results;
      Array.map (function Some r -> r | None -> assert false) out
    end
  in
  summarize_recorded recorded

(* --- contended boots on the shared event timeline (DESIGN.md §10) --- *)

let contend_capacities = ref (1, 1)

type contended_stats = {
  per_boot : phase_stats;
  makespan : Imk_util.Stats.summary;
}

let boot_contended ?(warmups = 5) ?jobs ?plans ~n ~runs ~cache ~make_vm () =
  if n < 1 then invalid_arg "Boot_runner.boot_contended: n < 1";
  if runs < 0 then invalid_arg "Boot_runner.boot_contended: negative runs";
  let jobs = max 1 (Option.value ~default:!default_jobs jobs) in
  let disk_capacity, decompress_slots = !contend_capacities in
  (* warm the shared cache (and plan cache / lazy image builds)
     sequentially, exactly like [boot_many]: the boots' read set does not
     depend on the seed, so afterwards the cache is a fixed point for
     this configuration *)
  for i = 1 to warmups do
    ignore (boot_once ?plans ~seed:(warm_seed i) ~cache (make_vm ~seed:(warm_seed i)))
  done;
  (* one run = a fresh scheduler booting [n] guests concurrently against
     a private clone of the warmed cache. Every input is a pure function
     of the run index — seeds, jitter, cache state, and the scheduler's
     event order (single-domain, seq-stamped) — so fanning the runs over
     [jobs] workers preserves bit-identical telemetry. *)
  let one_run r =
    let cache = Imk_storage.Page_cache.clone cache in
    let sched =
      Imk_vclock.Sched.create ~disk_capacity ~decompress_slots ()
    in
    let boots =
      Array.init n (fun s ->
          let tl = Imk_vclock.Sched.timeline sched in
          let trace = Trace.create (Imk_vclock.Sched.timeline_clock tl) in
          let seed = contend_seed ~run:r ~slot:s in
          let jitter = Imk_entropy.Prng.create ~seed:(Int64.add seed 7919L) in
          let ch = Charge.create ~jitter ~sched:tl trace Cost_model.default in
          (tl, trace, ch, seed))
    in
    Array.iter
      (fun (tl, _trace, ch, seed) ->
        Imk_vclock.Sched.spawn sched tl (fun () ->
            let vm = { (make_vm ~seed) with Imk_monitor.Vm_config.seed = seed } in
            ignore (Imk_monitor.Vmm.boot ?plans ch cache vm)))
      boots;
    Imk_vclock.Sched.run sched;
    let per_boot =
      Array.map
        (fun (_, trace, _, _) ->
          emit_trace trace;
          record_trace trace)
        boots
    in
    (per_boot, float_of_int (Imk_vclock.Sched.now sched))
  in
  let per_run =
    Imk_util.Par.map_tasks ~jobs ~tasks:runs (fun ~worker:_ r -> one_run (r + 1))
  in
  {
    per_boot =
      summarize_recorded
        (Array.concat (Array.to_list (Array.map fst per_run)));
    makespan =
      (match Array.to_list (Array.map snd per_run) with
      | [] -> Imk_util.Stats.empty
      | samples -> Imk_util.Stats.summarize samples);
  }

let spans_by_label trace =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let label =
        if String.length s.label > 0 && s.label.[0] = '+' then
          String.sub s.label 1 (String.length s.label - 1)
        else s.label
      in
      let prev = Option.value ~default:0 (Hashtbl.find_opt acc label) in
      Hashtbl.replace acc label (prev + (s.stop_ns - s.start_ns)))
    (Trace.spans trace);
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
