(** Experiment drivers — one per table/figure of the paper.

    Each returns an {!output}: a rendered table plus claim-check notes
    (the "who wins, by what factor" assertions EXPERIMENTS.md records).
    [runs] defaults to 20 per configuration; the paper used 100, and
    [bench/main.exe --runs 100] reproduces that. *)

type boot_row = {
  label : string;
      (** stable row key: every key cell of the table row, numeric ones
          included, joined with ["/"] — e.g. ["aws/kaslr/lz4"],
          ["aws/kaslr/256M"]. Dropping numeric key cells (an old bug)
          made sweep points collapse onto one label and silently shadow
          each other in the JSON. *)
  total : Imk_util.Stats.summary;  (** nanoseconds, across the runs *)
  phases : (string * Imk_util.Stats.summary) list;
      (** per-phase nanosecond summaries ("in-monitor", "bootstrap",
          "decompression", "linux-boot" — or finer span labels for
          span-level experiments like fig5). Phases the boot path never
          entered are absent, not zero-padded; the present phases' means
          sum to [total.mean] up to per-run phase dropout. *)
}

type output = {
  id : string;  (** "table1", "fig3", ... *)
  title : string;
  table : Imk_util.Table.t;
  notes : string list;  (** derived claims, paper-vs-measured *)
  telemetry : boot_row list;
      (** the raw per-label distributions behind the table, fed to
          {!Telemetry} as floats — never re-parsed from the rendered
          cells. Empty for experiments without boot-time rows (table1,
          fig11, security, page-sharing). *)
}

val table1 : Workspace.t -> output
(** Kernel image sizes (modelled): vmlinux, bzImage none/LZ4, relocs. *)

val fig3 : ?runs:int -> Workspace.t -> output
(** Compression bakeoff: boot time per codec; LZ4 must win. *)

val fig4 : ?runs:int -> Workspace.t -> output
(** Cold vs warm cache: bzImage(LZ4) vs direct boot, three kernels. *)

val fig5 : ?runs:int -> Workspace.t -> output
(** Bootstrap loader step breakdown; decompression dominates. *)

val fig6 : ?runs:int -> Workspace.t -> output
(** Bootstrap methods: none / LZ4 / none-optimized / direct. *)

val fig9 : ?runs:int -> Workspace.t -> output
(** Main evaluation: {nokaslr,kaslr,fgkaslr} × {in-monitor direct,
    none-optimized self-rando, LZ4 self-rando} × three kernels. *)

val fig10 : ?runs:int -> Workspace.t -> output
(** Guest memory sweep: monitor time flat, Linux boot linear. *)

val fig11 : ?runs:int -> Workspace.t -> output
(** LEBench normalized to the nokaslr baseline. *)

val qemu_check : ?runs:int -> Workspace.t -> output
(** §2.2/§5.2 cross-check under the QEMU cost profile. *)

val throughput : ?runs:int -> Workspace.t -> output
(** §5.2's platform metric: VMs instantiated per second on a multi-core
    host, per randomization scheme. *)

val security : Workspace.t -> output
(** Entropy accounting + the leak-and-locate attack. *)

val diffcheck : ?runs:int -> ?mutate:bool -> Workspace.t -> output
(** Differential-oracle campaign (DESIGN.md §8): runs the {!Imk_check}
    catalogue — cross-path layout, plan-cache traces, snapshot clones,
    arena recycling — over the kernel matrix with run-pure seeds, fanned
    over [--jobs], plus a jobs-1 ≡ jobs-N [boot_many] row. The table and
    telemetry are bit-identical for any jobs value. [mutate] plants an
    off-by-one in the cross-path comparison; the campaign must report it
    caught and prints a shrunk reproducer — an oracle that cannot fail
    is not evidence. *)

val fleet : ?runs:int -> ?requests:int -> Workspace.t -> output
(** Fleet serving campaign ({!Imk_fleet}, DESIGN.md §9): preset x
    arrival model (poisson/bursty) x weather profile through the
    deterministic serving simulator — a virtual-time request stream
    scheduled onto bounded boot slots with a bounded warm pool and a
    bounded admission queue. Per cell: served/dropped counts, pool hit
    rate, cold vs warm sojourn p50/p99, queue wait p99, queue depth
    p99, distinct served layouts; telemetry carries the cold-start /
    warm-start / fault-start / queue-wait distributions. Service costs
    are calibrated per preset from [max 4 runs] real supervised boots,
    snapshot restores and fault-laden supervised boots ([requests]
    simulated requests per cell then draw from them cyclically by
    index). Calibration runs sequentially on the calling domain and
    each cell's simulation is pure in its inputs, so the output is
    bit-identical for any [--jobs]. A fault-laden calibration boot
    that comes back green with no recovery event raises the
    "SOUNDNESS VIOLATION" note prefix [bench/main.exe] fails on. *)

val faults : ?runs:int -> Workspace.t -> output
(** Deterministic fault-injection campaign: fault kinds x boot paths x
    seeds under {!Boot_supervisor} supervision. Reports, per cell, how
    many runs were detected (typed failure), recovered (verify-green
    with a recorded recovery event) or — soundness violation — silently
    green; the "silent" column must be all zeros. Bit-identical for any
    [--jobs] value: every run gets a private disk, cache and armed
    fault, all pure functions of the run index. *)

val resilience : ?runs:int -> Workspace.t -> output
(** Resilience campaign: weather profile (calm/flaky/storm,
    {!Imk_fault.Weather}) x preset x boot path (direct ELF, compressed
    bzImage, snapshot restore) under {!Boot_supervisor.fleet}
    supervision — per-attempt virtual-time deadlines, circuit breakers,
    a campaign retry budget. Per cell: recoveries, short-circuits,
    breaker trips, deadline aborts, fallbacks, MTTR and p50/p99 boot
    totals; telemetry carries per-recovery-label phase distributions.
    Two gates, surfaced as note prefixes [bench/main.exe] fails on:
    "SOUNDNESS VIOLATION" (an armed fault booted green with no event)
    and "UNRECOVERED" (a recoverable fault ended as a failure without
    an accounted degradation). Weather and per-run state are pure in
    the (cell, run) index and each cell's fleet runs sequentially, so
    output is bit-identical for any [--jobs]. *)

val ablation_kallsyms : ?runs:int -> Workspace.t -> output
(** Eager vs deferred kallsyms fixup (§4.3: eager ≈ 22% of boot). *)

val ablation_orc : ?runs:int -> Workspace.t -> output
(** ORC table update vs skip, on an ORC-enabled kernel build. *)

val ablation_page_sharing : Workspace.t -> output
(** §6 memory density: identical-page fraction between two guests under
    shared vs distinct randomization seeds. *)

val ablation_devices : ?runs:int -> Workspace.t -> output
(** What a Lambda-style device set (serial, virtio-blk rootfs,
    virtio-net) adds to a boot, on Firecracker's minimal device model vs
    a QEMU-style one (§2.1). *)

val ablation_unikernel : ?runs:int -> Workspace.t -> output
(** §6: unikernels have no bootstrap loader, so only the monitor can
    randomize them; whole-system FGASLR at unikernel scale costs
    almost nothing. *)

val ablation_zygote : ?runs:int -> Workspace.t -> output
(** §7: snapshot restores and Morula-style zygote pools vs fresh
    randomized boots — create latency, layout diversity, resident
    memory. *)

val ablation_rerando : ?runs:int -> Workspace.t -> output
(** §7: SAND-style persistent VMs amortize boot cost but freeze the
    layout across invocations; in-monitor KASLR makes
    reboot-per-invocation re-randomization cheap. Reports invocations/sec
    and distinct layouts per policy. *)

val all_ids : string list
(** Every experiment id, in paper order. *)

val all : ?runs:int -> Workspace.t -> output list
(** Every experiment, in paper order. Prefer iterating {!all_ids} with
    {!by_id} when streaming results as they complete. *)

val by_id : string -> (?runs:int -> Workspace.t -> output) option
(** Look an experiment up by its id (for the CLI). *)
