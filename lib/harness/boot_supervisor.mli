(** Supervised boots: classify failures, retry transients, degrade
    gracefully — all on the virtual clock.

    A supervisor wraps one boot attempt the way a production launcher
    wraps Firecracker: every exception the boot path can raise on bad
    input is classified into the {!Imk_fault.Failure} taxonomy (an
    unclassifiable exception is re-raised — it is a programming error
    and must not be absorbed), transients are retried with bounded
    exponential backoff, and persistent-fault degradations are built
    in:

    - a corrupt relocation table is re-derived from the kernel ELF
      (the Figure 8 extraction path) and the boot retried;
    - a corrupt snapshot falls back to a supervised cold boot;
    - an attempt that charges past its {!Imk_vclock.Deadline} budget is
      aborted at the next phase boundary and retried once with a fresh
      budget (for a snapshot restore, the retry is the cold-boot
      fallback).

    Campaign-scale policy lives in a {!fleet}: a per-kernel-config
    circuit breaker (open after [breaker_threshold] consecutive
    persistent failures; while open, boots are short-circuited for a
    small charged cost; after [breaker_cooldown] rejections a half-open
    probe boot decides whether to close it) and a campaign-level retry
    budget (once dry, transients fail fast instead of spinning through
    a storm). A fleet is deliberately sequential state: share one per
    cell of a campaign and run that cell's boots in order — parallelism
    belongs {e between} cells, which is how the resilience experiment
    stays bit-identical for any [--jobs].

    None of the recovery work is free: backoff, re-derivation, fallback
    boots, short-circuits and probes are charged to the same virtual
    clock as the boot itself, each in its own labelled span — and the
    report carries the same intervals as [recovery], with the checked
    invariant that they sum to [total_ns] minus the successful attempt.

    Every finished supervised boot offers its full trace — recovery
    spans included — to {!Boot_runner.trace_sink}, so
    [bench/main.exe --trace] can dump a supervised campaign's timeline
    exactly like a plain one. *)

type ctx = {
  cache : Imk_storage.Page_cache.t;  (** the run's (private) page cache *)
  inject : (string -> unit) option;
      (** armed transient hook ({!Imk_fault.Inject.armed}), if any *)
  plans : Imk_monitor.Plan_cache.t option;
      (** shared boot-plan cache; safe across runs and corruptions —
          plans are content-addressed, so a corrupted image can never
          resolve to a pristine image's plan (or vice versa) *)
}

val plain_ctx : ?plans:Imk_monitor.Plan_cache.t -> Imk_storage.Page_cache.t -> ctx
(** A context with no fault hook. *)

type report = {
  outcome : (Imk_guest.Runtime.verify_stats, Imk_fault.Failure.t) result;
      (** verify-green stats, or the typed failure the boot ended on *)
  attempts : int;  (** boot attempts made (snapshot restore counts) *)
  events : Imk_fault.Failure.event list;
      (** recovery actions, in occurrence order *)
  total_ns : int;  (** virtual time spent, recovery included *)
  recovery : (string * int) list;
      (** labelled recovery intervals in occurrence order
          ("failed-attempt", "retry-backoff", "rederive-relocs",
          "failed-restore", "breaker-short-circuit"), measured on the
          virtual clock. Invariant, enforced at report construction:
          their sum is [total_ns] minus the successful attempt's cost
          (exactly [total_ns] when the outcome is an [Error]) — the
          report can never drift from the [--trace] timeline. *)
}

val default_max_retries : int

val backoff_base_ns : int
(** First retry's backoff; each further retry doubles it. *)

val short_circuit_ns : int
(** Nominal cost of rejecting a boot while the breaker is open. *)

(** Supervision policy for a campaign cell. *)
type policy = {
  max_retries : int;  (** per-boot transient retries *)
  attempt_budget_ns : int option;
      (** virtual-time deadline per boot attempt (and per snapshot
          restore); [None] disables deadlines *)
  breaker_threshold : int;
      (** consecutive persistent failures that open the breaker *)
  breaker_cooldown : int;
      (** boots short-circuited while open before a half-open probe *)
  retry_budget : int;  (** campaign-wide transient retries *)
}

val default_policy : policy
(** [max_retries = default_max_retries], no deadline, threshold 3,
    cooldown 2, unbounded retry budget. *)

type fleet
(** Mutable campaign state for one kernel config: the circuit breaker
    and the remaining retry budget. Not thread-safe — one fleet per
    sequentially-executed campaign cell. *)

val fleet : ?policy:policy -> unit -> fleet

val breaker_trips : fleet -> int
(** Times the breaker has opened ([Closed] → [Open] transitions). *)

val retries_left : fleet -> int

val breaker_state_name : fleet -> string
(** "closed", "open" or "half-open" (open with the cooldown spent, so
    the next boot is the probe). *)

val supervise :
  ?jitter:bool ->
  ?arena:Imk_memory.Arena.t ->
  ?fleet:fleet ->
  ?max_retries:int ->
  seed:int64 ->
  ctx:ctx ->
  Imk_monitor.Vm_config.t ->
  report
(** [supervise ~seed ~ctx vm] runs one supervised boot on a fresh
    virtual clock ([seed] fixes the config seed and the jitter stream,
    exactly like [Boot_runner.boot_once]). With [?arena], every attempt
    runs inside an {!Imk_memory.Arena.with_buffer} bracket, so failed
    and deadline-aborted attempts hand their guest memory straight back
    to the pool, scrubbed. With [?fleet], the boot passes through the
    cell's circuit breaker (it may be short-circuited or run as the
    half-open probe), draws per-attempt deadlines from the fleet's
    policy, and consumes the campaign retry budget; [?max_retries]
    defaults to the fleet's policy when one is given. *)

val supervise_snapshot :
  ?jitter:bool ->
  ?arena:Imk_memory.Arena.t ->
  ?fleet:fleet ->
  ?max_retries:int ->
  seed:int64 ->
  ctx:ctx ->
  snapshot_path:string ->
  working_set_pages:int ->
  Imk_monitor.Vm_config.t ->
  report
(** [supervise_snapshot ~seed ~ctx ~snapshot_path ~working_set_pages vm]
    restores from a serialized snapshot on the run's disk. A typed
    restore failure (CRC mismatch, truncation — or, with a fleet
    policy budget, a deadline overrun on a cold snapshot read) is
    recorded as a [Fell_back_to_cold_boot] event and the supervisor
    boots [vm] cold on the same clock — the report's [total_ns] is the
    price of the failed restore plus the fallback. *)

val supervise_many :
  ?jitter:bool ->
  ?jobs:int ->
  ?max_retries:int ->
  runs:int ->
  ctx_for:(run:int -> ctx) ->
  make_vm:(seed:int64 -> Imk_monitor.Vm_config.t) ->
  unit ->
  report array
(** [supervise_many ~runs ~ctx_for ~make_vm ()] fans [runs] supervised
    boots over [?jobs] domains (default [Boot_runner.default_jobs]).
    Run [i] (1-based) uses seed [Boot_runner.run_seed i] and a context
    built by [ctx_for ~run:i] {e inside the worker} — [ctx_for] must
    build run-private state (its own disk, cache and armed faults),
    which is what makes the result array bit-identical for any [jobs]
    value. Fleets are not offered here: breaker state is inherently
    sequential, so fleet campaigns parallelize between cells instead
    (see the resilience experiment). *)
