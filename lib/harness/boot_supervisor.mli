(** Supervised boots: classify failures, retry transients, degrade
    gracefully — all on the virtual clock.

    A supervisor wraps one boot attempt the way a production launcher
    wraps Firecracker: every exception the boot path can raise on bad
    input is classified into the {!Imk_fault.Failure} taxonomy (an
    unclassifiable exception is re-raised — it is a programming error
    and must not be absorbed), transients are retried with bounded
    exponential backoff, and two persistent-fault degradations are
    built in:

    - a corrupt relocation table is re-derived from the kernel ELF
      (the Figure 8 extraction path) and the boot retried;
    - a corrupt snapshot falls back to a supervised cold boot.

    None of the recovery work is free: backoff, re-derivation and the
    fallback boot are charged to the same virtual clock as the boot
    itself, each in its own labelled span, so the faults experiment can
    report what recovery costs.

    Every finished supervised boot offers its full trace — recovery
    spans included — to {!Boot_runner.trace_sink}, so
    [bench/main.exe --trace] can dump a supervised campaign's timeline
    exactly like a plain one. *)

type ctx = {
  cache : Imk_storage.Page_cache.t;  (** the run's (private) page cache *)
  inject : (string -> unit) option;
      (** armed transient hook ({!Imk_fault.Inject.armed}), if any *)
  plans : Imk_monitor.Plan_cache.t option;
      (** shared boot-plan cache; safe across runs and corruptions —
          plans are content-addressed, so a corrupted image can never
          resolve to a pristine image's plan (or vice versa) *)
}

val plain_ctx : ?plans:Imk_monitor.Plan_cache.t -> Imk_storage.Page_cache.t -> ctx
(** A context with no fault hook. *)

type report = {
  outcome : (Imk_guest.Runtime.verify_stats, Imk_fault.Failure.t) result;
      (** verify-green stats, or the typed failure the boot ended on *)
  attempts : int;  (** boot attempts made (snapshot restore counts) *)
  events : Imk_fault.Failure.event list;
      (** recovery actions, in occurrence order *)
  total_ns : int;  (** virtual time spent, recovery included *)
}

val default_max_retries : int

val backoff_base_ns : int
(** First retry's backoff; each further retry doubles it. *)

val supervise :
  ?jitter:bool ->
  ?arena:Imk_memory.Arena.t ->
  ?max_retries:int ->
  seed:int64 ->
  ctx:ctx ->
  Imk_monitor.Vm_config.t ->
  report
(** [supervise ~seed ~ctx vm] runs one supervised boot on a fresh
    virtual clock ([seed] fixes the config seed and the jitter stream,
    exactly like [Boot_runner.boot_once]). With [?arena], every attempt
    runs inside an {!Imk_memory.Arena.with_buffer} bracket, so failed
    attempts hand their guest memory straight back to the pool. *)

val supervise_snapshot :
  ?jitter:bool ->
  ?arena:Imk_memory.Arena.t ->
  ?max_retries:int ->
  seed:int64 ->
  ctx:ctx ->
  snapshot_path:string ->
  working_set_pages:int ->
  Imk_monitor.Vm_config.t ->
  report
(** [supervise_snapshot ~seed ~ctx ~snapshot_path ~working_set_pages vm]
    restores from a serialized snapshot on the run's disk. A typed
    restore failure (CRC mismatch, truncation) is recorded as a
    [Fell_back_to_cold_boot] event and the supervisor boots [vm] cold on
    the same clock — the report's [total_ns] is the price of the failed
    restore plus the fallback. *)

val supervise_many :
  ?jitter:bool ->
  ?jobs:int ->
  ?max_retries:int ->
  runs:int ->
  ctx_for:(run:int -> ctx) ->
  make_vm:(seed:int64 -> Imk_monitor.Vm_config.t) ->
  unit ->
  report array
(** [supervise_many ~runs ~ctx_for ~make_vm ()] fans [runs] supervised
    boots over [?jobs] domains (default [Boot_runner.default_jobs]).
    Run [i] (1-based) uses seed [Boot_runner.run_seed i] and a context
    built by [ctx_for ~run:i] {e inside the worker} — [ctx_for] must
    build run-private state (its own disk, cache and armed faults),
    which is what makes the result array bit-identical for any [jobs]
    value. *)
