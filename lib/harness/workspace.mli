(** Experiment workspace: kernels built once, images on a simulated disk.

    Builds the Table 1 kernel matrix lazily (an `ubuntu-fgkaslr` image
    with its six compressed bzImage variants is only assembled when an
    experiment asks for it) and registers every artifact with the
    simulated host disk, where boots read them through the page cache. *)

type t

val create : ?scale:int -> ?functions_override:int -> ?plan_cache:bool -> unit -> t
(** [create ()] uses the full preset sizes; [functions_override] shrinks
    every kernel (tests use a few hundred functions for speed).
    [plan_cache] (default true) attaches a shared
    {!Imk_monitor.Plan_cache}; [false] is the A/B baseline
    (bench [--no-plan-cache]) — telemetry is bit-identical either way. *)

val disk : t -> Imk_storage.Disk.t

val scale : t -> int
(** The kernel-matrix scale this workspace builds at — campaigns that
    build their own per-point images (diffcheck) must match it. *)

val cache : t -> Imk_storage.Page_cache.t

val arena : t -> Imk_memory.Arena.t
(** The workspace's guest-memory recycling pool, passed to
    [Boot_runner.boot_many ~arena] by every experiment. *)

val plans : t -> Imk_monitor.Plan_cache.t option
(** The workspace's shared boot-plan cache (None under [--no-plan-cache]),
    passed to [Boot_runner.boot_many ?plans] by every experiment. *)

val clone_fresh : t -> t
(** A new workspace with the same [scale]/[functions_override] but
    nothing built, sharing only the (thread-safe) arena and plan cache.
    Used to give each worker domain its own disk/cache/build tables when
    experiments parallelize across cells rather than across repetitions;
    the content-addressed plan cache makes the clones' byte-identical
    images share one set of immutable plans. *)

val config : t -> Imk_kernel.Config.preset -> Imk_kernel.Config.variant -> Imk_kernel.Config.t

val built :
  t -> Imk_kernel.Config.preset -> Imk_kernel.Config.variant -> Imk_kernel.Image.built
(** Build (or fetch the cached) kernel image; also registers
    [<name>.vmlinux] and [<name>.relocs] on the disk. *)

val vmlinux_path : t -> Imk_kernel.Config.preset -> Imk_kernel.Config.variant -> string
val relocs_path : t -> Imk_kernel.Config.preset -> Imk_kernel.Config.variant -> string

val bzimage_path :
  t ->
  Imk_kernel.Config.preset ->
  Imk_kernel.Config.variant ->
  codec:string ->
  bz:Imk_kernel.Bzimage.variant ->
  string
(** Link (or fetch) the bzImage variant and return its disk name. *)

val warm_all : t -> unit
(** Mark every registered image cached (the five warm-up boots). *)
