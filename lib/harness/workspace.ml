open Imk_kernel

type t = {
  disk : Imk_storage.Disk.t;
  cache : Imk_storage.Page_cache.t;
  arena : Imk_memory.Arena.t;
  plans : Imk_monitor.Plan_cache.t option;
  scale : int;
  functions_override : int option;
  builds : (string, Image.built) Hashtbl.t;
  bzimages : (string, unit) Hashtbl.t;
}

let create ?(scale = 16) ?functions_override ?(plan_cache = true) () =
  let disk = Imk_storage.Disk.create () in
  {
    disk;
    cache = Imk_storage.Page_cache.create disk;
    arena = Imk_memory.Arena.create ();
    plans = (if plan_cache then Some (Imk_monitor.Plan_cache.create ()) else None);
    scale;
    functions_override;
    builds = Hashtbl.create 16;
    bzimages = Hashtbl.create 16;
  }

let disk t = t.disk
let scale t = t.scale
let cache t = t.cache
let arena t = t.arena
let plans t = t.plans

let clone_fresh t =
  (* same kernel matrix parameters, nothing built yet; the arena and the
     plan cache are shared — both synchronize internally, pooled buffers
     are interchangeable across workspaces of equal mem size, and plans
     are content-addressed so a clone's independently built (byte-
     identical) images resolve to the same immutable plans *)
  { (create ~scale:t.scale ?functions_override:t.functions_override ()) with
    arena = t.arena;
    plans = t.plans }

let config t preset variant =
  let base = Config.make ~scale:t.scale preset variant in
  match t.functions_override with
  | None -> base
  | Some functions -> { base with Config.functions }

let key preset variant =
  Config.preset_name preset ^ "-" ^ Config.variant_name variant

let built t preset variant =
  let k = key preset variant in
  match Hashtbl.find_opt t.builds k with
  | Some b -> b
  | None ->
      let b = Image.build (config t preset variant) in
      Hashtbl.add t.builds k b;
      Imk_storage.Disk.add t.disk ~name:(k ^ ".vmlinux") b.Image.vmlinux;
      Imk_storage.Disk.add t.disk ~name:(k ^ ".relocs") b.Image.relocs_bytes;
      b

(* path accessors build on demand so a path is always backed by a disk
   image *)
let vmlinux_path t preset variant =
  ignore (built t preset variant);
  key preset variant ^ ".vmlinux"

let relocs_path t preset variant =
  ignore (built t preset variant);
  key preset variant ^ ".relocs"

let bzimage_path t preset variant ~codec ~bz =
  let name =
    Printf.sprintf "%s.bzimage-%s-%s" (key preset variant) codec
      (Bzimage.variant_name bz)
  in
  if not (Hashtbl.mem t.bzimages name) then begin
    let b = built t preset variant in
    let image = Bzimage.link b ~codec ~variant:bz in
    Imk_storage.Disk.add t.disk ~name (Bzimage.encode image);
    Hashtbl.add t.bzimages name ()
  end;
  name

let warm_all t =
  List.iter
    (fun name -> Imk_storage.Page_cache.warm t.cache name)
    (Imk_storage.Disk.names t.disk)
