(** Wall-clock bench telemetry.

    The virtual clock measures the {e simulated} boots; this module
    records how long the simulation itself took, so harness perf work
    (arena reuse, [--jobs] fan-out) has before/after numbers.
    [bench/main.exe] writes one [BENCH_<exp>.json] per experiment:

    {v
    { "schema": 1,
      "experiment": "fig9",
      "runs": 5, "jobs": 1, "scale": 16, "functions": null,
      "wall_clock_s": 7.412,
      "boot_ms": [ { "label": "aws/nokaslr/in-monitor/direct",
                     "mean_ms": 25.1 }, ... ] }
    v}

    [functions] is [null] unless [--functions] shrank the kernels.
    Emitted by hand — no JSON dependency. *)

val schema_version : int

val boot_means : Experiments.output -> (string * float) list
(** Extract [(label, mean_ms)] per table row from an experiment's
    headline millisecond column ("total ms", else "boot ms"/"create ms",
    else the first column ending in "ms"). Labels join the row's
    non-numeric leading cells with ["/"]. Experiments without a
    millisecond column yield []. *)

val to_json :
  experiment:string ->
  runs:int ->
  jobs:int ->
  scale:int ->
  functions:int option ->
  wall_clock_s:float ->
  (string * float) list ->
  string

val write_file : string -> string -> unit
(** [write_file path contents] (re)writes [path] atomically enough for a
    bench artifact: open, write, close. *)
