(** Wall-clock bench telemetry, schema 2.

    The virtual clock measures the {e simulated} boots; this module
    records what they measured — full distributions, not bare means —
    so harness perf work has before/after numbers and a regression
    gate. [bench/main.exe] writes one [BENCH_<exp>.json] per
    experiment:

    {v
    { "schema": 2,
      "experiment": "fig9",
      "runs": 20, "jobs": 1, "scale": 16, "functions": null,
      "wall_clock_s": 19.1,
      "boot_ms": [
        { "label": "aws/kaslr/lz4",
          "mean_ms": 85.4,
          "total":  { "n": 20, "mean_ms": 85.4, "min_ms": ..., "max_ms": ...,
                      "stddev_ms": ..., "p50_ms": ..., "p90_ms": ..., "p99_ms": ... },
          "phases": [
            { "phase": "in-monitor", "n": 20, "mean_ms": ..., ... },
            { "phase": "bootstrap", ... },
            { "phase": "decompression", ... },
            { "phase": "linux-boot", ... } ] } ] }
    v}

    Rows come straight from {!Experiments.output.telemetry} as raw
    floats — never re-parsed out of the rendered table (lint.sh bans
    [float_of_string] in [lib/harness/] to keep that bug class dead).
    All summaries are milliseconds; the per-row phase means sum to the
    headline [total] mean (up to runs in which a phase did not fire).
    Phases a boot path never enters are absent, not zero-filled.
    [functions] is [null] unless [--functions] shrank the kernels.
    Written by hand and read back with {!Imk_util.Minjson} — no JSON
    dependency. *)

val schema_version : int
(** 2. Schema 1 carried only a [mean_ms] per label; {!of_json} refuses
    it loudly rather than silently reading means as distributions. *)

type row = {
  label : string;
  total : Imk_util.Stats.summary;  (** milliseconds *)
  phases : (string * Imk_util.Stats.summary) list;  (** milliseconds *)
}

type file = {
  schema : int;
  experiment : string;
  runs : int;
  jobs : int;
  scale : int;
  functions : int option;
  wall_clock_s : float;
  rows : row list;
}

val rows : Experiments.output -> row list
(** [rows o] converts the experiment's raw nanosecond telemetry to
    millisecond rows. Raises [Invalid_argument] on duplicate labels —
    two rows with the same label would silently shadow each other. *)

val boot_means : Experiments.output -> (string * float) list
(** [(label, mean total ms)] per telemetry row — the schema-1 view,
    derived from the structured rows (same duplicate-label check). *)

val value_column : string list -> int option
(** Index of a rendered table's headline millisecond column: exactly
    ["total ms"], else ["boot ms"]/["create ms"], else the first header
    that is ["ms"] or ends in the token [" ms"]. A header merely
    {e ending} in ["ms"] (["atoms"], ["programs"]) does not match — an
    old fallback did, and read arbitrary columns as milliseconds. Used
    as a sanity check only (bench warns when a table has a millisecond
    column but the experiment provided no telemetry rows); values are
    never parsed out of cells. *)

val to_json :
  experiment:string ->
  runs:int ->
  jobs:int ->
  scale:int ->
  functions:int option ->
  wall_clock_s:float ->
  row list ->
  string
(** Render a schema-2 file. Raises [Invalid_argument] on duplicate
    labels. *)

val of_json : string -> file
(** Parse a [BENCH_<exp>.json] written by {!to_json}. Raises
    [Invalid_argument] on any schema other than {!schema_version} and
    {!Imk_util.Minjson.Malformed} on malformed input — a baseline that
    cannot be read faithfully must fail the gate, not pass it. *)

type delta = {
  d_label : string;
  d_phase : string option;  (** [None] = the headline total *)
  baseline_p50 : float;
  current_p50 : float;
  change_pct : float;  (** p50 change relative to baseline, percent *)
  degenerate : bool;
      (** either side has [n < 2]: the quantiles alias the single
          sample, so the delta is reported but can never be a
          [regression] *)
  regression : bool;
}

val default_threshold_pct : float
(** 5.0 — the default p50 regression threshold. *)

val diff :
  ?threshold_pct:float -> baseline:file -> current:file -> unit -> delta list
(** Per-label/per-phase p50 deltas for every label present in both
    files. Only headline-total deltas beyond [threshold_pct] are marked
    [regression]; per-phase rows are diagnostic, and [degenerate]
    deltas (either side a single sample) never trip the gate — one
    draw is not a distribution. Labels present in only one file
    produce no delta — report them via {!missing_labels}. *)

val regressions : delta list -> delta list
(** The deltas that trip the gate. *)

val missing_labels :
  baseline:file -> current:file -> string list * string list
(** [(only_in_baseline, only_in_current)] — label drift the p50 gate
    cannot see (a vanished row is not a regression, but it is news). *)

val write_file : string -> string -> unit
(** [write_file path contents] (re)writes [path] atomically enough for a
    bench artifact: open, write, close. *)

val read_file : string -> string
(** Read a whole file (for [--baseline]). *)
