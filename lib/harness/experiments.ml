open Imk_kernel
open Imk_monitor

type boot_row = {
  label : string;
  total : Imk_util.Stats.summary;
  phases : (string * Imk_util.Stats.summary) list;
}

type output = {
  id : string;
  title : string;
  table : Imk_util.Table.t;
  notes : string list;
  telemetry : boot_row list;
}

let presets = Config.all_presets
let pname = Config.preset_name
let msf = Boot_runner.ms
let msv f = Printf.sprintf "%.1f" f
let msn ns = msv (Imk_util.Units.ns_float_to_ms ns)

(* the "min"/"max" cells of a boot_many table row, shared by every
   experiment that renders them: the summary's raw float nanoseconds go
   straight through [ns_float_to_ms] — an int_of_float round-trip here
   (an old bug, copy-pasted three times) truncated toward zero and
   re-lost the sub-ns precision the schema-2 telemetry work preserved *)
let min_max_cells (s : Boot_runner.phase_stats) =
  [
    msn s.Boot_runner.total.Imk_util.Stats.min;
    msn s.Boot_runner.total.Imk_util.Stats.max;
  ]
let pct a b = Imk_util.Stats.pct_change b a (* change of a relative to b *)

(* the telemetry row for one boot_many campaign: the raw nanosecond
   summaries, phases that never ran (n = 0) dropped rather than padded
   with fabricated zeros *)
let boot_row label (s : Boot_runner.phase_stats) =
  {
    label;
    total = s.Boot_runner.total;
    phases =
      List.filter
        (fun (_, sum) -> sum.Imk_util.Stats.n > 0)
        [
          ("in-monitor", s.Boot_runner.in_monitor);
          ("bootstrap", s.Boot_runner.bootstrap);
          ("decompression", s.Boot_runner.decompression);
          ("linux-boot", s.Boot_runner.linux_boot);
        ];
  }

(* a single measured quantity (already in ns) as a one-sample row *)
let scalar_row label ns = { label; total = Imk_util.Stats.summarize [ ns ]; phases = [] }

let direct_vm ws preset variant ~rando ?(kallsyms = Vm_config.Kallsyms_eager)
    ?(profile = Profiles.firecracker) ?(mem = 256 * 1024 * 1024) () ~seed =
  let need_relocs = rando <> Vm_config.Rando_off in
  Vm_config.make ~rando ~profile ~mem_bytes:mem ~kallsyms
    ~relocs_path:
      (if need_relocs then Some (Workspace.relocs_path ws preset variant)
       else None)
    ~kernel_path:(Workspace.vmlinux_path ws preset variant)
    ~kernel_config:(Workspace.config ws preset variant)
    ~seed ()

let bz_vm ws preset variant ~codec ~bz ~rando ?(loader = Vm_config.Loader_stripped)
    ?(profile = Profiles.firecracker) ?(mem = 256 * 1024 * 1024) () ~seed =
  let path = Workspace.bzimage_path ws preset variant ~codec ~bz in
  Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr ~rando ~profile
    ~mem_bytes:mem ~loader ~kernel_path:path
    ~kernel_config:(Workspace.config ws preset variant)
    ~seed ()

let variant_of_rando = function
  | Vm_config.Rando_off -> Config.Nokaslr
  | Vm_config.Rando_kaslr -> Config.Kaslr
  | Vm_config.Rando_fgkaslr -> Config.Fgkaslr

let rando_name = function
  | Vm_config.Rando_off -> "nokaslr"
  | Vm_config.Rando_kaslr -> "kaslr"
  | Vm_config.Rando_fgkaslr -> "fgkaslr"

(* ---------- Table 1 ---------- *)

let table1 ws =
  let table =
    Imk_util.Table.create
      ~headers:
        [ "kernel"; "vmlinux"; "bzImage(None)"; "bzImage(LZ4)"; "relocs"; "sections" ]
  in
  List.iter
    (fun preset ->
      List.iter
        (fun variant ->
          let b = Workspace.built ws preset variant in
          let bz codec =
            let path =
              Workspace.bzimage_path ws preset variant ~codec
                ~bz:Bzimage.Standard
            in
            Config.modeled_of_actual b.Image.config
              (Imk_storage.Disk.size (Workspace.disk ws) path)
          in
          let bytes = Imk_util.Units.bytes_to_string in
          Imk_util.Table.add_row table
            [
              b.Image.config.Config.name;
              bytes (Image.modeled_vmlinux_bytes b);
              bytes (bz "none");
              bytes (bz "lz4");
              (if b.Image.config.Config.relocatable then
                 bytes (Image.modeled_reloc_bytes b)
               else "N/A");
              string_of_int (Image.modeled_sections b);
            ])
        Config.all_variants)
    presets;
  {
    id = "table1";
    title = "Table 1: kernel image sizes (modelled at paper scale)";
    table;
    notes =
      [
        "fgkaslr variants are larger than kaslr variants (function sections)";
        "relocs grow: lupine < aws < ubuntu, and kaslr < fgkaslr";
      ];
    telemetry = [];
  }

(* ---------- Figure 3: compression bakeoff ---------- *)

let fig3 ?(runs = 20) ws =
  let codecs = [ "gzip"; "bzip2"; "lzma"; "xz"; "lzo"; "lz4" ] in
  let table =
    Imk_util.Table.create
      ~headers:[ "codec"; "total ms"; "decompress ms"; "in-monitor ms"; "min"; "max" ]
  in
  let totals =
    List.map
      (fun codec ->
        let make_vm =
          bz_vm ws Config.Aws Config.Nokaslr ~codec ~bz:Bzimage.Standard
            ~rando:Vm_config.Rando_off ()
        in
        Workspace.warm_all ws;
        let s =
          Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
        in
        Imk_util.Table.add_row table
          ([
             codec;
             msv (msf s.Boot_runner.total);
             msv (msf s.Boot_runner.decompression);
             msv (msf s.Boot_runner.in_monitor);
           ]
          @ min_max_cells s);
        (codec, s))
      codecs
  in
  let best =
    List.fold_left
      (fun (bc, bv) (c, s) ->
        let v = msf s.Boot_runner.total in
        if v < bv then (c, v) else (bc, bv))
      ("", infinity) totals
  in
  {
    id = "fig3";
    title = "Figure 3: compression bakeoff (aws kernel bzImage boots, cached)";
    table;
    notes =
      [
        Printf.sprintf "fastest codec: %s (paper: LZ4)" (fst best);
      ];
    telemetry = List.map (fun (codec, s) -> boot_row codec s) totals;
  }

(* ---------- Figure 4: cache effects ---------- *)

let fig4 ?(runs = 20) ws =
  let table =
    Imk_util.Table.create
      ~headers:[ "kernel"; "method"; "cache"; "in-monitor"; "bootstrap"; "decomp"; "linux"; "total ms" ]
  in
  let notes = ref [] in
  let rows = ref [] in
  List.iter
    (fun preset ->
      let run ~cold ~method_name make_vm =
        Workspace.warm_all ws;
        let s =
          Boot_runner.boot_many ~arena:(Workspace.arena ws) ~cold ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
        in
        rows :=
          boot_row
            (String.concat "/"
               [ pname preset; method_name; (if cold then "cold" else "warm") ])
            s
          :: !rows;
        Imk_util.Table.add_row table
          [
            pname preset;
            method_name;
            (if cold then "cold" else "warm");
            msv (msf s.Boot_runner.in_monitor);
            msv (msf s.Boot_runner.bootstrap);
            msv (msf s.Boot_runner.decompression);
            msv (msf s.Boot_runner.linux_boot);
            msv (msf s.Boot_runner.total);
          ];
        msf s.Boot_runner.total
      in
      let bz_mk =
        bz_vm ws preset Config.Nokaslr ~codec:"lz4" ~bz:Bzimage.Standard
          ~rando:Vm_config.Rando_off ()
      in
      let direct_mk =
        direct_vm ws preset Config.Nokaslr ~rando:Vm_config.Rando_off ()
      in
      let bz_cold = run ~cold:true ~method_name:"bzImage-lz4" bz_mk in
      let dir_cold = run ~cold:true ~method_name:"direct" direct_mk in
      let bz_warm = run ~cold:false ~method_name:"bzImage-lz4" bz_mk in
      let dir_warm = run ~cold:false ~method_name:"direct" direct_mk in
      notes :=
        Printf.sprintf
          "%s: cold — direct %+.0f%% vs bzImage (paper: direct slower); warm — direct %+.0f%% (paper: direct faster)"
          (pname preset) (pct dir_cold bz_cold) (pct dir_warm bz_warm)
        :: !notes)
    presets;
  {
    id = "fig4";
    title = "Figure 4: cache effects on bzImage vs direct boot";
    table;
    notes = List.rev !notes;
    telemetry = List.rev !rows;
  }

(* ---------- Figure 5: bootstrap breakdown ---------- *)

let fig5 ?(runs = 10) ws =
  ignore runs;
  let table =
    Imk_util.Table.create
      ~headers:[ "kernel"; "setup ms"; "decompression ms"; "parse+load ms"; "decomp %" ]
  in
  let notes = ref [] in
  let rows = ref [] in
  List.iter
    (fun preset ->
      Workspace.warm_all ws;
      let vm =
        bz_vm ws preset Config.Nokaslr ~codec:"lz4" ~bz:Bzimage.Standard
          ~rando:Vm_config.Rando_off () ~seed:11L
      in
      let trace, _ = Boot_runner.boot_once ~jitter:false ~seed:11L ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm in
      let spans = Boot_runner.spans_by_label trace in
      let find label =
        Option.value ~default:0 (List.assoc_opt label spans)
      in
      let setup = find "loader-setup" in
      let decomp = find "decompress-lz4" in
      let main = find "loader-main" in
      let total_loader = setup + decomp + main in
      let span_summary ns = Imk_util.Stats.summarize [ float_of_int ns ] in
      rows :=
        {
          label = pname preset;
          total = span_summary total_loader;
          phases =
            [
              ("loader-setup", span_summary setup);
              ("decompress-lz4", span_summary decomp);
              ("loader-main", span_summary main);
            ];
        }
        :: !rows;
      let pct_decomp =
        100. *. float_of_int decomp /. float_of_int (max 1 total_loader)
      in
      Imk_util.Table.add_row table
        [
          pname preset;
          msv (Imk_util.Units.ns_to_ms setup);
          msv (Imk_util.Units.ns_to_ms decomp);
          msv (Imk_util.Units.ns_to_ms main);
          Printf.sprintf "%.0f%%" pct_decomp;
        ];
      notes := Printf.sprintf "%s: decompression = %.0f%% of loader time (paper: up to 73%%)" (pname preset) pct_decomp :: !notes)
    presets;
  {
    id = "fig5";
    title = "Figure 5: bootstrap loader step breakdown (LZ4 bzImage)";
    table;
    notes = List.rev !notes;
    telemetry = List.rev !rows;
  }

(* ---------- Figure 6: bootstrap methods ---------- *)

let fig6 ?(runs = 20) ws =
  let table =
    Imk_util.Table.create
      ~headers:[ "method"; "in-monitor"; "bootstrap"; "decomp"; "total ms" ]
  in
  let rows = ref [] in
  let measure method_name make_vm =
    Workspace.warm_all ws;
    let s = Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm () in
    rows := boot_row method_name s :: !rows;
    Imk_util.Table.add_row table
      [
        method_name;
        msv (msf s.Boot_runner.in_monitor);
        msv (msf s.Boot_runner.bootstrap);
        msv (msf s.Boot_runner.decompression);
        msv (msf s.Boot_runner.total);
      ];
    (method_name, msf s.Boot_runner.total)
  in
  let p = Config.Aws and v = Config.Nokaslr in
  let r = Vm_config.Rando_off in
  let results =
    [
      measure "compression-none"
        (bz_vm ws p v ~codec:"none" ~bz:Bzimage.Standard ~rando:r ());
      measure "lz4" (bz_vm ws p v ~codec:"lz4" ~bz:Bzimage.Standard ~rando:r ());
      measure "none-optimized"
        (bz_vm ws p v ~codec:"none" ~bz:Bzimage.None_optimized ~rando:r ());
      measure "uncompressed(direct)" (direct_vm ws p v ~rando:r ());
    ]
  in
  let ordered =
    List.map fst (List.sort (fun (_, a) (_, b) -> compare b a) results)
  in
  {
    id = "fig6";
    title = "Figure 6: bootstrap method comparison (aws kernel, cached)";
    table;
    notes =
      [
        "slowest→fastest: " ^ String.concat " > " ordered
        ^ "  (paper: none > lz4 > none-optimized > uncompressed)";
      ];
    telemetry = List.rev !rows;
  }

(* ---------- Figure 9: main evaluation ---------- *)

let fig9_cell ?jobs ws preset rando ~runs ~method_ =
  let variant = variant_of_rando rando in
  Workspace.warm_all ws;
  let make_vm =
    match method_ with
    | `Direct ->
        direct_vm ws preset variant ~rando
          ~kallsyms:
            (if rando = Vm_config.Rando_fgkaslr then Vm_config.Kallsyms_deferred
             else Vm_config.Kallsyms_eager)
          ()
    | `None_opt ->
        bz_vm ws preset variant ~codec:"none" ~bz:Bzimage.None_optimized ~rando ()
    | `Lz4 -> bz_vm ws preset variant ~codec:"lz4" ~bz:Bzimage.Standard ~rando ()
  in
  Boot_runner.boot_many ?jobs ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()

let fig9 ?(runs = 20) ws =
  let table =
    Imk_util.Table.create
      ~headers:
        [ "kernel"; "rando"; "method"; "in-monitor"; "bootstrap"; "decomp"; "linux"; "total ms"; "min"; "max" ]
  in
  let notes = ref [] in
  let cell = Hashtbl.create 32 in
  (* the 27 (preset x rando x method) cells are independent experiments;
     with an ambient --jobs > 1 they fan out over worker domains, each
     with its own clone_fresh workspace (private disk/cache/builds), and
     the inner boot_many stays sequential. Kernel builds and boot costs
     are pure functions of the cell and its fixed seeds, so the table is
     identical to the sequential one. *)
  let cells =
    List.concat_map
      (fun preset ->
        List.concat_map
          (fun rando ->
            List.map
              (fun (mname, m) -> (preset, rando, mname, m))
              [
                ("in-monitor/direct", `Direct);
                ("none-optimized", `None_opt);
                ("lz4", `Lz4);
              ])
          [ Vm_config.Rando_off; Vm_config.Rando_kaslr; Vm_config.Rando_fgkaslr ])
      presets
  in
  let cells = Array.of_list cells in
  let jobs = max 1 !Boot_runner.default_jobs in
  let stats =
    if jobs = 1 then
      Array.map (fun (p, r, _, m) -> fig9_cell ws p r ~runs ~method_:m) cells
    else begin
      let workspaces = Array.make jobs None in
      workspaces.(0) <- Some ws;
      Imk_util.Par.map_tasks ~jobs ~tasks:(Array.length cells)
        (fun ~worker i ->
          let wws =
            match workspaces.(worker) with
            | Some w -> w
            | None ->
                let w = Workspace.clone_fresh ws in
                workspaces.(worker) <- Some w;
                w
          in
          let p, r, _, m = cells.(i) in
          fig9_cell ~jobs:1 wws p r ~runs ~method_:m)
    end
  in
  let rows = ref [] in
  let cell_p50 = Hashtbl.create 32 in
  Array.iteri
    (fun i (preset, rando, mname, _) ->
      let s = stats.(i) in
      Hashtbl.replace cell (preset, rando_name rando, mname)
        (msf s.Boot_runner.total);
      Hashtbl.replace cell_p50 (preset, rando_name rando, mname)
        s.Boot_runner.total.Imk_util.Stats.p50;
      rows :=
        boot_row
          (String.concat "/" [ pname preset; rando_name rando; mname ])
          s
        :: !rows;
      Imk_util.Table.add_row table
        ([
           pname preset;
           rando_name rando;
           mname;
           msv (msf s.Boot_runner.in_monitor);
           msv (msf s.Boot_runner.bootstrap);
           msv (msf s.Boot_runner.decompression);
           msv (msf s.Boot_runner.linux_boot);
           msv (msf s.Boot_runner.total);
         ]
        @ min_max_cells s))
    cells;
  (* contention variant (DESIGN.md §10): [contend_n] kaslr/lz4 guests
     share one event timeline per run under the ambient --contend
     capacities, so each boot's spans absorb its queue waits behind the
     others' disk reads and decompressions. One row, on the lupine
     preset — the microVM-optimized kernel is the one fleets pack
     densely enough for the "Study of Firecracker" contention regime to
     apply. Runs after (and reads nothing from) the solo cells: solo
     telemetry is byte-identical to a build without this block. *)
  let contend_n = 12 in
  let disk_capacity, decompress_slots = !Boot_runner.contend_capacities in
  let contend_method = Printf.sprintf "lz4-x%d-contended" contend_n in
  let contended =
    List.map
      (fun preset ->
        Workspace.warm_all ws;
        let make_vm =
          bz_vm ws preset (variant_of_rando Vm_config.Rando_kaslr) ~codec:"lz4"
            ~bz:Bzimage.Standard ~rando:Vm_config.Rando_kaslr ()
        in
        let s =
          Boot_runner.boot_contended ?plans:(Workspace.plans ws) ~n:contend_n
            ~runs ~cache:(Workspace.cache ws) ~make_vm ()
        in
        let b = s.Boot_runner.per_boot in
        rows :=
          boot_row
            (String.concat "/" [ pname preset; "kaslr"; contend_method ])
            b
          :: !rows;
        Imk_util.Table.add_row table
          ([
             pname preset;
             "kaslr";
             contend_method;
             msv (msf b.Boot_runner.in_monitor);
             msv (msf b.Boot_runner.bootstrap);
             msv (msf b.Boot_runner.decompression);
             msv (msf b.Boot_runner.linux_boot);
             msv (msf b.Boot_runner.total);
           ]
          @ min_max_cells b);
        (preset, s))
      [ Config.Lupine ]
  in
  let get p r m = Hashtbl.find cell (p, r, m) in
  List.iter
    (fun preset ->
      let p = preset in
      let baseline = get p "nokaslr" "in-monitor/direct" in
      let imk = get p "kaslr" "in-monitor/direct" in
      let nopt = get p "kaslr" "none-optimized" in
      let lz4 = get p "kaslr" "lz4" in
      let imfg = get p "fgkaslr" "in-monitor/direct" in
      let noptfg = get p "fgkaslr" "none-optimized" in
      notes :=
        Printf.sprintf
          "%s: in-monitor KASLR +%.1f ms (+%.1f%%) over baseline (paper avg: +4%%, 2 ms); \
           vs none-opt self-rando %.0f%% faster (paper: up to 22%%); vs lz4 %.0f%% faster; \
           FGKASLR %.2fx baseline (paper: 1.8–2.3x), vs none-opt self %.0f%% faster"
          (pname p) (imk -. baseline) (pct imk baseline)
          (pct nopt imk) (pct lz4 imk)
          (imfg /. baseline) (pct noptfg imfg)
        :: !notes)
    presets;
  List.iter
    (fun (preset, (s : Boot_runner.contended_stats)) ->
      let ms = Imk_util.Units.ns_float_to_ms in
      let solo_p50 = Hashtbl.find cell_p50 (preset, "kaslr", "lz4") in
      let cont_p50 = s.Boot_runner.per_boot.Boot_runner.total.Imk_util.Stats.p50 in
      notes :=
        Printf.sprintf
          "%s contention: %d kaslr/lz4 boots on one timeline (disk=%d, \
           decompress=%d) — per-boot p50 %.1f ms, %.2fx solo lz4 p50 \
           (%.1f ms); makespan p50 %.1f ms"
          (pname preset) contend_n disk_capacity decompress_slots
          (ms cont_p50) (cont_p50 /. solo_p50) (ms solo_p50)
          (ms s.Boot_runner.makespan.Imk_util.Stats.p50)
        :: !notes)
    contended;
  {
    id = "fig9";
    title = "Figure 9: boot time by randomization method (cached, 256 MiB)";
    table;
    notes = List.rev !notes;
    telemetry = List.rev !rows;
  }

(* ---------- Figure 10: memory sweep ---------- *)

let fig10 ?(runs = 5) ws =
  (* 2 GiB guests make these the most expensive boots to simulate; the
     monitor-time-is-flat / linux-boot-is-linear shape needs few samples *)
  let runs = min runs 8 in
  let table =
    Imk_util.Table.create
      ~headers:[ "kernel"; "rando"; "mem"; "in-monitor ms"; "linux ms"; "total ms" ]
  in
  let mems =
    [ (256, 256 * 1024 * 1024); (512, 512 * 1024 * 1024); (1024, 1024 * 1024 * 1024); (2048, 2048 * 1024 * 1024) ]
  in
  let notes = ref [] in
  let rows = ref [] in
  List.iter
    (fun preset ->
      List.iter
        (fun rando ->
          let im_values = ref [] in
          List.iter
            (fun (label, mem) ->
              Workspace.warm_all ws;
              let make_vm =
                direct_vm ws preset (variant_of_rando rando) ~rando ~mem ()
              in
              let s =
                Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
              in
              (* the memory size is a numeric key cell: it must stay in
                 the label or the four sweep points collapse onto one
                 row and silently shadow each other *)
              rows :=
                boot_row
                  (Printf.sprintf "%s/%s/%dM" (pname preset)
                     (rando_name rando) label)
                  s
                :: !rows;
              im_values := msf s.Boot_runner.in_monitor :: !im_values;
              Imk_util.Table.add_row table
                [
                  pname preset;
                  rando_name rando;
                  Printf.sprintf "%dM" label;
                  msv (msf s.Boot_runner.in_monitor);
                  msv (msf s.Boot_runner.linux_boot);
                  msv (msf s.Boot_runner.total);
                ])
            mems;
          let vals = !im_values in
          let spread =
            List.fold_left max neg_infinity vals -. List.fold_left min infinity vals
          in
          notes :=
            Printf.sprintf "%s/%s: in-monitor spread across memory sizes %.2f ms (paper: flat)"
              (pname preset) (rando_name rando) spread
            :: !notes)
        [ Vm_config.Rando_off; Vm_config.Rando_kaslr; Vm_config.Rando_fgkaslr ])
    presets;
  {
    id = "fig10";
    title = "Figure 10: guest memory impact on boot time";
    table;
    notes = List.rev !notes;
    telemetry = List.rev !rows;
  }

(* ---------- Figure 11: LEBench ---------- *)

let lebench_layout ws rando ~seed =
  let variant = variant_of_rando rando in
  Workspace.warm_all ws;
  let vm = direct_vm ws Config.Aws variant ~rando () ~seed in
  let trace, result =
    Boot_runner.boot_once ~jitter:false ~seed ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm
  in
  let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
  Imk_lebench.Runner.layout_of_guest ch result.Vmm.mem result.Vmm.params

let fig11 ?(runs = 1) ws =
  ignore runs;
  let base_layout = lebench_layout ws Vm_config.Rando_off ~seed:31L in
  let baseline = Imk_lebench.Runner.run ~fn_va:base_layout () in
  let table =
    Imk_util.Table.create ~headers:[ "test"; "kaslr (norm)"; "fgkaslr (norm)" ]
  in
  let norm rando seed =
    let layout = lebench_layout ws rando ~seed in
    Imk_lebench.Runner.normalize ~baseline
      (Imk_lebench.Runner.run ~fn_va:layout ~noise_seed:seed ())
  in
  let k = norm Vm_config.Rando_kaslr 32L in
  let f = norm Vm_config.Rando_fgkaslr 33L in
  List.iter2
    (fun (name, kv) (_, fv) ->
      Imk_util.Table.add_row table
        [ name; Printf.sprintf "%.3f" kv; Printf.sprintf "%.3f" fv ])
    k f;
  let avg l = Imk_util.Stats.mean (List.map snd l) in
  {
    id = "fig11";
    title = "Figure 11: LEBench normalized to aws-nokaslr";
    table;
    notes =
      [
        Printf.sprintf "KASLR average %.1f%% slower (paper: <1%%, within noise)"
          ((avg k -. 1.) *. 100.);
        Printf.sprintf "FGKASLR average %.1f%% slower (paper: ~7%%)"
          ((avg f -. 1.) *. 100.);
      ];
    telemetry = [];
  }

(* ---------- QEMU cross-check ---------- *)

let qemu_check ?(runs = 10) ws =
  let table =
    Imk_util.Table.create
      ~headers:[ "vmm"; "method"; "in-monitor"; "total ms" ]
  in
  let notes = ref [] in
  let rows = ref [] in
  List.iter
    (fun profile ->
      let totals =
        List.map
          (fun (mname, make_vm) ->
            Workspace.warm_all ws;
            let s =
              Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
            in
            rows :=
              boot_row (profile.Profiles.name ^ "/" ^ mname) s :: !rows;
            Imk_util.Table.add_row table
              [
                profile.Profiles.name;
                mname;
                msv (msf s.Boot_runner.in_monitor);
                msv (msf s.Boot_runner.total);
              ];
            (mname, msf s.Boot_runner.total))
          [
            ( "bzImage-lz4",
              bz_vm ws Config.Aws Config.Nokaslr ~codec:"lz4"
                ~bz:Bzimage.Standard ~rando:Vm_config.Rando_off ~profile () );
            ( "direct",
              direct_vm ws Config.Aws Config.Nokaslr ~rando:Vm_config.Rando_off
                ~profile () );
          ]
      in
      let bz = List.assoc "bzImage-lz4" totals in
      let direct = List.assoc "direct" totals in
      notes :=
        Printf.sprintf "%s: direct %.0f%% faster than bzImage when cached"
          profile.Profiles.name (pct bz direct)
        :: !notes)
    [ Profiles.firecracker; Profiles.qemu ];
  {
    id = "qemu";
    title = "QEMU cross-check (§2.2): cached direct boot wins on both VMMs";
    table;
    notes = List.rev !notes;
    telemetry = List.rev !rows;
  }

(* ---------- VM instantiation throughput (§5.2) ---------- *)

let throughput ?(runs = 30) ws =
  (* "there will be little effect on critical performance metrics such as
     the number of VMs instantiated per second" for KASLR; "with FGKASLR
     however, there is a larger tradeoff between an increase in security
     and a decrease in throughput" — a multi-core host simulation over
     sampled boot-time distributions *)
  let cores = 4 in
  let window_ms = 10_000. in
  let table =
    Imk_util.Table.create
      ~headers:[ "scheme"; "mean boot ms"; "VMs/s (4 cores)"; "vs nokaslr" ]
  in
  let samples rando =
    let variant = variant_of_rando rando in
    Workspace.warm_all ws;
    let make_vm =
      direct_vm ws Config.Aws variant ~rando
        ~kallsyms:
          (if rando = Vm_config.Rando_fgkaslr then Vm_config.Kallsyms_deferred
           else Vm_config.Kallsyms_eager)
        ()
    in
    let arena = Workspace.arena ws in
    let boots = ref [] in
    for i = 1 to runs do
      let seed = Int64.of_int (3000 + i) in
      let vm = make_vm ~seed in
      let total_ms =
        Imk_memory.Arena.with_buffer arena ~size:vm.Vm_config.mem_bytes
          (fun guest_mem ->
            let trace, _ =
              Boot_runner.boot_once ~mem:guest_mem ~seed
                ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm
            in
            Imk_util.Units.ns_to_ms (Imk_vclock.Trace.total trace))
      in
      boots := total_ms :: !boots
    done;
    Array.of_list !boots
  in
  (* greedy multi-core schedule: each core boots back to back, drawing
     cyclically from the sampled distribution. The rate divides by the
     actual elapsed span (latest counted completion), not the full
     window — the old full-window division biased boots/sec low whenever
     the last boot finished before the window closed. *)
  let rate samples =
    Imk_fleet.Sim.instantiation_rate ~cores ~window_ms samples
  in
  let schemes =
    [ Vm_config.Rando_off; Vm_config.Rando_kaslr; Vm_config.Rando_fgkaslr ]
  in
  let rates =
    List.map
      (fun rando ->
        let s = samples rando in
        let mean = Imk_util.Stats.mean (Array.to_list s) in
        (rando, s, mean, rate s))
      schemes
  in
  let base_rate =
    match rates with (_, _, _, r) :: _ -> r | [] -> assert false
  in
  List.iter
    (fun (rando, _, mean, r) ->
      Imk_util.Table.add_row table
        [
          rando_name rando;
          msv mean;
          Printf.sprintf "%.1f" r;
          Printf.sprintf "%+.1f%%" (100. *. ((r /. base_rate) -. 1.));
        ])
    rates;
  let kaslr_loss =
    match rates with
    | [ _; (_, _, _, rk); _ ] -> 100. *. (1. -. (rk /. base_rate))
    | _ -> 0.
  in
  let fg_loss =
    match rates with
    | [ _; _; (_, _, _, rf) ] -> 100. *. (1. -. (rf /. base_rate))
    | _ -> 0.
  in
  {
    id = "throughput";
    title = "VM instantiation throughput (§5.2, aws kernel, 4 host cores)";
    table;
    notes =
      [
        Printf.sprintf
          "in-monitor KASLR costs %.1f%% of instantiation rate (paper: \
           \"little effect\"); FGKASLR costs %.1f%% (paper: \"a larger \
           tradeoff ... a decrease in throughput\")"
          kaslr_loss fg_loss;
      ];
    telemetry =
      List.map
        (fun (rando, s, _, _) ->
          {
            label = rando_name rando;
            total =
              Imk_util.Stats.summarize
                (List.map (fun ms -> ms *. 1e6) (Array.to_list s));
            phases = [];
          })
        rates;
  }

(* ---------- Security ---------- *)

let security ws =
  let table =
    Imk_util.Table.create
      ~headers:
        [ "scheme"; "base slots"; "base bits"; "perm bits"; "leak exposes" ]
  in
  let b = Workspace.built ws Config.Aws Config.Kaslr in
  let memsz =
    Config.modeled_of_actual b.Image.config
      (Imk_randomize.Loadelf.image_memsz b.Image.elf)
  in
  let modeled_fns =
    Config.modeled_of_actual b.Image.config b.Image.config.Config.functions
  in
  let attack rando seed =
    Workspace.warm_all ws;
    let variant = variant_of_rando rando in
    let vm = direct_vm ws Config.Aws variant ~rando () ~seed in
    let _, result =
      Boot_runner.boot_once ~jitter:false ~seed ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm
    in
    let built = Workspace.built ws Config.Aws variant in
    let rng = Imk_entropy.Prng.create ~seed in
    let n = Array.length built.Image.fn_va in
    let fracs =
      List.init 10 (fun _ ->
          let leaked_fn = Imk_entropy.Prng.next_int rng n in
          (Imk_security.Attack.leak_and_locate ~mem:result.Vmm.mem
             ~params:result.Vmm.params ~link_fn_va:built.Image.fn_va ~leaked_fn
             ~scheme:(rando_name rando))
            .Imk_security.Attack.gadgets_exposed_fraction)
    in
    Imk_util.Stats.mean fracs
  in
  let row report frac =
    Imk_util.Table.add_row table
      [
        report.Imk_security.Entropy_analysis.scheme;
        string_of_int report.Imk_security.Entropy_analysis.base_slots;
        Printf.sprintf "%.1f" report.Imk_security.Entropy_analysis.base_bits;
        Printf.sprintf "%.0f" report.Imk_security.Entropy_analysis.permutation_bits;
        Printf.sprintf "%.1f%% of functions" (frac *. 100.);
      ]
  in
  row Imk_security.Entropy_analysis.nokaslr (attack Vm_config.Rando_off 51L);
  row
    (Imk_security.Entropy_analysis.kaslr ~image_memsz:memsz)
    (attack Vm_config.Rando_kaslr 52L);
  row
    (Imk_security.Entropy_analysis.fgkaslr ~image_memsz:memsz
       ~functions:modeled_fns)
    (attack Vm_config.Rando_fgkaslr 53L);
  (* §4.3 entropy equivalence needs equiprobable slots: chi-square over
     many draws *)
  let offsets =
    Imk_security.Uniformity.test_virtual_offsets ~image_memsz:memsz
      ~draws:50_000 ~seed:99L
  in
  let perm =
    Imk_security.Uniformity.test_permutation_positions ~sections:512
      ~draws:50_000 ~seed:98L
  in
  {
    id = "security";
    title = "Security: entropy and the value of a single leak (§3.1/§4.3)";
    table;
    notes =
      [
        "one leak exposes the whole kernel under nokaslr/kaslr, one function under fgkaslr";
        Printf.sprintf
          "offset uniformity: chi2 = %.0f vs 1%%-level threshold %.0f over %d \
           slots x %d draws -> %s"
          offsets.Imk_security.Uniformity.statistic
          offsets.Imk_security.Uniformity.threshold
          offsets.Imk_security.Uniformity.slots
          offsets.Imk_security.Uniformity.draws
          (if offsets.Imk_security.Uniformity.uniform then "uniform"
           else "BIASED");
        Printf.sprintf
          "shuffle-position uniformity: chi2 = %.0f vs threshold %.0f -> %s"
          perm.Imk_security.Uniformity.statistic
          perm.Imk_security.Uniformity.threshold
          (if perm.Imk_security.Uniformity.uniform then "uniform" else "BIASED");
      ];
    telemetry = [];
  }

(* ---------- Ablations ---------- *)

let ablation_kallsyms ?(runs = 20) ws =
  let table =
    Imk_util.Table.create
      ~headers:[ "policy"; "boot ms"; "first-lookup ms"; "boot overhead vs deferred" ]
  in
  let boot policy =
    Workspace.warm_all ws;
    let make_vm =
      direct_vm ws Config.Aws Config.Fgkaslr ~rando:Vm_config.Rando_fgkaslr
        ~kallsyms:policy ()
    in
    Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
  in
  let eager = boot Vm_config.Kallsyms_eager in
  let deferred = boot Vm_config.Kallsyms_deferred in
  (* time-to-first-lookup under the deferred policy *)
  let first_lookup_ms =
    Workspace.warm_all ws;
    let vm =
      direct_vm ws Config.Aws Config.Fgkaslr ~rando:Vm_config.Rando_fgkaslr
        ~kallsyms:Vm_config.Kallsyms_deferred () ~seed:61L
    in
    let trace, result =
      Boot_runner.boot_once ~jitter:false ~seed:61L ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm
    in
    let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
    let before = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) in
    let state = Imk_guest.Kallsyms.create () in
    let _ =
      Imk_guest.Kallsyms.read_for_user state ch result.Vmm.mem result.Vmm.params
        ~privileged:true ~index:0
    in
    Imk_util.Units.ns_to_ms
      (Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) - before)
  in
  let e = msf eager.Boot_runner.total and d = msf deferred.Boot_runner.total in
  Imk_util.Table.add_row table
    [ "eager"; msv e; "0.0"; Printf.sprintf "+%.1f ms (+%.0f%%)" (e -. d) (pct e d) ];
  Imk_util.Table.add_row table
    [ "deferred"; msv d; msv first_lookup_ms; "baseline" ];
  {
    id = "ablation-kallsyms";
    title = "Ablation: eager vs deferred kallsyms fixup (§4.3)";
    table;
    telemetry = [ boot_row "eager" eager; boot_row "deferred" deferred ];
    notes =
      [
        Printf.sprintf
          "eager fixup adds %.0f%% to fgkaslr boot (paper: kallsyms ≈ 22%% of boot); \
           deferred pays %.1f ms at first /proc/kallsyms access"
          (pct e d) first_lookup_ms;
      ];
  }

let ablation_orc ?(runs = 20) ws =
  (* a special ORC-enabled fgkaslr build *)
  let base = Workspace.config ws Config.Aws Config.Fgkaslr in
  let cfg = { base with Config.unwinder_orc = true; name = "aws-fgkaslr-orc" } in
  let built = Image.build cfg in
  let disk = Workspace.disk ws in
  Imk_storage.Disk.add disk ~name:"aws-fgkaslr-orc.vmlinux" built.Image.vmlinux;
  Imk_storage.Disk.add disk ~name:"aws-fgkaslr-orc.relocs" built.Image.relocs_bytes;
  let boot orc =
    Workspace.warm_all ws;
    Imk_storage.Page_cache.warm (Workspace.cache ws) "aws-fgkaslr-orc.vmlinux";
    Imk_storage.Page_cache.warm (Workspace.cache ws) "aws-fgkaslr-orc.relocs";
    let make_vm ~seed =
      Vm_config.make ~rando:Vm_config.Rando_fgkaslr
        ~relocs_path:(Some "aws-fgkaslr-orc.relocs") ~orc
        ~kernel_path:"aws-fgkaslr-orc.vmlinux" ~kernel_config:cfg ~seed ()
    in
    Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
  in
  let skip = boot Vm_config.Orc_skip in
  let update = boot Vm_config.Orc_update in
  let s = msf skip.Boot_runner.total and u = msf update.Boot_runner.total in
  let table = Imk_util.Table.create ~headers:[ "orc policy"; "boot ms" ] in
  Imk_util.Table.add_row table [ "skip (paper's choice)"; msv s ];
  Imk_util.Table.add_row table [ "update"; msv u ];
  {
    id = "ablation-orc";
    title = "Ablation: ORC unwind table update cost (§4.3)";
    table;
    notes =
      [ Printf.sprintf "updating ORC would add %.1f ms (+%.1f%%)" (u -. s) (pct u s) ];
    telemetry = [ boot_row "orc-skip" skip; boot_row "orc-update" update ];
  }

let ablation_page_sharing ws =
  let boot seed =
    Workspace.warm_all ws;
    let vm =
      direct_vm ws Config.Aws Config.Fgkaslr ~rando:Vm_config.Rando_fgkaslr ()
        ~seed
    in
    let _, r = Boot_runner.boot_once ~jitter:false ~seed ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) vm in
    r
  in
  (* KSM-style content-based sharing over the pages that hold each
     guest's kernel image (location-independent, zero pages excluded by
     construction since the span covers the loaded image) *)
  let zero_hash = Imk_util.Crc.crc32 (Bytes.make 4096 '\000') 0 4096 in
  let page_hash_list r =
    let mem = r.Vmm.mem in
    let page = 4096 in
    let lo = r.Vmm.params.Imk_guest.Boot_params.phys_load in
    let hi = min (Imk_memory.Guest_mem.size mem) (lo + (8 * 1024 * 1024)) in
    let hashes = ref [] in
    let off = ref lo in
    while !off + page <= hi do
      let h = Imk_memory.Guest_mem.crc32_range mem ~pa:!off ~len:page in
      (* all-zero pages merge trivially and say nothing about layouts *)
      if h <> zero_hash then hashes := h :: !hashes;
      off := !off + page
    done;
    !hashes
  in
  let identical_pages a b =
    let ha = page_hash_list a in
    let hb = Hashtbl.create 1024 in
    List.iter (fun h -> Hashtbl.replace hb h ()) (page_hash_list b);
    let shared = List.length (List.filter (Hashtbl.mem hb) ha) in
    float_of_int shared /. float_of_int (max 1 (List.length ha)) *. 100.
  in
  let a = boot 71L and b = boot 71L and c = boot 72L in
  let table =
    Imk_util.Table.create ~headers:[ "pairing"; "identical guest pages" ]
  in
  Imk_util.Table.add_row table
    [ "same seed (host-grouped VMs)"; Printf.sprintf "%.1f%%" (identical_pages a b) ];
  Imk_util.Table.add_row table
    [ "different seeds"; Printf.sprintf "%.1f%%" (identical_pages a c) ];
  {
    id = "ablation-page-sharing";
    title = "Ablation: memory density under FGKASLR (§6)";
    table;
    notes =
      [
        "in-monitor randomization lets the host pick a shared seed for \
         related VMs, restoring page-merging that fine-grained \
         randomization otherwise nullifies";
      ];
    telemetry = [];
  }

let ablation_rerando ?(runs = 20) ws =
  (* a 40 ms serverless function invocation under three platform
     policies: persistent VM (boot once, same layout forever),
     reboot-per-invocation with in-monitor KASLR, and
     reboot-per-invocation with self-randomizing bzImage boot *)
  let invocation_ms = 40. in
  let table =
    Imk_util.Table.create
      ~headers:
        [ "policy"; "boot ms"; "invocations/s"; "layouts per 100 invocations" ]
  in
  let rows = ref [] in
  let measure name make_vm ~reboot =
    Workspace.warm_all ws;
    let s = Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm () in
    rows := boot_row name s :: !rows;
    let boot_ms = msf s.Boot_runner.total in
    let per_invocation =
      if reboot then boot_ms +. invocation_ms else invocation_ms
    in
    let layouts = if reboot then 100 else 1 in
    Imk_util.Table.add_row table
      [
        name;
        msv boot_ms;
        Printf.sprintf "%.1f" (1000. /. per_invocation);
        string_of_int layouts;
      ];
    1000. /. per_invocation
  in
  let in_monitor =
    direct_vm ws Config.Aws Config.Kaslr ~rando:Vm_config.Rando_kaslr ()
  in
  let self_rando =
    bz_vm ws Config.Aws Config.Kaslr ~codec:"none" ~bz:Bzimage.None_optimized
      ~rando:Vm_config.Rando_kaslr ()
  in
  let persistent = measure "persistent VM (SAND-style)" in_monitor ~reboot:false in
  let inm = measure "reboot + in-monitor KASLR" in_monitor ~reboot:true in
  let self = measure "reboot + self-rando bzImage" self_rando ~reboot:true in
  {
    id = "ablation-rerando";
    title = "Ablation: re-randomization between invocations (§7)";
    table;
    notes =
      [
        Printf.sprintf
          "fresh randomization every invocation costs %.0f%% of persistent-VM \
           throughput with in-monitor KASLR (%.0f%% with self-rando) — the \
           opportunity SAND-style reuse forgoes"
          (100. *. (1. -. (inm /. persistent)))
          (100. *. (1. -. (self /. persistent)));
      ];
    telemetry = List.rev !rows;
  }

let ablation_devices ?(runs = 20) ws =
  (* a fuller microVM: serial console, rootfs block device, network —
     the devices a Lambda-style instance actually attaches. Off in the
     paper-calibrated experiments; here we measure what they add, and how
     a QEMU-style device model amplifies the monitor's share. *)
  let rootfs = Imk_kernel.Rootfs.make ~size:(512 * 1024) ~seed:77L in
  Imk_storage.Disk.add (Workspace.disk ws) ~name:"rootfs.img" rootfs;
  let table =
    Imk_util.Table.create
      ~headers:[ "vmm"; "devices"; "in-monitor"; "linux"; "total ms" ]
  in
  let rows = ref [] in
  let boot profile devices label =
    Workspace.warm_all ws;
    let make_vm ~seed =
      Vm_config.make ~profile ~rando:Vm_config.Rando_kaslr
        ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
        ~devices
        ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
        ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
        ~seed ()
    in
    let s = Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm () in
    rows := boot_row (profile.Profiles.name ^ "/" ^ label) s :: !rows;
    Imk_util.Table.add_row table
      [
        profile.Profiles.name;
        label;
        msv (msf s.Boot_runner.in_monitor);
        msv (msf s.Boot_runner.linux_boot);
        msv (msf s.Boot_runner.total);
      ];
    msf s.Boot_runner.total
  in
  let full =
    [
      Devices.Serial;
      Devices.Virtio_blk { image = "rootfs.img" };
      Devices.Virtio_net;
    ]
  in
  let fc_none = boot Profiles.firecracker [] "none" in
  let fc_full = boot Profiles.firecracker full "serial+blk+net" in
  let _ = boot Profiles.qemu full "serial+blk+net" in
  {
    id = "ablation-devices";
    title = "Ablation: the device model's share of a microVM boot";
    table;
    notes =
      [
        Printf.sprintf
          "a Lambda-style device set adds %.1f ms on Firecracker's minimal \
           device model (rootfs superblock read included); the same set \
           under a QEMU-style model shows why lightweight monitors keep \
           In-Monitor small (§2.1)"
          (fc_full -. fc_none);
      ];
    telemetry = List.rev !rows;
  }

let ablation_unikernel ?(runs = 20) ws =
  (* §6: unikernels cannot self-randomize (no bootstrap loader exists);
     the monitor is the only possible randomizing principal — and at
     unikernel scale, whole-system function-granular ASLR costs almost
     nothing *)
  let disk = Workspace.disk ws in
  let register (b : Image.built) =
    let base = b.Image.config.Config.name in
    Imk_storage.Disk.add disk ~name:(base ^ ".bin") b.Image.vmlinux;
    if b.Image.config.Config.relocatable then
      Imk_storage.Disk.add disk ~name:(base ^ ".relocs") b.Image.relocs_bytes;
    base
  in
  let plain = register (Unikernel.build ~aslr:false ()) in
  let rando_build = Unikernel.build ~aslr:true () in
  let rando = register rando_build in
  let table =
    Imk_util.Table.create
      ~headers:[ "configuration"; "boot ms"; "min"; "max"; "distinct layouts/20" ]
  in
  let rows = ref [] in
  let boot name ~kernel ~rando:mode ~relocs =
    Workspace.warm_all ws;
    let cfg = Unikernel.config ~aslr:(mode <> Vm_config.Rando_off) () in
    let make_vm ~seed =
      Vm_config.make ~profile:Profiles.solo5 ~rando:mode
        ~relocs_path:relocs ~mem_bytes:(64 * 1024 * 1024)
        ~kernel_path:kernel ~kernel_config:{ cfg with Config.name = cfg.Config.name }
        ~seed ()
    in
    let s = Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm () in
    rows := boot_row name s :: !rows;
    (* layout diversity across instances *)
    let bases = Hashtbl.create 32 in
    for i = 1 to 20 do
      let _, r =
        Boot_runner.boot_once ~jitter:false ~seed:(Int64.of_int (50 + i))
          ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) (make_vm ~seed:(Int64.of_int (50 + i)))
      in
      Hashtbl.replace bases r.Vmm.params.Imk_guest.Boot_params.virt_base ()
    done;
    Imk_util.Table.add_row table
      ([ name; msv (msf s.Boot_runner.total) ]
      @ min_max_cells s
      @ [ string_of_int (Hashtbl.length bases) ]);
    msf s.Boot_runner.total
  in
  let base_ms =
    boot "unikernel, no ASLR (today)" ~kernel:(plain ^ ".bin")
      ~rando:Vm_config.Rando_off ~relocs:None
  in
  let aslr_ms =
    boot "unikernel + in-monitor whole-system FGASLR"
      ~kernel:(rando ^ ".bin") ~rando:Vm_config.Rando_fgkaslr
      ~relocs:(Some (rando ^ ".relocs"))
  in
  {
    id = "ablation-unikernel";
    title = "Ablation: in-monitor ASLR for unikernels (§6)";
    table;
    notes =
      [
        Printf.sprintf
          "whole-system function-granular ASLR costs +%.2f ms on a %.1f ms \
           unikernel boot; with no bootstrap loader, the monitor is the \
           only principal that can randomize at all"
          (aslr_ms -. base_ms) base_ms;
      ];
    telemetry = List.rev !rows;
  }

let ablation_zygote ?(runs = 10) ws =
  ignore runs;
  (* instance-creation strategies for a serverless host (§7):
     fresh boot with in-monitor KASLR vs single-snapshot restore vs a
     Morula-style pool of pre-randomized zygotes *)
  let table =
    Imk_util.Table.create
      ~headers:
        [ "strategy"; "create ms"; "distinct layouts"; "resident memory" ]
  in
  Workspace.warm_all ws;
  let make_vm ~seed =
    direct_vm ws Config.Aws Config.Kaslr ~rando:Vm_config.Rando_kaslr
      ~mem:(64 * 1024 * 1024) () ~seed
  in
  let working_set_pages = 2048 (* 8 MiB touched before first request *) in
  (* fresh boots *)
  let fresh =
    Boot_runner.boot_many ~arena:(Workspace.arena ws) ~runs:10 ?plans:(Workspace.plans ws) ~cache:(Workspace.cache ws) ~make_vm ()
  in
  let fresh_ms = msf fresh.Boot_runner.total in
  Imk_util.Table.add_row table
    [ "fresh boot (in-monitor KASLR)"; msv fresh_ms; "per-instance"; "0" ];
  (* single snapshot *)
  let charge () =
    let trace = Imk_vclock.Trace.create (Imk_vclock.Clock.create ()) in
    Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default
  in
  let ch = charge () in
  let base =
    Vmm.boot ?plans:(Workspace.plans ws) ch (Workspace.cache ws)
      (make_vm ~seed:404L)
  in
  let snap = Snapshot.capture base in
  let restore_ms =
    let ch = charge () in
    let t0 = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) in
    let _ = Snapshot.restore ch snap ~working_set_pages in
    Imk_util.Units.ns_to_ms (Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) - t0)
  in
  Imk_util.Table.add_row table
    [
      "single snapshot restore";
      msv restore_ms;
      "1 (cloned)";
      Imk_util.Units.bytes_to_string (Snapshot.encoded_bytes snap);
    ];
  (* Morula pool *)
  let pool_size = 8 in
  let pool =
    Zygote.build (charge ()) (Workspace.cache ws) ~make_vm ~size:pool_size
  in
  let draw_ms =
    let ch = charge () in
    let rng = Imk_entropy.Prng.create ~seed:11L in
    let t0 = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) in
    let r = Zygote.draw ch pool ~rng ~working_set_pages in
    ignore r.Vmm.stats;
    Imk_util.Units.ns_to_ms (Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) - t0)
  in
  Imk_util.Table.add_row table
    [
      Printf.sprintf "Morula pool of %d zygotes" pool_size;
      msv draw_ms;
      string_of_int (Zygote.distinct_layouts pool);
      Imk_util.Units.bytes_to_string (Zygote.memory_bytes pool);
    ];
  {
    id = "ablation-zygote";
    title = "Ablation: snapshots and zygote pools vs randomized boots (§7)";
    table;
    notes =
      [
        Printf.sprintf
          "restores are %.0fx faster than boots but clone one layout; a \
           Morula pool restores diversity at %s of resident memory — \
           in-monitor KASLR shrinks the gap the pool exists to bridge"
          (fresh_ms /. restore_ms)
          (Imk_util.Units.bytes_to_string (Zygote.memory_bytes pool));
      ];
    telemetry =
      [
        boot_row "fresh-boot" fresh;
        scalar_row "snapshot-restore" (restore_ms *. 1e6);
        scalar_row "zygote-draw" (draw_ms *. 1e6);
      ];
  }

(* ---------- Fault-injection campaign ---------- *)

let faults ?(runs = 20) ws =
  (* Sweep fault kinds x boot paths x seeds under supervision and hold
     the soundness line: an armed fault must end as a typed failure or
     as a recovery with a recorded event — a silently green boot over
     corrupted bytes is a validator bug. Every cell run is fully
     private (own disk, cache, armed fault), so the table is
     bit-identical for any --jobs value. *)
  let module F = Imk_fault.Failure in
  let module I = Imk_fault.Inject in
  let module S = Boot_supervisor in
  let table =
    Imk_util.Table.create
      ~headers:
        [ "path"; "fault"; "runs"; "ok"; "recovered"; "failed"; "retries";
          "silent"; "failure kinds"; "total ms" ]
  in
  let mem = 64 * 1024 * 1024 in
  let preset = Config.Aws in
  let fault_seed run = (131 * run) + 7 in
  let kcfg = Workspace.config ws preset Config.Kaslr in
  (* build the cell inputs up front, on the calling domain *)
  let direct_k = Workspace.vmlinux_path ws preset Config.Kaslr in
  let direct_r = Workspace.relocs_path ws preset Config.Kaslr in
  let bz_k =
    Workspace.bzimage_path ws preset Config.Kaslr ~codec:"lz4"
      ~bz:Bzimage.Standard
  in
  let file name = (name, Imk_storage.Disk.find (Workspace.disk ws) name) in
  let direct_files = [ file direct_k; file direct_r ] in
  let bz_files = [ file bz_k ] in
  let direct_vmcfg ~seed =
    Vm_config.make ~rando:Vm_config.Rando_kaslr ~mem_bytes:mem
      ~relocs_path:(Some direct_r) ~kernel_path:direct_k ~kernel_config:kcfg
      ~seed ()
  in
  let bz_vmcfg ~seed =
    Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr
      ~rando:Vm_config.Rando_kaslr ~mem_bytes:mem
      ~loader:Vm_config.Loader_stripped ~kernel_path:bz_k ~kernel_config:kcfg
      ~seed ()
  in
  (* per-run context: private disk seeded with the pristine cell files,
     then the fault armed against it with a run-pure seed *)
  let ctx_for ~files ~kernel_path ?relocs_path kind ~run =
    let disk = Imk_storage.Disk.create () in
    List.iter (fun (name, b) -> Imk_storage.Disk.add disk ~name b) files;
    let inject =
      match kind with
      | None -> None
      | Some k ->
          (I.arm k ~seed:(fault_seed run) ~disk ~kernel_path ?relocs_path ())
            .I.inject
    in
    (* the plan cache is deliberately shared across runs and faults:
       content addressing must keep corrupted images from ever resolving
       to a pristine image's plan, and this campaign is the proof *)
    { S.cache = Imk_storage.Page_cache.create disk;
      inject;
      plans = Workspace.plans ws }
  in
  let silent_total = ref 0 and fault_runs = ref 0 in
  let rows = ref [] in
  let add_row ~path ~fault_label ~fault_armed (reports : S.report array) =
    if Array.length reports > 0 then
      rows :=
        {
          label = path ^ "/" ^ fault_label;
          total =
            Imk_util.Stats.summarize
              (Array.to_list
                 (Array.map (fun (r : S.report) -> float_of_int r.S.total_ns)
                    reports));
          phases = [];
        }
        :: !rows;
    let ok = ref 0 and recovered = ref 0 and failed = ref 0 in
    let retries = ref 0 and silent = ref 0 in
    let kinds = ref [] and total = ref 0. in
    Array.iter
      (fun (r : S.report) ->
        (match r.S.outcome with
        | Ok _ ->
            incr ok;
            if r.S.events <> [] then incr recovered
            else if fault_armed then incr silent
        | Error f ->
            incr failed;
            let k = F.kind_name f in
            if not (List.mem k !kinds) then kinds := k :: !kinds);
        List.iter
          (function F.Retried _ -> incr retries | _ -> ())
          r.S.events;
        total := !total +. float_of_int r.S.total_ns)
      reports;
    let n = Array.length reports in
    Imk_util.Table.add_row table
      [
        path;
        fault_label;
        string_of_int n;
        string_of_int !ok;
        string_of_int !recovered;
        string_of_int !failed;
        string_of_int !retries;
        string_of_int !silent;
        (match List.rev !kinds with [] -> "-" | l -> String.concat "," l);
        msv
          (if n = 0 then 0.
           else Imk_util.Units.ns_float_to_ms (!total /. float_of_int n));
      ];
    silent_total := !silent_total + !silent;
    if fault_armed then fault_runs := !fault_runs + n
  in
  let sweep ~path ~files ~kernel_path ?relocs_path ~make_vm kinds =
    List.iter
      (fun kind ->
        let reports =
          S.supervise_many ~runs
            ~ctx_for:(ctx_for ~files ~kernel_path ?relocs_path kind)
            ~make_vm ()
        in
        let fault_label =
          match kind with None -> "none" | Some k -> I.name k
        in
        add_row ~path ~fault_label ~fault_armed:(kind <> None) reports)
      kinds
  in
  sweep ~path:"direct/kaslr" ~files:direct_files ~kernel_path:direct_k
    ~relocs_path:direct_r ~make_vm:direct_vmcfg
    [
      None;
      Some I.Truncate_image;
      Some I.Flip_image_magic;
      Some I.Flip_entry_magic;
      Some I.Truncate_relocs;
      Some I.Flip_relocs_magic;
      Some I.Read_fault_entry_magic;
      Some (I.Transient_init 1);
    ];
  sweep ~path:"bz/lz4/kaslr" ~files:bz_files ~kernel_path:bz_k
    ~make_vm:bz_vmcfg
    [
      None;
      Some I.Flip_image_magic;
      Some I.Truncate_bzimage;
      Some I.Flip_bz_payload_crc;
      Some (I.Transient_init 1);
    ];
  (* snapshot path: one base snapshot per campaign, corrupted per run;
     a failed restore must degrade to a verify-green cold boot *)
  let snap_blob =
    let trace = Imk_vclock.Trace.create (Imk_vclock.Clock.create ()) in
    let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
    let base =
      Vmm.boot ?plans:(Workspace.plans ws) ch (Workspace.cache ws)
        (direct_vmcfg ~seed:404L)
    in
    Snapshot.serialize (Snapshot.capture base)
  in
  let snap_path = "base.snapshot" in
  let jobs = max 1 !Boot_runner.default_jobs in
  List.iter
    (fun (label, corrupt) ->
      let reports =
        Imk_util.Par.map_tasks ~jobs ~tasks:runs (fun ~worker:_ i ->
            let run = i + 1 in
            let seed = Boot_runner.run_seed run in
            let disk = Imk_storage.Disk.create () in
            List.iter
              (fun (name, b) -> Imk_storage.Disk.add disk ~name b)
              direct_files;
            Imk_storage.Disk.add disk ~name:snap_path
              (corrupt ~seed:(fault_seed run) snap_blob);
            let ctx =
              S.plain_ctx ?plans:(Workspace.plans ws)
                (Imk_storage.Page_cache.create disk)
            in
            S.supervise_snapshot ~seed ~ctx ~snapshot_path:snap_path
              ~working_set_pages:2048 (direct_vmcfg ~seed))
      in
      add_row ~path:"snapshot/kaslr" ~fault_label:label
        ~fault_armed:(label <> "none") reports)
    [
      ("none", fun ~seed:_ b -> b);
      ("snapshot-bit-flip", fun ~seed b -> I.flip_one_bit ~seed b);
      ( "snapshot-truncate",
        fun ~seed b -> Bytes.sub b 0 (Bytes.length b - (1 + (seed mod 128))) );
    ];
  {
    id = "faults";
    title = "Fault injection: typed detection and supervised recovery";
    table;
    notes =
      [
        Printf.sprintf
          "soundness: %d silent successes across %d fault-injected runs%s"
          !silent_total !fault_runs
          (if !silent_total = 0 then
             " — every armed fault was detected as a typed failure or \
              recovered with a recorded event"
           else " — SOUNDNESS VIOLATION: corrupted bytes booted green");
        "recovery is never free: retry backoff, reloc re-derivation and \
         cold-boot fallbacks are charged to the virtual clock in their own \
         spans (retry-backoff, rederive-relocs, snapshot-load)";
      ];
    telemetry = List.rev !rows;
  }

(* ---------- Resilience campaign: weather x preset x boot path ---------- *)

(* one swept (preset, boot-path) point, built up front on the calling
   domain: pristine file bytes, injectable seams, and the calibrated
   per-attempt virtual-time budget *)
type resilience_cell = {
  c_path : string;  (* "aws/direct/kaslr" *)
  c_files : (string * bytes) list;
  c_kernel : string;
  c_relocs : string option;
  c_seams : Imk_fault.Inject.kind list;
  c_snapshot : (string * bytes) option;
  c_make : seed:int64 -> Vm_config.t;
  c_budget : int;
}

let resilience ?(runs = 10) ws =
  (* Sweep weather profile x preset x boot path under fleet supervision
     (circuit breakers, per-attempt deadlines, a campaign retry budget)
     and hold two lines: an armed fault must never boot silently green,
     and a recoverable fault must end recovered or as an accounted
     degradation (retry budget dry, breaker open). Weather, fault seeds
     and per-run state are pure functions of the (cell, run) index and
     each cell runs its boots sequentially against its own fleet, so the
     table is bit-identical for any --jobs value — parallelism lives
     between cells. *)
  let module F = Imk_fault.Failure in
  let module I = Imk_fault.Inject in
  let module W = Imk_fault.Weather in
  let module S = Boot_supervisor in
  let mem = 64 * 1024 * 1024 in
  let plans = Workspace.plans ws in
  let ms = Imk_util.Units.ns_float_to_ms in
  let file name = (name, Imk_storage.Disk.find (Workspace.disk ws) name) in
  let calibrated ~files ~make_vm =
    (* a clean warm boot of the cell's config, deterministic (no
       jitter); the attempt budget is 1.5x that — generous against ~1%
       jitter, tight enough that a cold-cache overload overruns it *)
    let disk = Imk_storage.Disk.create () in
    List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) files;
    let cache = Imk_storage.Page_cache.create disk in
    List.iter (fun (n, _) -> Imk_storage.Page_cache.warm cache n) files;
    let ctx = S.plain_ctx ?plans cache in
    let r = S.supervise ~jitter:false ~seed:1L ~ctx (make_vm ~seed:1L) in
    match r.S.outcome with
    | Ok _ -> r.S.total_ns * 3 / 2
    | Error f ->
        invalid_arg ("resilience: calibration boot failed: " ^ F.describe f)
  in
  let direct_cell preset =
    let variant = Config.Kaslr in
    let k = Workspace.vmlinux_path ws preset variant in
    let r = Workspace.relocs_path ws preset variant in
    let kcfg = Workspace.config ws preset variant in
    let files = [ file k; file r ] in
    let make ~seed =
      Vm_config.make ~rando:Vm_config.Rando_kaslr ~mem_bytes:mem
        ~relocs_path:(Some r) ~kernel_path:k ~kernel_config:kcfg ~seed ()
    in
    {
      c_path = pname preset ^ "/direct/kaslr";
      c_files = files;
      c_kernel = k;
      c_relocs = Some r;
      c_seams =
        [
          I.Truncate_image; I.Flip_image_magic; I.Flip_entry_magic;
          I.Truncate_relocs; I.Flip_relocs_magic; I.Read_fault_entry_magic;
        ];
      c_snapshot = None;
      c_make = make;
      c_budget = calibrated ~files ~make_vm:make;
    }
  in
  let bz_cell preset =
    let variant = Config.Kaslr in
    let k =
      Workspace.bzimage_path ws preset variant ~codec:"lz4" ~bz:Bzimage.Standard
    in
    let kcfg = Workspace.config ws preset variant in
    let files = [ file k ] in
    let make ~seed =
      Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr
        ~rando:Vm_config.Rando_kaslr ~mem_bytes:mem
        ~loader:Vm_config.Loader_stripped ~kernel_path:k ~kernel_config:kcfg
        ~seed ()
    in
    {
      c_path = pname preset ^ "/bz/lz4/kaslr";
      c_files = files;
      c_kernel = k;
      c_relocs = None;
      c_seams = [ I.Flip_image_magic; I.Truncate_bzimage; I.Flip_bz_payload_crc ];
      c_snapshot = None;
      c_make = make;
      c_budget = calibrated ~files ~make_vm:make;
    }
  in
  let snapshot_cell preset =
    let d = direct_cell preset in
    (* one base snapshot per campaign; per-run corruption is a seed-pure
       bit flip. The budget stays the cold-boot fallback's: a warm
       restore fits easily under it, a cold one overruns and degrades. *)
    let blob =
      let trace = Imk_vclock.Trace.create (Imk_vclock.Clock.create ()) in
      let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
      let base = Vmm.boot ?plans ch (Workspace.cache ws) (d.c_make ~seed:404L) in
      Snapshot.serialize (Snapshot.capture base)
    in
    let snap_path = "base.snapshot" in
    let restore_budget =
      (* a clean warm restore, deterministic; the cell budget must admit
         both it and the cold-boot fallback, so take the max with the
         direct cell's. A cold blob read still overruns it. *)
      let disk = Imk_storage.Disk.create () in
      List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) d.c_files;
      Imk_storage.Disk.add disk ~name:snap_path blob;
      let cache = Imk_storage.Page_cache.create disk in
      List.iter
        (fun n -> Imk_storage.Page_cache.warm cache n)
        (snap_path :: List.map fst d.c_files);
      let ctx = S.plain_ctx ?plans cache in
      let r =
        S.supervise_snapshot ~jitter:false ~seed:1L ~ctx
          ~snapshot_path:snap_path ~working_set_pages:2048 (d.c_make ~seed:1L)
      in
      match r.S.outcome with
      | Ok _ -> r.S.total_ns * 3 / 2
      | Error f ->
          invalid_arg
            ("resilience: calibration restore failed: " ^ F.describe f)
    in
    {
      d with
      c_path = pname preset ^ "/snapshot/kaslr";
      (* a stand-in seam so the forecast draws corruptions at the normal
         rate; the run loop maps every drawn fault to a blob bit flip *)
      c_seams = [ I.Flip_image_magic ];
      c_snapshot = Some (snap_path, blob);
      c_budget = max d.c_budget restore_budget;
    }
  in
  let cells =
    List.map direct_cell presets
    @ [ bz_cell Config.Aws; snapshot_cell Config.Aws ]
  in
  let policy_for profile ~budget =
    let base = { S.default_policy with S.attempt_budget_ns = Some budget } in
    match profile with
    | W.Calm | W.Flaky -> base
    | W.Storm -> { base with S.retry_budget = max 3 (runs / 2) }
  in
  let tasks_arr =
    Array.of_list
      (List.concat_map
         (fun profile -> List.map (fun c -> (profile, c)) cells)
         W.all_profiles)
  in
  let jobs = max 1 !Boot_runner.default_jobs in
  let per_cell =
    Imk_util.Par.map_tasks ~jobs ~tasks:(Array.length tasks_arr)
      (fun ~worker:_ ti ->
        let profile, cell = tasks_arr.(ti) in
        let weather = W.make profile ~seed:(1 + ti) in
        let fleet =
          S.fleet ~policy:(policy_for profile ~budget:cell.c_budget) ()
        in
        let out = ref [] in
        for run = 1 to runs do
          let seed = Boot_runner.run_seed run in
          let fc = W.forecast weather ~run ~seams:cell.c_seams in
          let disk = Imk_storage.Disk.create () in
          List.iter
            (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b)
            cell.c_files;
          let inject, snap_names =
            match cell.c_snapshot with
            | None ->
                ( (match fc.W.fault with
                  | None -> None
                  | Some kind ->
                      (I.arm kind ~seed:(W.fault_seed weather ~run) ~disk
                         ~kernel_path:cell.c_kernel
                         ?relocs_path:cell.c_relocs ())
                        .I.inject),
                  [] )
            | Some (snap_path, blob) ->
                (* snapshot cells read weather as snapshot-blob
                   corruption: any drawn fault flips one bit of the
                   CRC-framed blob, detectable by construction *)
                let blob =
                  match fc.W.fault with
                  | None -> blob
                  | Some _ ->
                      I.flip_one_bit ~seed:(W.fault_seed weather ~run) blob
                in
                Imk_storage.Disk.add disk ~name:snap_path blob;
                (None, [ snap_path ])
          in
          let cache = Imk_storage.Page_cache.create disk in
          if not fc.W.cold then
            List.iter
              (fun n -> Imk_storage.Page_cache.warm cache n)
              (List.map fst cell.c_files @ snap_names);
          let ctx = { S.cache; inject; plans } in
          let report =
            match cell.c_snapshot with
            | None -> S.supervise ~fleet ~seed ~ctx (cell.c_make ~seed)
            | Some (snap_path, _) ->
                S.supervise_snapshot ~fleet ~seed ~ctx ~snapshot_path:snap_path
                  ~working_set_pages:2048 (cell.c_make ~seed)
          in
          out := (report, fc) :: !out
        done;
        (profile, cell, Array.of_list (List.rev !out), S.breaker_trips fleet))
  in
  (* sequential aggregation, in task order *)
  let table =
    Imk_util.Table.create
      ~headers:
        [
          "profile"; "path"; "runs"; "ok"; "recovered"; "failed"; "short";
          "silent"; "unrec"; "retries"; "aborts"; "fallbacks"; "trips";
          "mttr ms"; "p50 ms"; "p99 ms";
        ]
  in
  let silent_total = ref 0 and unrecovered_total = ref 0 in
  let fault_runs = ref 0 in
  let calm_ns = ref [] and storm_ns = ref [] in
  let rows = ref [] in
  Array.iter
    (fun (profile, cell, rf, trips) ->
      let totals =
        Array.to_list
          (Array.map (fun ((r : S.report), _) -> float_of_int r.S.total_ns) rf)
      in
      (match profile with
      | W.Calm -> calm_ns := totals @ !calm_ns
      | W.Storm -> storm_ns := totals @ !storm_ns
      | W.Flaky -> ());
      let ok = ref 0 and recovered = ref 0 and failed = ref 0 in
      let short = ref 0 and silent = ref 0 and unrec = ref 0 in
      let retries = ref 0 and aborts = ref 0 and fallbacks = ref 0 in
      let mttr_ns = ref [] in
      Array.iter
        (fun ((r : S.report), (fc : W.forecast)) ->
          let armed = fc.W.fault <> None in
          if armed then incr fault_runs;
          let accounted_degradation =
            List.exists
              (function
                | F.Retry_budget_exhausted _ | F.Breaker_short_circuit _ ->
                    true
                | F.Breaker_probe { succeeded = false } -> true
                | _ -> false)
              r.S.events
          in
          List.iter
            (function
              | F.Retried _ -> incr retries
              | F.Deadline_aborted _ -> incr aborts
              | F.Fell_back_to_cold_boot _ -> incr fallbacks
              | F.Breaker_short_circuit _ -> incr short
              | _ -> ())
            r.S.events;
          match r.S.outcome with
          | Ok _ ->
              incr ok;
              if r.S.events <> [] then begin
                incr recovered;
                mttr_ns :=
                  float_of_int
                    (List.fold_left (fun a (_, d) -> a + d) 0 r.S.recovery)
                  :: !mttr_ns
              end
              else if armed then incr silent
          | Error f ->
              incr failed;
              let recoverable_here =
                match f with
                | F.Transient _ | F.Deadline_exceeded _ -> true
                | F.Bad_reloc _ -> cell.c_relocs <> None
                | F.Decode_error _ -> cell.c_snapshot <> None
                | _ -> false
              in
              if recoverable_here && not accounted_degradation then incr unrec)
        rf;
      let s = Imk_util.Stats.summarize totals in
      let prof = W.profile_name profile in
      Imk_util.Table.add_row table
        [
          prof; cell.c_path; string_of_int runs; string_of_int !ok;
          string_of_int !recovered; string_of_int !failed;
          string_of_int !short; string_of_int !silent; string_of_int !unrec;
          string_of_int !retries; string_of_int !aborts;
          string_of_int !fallbacks; string_of_int trips;
          (match !mttr_ns with
          | [] -> "-"
          | l -> msv (ms (Imk_util.Stats.mean l)));
          msv (ms s.Imk_util.Stats.p50);
          msv (ms s.Imk_util.Stats.p99);
        ];
      silent_total := !silent_total + !silent;
      unrecovered_total := !unrecovered_total + !unrec;
      (* telemetry: the cell's total distribution plus per-recovery-label
         per-boot sums as phases (raw ns floats, never re-parsed) *)
      let labels =
        Array.fold_left
          (fun acc ((r : S.report), _) ->
            List.fold_left
              (fun acc (l, _) -> if List.mem l acc then acc else acc @ [ l ])
              acc r.S.recovery)
          [] rf
      in
      let phase_sums label =
        Array.to_list rf
        |> List.filter_map (fun ((r : S.report), _) ->
               match List.filter (fun (l, _) -> l = label) r.S.recovery with
               | [] -> None
               | spans ->
                   Some
                     (float_of_int
                        (List.fold_left (fun a (_, d) -> a + d) 0 spans)))
      in
      rows :=
        {
          label = prof ^ "/" ^ cell.c_path;
          total = s;
          phases =
            List.map
              (fun l -> (l, Imk_util.Stats.summarize (phase_sums l)))
              labels;
        }
        :: !rows)
    per_cell;
  let soundness_note =
    if !silent_total = 0 then
      Printf.sprintf
        "zero silent successes across %d fault-laden runs — every armed \
         fault surfaced as a typed failure or a recovery event"
        !fault_runs
    else
      Printf.sprintf
        "SOUNDNESS VIOLATION: %d of %d fault-laden runs booted green with no \
         recorded event"
        !silent_total !fault_runs
  in
  let unrec_note =
    if !unrecovered_total = 0 then
      "zero unrecovered recoverable faults: transients, deadline overruns, \
       bad relocs and snapshot corruption all ended recovered or as an \
       accounted degradation (retry budget dry, breaker open)"
    else
      Printf.sprintf
        "UNRECOVERED: %d recoverable faults ended as failures with no \
         accounted degradation — supervision policy bug"
        !unrecovered_total
  in
  let weather_note =
    match (!calm_ns, !storm_ns) with
    | [], _ | _, [] -> []
    | c, st ->
        let cs = Imk_util.Stats.summarize c
        and ss = Imk_util.Stats.summarize st in
        [
          Printf.sprintf
            "storm vs calm: p50 %.1f ms vs %.1f ms (%.2fx), p99 %.1f ms vs \
             %.1f ms (%.2fx) — the tail is where the weather lives"
            (ms ss.Imk_util.Stats.p50) (ms cs.Imk_util.Stats.p50)
            (ss.Imk_util.Stats.p50 /. cs.Imk_util.Stats.p50)
            (ms ss.Imk_util.Stats.p99) (ms cs.Imk_util.Stats.p99)
            (ss.Imk_util.Stats.p99 /. cs.Imk_util.Stats.p99);
        ]
  in
  {
    id = "resilience";
    title = "Resilience: weather x preset x boot path under fleet supervision";
    table;
    notes =
      (soundness_note :: unrec_note :: weather_note)
      @ [
          "recovery is charged and itemized: every report's labelled \
           recovery intervals sum to total_ns minus the successful attempt \
           (checked at report construction)";
        ];
    telemetry = List.rev !rows;
  }

let diffcheck ?(runs = 20) ?(mutate = false) ws =
  (* Differential-oracle campaign (DESIGN.md §8): sweep the kernel
     matrix through the Imk_check catalogue, one point per run with a
     run-pure seed, fanned over --jobs. Images are built once per
     template on the calling domain (Workspace.built's table is not
     thread-safe and diffcheck builds its own envs anyway); each
     comparison instantiates a private disk and cache, so the table and
     telemetry are bit-identical for any --jobs value. *)
  let module O = Imk_check.Oracle in
  let module P = Imk_check.Point in
  let scale = Workspace.scale ws in
  let templates =
    List.map
      (fun (p : P.t) ->
        { p with
          P.functions =
            (Workspace.config ws p.P.preset p.P.variant).Config.functions })
      (P.matrix ~seed:0L ~functions:None)
  in
  (* only the templates the run count will actually cycle through get
     built; indexing by [i mod n_used] equals [i mod n_templates] in
     both the runs < n and runs >= n cases *)
  let n_used = min runs (List.length templates) in
  let images =
    Array.init n_used (fun i ->
        let tpl = List.nth templates i in
        (tpl, Imk_check.Env.build ~scale tpl))
  in
  let oracles = O.catalogue ~mutate in
  let jobs = max 1 !Boot_runner.default_jobs in
  let per_run =
    Imk_util.Par.map_tasks ~jobs ~tasks:runs (fun ~worker:_ i ->
        let tpl, imgs = images.(i mod n_used) in
        let point = { tpl with P.seed = Boot_runner.run_seed (i + 1) } in
        List.map (fun (o : O.t) -> (o.O.id, point, o.O.run imgs point)) oracles)
  in
  (* jobs-1 ≡ jobs-N: boot_many's rows must be bit-identical for any
     fan-out. Runs on the calling domain — boot_many does its own
     fan-out — and compares every field of every phase summary. *)
  let fan = 4 in
  let jobs_point, jobs_report =
    let tpl, imgs =
      let is_rep ((p : P.t), _) =
        p.P.preset = Config.Aws && p.P.variant = Config.Kaslr
        && p.P.codec = "lz4"
      in
      match Array.find_opt is_rep images with
      | Some x -> x
      | None -> images.(0)
    in
    let point = { tpl with P.seed = Boot_runner.run_seed 1 } in
    let series (s : Boot_runner.phase_stats) =
      List.concat_map
        (fun (name, (sum : Imk_util.Stats.summary)) ->
          [
            (name ^ ".n", float_of_int sum.Imk_util.Stats.n);
            (name ^ ".mean", sum.Imk_util.Stats.mean);
            (name ^ ".min", sum.Imk_util.Stats.min);
            (name ^ ".max", sum.Imk_util.Stats.max);
            (name ^ ".stddev", sum.Imk_util.Stats.stddev);
            (name ^ ".p50", sum.Imk_util.Stats.p50);
            (name ^ ".p90", sum.Imk_util.Stats.p90);
            (name ^ ".p99", sum.Imk_util.Stats.p99);
          ])
        [
          ("in-monitor", s.Boot_runner.in_monitor);
          ("bootstrap", s.Boot_runner.bootstrap);
          ("decompression", s.Boot_runner.decompression);
          ("linux-boot", s.Boot_runner.linux_boot);
          ("total", s.Boot_runner.total);
        ]
    in
    let report =
      O.of_run
        (fun imgs point ~note:_ ->
          let env = Imk_check.Env.instantiate imgs in
          let make_vm ~seed =
            Imk_check.Env.direct_config env { point with P.seed = seed }
          in
          let stats_at jobs =
            Boot_runner.boot_many ~warmups:2 ~jobs ~runs:5
              ~cache:env.Imk_check.Env.cache ~make_vm ()
          in
          O.compare_series (series (stats_at 1)) (series (stats_at fan)))
        imgs point
    in
    (point, report)
  in
  (* aggregation, in run order *)
  let table =
    Imk_util.Table.create
      ~headers:[ "oracle"; "comparisons"; "pass"; "divergent"; "first divergence" ]
  in
  let truncate s =
    if String.length s <= 72 then s else String.sub s 0 69 ^ "..."
  in
  let divergences = ref [] (* (oracle id, point, detail), reverse order *) in
  let add_oracle_row id (reports : (P.t * O.report) list) =
    let n = List.length reports in
    let divergent =
      List.filter
        (fun (_, (r : O.report)) ->
          match r.O.outcome with O.Pass -> false | O.Divergence _ -> true)
        reports
    in
    (match divergent with
    | (p, { O.outcome = O.Divergence d; _ }) :: _ ->
        divergences := (id, p, d) :: !divergences
    | _ -> ());
    Imk_util.Table.add_row table
      [
        id;
        string_of_int n;
        string_of_int (n - List.length divergent);
        string_of_int (List.length divergent);
        (match divergent with
        | (p, { O.outcome = O.Divergence d; _ }) :: _ ->
            truncate (P.name p ^ ": " ^ d)
        | _ -> "-");
      ];
    List.length divergent
  in
  let oracle_reports (o : O.t) =
    Array.to_list per_run
    |> List.concat_map
         (List.filter_map (fun (id, p, r) ->
              if id = o.O.id then Some (p, r) else None))
  in
  let divergent_total = ref 0 and comparisons = ref 0 in
  List.iter
    (fun (o : O.t) ->
      let reports = oracle_reports o in
      comparisons := !comparisons + List.length reports;
      divergent_total := !divergent_total + add_oracle_row o.O.id reports)
    oracles;
  incr comparisons;
  divergent_total :=
    !divergent_total
    + add_oracle_row (Printf.sprintf "jobs-1=%d" fan)
        [ (jobs_point, jobs_report) ];
  (* telemetry: per oracle, the virtual totals of every boot its
     comparisons ran — per-boot-label distributions as phases *)
  let telemetry =
    List.filter_map
      (fun (o : O.t) ->
        let reports = oracle_reports o in
        let all_ns =
          List.concat_map
            (fun (_, (r : O.report)) ->
              List.map (fun (_, ns) -> float_of_int ns) r.O.boot_ns)
            reports
        in
        if all_ns = [] then None
        else
          let labels =
            List.fold_left
              (fun acc (_, (r : O.report)) ->
                List.fold_left
                  (fun acc (lbl, _) ->
                    if List.mem lbl acc then acc else acc @ [ lbl ])
                  acc r.O.boot_ns)
              [] reports
          in
          Some
            {
              label = o.O.id;
              total = Imk_util.Stats.summarize all_ns;
              phases =
                List.map
                  (fun lbl ->
                    ( lbl,
                      Imk_util.Stats.summarize
                        (List.concat_map
                           (fun (_, (r : O.report)) ->
                             List.filter_map
                               (fun (l, ns) ->
                                 if l = lbl then Some (float_of_int ns)
                                 else None)
                               r.O.boot_ns)
                           reports) ))
                  labels;
            })
      oracles
  in
  (* the planted-fault protocol: --mutate must be CAUGHT by every
     mutating oracle, and each one's first caught point shrinks to a
     ready-to-paste reproducer *)
  let mutants =
    [
      ("cross-path", "off-by-one", fun () -> O.cross_path ~mutate:true ());
      ( "event-core-solo",
        "event reordering",
        fun () -> O.event_core_solo ~mutate:true () );
    ]
  in
  let mutate_notes =
    if not mutate then []
    else
      List.concat_map
        (fun (oid, fault, mk) ->
          let compared =
            Array.to_list per_run
            |> List.concat_map
                 (List.filter_map (fun (id, p, (r : O.report)) ->
                      if id = oid then Some (p, r.O.outcome) else None))
          in
          let caught =
            List.filter
              (fun (_, o) ->
                match o with O.Divergence _ -> true | O.Pass -> false)
              compared
          in
          if List.length caught < List.length compared then
            [
              Printf.sprintf
                "MUTATE NOT CAUGHT: the planted %s passed %d/%d %s \
                 comparisons — the oracle cannot fail and is not evidence"
                fault
                (List.length compared - List.length caught)
                (List.length compared) oid;
            ]
          else
            match caught with
            | [] -> [ Printf.sprintf "mutate: no %s comparisons ran" oid ]
            | (p0, _) :: _ ->
                let mutant : O.t = mk () in
                let still_fails q =
                  match
                    (mutant.O.run (Imk_check.Env.build ~scale q) q).O.outcome
                  with
                  | O.Divergence _ -> true
                  | O.Pass -> false
                in
                let minimal = Imk_check.Shrink.minimize still_fails p0 in
                Printf.sprintf "mutate: planted %s caught in %d/%d %s \
                                comparisons"
                  fault (List.length caught) (List.length compared) oid
                :: String.split_on_char '\n' (Imk_check.Shrink.report minimal))
        mutants
  in
  let verdict_note =
    if mutate then
      let mutant_ids = List.map (fun (oid, _, _) -> oid) mutants in
      let outside =
        List.length
          (List.filter
             (fun (id, _, _) -> not (List.mem id mutant_ids))
             !divergences)
      in
      if outside > 0 then
        Printf.sprintf
          "DIVERGENCE: %d comparisons outside the mutated oracles disagreed \
           under --mutate — see table"
          outside
      else
        Printf.sprintf
          "%d comparisons; zero divergences outside cross-path and \
           event-core-solo (which are expected to diverge under --mutate)"
          !comparisons
    else if !divergent_total = 0 then
      Printf.sprintf
        "zero divergences across %d comparisons — monitor/loader layouts, \
         event-core solo traces, plan-cache traces, snapshot clones, arena \
         recycling and jobs fan-out all agree bit for bit"
        !comparisons
    else
      Printf.sprintf "DIVERGENCE: %d of %d comparisons disagreed — see table"
        !divergent_total !comparisons
  in
  {
    id = "diffcheck";
    title = "Differential boot oracles: cross-path equivalence campaign";
    table;
    notes = (verdict_note :: mutate_notes);
    telemetry;
  }

(* ---------- Fleet serving campaign (ROADMAP #1, §7 economics) ---------- *)

(* the per-preset calibration behind the fleet simulator: real supervised
   boots, real snapshot restores and real fault-laden supervised boots,
   whose virtual totals become the serving simulator's cost samples *)
type fleet_cal = {
  f_cold : int array;  (* supervised cold boots, total ns *)
  f_warm : int array;  (* supervised snapshot restores, total ns *)
  f_fault : int array;  (* supervised fault-laden boots, recovery included *)
  f_silent : int;  (* armed faults that booted green with no event *)
  f_fault_runs : int;
}

let fleet ?(runs = 10) ?(requests = 50_000) ws =
  (* Sweep preset x arrival model x weather profile through the serving
     simulator (Imk_fleet): a virtual-time request stream scheduled onto
     a bounded warm pool with a bounded admission queue. Calibration
     boots run sequentially on the calling domain (supervised boots,
     snapshot restores and fault-laden boots, guest memory recycled
     through the workspace arena); every cell's simulation is then a
     pure function of its calibration arrays, the cell index and the
     request count, so the table and telemetry are bit-identical for any
     --jobs value — parallelism lives between cells. *)
  let module F = Imk_fault.Failure in
  let module I = Imk_fault.Inject in
  let module W = Imk_fault.Weather in
  let module S = Boot_supervisor in
  let module A = Imk_fleet.Arrival in
  let plans = Workspace.plans ws in
  let arena = Workspace.arena ws in
  let mem = 64 * 1024 * 1024 in
  let cal_runs = max 4 runs in
  let seams = [ I.Transient_init 1; I.Truncate_relocs; I.Flip_relocs_magic ] in
  let file name = (name, Imk_storage.Disk.find (Workspace.disk ws) name) in
  let calibrate preset =
    let variant = Config.Kaslr in
    let k = Workspace.vmlinux_path ws preset variant in
    let r = Workspace.relocs_path ws preset variant in
    let kcfg = Workspace.config ws preset variant in
    let files = [ file k; file r ] in
    let make ~seed =
      Vm_config.make ~rando:Vm_config.Rando_kaslr ~mem_bytes:mem
        ~relocs_path:(Some r) ~kernel_path:k ~kernel_config:kcfg ~seed ()
    in
    (* run-private warmed disk/cache, like every supervised campaign *)
    let warmed_cache extra =
      let disk = Imk_storage.Disk.create () in
      List.iter
        (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b)
        (files @ extra);
      let cache = Imk_storage.Page_cache.create disk in
      List.iter
        (fun (n, _) -> Imk_storage.Page_cache.warm cache n)
        (files @ extra);
      cache
    in
    let cold =
      Array.init cal_runs (fun i ->
          let seed = Boot_runner.run_seed (i + 1) in
          let ctx = S.plain_ctx ?plans (warmed_cache []) in
          let rep = S.supervise ~arena ~seed ~ctx (make ~seed) in
          match rep.S.outcome with
          | Ok _ -> rep.S.total_ns
          | Error f ->
              invalid_arg
                ("fleet: cold calibration boot failed: " ^ F.describe f))
    in
    (* the warm tier restores from one snapshot of this preset *)
    let snap_path = "fleet.snapshot" in
    let blob =
      let trace = Imk_vclock.Trace.create (Imk_vclock.Clock.create ()) in
      let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
      let base =
        Vmm.boot ?plans ch (Workspace.cache ws) (make ~seed:404L)
      in
      Snapshot.serialize (Snapshot.capture base)
    in
    let warm =
      Array.init cal_runs (fun i ->
          let seed = Boot_runner.run_seed (i + 1) in
          let ctx = S.plain_ctx ?plans (warmed_cache [ (snap_path, blob) ]) in
          let rep =
            S.supervise_snapshot ~arena ~seed ~ctx ~snapshot_path:snap_path
              ~working_set_pages:2048 (make ~seed)
          in
          match rep.S.outcome with
          | Ok _ -> rep.S.total_ns
          | Error f ->
              invalid_arg
                ("fleet: warm calibration restore failed: " ^ F.describe f))
    in
    let silent = ref 0 in
    let fault =
      Array.init cal_runs (fun i ->
          let run = i + 1 in
          let seed = Boot_runner.run_seed run in
          let kind = List.nth seams (i mod List.length seams) in
          let disk = Imk_storage.Disk.create () in
          List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) files;
          let inject =
            (I.arm kind ~seed:((131 * run) + 7) ~disk ~kernel_path:k
               ~relocs_path:r ())
              .I.inject
          in
          let cache = Imk_storage.Page_cache.create disk in
          List.iter (fun (n, _) -> Imk_storage.Page_cache.warm cache n) files;
          let ctx = { S.cache; inject; plans } in
          let rep = S.supervise ~arena ~seed ~ctx (make ~seed) in
          (* the soundness line every fault campaign holds: an armed
             fault must surface as a typed failure or a recovery event *)
          (match rep.S.outcome with
          | Ok _ when rep.S.events = [] -> incr silent
          | _ -> ());
          rep.S.total_ns)
    in
    {
      f_cold = cold;
      f_warm = warm;
      f_fault = fault;
      f_silent = !silent;
      f_fault_runs = cal_runs;
    }
  in
  let cals = List.map (fun p -> (p, calibrate p)) presets in
  (* a warm pool smaller than the server count: under concurrency some
     admissions always miss, so the hit rate, eviction count and layout
     churn stay live signals instead of saturating at 100% *)
  let servers = 4 and pool_capacity = 2 and queue_capacity = 16 in
  let mean_ns a = Imk_util.Stats.mean (List.map float_of_int (Array.to_list a)) in
  let models cal =
    (* offered load sized against the pool-warmed steady state: at the
       target ~80% hit rate mean service is a warm/cold blend; 85% of
       server capacity at that service time keeps the cell busy without
       saturating it under calm weather, and the bursty model swings
       around the same mean (quiet halves, bursts 2.5x) *)
    let m_warm = mean_ns cal.f_warm and m_cold = mean_ns cal.f_cold in
    let m_svc = (0.8 *. m_warm) +. (0.2 *. m_cold) in
    let lambda = 0.85 *. float_of_int servers /. (m_svc /. 1e9) in
    [
      A.Poisson { rate_per_s = lambda };
      A.Bursty
        {
          base_per_s = lambda *. 0.5;
          burst_per_s = lambda *. 2.5;
          burst_len = 64;
          period = 256;
        };
    ]
  in
  let cells =
    Array.of_list
      (List.concat_map
         (fun (preset, cal) ->
           List.concat_map
             (fun model ->
               List.map
                 (fun profile -> (preset, cal, model, profile))
                 W.all_profiles)
             (models cal))
         cals)
  in
  let jobs = max 1 !Boot_runner.default_jobs in
  let reports =
    Imk_util.Par.map_tasks ~jobs ~tasks:(Array.length cells)
      (fun ~worker:_ ti ->
        let _, cal, model, profile = cells.(ti) in
        (* calm cells carry no weather value at all: the calm forecast
           is constant (no faults, no cold), so skipping the draws is
           observationally identical and keeps the control rows cheap *)
        let weather =
          match profile with
          | W.Calm -> None
          | W.Flaky | W.Storm -> Some (W.make profile ~seed:(1 + ti))
        in
        Imk_fleet.Sim.run
          {
            Imk_fleet.Sim.arrival = model;
            seed = 7 * (ti + 1);
            requests;
            servers;
            pool_capacity;
            queue_capacity;
            cold_ns = cal.f_cold;
            warm_ns = cal.f_warm;
            fault_ns = cal.f_fault;
            weather;
            seams;
          })
  in
  (* sequential aggregation, in cell order *)
  let table =
    Imk_util.Table.create
      ~headers:
        [
          "kernel"; "arrival"; "weather"; "requests"; "served"; "dropped";
          "hit %"; "cold p50 ms"; "cold p99"; "warm p50"; "warm p99";
          "wait p99"; "depth p99"; "layouts";
        ]
  in
  let rows = ref [] in
  let pctl_cell (s : Imk_util.Stats.summary) v =
    if s.Imk_util.Stats.n = 0 then "-" else msn v
  in
  Array.iteri
    (fun ti (preset, _, model, profile) ->
      let r = reports.(ti) in
      let label =
        String.concat "/"
          [ pname preset; A.model_name model; W.profile_name profile ]
      in
      Imk_util.Table.add_row table
        [
          pname preset;
          A.model_name model;
          W.profile_name profile;
          string_of_int r.Imk_fleet.Sim.requests;
          string_of_int r.Imk_fleet.Sim.completed;
          string_of_int r.Imk_fleet.Sim.dropped;
          Printf.sprintf "%.1f" (100. *. r.Imk_fleet.Sim.hit_rate);
          pctl_cell r.Imk_fleet.Sim.cold_service
            r.Imk_fleet.Sim.cold_service.Imk_util.Stats.p50;
          pctl_cell r.Imk_fleet.Sim.cold_service
            r.Imk_fleet.Sim.cold_service.Imk_util.Stats.p99;
          pctl_cell r.Imk_fleet.Sim.warm_service
            r.Imk_fleet.Sim.warm_service.Imk_util.Stats.p50;
          pctl_cell r.Imk_fleet.Sim.warm_service
            r.Imk_fleet.Sim.warm_service.Imk_util.Stats.p99;
          pctl_cell r.Imk_fleet.Sim.queue_wait
            r.Imk_fleet.Sim.queue_wait.Imk_util.Stats.p99;
          (if r.Imk_fleet.Sim.queue_depth.Imk_util.Stats.n = 0 then "-"
           else
             Printf.sprintf "%.0f" r.Imk_fleet.Sim.queue_depth.Imk_util.Stats.p99);
          string_of_int r.Imk_fleet.Sim.distinct_layouts;
        ];
      if r.Imk_fleet.Sim.completed > 0 then
        rows :=
          {
            label;
            total = r.Imk_fleet.Sim.sojourn;
            phases =
              List.filter
                (fun (_, (s : Imk_util.Stats.summary)) -> s.Imk_util.Stats.n > 0)
                [
                  ("cold-start", r.Imk_fleet.Sim.cold_service);
                  ("warm-start", r.Imk_fleet.Sim.warm_service);
                  ("fault-start", r.Imk_fleet.Sim.fault_service);
                  ("queue-wait", r.Imk_fleet.Sim.queue_wait);
                ];
          }
          :: !rows)
    cells;
  let silent_total =
    List.fold_left (fun a (_, c) -> a + c.f_silent) 0 cals
  in
  let fault_runs_total =
    List.fold_left (fun a (_, c) -> a + c.f_fault_runs) 0 cals
  in
  let soundness_note =
    if silent_total = 0 then
      Printf.sprintf
        "zero silent successes across %d fault-laden calibration boots — \
         every fault-start cost in the simulator includes a typed, \
         supervised recovery"
        fault_runs_total
    else
      Printf.sprintf
        "SOUNDNESS VIOLATION: %d of %d fault-laden calibration boots booted \
         green with no recorded event"
        silent_total fault_runs_total
  in
  let agg f =
    Array.to_list reports |> List.concat_map f
  in
  let economics_note =
    let colds = agg (fun r -> if r.Imk_fleet.Sim.cold_service.Imk_util.Stats.n = 0 then [] else [ r.Imk_fleet.Sim.cold_service.Imk_util.Stats.p50 ]) in
    let warms = agg (fun r -> if r.Imk_fleet.Sim.warm_service.Imk_util.Stats.n = 0 then [] else [ r.Imk_fleet.Sim.warm_service.Imk_util.Stats.p50 ]) in
    let hits = agg (fun r -> if r.Imk_fleet.Sim.pool_hits + r.Imk_fleet.Sim.pool_misses = 0 then [] else [ r.Imk_fleet.Sim.hit_rate ]) in
    match (colds, warms, hits) with
    | [], _, _ | _, [], _ | _, _, [] -> []
    | _ ->
        [
          (* stated as measured, no baked-in direction: the cold/warm
             gap is what a zygote tier bridges and in-monitor KASLR
             shrinks, but smoke-sized kernels (--functions) can invert
             it — fixed restore costs dominate tiny images *)
          Printf.sprintf
            "pool economics: warm restore p50 %.1f ms vs cold boot p50 %.1f \
             ms (cold/warm %.2fx) at a %.0f%% mean hit rate"
            (Imk_util.Units.ns_float_to_ms (Imk_util.Stats.mean warms))
            (Imk_util.Units.ns_float_to_ms (Imk_util.Stats.mean colds))
            (Imk_util.Stats.mean colds /. Imk_util.Stats.mean warms)
            (100. *. Imk_util.Stats.mean hits);
        ]
  in
  let weather_note =
    let per p f =
      Array.to_list cells
      |> List.mapi (fun ti (_, _, _, profile) ->
             if profile = p then f reports.(ti) else 0)
      |> List.fold_left ( + ) 0
    in
    let drops p = per p (fun r -> r.Imk_fleet.Sim.dropped) in
    let faults p = per p (fun r -> r.Imk_fleet.Sim.fault_starts) in
    [
      Printf.sprintf
        "weather and the queue: drops calm/flaky/storm = %d/%d/%d, \
         fault-laden starts %d/%d/%d — faults hold servers through \
         recovery and forecast-forced cold starts bypass the warm pool, \
         so weather shows in serving SLOs, not boot means"
        (drops W.Calm) (drops W.Flaky) (drops W.Storm) (faults W.Calm)
        (faults W.Flaky) (faults W.Storm);
    ]
  in
  let layout_note =
    let served =
      Array.fold_left (fun a r -> a + r.Imk_fleet.Sim.completed) 0 reports
    in
    let layouts =
      Array.fold_left (fun a r -> a + r.Imk_fleet.Sim.distinct_layouts) 0 reports
    in
    [
      Printf.sprintf
        "layout diversity: %d requests served from %d distinct layouts — \
         warm reuse freezes a layout for its pool lifetime; only (cheap, \
         in-monitor-randomized) cold boots re-diversify the fleet"
        served layouts;
    ]
  in
  {
    id = "fleet";
    title =
      Printf.sprintf
        "Fleet serving: %d requests/cell over warm pools (%d slots, pool %d, \
         queue %d)"
        requests servers pool_capacity queue_capacity;
    table;
    notes = (soundness_note :: economics_note) @ weather_note @ layout_note;
    telemetry = List.rev !rows;
  }

let all_ids =
  [
    "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig9"; "fig10"; "fig11";
    "qemu"; "throughput"; "security"; "faults"; "resilience"; "diffcheck";
    "fleet";
    "ablation-kallsyms"; "ablation-orc"; "ablation-page-sharing";
    "ablation-rerando"; "ablation-zygote"; "ablation-unikernel";
    "ablation-devices";
  ]

let by_id = function
  | "table1" -> Some (fun ?runs ws -> ignore runs; table1 ws)
  | "fig3" -> Some (fun ?runs ws -> fig3 ?runs ws)
  | "fig4" -> Some (fun ?runs ws -> fig4 ?runs ws)
  | "fig5" -> Some (fun ?runs ws -> fig5 ?runs ws)
  | "fig6" -> Some (fun ?runs ws -> fig6 ?runs ws)
  | "fig9" -> Some (fun ?runs ws -> fig9 ?runs ws)
  | "fig10" -> Some (fun ?runs ws -> fig10 ?runs ws)
  | "fig11" -> Some (fun ?runs ws -> fig11 ?runs ws)
  | "qemu" -> Some (fun ?runs ws -> qemu_check ?runs ws)
  | "throughput" -> Some (fun ?runs ws -> throughput ?runs ws)
  | "security" -> Some (fun ?runs ws -> ignore runs; security ws)
  | "faults" -> Some (fun ?runs ws -> faults ?runs ws)
  | "resilience" -> Some (fun ?runs ws -> resilience ?runs ws)
  | "diffcheck" -> Some (fun ?runs ws -> diffcheck ?runs ws)
  | "fleet" -> Some (fun ?runs ws -> fleet ?runs ws)
  | "ablation-kallsyms" -> Some (fun ?runs ws -> ablation_kallsyms ?runs ws)
  | "ablation-orc" -> Some (fun ?runs ws -> ablation_orc ?runs ws)
  | "ablation-page-sharing" ->
      Some (fun ?runs ws -> ignore runs; ablation_page_sharing ws)
  | "ablation-rerando" -> Some (fun ?runs ws -> ablation_rerando ?runs ws)
  | "ablation-zygote" -> Some (fun ?runs ws -> ablation_zygote ?runs ws)
  | "ablation-unikernel" -> Some (fun ?runs ws -> ablation_unikernel ?runs ws)
  | "ablation-devices" -> Some (fun ?runs ws -> ablation_devices ?runs ws)
  | _ -> None

let all ?runs ws =
  List.map
    (fun id ->
      match by_id id with
      | Some f -> f ?runs ws
      | None -> assert false)
    all_ids
