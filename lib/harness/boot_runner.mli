(** Repeated-boot measurement, following the paper's methodology (§5.1):
    warm the cache with five boots, then measure N boots, reporting the
    average with min/max. Cold-cache runs drop the caches before every
    measured boot instead. *)

type phase_stats = {
  in_monitor : Imk_util.Stats.summary;
  bootstrap : Imk_util.Stats.summary;
  decompression : Imk_util.Stats.summary;
  linux_boot : Imk_util.Stats.summary;
  total : Imk_util.Stats.summary;
}

val ms : Imk_util.Stats.summary -> float
(** Mean in milliseconds (summaries are collected in ns). Computed on the
    float mean directly — an earlier version truncated to whole ns first,
    biasing sub-ms phases downward. *)

val default_jobs : int ref
(** Ambient parallelism for [boot_many] calls that don't pass [~jobs] —
    the bench/fcsim [--jobs] flag sets this once instead of threading a
    parameter through every experiment. Default 1 (sequential). *)

val trace_sink : (Imk_vclock.Trace.t -> unit) option ref
(** Ambient trace tap: when set, every completed boot's full span trace
    is offered to the sink — {!boot_once} (and therefore every
    [boot_many] repetition) and each [Boot_supervisor] report feed it.
    This is how [bench/main.exe --trace] captures a representative boot
    of any experiment without threading a parameter through every
    driver. The sink runs on whatever domain booted (under [--jobs] that
    is a worker), so it must synchronize internally and must not raise.
    Purely observational: installing a sink never changes virtual-clock
    results. Default [None]. *)

val emit_trace : Imk_vclock.Trace.t -> unit
(** Offer a finished trace to {!trace_sink} (no-op when unset). Called
    by the boot paths above; exposed for other harness entry points
    (e.g. the supervisor) rather than for general use. *)

val boot_many :
  ?warmups:int ->
  ?cold:bool ->
  ?jobs:int ->
  ?arena:Imk_memory.Arena.t ->
  ?plans:Imk_monitor.Plan_cache.t ->
  runs:int ->
  cache:Imk_storage.Page_cache.t ->
  make_vm:(seed:int64 -> Imk_monitor.Vm_config.t) ->
  unit ->
  phase_stats
(** [boot_many ~runs ~cache ~make_vm ()] performs [warmups] (default 5)
    unrecorded boots, then [runs] recorded ones, each with a fresh seed
    and jittered costs. [cold] (default false) drops the page cache
    before every boot, including warmups (which then serve only to
    surface errors early). Raises whatever the boot raises — a failing
    configuration should fail the experiment.

    [arena] recycles guest memory across the boots (each boot's memory is
    released back as soon as its trace is recorded). [jobs] (default
    [!default_jobs]) fans the boots out over that many domains; every
    seed is a pure function of the run index and workers get private
    page-cache clones primed by one sequential first boot, so the
    returned [phase_stats] are bit-identical for any [jobs] value.
    Phases that never ran report [Imk_util.Stats.empty] (n = 0) rather
    than a fabricated zero sample.

    [plans] shares a boot-plan cache across all the boots (and worker
    domains — the cache synchronizes internally). Results are
    bit-identical with or without it; only host wall clock changes. *)

val contend_capacities : (int * int) ref
(** Ambient [(disk_capacity, decompress_slots)] for {!boot_contended}
    callers that follow the bench [--contend D,S] flag — like
    {!default_jobs}, set once by the CLI instead of threaded through
    every experiment. Default [(1, 1)]: one disk-bandwidth unit and one
    decompress slot, full contention. *)

type contended_stats = {
  per_boot : phase_stats;
      (** every boot of every run, aggregated in (run, slot) order —
          spans include queue waits, so contention shows up here *)
  makespan : Imk_util.Stats.summary;
      (** per-run shared-timeline span (last event's virtual time) *)
}

val boot_contended :
  ?warmups:int ->
  ?jobs:int ->
  ?plans:Imk_monitor.Plan_cache.t ->
  n:int ->
  runs:int ->
  cache:Imk_storage.Page_cache.t ->
  make_vm:(seed:int64 -> Imk_monitor.Vm_config.t) ->
  unit ->
  contended_stats
(** [boot_contended ~n ~runs ~cache ~make_vm ()] boots [n] guests
    concurrently on one shared {!Imk_vclock.Sched} timeline per run,
    with disk-read bandwidth and decompress slots capped at
    [!contend_capacities] — queue waits stretch each boot's charged
    spans (DESIGN.md §10). [warmups] (default 5) sequential boots prime
    the shared cache first; each run then gets a private
    [Page_cache.clone], a fresh scheduler and [contend_seed]-pure seeds,
    so the returned stats are bit-identical for any [jobs] fan-out
    (runs are fanned; each run's scheduler stays single-domain). *)

val warm_seed : int -> int64
(** Seed of warmup boot [i] (1-based) — a pure function of the index,
    one leg of the [jobs]-invariance contract. *)

val run_seed : int -> int64
(** Seed of recorded run [i] (1-based). Shared with
    [Boot_supervisor.supervise_many] so supervised and plain campaigns
    agree on per-run seeds. *)

val contend_seed : run:int -> slot:int -> int64
(** Seed of guest [slot] (0-based) in contended run [run] (1-based) — a
    pure function of both, the contended leg of the jobs-invariance
    contract. *)

val boot_once :
  ?jitter:bool ->
  ?arena:Imk_memory.Arena.t ->
  ?mem:Imk_memory.Guest_mem.t ->
  ?plans:Imk_monitor.Plan_cache.t ->
  seed:int64 ->
  cache:Imk_storage.Page_cache.t ->
  Imk_monitor.Vm_config.t ->
  Imk_vclock.Trace.t * Imk_monitor.Vmm.boot_result
(** One instrumented boot, returning the full trace (for span-level
    analyses like Figure 5) and the result (for layout-dependent
    analyses like LEBench and the attack simulation). With [arena] the
    guest memory is borrowed from the pool; the caller releases it when
    done with the result. With [mem] (a caller-owned buffer, typically
    inside an [Imk_memory.Arena.with_buffer] bracket) the boot runs in
    place and the caller keeps ownership either way. *)

val spans_by_label : Imk_vclock.Trace.t -> (string * int) list
(** Aggregate span durations by label, for breakdowns finer than the
    four phases. *)
