(** The bootstrap loader: bzImage self-bootstrapping in guest context.

    Reproduces the paper's account of a bzImage boot (§2.2, §3.2, §3.3):

    + set up a boot stack, heap, bss and early page tables — the
      "Bootstrap Setup" cost, which grows for FGKASLR because the heap
      must hold a copy of the entire text section (up to 8× larger, §5.2);
    + for a standard compressed image, copy the compressed kernel out of
      the way of in-place decompression;
    + decompress (or, for the unoptimized compression-none kernel, copy
      the kernel to the location it expects to run at);
    + parse the kernel ELF and load its segments;
    + if randomization is requested: choose offsets using in-guest
      entropy (rdrand-style costs), shuffle function sections (FGKASLR),
      handle relocations and fix up the address-ordered tables;
    + jump to [startup_64].

    The {!Imk_kernel.Bzimage.None_optimized} variant skips the copies and
    decompression entirely (§3.3): the kernel was linked aligned so that
    it can execute where the monitor loaded it. Segment placement still
    happens as a data operation (the simulation's loaded-image state must
    be real) but costs nothing — the paper's point is precisely that the
    linker trick makes those copies free.

    All randomization work reuses {!Imk_randomize} — the same algorithm
    the monitor uses, with guest-side cost accounting (§4.3). *)

exception Loader_error of string

type rando_request = Loader_off | Loader_kaslr | Loader_fgkaslr

type policy = {
  kallsyms_fixup : bool;
      (** eager kallsyms rewrite (stock Linux loader) vs skipping it (the
          paper's stripped loader used for fair comparison, §4.3) *)
  orc_fixup : bool;
  write_setup_data : bool;
      (** stash the displacement blob for deferred fixups *)
}

val default_policy : policy
(** Eager kallsyms, no ORC, no setup data — the stock loader. *)

val stripped_policy : policy
(** No kallsyms or ORC fixup — the apples-to-apples comparator. *)

val setup_data_pa : int
(** Fixed guest-physical address of the setup-data blob (the real-mode
    data area at 0x90000). *)

type hooks = {
  parse_vmlinux : bytes -> Imk_elf.Types.t;
  decode_relocs : bytes -> Imk_elf.Relocation.table;
  fn_sections : Imk_elf.Types.t -> (int * int) array;
  kernel_info :
    Imk_elf.Types.t -> Imk_kernel.Config.t -> Imk_guest.Boot_params.kernel_info;
}
(** The loader's pure image-derivation steps, injectable so a monitor-side
    plan cache can memoize them across boots of the same image. Every hook
    must be observationally identical to its default (same results, same
    typed exceptions on the same inputs): the loader still charges every
    virtual-clock cost per boot, so hooks only change host wall clock. *)

val default_hooks : hooks
(** Uncached per-boot behaviour: [Imk_elf.Parser.parse],
    [Imk_elf.Relocation.decode], [Imk_randomize.Loadelf.fn_sections],
    [Imk_guest.Boot_params.kernel_info_of_elf]. *)

val run :
  ?hooks:hooks ->
  ?choices:Imk_randomize.Choices.t ->
  Imk_vclock.Charge.t ->
  Imk_memory.Guest_mem.t ->
  bzimage:Imk_kernel.Bzimage.t ->
  staging_pa:int ->
  config:Imk_kernel.Config.t ->
  rando:rando_request ->
  policy:policy ->
  rng:Imk_entropy.Prng.t ->
  Imk_guest.Boot_params.t
(** [run charge mem ~bzimage ~staging_pa ~config ~rando ~policy ~rng]
    executes the loader against guest memory where the monitor staged the
    image at [staging_pa], charging Bootstrap Setup and Decompression
    spans, and returns the boot parameters for the jump to the kernel.
    Raises {!Loader_error} for impossible requests (FGKASLR on a kernel
    without function sections, randomization without relocation info) and
    [Imk_randomize.Kaslr.Reloc_error] / [Imk_compress.Codec.Corrupt] on
    corrupt inputs.

    [choices] pins the entropy schedule ({!Imk_randomize.Choices}): the
    virtual-base and shuffle decisions come from the schedule's
    per-decision streams instead of [rng]. Data transformations and
    virtual-clock charges are unchanged — this is the differential
    oracle's lever for booting the monitor and loader paths on identical
    random decisions. Production boots omit it. *)
