open Imk_memory
open Imk_vclock

exception Loader_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Loader_error s)) fmt

type rando_request = Loader_off | Loader_kaslr | Loader_fgkaslr

type policy = {
  kallsyms_fixup : bool;
  orc_fixup : bool;
  write_setup_data : bool;
}

let default_policy =
  { kallsyms_fixup = true; orc_fixup = false; write_setup_data = false }

let stripped_policy =
  { kallsyms_fixup = false; orc_fixup = false; write_setup_data = false }

type hooks = {
  parse_vmlinux : bytes -> Imk_elf.Types.t;
  decode_relocs : bytes -> Imk_elf.Relocation.table;
  fn_sections : Imk_elf.Types.t -> (int * int) array;
  kernel_info :
    Imk_elf.Types.t -> Imk_kernel.Config.t -> Imk_guest.Boot_params.kernel_info;
}

let default_hooks =
  {
    parse_vmlinux = (fun b -> Imk_elf.Parser.parse b);
    decode_relocs = Imk_elf.Relocation.decode;
    fn_sections = Imk_randomize.Loadelf.fn_sections;
    kernel_info = Imk_guest.Boot_params.kernel_info_of_elf;
  }

let setup_data_pa = Imk_guest.Boot_params.default_setup_data_pa
let loader_stack_bytes = 64 * 1024
let loader_bss_bytes = 128 * 1024
let base_heap_bytes = 256 * 1024

let modeled (config : Imk_kernel.Config.t) n =
  Imk_kernel.Config.modeled_of_actual config n

let bytes_at_early_rate cm bytes =
  int_of_float (float_of_int bytes /. cm.Cost_model.early_zero_bps *. 1e9)

(* setup: mode transitions, loader stack/heap/bss zeroing and early
   4 KiB-page identity tables. The FGKASLR heap must hold a copy of the
   whole text, up to 8x the KASLR heap (§5.2) — [modeled_heap_bytes] is
   the full-scale volume to zero. *)
let charge_setup ch config ~modeled_heap_bytes =
  ignore config;
  let cm = Charge.model ch in
  Charge.pay ch (int_of_float cm.Cost_model.loader_fixed_ns);
  (* the loader's own fixed structures (not kernel-size dependent) *)
  Charge.pay ch
    (bytes_at_early_rate cm (loader_stack_bytes + loader_bss_bytes));
  Charge.pay ch (bytes_at_early_rate cm modeled_heap_bytes);
  (* identity map of the first GiB with 4 KiB pages: the loader runs
     before large pages are available *)
  let pt =
    Page_table.identity_map
      ~covered_bytes:(Imk_util.Units.gib 1)
      ~page_size:Page_table.Four_k
  in
  Charge.pay ch (bytes_at_early_rate cm (Page_table.table_bytes pt));
  Charge.pay ch
    (int_of_float
       (cm.Cost_model.pte_write_ns *. float_of_int (Page_table.entries pt)))

let section_actual_count mem ~pa ~what =
  match Guest_mem.get_u32 mem ~pa with
  | count when count >= 0 && count < 10_000_000 -> count
  | _ -> fail "implausible %s count" what
  | exception Guest_mem.Fault m -> fail "%s header unreadable: %s" what m

let run ?(hooks = default_hooks) ?choices ch mem ~bzimage ~staging_pa ~config
    ~rando ~policy ~rng =
  ignore staging_pa;
  (* a pinned entropy schedule (differential oracles) replaces only where
     the random decisions come from; every cost charge and every byte of
     data transformation below is unchanged *)
  let virtual_rng () =
    match choices with
    | Some c -> Imk_randomize.Choices.virtual_rng c
    | None -> rng
  in
  let shuffle_rng () =
    match choices with
    | Some c -> Imk_randomize.Choices.shuffle_rng c
    | None -> rng
  in
  let cm = Charge.model ch in
  let open Imk_kernel in
  let payload_len = Bytes.length bzimage.Bzimage.payload in
  let uncompressed_len = bzimage.Bzimage.vmlinux_len + bzimage.Bzimage.relocs_len in
  (* early parameter parsing: the command line can veto randomization,
     exactly as Linux's loader honours nokaslr / nofgkaslr (§5.1) *)
  let rando =
    match Imk_guest.Boot_info.read mem with
    | exception Imk_guest.Boot_info.Invalid _ -> rando
    | info ->
        if Imk_guest.Boot_info.has_flag info "nokaslr" then Loader_off
        else if
          rando = Loader_fgkaslr
          && Imk_guest.Boot_info.has_flag info "nofgkaslr"
        then Loader_kaslr
        else rando
  in
  let fg = rando = Loader_fgkaslr in
  (* 1. loader setup: the FGKASLR heap must hold the whole text section
     copy, so its modelled size is the full-scale kernel *)
  let modeled_heap_bytes =
    if fg then max base_heap_bytes (modeled config bzimage.Bzimage.vmlinux_len)
    else base_heap_bytes
  in
  Charge.span ch Trace.Bootstrap_setup "loader-setup" (fun () ->
      charge_setup ch config ~modeled_heap_bytes;
      (* standard boot: move the compressed (or merely concatenated, for
         compression-none) kernel out of the way of in-place
         decompression — step 2 of §3.3, eliminated by None_optimized *)
      if bzimage.Bzimage.variant = Bzimage.Standard then
        Charge.pay ch
          (Cost_model.memcpy_cost cm ~in_guest:true (modeled config payload_len)));
  (* 2. decompression (the data transformation is always real). The
     decompressor writes its output directly at the kernel's run
     location, so no separate segment-copy cost follows — matching the
     real loader, where parse_elf only shifts segment boundaries. The
     decode is zero-copy: one exact-size buffer receives vmlinux and the
     relocation table straight from the framed payload, with no
     intermediate full-image allocation or blit. [Bytes.create] is safe
     uninitialized here: [unpack_payload_into] either fills all of it
     (CRC-verified) or raises, and the buffer does not escape on
     failure. *)
  let image, relocs_bytes =
    Charge.span ch Trace.Decompression ("decompress-" ^ bzimage.Bzimage.codec)
      (fun () ->
        let img = Bytes.create uncompressed_len in
        Bzimage.unpack_payload_into bzimage ~dst:img ~dst_off:0;
        (match (bzimage.Bzimage.variant, bzimage.Bzimage.codec) with
        | Bzimage.Standard, "none" ->
            (* unoptimized compression-none: "decompression" is a copy of
               the whole kernel to the location it expects to run (§3.3) *)
            Charge.pay ch
              (Cost_model.memcpy_cost cm ~in_guest:true (modeled config uncompressed_len))
        | Bzimage.Standard, codec ->
            Charge.pay_using ch Sched.Decompress
              (Cost_model.decompress_cost cm ~codec
                 ~out_bytes:(modeled config uncompressed_len))
        | Bzimage.None_optimized, _ -> ());
        let relocs =
          if bzimage.Bzimage.relocs_len = 0 then Bytes.empty
          else
            Bytes.sub img bzimage.Bzimage.vmlinux_len bzimage.Bzimage.relocs_len
        in
        (img, relocs))
  in
  (* 3..6: parse, randomize, load, relocate — all Bootstrap Setup. The
     ELF parser reads [image] (vmlinux with the relocation table still
     concatenated after it): every parse offset is bounds-checked against
     the longer buffer exactly as against a trimmed copy, and no section
     reaches past [vmlinux_len], so the trailing bytes are inert — this
     is what lets the loader skip carving out a vmlinux copy. *)
  Charge.span ch Trace.Bootstrap_setup "loader-main" (fun () ->
      let elf =
        try hooks.parse_vmlinux image
        with Imk_elf.Parser.Malformed m -> fail "kernel ELF: %s" m
      in
      Charge.pay ch
        (Cost_model.elf_parse_cost cm
           ~sections:(modeled config (Array.length elf.Imk_elf.Types.sections)));
      let relocs =
        if rando = Loader_off then Imk_elf.Relocation.empty
        else if Bytes.length relocs_bytes = 0 then
          fail "randomization requested but the image carries no relocations"
        else hooks.decode_relocs relocs_bytes
      in
      let phys_load = Addr.default_phys_load in
      let image_memsz = Imk_randomize.Loadelf.image_memsz elf in
      if phys_load + image_memsz > Guest_mem.size mem then
        fail "kernel does not fit in guest memory";
      (* offset selection burns in-guest entropy (rdrand-style) *)
      let entropy_cost draws =
        let pool = Imk_entropy.Pool.create Imk_entropy.Pool.Guest_rdrand ~seed:0L in
        draws * Imk_entropy.Pool.draw_cost_ns pool
      in
      let delta =
        match rando with
        | Loader_off -> 0
        | Loader_kaslr | Loader_fgkaslr ->
            Charge.pay ch (entropy_cost 2);
            Imk_randomize.Kaslr.choose_virtual (virtual_rng ()) ~image_memsz
            - Addr.link_base
      in
      let plan =
        if not fg then None
        else begin
          let sections = hooks.fn_sections elf in
          if Array.length sections = 0 then
            fail "FGKASLR requires a kernel built with -ffunction-sections";
          (* copy text to the boot heap and back while shuffling *)
          let text = Imk_randomize.Loadelf.text_bytes elf in
          Charge.pay ch
            (2 * Cost_model.memcpy_cost cm ~in_guest:true (modeled config text));
          Charge.pay ch
            (int_of_float
               (cm.Cost_model.section_shuffle_ns
               *. float_of_int (modeled config (Array.length sections))));
          Some
            (Imk_randomize.Fgkaslr.make_plan (shuffle_rng ()) ~sections
               ~text_base:Addr.link_base)
        end
      in
      (* segment placement: always a real data operation so the loaded
         image is genuine, but free on the clock — the standard path's
         copies were charged as decompression output above, and the
         optimized link runs in place (§3.3) *)
      Imk_randomize.Loadelf.place mem elf ~phys_load ~plan;
      (* relocation handling *)
      let displace va =
        match plan with Some p -> Imk_randomize.Fgkaslr.displace p va | None -> va
      in
      if rando <> Loader_off then begin
        let site_pa va = displace va - Addr.link_base + phys_load in
        let new_va_of va =
          Imk_randomize.Kaslr.delta_new_va ~delta (displace va)
        in
        Imk_randomize.Kaslr.apply ~mem ~relocs ~site_pa ~new_va_of;
        let entries = modeled config (Imk_elf.Relocation.entry_count relocs) in
        let cost =
          match plan with
          | None -> Cost_model.reloc_cost cm ~in_guest:true ~entries
          | Some p ->
              Cost_model.fg_reloc_cost cm ~in_guest:true ~entries
                ~sections:(modeled config p.Imk_randomize.Fgkaslr.count)
        in
        Charge.pay ch cost
      end;
      (* table fixups (FGKASLR only; plain KASLR leaves relative tables
         valid) *)
      (match plan with
      | None -> ()
      | Some p ->
          let sec_pa name =
            match Imk_elf.Types.section_by_name elf name with
            | Some s -> (s.addr - Addr.link_base + phys_load, s.addr)
            | None -> fail "kernel has no %s section" name
          in
          let extab_pa, extab_va = sec_pa ".extab" in
          Imk_randomize.Fgkaslr.fixup_extab mem ~pa:extab_pa ~extab_va p;
          let extab_count = section_actual_count mem ~pa:extab_pa ~what:"extab" in
          Charge.pay ch
            (int_of_float
               (cm.Cost_model.extab_fixup_ns
               *. float_of_int (modeled config extab_count)));
          (* symbol-table adjustment cost (Linux fixes up the ELF symtab
             as part of FGKASLR) *)
          Charge.pay ch
            (int_of_float
               (cm.Cost_model.symbol_fixup_ns
               *. float_of_int (modeled config (Array.length elf.Imk_elf.Types.symbols))));
          if policy.kallsyms_fixup then begin
            let kallsyms_pa, _ = sec_pa ".kallsyms" in
            Imk_randomize.Fgkaslr.fixup_kallsyms mem ~pa:kallsyms_pa p;
            Charge.pay ch
              (int_of_float
                 (cm.Cost_model.kallsyms_ns_per_sym
                 *. float_of_int (modeled config config.Config.functions)))
          end;
          if policy.orc_fixup then
            (match Imk_elf.Types.section_by_name elf ".orc_unwind" with
            | None -> ()
            | Some s ->
                let pa = s.addr - Addr.link_base + phys_load in
                Imk_randomize.Fgkaslr.fixup_orc mem ~pa ~orc_va:s.addr p;
                let count = section_actual_count mem ~pa ~what:"orc" in
                Charge.pay ch
                  (int_of_float
                     (cm.Cost_model.extab_fixup_ns *. float_of_int (modeled config count))));
          if policy.write_setup_data then begin
            let blob =
              Imk_guest.Boot_params.setup_data_encode
                (Imk_randomize.Fgkaslr.displacement_pairs p)
            in
            Guest_mem.write_bytes mem ~pa:setup_data_pa blob
          end);
      (* the jump to startup_64 *)
      Trace.tracepoint (Charge.trace ch) Trace.Bootstrap_setup "jump-to-kernel";
      let kernel_info = hooks.kernel_info elf config in
      let kallsyms_fixed =
        (not fg) || policy.kallsyms_fixup
      in
      {
        Imk_guest.Boot_params.phys_load;
        virt_base = Addr.link_base + delta;
        entry_va = displace elf.Imk_elf.Types.entry + delta;
        mem_bytes = Guest_mem.size mem;
        kernel = kernel_info;
        kallsyms_fixed;
        orc_fixed = (not fg) || policy.orc_fixup;
        setup_data_pa =
          (if policy.write_setup_data && fg then Some setup_data_pa else None);
      })
