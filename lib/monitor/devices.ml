type t = Serial | Virtio_blk of { image : string } | Virtio_net

let name = function
  | Serial -> "serial"
  | Virtio_blk _ -> "virtio-blk"
  | Virtio_net -> "virtio-net"

let monitor_setup_ns (profile : Profiles.t) device =
  let base =
    match device with
    | Serial -> 30_000
    | Virtio_blk _ -> 120_000
    | Virtio_net -> 180_000
  in
  if profile.Profiles.name = "qemu" then base * 10 else base

let guest_probe_ns = function
  | Serial -> 150_000
  | Virtio_blk _ -> 450_000
  | Virtio_net -> 600_000

let blk_read ch cache ~image ~off ~len =
  let contents, cached = Imk_storage.Page_cache.read cache image in
  if off < 0 || len < 0 || off + len > Bytes.length contents then
    invalid_arg "Devices.blk_read: out of range";
  let cm = Imk_vclock.Charge.model ch in
  Imk_vclock.Charge.pay_using ch Imk_vclock.Sched.Disk
    (Imk_vclock.Cost_model.read_cost cm ~cached len);
  Bytes.sub contents off len
