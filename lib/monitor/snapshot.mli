(** VM snapshots — the zygote alternative to fresh boots (§7).

    Checkpoint/restore platforms (SAND, Catalyzer-style zygotes, the JVM
    warm-clone lineage the paper surveys) avoid boot cost by restoring a
    memory image instead of booting. The catch the paper highlights:
    every restored instance inherits the snapshot's address-space layout,
    nullifying ASLR — unless a pool of differently-randomized snapshots
    is maintained (Morula), with its own complexity and memory cost.

    This module implements both sides of that trade so the harness can
    quantify it: serialize a booted guest, restore clones of it, and
    model restore cost as the copy-on-write mapping setup plus the
    first-touch faults of the working set — far cheaper than a boot, and
    exactly as randomized as the one snapshot it came from. *)

type t

exception Corrupt of string
(** A serialized snapshot failed validation in {!load}: bad magic or
    version, truncation, or a CRC32 mismatch anywhere in the blob. Typed
    so a supervisor can fall back to a cold boot instead of restoring
    garbage into a guest. *)

val capture : Vmm.boot_result -> t
(** [capture result] snapshots a booted guest: its dirty ranges, framed,
    plus the boot parameters. Everything outside the frames is zero by
    the {!Imk_memory.Guest_mem} invariant, so the frames reconstruct the
    image exactly while the snapshot costs memory proportional to what
    the boot wrote, not to guest size. Capture reads through the
    tracker's read-only accessors: the source VM remains usable and its
    dirty extent — hence its next {!Imk_memory.Arena} scrub cost — is
    exactly what it would have been without the capture. *)

val encoded_bytes : t -> int
(** Serialized size (what a snapshot costs to keep on disk or in a
    zygote pool) — header + dirty-range frames + trailer, far below
    guest size for a typical boot. *)

val layout_seed_of : t -> int
(** A fingerprint of the captured layout (virtual base ⊕ a hash of the
    text pages) — distinct snapshots in a Morula-style pool must differ
    on it. *)

val serialize : t -> bytes
(** [serialize t] is the byte-exact on-disk form (version 2): a fixed
    header with the boot parameters and guest size, a frame count, the
    dirty-range frames as [(pa, len, data)], and a CRC32 trailer over
    everything before it. [load ~config (serialize t)] round-trips. *)

val load : config:Vm_config.t -> bytes -> t
(** [load ~config b] validates and decodes {!serialize}'s output,
    rehydrating against the supplied VM config (configs are host-side
    objects, not serialized state). Raises {!Corrupt} on bad magic or
    version, truncation, length inconsistencies, frames that are
    unsorted, overlapping or outside the guest, or a CRC32 mismatch —
    a single flipped bit anywhere in [b] is caught. Frame lengths are
    validated against the remaining blob before any allocation. *)

val restore :
  Imk_vclock.Charge.t -> t -> working_set_pages:int -> Vmm.boot_result
(** [restore charge t ~working_set_pages] clones the snapshot into a
    fresh guest. Charged work: re-establishing the copy-on-write mapping
    (per-page bookkeeping over the kernel image) and faulting in
    [working_set_pages] pages — the restore path's real costs, orders of
    magnitude below a boot. The restored guest passes the same integrity
    verification as a booted one (the clone is exact — including its
    randomization). *)

val verify_restored : Vmm.boot_result -> Imk_guest.Runtime.verify_stats
(** Run the guest's integrity walk on a restored clone. *)
