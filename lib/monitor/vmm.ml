open Imk_memory
open Imk_vclock

exception Boot_error of string
exception Transient of string

let fail fmt = Printf.ksprintf (fun s -> raise (Boot_error s)) fmt

type boot_result = {
  config : Vm_config.t;
  params : Imk_guest.Boot_params.t;
  stats : Imk_guest.Runtime.verify_stats;
  mem : Guest_mem.t;
}

let staging_pa = 4 * 1024 * 1024

let modeled (config : Vm_config.t) n =
  Imk_kernel.Config.modeled_of_actual config.kernel_config n

let flavor_rank = function
  | Vm_config.Baseline -> 0
  | Vm_config.Bzimage_support -> 1
  | Vm_config.In_monitor_kaslr -> 2
  | Vm_config.In_monitor_fgkaslr -> 3

let validate_capabilities (config : Vm_config.t) ~is_bzimage =
  let rank = flavor_rank config.flavor in
  if is_bzimage && rank < 1 then
    fail "%s does not support bzImage boot"
      (Vm_config.flavor_name config.flavor);
  if not is_bzimage then begin
    (match config.rando with
    | Vm_config.Rando_kaslr when rank < 2 ->
        fail "%s does not implement in-monitor KASLR"
          (Vm_config.flavor_name config.flavor)
    | Vm_config.Rando_fgkaslr when rank < 3 ->
        fail "%s does not implement in-monitor FGKASLR"
          (Vm_config.flavor_name config.flavor)
    | _ -> ())
  end

let read_image ch cache (config : Vm_config.t) path ~what =
  let cm = Charge.model ch in
  match Imk_storage.Page_cache.read cache path with
  | exception Not_found -> fail "%s image %s not found on disk" what path
  | contents, cached ->
      Charge.pay_using ch Sched.Disk
        (Cost_model.read_cost cm ~cached (modeled config (Bytes.length contents)));
      contents

(* initial guest page tables: the monitor builds these for a direct boot;
   identity map of the first GiB with 2 MiB pages *)
let charge_page_tables ch =
  let cm = Charge.model ch in
  let pt =
    Page_table.identity_map ~covered_bytes:(Imk_util.Units.gib 1)
      ~page_size:Page_table.Two_m
  in
  Charge.pay ch (Cost_model.zero_cost cm (Page_table.table_bytes pt));
  Charge.pay ch (int_of_float (1024. *. (Charge.model ch).Cost_model.page_table_ns_per_mib))

let protocol_setup_ns = function
  | Vm_config.Linux64 -> 50_000
  | Vm_config.Pvh -> 30_000

let boot_info_proto = function
  | Vm_config.Linux64 -> Imk_guest.Boot_info.Proto_linux64
  | Vm_config.Pvh -> Imk_guest.Boot_info.Proto_pvh

(* load the initrd (if any) at the top of guest memory and publish the
   zero page / start info the guest will trust *)
let setup_boot_info ch cache (config : Vm_config.t) mem =
  let initrd =
    match config.initrd_path with
    | None -> None
    | Some path ->
        let image = read_image ch cache config path ~what:"initrd" in
        let len = Bytes.length image in
        let pa = Addr.align_down (Guest_mem.size mem - len) 4096 in
        if pa <= Addr.default_phys_load then
          fail "initrd (%d bytes) does not fit above the kernel" len;
        Guest_mem.write_bytes mem ~pa image;
        Some (pa, len)
  in
  let info =
    {
      Imk_guest.Boot_info.proto = boot_info_proto config.protocol;
      cmdline = config.boot_args;
      e820 = Imk_guest.Boot_info.e820_of_mem ~mem_bytes:(Guest_mem.size mem);
      initrd;
    }
  in
  (try Imk_guest.Boot_info.write mem info
   with Imk_guest.Boot_info.Invalid m -> fail "boot info: %s" m);
  Charge.pay ch (protocol_setup_ns config.protocol);
  (* physical randomization must stay below the initrd *)
  match initrd with Some (pa, _) -> pa | None -> Guest_mem.size mem

(* The Â§4.3 alternative to hardcoding kernel constants: read them from
   the image's ELF note and check the kernel was built for the address
   space this monitor provides. Kernels without the note fall back to
   the hardcoded constants, like the paper's prototype. *)
let check_kaslr_note (elf : Imk_elf.Types.t) =
  match Imk_elf.Types.section_by_name elf Imk_elf.Note.section_name with
  | None -> ()
  | Some s -> (
      match Imk_elf.Note.decode_kaslr (Imk_elf.Note.decode s.data) with
      | exception Imk_elf.Types.Malformed m -> fail "kernel constants note: %s" m
      | c ->
          if
            c.Imk_elf.Note.kmap_base <> Addr.kmap_base
            || c.Imk_elf.Note.phys_align <> Addr.kernel_align
            || c.Imk_elf.Note.phys_start <> Addr.default_phys_load
          then
            fail
              "kernel built for a different address space (note: start=%#x \
               align=%#x kmap=%#x)"
              c.Imk_elf.Note.phys_start c.Imk_elf.Note.phys_align
              c.Imk_elf.Note.kmap_base)

(* --- direct (uncompressed vmlinux) boot --- *)

let direct_boot ?plans ?choices ch cache (config : Vm_config.t) kernel_bytes mem
    ~phys_limit =
  let cm = Charge.model ch in
  (* the plan is derived once per image content; the boot still pays the
     full parse cost below — the cache only moves host CPU, never virtual
     time (cache transparency, DESIGN.md §4) *)
  let bplan =
    try
      match plans with
      | Some t -> Plan_cache.elf_plan t ~path:config.kernel_path kernel_bytes
      | None -> Plan_cache.build_elf_plan kernel_bytes
    with Imk_elf.Parser.Malformed m -> fail "kernel ELF: %s" m
  in
  let elf = bplan.Plan_cache.elf in
  check_kaslr_note elf;
  Charge.pay ch
    (Cost_model.elf_parse_cost cm
       ~sections:(modeled config (Array.length elf.Imk_elf.Types.sections)));
  let image_memsz = bplan.Plan_cache.image_memsz in
  if Addr.default_phys_load + image_memsz > phys_limit then
    fail "kernel (%d bytes in memory) does not fit in %d bytes of guest memory"
      image_memsz phys_limit;
  let rando = config.rando in
  let relocs =
    match rando with
    | Vm_config.Rando_off -> Imk_elf.Relocation.empty
    | Vm_config.Rando_kaslr | Vm_config.Rando_fgkaslr -> (
        match config.relocs_path with
        | None ->
            fail
              "in-monitor randomization requires the relocation-entries \
               argument (vmlinux.relocs)"
        | Some path -> (
            let bytes = read_image ch cache config path ~what:"relocs" in
            (* a corrupt table propagates as the typed
               [Imk_elf.Relocation.Bad_table] so a supervisor can fall
               back to re-deriving the relocs from the ELF *)
            match
              match plans with
              | Some t -> Plan_cache.relocs t ~path bytes
              | None -> Imk_elf.Relocation.decode bytes
            with
            | t when Imk_elf.Relocation.entry_count t = 0 ->
                fail "relocs file %s is empty — kernel built without \
                      CONFIG_RELOCATABLE?" path
            | t -> t))
  in
  (* host entropy pool: cheap, well-seeded randomness (§4.3). A pinned
     [choices] schedule (differential oracles) only replaces where the
     random decisions come from; every charge below is unchanged *)
  let pool = Imk_entropy.Pool.create Imk_entropy.Pool.Host_pool ~seed:config.seed in
  let rng = Imk_entropy.Pool.prng pool in
  let physical_rng () =
    match choices with
    | Some c -> Imk_randomize.Choices.physical_rng c
    | None -> rng
  in
  let virtual_rng () =
    match choices with
    | Some c -> Imk_randomize.Choices.virtual_rng c
    | None -> rng
  in
  let shuffle_rng () =
    match choices with
    | Some c -> Imk_randomize.Choices.shuffle_rng c
    | None -> rng
  in
  let phys_load, delta =
    match rando with
    | Vm_config.Rando_off -> (Addr.default_phys_load, 0)
    | _ ->
        Charge.pay ch (2 * Imk_entropy.Pool.draw_cost_ns pool);
        let phys =
          Imk_randomize.Kaslr.choose_physical (physical_rng ()) ~image_memsz
            ~mem_bytes:phys_limit
        in
        let virt =
          Imk_randomize.Kaslr.choose_virtual (virtual_rng ()) ~image_memsz
        in
        (phys, virt - Addr.link_base)
  in
  let plan =
    match rando with
    | Vm_config.Rando_fgkaslr ->
        let sections = bplan.Plan_cache.fn_sections in
        if Array.length sections = 0 then
          fail
            "in-monitor FGKASLR requires a kernel built with \
             -ffunction-sections (fgkaslr variant)";
        Charge.pay ch
          (int_of_float
             (cm.Cost_model.section_shuffle_ns
             *. float_of_int (modeled config (Array.length sections))));
        Some
          (Imk_randomize.Fgkaslr.make_plan (shuffle_rng ()) ~sections
             ~text_base:Addr.link_base)
    | _ -> None
  in
  (* one-pass placement: segments land at their final (displaced)
     location directly — no self-relocation copies (§5.2) *)
  Imk_randomize.Loadelf.place_list mem bplan.Plan_cache.alloc ~phys_load ~plan;
  let displace va =
    match plan with Some p -> Imk_randomize.Fgkaslr.displace p va | None -> va
  in
  if rando <> Vm_config.Rando_off then begin
    let site_pa va = displace va - Addr.link_base + phys_load in
    let new_va_of va = Imk_randomize.Kaslr.delta_new_va ~delta (displace va) in
    Imk_randomize.Kaslr.apply ~mem ~relocs ~site_pa ~new_va_of;
    let entries = modeled config (Imk_elf.Relocation.entry_count relocs) in
    Charge.pay ch
      (match plan with
      | None -> Cost_model.reloc_cost cm ~in_guest:false ~entries
      | Some p ->
          Cost_model.fg_reloc_cost cm ~in_guest:false ~entries
            ~sections:(modeled config p.Imk_randomize.Fgkaslr.count))
  end;
  (* FGKASLR table fixups in the monitor *)
  let kallsyms_fixed = ref true and setup_written = ref false in
  (match plan with
  | None -> ()
  | Some p ->
      let sec name =
        match Imk_elf.Types.section_by_name elf name with
        | Some s -> (s.Imk_elf.Types.addr - Addr.link_base + phys_load, s.Imk_elf.Types.addr, s.Imk_elf.Types.size)
        | None -> fail "kernel has no %s section" name
      in
      let extab_pa, extab_va, extab_size = sec ".extab" in
      Imk_randomize.Fgkaslr.fixup_extab mem ~pa:extab_pa ~extab_va p;
      let extab_count =
        (extab_size - Imk_kernel.Image.extab_header_bytes)
        / Imk_kernel.Image.extab_entry_bytes
      in
      Charge.pay ch
        (int_of_float
           (cm.Cost_model.extab_fixup_ns *. float_of_int (modeled config extab_count)));
      Charge.pay ch
        (int_of_float
           (cm.Cost_model.symbol_fixup_ns
           *. float_of_int (modeled config (Array.length elf.Imk_elf.Types.symbols))));
      (match config.kallsyms with
      | Vm_config.Kallsyms_eager ->
          let kallsyms_pa, _, _ = sec ".kallsyms" in
          Imk_randomize.Fgkaslr.fixup_kallsyms mem ~pa:kallsyms_pa p;
          Charge.pay ch
            (int_of_float
               (cm.Cost_model.kallsyms_ns_per_sym
               *. float_of_int (modeled config config.kernel_config.Imk_kernel.Config.functions)))
      | Vm_config.Kallsyms_deferred ->
          kallsyms_fixed := false;
          let blob =
            Imk_guest.Boot_params.setup_data_encode
              (Imk_randomize.Fgkaslr.displacement_pairs p)
          in
          Guest_mem.write_bytes mem ~pa:Imk_guest.Boot_params.default_setup_data_pa blob;
          setup_written := true);
      (match config.orc with
      | Vm_config.Orc_update -> (
          match Imk_elf.Types.section_by_name elf ".orc_unwind" with
          | None -> ()
          | Some s ->
              let pa = s.Imk_elf.Types.addr - Addr.link_base + phys_load in
              Imk_randomize.Fgkaslr.fixup_orc mem ~pa ~orc_va:s.Imk_elf.Types.addr p;
              let count =
                (s.Imk_elf.Types.size - Imk_kernel.Image.orc_header_bytes)
                / Imk_kernel.Image.orc_entry_bytes
              in
              Charge.pay ch
                (int_of_float
                   (cm.Cost_model.extab_fixup_ns *. float_of_int (modeled config count))))
      | Vm_config.Orc_skip -> ()));
  charge_page_tables ch;
  Charge.pay ch (int_of_float cm.Cost_model.vmm_entry_ns);
  let orc_fixed =
    match (plan, config.orc) with
    | None, _ -> true
    | Some _, Vm_config.Orc_update -> true
    | Some _, Vm_config.Orc_skip -> false
  in
  {
    Imk_guest.Boot_params.phys_load;
    virt_base = Addr.link_base + delta;
    entry_va = displace elf.Imk_elf.Types.entry + delta;
    mem_bytes = Guest_mem.size mem;
    kernel = Plan_cache.kernel_info plans bplan config.kernel_config;
    kallsyms_fixed = !kallsyms_fixed;
    orc_fixed;
    setup_data_pa =
      (if !setup_written then Some Imk_guest.Boot_params.default_setup_data_pa
       else None);
  }

(* --- bzImage boot --- *)

(* in-monitor half: decode the header (cached per image content) and
   stage the image in guest memory. The header-parse charge is paid per
   boot whether or not the decode was cached. *)
let stage_bzimage ?plans ch (config : Vm_config.t) kernel_bytes mem =
  let cm = Charge.model ch in
  let bplan =
    try
      match plans with
      | Some t -> Plan_cache.bz_plan t ~path:config.kernel_path kernel_bytes
      | None -> Plan_cache.build_bz_plan kernel_bytes
    with Imk_kernel.Bzimage.Malformed m -> fail "bzImage: %s" m
  in
  Charge.pay ch 2_000 (* setup-header parse *);
  if staging_pa + Bytes.length kernel_bytes > Guest_mem.size mem then
    fail "bzImage does not fit in guest memory";
  Guest_mem.write_bytes mem ~pa:staging_pa kernel_bytes;
  charge_page_tables ch;
  Charge.pay ch (int_of_float cm.Cost_model.vmm_entry_ns);
  bplan

(* guest half: control transfers to the bootstrap loader *)
let run_loader ?plans ?choices ch (config : Vm_config.t) bplan mem =
  let rando =
    match config.rando with
    | Vm_config.Rando_off -> Imk_bootstrap.Loader.Loader_off
    | Vm_config.Rando_kaslr -> Imk_bootstrap.Loader.Loader_kaslr
    | Vm_config.Rando_fgkaslr -> Imk_bootstrap.Loader.Loader_fgkaslr
  in
  let policy =
    let base =
      match config.loader with
      | Vm_config.Loader_default -> Imk_bootstrap.Loader.default_policy
      | Vm_config.Loader_stripped -> Imk_bootstrap.Loader.stripped_policy
    in
    { base with
      Imk_bootstrap.Loader.write_setup_data =
        config.kallsyms = Vm_config.Kallsyms_deferred;
      kallsyms_fixup =
        base.Imk_bootstrap.Loader.kallsyms_fixup
        && config.kallsyms = Vm_config.Kallsyms_eager;
    }
  in
  let guest_rng = Imk_entropy.Prng.create ~seed:(Int64.add config.seed 101L) in
  let hooks = Plan_cache.loader_hooks plans bplan in
  try
    Imk_bootstrap.Loader.run ~hooks ?choices ch mem ~bzimage:bplan.Plan_cache.bz
      ~staging_pa ~config:config.kernel_config ~rando ~policy ~rng:guest_rng
  with Imk_bootstrap.Loader.Loader_error m -> fail "bootstrap loader: %s" m

let boot_on ?(inject = fun (_ : string) -> ()) ?plans ?choices ch cache
    (config : Vm_config.t) mem =
  let staged =
    Charge.span ch Trace.In_monitor "in-monitor" (fun () ->
        inject "vmm-init";
        Charge.pay ch config.profile.Profiles.vmm_init_ns;
        Charge.pay ch config.profile.Profiles.io_setup_ns;
        (* device model wiring; block devices need their backing file *)
        List.iter
          (fun device ->
            (match device with
            | Devices.Virtio_blk { image } ->
                if not (Imk_storage.Disk.mem (Imk_storage.Page_cache.disk cache) image) then
                  fail "virtio-blk backing file %s not found" image
            | Devices.Serial | Devices.Virtio_net -> ());
            Charge.pay ch (Devices.monitor_setup_ns config.profile device))
          config.devices;
        let kernel_bytes =
          read_image ch cache config config.kernel_path ~what:"kernel"
        in
        let is_bzimage = not (Imk_elf.Parser.is_elf kernel_bytes) in
        validate_capabilities config ~is_bzimage;
        let phys_limit = setup_boot_info ch cache config mem in
        if is_bzimage then `Bz (stage_bzimage ?plans ch config kernel_bytes mem)
        else
          `Direct
            (direct_boot ?plans ?choices ch cache config kernel_bytes mem
               ~phys_limit))
  in
  (* bzImage boots leave In-Monitor before the loader runs *)
  let params =
    match staged with
    | `Direct p -> p
    | `Bz bplan -> run_loader ?plans ?choices ch config bplan mem
  in
  (* guest driver probes and the rootfs mount are part of the guest's
     boot (a separate top-level Linux Boot span; phase totals sum) *)
  List.iter
    (fun device ->
      Charge.pay_span ch Trace.Linux_boot ("probe-" ^ Devices.name device)
        (Devices.guest_probe_ns device);
      match device with
      | Devices.Virtio_blk { image } -> (
          let sb =
            Devices.blk_read ch cache ~image ~off:0
              ~len:Imk_kernel.Rootfs.superblock_bytes
          in
          try Imk_kernel.Rootfs.mount_check sb
          with Imk_kernel.Rootfs.Corrupt m -> raise (Imk_guest.Runtime.Panic m))
      | Devices.Serial | Devices.Virtio_net -> ())
    config.devices;
  let stats = Imk_guest.Linux_boot.run ch config.kernel_config mem params in
  { config; params; stats; mem }

let boot ?arena ?mem ?inject ?plans ?choices ch cache (config : Vm_config.t) =
  if config.mem_bytes < 32 * 1024 * 1024 then
    fail "guest memory too small (%d bytes)" config.mem_bytes;
  match mem with
  | Some m ->
      (* caller-owned buffer (e.g. an [Arena.with_buffer] bracket): the
         caller's bracket handles the failure path, we use it as-is *)
      if Guest_mem.size m <> config.mem_bytes then
        fail "provided guest memory is %d bytes, config wants %d"
          (Guest_mem.size m) config.mem_bytes;
      boot_on ?inject ?plans ?choices ch cache config m
  | None -> (
      match arena with
      | None ->
          boot_on ?inject ?plans ?choices ch cache config
            (Guest_mem.create ~size:config.mem_bytes)
      | Some a ->
          (* success hands [mem] to the caller (who releases it); a boot
             that raises must return the borrowed buffer itself or the
             arena leaks one buffer per injected fault *)
          let m = Arena.borrow a ~size:config.mem_bytes in
          (try boot_on ?inject ?plans ?choices ch cache config m
           with e ->
             Arena.release a m;
             raise e))
