(** Content-addressed boot plans: parse once, boot many.

    The monitor sees a kernel image before any guest runs, so everything
    derivable from the image bytes alone — the parsed ELF, the decoded
    relocation table, the alloc/function section arrays, image sizes, the
    bzImage header — is a pure function of the image content and can be
    computed once and shared by every subsequent boot of that image
    (the same hoisting asymmetry the paper exploits for randomization
    itself, §4.2, and the snapshot/zygote amortization its §7 points at).

    Entries are keyed by disk path and verified against the image
    {e content}: a physical-identity fast path (the page cache hands every
    boot the same backing [bytes]) falls back to a CRC32 + length check
    when the object is new — so a workspace clone that rebuilt
    byte-identical images still hits, while any content change
    (e.g. an {!Imk_fault.Inject} corruption, which always materializes
    fresh bytes) misses and rebuilds. A corrupt image therefore can never
    observe a stale plan; its parse/decode fails typed on every boot,
    exactly as without the cache, and failed builds are never cached.

    The cache is {e observationally invisible} (DESIGN.md §4): plans are
    deeply immutable, virtual-clock charges are paid per boot from plan
    metadata exactly as the uncached path pays them after parsing, and
    all telemetry, failures and [verify_boot] outcomes are bit-identical
    with the cache on or off, for any [--jobs] fan-out. A single mutex
    guards the table and the memo fields, so one instance may be shared
    across worker domains. *)

type elf_plan = {
  elf : Imk_elf.Types.t;
  alloc : Imk_elf.Types.section list;
      (** SHF_ALLOC sections in file order — the placement work list *)
  fn_sections : (int * int) array;
      (** function sections as (addr, size), sorted — FGKASLR input *)
  image_memsz : int;
  text_bytes : int;
  mutable kinfo :
    (Imk_kernel.Config.t * Imk_guest.Boot_params.kernel_info) option;
      (** memoized [Boot_params.kernel_info_of_elf] keyed by the kernel
          config; owned by the cache lock — use {!kernel_info} *)
}
(** Everything a direct boot derives from the kernel image bytes. The
    [elf] (including every section's [data]) is shared across boots and
    must never be mutated — boots only read it into guest memory. *)

type bz_plan = {
  bz : Imk_kernel.Bzimage.t;
  mutable l_elf : (int * Imk_elf.Types.t) option;
  mutable l_relocs : (int * Imk_elf.Relocation.table) option;
  mutable l_fns : (Imk_elf.Types.t * (int * int) array) option;
  mutable l_kinfo :
    (Imk_elf.Types.t * Imk_kernel.Config.t
    * Imk_guest.Boot_params.kernel_info)
      option;
}
(** A decoded bzImage header plus memos for the bootstrap loader's own
    parse of the decompressed payload. Decompression of the identical
    [bz.payload] object is deterministic and CRC-verified by the codec,
    so the loader-side parse/decode results are content-addressed by
    construction (the [int] keys re-check the payload part lengths).
    The memo fields are owned by the cache lock — use {!loader_hooks}. *)

val build_elf_plan : bytes -> elf_plan
(** Pure plan construction, no cache. Raises [Imk_elf.Types.Malformed]
    exactly as [Imk_elf.Parser.parse] does. *)

val build_bz_plan : bytes -> bz_plan
(** Pure plan construction, no cache. Raises
    [Imk_kernel.Bzimage.Malformed] exactly as [Imk_kernel.Bzimage.decode]
    does. *)

type t

val create : unit -> t

val elf_plan : t -> path:string -> bytes -> elf_plan
(** [elf_plan t ~path bytes] returns the cached plan when [bytes] is
    content-identical to the entry under [path], else builds (and caches)
    a fresh one. Raises like {!build_elf_plan}; failures are not
    cached. *)

val bz_plan : t -> path:string -> bytes -> bz_plan
(** bzImage analogue of {!elf_plan}; raises like {!build_bz_plan}. *)

val relocs : t -> path:string -> bytes -> Imk_elf.Relocation.table
(** Cached [Imk_elf.Relocation.decode]. Raises
    [Imk_elf.Relocation.Bad_table] on corrupt input, uncached. *)

val kernel_info :
  t option ->
  elf_plan ->
  Imk_kernel.Config.t ->
  Imk_guest.Boot_params.kernel_info
(** [kernel_info plans plan config] is
    [Boot_params.kernel_info_of_elf plan.elf config], memoized in the
    plan when [plans] is [Some] (keyed by [config] equality). *)

val loader_hooks : t option -> bz_plan -> Imk_bootstrap.Loader.hooks
(** Hooks for {!Imk_bootstrap.Loader.run} that memoize the loader's
    parse/decode/section-scan of the decompressed payload inside
    [bz_plan]. [None] returns {!Imk_bootstrap.Loader.default_hooks} —
    the uncached per-boot behaviour. *)

val stats : t -> int * int
(** [(hits, builds)] so far — test observability, not telemetry. *)
