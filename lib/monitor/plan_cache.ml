type elf_plan = {
  elf : Imk_elf.Types.t;
  alloc : Imk_elf.Types.section list;
  fn_sections : (int * int) array;
  image_memsz : int;
  text_bytes : int;
  mutable kinfo :
    (Imk_kernel.Config.t * Imk_guest.Boot_params.kernel_info) option;
}

type bz_plan = {
  bz : Imk_kernel.Bzimage.t;
  mutable l_elf : (int * Imk_elf.Types.t) option;
  mutable l_relocs : (int * Imk_elf.Relocation.table) option;
  mutable l_fns : (Imk_elf.Types.t * (int * int) array) option;
  mutable l_kinfo :
    (Imk_elf.Types.t * Imk_kernel.Config.t
    * Imk_guest.Boot_params.kernel_info)
      option;
}

let build_elf_plan bytes =
  let elf = Imk_elf.Parser.parse bytes in
  {
    elf;
    alloc = Imk_randomize.Loadelf.alloc_sections elf;
    fn_sections = Imk_randomize.Loadelf.fn_sections elf;
    image_memsz = Imk_randomize.Loadelf.image_memsz elf;
    text_bytes = Imk_randomize.Loadelf.text_bytes elf;
    kinfo = None;
  }

let build_bz_plan bytes =
  {
    bz = Imk_kernel.Bzimage.decode bytes;
    l_elf = None;
    l_relocs = None;
    l_fns = None;
    l_kinfo = None;
  }

type payload =
  | Pelf of elf_plan
  | Pbz of bz_plan
  | Prelocs of Imk_elf.Relocation.table

type entry = {
  len : int;
  crc : int;
  mutable known : bytes list;
      (* physically distinct, content-identical objects already verified
         against [crc] — the page cache serves each boot the same backing
         store, so this list stays tiny (one per workspace clone) *)
  payload : payload;
}

type t = {
  mu : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable builds : int;
}

let create () =
  { mu = Mutex.create (); entries = Hashtbl.create 16; hits = 0; builds = 0 }

let with_mu t f =
  Mutex.lock t.mu;
  match f () with
  | r ->
      Mutex.unlock t.mu;
      r
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let known_limit = 8

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

type 'a lookup = Hit of 'a | Miss of int * int

(* Identity fast path first: CRC32 of a full-size vmlinux costs more than
   parsing it, so per-boot hashing would be a net loss. The CRC runs only
   when a physically new object shows up under a known path. *)
let lookup t ~path ~bytes ~select =
  let quick =
    with_mu t (fun () ->
        match Hashtbl.find_opt t.entries path with
        | None -> None
        | Some e -> (
            match select e.payload with
            | Some p when List.memq bytes e.known ->
                t.hits <- t.hits + 1;
                Some p
            | _ -> None))
  in
  match quick with
  | Some p -> Hit p
  | None -> (
      let len = Bytes.length bytes in
      let crc = Imk_util.Crc.crc32 bytes 0 len in
      let slow =
        with_mu t (fun () ->
            match Hashtbl.find_opt t.entries path with
            | Some e when e.len = len && e.crc = crc -> (
                match select e.payload with
                | Some p ->
                    if not (List.memq bytes e.known) then
                      e.known <- bytes :: take (known_limit - 1) e.known;
                    t.hits <- t.hits + 1;
                    Some p
                | None -> None)
            | _ -> None)
      in
      match slow with Some p -> Hit p | None -> Miss (len, crc))

let store t ~path ~len ~crc ~bytes payload =
  with_mu t (fun () ->
      (* last writer wins: racing builds of identical content produce
         interchangeable immutable plans, and a content change (fault
         campaign corrupting then restoring an image) simply replaces the
         entry — the CRC check routes every reader to a matching plan *)
      Hashtbl.replace t.entries path { len; crc; known = [ bytes ]; payload };
      t.builds <- t.builds + 1)

let elf_plan t ~path bytes =
  match
    lookup t ~path ~bytes ~select:(function Pelf p -> Some p | _ -> None)
  with
  | Hit p -> p
  | Miss (len, crc) ->
      let p = build_elf_plan bytes in
      store t ~path ~len ~crc ~bytes (Pelf p);
      p

let bz_plan t ~path bytes =
  match
    lookup t ~path ~bytes ~select:(function Pbz p -> Some p | _ -> None)
  with
  | Hit p -> p
  | Miss (len, crc) ->
      let p = build_bz_plan bytes in
      store t ~path ~len ~crc ~bytes (Pbz p);
      p

let relocs t ~path bytes =
  match
    lookup t ~path ~bytes ~select:(function Prelocs r -> Some r | _ -> None)
  with
  | Hit r -> r
  | Miss (len, crc) ->
      let r = Imk_elf.Relocation.decode bytes in
      store t ~path ~len ~crc ~bytes (Prelocs r);
      r

let kernel_info t_opt (p : elf_plan) config =
  match t_opt with
  | None -> Imk_guest.Boot_params.kernel_info_of_elf p.elf config
  | Some t -> (
      let memo =
        with_mu t (fun () ->
            match p.kinfo with
            | Some (c0, ki) when c0 = config -> Some ki
            | _ -> None)
      in
      match memo with
      | Some ki -> ki
      | None ->
          let ki = Imk_guest.Boot_params.kernel_info_of_elf p.elf config in
          with_mu t (fun () -> p.kinfo <- Some (config, ki));
          ki)

let loader_hooks t_opt (p : bz_plan) =
  match t_opt with
  | None -> Imk_bootstrap.Loader.default_hooks
  | Some t ->
      (* The loader hands [parse_vmlinux] the whole decompressed payload
         (vmlinux with the relocation table concatenated after it — the
         zero-copy decode buffer) and [decode_relocs] the relocs part;
         for the cached (pristine) image the codec output is
         deterministic and CRC-verified, so memoizing by part length
         inside this content-addressed plan is sound — a corrupted image
         lands in a different plan (or fails decompression) and never
         sees these memos. *)
      {
        Imk_bootstrap.Loader.parse_vmlinux =
          (fun v ->
            let n = Bytes.length v in
            let memo =
              with_mu t (fun () ->
                  match p.l_elf with
                  | Some (n0, e) when n0 = n -> Some e
                  | _ -> None)
            in
            match memo with
            | Some e -> e
            | None ->
                let e = Imk_elf.Parser.parse v in
                with_mu t (fun () -> p.l_elf <- Some (n, e));
                e);
        decode_relocs =
          (fun r ->
            let n = Bytes.length r in
            let memo =
              with_mu t (fun () ->
                  match p.l_relocs with
                  | Some (n0, tbl) when n0 = n -> Some tbl
                  | _ -> None)
            in
            match memo with
            | Some tbl -> tbl
            | None ->
                let tbl = Imk_elf.Relocation.decode r in
                with_mu t (fun () -> p.l_relocs <- Some (n, tbl));
                tbl);
        fn_sections =
          (fun elf ->
            let memo =
              with_mu t (fun () ->
                  match p.l_fns with
                  | Some (e0, f) when e0 == elf -> Some f
                  | _ -> None)
            in
            match memo with
            | Some f -> f
            | None ->
                let f = Imk_randomize.Loadelf.fn_sections elf in
                with_mu t (fun () -> p.l_fns <- Some (elf, f));
                f);
        kernel_info =
          (fun elf config ->
            let memo =
              with_mu t (fun () ->
                  match p.l_kinfo with
                  | Some (e0, c0, ki) when e0 == elf && c0 = config -> Some ki
                  | _ -> None)
            in
            match memo with
            | Some ki -> ki
            | None ->
                let ki = Imk_guest.Boot_params.kernel_info_of_elf elf config in
                with_mu t (fun () -> p.l_kinfo <- Some (elf, config, ki));
                ki);
      }

let stats t = with_mu t (fun () -> (t.hits, t.builds))
