open Imk_memory
open Imk_vclock

(* A snapshot is the guest's dirty ranges, framed — not a flat copy of the
   whole guest. Everything outside the frames is zero by the Guest_mem
   invariant (a guest starts all-zero and every write is tracked), so the
   frames reconstruct the full image exactly while costing memory and
   copies proportional to what the boot actually wrote. Capture reads
   through the tracker's read-only accessors and leaves it untouched: the
   source guest's next arena scrub stays proportional to its boot, not to
   a whole-guest re-zero. *)
type t = {
  mem_size : int;  (** guest size the frames reconstruct *)
  frames : (int * bytes) list;  (** (pa, data), sorted, non-overlapping *)
  params : Imk_guest.Boot_params.t;
  config : Vm_config.t;
}

let capture (r : Vmm.boot_result) =
  let mem = r.Vmm.mem in
  let frames =
    List.rev
      (Guest_mem.fold_dirty_ranges mem ~init:[] ~f:(fun acc ~lo ~hi ->
           let len = hi - lo in
           (* audited Bytes.create: fully overwritten by the blit below *)
           let data = Bytes.create len in
           Guest_mem.blit_to_bytes mem ~pa:lo ~dst:data ~dst_off:0 ~len;
           (lo, data) :: acc))
  in
  {
    mem_size = Guest_mem.size mem;
    frames;
    params = r.Vmm.params;
    config = r.Vmm.config;
  }

(* --- on-disk format: header + params + dirty-range frames + CRC32
   trailer ---

   Byte-exact serialization so snapshots can live on the simulated disk
   (zygote pools, cross-host migration). Version 2 stores the dirty
   ranges as (pa, len, data) frames instead of the whole guest image —
   the blob shrinks from guest size to bytes actually written. The
   trailing CRC32 covers everything before it: any bit flip or
   truncation fails [load] with the typed [Corrupt] instead of restoring
   garbage into a guest. *)

exception Corrupt of string

let snap_magic = 0x494d4b53 (* "IMKS" *)
let snap_version = 2
let header_bytes = 112

let frames_bytes t =
  List.fold_left (fun acc (_, d) -> acc + 16 + Bytes.length d) 0 t.frames

let encoded_bytes t = header_bytes + 4 + frames_bytes t + 4

let serialize t =
  let module B = Imk_util.Byteio in
  let p = t.params in
  let k = p.Imk_guest.Boot_params.kernel in
  let total = encoded_bytes t in
  let out = Bytes.make total '\000' in
  B.set_u32 out 0 snap_magic;
  B.set_u32 out 4 snap_version;
  B.set_addr out 8 p.Imk_guest.Boot_params.phys_load;
  B.set_addr out 16 p.Imk_guest.Boot_params.virt_base;
  B.set_addr out 24 p.Imk_guest.Boot_params.entry_va;
  B.set_addr out 32 p.Imk_guest.Boot_params.mem_bytes;
  B.set_addr out 40 k.Imk_guest.Boot_params.link_entry_va;
  B.set_addr out 48 k.Imk_guest.Boot_params.link_rodata_va;
  B.set_addr out 56 k.Imk_guest.Boot_params.link_kallsyms_va;
  B.set_addr out 64 k.Imk_guest.Boot_params.link_extab_va;
  B.set_addr out 72
    (match k.Imk_guest.Boot_params.link_orc_va with None -> 0 | Some v -> v);
  B.set_u32 out 80 k.Imk_guest.Boot_params.n_functions;
  B.set_u32 out 84 k.Imk_guest.Boot_params.modeled_functions;
  let flags =
    (if p.Imk_guest.Boot_params.kallsyms_fixed then 1 else 0)
    lor (if p.Imk_guest.Boot_params.orc_fixed then 2 else 0)
    lor (match k.Imk_guest.Boot_params.link_orc_va with
        | Some _ -> 4
        | None -> 0)
    lor
    match p.Imk_guest.Boot_params.setup_data_pa with Some _ -> 8 | None -> 0
  in
  B.set_u32 out 88 flags;
  B.set_addr out 92
    (match p.Imk_guest.Boot_params.setup_data_pa with None -> 0 | Some v -> v);
  B.set_addr out 100 t.mem_size;
  B.set_u32 out header_bytes (List.length t.frames);
  let pos = ref (header_bytes + 4) in
  List.iter
    (fun (pa, data) ->
      let len = Bytes.length data in
      B.set_addr out !pos pa;
      B.set_addr out (!pos + 8) len;
      Bytes.blit data 0 out (!pos + 16) len;
      pos := !pos + 16 + len)
    t.frames;
  B.set_u32 out (total - 4) (Imk_util.Crc.crc32 out 0 (total - 4));
  out

let load ~config b =
  let module B = Imk_util.Byteio in
  let corrupt msg = raise (Corrupt ("Snapshot.load: " ^ msg)) in
  let len = Bytes.length b in
  if len < header_bytes + 8 then corrupt "truncated header";
  if B.get_u32 b 0 <> snap_magic then corrupt "bad magic";
  if B.get_u32 b 4 <> snap_version then corrupt "unsupported version";
  if B.get_u32 b (len - 4) <> Imk_util.Crc.crc32 b 0 (len - 4) then
    corrupt "CRC mismatch";
  let addr off =
    try B.get_addr b off with Invalid_argument m -> corrupt m
  in
  let mem_size = addr 100 in
  if mem_size <= 0 then corrupt "implausible memory size";
  let flags = B.get_u32 b 88 in
  let kernel =
    {
      Imk_guest.Boot_params.link_entry_va = addr 40;
      link_rodata_va = addr 48;
      link_kallsyms_va = addr 56;
      link_extab_va = addr 64;
      link_orc_va = (if flags land 4 <> 0 then Some (addr 72) else None);
      n_functions = B.get_u32 b 80;
      modeled_functions = B.get_u32 b 84;
    }
  in
  let params =
    {
      Imk_guest.Boot_params.phys_load = addr 8;
      virt_base = addr 16;
      entry_va = addr 24;
      mem_bytes = addr 32;
      kernel;
      kallsyms_fixed = flags land 1 <> 0;
      orc_fixed = flags land 2 <> 0;
      setup_data_pa = (if flags land 8 <> 0 then Some (addr 92) else None);
    }
  in
  (* frame walk: every length is validated against the remaining blob
     before it drives a copy, and frames must be sorted, non-overlapping
     and inside the guest — the canonical form [serialize] emits *)
  let nframes = B.get_u32 b header_bytes in
  let data_end = len - 4 in
  let pos = ref (header_bytes + 4) in
  let prev_hi = ref 0 in
  let frames = ref [] in
  for _ = 1 to nframes do
    if !pos + 16 > data_end then corrupt "truncated frame header";
    let pa = addr !pos in
    let flen = addr (!pos + 8) in
    if flen < 0 || pa < !prev_hi || pa > mem_size - flen then
      corrupt "frame outside guest or out of order";
    if flen > data_end - (!pos + 16) then corrupt "truncated frame data";
    frames := (pa, Bytes.sub b (!pos + 16) flen) :: !frames;
    prev_hi := pa + flen;
    pos := !pos + 16 + flen
  done;
  if !pos <> data_end then corrupt "trailing bytes after frames";
  { mem_size; frames = List.rev !frames; params; config }

(* reconstruct a read-only window of the captured image: zeros overlaid
   with the intersecting frames — used by the layout probe, which must
   hash exactly the bytes the old full-image format hashed *)
let read_range t ~pa ~len =
  let out = Bytes.make len '\000' in
  List.iter
    (fun (fpa, data) ->
      let flen = Bytes.length data in
      let lo = max pa fpa and hi = min (pa + len) (fpa + flen) in
      if lo < hi then Bytes.blit data (lo - fpa) out (lo - pa) (hi - lo))
    t.frames;
  out

let layout_seed_of t =
  let text_pa = t.params.Imk_guest.Boot_params.phys_load in
  let probe = max 0 (min (256 * 1024) (t.mem_size - text_pa)) in
  let window = read_range t ~pa:text_pa ~len:probe in
  t.params.Imk_guest.Boot_params.virt_base
  lxor Imk_util.Crc.crc32 window 0 probe

let page = 4096

let restore ch t ~working_set_pages =
  let cm = Charge.model ch in
  Charge.span ch Trace.In_monitor "snapshot-restore" (fun () ->
      (* CoW mapping setup: per-page bookkeeping across the image *)
      let pages = (t.mem_size + page - 1) / page in
      Charge.pay ch
        (int_of_float (cm.Cost_model.pte_write_ns *. float_of_int pages));
      (* first-touch faults of the working set: each fault copies a page *)
      Charge.pay ch
        (Cost_model.memcpy_cost cm ~in_guest:false (working_set_pages * page));
      Charge.pay ch (int_of_float cm.Cost_model.vmm_entry_ns));
  (* the clone itself: in a real CoW restore this is lazy; the simulation
     materializes it so the guest is fully inspectable. Only the frames
     are blitted — the rest of the fresh guest is already zero. *)
  let mem = Guest_mem.create ~size:t.mem_size in
  List.iter (fun (pa, data) -> Guest_mem.write_bytes mem ~pa data) t.frames;
  let stats = Imk_guest.Runtime.verify_boot mem t.params in
  { Vmm.config = t.config; params = t.params; stats; mem }

let verify_restored (r : Vmm.boot_result) =
  Imk_guest.Runtime.verify_boot r.Vmm.mem r.Vmm.params
