open Imk_memory
open Imk_vclock

type t = {
  memory : bytes;  (** full guest image *)
  params : Imk_guest.Boot_params.t;
  config : Vm_config.t;
}

let capture (r : Vmm.boot_result) =
  {
    memory = Bytes.copy (Guest_mem.raw r.Vmm.mem);
    params = r.Vmm.params;
    config = r.Vmm.config;
  }

let encoded_bytes t = Bytes.length t.memory

(* --- on-disk format: header + params + memory image + CRC32 trailer ---

   Byte-exact serialization so snapshots can live on the simulated disk
   (zygote pools, cross-host migration). The trailing CRC32 covers
   everything before it: any bit flip or truncation fails [load] with the
   typed [Corrupt] instead of restoring garbage into a guest. *)

exception Corrupt of string

let snap_magic = 0x494d4b53 (* "IMKS" *)
let snap_version = 1
let header_bytes = 112

let serialize t =
  let module B = Imk_util.Byteio in
  let p = t.params in
  let k = p.Imk_guest.Boot_params.kernel in
  let mem_len = Bytes.length t.memory in
  let out = Bytes.make (header_bytes + mem_len + 4) '\000' in
  B.set_u32 out 0 snap_magic;
  B.set_u32 out 4 snap_version;
  B.set_addr out 8 p.Imk_guest.Boot_params.phys_load;
  B.set_addr out 16 p.Imk_guest.Boot_params.virt_base;
  B.set_addr out 24 p.Imk_guest.Boot_params.entry_va;
  B.set_addr out 32 p.Imk_guest.Boot_params.mem_bytes;
  B.set_addr out 40 k.Imk_guest.Boot_params.link_entry_va;
  B.set_addr out 48 k.Imk_guest.Boot_params.link_rodata_va;
  B.set_addr out 56 k.Imk_guest.Boot_params.link_kallsyms_va;
  B.set_addr out 64 k.Imk_guest.Boot_params.link_extab_va;
  B.set_addr out 72
    (match k.Imk_guest.Boot_params.link_orc_va with None -> 0 | Some v -> v);
  B.set_u32 out 80 k.Imk_guest.Boot_params.n_functions;
  B.set_u32 out 84 k.Imk_guest.Boot_params.modeled_functions;
  let flags =
    (if p.Imk_guest.Boot_params.kallsyms_fixed then 1 else 0)
    lor (if p.Imk_guest.Boot_params.orc_fixed then 2 else 0)
    lor (match k.Imk_guest.Boot_params.link_orc_va with
        | Some _ -> 4
        | None -> 0)
    lor
    match p.Imk_guest.Boot_params.setup_data_pa with Some _ -> 8 | None -> 0
  in
  B.set_u32 out 88 flags;
  B.set_addr out 92
    (match p.Imk_guest.Boot_params.setup_data_pa with None -> 0 | Some v -> v);
  B.set_addr out 100 mem_len;
  Bytes.blit t.memory 0 out header_bytes mem_len;
  B.set_u32 out (header_bytes + mem_len)
    (Imk_util.Crc.crc32 out 0 (header_bytes + mem_len));
  out

let load ~config b =
  let module B = Imk_util.Byteio in
  let corrupt msg = raise (Corrupt ("Snapshot.load: " ^ msg)) in
  let len = Bytes.length b in
  if len < header_bytes + 4 then corrupt "truncated header";
  if B.get_u32 b 0 <> snap_magic then corrupt "bad magic";
  if B.get_u32 b 4 <> snap_version then corrupt "unsupported version";
  if B.get_u32 b (len - 4) <> Imk_util.Crc.crc32 b 0 (len - 4) then
    corrupt "CRC mismatch";
  let addr off =
    try B.get_addr b off with Invalid_argument m -> corrupt m
  in
  let mem_len = addr 100 in
  if header_bytes + mem_len + 4 <> len then corrupt "memory length mismatch";
  let flags = B.get_u32 b 88 in
  let kernel =
    {
      Imk_guest.Boot_params.link_entry_va = addr 40;
      link_rodata_va = addr 48;
      link_kallsyms_va = addr 56;
      link_extab_va = addr 64;
      link_orc_va = (if flags land 4 <> 0 then Some (addr 72) else None);
      n_functions = B.get_u32 b 80;
      modeled_functions = B.get_u32 b 84;
    }
  in
  let params =
    {
      Imk_guest.Boot_params.phys_load = addr 8;
      virt_base = addr 16;
      entry_va = addr 24;
      mem_bytes = addr 32;
      kernel;
      kallsyms_fixed = flags land 1 <> 0;
      orc_fixed = flags land 2 <> 0;
      setup_data_pa = (if flags land 8 <> 0 then Some (addr 92) else None);
    }
  in
  { memory = Bytes.sub b header_bytes mem_len; params; config }

let layout_seed_of t =
  let text_pa = t.params.Imk_guest.Boot_params.phys_load in
  let probe = min (256 * 1024) (Bytes.length t.memory - text_pa) in
  t.params.Imk_guest.Boot_params.virt_base
  lxor Imk_util.Crc.crc32 t.memory text_pa probe

let page = 4096

let restore ch t ~working_set_pages =
  let cm = Charge.model ch in
  Charge.span ch Trace.In_monitor "snapshot-restore" (fun () ->
      (* CoW mapping setup: per-page bookkeeping across the image *)
      let pages = (Bytes.length t.memory + page - 1) / page in
      Charge.pay ch
        (int_of_float (cm.Cost_model.pte_write_ns *. float_of_int pages));
      (* first-touch faults of the working set: each fault copies a page *)
      Charge.pay ch
        (Cost_model.memcpy_cost cm ~in_guest:false (working_set_pages * page));
      Charge.pay ch (int_of_float cm.Cost_model.vmm_entry_ns));
  (* the clone itself: in a real CoW restore this is lazy; the simulation
     materializes it so the guest is fully inspectable *)
  let mem = Guest_mem.create ~size:(Bytes.length t.memory) in
  Guest_mem.write_bytes mem ~pa:0 t.memory;
  let stats = Imk_guest.Runtime.verify_boot mem t.params in
  { Vmm.config = t.config; params = t.params; stats; mem }

let verify_restored (r : Vmm.boot_result) =
  Imk_guest.Runtime.verify_boot r.Vmm.mem r.Vmm.params
