(** The virtual machine monitor — in-monitor (FG)KASLR lives here.

    [boot] runs one microVM boot end to end and is the simulation
    equivalent of executing Firecracker (the paper's measurement starts
    at the [execve] and ends just after the guest's init runs, §5.1):

    - {b Direct boot} (uncompressed vmlinux): the monitor reads the
      kernel one segment at a time directly into guest memory at its
      final location, and — with the paper's modification — parses the
      ELF, shuffles function sections (FGKASLR), chooses a random virtual
      offset from the {e host} entropy pool, handles relocations and
      updates the address-ordered tables, all before VM entry (§4.2).
      The kernel needs no modification; relocation info arrives as the
      extra [relocs_path] argument (Figure 8).
    - {b bzImage boot} (with the bzImage-support patch): the monitor
      stages the image in guest memory and hands control to the
      {!Imk_bootstrap.Loader}, which self-bootstraps exactly as on bare
      metal.

    Both paths end by running {!Imk_guest.Linux_boot}, which verifies the
    loaded kernel's integrity — a boot after a botched randomization
    raises [Imk_guest.Runtime.Panic]. *)

exception Boot_error of string
(** Configuration and capability errors: a flavor asked to do something
    it does not implement (e.g. stock Firecracker given a bzImage),
    randomization without relocation info, an image too large for guest
    memory, or an fgkaslr request against a kernel without function
    sections. *)

exception Transient of string
(** A transient monitor-side failure (the simulation analogue of an EINTR
    during VM setup or a racing resource grab): retrying the same boot
    can succeed. Raised only by an [inject] hook today — the taxonomy
    ([Imk_fault.Failure]) and the supervisor's retry/backoff path key off
    it. *)

type boot_result = {
  config : Vm_config.t;
  params : Imk_guest.Boot_params.t;
  stats : Imk_guest.Runtime.verify_stats;
  mem : Imk_memory.Guest_mem.t;
      (** the booted guest's memory — inspected by the security analysis
          and the LEBench runner *)
}

val staging_pa : int
(** Where bzImages are staged in guest memory before the bootstrap loader
    runs (4 MiB, below the kernel's 16 MiB load address). *)

val boot :
  ?arena:Imk_memory.Arena.t ->
  ?mem:Imk_memory.Guest_mem.t ->
  ?inject:(string -> unit) ->
  ?plans:Plan_cache.t ->
  ?choices:Imk_randomize.Choices.t ->
  Imk_vclock.Charge.t ->
  Imk_storage.Page_cache.t ->
  Vm_config.t ->
  boot_result
(** [boot charge cache config] performs one boot, charging In-Monitor /
    Bootstrap / Decompression / Linux Boot spans to [charge]'s trace.
    Reads images through [cache], so cold-vs-warm behaviour follows the
    cache state the experiment set up.

    [arena] makes the monitor borrow the guest's memory from a recycling
    pool instead of allocating it — the real-allocation analogue of
    Firecracker reusing microVM resources. Virtual-clock charges are
    identical either way. On success, the caller that drops the returned
    [mem] is responsible for [Imk_memory.Arena.release]-ing it; results
    that escape for analysis (LEBench, attacks) should simply never be
    released. If the boot {e raises}, the borrowed buffer is released
    back to the arena here — a failed boot never leaks it.

    [mem] instead supplies a caller-owned all-zero buffer of exactly
    [config.mem_bytes] (typically inside an [Arena.with_buffer] bracket);
    the caller keeps ownership on both the success and failure paths.
    [mem] takes precedence over [arena].

    [inject] is a fault-injection hook called at named phase points
    (currently ["vmm-init"], at the top of the In-Monitor span). It may
    raise — e.g. {!Transient} — to simulate a phase failure; production
    callers simply omit it.

    [plans] consults a shared {!Plan_cache} for the image-derived boot
    plan (parsed ELF, decoded relocs, section arrays, bzImage header)
    instead of re-deriving it per boot. Observationally invisible: every
    virtual-clock charge, telemetry row, failure and [verify_boot]
    outcome is bit-identical with or without it (DESIGN.md §4) — only
    host wall clock changes.

    [choices] pins the randomization decisions to an
    {!Imk_randomize.Choices} schedule: physical base, virtual base and
    FGKASLR shuffle each come from their own per-decision stream instead
    of the principal's historical stream. Entropy {e costs} are still
    charged exactly as before — only where the decisions come from
    changes. This is the differential oracle's lever (DESIGN.md §8) for
    booting the in-monitor and bootstrap paths on identical random
    decisions; production boots omit it. *)
