open Imk_util

exception Malformed of string

type variant = Standard | None_optimized

let variant_name = function
  | Standard -> "standard"
  | None_optimized -> "none-optimized"

type t = {
  variant : variant;
  codec : string;
  kernel_name : string;
  entry : int;
  stub : bytes;
  payload : bytes;
  vmlinux_len : int;
  relocs_len : int;
}

let stub_bytes = 64 * 1024
let header_bytes = 96
let magic = 0x425a494d (* "BZIM" *)
let align_boundary = 128 * 1024 (* MIN_KERNEL_ALIGN / default scale *)

let make_stub seed =
  (* the bootstrap loader program: deterministic semi-compressible code *)
  let rng = Imk_entropy.Prng.create ~seed in
  Bytes.init stub_bytes (fun i ->
      if i land 7 = 0 then Char.chr (Imk_entropy.Prng.next_int rng 256)
      else Char.chr ((i * 131) land 0xff))

let link (built : Image.built) ~codec ~variant =
  if variant = None_optimized && codec <> "none" then
    invalid_arg "Bzimage.link: none-optimized implies codec \"none\"";
  let codec_impl =
    match Imk_compress.Registry.find_opt codec with
    | Some c -> c
    | None -> invalid_arg ("Bzimage.link: unknown codec " ^ codec)
  in
  let raw =
    Bytes.cat built.vmlinux built.relocs_bytes
  in
  let payload = codec_impl.Imk_compress.Codec.compress raw in
  {
    variant;
    codec;
    kernel_name = built.config.Config.name;
    entry = built.elf.Imk_elf.Types.entry;
    stub = make_stub built.config.Config.seed;
    payload;
    vmlinux_len = Bytes.length built.vmlinux;
    relocs_len = Bytes.length built.relocs_bytes;
  }

let variant_code = function Standard -> 0 | None_optimized -> 1

let variant_of_code = function
  | 0 -> Standard
  | 1 -> None_optimized
  | c -> raise (Malformed (Printf.sprintf "bad variant code %d" c))

let payload_offset_of ~variant ~stub_len =
  let base = header_bytes + stub_len in
  match variant with
  | Standard -> base
  | None_optimized -> Imk_memory.Addr.align_up base align_boundary

let payload_file_offset t =
  payload_offset_of ~variant:t.variant ~stub_len:(Bytes.length t.stub)

let encode t =
  let payload_off = payload_file_offset t in
  let total = payload_off + Bytes.length t.payload in
  let out = Bytes.make total '\000' in
  Byteio.set_u32 out 0 magic;
  Byteio.set_u32 out 4 (variant_code t.variant);
  let codec_field = Bytes.make 8 '\000' in
  Byteio.blit_string t.codec codec_field 0;
  Bytes.blit codec_field 0 out 8 8;
  Byteio.set_u32 out 16 header_bytes;
  Byteio.set_u32 out 20 (Bytes.length t.stub);
  Byteio.set_u32 out 24 payload_off;
  Byteio.set_u32 out 28 (Bytes.length t.payload);
  Byteio.set_addr out 32 t.vmlinux_len;
  Byteio.set_addr out 40 t.relocs_len;
  Byteio.set_addr out 48 t.entry;
  let name_field = Bytes.make 32 '\000' in
  Byteio.blit_string
    (String.sub t.kernel_name 0 (min 31 (String.length t.kernel_name)))
    name_field 0;
  Bytes.blit name_field 0 out 56 32;
  Bytes.blit t.stub 0 out header_bytes (Bytes.length t.stub);
  Bytes.blit t.payload 0 out payload_off (Bytes.length t.payload);
  out

let cstr b off len =
  let s = Bytes.sub_string b off len in
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let decode b =
  if Bytes.length b < header_bytes then raise (Malformed "truncated header");
  if Byteio.get_u32 b 0 <> magic then raise (Malformed "bad bzImage magic");
  let variant = variant_of_code (Byteio.get_u32 b 4) in
  let codec = cstr b 8 8 in
  let stub_off = Byteio.get_u32 b 16 in
  let stub_len = Byteio.get_u32 b 20 in
  let payload_off = Byteio.get_u32 b 24 in
  let payload_len = Byteio.get_u32 b 28 in
  let vmlinux_len = Byteio.get_addr b 32 in
  let relocs_len = Byteio.get_addr b 40 in
  let entry = Byteio.get_addr b 48 in
  let kernel_name = cstr b 56 32 in
  if stub_off + stub_len > Bytes.length b || payload_off + payload_len > Bytes.length b
  then raise (Malformed "sections escape the image");
  {
    variant;
    codec;
    kernel_name;
    entry;
    stub = Bytes.sub b stub_off stub_len;
    payload = Bytes.sub b payload_off payload_len;
    vmlinux_len;
    relocs_len;
  }

let unpack_payload_into t ~dst ~dst_off =
  let codec_impl = Imk_compress.Registry.find t.codec in
  let written =
    codec_impl.Imk_compress.Codec.decompress_into t.payload ~dst ~dst_off
  in
  if written <> t.vmlinux_len + t.relocs_len then
    raise (Malformed "payload length does not match header")

let unpack_payload t =
  let codec_impl = Imk_compress.Registry.find t.codec in
  let raw = codec_impl.Imk_compress.Codec.decompress t.payload in
  if Bytes.length raw <> t.vmlinux_len + t.relocs_len then
    raise (Malformed "payload length does not match header");
  ( Bytes.sub raw 0 t.vmlinux_len,
    Bytes.sub raw t.vmlinux_len t.relocs_len )
