(** The bzImage container: bootstrap loader + (optionally compressed)
    kernel + relocation info.

    Mirrors the paper's Figure 2: a bzImage concatenates a small bootstrap
    loader program with a compressed blob holding the kernel ELF and its
    relocation table. Two link variants reproduce §3.3:

    - {!Standard}: the payload is compressed with a chosen codec (the
      paper's bzImage experiments use the six schemes of Figure 3; "none"
      gives the unoptimized compression-none kernel, which must still be
      copied to its run location).
    - {!None_optimized}: the payload is stored uncompressed and the image
      is padded so the embedded kernel lands already aligned to
      MIN_KERNEL_ALIGN at its run address — eliminating both the
      copy-out-of-the-way and the decompression copy.  *)

exception Malformed of string

type variant = Standard | None_optimized

val variant_name : variant -> string

type t = {
  variant : variant;
  codec : string;
  kernel_name : string;
  entry : int;  (** link-time entry VA of the embedded kernel *)
  stub : bytes;  (** the bootstrap loader program *)
  payload : bytes;  (** framed codec output of [vmlinux ‖ relocs] *)
  vmlinux_len : int;  (** uncompressed kernel ELF length *)
  relocs_len : int;  (** uncompressed relocation table length *)
}

val stub_bytes : int
(** Size of the simulated bootstrap loader program (64 KiB). *)

val link : Image.built -> codec:string -> variant:variant -> t
(** [link built ~codec ~variant] packs a built kernel into a bzImage.
    [None_optimized] requires [codec = "none"]; raises
    [Invalid_argument] otherwise. *)

val encode : t -> bytes
(** [encode t] serializes: header, stub, (alignment padding for
    {!None_optimized}), payload. *)

val decode : bytes -> t
(** [decode b] parses {!encode}'s output; raises {!Malformed} on bad
    magic or truncation. *)

val payload_file_offset : t -> int
(** [payload_file_offset t] is where the payload starts in the encoded
    image — what a monitor needs to place the embedded kernel at an
    aligned physical address for the optimized variant. *)

val unpack_payload : t -> bytes * bytes
(** [unpack_payload t] decompresses (when applicable) and splits the
    payload into [(vmlinux, relocs)]. This is the {e data} transformation;
    decompression {e time} is charged by the bootstrap loader simulation.
    Raises [Imk_compress.Codec.Corrupt] on a damaged payload. *)

val unpack_payload_into : t -> dst:bytes -> dst_off:int -> unit
(** [unpack_payload_into t ~dst ~dst_off] decompresses the payload
    straight into [dst] at [dst_off] — exactly
    [vmlinux_len + relocs_len] bytes (vmlinux then relocs, as
    concatenated at link time) with no intermediate allocation; the
    zero-copy form of {!unpack_payload} the bootstrap loader uses.
    Raises [Imk_compress.Codec.Corrupt] on a damaged payload and
    {!Malformed} if the decoded length contradicts the image header.
    On failure [dst] may hold a partial decode inside the window and
    nothing outside it. *)
