(** Guest kernel execution: boot-time integrity verification.

    The honesty mechanism of the whole reproduction (DESIGN.md §4.2): the
    "kernel" boots by walking its own pointers. Starting from the entry
    point it follows every call site — decoding the three relocation-site
    kinds exactly as encoded — and checks that each target address lands
    on the header magic of the expected function. A single missed,
    double-applied or mis-displaced relocation sends a pointer into
    filler bytes and raises {!Panic}, the analogue of the kernel crashing
    during boot. The rodata pointer table, the exception table and (when
    trusted) kallsyms and ORC are verified the same way. *)

exception Panic of string
(** The guest kernel crashed: a pointer did not land where it should. *)

type verify_stats = {
  functions_visited : int;
  sites_verified : int;
  rodata_verified : int;
  extab_verified : int;
  kallsyms_verified : int;  (** 0 when kallsyms was left stale *)
  orc_verified : int;  (** 0 when the table is absent or stale *)
}

val fn_layout : Imk_memory.Guest_mem.t -> Boot_params.t -> int array
(** [fn_layout mem params] is the per-function randomized virtual address
    (index = function id), recovered by the same pointer walk
    {!verify_boot} performs. Two boots landed every function in the same
    place iff their layouts are equal — the differential oracle's
    (DESIGN.md §8) view of "same FGKASLR shuffle". Raises {!Panic} on a
    mis-loaded kernel, like verification. *)

val verify_boot : Imk_memory.Guest_mem.t -> Boot_params.t -> verify_stats
(** [verify_boot mem params] walks the whole kernel. The call graph is
    strongly connected, so [functions_visited] must equal
    [params.kernel.n_functions]; anything less means unreachable
    (mis-loaded) code and raises {!Panic}. Verification is free on the
    virtual clock: it stands for execution whose time is already modelled
    by {!Linux_boot}. *)

val read_fn_header : Imk_memory.Guest_mem.t -> Boot_params.t -> va:int -> int * int * int
(** [read_fn_header mem params ~va] returns [(id, n_sites, size)] after
    checking the magic at [va]; raises {!Panic} on a mismatch. Exposed
    for the attack simulator, which probes addresses the same way. *)

val fn_at : Imk_memory.Guest_mem.t -> Boot_params.t -> va:int -> int option
(** [fn_at mem params ~va] is the id of the function whose header starts
    exactly at [va], if the magic matches — a non-raising probe. *)
