open Imk_memory
open Imk_kernel

exception Panic of string

let panic fmt = Printf.ksprintf (fun s -> raise (Panic s)) fmt

type verify_stats = {
  functions_visited : int;
  sites_verified : int;
  rodata_verified : int;
  extab_verified : int;
  kallsyms_verified : int;
  orc_verified : int;
}

(* The walk reads tens of thousands of small records per boot; each goes
   through Guest_mem's bounds-checked scalar accessors directly instead
   of materializing a fresh [bytes] per record — verification is not on
   the virtual clock, so this is pure host-time savings with identical
   panic behavior (any access off the guest's memory still faults). *)

(* Some records are wider than the fields read from them; touching the
   last byte keeps the old whole-record bounds semantics of read_bytes. *)
let probe_end mem ~pa ~len = ignore (Guest_mem.get_u8 mem ~pa:(pa + len - 1))

let read_fn_header mem params ~va =
  let pa = Boot_params.va_to_pa params va in
  let magic, id, n_sites, size =
    try
      probe_end mem ~pa ~len:Function_graph.fn_header_bytes;
      (* raw 64-bit read: a bad pointer may land on arbitrary bytes *)
      let magic = Guest_mem.get_i64 mem ~pa in
      let id = Guest_mem.get_u32 mem ~pa:(pa + 8) in
      let n_sites = Guest_mem.get_u32 mem ~pa:(pa + 12) in
      let size = Guest_mem.get_u32 mem ~pa:(pa + 16) in
      (magic, id, n_sites, size)
    with Guest_mem.Fault m -> panic "function header at va %#x: %s" va m
  in
  if magic <> Int64.of_int (Function_graph.fn_magic id) then
    panic "bad function magic at va %#x (claims id %d)" va id;
  (id, n_sites, size)

let fn_at mem params ~va =
  let pa = Boot_params.va_to_pa params va in
  match
    probe_end mem ~pa ~len:Function_graph.fn_header_bytes;
    let magic = Guest_mem.get_i64 mem ~pa in
    let id = Guest_mem.get_u32 mem ~pa:(pa + 8) in
    (magic, id)
  with
  | exception Guest_mem.Fault _ -> None
  | magic, id ->
      if magic = Int64.of_int (Function_graph.fn_magic id) then Some id
      else None

(* [what] is built lazily: it is hot-loop metadata that only matters on
   the panic path *)
let check_fn mem params ~va ~expect_id ~what =
  let id, _, _ = read_fn_header mem params ~va in
  if id <> expect_id then
    panic "%s: va %#x holds function %d, expected %d" (what ()) va id expect_id

let target_va_of_site kind value =
  match kind with
  | Imk_elf.Relocation.Abs64 -> value
  | Imk_elf.Relocation.Abs32 -> (
      try Addr.va_of_low32 value
      with Invalid_argument _ -> panic "abs32 site holds non-kernel value %#x" value)
  | Imk_elf.Relocation.Inv32 -> Addr.inverse_base - value

let walk_functions mem params =
  let n = params.Boot_params.kernel.Boot_params.n_functions in
  let visited = Array.make n false in
  let fn_va = Array.make n (-1) in
  let queue = Queue.create () in
  let sites = ref 0 in
  Queue.add params.Boot_params.entry_va queue;
  while not (Queue.is_empty queue) do
    let va = Queue.pop queue in
    let id, n_sites, _size = read_fn_header mem params ~va in
    if id < 0 || id >= n then panic "function id %d out of range at %#x" id va;
    if not visited.(id) then begin
      visited.(id) <- true;
      fn_va.(id) <- va;
      for k = 0 to n_sites - 1 do
        let site_va =
          va + Function_graph.fn_header_bytes + (k * Function_graph.site_bytes)
        in
        let site_pa = Boot_params.va_to_pa params site_va in
        let kind, target_id, value =
          try
            let kind =
              Image.site_kind_of_code (Guest_mem.get_u8 mem ~pa:site_pa)
            in
            let target_id = Guest_mem.get_u32 mem ~pa:(site_pa + 4) in
            let value =
              match kind with
              | Imk_elf.Relocation.Abs64 ->
                  Guest_mem.get_addr mem ~pa:(site_pa + 8)
              | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
                  Guest_mem.get_u32 mem ~pa:(site_pa + 8)
            in
            (kind, target_id, value)
          with Guest_mem.Fault m -> panic "call site at va %#x: %s" site_va m
        in
        let target_va = target_va_of_site kind value in
        check_fn mem params ~va:target_va ~expect_id:target_id
          ~what:(fun () ->
            Printf.sprintf "call from fn %d via %s" id
              (Imk_elf.Relocation.kind_name kind));
        incr sites;
        if target_id >= 0 && target_id < n && not visited.(target_id) then
          Queue.add target_va queue
      done
    end
  done;
  let count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 visited in
  if count <> n then
    panic "only %d of %d functions reachable after boot" count n;
  (count, !sites, fn_va)

let verify_rodata mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_rodata_va + delta in
  let pa = Boot_params.va_to_pa params va in
  let count =
    try
      probe_end mem ~pa ~len:Image.rodata_header_bytes;
      Guest_mem.get_u32 mem ~pa
    with Guest_mem.Fault m -> panic "rodata at va %#x: %s" va m
  in
  for k = 0 to count - 1 do
    let entry_va = va + Image.rodata_header_bytes + (k * Image.rodata_entry_bytes) in
    let entry_pa = Boot_params.va_to_pa params entry_va in
    let ptr, id =
      try
        probe_end mem ~pa:entry_pa ~len:Image.rodata_entry_bytes;
        let ptr = Guest_mem.get_addr mem ~pa:entry_pa in
        let id = Guest_mem.get_u32 mem ~pa:(entry_pa + 8) in
        (ptr, id)
      with Guest_mem.Fault m -> panic "rodata entry at va %#x: %s" entry_va m
    in
    check_fn mem params ~va:ptr ~expect_id:id ~what:(fun () -> "rodata pointer")
  done;
  count

let verify_kallsyms mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_kallsyms_va + delta in
  let pa = Boot_params.va_to_pa params va in
  let base, count =
    try
      probe_end mem ~pa ~len:Image.kallsyms_header_bytes;
      let base = Guest_mem.get_addr mem ~pa in
      let count = Guest_mem.get_u32 mem ~pa:(pa + 8) in
      (base, count)
    with Guest_mem.Fault m -> panic "kallsyms at va %#x: %s" va m
  in
  if base <> Addr.kmap_base + delta then
    panic "kallsyms base %#x not relocated (expected %#x)" base
      (Addr.kmap_base + delta);
  let prev = ref (-1) in
  for k = 0 to count - 1 do
    let entry_va = va + Image.kallsyms_header_bytes + (k * Image.kallsyms_entry_bytes) in
    let entry_pa = Boot_params.va_to_pa params entry_va in
    let off, id =
      try
        let off = Guest_mem.get_u32 mem ~pa:entry_pa in
        let id = Guest_mem.get_u32 mem ~pa:(entry_pa + 4) in
        (off, id)
      with Guest_mem.Fault m -> panic "kallsyms entry at va %#x: %s" entry_va m
    in
    if off <= !prev then panic "kallsyms not sorted at entry %d" k;
    prev := off;
    check_fn mem params ~va:(base + off) ~expect_id:id
      ~what:(fun () -> "kallsyms symbol")
  done;
  count

let verify_extab mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_extab_va + delta in
  let pa = Boot_params.va_to_pa params va in
  let count =
    try
      probe_end mem ~pa ~len:Image.extab_header_bytes;
      Guest_mem.get_u32 mem ~pa
    with Guest_mem.Fault m -> panic "extab at va %#x: %s" va m
  in
  let prev = ref min_int in
  for k = 0 to count - 1 do
    let entry_va = va + Image.extab_header_bytes + (k * Image.extab_entry_bytes) in
    let entry_pa = Boot_params.va_to_pa params entry_va in
    let fault_disp, handler_disp, fault_fn, handler_fn, fault_off =
      try
        probe_end mem ~pa:entry_pa ~len:Image.extab_entry_bytes;
        let fault_disp = Guest_mem.get_u32_signed mem ~pa:entry_pa in
        let handler_disp = Guest_mem.get_u32_signed mem ~pa:(entry_pa + 4) in
        let fault_fn = Guest_mem.get_u32 mem ~pa:(entry_pa + 8) in
        let handler_fn = Guest_mem.get_u32 mem ~pa:(entry_pa + 12) in
        let fault_off = Guest_mem.get_u32 mem ~pa:(entry_pa + 16) in
        (fault_disp, handler_disp, fault_fn, handler_fn, fault_off)
      with Guest_mem.Fault m -> panic "extab entry at va %#x: %s" entry_va m
    in
    let fault_va = entry_va + fault_disp in
    let handler_va = entry_va + 4 + handler_disp in
    (* non-strict: distinct entries may share a fault address *)
    if fault_va < !prev then panic "extab not sorted at entry %d" k;
    prev := fault_va;
    check_fn mem params ~va:(fault_va - fault_off) ~expect_id:fault_fn
      ~what:(fun () -> "extab fault site");
    check_fn mem params ~va:handler_va ~expect_id:handler_fn
      ~what:(fun () -> "extab handler")
  done;
  count

let verify_orc mem params =
  match params.Boot_params.kernel.Boot_params.link_orc_va with
  | None -> 0
  | Some link_va ->
      if not params.Boot_params.orc_fixed then 0
      else begin
        let delta = Boot_params.delta params in
        let va = link_va + delta in
        let pa = Boot_params.va_to_pa params va in
        let count =
          try
            probe_end mem ~pa ~len:Image.orc_header_bytes;
            Guest_mem.get_u32 mem ~pa
          with Guest_mem.Fault m -> panic "orc at va %#x: %s" va m
        in
        let prev = ref min_int in
        for k = 0 to count - 1 do
          let entry_va = va + Image.orc_header_bytes + (k * Image.orc_entry_bytes) in
          let entry_pa = Boot_params.va_to_pa params entry_va in
          let ip_disp =
            try
              probe_end mem ~pa:entry_pa ~len:Image.orc_entry_bytes;
              Guest_mem.get_u32_signed mem ~pa:entry_pa
            with Guest_mem.Fault m -> panic "orc entry at va %#x: %s" entry_va m
          in
          let ip_va = entry_va + ip_disp in
          if ip_va < !prev then panic "orc not sorted at entry %d" k;
          prev := ip_va
        done;
        count
      end

let fn_layout mem params =
  let _, _, fn_va = walk_functions mem params in
  fn_va

let verify_boot mem params =
  let functions_visited, sites_verified, _fn_va = walk_functions mem params in
  let rodata_verified = verify_rodata mem params in
  let extab_verified = verify_extab mem params in
  let kallsyms_verified =
    if params.Boot_params.kallsyms_fixed then verify_kallsyms mem params else 0
  in
  let orc_verified = verify_orc mem params in
  {
    functions_visited;
    sites_verified;
    rodata_verified;
    extab_verified;
    kallsyms_verified;
    orc_verified;
  }
