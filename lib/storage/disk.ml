type t = {
  files : (string, bytes) Hashtbl.t;
  faults : (string, bytes -> bytes) Hashtbl.t;
}

let create () = { files = Hashtbl.create 16; faults = Hashtbl.create 4 }
let add t ~name data = Hashtbl.replace t.files name data

let find t name =
  match Hashtbl.find_opt t.files name with
  | None -> raise Not_found
  | Some b -> (
      match Hashtbl.find_opt t.faults name with
      | None -> b
      (* the fault sees a private copy: stored images are shared (other
         disks may alias the same bytes), so a corrupting fault must
         never mutate the backing store *)
      | Some f -> f (Bytes.copy b))

let set_fault t ~name f = Hashtbl.replace t.faults name f
let clear_fault t ~name = Hashtbl.remove t.faults name

let mem t name = Hashtbl.mem t.files name
let size t name = Bytes.length (find t name)
let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files []
