type t = { disk : Disk.t; cached : (string, unit) Hashtbl.t }

let create disk = { disk; cached = Hashtbl.create 16 }
let clone t = { disk = t.disk; cached = Hashtbl.copy t.cached }

let read t name =
  let contents = Disk.find t.disk name in
  let was_cached = Hashtbl.mem t.cached name in
  Hashtbl.replace t.cached name ();
  (contents, was_cached)

let warm t name =
  if Disk.mem t.disk name then Hashtbl.replace t.cached name ()
  else raise Not_found

let drop_caches t = Hashtbl.reset t.cached
let disk t = t.disk
let is_cached t name = Hashtbl.mem t.cached name
