(** The host page cache (whole-file granularity).

    The paper's methodology warms the cache by booting each kernel five
    times and, for the cold-cache experiments, drops pagecache/dentries/
    inodes before each boot (§2.2). Reads through this module report
    whether they hit the cache, so the boot path can charge SSD or memcpy
    rates accordingly; a read also populates the cache, as in Linux. *)

type t

val create : Disk.t -> t

val clone : t -> t
(** [clone t] is an independent cache with the same warm set, sharing the
    backing disk. The parallel boot harness hands each worker domain its
    own clone: cache state is per-host-process in real life, but the
    cache's [Hashtbl] is not thread-safe, and per-worker clones taken
    after a priming boot make parallel runs byte-for-byte deterministic. *)

val read : t -> string -> bytes * bool
(** [read t name] returns [(contents, was_cached)] and marks the file
    cached. Raises [Not_found] for unknown files. *)

val warm : t -> string -> unit
(** [warm t name] pre-populates the cache (the five warm-up boots). *)

val drop_caches : t -> unit
(** [drop_caches t] empties the cache — the cold-cache protocol. *)

val is_cached : t -> string -> bool

val disk : t -> Disk.t
(** The backing disk (for existence checks that must not populate the
    cache). *)
