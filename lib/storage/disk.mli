(** The host's storage: named immutable images (kernels, relocs files,
    rootfs). Reads go through {!Page_cache}, which decides whether a read
    is served from SSD or memory — the cached/uncached distinction at the
    heart of the paper's Figure 4. *)

type t

val create : unit -> t

val add : t -> name:string -> bytes -> unit
(** [add t ~name data] stores an image. Replaces any previous image of the
    same name (and the page cache must be invalidated by the caller —
    {!Page_cache.drop_caches} — as a rewritten file's cached pages are
    stale). *)

val find : t -> string -> bytes
(** [find t name] returns the image contents (shared, do not mutate).
    Raises [Not_found]. When a read fault is registered for [name]
    ({!set_fault}), the fault function is applied to a private copy and
    its result returned — the stored image itself is never mutated. *)

val set_fault : t -> name:string -> (bytes -> bytes) -> unit
(** [set_fault t ~name f] makes every subsequent read of [name] return
    [f (Bytes.copy stored)] — a deterministic read-corruption model
    (flaky medium, torn snapshot) for fault-injection campaigns. [f] must
    be pure: reads repeat, and repeatability is what keeps campaigns
    bit-identical across [--jobs] values. Replaces any previous fault on
    [name]. *)

val clear_fault : t -> name:string -> unit
(** Remove the read fault on [name], if any. *)

val mem : t -> string -> bool
val size : t -> string -> int
val names : t -> string list
