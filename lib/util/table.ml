type row = Cells of string list | Rule

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than headers";
  let padded =
    if k = n then cells else cells @ List.init (n - k) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows
let headers t = t.headers

let rows t =
  List.rev
    (List.filter_map (function Cells c -> Some c | Rule -> None) t.rows)

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad_left s w = String.make (w - String.length s) ' ' ^ s in
  let pad_right s w = s ^ String.make (w - String.length s) ' ' in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        (* first column is labels: left-aligned; the rest right-aligned *)
        let s = if i = 0 then pad_right c widths.(i) else pad_left c widths.(i) in
        Buffer.add_string buf s)
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)
