type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p <= 0. then sorted.(0)
  else if p >= 100. then sorted.(n - 1)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let summarize_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: no samples";
  (* NaN poisons every moment and breaks the sort's total order;
     infinities make mean/stddev meaningless. A non-finite sample is a
     measurement bug upstream — refuse it rather than average it. *)
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Stats.summarize: non-finite sample")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0. xs in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  {
    n;
    mean;
    min = sorted.(0);
    max = sorted.(n - 1);
    stddev = sqrt var;
    p50 = percentile sorted 50.;
    p90 = percentile sorted 90.;
    p99 = percentile sorted 99.;
  }

let summarize xs = summarize_array (Array.of_list xs)

(* the already-sorted variant exists for hot telemetry paths that sort
   millions of integer-valued samples with a counting/radix pass:
   [summarize_array]'s [Array.sort Float.compare] pays a closure call
   per comparison and dominates entire fleet cells. Order is verified —
   a misordered input would silently corrupt every quantile. *)
let summarize_sorted xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: no samples";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Stats.summarize: non-finite sample")
    xs;
  for i = 1 to n - 1 do
    if xs.(i - 1) > xs.(i) then
      invalid_arg "Stats.summarize_sorted: samples not ascending"
  done;
  let sum = Array.fold_left ( +. ) 0. xs in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  {
    n;
    mean;
    min = xs.(0);
    max = xs.(n - 1);
    stddev = sqrt var;
    p50 = percentile xs 50.;
    p90 = percentile xs 90.;
    p99 = percentile xs 99.;
  }

let empty =
  { n = 0; mean = 0.; min = 0.; max = 0.; stddev = 0.; p50 = 0.; p90 = 0.; p99 = 0. }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: no samples"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let ratio a b =
  if b = 0. then invalid_arg "Stats.ratio: division by zero" else a /. b

let pct_change base v =
  if base = 0. then invalid_arg "Stats.pct_change: zero base"
  else (v -. base) /. base *. 100.

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f p50=%.3f" s.n
    s.mean s.min s.max s.stddev s.p50
