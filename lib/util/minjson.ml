(* Minimal JSON reader for the repo's own machine-written artifacts
   (BENCH_<exp>.json). Strict where it matters for round-tripping the
   telemetry writer's output; not a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "Minjson: expected '%c' at %d, found '%c'" ch c.pos x
  | None -> fail "Minjson: expected '%c' at %d, found end of input" ch c.pos

let parse_literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then (
    c.pos <- c.pos + n;
    v)
  else fail "Minjson: bad literal at %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "Minjson: unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "Minjson: unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  fail "Minjson: truncated \\u escape";
                let hex = String.sub c.s c.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> fail "Minjson: bad \\u escape %s" hex
                in
                c.pos <- c.pos + 4;
                (* the writer only emits \u for control chars; decode the
                   Latin-1 range and refuse anything needing multi-byte
                   UTF-8 (it cannot round-trip through this reader) *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else fail "Minjson: unsupported \\u%s beyond Latin-1" hex
            | e -> fail "Minjson: bad escape '\\%c'" e);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub c.s start (c.pos - start) in
  match float_of_string_opt lit with
  | Some v when Float.is_finite v -> Num v
  | Some _ -> fail "Minjson: non-finite number %s" lit
  | None -> fail "Minjson: bad number %S at %d" lit start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "Minjson: empty input"
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> fail "Minjson: unexpected '%c' at %d" ch c.pos

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then (
    advance c;
    Obj [])
  else
    let rec members acc =
      skip_ws c;
      let key = parse_string_body c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          members ((key, v) :: acc)
      | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail "Minjson: expected ',' or '}' at %d" c.pos
    in
    members []

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then (
    advance c;
    Arr [])
  else
    let rec elements acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          elements (v :: acc)
      | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
      | _ -> fail "Minjson: expected ',' or ']' at %d" c.pos
    in
    elements []

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "Minjson: trailing garbage at %d" c.pos;
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> fail "Minjson: missing member %S" key

let to_float = function
  | Num f -> f
  | _ -> fail "Minjson: expected number"

let to_int v =
  let f = to_float v in
  let i = int_of_float f in
  if float_of_int i <> f then fail "Minjson: expected integer, got %g" f;
  i

let to_string = function
  | Str s -> s
  | _ -> fail "Minjson: expected string"

let to_list = function
  | Arr l -> l
  | _ -> fail "Minjson: expected array"
