(** Descriptive statistics for benchmark runs.

    The paper reports the average of 100 boots with min/max error bars
    (§5.1); [summary] captures exactly that, plus stddev and percentiles
    for the extended analyses. *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;
  min : float;
  max : float;
  stddev : float;  (** population standard deviation *)
  p50 : float;  (** median *)
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** [summarize xs] computes a [summary] of the samples. [stddev] is the
    population standard deviation (divide by [n], not [n - 1]) — the
    samples are the whole run set, not a draw from a larger one. Raises
    [Invalid_argument] on the empty list and on any non-finite sample
    (NaN or infinity): a non-finite measurement is an upstream bug and
    must not be averaged into telemetry. *)

val summarize_array : float array -> summary
(** [summarize_array xs] is [summarize] over an array (not modified). *)

val summarize_sorted : float array -> summary
(** [summarize_sorted xs] is [summarize_array xs] for an [xs] the caller
    has already sorted ascending, skipping the internal comparison sort.
    Hot paths that sort large integer-valued samples with a radix pass
    (e.g. fleet SLO telemetry) use this to avoid paying
    [Array.sort Float.compare]'s closure-per-comparison cost twice.
    Raises [Invalid_argument] if [xs] is empty, contains a non-finite
    sample, or is not ascending. (Moments are accumulated in array
    order, so the result can differ from [summarize_array] on the
    unsorted array by float-rounding in [mean]/[stddev] only.) *)

val empty : summary
(** [empty] is the summary of a phase with no samples: [n = 0] and every
    moment zero. Reported instead of fabricating a fake [0.] sample when
    a boot path never enters a phase (e.g. decompression on a direct
    boot). Check [n] before treating the moments as measurements. *)

val mean : float list -> float
(** [mean xs] is the arithmetic mean. Raises [Invalid_argument] on []. *)

val percentile : float array -> float -> float
(** [percentile sorted p] reads percentile [p] (in [0,100]) from an array
    that is already sorted ascending, using linear interpolation. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b]; raises [Invalid_argument] if [b = 0.]. *)

val pct_change : float -> float -> float
(** [pct_change base v] is the percentage change of [v] relative to [base],
    e.g. [pct_change 100. 104. = 4.]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Pretty-printer used in experiment reports. *)
