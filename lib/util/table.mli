(** Plain-text table rendering for experiment reports.

    [bench/main.exe] prints one table per reproduced figure; this module
    keeps the formatting uniform (left-aligned first column, right-aligned
    numeric columns, a rule under the header). *)

type t

val create : headers:string list -> t
(** [create ~headers] starts an empty table with the given column
    headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal separator row. *)

val headers : t -> string list
(** [headers t] returns the column headers, for consumers that export the
    table (e.g. the bench telemetry JSON) rather than render it. *)

val rows : t -> string list list
(** [rows t] returns the data rows in insertion order, rules excluded.
    Each row has exactly as many cells as there are headers. *)

val render : t -> string
(** [render t] lays the table out with each column as wide as its widest
    cell and returns the final string (including a trailing newline). *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)
