let crc_table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xedb88320 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

(* Slice-by-8 tables, flattened into one 8*256 array: slot [k*256 + v] is
   the CRC contribution of byte value [v] processed [k] positions before
   the end of an 8-byte group — T0 is the classic byte table, and
   T{k}[v] = T0[T{k-1}[v] & 0xff] ^ (T{k-1}[v] >> 8) extends it one zero
   byte at a time. One flat array keeps every lookup in a single cache-
   friendly block and makes the index bound obvious: k*256 + (x & 0xff)
   < 2048 for k <= 7. *)
let slice_tables =
  lazy
    (let t0 = Lazy.force crc_table in
     let t = Array.make (8 * 256) 0 in
     Array.blit t0 0 t 0 256;
     for k = 1 to 7 do
       for v = 0 to 255 do
         let prev = t.(((k - 1) * 256) + v) in
         t.((k * 256) + v) <- t0.(prev land 0xff) lxor (prev lsr 8)
       done
     done;
     t)

(* The byte-at-a-time reference: the checked loop [crc32] is pinned to by
   the qcheck differential suite, and the head/tail handler for ranges the
   word loop cannot cover. *)
let crc32_ref ?(init = 0) b off len =
  let t = Lazy.force crc_table in
  let c = ref (init lxor 0xffffffff) in
  for i = off to off + len - 1 do
    let idx = (!c lxor Char.code (Bytes.get b i)) land 0xff in
    c := t.(idx) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

external unsafe_get_64 : bytes -> int -> int64 = "%caml_bytes_get64u"

let crc32 ?(init = 0) b off len =
  if len < 8 || Sys.big_endian then crc32_ref ~init b off len
  else begin
    (* unsafe-after-validation (DESIGN.md §4.7): this single check proves
       every access below. The word loop reads 8 bytes at [i] for
       i in [off, off+len-7), so the last byte read is at most
       off+len-1 < Bytes.length b; table indices are k*256 + (byte)
       with k <= 7 and byte in [0,255], all < Array.length t = 2048. *)
    if off < 0 || len < 0 || off > Bytes.length b - len then
      invalid_arg "Crc.crc32";
    let t = Lazy.force slice_tables in
    let c = ref (init lxor 0xffffffff) in
    let i = ref off in
    let stop = off + len in
    let wstop = stop - 7 in
    while !i < wstop do
      let w = unsafe_get_64 b !i in
      (* little-endian word: the low half carries the first four message
         bytes, which absorb the current 32-bit CRC register.
         [Int64.to_int] keeps bits 0..62, so the high half comes from a
         logical shift (bit 63 matters) and the low half from a mask. *)
      let x = !c lxor (Int64.to_int w land 0xffff_ffff) in
      let hi = Int64.to_int (Int64.shift_right_logical w 32) in
      c :=
        Array.unsafe_get t ((7 * 256) + (x land 0xff))
        lxor Array.unsafe_get t ((6 * 256) + ((x lsr 8) land 0xff))
        lxor Array.unsafe_get t ((5 * 256) + ((x lsr 16) land 0xff))
        lxor Array.unsafe_get t ((4 * 256) + (x lsr 24))
        lxor Array.unsafe_get t ((3 * 256) + (hi land 0xff))
        lxor Array.unsafe_get t ((2 * 256) + ((hi lsr 8) land 0xff))
        lxor Array.unsafe_get t (256 + ((hi lsr 16) land 0xff))
        lxor Array.unsafe_get t (hi lsr 24);
      i := !i + 8
    done;
    (* tail (< 8 bytes): hand the raw register to the reference byte loop,
       undoing its entry xor so the two loops compose exactly *)
    crc32_ref ~init:(!c lxor 0xffffffff) b !i (stop - !i)
  end

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b 0 (Bytes.length b)

let adler32 ?(init = 1) b off len =
  let base = 65521 in
  let a = ref (init land 0xffff) and bsum = ref ((init lsr 16) land 0xffff) in
  for i = off to off + len - 1 do
    a := (!a + Char.code (Bytes.get b i)) mod base;
    bsum := (!bsum + !a) mod base
  done;
  (!bsum lsl 16) lor !a
