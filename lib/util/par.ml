(* A fixed-size worker pool on OCaml 5 domains, hand-rolled on Mutex so
   the repo stays dependency-free. Tasks are dealt out of a shared
   chunked queue; results land in a per-task slot, so no ordering
   information is lost to scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

let sequential tasks f =
  if tasks = 0 then [||]
  else begin
    (* explicit loop: Array.init's evaluation order is unspecified, and
       callers rely on task order for deterministic side effects *)
    let first = f ~worker:0 0 in
    let out = Array.make tasks first in
    for i = 1 to tasks - 1 do
      out.(i) <- f ~worker:0 i
    done;
    out
  end

let map_tasks ?(jobs = 1) ~tasks f =
  if tasks < 0 then invalid_arg "Par.map_tasks: negative task count";
  (* never spawn more domains than the runtime has cores for: OCaml 5
     minor collections are stop-the-world barriers across every domain,
     and domains beyond the core count multiply barrier latency (each
     descheduled domain must be rescheduled just to reach the barrier)
     without adding any parallelism. Results are stored per task slot
     either way, so the clamp changes wall clock only. *)
  let jobs = min jobs (max 1 (Domain.recommended_domain_count ())) in
  if jobs <= 1 || tasks <= 1 then sequential tasks f
  else begin
    let jobs = min jobs tasks in
    let results = Array.make tasks None in
    let queue = Mutex.create () in
    let next = ref 0 in
    let failed = ref None in
    (* chunking amortizes the lock without starving the tail: a few
       chunks per worker keeps every domain busy until the queue drains *)
    let chunk = max 1 (tasks / (jobs * 4)) in
    let take () =
      Mutex.lock queue;
      let r =
        if Option.is_some !failed || !next >= tasks then None
        else begin
          let lo = !next in
          let hi = min tasks (lo + chunk) in
          next := hi;
          Some (lo, hi)
        end
      in
      Mutex.unlock queue;
      r
    in
    let fail exn bt =
      Mutex.lock queue;
      if Option.is_none !failed then failed := Some (exn, bt);
      Mutex.unlock queue
    in
    let worker w =
      let rec loop () =
        match take () with
        | None -> ()
        | Some (lo, hi) ->
            (try
               for i = lo to hi - 1 do
                 results.(i) <- Some (f ~worker:w i)
               done
             with exn -> fail exn (Printexc.get_raw_backtrace ()));
            loop ()
      in
      loop ()
    in
    let domains =
      Array.init jobs (fun w -> Domain.spawn (fun () -> worker w))
    in
    Array.iter Domain.join domains;
    (match !failed with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Par.map_tasks: worker dropped a task")
      results
  end
