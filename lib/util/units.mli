(** Human-readable formatting of byte sizes and durations.

    The virtual clock counts nanoseconds as integers; experiment reports
    print milliseconds, matching the paper's figures. *)

val kib : int -> int
(** [kib n] is [n * 1024]. *)

val mib : int -> int
(** [mib n] is [n * 1024 * 1024]. *)

val gib : int -> int
(** [gib n] is [n * 1024 * 1024 * 1024]. *)

val pp_bytes : Format.formatter -> int -> unit
(** [pp_bytes ppf n] prints [n] as e.g. ["4.2M"], ["94K"], ["512"] using
    binary units, in the compact style of the paper's Table 1. *)

val bytes_to_string : int -> string
(** [bytes_to_string n] is [Format.asprintf "%a" pp_bytes n]. *)

val ns_to_ms : int -> float
(** [ns_to_ms ns] converts nanoseconds to milliseconds. *)

val ns_float_to_ms : float -> float
(** [ns_float_to_ms ns] converts a fractional nanosecond quantity (e.g. a
    mean over samples) to milliseconds without truncating through int. *)

val ms_to_ns : float -> int
(** [ms_to_ns ms] converts milliseconds to nanoseconds (rounded). *)

val us_to_ns : float -> int
(** [us_to_ns us] converts microseconds to nanoseconds (rounded). *)

val pp_ms : Format.formatter -> int -> unit
(** [pp_ms ppf ns] prints a nanosecond duration as milliseconds with two
    decimals, e.g. ["28.10 ms"]. *)

val ms_string : int -> string
(** [ms_string ns] is [Format.asprintf "%a" pp_ms ns]. *)
