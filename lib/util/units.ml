let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= 1024 * 1024 * 1024 then
    Format.fprintf ppf "%.1fG" (f /. (1024. *. 1024. *. 1024.))
  else if n >= 1024 * 1024 then Format.fprintf ppf "%.1fM" (f /. (1024. *. 1024.))
  else if n >= 1024 then Format.fprintf ppf "%.0fK" (f /. 1024.)
  else Format.fprintf ppf "%d" n

let bytes_to_string n = Format.asprintf "%a" pp_bytes n
let ns_to_ms ns = float_of_int ns /. 1_000_000.
let ns_float_to_ms ns = ns /. 1_000_000.
let ms_to_ns ms = int_of_float (Float.round (ms *. 1_000_000.))
let us_to_ns us = int_of_float (Float.round (us *. 1_000.))
let pp_ms ppf ns = Format.fprintf ppf "%.2f ms" (ns_to_ms ns)
let ms_string ns = Format.asprintf "%a" pp_ms ns
