(** A fixed-size domain pool with a chunked work queue.

    The experiment harness fans independent boots and experiment cells out
    over OCaml 5 domains. The pool is deliberately minimal: a task is an
    integer index, workers pull chunks of indices off a mutex-guarded
    queue, and every result is stored in its task's slot so the caller
    sees results in task order regardless of scheduling. Callers are
    responsible for giving each worker its own mutable state (caches,
    workspaces): [f] receives the worker index for that purpose. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]. *)

val map_tasks : ?jobs:int -> tasks:int -> (worker:int -> int -> 'a) -> 'a array
(** [map_tasks ~jobs ~tasks f] computes [|f ~worker 0; ...; f ~worker
    (tasks-1)|] on a pool of at most [jobs] domains ([worker] ranges over
    [0 .. jobs-1]). The pool is additionally clamped to
    [Domain.recommended_domain_count ()]: extra domains on a smaller
    machine only add stop-the-world barrier latency, and the clamp is
    observationally invisible (results are slotted per task). With an
    effective [jobs <= 1] (the default) or [tasks <= 1] everything runs
    inline on the calling domain, in task order, with [worker = 0] — the
    deterministic reference path. If any task raises, no new chunks are
    issued and the first exception is re-raised (with its backtrace)
    after all workers join. *)
