(** Integrity checksums used by the compression container formats.

    CRC-32 (IEEE 802.3 polynomial, as in gzip/xz) and Adler-32 (as in
    zlib). Both are implemented from scratch; values match the standard
    algorithms so container self-checks behave like their real
    counterparts. *)

val crc32 : ?init:int -> bytes -> int -> int -> int
(** [crc32 ?init b off len] computes the CRC-32 of [len] bytes of [b]
    starting at [off]. [init] (default 0) allows incremental computation:
    feed the previous result back in. The result is in [0, 0xffffffff].
    Implemented slice-by-8 (eight 256-entry tables, one 64-bit load per
    eight message bytes) with head/tail handled by {!crc32_ref}; the
    qcheck differential suite in [test_util] pins it to the reference
    over random offsets, lengths and chained [init]s. *)

val crc32_ref : ?init:int -> bytes -> int -> int -> int
(** The byte-at-a-time reference implementation of {!crc32} — the checked
    loop the slice-by-8 fast path must match symbol-for-symbol. Exposed
    for the differential suite and the [crc32-ref-256k] micro-benchmark
    row. *)

val crc32_string : string -> int
(** [crc32_string s] is the CRC-32 of all of [s]. *)

val adler32 : ?init:int -> bytes -> int -> int -> int
(** [adler32 ?init b off len] computes Adler-32 over the given range.
    [init] defaults to 1 as specified by zlib. *)
