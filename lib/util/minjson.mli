(** Minimal JSON reader for the repo's own machine-written artifacts.

    [Imk_harness.Telemetry] writes [BENCH_<exp>.json] by hand (no JSON
    dependency); this is the matching reader, used by the bench
    [--baseline] regression gate and the round-trip tests. It is strict
    about what the telemetry writer emits — numbers must be finite,
    [\u] escapes must stay in the Latin-1 range — and is not a
    general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string
(** Raised by {!parse} and the accessors on anything this reader cannot
    represent faithfully. Never caught blind: a malformed bench artifact
    must fail the run that tried to read it. *)

val parse : string -> t
(** [parse s] parses one JSON value spanning all of [s] (trailing
    whitespace allowed, trailing garbage rejected). *)

val member : string -> t -> t option
(** [member key v] looks [key] up if [v] is an object, else [None]. *)

val member_exn : string -> t -> t
(** Like {!member} but raises {!Malformed} when absent. *)

val to_float : t -> float
val to_int : t -> int
val to_string : t -> string
val to_list : t -> t list
