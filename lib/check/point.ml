type t = {
  preset : Imk_kernel.Config.preset;
  variant : Imk_kernel.Config.variant;
  codec : string;
  functions : int;
  seed : int64;
}

let rando t =
  match t.variant with
  | Imk_kernel.Config.Nokaslr -> Imk_monitor.Vm_config.Rando_off
  | Imk_kernel.Config.Kaslr -> Imk_monitor.Vm_config.Rando_kaslr
  | Imk_kernel.Config.Fgkaslr -> Imk_monitor.Vm_config.Rando_fgkaslr

let name t =
  Printf.sprintf "%s-%s/%s/f%d/s%Ld"
    (Imk_kernel.Config.preset_name t.preset)
    (Imk_kernel.Config.variant_name t.variant)
    t.codec t.functions t.seed

(* simplest first: the aligned uncompressed link skips both the
   copy-out-of-the-way and decompression, so a divergence that survives
   shrinking to "none-opt" has the smallest possible boot between the
   seed and the comparison *)
let codecs = [ "none-opt"; "none"; "lz4"; "gzip" ]

let default_functions preset variant =
  (Imk_kernel.Config.make preset variant).Imk_kernel.Config.functions

let matrix ~seed ~functions =
  List.concat_map
    (fun preset ->
      List.concat_map
        (fun variant ->
          (* one compressed and one uncompressed loader path per cell
             keeps the campaign quadratic-free; the codec axis is
             exercised fully by the shrinker's walk *)
          List.map
            (fun codec ->
              let functions =
                match functions with
                | Some f -> f
                | None -> default_functions preset variant
              in
              { preset; variant; codec; functions; seed })
            [ "lz4"; "none-opt" ])
        Imk_kernel.Config.all_variants)
    Imk_kernel.Config.all_presets

let rando_flag t =
  match rando t with
  | Imk_monitor.Vm_config.Rando_off -> "off"
  | Imk_monitor.Vm_config.Rando_kaslr -> "kaslr"
  | Imk_monitor.Vm_config.Rando_fgkaslr -> "fgkaslr"

let fcsim_commands t =
  let base meth =
    Printf.sprintf
      "dune exec bin/fcsim.exe -- --kernel %s-%s --rando %s --method %s \
       --seed %Ld --functions %d"
      (Imk_kernel.Config.preset_name t.preset)
      (Imk_kernel.Config.variant_name t.variant)
      (rando_flag t) meth t.seed t.functions
  in
  [ base "direct"; base t.codec ]
