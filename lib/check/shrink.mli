(** Greedy minimization of a failing campaign point.

    Given a predicate "this point still fails its oracle", walk the
    point toward the simplest one that still fails: fewer functions,
    a cheaper image method, a smaller preset, randomization off, seed
    zero. Every candidate is strictly simpler than its parent, so the
    walk terminates; each step boots the candidate, so shrinking a real
    divergence costs a handful of comparisons, not a sweep. *)

val candidates : Point.t -> Point.t list
(** Strictly-simpler neighbours of a point, most aggressive first
    (halve the function count before decrementing it, jump the codec to
    the front of {!Point.codecs}, …). Empty at the fully minimal
    point. *)

val minimize : ?max_steps:int -> (Point.t -> bool) -> Point.t -> Point.t
(** [minimize still_fails p] greedily applies the first candidate the
    predicate confirms, until none is confirmed (or [max_steps], default
    64, safety-stops). [p] itself is assumed failing. *)

val report : Point.t -> string
(** Multi-line human report: the minimal point's label and the
    ready-to-paste {!Point.fcsim_commands}. *)
