(** The differential-oracle catalogue (DESIGN.md §8).

    Each oracle boots one {!Point} through two configurations that the
    repo's invariants promise are equivalent, and compares the
    observables the promise covers — layout bytes for path equivalence,
    exact trace spans where the invariant says "telemetry is
    bit-identical". An oracle returns the {e first} divergence as text; a
    campaign counts and a shrinker minimizes them.

    An oracle that cannot fail is not evidence: {!cross_path} takes a
    [mutate] switch that plants an off-by-one in one side's extracted
    image, and the campaign's [--mutate] mode checks the catalogue
    reports it caught. *)

type outcome = Pass | Divergence of string

type report = {
  outcome : outcome;
  boot_ns : (string * int) list;
      (** virtual-clock total of each boot the comparison ran, in the
          order run — deterministic, so campaign telemetry built from it
          is bit-identical for any jobs fan-out. Empty when a boot died
          before completing. *)
}

type t = {
  id : string;  (** stable row id, e.g. "cross-path" *)
  doc : string;  (** the invariant under test, one line *)
  run : Env.images -> Point.t -> report;
}

val cross_path : ?mutate:bool -> unit -> t
(** Monitor ≡ bootstrap loader: boots the point's vmlinux through
    in-monitor randomization and its bzImage through the self-
    bootstrapping loader, on one pinned {!Imk_randomize.Choices}
    schedule, and asserts byte-level layout equivalence (modulo the
    physical base, which only the monitor randomizes). [mutate] plants
    the sensitivity fault described above. *)

val event_core_solo : ?mutate:bool -> unit -> t
(** Linear clock ≡ event core (solo): the point's bzImage booted once on
    the plain linear clock and once as a single {!Imk_vclock.Sched}
    fiber must charge exactly the same spans — labels, phases, order and
    instants — and produce the same layout bytes. The bz path routes the
    point's codec through the scheduler's decompress slot and every
    image read through its disk-bandwidth unit, so all scheduled-mode
    charge classes are exercised. [mutate] plants a one-event
    reordering (two adjacent spans swapped) on the event-core side,
    which the exact comparison must report. *)

val plan_cache : t
(** Cache-on ≡ cache-off: the second boot of an image through a shared
    {!Imk_monitor.Plan_cache} must produce exactly the trace spans and
    layout of an uncached second boot. Also divergent if the cache was
    never actually hit — a vacuous pass is no evidence. *)

val snapshot_cold : t
(** Snapshot ≡ cold boot: capture, serialize, reload and restore a
    booted guest; the restored clone's layout must equal the original's
    bit for bit (restores inherit the snapshot's randomization — the
    §7 trade the snapshot module quantifies). *)

val arena_fresh : t
(** Recycled ≡ fresh memory: a boot into an arena-recycled buffer
    (previously dirtied by a different boot) must match a boot of the
    same point into a fresh [Guest_mem.create] — spans and layout.
    Divergent if the arena never actually recycled. *)

val catalogue : mutate:bool -> t list
(** The full catalogue, cross-path first. *)

val compare_series : (string * float) list -> (string * float) list -> outcome
(** Exact equality of two labelled telemetry series — the jobs-1 ≡ jobs-N
    comparator driven from the harness (which owns [boot_many]); floats
    compare bit-for-bit, never within a tolerance. *)

val of_run :
  (Env.images ->
  Point.t ->
  note:(string -> Imk_vclock.Trace.t -> unit) ->
  outcome) ->
  Env.images ->
  Point.t ->
  report
(** Wrap a comparison body with the catalogue's exception guard and
    boot-telemetry collector: [note label trace] records a completed
    boot's virtual total, and a body that raises becomes a [Divergence]
    carrying the exception text instead of killing the campaign. For
    harness-side oracles (e.g. the jobs-fanout row) that cannot live
    below [boot_many]. *)
