(** Per-point boot environment for differential comparisons.

    Splits the expensive and the cheap halves of environment setup so a
    parallel campaign stays deterministic for any [--jobs] fan-out:
    {!build} synthesizes the kernel images (the expensive part — call it
    once per distinct point shape, on the calling domain), while
    {!instantiate} stamps out a private disk + page cache from those
    pristine bytes (cheap — call it per comparison, so no worker ever
    shares mutable storage state with another). *)

type images = {
  cfg : Imk_kernel.Config.t;
  vmlinux : bytes;
  relocs : bytes;
  bz_name : string;  (** disk name of the point's bzImage *)
  bz_bytes : bytes;
}

val build : ?scale:int -> Point.t -> images
(** [build point] builds the point's kernel and links its bzImage.
    Deterministic in the point (the kernel's build seed derives from its
    config name, as everywhere else). Default [scale] is 4 — the
    integration-test size; the bench campaign passes its workspace
    scale. *)

type t = {
  images : images;
  cache : Imk_storage.Page_cache.t;
  vmlinux_path : string;
  relocs_path : string;
  bz_path : string;
}

val instantiate : images -> t
(** Fresh private disk and page cache over the pristine bytes. *)

val direct_config : t -> Point.t -> Imk_monitor.Vm_config.t
(** The monitor-path boot: uncompressed vmlinux, relocation file as the
    Figure 8 extra argument, in-monitor randomization per the point. *)

val bz_config : t -> Point.t -> Imk_monitor.Vm_config.t
(** The loader-path boot of the same point: the bzImage self-bootstraps
    and self-randomizes. Policies are aligned with {!direct_config} so
    the two paths promise the same observable layout (eager kallsyms,
    ORC skipped). *)
