(** The observable layout of one booted guest, in comparable form.

    Everything the differential oracles assert equality over: where the
    kernel landed virtually, the per-function randomized addresses, the
    guest's own integrity-walk counters, and the raw image bytes relative
    to the load address. Physical placement is captured but compared
    separately — the monitor randomizes it while the bootstrap loader
    always loads at the default physical base, and relocated bytes hold
    absolute {e virtual} addresses, so cross-path equality is exactly
    "same bytes at each side's own physical base". *)

type t = {
  phys_load : int;
  virt_base : int;
  entry_va : int;
  kallsyms_fixed : bool;
  orc_fixed : bool;
  stats : Imk_guest.Runtime.verify_stats;
  fn_va : int array;  (** randomized VA per function id *)
  image : bytes;  (** guest bytes from [phys_load] to the dirty-extent top *)
}

val of_result : Imk_monitor.Vmm.boot_result -> t
(** Extract the layout from a completed boot. The image extent is the
    guest's dirty-extent envelope above the load address — boot info,
    bzImage staging and setup data all live below it. *)

val diff : ?compare_phys:bool -> t -> t -> string option
(** [diff a b] is [None] when the layouts are equivalent, or a
    description of the {e first} divergence (field, expected/actual, and
    for image bytes the first differing offset). [compare_phys] (default
    false) additionally requires equal physical load addresses — same-
    path oracles (cache, snapshot, arena) set it; the cross-path oracle
    does not. *)
