type outcome = Pass | Divergence of string

type report = {
  outcome : outcome;
  boot_ns : (string * int) list;
}

type t = {
  id : string;
  doc : string;
  run : Env.images -> Point.t -> report;
}

let boot ?plans ?choices ?arena ?mem cache vm =
  let clock = Imk_vclock.Clock.create () in
  let trace = Imk_vclock.Trace.create clock in
  let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
  let r = Imk_monitor.Vmm.boot ?plans ?choices ?arena ?mem ch cache vm in
  (trace, r)

(* invariants phrased as "telemetry is bit-identical" are checked at span
   granularity: same labels, same phases, same start/stop instants *)
let span_list_diff la lb =
  if List.length la <> List.length lb then
    Some
      (Printf.sprintf "span count: %d vs %d" (List.length la)
         (List.length lb))
  else
    let pp (s : Imk_vclock.Trace.span) =
      Printf.sprintf "%s/%s[%d,%d]"
        (Imk_vclock.Trace.phase_name s.Imk_vclock.Trace.phase)
        s.Imk_vclock.Trace.label s.Imk_vclock.Trace.start_ns
        s.Imk_vclock.Trace.stop_ns
    in
    List.fold_left2
      (fun acc sa sb ->
        match acc with
        | Some _ -> acc
        | None ->
            if sa = sb then None
            else Some (Printf.sprintf "span %s vs %s" (pp sa) (pp sb)))
      None la lb

let spans_diff ta tb =
  span_list_diff (Imk_vclock.Trace.spans ta) (Imk_vclock.Trace.spans tb)

(* an oracle must report a boot that dies as a divergence of the
   comparison, not kill the campaign: the exception text is the finding.
   [boots] accumulates the virtual totals of the boots that completed,
   so even a divergent comparison contributes deterministic telemetry *)
let of_run f images point =
  let boots = ref [] in
  let note label trace =
    boots := (label, Imk_vclock.Trace.total trace) :: !boots
  in
  let outcome =
    try f images point ~note
    with e -> Divergence ("raised: " ^ Printexc.to_string e)
  in
  { outcome; boot_ns = List.rev !boots }

let layout_outcome ?compare_phys a b =
  match Layout.diff ?compare_phys a b with
  | None -> Pass
  | Some d -> Divergence d

(* --- monitor ≡ bootstrap loader --- *)

let plant_off_by_one (l : Layout.t) =
  let image = Bytes.copy l.Layout.image in
  let off = Bytes.length image / 2 in
  Bytes.set image off
    (Char.chr ((Char.code (Bytes.get image off) + 1) land 0xff));
  { l with Layout.image }

let cross_path ?(mutate = false) () =
  {
    id = "cross-path";
    doc = "monitor and bootstrap loader produce the same layout bytes";
    run =
      of_run (fun images point ~note ->
          let env = Env.instantiate images in
          let choices =
            if Point.rando point = Imk_monitor.Vm_config.Rando_off then None
            else Some (Imk_randomize.Choices.of_seed point.Point.seed)
          in
          let ta, ra = boot ?choices env.Env.cache (Env.direct_config env point) in
          note "direct" ta;
          let a = Layout.of_result ra in
          let tb, rb = boot ?choices env.Env.cache (Env.bz_config env point) in
          note "bz" tb;
          let b = Layout.of_result rb in
          let b = if mutate then plant_off_by_one b else b in
          layout_outcome a b);
  }

(* --- linear clock ≡ solo boot on the event scheduler --- *)

(* the planted sensitivity fault for the event core: one event
   reordering, surfaced as two adjacent spans swapped in the recorded
   trace. Every boot records at least two spans, so the exact span
   comparison below must always report it *)
let swap_adjacent = function a :: b :: rest -> b :: a :: rest | l -> l

let event_core_solo ?(mutate = false) () =
  {
    id = "event-core-solo";
    doc = "a solo boot on the event scheduler charges the linear clock's spans";
    run =
      of_run (fun images point ~note ->
          (* a private env per side (as in [plan_cache]): both boots read
             a cold cache, so read costs cannot skew the comparison. The
             bz path sweeps the point's codec through the decompress
             slot; the direct path would never exercise it *)
          let env_a = Env.instantiate images in
          let ta, ra = boot env_a.Env.cache (Env.bz_config env_a point) in
          note "linear" ta;
          let env_b = Env.instantiate images in
          let sched = Imk_vclock.Sched.create () in
          let tl = Imk_vclock.Sched.timeline sched in
          let trace =
            Imk_vclock.Trace.create (Imk_vclock.Sched.timeline_clock tl)
          in
          let ch =
            Imk_vclock.Charge.create ~sched:tl trace
              Imk_vclock.Cost_model.default
          in
          let result = ref None in
          Imk_vclock.Sched.spawn sched tl (fun () ->
              result :=
                Some
                  (Imk_monitor.Vmm.boot ch env_b.Env.cache
                     (Env.bz_config env_b point)));
          Imk_vclock.Sched.run sched;
          note "event-core" trace;
          let spans_b = Imk_vclock.Trace.spans trace in
          let spans_b = if mutate then swap_adjacent spans_b else spans_b in
          match span_list_diff (Imk_vclock.Trace.spans ta) spans_b with
          | Some d -> Divergence ("trace " ^ d)
          | None -> (
              match !result with
              | None -> Divergence "event-core boot completed without a result"
              | Some rb ->
                  layout_outcome ~compare_phys:true (Layout.of_result ra)
                    (Layout.of_result rb)));
  }

(* --- plan cache on ≡ off --- *)

let plan_cache =
  {
    id = "plan-cache";
    doc = "a plan-cache hit changes no span and no layout byte";
    run =
      of_run (fun images point ~note ->
          let second_boot label plans =
            (* a private env per side: both sides' compared boot is the
               second one, so page-cache warmth matches too *)
            let env = Env.instantiate images in
            let vm = Env.direct_config env point in
            let _ = boot ?plans env.Env.cache vm in
            let trace, r = boot ?plans env.Env.cache vm in
            note label trace;
            (trace, Layout.of_result r)
          in
          let plans = Imk_monitor.Plan_cache.create () in
          let t_cached, l_cached = second_boot "cached" (Some plans) in
          let t_cold, l_cold = second_boot "uncached" None in
          let hits, _ = Imk_monitor.Plan_cache.stats plans in
          if hits = 0 then Divergence "vacuous: the plan cache was never hit"
          else
            match spans_diff t_cached t_cold with
            | Some d -> Divergence ("trace " ^ d)
            | None -> layout_outcome ~compare_phys:true l_cached l_cold);
  }

(* --- snapshot restore ≡ the boot it captured --- *)

let snapshot_cold =
  {
    id = "snapshot-cold";
    doc = "a restored snapshot clone equals the boot it captured";
    run =
      of_run (fun images point ~note ->
          let env = Env.instantiate images in
          let t, r = boot env.Env.cache (Env.direct_config env point) in
          note "cold" t;
          let orig = Layout.of_result r in
          let blob =
            Imk_monitor.Snapshot.serialize (Imk_monitor.Snapshot.capture r)
          in
          let snap =
            Imk_monitor.Snapshot.load ~config:r.Imk_monitor.Vmm.config blob
          in
          let clock = Imk_vclock.Clock.create () in
          let trace = Imk_vclock.Trace.create clock in
          let ch =
            Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default
          in
          let restored =
            Imk_monitor.Snapshot.restore ch snap ~working_set_pages:32
          in
          note "restore" trace;
          layout_outcome ~compare_phys:true orig (Layout.of_result restored));
  }

(* --- arena-recycled ≡ fresh guest memory --- *)

let arena_fresh =
  {
    id = "arena-fresh";
    doc = "a boot into a recycled buffer equals one into fresh memory";
    run =
      of_run (fun images point ~note ->
          let env = Env.instantiate images in
          let arena = Imk_memory.Arena.create () in
          let vm = Env.direct_config env point in
          (* dirty a buffer with an unrelated boot, hand it back, then
             make the point's boot recycle it *)
          let dirty_vm =
            { vm with
              Imk_monitor.Vm_config.seed = Int64.add point.Point.seed 7L }
          in
          let _, rd = boot ~arena env.Env.cache dirty_vm in
          Imk_memory.Arena.release arena rd.Imk_monitor.Vmm.mem;
          let t_rec, r_rec = boot ~arena env.Env.cache vm in
          note "recycled" t_rec;
          let l_rec = Layout.of_result r_rec in
          let fresh =
            Imk_memory.Guest_mem.create
              ~size:vm.Imk_monitor.Vm_config.mem_bytes
          in
          let t_fresh, r_fresh = boot ~mem:fresh env.Env.cache vm in
          note "fresh" t_fresh;
          let hits, _ = Imk_memory.Arena.stats arena in
          if hits = 0 then
            Divergence "vacuous: the arena never recycled a buffer"
          else
            match spans_diff t_rec t_fresh with
            | Some d -> Divergence ("trace " ^ d)
            | None ->
                layout_outcome ~compare_phys:true l_rec
                  (Layout.of_result r_fresh));
  }

let catalogue ~mutate =
  [
    cross_path ~mutate ();
    event_core_solo ~mutate ();
    plan_cache;
    snapshot_cold;
    arena_fresh;
  ]

let compare_series a b =
  if List.length a <> List.length b then
    Divergence
      (Printf.sprintf "series length: %d vs %d" (List.length a)
         (List.length b))
  else
    List.fold_left2
      (fun acc (na, va) (nb, vb) ->
        match acc with
        | Divergence _ -> acc
        | Pass ->
            if na <> nb then
              Divergence (Printf.sprintf "series label: %s vs %s" na nb)
            else if Int64.bits_of_float va <> Int64.bits_of_float vb then
              Divergence
                (Printf.sprintf "%s: %.17g vs %.17g (not bit-identical)" na
                   va vb)
            else Pass)
      Pass a b
