type images = {
  cfg : Imk_kernel.Config.t;
  vmlinux : bytes;
  relocs : bytes;
  bz_name : string;
  bz_bytes : bytes;
}

let build ?(scale = 4) (point : Point.t) =
  let cfg =
    { (Imk_kernel.Config.make ~scale point.Point.preset point.Point.variant) with
      Imk_kernel.Config.functions = point.Point.functions }
  in
  let built = Imk_kernel.Image.build cfg in
  let codec, bz_variant =
    match point.Point.codec with
    | "none-opt" -> ("none", Imk_kernel.Bzimage.None_optimized)
    | c -> (c, Imk_kernel.Bzimage.Standard)
  in
  let bz = Imk_kernel.Bzimage.link built ~codec ~variant:bz_variant in
  let bz_name =
    Printf.sprintf "%s.bz-%s" cfg.Imk_kernel.Config.name point.Point.codec
  in
  {
    cfg;
    vmlinux = built.Imk_kernel.Image.vmlinux;
    relocs = built.Imk_kernel.Image.relocs_bytes;
    bz_name;
    bz_bytes = Imk_kernel.Bzimage.encode bz;
  }

type t = {
  images : images;
  cache : Imk_storage.Page_cache.t;
  vmlinux_path : string;
  relocs_path : string;
  bz_path : string;
}

let instantiate images =
  let disk = Imk_storage.Disk.create () in
  let name = images.cfg.Imk_kernel.Config.name in
  let vmlinux_path = name ^ ".vmlinux" and relocs_path = name ^ ".relocs" in
  Imk_storage.Disk.add disk ~name:vmlinux_path images.vmlinux;
  Imk_storage.Disk.add disk ~name:relocs_path images.relocs;
  Imk_storage.Disk.add disk ~name:images.bz_name images.bz_bytes;
  {
    images;
    cache = Imk_storage.Page_cache.create disk;
    vmlinux_path;
    relocs_path;
    bz_path = images.bz_name;
  }

(* both configs use the top-rank flavor (it implements every capability)
   and identical policies, so any layout difference between the two boots
   is the code under test, not configuration skew *)
let vm_config t (point : Point.t) ~kernel_path ~relocs_path =
  Imk_monitor.Vm_config.make ~flavor:Imk_monitor.Vm_config.In_monitor_fgkaslr
    ~rando:(Point.rando point) ~relocs_path
    ~kallsyms:Imk_monitor.Vm_config.Kallsyms_eager
    ~orc:Imk_monitor.Vm_config.Orc_skip
    ~loader:Imk_monitor.Vm_config.Loader_default
    ~mem_bytes:(64 * 1024 * 1024)
    ~seed:point.Point.seed ~kernel_path ~kernel_config:t.images.cfg ()

let direct_config t point =
  let relocs_path =
    if Point.rando point = Imk_monitor.Vm_config.Rando_off then None
    else Some t.relocs_path
  in
  vm_config t point ~kernel_path:t.vmlinux_path ~relocs_path

let bz_config t point = vm_config t point ~kernel_path:t.bz_path ~relocs_path:None
