(** A campaign point: one cell of the differential-oracle sweep.

    A point fixes everything a comparison boots — kernel preset and
    variant, function count, bzImage codec for the loader-path side, and
    the entropy seed. The oracle catalogue ({!Oracle}) boots a point
    through two paths and asserts equivalence; the shrinker ({!Shrink})
    walks points toward a minimal failing one. Points print as
    ready-to-paste [fcsim] commands so a diverging cell is reproducible
    outside the campaign. *)

type t = {
  preset : Imk_kernel.Config.preset;
  variant : Imk_kernel.Config.variant;
  codec : string;
      (** loader-path image method: a codec name ("lz4", "gzip", "none")
          or "none-opt" for the aligned uncompressed link *)
  functions : int;  (** kernel size knob (actual function count) *)
  seed : int64;  (** boot entropy seed; also pins the {!Imk_randomize.Choices} schedule *)
}

val rando : t -> Imk_monitor.Vm_config.rando_mode
(** The randomization mode a point boots with — tied to the kernel
    variant, as the full-matrix suites do: nokaslr kernels boot with
    randomization off, kaslr with KASLR, fgkaslr with FGKASLR. *)

val name : t -> string
(** Short cell label, e.g. "aws-kaslr/lz4/f80/s42". *)

val codecs : string list
(** Valid [codec] values, simplest first ("none-opt", "none", "lz4",
    "gzip") — the shrinker walks this order. *)

val matrix : seed:int64 -> functions:int option -> t list
(** The campaign catalogue for one seed: presets × variants × a
    representative codec spread, mirroring the boot-matrix suites.
    [functions] overrides the preset's size when given. *)

val fcsim_commands : t -> string list
(** Ready-to-paste reproduction commands for the two boots a cross-path
    comparison runs: the direct (monitor) boot and the bzImage (loader)
    boot of this point. *)
