type t = {
  phys_load : int;
  virt_base : int;
  entry_va : int;
  kallsyms_fixed : bool;
  orc_fixed : bool;
  stats : Imk_guest.Runtime.verify_stats;
  fn_va : int array;
  image : bytes;
}

(* an all-zero tail is indistinguishable from untouched memory (the
   arena-scrub invariant leans on exactly that), so the comparable image
   ends at its last nonzero byte — a snapshot restore that rewrites the
   whole guest and a boot that only touched the image then extract the
   same bytes *)
let trim_zeros b =
  let n = ref (Bytes.length b) in
  while !n > 0 && Bytes.get b (!n - 1) = '\000' do
    decr n
  done;
  Bytes.sub b 0 !n

let of_result (r : Imk_monitor.Vmm.boot_result) =
  let p = r.Imk_monitor.Vmm.params in
  let phys_load = p.Imk_guest.Boot_params.phys_load in
  let image =
    match Imk_memory.Guest_mem.dirty_extent r.Imk_monitor.Vmm.mem with
    | None -> invalid_arg "Layout.of_result: guest memory untouched"
    | Some (_, hi) when hi <= phys_load ->
        invalid_arg "Layout.of_result: nothing written at the load address"
    | Some (_, hi) ->
        trim_zeros
          (Imk_memory.Guest_mem.read_bytes r.Imk_monitor.Vmm.mem
             ~pa:phys_load ~len:(hi - phys_load))
  in
  {
    phys_load;
    virt_base = p.Imk_guest.Boot_params.virt_base;
    entry_va = p.Imk_guest.Boot_params.entry_va;
    kallsyms_fixed = p.Imk_guest.Boot_params.kallsyms_fixed;
    orc_fixed = p.Imk_guest.Boot_params.orc_fixed;
    stats = r.Imk_monitor.Vmm.stats;
    fn_va = Imk_guest.Runtime.fn_layout r.Imk_monitor.Vmm.mem p;
    image;
  }

let first_byte_diff a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let rec go i =
    if i >= n then None
    else if Bytes.get a i <> Bytes.get b i then Some i
    else go (i + 1)
  in
  go 0

let first_va_diff a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then None else if a.(i) <> b.(i) then Some i else go (i + 1)
  in
  go 0

let diff ?(compare_phys = false) a b =
  let mismatch what pp x y =
    Some (Printf.sprintf "%s: %s vs %s" what (pp x) (pp y))
  in
  let hex = Printf.sprintf "%#x" and num = string_of_int in
  if compare_phys && a.phys_load <> b.phys_load then
    mismatch "phys_load" hex a.phys_load b.phys_load
  else if a.virt_base <> b.virt_base then
    mismatch "virt_base" hex a.virt_base b.virt_base
  else if a.entry_va <> b.entry_va then
    mismatch "entry_va" hex a.entry_va b.entry_va
  else if a.kallsyms_fixed <> b.kallsyms_fixed then
    mismatch "kallsyms_fixed" string_of_bool a.kallsyms_fixed b.kallsyms_fixed
  else if a.orc_fixed <> b.orc_fixed then
    mismatch "orc_fixed" string_of_bool a.orc_fixed b.orc_fixed
  else if a.stats <> b.stats then
    Some
      (Printf.sprintf
         "verify stats: (fns %d sites %d rodata %d extab %d kallsyms %d orc \
          %d) vs (fns %d sites %d rodata %d extab %d kallsyms %d orc %d)"
         a.stats.Imk_guest.Runtime.functions_visited
         a.stats.Imk_guest.Runtime.sites_verified
         a.stats.Imk_guest.Runtime.rodata_verified
         a.stats.Imk_guest.Runtime.extab_verified
         a.stats.Imk_guest.Runtime.kallsyms_verified
         a.stats.Imk_guest.Runtime.orc_verified
         b.stats.Imk_guest.Runtime.functions_visited
         b.stats.Imk_guest.Runtime.sites_verified
         b.stats.Imk_guest.Runtime.rodata_verified
         b.stats.Imk_guest.Runtime.extab_verified
         b.stats.Imk_guest.Runtime.kallsyms_verified
         b.stats.Imk_guest.Runtime.orc_verified)
  else if Array.length a.fn_va <> Array.length b.fn_va then
    mismatch "function count" num (Array.length a.fn_va)
      (Array.length b.fn_va)
  else
    match first_va_diff a.fn_va b.fn_va with
    | Some i ->
        Some
          (Printf.sprintf "fn %d placed at %#x vs %#x" i a.fn_va.(i)
             b.fn_va.(i))
    | None ->
        if Bytes.length a.image <> Bytes.length b.image then
          mismatch "image extent" num (Bytes.length a.image)
            (Bytes.length b.image)
        else (
          match first_byte_diff a.image b.image with
          | Some off ->
              Some
                (Printf.sprintf
                   "image byte at load+%#x: %#04x vs %#04x" off
                   (Char.code (Bytes.get a.image off))
                   (Char.code (Bytes.get b.image off)))
          | None -> None)
