let min_functions = 8

let index_of x xs =
  let rec go i = function
    | [] -> invalid_arg "Shrink.index_of"
    | y :: _ when y = x -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 xs

let preset_order =
  [ Imk_kernel.Config.Lupine; Imk_kernel.Config.Aws; Imk_kernel.Config.Ubuntu ]

let variant_order =
  [ Imk_kernel.Config.Nokaslr; Imk_kernel.Config.Kaslr;
    Imk_kernel.Config.Fgkaslr ]

let earlier order x = List.filteri (fun i _ -> i < index_of x order) order

let candidates (p : Point.t) =
  let functions =
    if p.Point.functions > min_functions then
      let half = max min_functions (p.Point.functions / 2) in
      let steps = [ half ] in
      let steps =
        if p.Point.functions - 1 <> half then steps @ [ p.Point.functions - 1 ]
        else steps
      in
      List.map (fun functions -> { p with Point.functions }) steps
    else []
  in
  let codecs =
    List.map
      (fun codec -> { p with Point.codec })
      (earlier Point.codecs p.Point.codec)
  in
  let presets =
    List.map
      (fun preset -> { p with Point.preset })
      (earlier preset_order p.Point.preset)
  in
  let variants =
    List.map
      (fun variant -> { p with Point.variant })
      (earlier variant_order p.Point.variant)
  in
  let seeds = if p.Point.seed <> 0L then [ { p with Point.seed = 0L } ] else [] in
  functions @ codecs @ presets @ variants @ seeds

let minimize ?(max_steps = 64) still_fails p =
  let rec go steps p =
    if steps >= max_steps then p
    else
      match List.find_opt still_fails (candidates p) with
      | None -> p
      | Some simpler -> go (steps + 1) simpler
  in
  go 0 p

let report p =
  String.concat "\n"
    (Printf.sprintf "minimal failing point: %s" (Point.name p)
    :: List.map (fun c -> "  " ^ c) (Point.fcsim_commands p))
