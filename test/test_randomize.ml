(* Tests for Imk_randomize: offset selection bounds/alignment, relocation
   application for all three kinds (including error paths), FGKASLR plans,
   displacement mapping and table fixups. *)

open Imk_memory
open Imk_randomize

let check = Alcotest.check
let int = Alcotest.int

let rng () = Imk_entropy.Prng.create ~seed:5L

let test_choose_virtual_bounds () =
  let r = rng () in
  for _ = 1 to 300 do
    let v = Kaslr.choose_virtual r ~image_memsz:(4 * 1024 * 1024) in
    check Alcotest.bool "aligned" true (v mod Addr.kernel_align = 0);
    check Alcotest.bool "lower bound" true (v >= Addr.link_base);
    check Alcotest.bool "upper bound" true
      (v + (4 * 1024 * 1024) <= Addr.kmap_base + Addr.kaslr_max_offset)
  done

let test_choose_virtual_huge_image () =
  let r = rng () in
  (* image bigger than the window: falls back to the default base *)
  let v = Kaslr.choose_virtual r ~image_memsz:(2 * Addr.kaslr_max_offset) in
  check int "fallback" (Addr.kmap_base + Addr.default_phys_load) v

let test_choose_physical_bounds () =
  let r = rng () in
  for _ = 1 to 200 do
    let p =
      Kaslr.choose_physical r ~image_memsz:(8 * 1024 * 1024)
        ~mem_bytes:(256 * 1024 * 1024)
    in
    check Alcotest.bool "aligned" true (p mod Addr.kernel_align = 0);
    check Alcotest.bool "range" true
      (p >= Addr.default_phys_load && p + (8 * 1024 * 1024) <= 256 * 1024 * 1024)
  done

let test_choose_physical_small_memory () =
  let r = rng () in
  let p =
    Kaslr.choose_physical r ~image_memsz:(64 * 1024 * 1024)
      ~mem_bytes:(66 * 1024 * 1024)
  in
  check int "default when tight" Addr.default_phys_load p

let test_virtual_slots () =
  let slots = Kaslr.virtual_slots ~image_memsz:(16 * 1024 * 1024) in
  (* (1G - 16M - 16M) / 2M + 1 = 497 *)
  check int "497 slots" 497 slots;
  check int "degenerate" 1 (Kaslr.virtual_slots ~image_memsz:(2 * Addr.kaslr_max_offset))

(* relocation application on a hand-built memory image *)
let apply_one kind ~initial ~delta =
  let mem = Guest_mem.create ~size:4096 in
  let site_va = Addr.link_base + 0x100 in
  let pa = 0x100 in
  (match kind with
  | Imk_elf.Relocation.Abs64 -> Guest_mem.set_addr mem ~pa initial
  | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
      Guest_mem.set_u32 mem ~pa initial);
  let relocs =
    match kind with
    | Imk_elf.Relocation.Abs64 ->
        { Imk_elf.Relocation.abs64 = [| site_va |]; abs32 = [||]; inv32 = [||] }
    | Imk_elf.Relocation.Abs32 ->
        { Imk_elf.Relocation.abs64 = [||]; abs32 = [| site_va |]; inv32 = [||] }
    | Imk_elf.Relocation.Inv32 ->
        { Imk_elf.Relocation.abs64 = [||]; abs32 = [||]; inv32 = [| site_va |] }
  in
  Kaslr.apply ~mem ~relocs
    ~site_pa:(fun va -> va - Addr.link_base)
    ~new_va_of:(Kaslr.delta_new_va ~delta);
  match kind with
  | Imk_elf.Relocation.Abs64 -> Guest_mem.get_addr mem ~pa
  | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
      Guest_mem.get_u32 mem ~pa

let test_apply_abs64 () =
  let target = Addr.link_base + 0x4000 in
  let v = apply_one Imk_elf.Relocation.Abs64 ~initial:target ~delta:0x600000 in
  check int "offset added" (target + 0x600000) v

let test_apply_abs32 () =
  let target = Addr.link_base + 0x4000 in
  let v =
    apply_one Imk_elf.Relocation.Abs32 ~initial:(Addr.low32 target)
      ~delta:0x600000
  in
  check int "low32 offset added" (Addr.low32 (target + 0x600000)) v

let test_apply_inv32 () =
  let target = Addr.link_base + 0x4000 in
  let stored = Addr.low32 (Addr.inverse_base - target) in
  let v = apply_one Imk_elf.Relocation.Inv32 ~initial:stored ~delta:0x600000 in
  (* inverse relocation: the offset is subtracted *)
  check int "offset subtracted" (stored - 0x600000) v

let test_apply_rejects_garbage_site () =
  check Alcotest.bool "reloc error" true
    (try
       ignore (apply_one Imk_elf.Relocation.Abs32 ~initial:0x1234 ~delta:0x200000);
       false
     with Kaslr.Reloc_error _ -> true)

let test_apply_rejects_out_of_image_site () =
  let mem = Guest_mem.create ~size:4096 in
  let relocs =
    { Imk_elf.Relocation.abs64 = [| Addr.link_base + 0x100000 |]; abs32 = [||]; inv32 = [||] }
  in
  check Alcotest.bool "reloc error, not a fault" true
    (try
       Kaslr.apply ~mem ~relocs
         ~site_pa:(fun va -> va - Addr.link_base)
         ~new_va_of:(Kaslr.delta_new_va ~delta:0);
       false
     with Kaslr.Reloc_error _ -> true)

let test_apply_rejects_out_of_window_target () =
  check Alcotest.bool "reloc error" true
    (try
       ignore
         (apply_one Imk_elf.Relocation.Abs64 ~initial:0xdead ~delta:0x200000);
       false
     with Kaslr.Reloc_error _ -> true)

(* --- FGKASLR plans --- *)

let sections n =
  let va = ref Addr.link_base in
  Array.init n (fun i ->
      let size = 32 + (i mod 7 * 16) in
      let s = (!va, size) in
      va := !va + size;
      s)

let test_plan_is_permutation_layout () =
  let secs = sections 50 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  check Alcotest.bool "order is a permutation" true
    (Imk_entropy.Shuffle.is_permutation plan.Fgkaslr.order);
  (* new spans must not overlap and must stay 16-aligned *)
  let spans =
    Array.to_list (Array.init 50 (fun i -> (plan.Fgkaslr.new_va.(i), plan.Fgkaslr.size.(i))))
    |> List.sort compare
  in
  let rec no_overlap = function
    | (a, sa) :: ((b, _) :: _ as rest) ->
        check Alcotest.bool "no overlap" true (a + sa <= b);
        no_overlap rest
    | _ -> ()
  in
  no_overlap spans;
  Array.iter (fun va -> check int "16-aligned" 0 (va mod 16)) plan.Fgkaslr.new_va

let test_displace_inside_and_outside () =
  let secs = sections 20 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  Array.iteri
    (fun i (old_va, size) ->
      (* function start and interior both displaced by the same amount *)
      let d = plan.Fgkaslr.new_va.(i) - old_va in
      check int "start" (old_va + d) (Fgkaslr.displace plan old_va);
      check int "interior" (old_va + (size / 2) + d)
        (Fgkaslr.displace plan (old_va + (size / 2))))
    secs;
  (* addresses outside any section are untouched *)
  check int "below" (Addr.kmap_base) (Fgkaslr.displace plan Addr.kmap_base);
  let beyond = fst secs.(19) + snd secs.(19) + 100000 in
  check int "beyond" beyond (Fgkaslr.displace plan beyond)

let test_identity_plan () =
  let secs = sections 10 in
  let plan = Fgkaslr.identity_plan ~sections:secs ~text_base:Addr.link_base in
  Array.iteri
    (fun i (old_va, _) -> check int "unmoved" old_va plan.Fgkaslr.new_va.(i))
    secs

let test_plan_rejects_overlap () =
  let bad = [| (Addr.link_base, 64); (Addr.link_base + 32, 64) |] in
  check Alcotest.bool "rejects" true
    (try
       ignore (Fgkaslr.make_plan (rng ()) ~sections:bad ~text_base:Addr.link_base);
       false
     with Invalid_argument _ -> true)

let test_plan_of_pairs_roundtrip () =
  let secs = sections 15 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  let rebuilt = Fgkaslr.plan_of_pairs (Fgkaslr.displacement_pairs plan) in
  Array.iter
    (fun (old_va, _) ->
      check int "same displacement" (Fgkaslr.displace plan old_va)
        (Fgkaslr.displace rebuilt old_va))
    secs

let qcheck_displace_preserves_offsets =
  QCheck.Test.make
    ~name:"fgkaslr: displacement preserves intra-function offsets" ~count:100
    QCheck.(pair int64 (int_range 2 100))
    (fun (seed, n) ->
      let r = Imk_entropy.Prng.create ~seed in
      let secs = sections n in
      let plan = Fgkaslr.make_plan r ~sections:secs ~text_base:Addr.link_base in
      Array.for_all
        (fun (old_va, size) ->
          let d = Fgkaslr.displace plan old_va - old_va in
          Fgkaslr.displace plan (old_va + size - 1) = old_va + size - 1 + d)
        secs)

let qcheck_apply_then_verify_consistency =
  (* applying with delta then with -delta returns the original bytes *)
  QCheck.Test.make ~name:"kaslr: apply delta then -delta = id" ~count:50
    QCheck.(int_range 1 200)
    (fun slots ->
      let delta = slots * Addr.kernel_align in
      let target = Addr.link_base + 0x4000 in
      let v1 = apply_one Imk_elf.Relocation.Abs64 ~initial:target ~delta in
      let mem = Guest_mem.create ~size:4096 in
      Guest_mem.set_addr mem ~pa:0x100 v1;
      let relocs =
        { Imk_elf.Relocation.abs64 = [| Addr.link_base + 0x100 |]; abs32 = [||]; inv32 = [||] }
      in
      Kaslr.apply ~mem ~relocs
        ~site_pa:(fun va -> va - Addr.link_base)
        ~new_va_of:(Kaslr.delta_new_va ~delta:(-delta));
      Guest_mem.get_addr mem ~pa:0x100 = target)

let () =
  Alcotest.run "imk_randomize"
    [
      ( "offset selection",
        [
          Alcotest.test_case "virtual bounds" `Quick test_choose_virtual_bounds;
          Alcotest.test_case "huge image fallback" `Quick
            test_choose_virtual_huge_image;
          Alcotest.test_case "physical bounds" `Quick test_choose_physical_bounds;
          Alcotest.test_case "small memory" `Quick
            test_choose_physical_small_memory;
          Alcotest.test_case "slot count" `Quick test_virtual_slots;
        ] );
      ( "relocation apply",
        [
          Alcotest.test_case "abs64" `Quick test_apply_abs64;
          Alcotest.test_case "abs32" `Quick test_apply_abs32;
          Alcotest.test_case "inv32" `Quick test_apply_inv32;
          Alcotest.test_case "garbage site" `Quick
            test_apply_rejects_garbage_site;
          Alcotest.test_case "out-of-image site" `Quick
            test_apply_rejects_out_of_image_site;
          Alcotest.test_case "bad target" `Quick
            test_apply_rejects_out_of_window_target;
          Testkit.to_alcotest qcheck_apply_then_verify_consistency;
        ] );
      ( "fgkaslr plans",
        [
          Alcotest.test_case "permutation layout" `Quick
            test_plan_is_permutation_layout;
          Alcotest.test_case "displace in/out" `Quick
            test_displace_inside_and_outside;
          Alcotest.test_case "identity plan" `Quick test_identity_plan;
          Alcotest.test_case "rejects overlap" `Quick test_plan_rejects_overlap;
          Alcotest.test_case "plan_of_pairs" `Quick test_plan_of_pairs_roundtrip;
          Testkit.to_alcotest qcheck_displace_preserves_offsets;
        ] );
    ]
