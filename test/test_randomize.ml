(* Tests for Imk_randomize: offset selection bounds/alignment, relocation
   application for all three kinds (including error paths), FGKASLR plans,
   displacement mapping and table fixups. *)

open Imk_memory
open Imk_randomize

let check = Alcotest.check
let int = Alcotest.int

let rng () = Imk_entropy.Prng.create ~seed:5L

let test_choose_virtual_bounds () =
  let r = rng () in
  for _ = 1 to 300 do
    let v = Kaslr.choose_virtual r ~image_memsz:(4 * 1024 * 1024) in
    check Alcotest.bool "aligned" true (v mod Addr.kernel_align = 0);
    check Alcotest.bool "lower bound" true (v >= Addr.link_base);
    check Alcotest.bool "upper bound" true
      (v + (4 * 1024 * 1024) <= Addr.kmap_base + Addr.kaslr_max_offset)
  done

let test_choose_virtual_huge_image () =
  let r = rng () in
  (* image bigger than the window: falls back to the default base *)
  let v = Kaslr.choose_virtual r ~image_memsz:(2 * Addr.kaslr_max_offset) in
  check int "fallback" (Addr.kmap_base + Addr.default_phys_load) v

let test_choose_physical_bounds () =
  let r = rng () in
  for _ = 1 to 200 do
    let p =
      Kaslr.choose_physical r ~image_memsz:(8 * 1024 * 1024)
        ~mem_bytes:(256 * 1024 * 1024)
    in
    check Alcotest.bool "aligned" true (p mod Addr.kernel_align = 0);
    check Alcotest.bool "range" true
      (p >= Addr.default_phys_load && p + (8 * 1024 * 1024) <= 256 * 1024 * 1024)
  done

let test_choose_physical_small_memory () =
  let r = rng () in
  let p =
    Kaslr.choose_physical r ~image_memsz:(64 * 1024 * 1024)
      ~mem_bytes:(66 * 1024 * 1024)
  in
  check int "default when tight" Addr.default_phys_load p

let test_virtual_slots () =
  let slots = Kaslr.virtual_slots ~image_memsz:(16 * 1024 * 1024) in
  (* (1G - 16M - 16M) / 2M + 1 = 497 *)
  check int "497 slots" 497 slots;
  check int "degenerate" 1 (Kaslr.virtual_slots ~image_memsz:(2 * Addr.kaslr_max_offset))

(* relocation application on a hand-built memory image *)
let apply_one kind ~initial ~delta =
  let mem = Guest_mem.create ~size:4096 in
  let site_va = Addr.link_base + 0x100 in
  let pa = 0x100 in
  (match kind with
  | Imk_elf.Relocation.Abs64 -> Guest_mem.set_addr mem ~pa initial
  | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
      Guest_mem.set_u32 mem ~pa initial);
  let relocs =
    match kind with
    | Imk_elf.Relocation.Abs64 ->
        { Imk_elf.Relocation.abs64 = [| site_va |]; abs32 = [||]; inv32 = [||] }
    | Imk_elf.Relocation.Abs32 ->
        { Imk_elf.Relocation.abs64 = [||]; abs32 = [| site_va |]; inv32 = [||] }
    | Imk_elf.Relocation.Inv32 ->
        { Imk_elf.Relocation.abs64 = [||]; abs32 = [||]; inv32 = [| site_va |] }
  in
  Kaslr.apply ~mem ~relocs
    ~site_pa:(fun va -> va - Addr.link_base)
    ~new_va_of:(Kaslr.delta_new_va ~delta);
  match kind with
  | Imk_elf.Relocation.Abs64 -> Guest_mem.get_addr mem ~pa
  | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
      Guest_mem.get_u32 mem ~pa

let test_apply_abs64 () =
  let target = Addr.link_base + 0x4000 in
  let v = apply_one Imk_elf.Relocation.Abs64 ~initial:target ~delta:0x600000 in
  check int "offset added" (target + 0x600000) v

let test_apply_abs32 () =
  let target = Addr.link_base + 0x4000 in
  let v =
    apply_one Imk_elf.Relocation.Abs32 ~initial:(Addr.low32 target)
      ~delta:0x600000
  in
  check int "low32 offset added" (Addr.low32 (target + 0x600000)) v

let test_apply_inv32 () =
  let target = Addr.link_base + 0x4000 in
  let stored = Addr.low32 (Addr.inverse_base - target) in
  let v = apply_one Imk_elf.Relocation.Inv32 ~initial:stored ~delta:0x600000 in
  (* inverse relocation: the offset is subtracted *)
  check int "offset subtracted" (stored - 0x600000) v

let test_apply_rejects_garbage_site () =
  check Alcotest.bool "reloc error" true
    (try
       ignore (apply_one Imk_elf.Relocation.Abs32 ~initial:0x1234 ~delta:0x200000);
       false
     with Kaslr.Reloc_error _ -> true)

let test_apply_rejects_out_of_image_site () =
  let mem = Guest_mem.create ~size:4096 in
  let relocs =
    { Imk_elf.Relocation.abs64 = [| Addr.link_base + 0x100000 |]; abs32 = [||]; inv32 = [||] }
  in
  check Alcotest.bool "reloc error, not a fault" true
    (try
       Kaslr.apply ~mem ~relocs
         ~site_pa:(fun va -> va - Addr.link_base)
         ~new_va_of:(Kaslr.delta_new_va ~delta:0);
       false
     with Kaslr.Reloc_error _ -> true)

let test_apply_rejects_out_of_window_target () =
  check Alcotest.bool "reloc error" true
    (try
       ignore
         (apply_one Imk_elf.Relocation.Abs64 ~initial:0xdead ~delta:0x200000);
       false
     with Kaslr.Reloc_error _ -> true)

(* per-site reference for the batched production [Kaslr.apply]: the same
   transformation applied one site at a time through the checked
   Guest_mem accessors — the semantics the batch path promises to
   preserve bit for bit, including error messages *)
let reference_apply ~mem ~relocs ~site_pa ~new_va_of =
  let open Imk_elf.Relocation in
  let fail fmt = Printf.ksprintf (fun s -> raise (Kaslr.Reloc_error s)) fmt in
  let patch kind site_va =
    try
      let pa = site_pa site_va in
      match kind with
      | Abs64 ->
          let old_va =
            try Guest_mem.get_addr mem ~pa
            with Invalid_argument _ ->
              fail "abs64 site %#x holds a non-address value" site_va
          in
          Guest_mem.set_addr mem ~pa (new_va_of old_va)
      | Abs32 ->
          let low = Guest_mem.get_u32 mem ~pa in
          let old_va =
            try Addr.va_of_low32 low
            with Invalid_argument _ ->
              fail "abs32 site %#x holds non-kernel value %#x" site_va low
          in
          let nva = new_va_of old_va in
          if not (Addr.is_kernel_va nva) then
            fail "abs32 relocation at %#x overflows 32 bits" site_va;
          Guest_mem.set_u32 mem ~pa (Addr.low32 nva)
      | Inv32 ->
          let stored = Guest_mem.get_u32 mem ~pa in
          let old_va = Addr.inverse_base - stored in
          if not (Addr.is_kernel_va old_va) then
            fail "inv32 site %#x holds non-kernel value %#x" site_va stored;
          let nva = new_va_of old_va in
          let stored' = Addr.inverse_base - nva in
          if stored' < 0 || stored' > 0xffffffff then
            fail "inv32 relocation at %#x underflows" site_va;
          Guest_mem.set_u32 mem ~pa stored'
    with Guest_mem.Fault m ->
      fail "relocation site %#x outside the loaded image: %s" site_va m
  in
  Array.iter (patch Abs64) relocs.abs64;
  Array.iter (patch Abs32) relocs.abs32;
  Array.iter (patch Inv32) relocs.inv32

let qcheck_batched_apply_matches_reference =
  (* random site sets for all three kinds; [swap_pairs] picks a
     non-monotonic site_pa (adjacent slots pairwise swapped, the
     FGKASLR-displacement shape) that forces the batcher to break runs
     and sends some reads to stale/zero slots — outcome (success or
     error message) and every guest byte must match the reference *)
  QCheck.Test.make ~name:"kaslr: batched apply = per-site reference"
    ~count:200
    QCheck.(
      quad
        (list_of_size Gen.(0 -- 40) (int_bound 2047))
        (list_of_size Gen.(0 -- 40) (int_bound 2047))
        (int_range 1 200) bool)
    (fun (offs64, offs32, slots, swap_pairs) ->
      let delta = slots * Addr.kernel_align in
      let size = 64 * 1024 in
      let sites mult region offs =
        List.sort_uniq Stdlib.compare offs
        |> List.map (fun k -> region + (k * mult))
      in
      let o64 = sites 8 0 offs64 in
      let o32 = sites 4 (16 * 1024) offs32 in
      let oi32 = sites 4 (32 * 1024) offs32 in
      let target i = Addr.link_base + 0x10000 + (i * 64) in
      let mk () =
        let mem = Guest_mem.create ~size in
        List.iteri (fun i pa -> Guest_mem.set_addr mem ~pa (target i)) o64;
        List.iteri
          (fun i pa -> Guest_mem.set_u32 mem ~pa (Addr.low32 (target i)))
          o32;
        List.iteri
          (fun i pa ->
            Guest_mem.set_u32 mem ~pa
              (Addr.low32 (Addr.inverse_base - target i)))
          oi32;
        mem
      in
      let vas offs =
        Array.of_list (List.map (fun o -> Addr.link_base + o) offs)
      in
      let relocs =
        { Imk_elf.Relocation.abs64 = vas o64; abs32 = vas o32;
          inv32 = vas oi32 }
      in
      let site_pa =
        if swap_pairs then fun va -> (va - Addr.link_base) lxor 8
        else fun va -> va - Addr.link_base
      in
      let run apply_fn =
        let mem = mk () in
        let outcome =
          try
            apply_fn ~mem ~relocs ~site_pa
              ~new_va_of:(Kaslr.delta_new_va ~delta);
            None
          with Kaslr.Reloc_error m -> Some m
        in
        (outcome, Bytes.to_string (Guest_mem.raw mem))
      in
      run Kaslr.apply = run reference_apply)

let test_batched_fallback_matches_reference () =
  (* a site past the end of guest memory makes its whole run fail
     validation; the batcher must replay that run site by site so the
     good sites are still patched and the bad one reports the per-site
     message — byte- and message-identical to the reference *)
  let size = 4096 in
  let good = [ 0x100; 0x108; 0x200 ] in
  let oob = 0x100000 in
  let target = Addr.link_base + 0x4000 in
  let mk () =
    let mem = Guest_mem.create ~size in
    List.iter (fun pa -> Guest_mem.set_addr mem ~pa target) good;
    mem
  in
  let relocs =
    {
      Imk_elf.Relocation.abs64 =
        Array.of_list (List.map (fun o -> Addr.link_base + o) (good @ [ oob ]));
      abs32 = [||];
      inv32 = [||];
    }
  in
  let run apply_fn =
    let mem = mk () in
    let outcome =
      try
        apply_fn ~mem ~relocs
          ~site_pa:(fun va -> va - Addr.link_base)
          ~new_va_of:(Kaslr.delta_new_va ~delta:0x600000);
        None
      with Kaslr.Reloc_error m -> Some m
    in
    (outcome, Bytes.to_string (Guest_mem.raw mem))
  in
  let (out_b, bytes_b) = run Kaslr.apply in
  let (out_r, bytes_r) = run reference_apply in
  check Alcotest.(option string) "same error" out_r out_b;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "error names the site" true
    (match out_b with
    | Some m -> contains m "outside the loaded image"
    | None -> false);
  check Alcotest.bool "same bytes" true (String.equal bytes_b bytes_r)

(* --- FGKASLR plans --- *)

let sections n =
  let va = ref Addr.link_base in
  Array.init n (fun i ->
      let size = 32 + (i mod 7 * 16) in
      let s = (!va, size) in
      va := !va + size;
      s)

let test_plan_is_permutation_layout () =
  let secs = sections 50 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  check Alcotest.bool "order is a permutation" true
    (Imk_entropy.Shuffle.is_permutation plan.Fgkaslr.order);
  (* new spans must not overlap and must stay 16-aligned *)
  let spans =
    Array.to_list (Array.init 50 (fun i -> (plan.Fgkaslr.new_va.(i), plan.Fgkaslr.size.(i))))
    |> List.sort compare
  in
  let rec no_overlap = function
    | (a, sa) :: ((b, _) :: _ as rest) ->
        check Alcotest.bool "no overlap" true (a + sa <= b);
        no_overlap rest
    | _ -> ()
  in
  no_overlap spans;
  Array.iter (fun va -> check int "16-aligned" 0 (va mod 16)) plan.Fgkaslr.new_va

let test_displace_inside_and_outside () =
  let secs = sections 20 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  Array.iteri
    (fun i (old_va, size) ->
      (* function start and interior both displaced by the same amount *)
      let d = plan.Fgkaslr.new_va.(i) - old_va in
      check int "start" (old_va + d) (Fgkaslr.displace plan old_va);
      check int "interior" (old_va + (size / 2) + d)
        (Fgkaslr.displace plan (old_va + (size / 2))))
    secs;
  (* addresses outside any section are untouched *)
  check int "below" (Addr.kmap_base) (Fgkaslr.displace plan Addr.kmap_base);
  let beyond = fst secs.(19) + snd secs.(19) + 100000 in
  check int "beyond" beyond (Fgkaslr.displace plan beyond)

let test_identity_plan () =
  let secs = sections 10 in
  let plan = Fgkaslr.identity_plan ~sections:secs ~text_base:Addr.link_base in
  Array.iteri
    (fun i (old_va, _) -> check int "unmoved" old_va plan.Fgkaslr.new_va.(i))
    secs

let test_plan_rejects_overlap () =
  let bad = [| (Addr.link_base, 64); (Addr.link_base + 32, 64) |] in
  check Alcotest.bool "rejects" true
    (try
       ignore (Fgkaslr.make_plan (rng ()) ~sections:bad ~text_base:Addr.link_base);
       false
     with Invalid_argument _ -> true)

let test_plan_of_pairs_roundtrip () =
  let secs = sections 15 in
  let plan = Fgkaslr.make_plan (rng ()) ~sections:secs ~text_base:Addr.link_base in
  let rebuilt = Fgkaslr.plan_of_pairs (Fgkaslr.displacement_pairs plan) in
  Array.iter
    (fun (old_va, _) ->
      check int "same displacement" (Fgkaslr.displace plan old_va)
        (Fgkaslr.displace rebuilt old_va))
    secs

let qcheck_displace_preserves_offsets =
  QCheck.Test.make
    ~name:"fgkaslr: displacement preserves intra-function offsets" ~count:100
    QCheck.(pair int64 (int_range 2 100))
    (fun (seed, n) ->
      let r = Imk_entropy.Prng.create ~seed in
      let secs = sections n in
      let plan = Fgkaslr.make_plan r ~sections:secs ~text_base:Addr.link_base in
      Array.for_all
        (fun (old_va, size) ->
          let d = Fgkaslr.displace plan old_va - old_va in
          Fgkaslr.displace plan (old_va + size - 1) = old_va + size - 1 + d)
        secs)

let qcheck_apply_then_verify_consistency =
  (* applying with delta then with -delta returns the original bytes *)
  QCheck.Test.make ~name:"kaslr: apply delta then -delta = id" ~count:50
    QCheck.(int_range 1 200)
    (fun slots ->
      let delta = slots * Addr.kernel_align in
      let target = Addr.link_base + 0x4000 in
      let v1 = apply_one Imk_elf.Relocation.Abs64 ~initial:target ~delta in
      let mem = Guest_mem.create ~size:4096 in
      Guest_mem.set_addr mem ~pa:0x100 v1;
      let relocs =
        { Imk_elf.Relocation.abs64 = [| Addr.link_base + 0x100 |]; abs32 = [||]; inv32 = [||] }
      in
      Kaslr.apply ~mem ~relocs
        ~site_pa:(fun va -> va - Addr.link_base)
        ~new_va_of:(Kaslr.delta_new_va ~delta:(-delta));
      Guest_mem.get_addr mem ~pa:0x100 = target)

let () =
  Alcotest.run "imk_randomize"
    [
      ( "offset selection",
        [
          Alcotest.test_case "virtual bounds" `Quick test_choose_virtual_bounds;
          Alcotest.test_case "huge image fallback" `Quick
            test_choose_virtual_huge_image;
          Alcotest.test_case "physical bounds" `Quick test_choose_physical_bounds;
          Alcotest.test_case "small memory" `Quick
            test_choose_physical_small_memory;
          Alcotest.test_case "slot count" `Quick test_virtual_slots;
        ] );
      ( "relocation apply",
        [
          Alcotest.test_case "abs64" `Quick test_apply_abs64;
          Alcotest.test_case "abs32" `Quick test_apply_abs32;
          Alcotest.test_case "inv32" `Quick test_apply_inv32;
          Alcotest.test_case "garbage site" `Quick
            test_apply_rejects_garbage_site;
          Alcotest.test_case "out-of-image site" `Quick
            test_apply_rejects_out_of_image_site;
          Alcotest.test_case "bad target" `Quick
            test_apply_rejects_out_of_window_target;
          Alcotest.test_case "fallback = reference" `Quick
            test_batched_fallback_matches_reference;
          Testkit.to_alcotest qcheck_apply_then_verify_consistency;
          Testkit.to_alcotest qcheck_batched_apply_matches_reference;
        ] );
      ( "fgkaslr plans",
        [
          Alcotest.test_case "permutation layout" `Quick
            test_plan_is_permutation_layout;
          Alcotest.test_case "displace in/out" `Quick
            test_displace_inside_and_outside;
          Alcotest.test_case "identity plan" `Quick test_identity_plan;
          Alcotest.test_case "rejects overlap" `Quick test_plan_rejects_overlap;
          Alcotest.test_case "plan_of_pairs" `Quick test_plan_of_pairs_roundtrip;
          Testkit.to_alcotest qcheck_displace_preserves_offsets;
        ] );
    ]
