(* The discrete-event scheduler (DESIGN.md §10): heap dequeue order,
   resource conservation and FIFO grants, deterministic interleaving,
   deadlines at scheduled span boundaries, and the contention sanity
   envelope — capacity >= n fibers must be indistinguishable from solo
   (vacuity guard), capacity 1 must serialize exactly. *)

open Imk_vclock

let check = Alcotest.check
let int = Alcotest.int

(* --- event heap --- *)

let qcheck_heap_ordering =
  QCheck.Test.make ~count:500 ~name:"heap dequeue = stable sort by (key, seq)"
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Sched.Heap.create ~dummy:(-1) in
      List.iteri (fun seq key -> Sched.Heap.push h ~key ~seq seq) keys;
      let rec drain acc =
        if Sched.Heap.len h = 0 then List.rev acc
        else
          let key = Sched.Heap.min_key h in
          let seq = Sched.Heap.min_seq h in
          let payload = Sched.Heap.pop h in
          drain ((key, seq, payload) :: acc)
      in
      let expected =
        List.mapi (fun seq key -> (key, seq, seq)) keys
        |> List.stable_sort (fun (ka, sa, _) (kb, sb, _) ->
               match compare ka kb with 0 -> compare sa sb | c -> c)
      in
      drain [] = expected)

let test_heap_empty_access () =
  let h = Sched.Heap.create ~dummy:0 in
  check int "empty" 0 (Sched.Heap.len h);
  (match Sched.Heap.min_key h with
  | (_ : int) -> Alcotest.fail "min_key on empty heap"
  | exception Invalid_argument _ -> ());
  (match Sched.Heap.pop h with
  | (_ : int) -> Alcotest.fail "pop on empty heap"
  | exception Invalid_argument _ -> ());
  (* growth past the initial 64-slot arrays keeps ordering *)
  for i = 199 downto 0 do
    Sched.Heap.push h ~key:i ~seq:i i
  done;
  for i = 0 to 199 do
    check int "grown heap in order" i (Sched.Heap.pop h)
  done

(* --- random fiber scenarios --- *)

type op = Op_wait of int | Op_disk of int | Op_dec of int

let op_gen =
  QCheck.Gen.(
    map2
      (fun kind ns ->
        match kind with 0 -> Op_wait ns | 1 -> Op_disk ns | _ -> Op_dec ns)
      (int_bound 2) (int_bound 1000))

let op_print = function
  | Op_wait ns -> Printf.sprintf "wait %d" ns
  | Op_disk ns -> Printf.sprintf "disk %d" ns
  | Op_dec ns -> Printf.sprintf "dec %d" ns

let fibers_gen = QCheck.Gen.(list_size (1 -- 5) (list_size (0 -- 6) op_gen))

let fibers_print fibers =
  String.concat "; "
    (List.map
       (fun ops -> "[" ^ String.concat ", " (List.map op_print ops) ^ "]")
       fibers)

let scenario_arb =
  QCheck.make
    ~print:(fun (d, s, fibers) ->
      Printf.sprintf "disk=%d decompress=%d %s" d s (fibers_print fibers))
    QCheck.Gen.(triple (1 -- 3) (1 -- 3) fibers_gen)

(* run every fiber's ops on one scheduler, logging (fiber, clock) after
   each op — the observable interleaving *)
let run_scenario ~disk ~decomp fibers =
  let sched = Sched.create ~disk_capacity:disk ~decompress_slots:decomp () in
  let log = ref [] in
  List.iteri
    (fun i ops ->
      let tl = Sched.timeline sched in
      let clk = Sched.timeline_clock tl in
      Sched.spawn sched tl (fun () ->
          List.iter
            (fun op ->
              (match op with
              | Op_wait ns -> Sched.wait ns
              | Op_disk ns -> Sched.busy Sched.Disk ns
              | Op_dec ns -> Sched.busy Sched.Decompress ns);
              log := (i, Clock.now clk) :: !log)
            ops))
      fibers;
  Sched.run sched;
  (sched, List.rev !log)

let qcheck_resource_conservation =
  QCheck.Test.make ~count:300
    ~name:"resources: acquires = releases, FIFO grants, peak <= capacity"
    scenario_arb
    (fun (disk, decomp, fibers) ->
      let sched, _ = run_scenario ~disk ~decomp fibers in
      let count p =
        List.fold_left
          (fun acc ops -> acc + List.length (List.filter p ops))
          0 fibers
      in
      let conserved r expected =
        let st = Sched.resource_stats sched r in
        st.Sched.acquires = expected
        && st.Sched.releases = expected
        && st.Sched.peak_in_use <= st.Sched.capacity
        && st.Sched.grant_order = List.init expected (fun i -> i + 1)
      in
      conserved Sched.Disk (count (function Op_disk _ -> true | _ -> false))
      && conserved Sched.Decompress
           (count (function Op_dec _ -> true | _ -> false)))

let qcheck_determinism =
  QCheck.Test.make ~count:200
    ~name:"same scenario, fresh scheduler: identical interleaving"
    scenario_arb
    (fun (disk, decomp, fibers) ->
      let s1, log1 = run_scenario ~disk ~decomp fibers in
      let s2, log2 = run_scenario ~disk ~decomp fibers in
      log1 = log2 && Sched.now s1 = Sched.now s2)

let test_determinism_across_domains () =
  (* the boot_contended jobs-invariance protocol gives each worker its
     own scheduler; the primitive claim is that a run reads no ambient
     state, so a run inside a spawned domain matches one here *)
  let fibers =
    [
      [ Op_disk 300; Op_wait 50; Op_dec 200 ];
      [ Op_dec 100; Op_disk 100 ];
      [ Op_wait 10; Op_disk 80; Op_dec 80 ];
    ]
  in
  let here = run_scenario ~disk:1 ~decomp:1 fibers in
  let there =
    Domain.join (Domain.spawn (fun () -> run_scenario ~disk:1 ~decomp:1 fibers))
  in
  check Alcotest.bool "same interleaving in a fresh domain" true
    (snd here = snd there);
  check int "same makespan" (Sched.now (fst here)) (Sched.now (fst there))

(* --- error paths --- *)

let test_rejects_bad_arguments () =
  (match Sched.create ~disk_capacity:0 () with
  | (_ : Sched.t) -> Alcotest.fail "zero disk capacity accepted"
  | exception Invalid_argument _ -> ());
  (match Sched.create ~decompress_slots:0 () with
  | (_ : Sched.t) -> Alcotest.fail "zero decompress slots accepted"
  | exception Invalid_argument _ -> ());
  let sched = Sched.create () in
  let tl = Sched.timeline sched in
  (match Sched.spawn ~at:(-1) sched tl ignore with
  | () -> Alcotest.fail "negative start time accepted"
  | exception Invalid_argument _ -> ());
  (* negative durations mirror Clock.advance: validated before the
     effect is performed, so the fiber dies and run re-raises *)
  Sched.spawn sched tl (fun () -> Sched.wait (-1));
  Alcotest.check_raises "negative wait"
    (Invalid_argument "Sched.wait: negative duration") (fun () ->
      Sched.run sched);
  let sched = Sched.create () in
  let tl = Sched.timeline sched in
  Sched.spawn sched tl (fun () -> Sched.busy Sched.Disk (-1));
  Alcotest.check_raises "negative busy"
    (Invalid_argument "Sched.busy: negative duration") (fun () ->
      Sched.run sched)

let test_charge_checks_timeline_binding () =
  let sched = Sched.create () in
  let tl = Sched.timeline sched in
  let foreign = Trace.create (Clock.create ()) in
  match Charge.create ~sched:tl foreign Cost_model.default with
  | (_ : Charge.t) -> Alcotest.fail "trace on a foreign clock accepted"
  | exception Invalid_argument _ -> ()

let test_fiber_failure_is_first_chronologically () =
  (* run finishes the surviving fibers, then re-raises the failure with
     the earliest event time — deterministic, not spawn-order-dependent *)
  let sched = Sched.create ~disk_capacity:2 () in
  let finished = ref 0 in
  let tl1 = Sched.timeline sched in
  Sched.spawn sched tl1 (fun () ->
      Sched.wait 500;
      failwith "late");
  let tl2 = Sched.timeline sched in
  Sched.spawn sched tl2 (fun () ->
      Sched.wait 100;
      failwith "early");
  let tl3 = Sched.timeline sched in
  Sched.spawn sched tl3 (fun () ->
      Sched.busy Sched.Disk 800;
      incr finished);
  (match Sched.run sched with
  | () -> Alcotest.fail "expected the fiber failure"
  | exception Failure m -> check Alcotest.string "first failure" "early" m);
  check int "survivor still completed" 1 !finished;
  check int "makespan covers the survivor" 800 (Sched.now sched)

(* --- deadlines at scheduled span boundaries (mirrors test_vclock) --- *)

let test_deadline_at_event_boundary () =
  let sched = Sched.create () in
  let tl = Sched.timeline sched in
  let clk = Sched.timeline_clock tl in
  let trace = Trace.create clk in
  let ch = Charge.create ~sched:tl trace Cost_model.default in
  let message = ref "" in
  Sched.spawn sched tl (fun () ->
      let d = Deadline.arm clk ~label:"boot" ~budget_ns:100 in
      Charge.set_deadline ch (Some d);
      Charge.span ch Trace.In_monitor "within" (fun () -> Charge.pay ch 90);
      try
        Charge.span ch Trace.In_monitor "overrun" (fun () -> Charge.pay ch 50);
        Alcotest.fail "expected Deadline.Exceeded"
      with Deadline.Exceeded m -> message := m);
  Sched.run sched;
  check Alcotest.string "typed overrun at span close"
    "boot: budget 100 ns overrun by 40 ns" !message;
  check int "both spans recorded" 2 (List.length (Trace.spans trace));
  check int "clock includes the overrun" 140 (Clock.now clk)

let test_deadline_charges_queue_wait () =
  (* the overrun comes entirely from queueing behind another boot: the
     charged cost alone fits the budget, the stretched span does not *)
  let sched = Sched.create () in
  let hold = Sched.timeline sched in
  Sched.spawn sched hold (fun () -> Sched.busy Sched.Disk 80);
  let tl = Sched.timeline sched in
  let clk = Sched.timeline_clock tl in
  let trace = Trace.create clk in
  let ch = Charge.create ~sched:tl trace Cost_model.default in
  let message = ref "" in
  Sched.spawn sched tl (fun () ->
      let d = Deadline.arm clk ~label:"read" ~budget_ns:100 in
      Charge.set_deadline ch (Some d);
      try
        Charge.span ch Trace.In_monitor "contended" (fun () ->
            Charge.pay_using ch Sched.Disk 80);
        Alcotest.fail "expected Deadline.Exceeded"
      with Deadline.Exceeded m -> message := m);
  Sched.run sched;
  check Alcotest.string "queue wait counts against the budget"
    "read: budget 100 ns overrun by 60 ns" !message;
  match Trace.spans trace with
  | [ s ] ->
      check int "span start" 0 s.Trace.start_ns;
      check int "span stretched by the 80 ns queue wait" 160 s.Trace.stop_ns
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

(* --- contention sanity envelope --- *)

(* one Charge-level span per op, as a boot path would record it *)
let span_workload ch ops =
  List.iteri
    (fun j op ->
      Charge.span ch Trace.In_monitor (Printf.sprintf "op%d" j) (fun () ->
          match op with
          | Op_wait ns -> Charge.pay ch ns
          | Op_disk ns -> Charge.pay_using ch Sched.Disk ns
          | Op_dec ns -> Charge.pay_using ch Sched.Decompress ns))
    ops

let solo_spans ops =
  let trace = Trace.create (Clock.create ()) in
  let ch = Charge.create trace Cost_model.default in
  span_workload ch ops;
  Trace.spans trace

let qcheck_ample_capacity_is_solo =
  QCheck.Test.make ~count:200
    ~name:"capacity >= n fibers: every boot's spans equal its solo run"
    (QCheck.make ~print:fibers_print fibers_gen)
    (fun fibers ->
      let n = List.length fibers in
      let sched = Sched.create ~disk_capacity:n ~decompress_slots:n () in
      let traces =
        List.map
          (fun ops ->
            let tl = Sched.timeline sched in
            let trace = Trace.create (Sched.timeline_clock tl) in
            let ch = Charge.create ~sched:tl trace Cost_model.default in
            Sched.spawn sched tl (fun () -> span_workload ch ops);
            trace)
          fibers
      in
      Sched.run sched;
      List.for_all2
        (fun ops trace -> Trace.spans trace = solo_spans ops)
        fibers traces)

let qcheck_capacity_one_serializes =
  QCheck.Test.make ~count:200
    ~name:"capacity 1, busy-only fibers: makespan = serialized sum"
    QCheck.(
      list_of_size Gen.(1 -- 5) (list_of_size Gen.(0 -- 5) (int_bound 500)))
    (fun fibers ->
      let sched = Sched.create () in
      List.iter
        (fun ops ->
          let tl = Sched.timeline sched in
          Sched.spawn sched tl (fun () ->
              List.iter (fun ns -> Sched.busy Sched.Disk ns) ops))
        fibers;
      Sched.run sched;
      Sched.now sched
      = List.fold_left (List.fold_left ( + )) 0 fibers)

let test_capacity_one_pinned () =
  (* three boots, one disk unit: grants run FIFO and each fiber's clock
     lands exactly at the serialized schedule *)
  let sched = Sched.create () in
  let finish = Array.make 3 0 in
  List.iteri
    (fun i ns ->
      let tl = Sched.timeline sched in
      let clk = Sched.timeline_clock tl in
      Sched.spawn sched tl (fun () ->
          Sched.busy Sched.Disk ns;
          finish.(i) <- Clock.now clk))
    [ 300; 100; 200 ];
  Sched.run sched;
  check int "fiber 0 holds [0,300]" 300 finish.(0);
  check int "fiber 1 served [300,400]" 400 finish.(1);
  check int "fiber 2 served [400,600]" 600 finish.(2);
  check int "makespan = serialized sum" 600 (Sched.now sched);
  let st = Sched.resource_stats sched Sched.Disk in
  check int "never above capacity" 1 st.Sched.peak_in_use;
  check (Alcotest.list int) "FIFO grant order" [ 1; 2; 3 ] st.Sched.grant_order

let test_ample_capacity_pinned () =
  (* the vacuity guard's pinned twin: two fibers, two units each — both
     record exactly their solo spans and the makespan is the slower solo *)
  (* fiber a decompresses over [350,750], fiber b over [300,450]: the
     holds overlap, so one slot would queue — two slots must not *)
  let ops_a = [ Op_disk 250; Op_wait 100; Op_dec 400 ] in
  let ops_b = [ Op_wait 300; Op_dec 150; Op_disk 50 ] in
  let sched = Sched.create ~disk_capacity:2 ~decompress_slots:2 () in
  let boot ops =
    let tl = Sched.timeline sched in
    let trace = Trace.create (Sched.timeline_clock tl) in
    let ch = Charge.create ~sched:tl trace Cost_model.default in
    Sched.spawn sched tl (fun () -> span_workload ch ops);
    trace
  in
  let ta = boot ops_a and tb = boot ops_b in
  Sched.run sched;
  check Alcotest.bool "fiber a = solo" true (Trace.spans ta = solo_spans ops_a);
  check Alcotest.bool "fiber b = solo" true (Trace.spans tb = solo_spans ops_b);
  check int "makespan = slower solo total" 750 (Sched.now sched);
  let st = Sched.resource_stats sched Sched.Decompress in
  check int "both slots actually used" 2 st.Sched.peak_in_use

let () =
  Alcotest.run "sched"
    [
      ( "heap",
        [
          Alcotest.test_case "empty access and growth" `Quick
            test_heap_empty_access;
          Testkit.to_alcotest qcheck_heap_ordering;
        ] );
      ( "resources",
        [
          Testkit.to_alcotest qcheck_resource_conservation;
          Alcotest.test_case "capacity-1 serialization (pinned)" `Quick
            test_capacity_one_pinned;
          Testkit.to_alcotest qcheck_capacity_one_serializes;
        ] );
      ( "determinism",
        [
          Testkit.to_alcotest qcheck_determinism;
          Alcotest.test_case "fresh domain, same interleaving" `Quick
            test_determinism_across_domains;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "overrun at span close" `Quick
            test_deadline_at_event_boundary;
          Alcotest.test_case "queue wait counts against budget" `Quick
            test_deadline_charges_queue_wait;
        ] );
      ( "solo-equivalence",
        [
          Testkit.to_alcotest qcheck_ample_capacity_is_solo;
          Alcotest.test_case "ample capacity (pinned)" `Quick
            test_ample_capacity_pinned;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad arguments" `Quick test_rejects_bad_arguments;
          Alcotest.test_case "charge checks timeline binding" `Quick
            test_charge_checks_timeline_binding;
          Alcotest.test_case "first failure chronologically" `Quick
            test_fiber_failure_is_first_chronologically;
        ] );
    ]
