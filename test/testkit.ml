(* Shared helpers for the integration-level test suites: small kernels,
   one-call boots through the monitor, and corruption utilities. *)

open Imk_monitor

let small_config ?(preset = Imk_kernel.Config.Aws) ?(functions = 80)
    ?(variant = Imk_kernel.Config.Kaslr) ?(seed = 9L) () =
  { (Imk_kernel.Config.make ~scale:4 ~seed preset variant) with
    Imk_kernel.Config.functions }

type env = {
  disk : Imk_storage.Disk.t;
  cache : Imk_storage.Page_cache.t;
  built : Imk_kernel.Image.built;
  cfg : Imk_kernel.Config.t;
}

let make_env ?preset ?functions ?variant ?seed () =
  let cfg = small_config ?preset ?functions ?variant ?seed () in
  let built = Imk_kernel.Image.build cfg in
  let disk = Imk_storage.Disk.create () in
  let cache = Imk_storage.Page_cache.create disk in
  Imk_storage.Disk.add disk ~name:(cfg.Imk_kernel.Config.name ^ ".vmlinux")
    built.Imk_kernel.Image.vmlinux;
  Imk_storage.Disk.add disk ~name:(cfg.Imk_kernel.Config.name ^ ".relocs")
    built.Imk_kernel.Image.relocs_bytes;
  { disk; cache; built; cfg }

let vmlinux_path env = env.cfg.Imk_kernel.Config.name ^ ".vmlinux"
let relocs_path env = env.cfg.Imk_kernel.Config.name ^ ".relocs"

let add_bzimage env ~codec ~variant =
  let bz = Imk_kernel.Bzimage.link env.built ~codec ~variant in
  let name =
    Printf.sprintf "%s.bz-%s-%s" env.cfg.Imk_kernel.Config.name codec
      (Imk_kernel.Bzimage.variant_name variant)
  in
  Imk_storage.Disk.add env.disk ~name (Imk_kernel.Bzimage.encode bz);
  name

let charge () =
  let clock = Imk_vclock.Clock.create () in
  let trace = Imk_vclock.Trace.create clock in
  (trace, Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default)

let boot ?(rando = Vm_config.Rando_kaslr) ?flavor ?kallsyms ?orc ?loader
    ?plans ?(seed = 42L) ?(mem_bytes = 64 * 1024 * 1024) ?kernel_path ?relocs
    env =
  let kernel_path = Option.value ~default:(vmlinux_path env) kernel_path in
  let relocs_path =
    match relocs with
    | Some r -> r
    | None ->
        if rando = Vm_config.Rando_off then None else Some (relocs_path env)
  in
  let vm =
    Vm_config.make ?flavor ?kallsyms ?orc ?loader ~rando ~relocs_path
      ~mem_bytes ~kernel_path ~kernel_config:env.cfg ~seed ()
  in
  let trace, ch = charge () in
  let result = Vmm.boot ?plans ch env.cache vm in
  (trace, result)
