(* Shared helpers for the integration-level test suites: small kernels,
   one-call boots through the monitor, and corruption utilities. *)

open Imk_monitor

let small_config ?(preset = Imk_kernel.Config.Aws) ?(functions = 80)
    ?(variant = Imk_kernel.Config.Kaslr) ?(seed = 9L) () =
  { (Imk_kernel.Config.make ~scale:4 ~seed preset variant) with
    Imk_kernel.Config.functions }

type env = {
  disk : Imk_storage.Disk.t;
  cache : Imk_storage.Page_cache.t;
  built : Imk_kernel.Image.built;
  cfg : Imk_kernel.Config.t;
}

let make_env ?preset ?functions ?variant ?seed () =
  let cfg = small_config ?preset ?functions ?variant ?seed () in
  let built = Imk_kernel.Image.build cfg in
  let disk = Imk_storage.Disk.create () in
  let cache = Imk_storage.Page_cache.create disk in
  Imk_storage.Disk.add disk ~name:(cfg.Imk_kernel.Config.name ^ ".vmlinux")
    built.Imk_kernel.Image.vmlinux;
  Imk_storage.Disk.add disk ~name:(cfg.Imk_kernel.Config.name ^ ".relocs")
    built.Imk_kernel.Image.relocs_bytes;
  { disk; cache; built; cfg }

let vmlinux_path env = env.cfg.Imk_kernel.Config.name ^ ".vmlinux"
let relocs_path env = env.cfg.Imk_kernel.Config.name ^ ".relocs"

let add_bzimage env ~codec ~variant =
  let bz = Imk_kernel.Bzimage.link env.built ~codec ~variant in
  let name =
    Printf.sprintf "%s.bz-%s-%s" env.cfg.Imk_kernel.Config.name codec
      (Imk_kernel.Bzimage.variant_name variant)
  in
  Imk_storage.Disk.add env.disk ~name (Imk_kernel.Bzimage.encode bz);
  name

let charge () =
  let clock = Imk_vclock.Clock.create () in
  let trace = Imk_vclock.Trace.create clock in
  (trace, Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default)

let boot ?(rando = Vm_config.Rando_kaslr) ?flavor ?kallsyms ?orc ?loader
    ?plans ?(seed = 42L) ?(mem_bytes = 64 * 1024 * 1024) ?kernel_path ?relocs
    env =
  let kernel_path = Option.value ~default:(vmlinux_path env) kernel_path in
  let relocs_path =
    match relocs with
    | Some r -> r
    | None ->
        if rando = Vm_config.Rando_off then None else Some (relocs_path env)
  in
  let vm =
    Vm_config.make ?flavor ?kallsyms ?orc ?loader ~rando ~relocs_path
      ~mem_bytes ~kernel_path ~kernel_config:env.cfg ~seed ()
  in
  let trace, ch = charge () in
  let result = Vmm.boot ?plans ch env.cache vm in
  (trace, result)

(* --- a pristine single-kernel disk: campaigns that corrupt on-disk
   artifacts (test_fault) take a private copy per run so the shared env
   stays clean --- *)

let pristine_disk env =
  let disk = Imk_storage.Disk.create () in
  Imk_storage.Disk.add disk ~name:(vmlinux_path env)
    env.built.Imk_kernel.Image.vmlinux;
  Imk_storage.Disk.add disk ~name:(relocs_path env)
    env.built.Imk_kernel.Image.relocs_bytes;
  disk

(* corruption helper shared by the rejection tests: chop the tail off an
   encoded artifact — decoders must reject it, never read past the end *)
let truncated ?(drop = 5) b = Bytes.sub b 0 (max 0 (Bytes.length b - drop))

(* --- qcheck generators for the kernel matrix: suites draw cells from
   these instead of hand-rolled lists, and a failing case shrinks toward
   the simplest cell (lupine-nokaslr, none-opt, smallest kernel) — the
   same walk Imk_check.Shrink does for campaign points --- *)

let earlier_in xs x =
  let rec go acc = function
    | [] -> []
    | y :: _ when y = x -> List.rev acc
    | y :: tl -> go (y :: acc) tl
  in
  go [] xs

let arb_of_order ~print xs =
  QCheck.make ~print
    ~shrink:(fun x -> QCheck.Iter.of_list (earlier_in xs x))
    (QCheck.Gen.oneofl xs)

let arb_preset =
  arb_of_order ~print:Imk_kernel.Config.preset_name
    Imk_kernel.Config.all_presets

let arb_variant =
  arb_of_order ~print:Imk_kernel.Config.variant_name
    Imk_kernel.Config.all_variants

let arb_codec = arb_of_order ~print:Fun.id Imk_check.Point.codecs

(* int_range already shrinks toward its low bound *)
let arb_scale = QCheck.int_range 1 4

(* a full differential-campaign point; the shrinker is the campaign's
   own candidate walk, so qcheck minimizes exactly like --exp diffcheck *)
let arb_point =
  let gen =
    QCheck.Gen.map
      (fun (((preset, variant), (codec, functions)), seed) ->
        { Imk_check.Point.preset; variant; codec; functions;
          seed = Int64.of_int seed })
      QCheck.Gen.(
        pair
          (pair
             (pair
                (oneofl Imk_kernel.Config.all_presets)
                (oneofl Imk_kernel.Config.all_variants))
             (pair (oneofl Imk_check.Point.codecs) (int_range 8 64)))
          (int_bound 10_000))
  in
  QCheck.make ~print:Imk_check.Point.name
    ~shrink:(fun p -> QCheck.Iter.of_list (Imk_check.Shrink.candidates p))
    gen

(* --- alcotest adapter: one seed per process, printed with a repro
   one-liner when a property fails. QCHECK_SEED pins it (the same
   variable qcheck-alcotest honors natively), so the printed command
   replays the exact generator sequence. --- *)

let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> invalid_arg "QCHECK_SEED must be an integer")
    | None ->
        Random.self_init ();
        Random.int 1_000_000_000)

let to_alcotest ?speed_level test =
  let seed = Lazy.force qcheck_seed in
  let rand = Random.State.make [| seed |] in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ?speed_level ~rand test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.printf
          "[qcheck] %S failed under seed %d; replay it with:\n\
           [qcheck]   QCHECK_SEED=%d dune exec test/%s --\n\
           %!"
          name seed seed
          (Filename.basename Sys.executable_name);
        raise e )
