(* Tests for Imk_vclock: clock arithmetic, trace phase accounting, and the
   calibrated cost model's invariants. *)

open Imk_vclock

let check = Alcotest.check
let int = Alcotest.int

let test_clock_basics () =
  let c = Clock.create () in
  check int "starts at 0" 0 (Clock.now c);
  Clock.advance c 5;
  Clock.advance c 7;
  check int "accumulates" 12 (Clock.now c);
  check int "elapsed" 7 (Clock.elapsed_since c 5);
  Clock.reset c;
  check int "reset" 0 (Clock.now c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance c (-1))

let test_trace_breakdown () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.with_span t Trace.In_monitor "load" (fun () -> Clock.advance c 100);
  Trace.with_span t Trace.Decompression "lz4" (fun () -> Clock.advance c 300);
  Trace.with_span t Trace.Linux_boot "init" (fun () -> Clock.advance c 50);
  check int "in-monitor" 100 (Trace.phase_total t Trace.In_monitor);
  check int "decompression" 300 (Trace.phase_total t Trace.Decompression);
  check int "linux boot" 50 (Trace.phase_total t Trace.Linux_boot);
  check int "bootstrap setup empty" 0 (Trace.phase_total t Trace.Bootstrap_setup);
  check int "total" 450 (Trace.total t)

let test_trace_nested_same_phase () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.with_span t Trace.In_monitor "outer" (fun () ->
      Clock.advance c 10;
      Trace.with_span t Trace.In_monitor "inner" (fun () -> Clock.advance c 20);
      Clock.advance c 5);
  (* nested same-phase spans must not double count *)
  check int "no double count" 35 (Trace.phase_total t Trace.In_monitor)

let test_trace_exception_still_records () =
  let c = Clock.create () in
  let t = Trace.create c in
  (try
     Trace.with_span t Trace.Linux_boot "panic" (fun () ->
         Clock.advance c 42;
         failwith "guest panic")
   with Failure _ -> ());
  check int "span recorded" 42 (Trace.phase_total t Trace.Linux_boot)

let test_trace_reset () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.with_span t Trace.In_monitor "x" (fun () -> Clock.advance c 9);
  Trace.reset t;
  check int "cleared" 0 (Trace.total t);
  check int "clock reset" 0 (Clock.now c)

let test_tracepoint_zero_length () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.tracepoint t Trace.Linux_boot "port_io";
  check int "no duration" 0 (Trace.total t);
  check int "recorded" 1 (List.length (Trace.spans t))

let test_deadline_basics () =
  let c = Clock.create () in
  let d = Deadline.arm c ~label:"boot" ~budget_ns:100 in
  check Alcotest.bool "armed" true (Deadline.armed d);
  check int "budget" 100 (Deadline.budget_ns d);
  check Alcotest.string "label" "boot" (Deadline.label d);
  check int "full budget remaining" 100 (Deadline.remaining_ns d);
  Clock.advance c 60;
  check int "remaining after spend" 40 (Deadline.remaining_ns d);
  Deadline.check d;
  Clock.advance c 40;
  (* spending exactly the budget is not an overrun *)
  check Alcotest.bool "at the limit" false (Deadline.exceeded d);
  Deadline.check d;
  Clock.advance c 1;
  check Alcotest.bool "past the limit" true (Deadline.exceeded d);
  check int "remaining clamps at zero" 0 (Deadline.remaining_ns d);
  Alcotest.check_raises "typed overrun"
    (Deadline.Exceeded "boot: budget 100 ns overrun by 1 ns") (fun () ->
      Deadline.check d)

let test_deadline_rearm_and_disarm () =
  let c = Clock.create () in
  let d = Deadline.arm c ~label:"x" ~budget_ns:10 in
  Clock.advance c 50;
  (* a fresh budget counts from now, not from arm time *)
  Deadline.rearm d ~budget_ns:30;
  check int "rearmed remaining" 30 (Deadline.remaining_ns d);
  Clock.advance c 31;
  check Alcotest.bool "overrun again" true (Deadline.exceeded d);
  Deadline.disarm d;
  check Alcotest.bool "disarmed" false (Deadline.armed d);
  check Alcotest.bool "disarmed never exceeded" false (Deadline.exceeded d);
  Deadline.check d

let test_deadline_rejects_nonpositive_budget () =
  let c = Clock.create () in
  (match Deadline.arm c ~label:"x" ~budget_ns:0 with
  | (_ : Deadline.t) -> Alcotest.fail "zero budget armed"
  | exception Invalid_argument _ -> ());
  let d = Deadline.arm c ~label:"x" ~budget_ns:1 in
  match Deadline.rearm d ~budget_ns:(-1) with
  | () -> Alcotest.fail "negative budget rearmed"
  | exception Invalid_argument _ -> ()

let test_charge_span_enforces_deadline_at_boundary () =
  let c = Clock.create () in
  let t = Trace.create c in
  let ch = Charge.create t Cost_model.default in
  let d = Deadline.arm c ~label:"attempt" ~budget_ns:100 in
  Charge.set_deadline ch (Some d);
  Charge.span ch Trace.In_monitor "within" (fun () -> Clock.advance c 90);
  (* the overrunning phase completes its work and records its span;
     the typed overrun surfaces only at the phase boundary *)
  (try
     Charge.span ch Trace.In_monitor "overrun" (fun () -> Clock.advance c 50);
     Alcotest.fail "expected Deadline.Exceeded"
   with Deadline.Exceeded _ -> ());
  check int "both spans recorded" 140 (Trace.phase_total t Trace.In_monitor);
  (* an exception from the body wins over the deadline check *)
  Deadline.rearm d ~budget_ns:1;
  (try
     Charge.span ch Trace.Linux_boot "panic" (fun () ->
         Clock.advance c 10;
         (failwith "boom" : unit));
     Alcotest.fail "expected the body's exception"
   with Stdlib.Failure msg -> check Alcotest.string "body wins" "boom" msg);
  (* detaching the deadline stops enforcement *)
  Charge.set_deadline ch None;
  Charge.span ch Trace.In_monitor "unchecked" (fun () -> Clock.advance c 1_000)

(* Timeline stamps were pinned only indirectly (test_fleet's inlined
   queueing identities) before the Sched refactor; these pin the
   accessors directly so the event core can't silently drift them. *)

let test_timeline_accessors () =
  let s = Timeline.stamp ~arrival_ns:10 ~start_ns:25 ~finish_ns:100 in
  check int "queue wait" 15 (Timeline.queue_wait_ns s);
  check int "service" 75 (Timeline.service_ns s);
  check int "sojourn" 90 (Timeline.sojourn_ns s);
  check int "sojourn = wait + service"
    (Timeline.queue_wait_ns s + Timeline.service_ns s)
    (Timeline.sojourn_ns s)

let test_timeline_degenerate_stamp () =
  (* arrival = start = finish: served instantly with no wait — every
     accessor must report exactly zero, including at time 0 *)
  List.iter
    (fun t ->
      let s = Timeline.stamp ~arrival_ns:t ~start_ns:t ~finish_ns:t in
      check int "zero wait" 0 (Timeline.queue_wait_ns s);
      check int "zero service" 0 (Timeline.service_ns s);
      check int "zero sojourn" 0 (Timeline.sojourn_ns s))
    [ 0; 7; max_int ]

let test_timeline_rejects_misordered () =
  (match Timeline.stamp ~arrival_ns:(-1) ~start_ns:0 ~finish_ns:0 with
  | (_ : Timeline.stamp) -> Alcotest.fail "negative arrival accepted"
  | exception Invalid_argument _ -> ());
  (match Timeline.stamp ~arrival_ns:5 ~start_ns:4 ~finish_ns:9 with
  | (_ : Timeline.stamp) -> Alcotest.fail "start before arrival accepted"
  | exception Invalid_argument _ -> ());
  match Timeline.stamp ~arrival_ns:5 ~start_ns:6 ~finish_ns:5 with
  | (_ : Timeline.stamp) -> Alcotest.fail "finish before start accepted"
  | exception Invalid_argument _ -> ()

let cm = Cost_model.default

let test_read_cost_monotone () =
  let small = Cost_model.read_cost cm ~cached:true (1 lsl 20) in
  let large = Cost_model.read_cost cm ~cached:true (1 lsl 24) in
  check Alcotest.bool "monotone in size" true (large > small);
  let cold = Cost_model.read_cost cm ~cached:false (1 lsl 20) in
  check Alcotest.bool "cold slower than cached" true (cold > small)

let test_read_cost_calibration () =
  (* 39 MiB cached at 8 GB/s should be around 5 ms, the AWS-kernel load
     time implied by Figure 9 *)
  let ns = Cost_model.read_cost cm ~cached:true (39 * 1024 * 1024) in
  let ms = Imk_util.Units.ns_to_ms ns in
  check Alcotest.bool "within [3,8] ms" true (ms > 3. && ms < 8.)

let test_guest_memcpy_slower () =
  let host = Cost_model.memcpy_cost cm ~in_guest:false (1 lsl 20) in
  let guest = Cost_model.memcpy_cost cm ~in_guest:true (1 lsl 20) in
  check Alcotest.bool "guest slower" true (guest > host)

let test_reloc_costs () =
  let monitor = Cost_model.reloc_cost cm ~in_guest:false ~entries:100_000 in
  let guest = Cost_model.reloc_cost cm ~in_guest:true ~entries:100_000 in
  check Alcotest.bool "guest relocs slower" true (guest > monitor);
  let fg =
    Cost_model.fg_reloc_cost cm ~in_guest:false ~entries:100_000 ~sections:40_000
  in
  check Alcotest.bool "fg adds binary search" true (fg > monitor)

let test_fg_reloc_scales_with_sections () =
  let few =
    Cost_model.fg_reloc_cost cm ~in_guest:false ~entries:10_000 ~sections:16
  in
  let many =
    Cost_model.fg_reloc_cost cm ~in_guest:false ~entries:10_000 ~sections:65536
  in
  check Alcotest.bool "deeper search costs more" true (many > few)

let test_decompress_rates_ordered () =
  (* Figure 3's premise: lz4 decompresses fastest, lzma slowest *)
  let rate c = Cost_model.decompress_rate_bps ~codec:c in
  check Alcotest.bool "lz4 > lzo" true (rate "lz4" > rate "lzo");
  check Alcotest.bool "lzo > gzip" true (rate "lzo" > rate "gzip");
  check Alcotest.bool "gzip > bzip2" true (rate "gzip" > rate "bzip2");
  check Alcotest.bool "bzip2 > xz" true (rate "bzip2" > rate "xz");
  check Alcotest.bool "xz > lzma" true (rate "xz" > rate "lzma")

let test_decompress_none_free () =
  check int "none costs nothing" 0
    (Cost_model.decompress_cost cm ~codec:"none" ~out_bytes:(1 lsl 30))

let test_decompress_unknown () =
  Alcotest.check_raises "unknown codec"
    (Invalid_argument "Cost_model.decompress_rate_bps: unknown codec zip")
    (fun () -> ignore (Cost_model.decompress_cost cm ~codec:"zip" ~out_bytes:1))

let test_jitter_positive_and_near () =
  let rng = Imk_entropy.Prng.create ~seed:77L in
  for _ = 1 to 200 do
    let v = Cost_model.jitter cm rng 10_000_000 in
    check Alcotest.bool "positive" true (v > 0);
    check Alcotest.bool "near original" true
      (v > 8_000_000 && v < 12_000_000)
  done

let test_trace_export_chrome_json () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.with_span t Trace.In_monitor "load \"kernel\"" (fun () ->
      Clock.advance c 1_000_000);
  Trace.tracepoint t Trace.Linux_boot "init";
  let json = Trace_export.to_chrome_json ~process_name:"test" t in
  let contains needle =
    let n = String.length json and m = String.length needle in
    let rec go i = i + m <= n && (String.sub json i m = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "array" true (json.[0] = '[');
  check Alcotest.bool "escaped quotes" true
    (contains "load \\\"kernel\\\"");
  check Alcotest.bool "complete event" true (contains "\"ph\":\"X\"");
  check Alcotest.bool "instant event" true (contains "\"ph\":\"i\"");
  check Alcotest.bool "duration in us" true (contains "\"dur\":1000.000")

let qcheck_costs_nonnegative =
  QCheck.Test.make ~name:"all costs are non-negative" ~count:300
    QCheck.(pair (int_bound 100_000_000) (int_bound 1_000_000))
    (fun (bytes, entries) ->
      Cost_model.read_cost cm ~cached:true bytes >= 0
      && Cost_model.read_cost cm ~cached:false bytes >= 0
      && Cost_model.memcpy_cost cm ~in_guest:true bytes >= 0
      && Cost_model.zero_cost cm bytes >= 0
      && Cost_model.reloc_cost cm ~in_guest:true ~entries >= 0
      && Cost_model.fg_reloc_cost cm ~in_guest:false ~entries ~sections:1 >= 0)

let () =
  Alcotest.run "imk_vclock"
    [
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "negative rejected" `Quick test_clock_negative;
        ] );
      ( "trace",
        [
          Alcotest.test_case "breakdown" `Quick test_trace_breakdown;
          Alcotest.test_case "nested same phase" `Quick
            test_trace_nested_same_phase;
          Alcotest.test_case "exception safety" `Quick
            test_trace_exception_still_records;
          Alcotest.test_case "reset" `Quick test_trace_reset;
          Alcotest.test_case "tracepoint" `Quick test_tracepoint_zero_length;
          Alcotest.test_case "chrome export" `Quick
            test_trace_export_chrome_json;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "arm, spend, overrun" `Quick test_deadline_basics;
          Alcotest.test_case "rearm and disarm" `Quick
            test_deadline_rearm_and_disarm;
          Alcotest.test_case "non-positive budget rejected" `Quick
            test_deadline_rejects_nonpositive_budget;
          Alcotest.test_case "charge checks at phase boundary" `Quick
            test_charge_span_enforces_deadline_at_boundary;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "read cost monotone" `Quick test_read_cost_monotone;
          Alcotest.test_case "read cost calibration" `Quick
            test_read_cost_calibration;
          Alcotest.test_case "guest memcpy slower" `Quick
            test_guest_memcpy_slower;
          Alcotest.test_case "reloc costs" `Quick test_reloc_costs;
          Alcotest.test_case "fg reloc scales" `Quick
            test_fg_reloc_scales_with_sections;
          Alcotest.test_case "decompress rates ordered" `Quick
            test_decompress_rates_ordered;
          Alcotest.test_case "none decompression free" `Quick
            test_decompress_none_free;
          Alcotest.test_case "unknown codec" `Quick test_decompress_unknown;
          Alcotest.test_case "jitter" `Quick test_jitter_positive_and_near;
          Testkit.to_alcotest qcheck_costs_nonnegative;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "accessor identities" `Quick
            test_timeline_accessors;
          Alcotest.test_case "degenerate stamp" `Quick
            test_timeline_degenerate_stamp;
          Alcotest.test_case "rejects misordered stamps" `Quick
            test_timeline_rejects_misordered;
        ] );
    ]
