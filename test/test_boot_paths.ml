(* Integration tests across Imk_monitor + Imk_bootstrap: the full boot
   matrix (presets × variants × methods), capability/flavor validation,
   failure injection, randomization distinctness, and cost-shape
   assertions (who is faster than whom — the claims C1..C4). *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

(* --- the full matrix: every kernel variant boots via every method and
   passes runtime verification --- *)

let matrix_case preset variant method_ () =
  let rando =
    match variant with
    | Imk_kernel.Config.Nokaslr -> Vm_config.Rando_off
    | Imk_kernel.Config.Kaslr -> Vm_config.Rando_kaslr
    | Imk_kernel.Config.Fgkaslr -> Vm_config.Rando_fgkaslr
  in
  let env = Testkit.make_env ~preset ~variant ~functions:50 () in
  let trace, r =
    match method_ with
    | `Direct -> Testkit.boot env ~rando
    | `Bz_lz4 ->
        let path =
          Testkit.add_bzimage env ~codec:"lz4"
            ~variant:Imk_kernel.Bzimage.Standard
        in
        Testkit.boot env ~rando ~flavor:Vm_config.In_monitor_fgkaslr
          ~kernel_path:path ~relocs:None
    | `Bz_none_opt ->
        let path =
          Testkit.add_bzimage env ~codec:"none"
            ~variant:Imk_kernel.Bzimage.None_optimized
        in
        Testkit.boot env ~rando ~flavor:Vm_config.In_monitor_fgkaslr
          ~kernel_path:path ~relocs:None
  in
  check int "all functions verified" 50
    r.Vmm.stats.Imk_guest.Runtime.functions_visited;
  check Alcotest.bool "positive boot time" true (Imk_vclock.Trace.total trace > 0);
  (* randomized boots actually move the kernel *)
  let delta = Imk_guest.Boot_params.delta r.Vmm.params in
  match rando with
  | Vm_config.Rando_off -> check int "no offset" 0 delta
  | _ ->
      check Alcotest.bool "aligned offset" true
        (delta mod Imk_memory.Addr.kernel_align = 0)

let matrix_tests =
  List.concat_map
    (fun (pname, preset) ->
      List.concat_map
        (fun (vname, variant) ->
          List.map
            (fun (mname, m) ->
              Alcotest.test_case
                (Printf.sprintf "%s-%s via %s" pname vname mname)
                `Quick
                (matrix_case preset variant m))
            [ ("direct", `Direct); ("bz-lz4", `Bz_lz4); ("bz-none-opt", `Bz_none_opt) ])
        [
          ("nokaslr", Imk_kernel.Config.Nokaslr);
          ("kaslr", Imk_kernel.Config.Kaslr);
          ("fgkaslr", Imk_kernel.Config.Fgkaslr);
        ])
    [ ("lupine", Imk_kernel.Config.Lupine); ("aws", Imk_kernel.Config.Aws) ]

(* --- randomization distinctness --- *)

let test_different_seeds_different_layouts () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  let _, a = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr ~seed:1L in
  let _, b = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr ~seed:2L in
  check Alcotest.bool "different virtual bases or layouts" true
    (a.Vmm.params.Imk_guest.Boot_params.virt_base
     <> b.Vmm.params.Imk_guest.Boot_params.virt_base
    || not
         (Bytes.equal
            (Imk_memory.Guest_mem.raw a.Vmm.mem)
            (Imk_memory.Guest_mem.raw b.Vmm.mem)))

let test_same_seed_same_layout () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  let _, a = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr ~seed:5L in
  let _, b = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr ~seed:5L in
  check int "same base" a.Vmm.params.Imk_guest.Boot_params.virt_base
    b.Vmm.params.Imk_guest.Boot_params.virt_base;
  check Alcotest.bool "identical memory" true
    (Bytes.equal
       (Imk_memory.Guest_mem.raw a.Vmm.mem)
       (Imk_memory.Guest_mem.raw b.Vmm.mem))

let test_offsets_spread () =
  (* over several seeds the virtual base takes multiple values *)
  let env = Testkit.make_env () in
  let bases = Hashtbl.create 16 in
  for seed = 1 to 12 do
    let _, r = Testkit.boot env ~seed:(Int64.of_int seed) in
    Hashtbl.replace bases r.Vmm.params.Imk_guest.Boot_params.virt_base ()
  done;
  check Alcotest.bool "at least 6 distinct bases" true (Hashtbl.length bases >= 6)

(* --- capability / flavor validation --- *)

let expect_boot_error label f =
  Alcotest.test_case label `Quick (fun () ->
      check Alcotest.bool label true
        (try
           ignore (f ());
           false
         with Vmm.Boot_error _ -> true))

let capability_tests =
  [
    expect_boot_error "baseline rejects bzImage" (fun () ->
        let env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
        let path =
          Testkit.add_bzimage env ~codec:"lz4" ~variant:Imk_kernel.Bzimage.Standard
        in
        Testkit.boot env ~rando:Vm_config.Rando_off ~flavor:Vm_config.Baseline
          ~kernel_path:path);
    expect_boot_error "baseline rejects in-monitor kaslr" (fun () ->
        let env = Testkit.make_env () in
        Testkit.boot env ~flavor:Vm_config.Baseline ~rando:Vm_config.Rando_kaslr);
    expect_boot_error "kaslr flavor rejects fgkaslr" (fun () ->
        let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
        Testkit.boot env ~flavor:Vm_config.In_monitor_kaslr
          ~rando:Vm_config.Rando_fgkaslr);
    expect_boot_error "rando without relocs argument" (fun () ->
        let env = Testkit.make_env () in
        Testkit.boot env ~rando:Vm_config.Rando_kaslr ~relocs:None);
    expect_boot_error "fgkaslr on non-fg kernel" (fun () ->
        let env = Testkit.make_env ~variant:Imk_kernel.Config.Kaslr () in
        Testkit.boot env ~rando:Vm_config.Rando_fgkaslr);
    expect_boot_error "rando on nokaslr kernel (empty relocs)" (fun () ->
        let env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
        Testkit.boot env ~rando:Vm_config.Rando_kaslr);
    expect_boot_error "missing kernel image" (fun () ->
        let env = Testkit.make_env () in
        Testkit.boot env ~kernel_path:"nope.vmlinux");
    expect_boot_error "tiny guest memory" (fun () ->
        let env = Testkit.make_env () in
        Testkit.boot env ~mem_bytes:(8 * 1024 * 1024));
  ]

(* the relocs argument works when produced by the relocs tool instead of
   the build (Figure 8's alternative path) *)
let test_relocs_tool_output_boots () =
  let env = Testkit.make_env () in
  let extracted =
    Imk_kernel.Relocs_tool.extract env.Testkit.built.Imk_kernel.Image.vmlinux
  in
  Imk_storage.Disk.add env.Testkit.disk ~name:"tool.relocs"
    (Imk_elf.Relocation.encode extracted);
  let _, r = Testkit.boot env ~relocs:(Some "tool.relocs") in
  check int "verified" 80 r.Vmm.stats.Imk_guest.Runtime.functions_visited

(* --- failure injection: corrupt images must fail loudly, not boot --- *)

let test_corrupt_relocs_rejected () =
  let env = Testkit.make_env () in
  (* truncate the relocs file *)
  let good = env.Testkit.built.Imk_kernel.Image.relocs_bytes in
  Imk_storage.Disk.add env.Testkit.disk ~name:"bad.relocs"
    (Testkit.truncated good);
  check Alcotest.bool "rejected" true
    (try
       ignore (Testkit.boot env ~relocs:(Some "bad.relocs"));
       false
     with Imk_elf.Relocation.Bad_table _ -> true)

let test_wrong_relocs_detected_by_guest () =
  (* relocs from a *different* kernel: structurally valid, semantically
     wrong; the guest integrity walk must catch the mis-relocation *)
  let env = Testkit.make_env ~functions:50 ~seed:1L () in
  let other =
    Imk_kernel.Image.build
      { (Testkit.small_config ~functions:50 ~seed:2L ()) with
        Imk_kernel.Config.name = "other" }
  in
  Imk_storage.Disk.add env.Testkit.disk ~name:"wrong.relocs"
    other.Imk_kernel.Image.relocs_bytes;
  check Alcotest.bool "guest panics or reloc error" true
    (try
       ignore (Testkit.boot env ~relocs:(Some "wrong.relocs"));
       false
     with
    | Imk_guest.Runtime.Panic _ | Imk_randomize.Kaslr.Reloc_error _ -> true)

let test_corrupt_vmlinux_rejected () =
  let env = Testkit.make_env () in
  let bad = Bytes.copy env.Testkit.built.Imk_kernel.Image.vmlinux in
  (* corrupt the section header offset *)
  Imk_util.Byteio.set_addr bad 40 (Bytes.length bad * 4);
  Imk_storage.Disk.add env.Testkit.disk ~name:"bad.vmlinux" bad;
  check Alcotest.bool "rejected" true
    (try
       ignore (Testkit.boot env ~kernel_path:"bad.vmlinux");
       false
     with Vmm.Boot_error _ -> true)

let test_kernel_note_read_and_enforced () =
  let env = Testkit.make_env ~functions:40 () in
  (* the image carries the §4.3 constants note and boots normally *)
  let elf = Imk_elf.Parser.parse env.Testkit.built.Imk_kernel.Image.vmlinux in
  check Alcotest.bool "note present" true
    (Imk_elf.Types.section_by_name elf Imk_elf.Note.section_name <> None);
  let _, r = Testkit.boot env in
  check int "boots with note" 40 r.Vmm.stats.Imk_guest.Runtime.functions_visited;
  (* a kernel whose note declares a different address space is rejected *)
  let bad_note =
    Imk_elf.Note.encode
      (Imk_elf.Note.encode_kaslr
         {
           Imk_elf.Note.phys_start = 0x2000000 (* wrong *);
           phys_align = Imk_memory.Addr.kernel_align;
           kmap_base = Imk_memory.Addr.kmap_base;
           image_size_max = Imk_memory.Addr.kaslr_max_offset;
         })
  in
  let patched =
    Array.map
      (fun (s : Imk_elf.Types.section) ->
        if s.name = Imk_elf.Note.section_name then
          { s with Imk_elf.Types.data = bad_note; size = Bytes.length bad_note }
        else s)
      elf.Imk_elf.Types.sections
  in
  let bad = Imk_elf.Writer.write { elf with Imk_elf.Types.sections = patched } in
  Imk_storage.Disk.add env.Testkit.disk ~name:"foreign.vmlinux" bad;
  check Alcotest.bool "foreign kernel rejected" true
    (try
       ignore (Testkit.boot env ~kernel_path:"foreign.vmlinux");
       false
     with Vmm.Boot_error _ -> true)

(* --- cost-shape assertions (the paper's qualitative claims) --- *)

let boot_total env ?flavor ?kernel_path ?relocs ~rando () =
  let trace, _ = Testkit.boot env ?flavor ?kernel_path ?relocs ~rando in
  Imk_vclock.Trace.total trace

let test_claim_direct_beats_bzimage_cached () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
  let direct = boot_total env ~rando:Vm_config.Rando_off () in
  let bz =
    let path =
      Testkit.add_bzimage env ~codec:"lz4" ~variant:Imk_kernel.Bzimage.Standard
    in
    boot_total env ~flavor:Vm_config.Bzimage_support ~kernel_path:path
      ~relocs:None ~rando:Vm_config.Rando_off ()
  in
  check Alcotest.bool "direct faster (C1 warm)" true (direct < bz)

let test_claim_in_monitor_beats_self_rando () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Kaslr () in
  let in_monitor = boot_total env ~rando:Vm_config.Rando_kaslr () in
  let self_rando =
    let path =
      Testkit.add_bzimage env ~codec:"none"
        ~variant:Imk_kernel.Bzimage.None_optimized
    in
    boot_total env ~flavor:Vm_config.In_monitor_fgkaslr ~kernel_path:path
      ~relocs:None ~rando:Vm_config.Rando_kaslr ()
  in
  check Alcotest.bool "in-monitor faster (C4)" true (in_monitor < self_rando)

let test_claim_kaslr_overhead_small () =
  let base_env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
  let kaslr_env = Testkit.make_env ~variant:Imk_kernel.Config.Kaslr () in
  let base = boot_total base_env ~rando:Vm_config.Rando_off () in
  let kaslr = boot_total kaslr_env ~rando:Vm_config.Rando_kaslr () in
  check Alcotest.bool "kaslr adds <15%" true
    (float_of_int kaslr < 1.15 *. float_of_int base)

let test_claim_fgkaslr_costs_more_than_kaslr () =
  let kaslr_env = Testkit.make_env ~variant:Imk_kernel.Config.Kaslr () in
  let fg_env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  let kaslr = boot_total kaslr_env ~rando:Vm_config.Rando_kaslr () in
  let fg = boot_total fg_env ~rando:Vm_config.Rando_fgkaslr () in
  check Alcotest.bool "fgkaslr > kaslr" true (fg > kaslr)

let test_cold_cache_slower_than_warm () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
  let vm seed =
    Vm_config.make ~rando:Vm_config.Rando_off
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  Imk_storage.Page_cache.drop_caches env.Testkit.cache;
  let trace, ch = Testkit.charge () in
  ignore (Vmm.boot ch env.Testkit.cache (vm 1L));
  let cold = Imk_vclock.Trace.total trace in
  let trace2, ch2 = Testkit.charge () in
  ignore (Vmm.boot ch2 env.Testkit.cache (vm 1L));
  let warm = Imk_vclock.Trace.total trace2 in
  ignore trace2;
  check Alcotest.bool "cold slower" true (cold > warm)

let test_deterministic_without_jitter () =
  let env = Testkit.make_env () in
  (* first boot warms the page cache; compare the two warm boots *)
  let _ = Testkit.boot env ~seed:3L in
  let t1, _ = Testkit.boot env ~seed:3L in
  let t2, _ = Testkit.boot env ~seed:3L in
  check int "identical totals" (Imk_vclock.Trace.total t1)
    (Imk_vclock.Trace.total t2)

let test_qemu_profile_slower_in_monitor () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Nokaslr () in
  let boot profile =
    let vm =
      Vm_config.make ~profile ~rando:Vm_config.Rando_off
        ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
        ~mem_bytes:(64 * 1024 * 1024) ~seed:1L ()
    in
    let trace, ch = Testkit.charge () in
    ignore (Vmm.boot ch env.Testkit.cache vm);
    Imk_vclock.Trace.phase_total trace Imk_vclock.Trace.In_monitor
  in
  check Alcotest.bool "qemu monitor time higher" true
    (boot Profiles.qemu > boot Profiles.firecracker)

(* --- generator-driven matrix sweep: any cell drawn from the shared
   kernel-matrix generators (Testkit.arb_preset/variant/codec) boots
   verify-green through
   its bzImage path; a failing draw shrinks toward the simplest cell --- *)

let qcheck_generated_cell_boots =
  let envs = Hashtbl.create 9 in
  let env_for preset variant =
    match Hashtbl.find_opt envs (preset, variant) with
    | Some e -> e
    | None ->
        let e = Testkit.make_env ~preset ~variant ~functions:30 () in
        Hashtbl.add envs (preset, variant) e;
        e
  in
  QCheck.Test.make ~count:20
    ~name:"boot-paths: any generated matrix cell boots verify-green"
    QCheck.(triple Testkit.arb_preset Testkit.arb_variant Testkit.arb_codec)
    (fun (preset, variant, codec) ->
      let env = env_for preset variant in
      let rando =
        match variant with
        | Imk_kernel.Config.Nokaslr -> Vm_config.Rando_off
        | Imk_kernel.Config.Kaslr -> Vm_config.Rando_kaslr
        | Imk_kernel.Config.Fgkaslr -> Vm_config.Rando_fgkaslr
      in
      let codec_name, bz =
        match codec with
        | "none-opt" -> ("none", Imk_kernel.Bzimage.None_optimized)
        | c -> (c, Imk_kernel.Bzimage.Standard)
      in
      let path = Testkit.add_bzimage env ~codec:codec_name ~variant:bz in
      let _, r =
        Testkit.boot env ~rando ~flavor:Vm_config.In_monitor_fgkaslr
          ~kernel_path:path ~relocs:None
      in
      r.Vmm.stats.Imk_guest.Runtime.functions_visited = 30)

let () =
  Alcotest.run "boot_paths"
    [
      ("matrix", matrix_tests @ [ Testkit.to_alcotest qcheck_generated_cell_boots ]);
      ( "randomization",
        [
          Alcotest.test_case "different seeds differ" `Quick
            test_different_seeds_different_layouts;
          Alcotest.test_case "same seed identical" `Quick
            test_same_seed_same_layout;
          Alcotest.test_case "offsets spread" `Quick test_offsets_spread;
        ] );
      ("capabilities", capability_tests);
      ( "failure injection",
        [
          Alcotest.test_case "relocs-tool output boots" `Quick
            test_relocs_tool_output_boots;
          Alcotest.test_case "corrupt relocs" `Quick test_corrupt_relocs_rejected;
          Alcotest.test_case "wrong relocs" `Quick
            test_wrong_relocs_detected_by_guest;
          Alcotest.test_case "corrupt vmlinux" `Quick
            test_corrupt_vmlinux_rejected;
          Alcotest.test_case "kernel constants note" `Quick
            test_kernel_note_read_and_enforced;
        ] );
      ( "cost shape",
        [
          Alcotest.test_case "C1: direct beats bzImage warm" `Quick
            test_claim_direct_beats_bzimage_cached;
          Alcotest.test_case "C4: in-monitor beats self-rando" `Quick
            test_claim_in_monitor_beats_self_rando;
          Alcotest.test_case "C4: kaslr overhead small" `Quick
            test_claim_kaslr_overhead_small;
          Alcotest.test_case "fgkaslr > kaslr" `Quick
            test_claim_fgkaslr_costs_more_than_kaslr;
          Alcotest.test_case "cold slower than warm" `Quick
            test_cold_cache_slower_than_warm;
          Alcotest.test_case "deterministic boots" `Quick
            test_deterministic_without_jitter;
          Alcotest.test_case "qemu profile" `Quick
            test_qemu_profile_slower_in_monitor;
        ] );
    ]
