(* Suite 19: the differential boot-oracle subsystem (Imk_check).

   The oracle catalogue must pass on healthy points, must CATCH a
   planted divergence (an oracle that cannot fail is not evidence), and
   the shrinker must walk a failing point down to a minimal reproducer.
   The campaign driver's rows must be bit-identical for any jobs
   fan-out, like every other experiment. *)

open Imk_check

let check = Alcotest.check

let point ?(preset = Imk_kernel.Config.Aws)
    ?(variant = Imk_kernel.Config.Kaslr) ?(codec = "lz4") ?(functions = 60)
    ?(seed = 11L) () =
  { Point.preset; variant; codec; functions; seed }

let run_oracle (o : Oracle.t) p = (o.Oracle.run (Env.build p) p).Oracle.outcome

(* --- the catalogue passes on healthy points --- *)

let oracle_passes (o : Oracle.t) p () =
  match run_oracle o p with
  | Oracle.Pass -> ()
  | Oracle.Divergence d ->
      Alcotest.failf "oracle %s diverged on %s: %s" o.Oracle.id (Point.name p)
        d

let catalogue_cases =
  List.concat_map
    (fun (o : Oracle.t) ->
      List.map
        (fun p ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" o.Oracle.id (Point.name p))
            `Quick
            (oracle_passes o p))
        [
          point ();
          point ~variant:Imk_kernel.Config.Fgkaslr ~codec:"none-opt" ();
          point ~preset:Imk_kernel.Config.Lupine
            ~variant:Imk_kernel.Config.Nokaslr ~codec:"none" ~seed:3L ();
        ])
    (Oracle.catalogue ~mutate:false)

(* --- sensitivity: the planted off-by-one must be reported caught --- *)

let mutate_caught () =
  let p = point () in
  match run_oracle (Oracle.cross_path ~mutate:true ()) p with
  | Oracle.Divergence d ->
      check Alcotest.bool "divergence names an image byte" true
        (String.length d > 0)
  | Oracle.Pass ->
      Alcotest.fail "planted off-by-one not caught: the oracle cannot fail"

(* --- shrinking: candidates are strictly simpler; a planted failure
   converges to a small reproducer --- *)

let measure (p : Point.t) =
  let index_of x xs =
    let rec go i = function
      | [] -> assert false
      | y :: _ when y = x -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 xs
  in
  p.Point.functions
  + index_of p.Point.codec Point.codecs
  + index_of p.Point.preset
      [ Imk_kernel.Config.Lupine; Imk_kernel.Config.Aws;
        Imk_kernel.Config.Ubuntu ]
  + index_of p.Point.variant
      [ Imk_kernel.Config.Nokaslr; Imk_kernel.Config.Kaslr;
        Imk_kernel.Config.Fgkaslr ]
  + if p.Point.seed = 0L then 0 else 1

let candidates_strictly_simpler () =
  let p =
    point ~preset:Imk_kernel.Config.Ubuntu ~variant:Imk_kernel.Config.Fgkaslr
      ~codec:"gzip" ~functions:200 ~seed:99L ()
  in
  List.iter
    (fun c ->
      check Alcotest.bool
        (Printf.sprintf "%s simpler than %s" (Point.name c) (Point.name p))
        true
        (measure c < measure p))
    (Shrink.candidates p)

let shrink_converges () =
  let mutant = Oracle.cross_path ~mutate:true () in
  let boots = ref 0 in
  let still_fails p =
    incr boots;
    match run_oracle mutant p with
    | Oracle.Divergence _ -> true
    | Oracle.Pass -> false
  in
  let start =
    point ~preset:Imk_kernel.Config.Aws ~variant:Imk_kernel.Config.Fgkaslr
      ~codec:"gzip" ~functions:160 ~seed:77L ()
  in
  let minimal = Shrink.minimize still_fails start in
  check Alcotest.bool "reproducer within the acceptance bound" true
    (minimal.Point.functions <= 80);
  (* the planted fault survives every simplification, so the walk must
     reach the floor on every axis *)
  check Alcotest.int "function floor" 8 minimal.Point.functions;
  check Alcotest.string "codec floor" "none-opt" minimal.Point.codec;
  check Alcotest.bool "seed floor" true (minimal.Point.seed = 0L);
  check Alcotest.bool "bounded work" true (!boots < 200);
  let rep = Shrink.report minimal in
  check Alcotest.bool "report carries an fcsim repro" true
    (String.length rep > 0
    && String.length (List.nth (String.split_on_char '\n' rep) 1) > 0)

(* --- the generators satellite meets the oracle: random points drawn
   from the shared kernel-matrix arbitrary must pass cross-path, and a
   failure would shrink by the campaign's own candidate walk --- *)

let qcheck_cross_path_random_points =
  QCheck.Test.make ~count:5
    ~name:"check: cross-path passes on generated points" Testkit.arb_point
    (fun p ->
      match run_oracle (Oracle.cross_path ()) p with
      | Oracle.Pass -> true
      | Oracle.Divergence _ -> false)

(* --- campaign rows must be bit-identical for any jobs fan-out, like
   every other experiment --- *)

let diffcheck_jobs_invariant () =
  let saved = !Imk_harness.Boot_runner.default_jobs in
  let run jobs =
    Imk_harness.Boot_runner.default_jobs := jobs;
    let ws =
      Imk_harness.Workspace.create ~scale:4 ~functions_override:40 ()
    in
    Imk_harness.Experiments.diffcheck ~runs:3 ws
  in
  Fun.protect
    ~finally:(fun () -> Imk_harness.Boot_runner.default_jobs := saved)
    (fun () ->
      let a = run 1 and b = run 4 in
      check
        Alcotest.(list (list string))
        "table rows identical"
        (Imk_util.Table.rows a.Imk_harness.Experiments.table)
        (Imk_util.Table.rows b.Imk_harness.Experiments.table);
      check
        Alcotest.(list string)
        "notes identical" a.Imk_harness.Experiments.notes
        b.Imk_harness.Experiments.notes;
      check Alcotest.bool "telemetry rows identical" true
        (a.Imk_harness.Experiments.telemetry
        = b.Imk_harness.Experiments.telemetry))

let () =
  Alcotest.run "check"
    [
      ("oracle-catalogue", catalogue_cases);
      ( "sensitivity",
        [ Alcotest.test_case "mutate caught" `Quick mutate_caught ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates strictly simpler" `Quick
            candidates_strictly_simpler;
          Alcotest.test_case "planted divergence converges" `Quick
            shrink_converges;
        ] );
      ( "campaign",
        [
          Testkit.to_alcotest qcheck_cross_path_random_points;
          Alcotest.test_case "diffcheck rows jobs-invariant" `Quick
            diffcheck_jobs_invariant;
        ] );
    ]
