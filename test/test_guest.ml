(* Tests for Imk_guest: boot params, runtime integrity verification (and
   its ability to detect deliberate corruption), kallsyms semantics
   including the deferred fixup, and Linux boot timing. *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

let test_boot_params_translation () =
  let env = Testkit.make_env () in
  let _, r = Testkit.boot env in
  let p = r.Vmm.params in
  let delta = Imk_guest.Boot_params.delta p in
  check int "va_to_pa of virt_base" p.Imk_guest.Boot_params.phys_load
    (Imk_guest.Boot_params.va_to_pa p p.Imk_guest.Boot_params.virt_base);
  check int "delta aligned" 0 (delta mod Imk_memory.Addr.kernel_align)

let test_kernel_info_from_elf_matches_built () =
  let env = Testkit.make_env () in
  let elf = Imk_elf.Parser.parse env.Testkit.built.Imk_kernel.Image.vmlinux in
  let from_elf = Imk_guest.Boot_params.kernel_info_of_elf elf env.Testkit.cfg in
  let from_built =
    Imk_guest.Boot_params.kernel_info_of_built env.Testkit.built
  in
  check int "fns" from_built.Imk_guest.Boot_params.n_functions
    from_elf.Imk_guest.Boot_params.n_functions;
  check int "rodata va" from_built.Imk_guest.Boot_params.link_rodata_va
    from_elf.Imk_guest.Boot_params.link_rodata_va;
  check int "kallsyms va" from_built.Imk_guest.Boot_params.link_kallsyms_va
    from_elf.Imk_guest.Boot_params.link_kallsyms_va

let test_setup_data_roundtrip () =
  let pairs = [| (1, 2, 3); (100, 200, 300) |] in
  let blob = Imk_guest.Boot_params.setup_data_encode pairs in
  Alcotest.(check (array (triple int int int)))
    "roundtrip" pairs
    (Imk_guest.Boot_params.setup_data_decode blob)

let test_setup_data_rejects_garbage () =
  check Alcotest.bool "rejects" true
    (try
       ignore (Imk_guest.Boot_params.setup_data_decode (Bytes.make 16 'x'));
       false
     with Invalid_argument _ -> true)

let test_verify_counts () =
  let env = Testkit.make_env ~functions:60 () in
  let _, r = Testkit.boot env in
  let s = r.Vmm.stats in
  check int "all functions" 60 s.Imk_guest.Runtime.functions_visited;
  check Alcotest.bool "sites verified" true (s.Imk_guest.Runtime.sites_verified >= 60);
  check Alcotest.bool "rodata verified" true (s.Imk_guest.Runtime.rodata_verified > 0);
  check Alcotest.bool "extab verified" true (s.Imk_guest.Runtime.extab_verified > 0);
  check int "kallsyms all" 60 s.Imk_guest.Runtime.kallsyms_verified

(* corruption detection: flip bytes in guest memory post-boot and re-run
   the verifier; the walk must panic *)
let corrupt_and_verify ~corrupt =
  let env = Testkit.make_env ~functions:40 () in
  let _, r = Testkit.boot env in
  corrupt r;
  try
    ignore (Imk_guest.Runtime.verify_boot r.Vmm.mem r.Vmm.params);
    false
  with Imk_guest.Runtime.Panic _ -> true

let test_detects_corrupted_site () =
  check Alcotest.bool "panics" true
    (corrupt_and_verify ~corrupt:(fun r ->
         (* smash the first call-site value of the entry function *)
         let p = r.Vmm.params in
         let entry_pa =
           Imk_guest.Boot_params.va_to_pa p p.Imk_guest.Boot_params.entry_va
         in
         let site_pa = entry_pa + Imk_kernel.Function_graph.fn_header_bytes + 8 in
         Imk_memory.Guest_mem.set_addr r.Vmm.mem ~pa:site_pa
           (Imk_memory.Addr.link_base + 0x777000)))

let test_detects_corrupted_magic () =
  check Alcotest.bool "panics" true
    (corrupt_and_verify ~corrupt:(fun r ->
         let p = r.Vmm.params in
         let entry_pa =
           Imk_guest.Boot_params.va_to_pa p p.Imk_guest.Boot_params.entry_va
         in
         Imk_memory.Guest_mem.set_addr r.Vmm.mem ~pa:entry_pa 0x1234567))

let test_detects_unsorted_kallsyms () =
  check Alcotest.bool "panics" true
    (corrupt_and_verify ~corrupt:(fun r ->
         let p = r.Vmm.params in
         let info = p.Imk_guest.Boot_params.kernel in
         let pa =
           Imk_guest.Boot_params.va_to_pa p
             (info.Imk_guest.Boot_params.link_kallsyms_va
             + Imk_guest.Boot_params.delta p)
         in
         (* swap the first two entries' offsets *)
         let h = Imk_kernel.Image.kallsyms_header_bytes in
         let e = Imk_kernel.Image.kallsyms_entry_bytes in
         let o1 = Imk_memory.Guest_mem.get_u32 r.Vmm.mem ~pa:(pa + h) in
         let o2 = Imk_memory.Guest_mem.get_u32 r.Vmm.mem ~pa:(pa + h + e) in
         Imk_memory.Guest_mem.set_u32 r.Vmm.mem ~pa:(pa + h) o2;
         Imk_memory.Guest_mem.set_u32 r.Vmm.mem ~pa:(pa + h + e) o1))

let test_fn_at_probe () =
  let env = Testkit.make_env ~functions:30 () in
  let _, r = Testkit.boot env in
  let p = r.Vmm.params in
  check Alcotest.bool "entry is fn" true
    (Imk_guest.Runtime.fn_at r.Vmm.mem p ~va:p.Imk_guest.Boot_params.entry_va
    <> None);
  check Alcotest.bool "garbage is not" true
    (Imk_guest.Runtime.fn_at r.Vmm.mem p
       ~va:(p.Imk_guest.Boot_params.virt_base + 7)
    = None)

(* --- kallsyms --- *)

let test_kallsyms_lookup_eager () =
  let env = Testkit.make_env ~functions:30 () in
  let _, r = Testkit.boot env in
  let _, ch = Testkit.charge () in
  let state = Imk_guest.Kallsyms.create () in
  let p = r.Vmm.params in
  check int "entry resolves to fn0" 0
    (Imk_guest.Kallsyms.lookup state ch r.Vmm.mem p
       ~va:p.Imk_guest.Boot_params.entry_va);
  check Alcotest.bool "no deferred fixup ran" true
    (not (Imk_guest.Kallsyms.fixed_up state))

let test_kallsyms_lookup_missing () =
  let env = Testkit.make_env ~functions:30 () in
  let _, r = Testkit.boot env in
  let _, ch = Testkit.charge () in
  let state = Imk_guest.Kallsyms.create () in
  check Alcotest.bool "fails" true
    (try
       ignore
         (Imk_guest.Kallsyms.lookup state ch r.Vmm.mem r.Vmm.params
            ~va:(r.Vmm.params.Imk_guest.Boot_params.virt_base + 3));
       false
     with Imk_guest.Kallsyms.Lookup_failed _ -> true)

let test_kallsyms_deferred_fixup () =
  let env =
    Testkit.make_env ~functions:40 ~variant:Imk_kernel.Config.Fgkaslr ()
  in
  let _, r =
    Testkit.boot env ~rando:Vm_config.Rando_fgkaslr
      ~kallsyms:Vm_config.Kallsyms_deferred
  in
  let p = r.Vmm.params in
  check Alcotest.bool "boot left kallsyms stale" false
    p.Imk_guest.Boot_params.kallsyms_fixed;
  check Alcotest.bool "setup data present" true
    (p.Imk_guest.Boot_params.setup_data_pa <> None);
  let _, ch = Testkit.charge () in
  let state = Imk_guest.Kallsyms.create () in
  let before = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) in
  let id =
    Imk_guest.Kallsyms.lookup state ch r.Vmm.mem p
      ~va:p.Imk_guest.Boot_params.entry_va
  in
  let first_cost = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) - before in
  check int "still resolves" 0 id;
  check Alcotest.bool "deferred fixup ran" true (Imk_guest.Kallsyms.fixed_up state);
  (* table is now trustworthy: full verification passes *)
  let p_fixed = { p with Imk_guest.Boot_params.kallsyms_fixed = true } in
  let stats = Imk_guest.Runtime.verify_boot r.Vmm.mem p_fixed in
  check int "kallsyms verified post-fixup" 40
    stats.Imk_guest.Runtime.kallsyms_verified;
  (* second lookup is cheap *)
  let before2 = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) in
  ignore
    (Imk_guest.Kallsyms.lookup state ch r.Vmm.mem p
       ~va:p.Imk_guest.Boot_params.entry_va);
  let second_cost = Imk_vclock.Clock.now (Imk_vclock.Charge.clock ch) - before2 in
  check Alcotest.bool "first lookup pays the fixup" true
    (first_cost > 100 * second_cost)

let test_kallsyms_stale_without_setup_data () =
  let env =
    Testkit.make_env ~functions:40 ~variant:Imk_kernel.Config.Fgkaslr ()
  in
  let _, r =
    Testkit.boot env ~rando:Vm_config.Rando_fgkaslr
      ~kallsyms:Vm_config.Kallsyms_deferred
  in
  let p =
    { r.Vmm.params with Imk_guest.Boot_params.setup_data_pa = None }
  in
  let _, ch = Testkit.charge () in
  let state = Imk_guest.Kallsyms.create () in
  check Alcotest.bool "unrepairable" true
    (try
       ignore
         (Imk_guest.Kallsyms.lookup state ch r.Vmm.mem p
            ~va:p.Imk_guest.Boot_params.entry_va);
       false
     with Imk_guest.Kallsyms.Lookup_failed _ -> true)

let test_kptr_restrict () =
  let env = Testkit.make_env ~functions:30 () in
  let _, r = Testkit.boot env in
  let _, ch = Testkit.charge () in
  let state = Imk_guest.Kallsyms.create () in
  let addr_priv, _ =
    Imk_guest.Kallsyms.read_for_user state ch r.Vmm.mem r.Vmm.params
      ~privileged:true ~index:0
  in
  let addr_user, id =
    Imk_guest.Kallsyms.read_for_user state ch r.Vmm.mem r.Vmm.params
      ~privileged:false ~index:0
  in
  check Alcotest.bool "privileged sees address" true (addr_priv <> 0);
  check int "unprivileged sees zero" 0 addr_user;
  check Alcotest.bool "but still the symbol" true (id >= 0)

(* --- linux boot timing --- *)

let test_linux_boot_linear_in_memory () =
  let cfg = Testkit.small_config () in
  let t256 = Imk_guest.Linux_boot.time_ns cfg ~mem_bytes:(256 * 1024 * 1024) in
  let t512 = Imk_guest.Linux_boot.time_ns cfg ~mem_bytes:(512 * 1024 * 1024) in
  let t1g = Imk_guest.Linux_boot.time_ns cfg ~mem_bytes:(1024 * 1024 * 1024) in
  check Alcotest.bool "monotone" true (t256 < t512 && t512 < t1g);
  (* linearity: the 256M->1G increase is 3x the 256M->512M increase *)
  check int "linear" (3 * (t512 - t256)) (t1g - t256)

let test_linux_boot_preset_ordering () =
  let t p =
    Imk_guest.Linux_boot.time_ns
      (Imk_kernel.Config.make p Imk_kernel.Config.Nokaslr)
      ~mem_bytes:(256 * 1024 * 1024)
  in
  check Alcotest.bool "lupine < aws < ubuntu" true
    (t Imk_kernel.Config.Lupine < t Imk_kernel.Config.Aws
    && t Imk_kernel.Config.Aws < t Imk_kernel.Config.Ubuntu)

let qcheck_boot_verifies_for_random_seeds =
  QCheck.Test.make ~name:"every seed boots and verifies (kaslr)" ~count:15
    QCheck.int64
    (fun seed ->
      let env = Testkit.make_env ~functions:40 () in
      let _, r = Testkit.boot env ~seed in
      r.Vmm.stats.Imk_guest.Runtime.functions_visited = 40)

let () =
  Alcotest.run "imk_guest"
    [
      ( "boot_params",
        [
          Alcotest.test_case "translation" `Quick test_boot_params_translation;
          Alcotest.test_case "kernel_info from elf" `Quick
            test_kernel_info_from_elf_matches_built;
          Alcotest.test_case "setup data roundtrip" `Quick
            test_setup_data_roundtrip;
          Alcotest.test_case "setup data garbage" `Quick
            test_setup_data_rejects_garbage;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "verify counts" `Quick test_verify_counts;
          Alcotest.test_case "detects corrupted site" `Quick
            test_detects_corrupted_site;
          Alcotest.test_case "detects corrupted magic" `Quick
            test_detects_corrupted_magic;
          Alcotest.test_case "detects unsorted kallsyms" `Quick
            test_detects_unsorted_kallsyms;
          Alcotest.test_case "fn_at probe" `Quick test_fn_at_probe;
          Testkit.to_alcotest qcheck_boot_verifies_for_random_seeds;
        ] );
      ( "kallsyms",
        [
          Alcotest.test_case "eager lookup" `Quick test_kallsyms_lookup_eager;
          Alcotest.test_case "missing symbol" `Quick test_kallsyms_lookup_missing;
          Alcotest.test_case "deferred fixup" `Quick test_kallsyms_deferred_fixup;
          Alcotest.test_case "stale unrepairable" `Quick
            test_kallsyms_stale_without_setup_data;
          Alcotest.test_case "kptr_restrict" `Quick test_kptr_restrict;
        ] );
      ( "linux_boot",
        [
          Alcotest.test_case "linear in memory" `Quick
            test_linux_boot_linear_in_memory;
          Alcotest.test_case "preset ordering" `Quick
            test_linux_boot_preset_ordering;
        ] );
    ]
