(* Tests for Imk_memory: address constants and helpers, guest memory
   bounds behaviour, page-table geometry. *)

open Imk_memory

let check = Alcotest.check
let int = Alcotest.int

let test_addr_constants () =
  check int "phys start 16M" 0x1000000 Addr.default_phys_load;
  check int "align 2M" 0x200000 Addr.kernel_align;
  check int "max offset 1G" 0x40000000 Addr.kaslr_max_offset;
  (* the substitution invariant: simulated kmap keeps Linux's low 32
     bits, 0x80000000 *)
  check int "kmap low32" 0x80000000 (Addr.low32 Addr.kmap_base);
  check int "link base" (Addr.kmap_base + Addr.default_phys_load) Addr.link_base

let test_va_low32_roundtrip () =
  let va = Addr.link_base + 0x1234560 in
  check int "roundtrip" va (Addr.va_of_low32 (Addr.low32 va))

let test_va_of_low32_rejects () =
  Alcotest.check_raises "too big"
    (Invalid_argument "Addr.va_of_low32: not a 32-bit value") (fun () ->
      ignore (Addr.va_of_low32 0x100000000));
  check Alcotest.bool "outside window" true
    (try
       ignore (Addr.va_of_low32 0x1000);
       false
     with Invalid_argument _ -> true)

let test_is_kernel_va () =
  check Alcotest.bool "base" true (Addr.is_kernel_va Addr.kmap_base);
  check Alcotest.bool "link" true (Addr.is_kernel_va Addr.link_base);
  check Alcotest.bool "below" false (Addr.is_kernel_va (Addr.kmap_base - 1));
  check Alcotest.bool "way above" false
    (Addr.is_kernel_va (Addr.kmap_base + (4 * Addr.kaslr_max_offset)))

let test_align_helpers () =
  check int "up" 0x400000 (Addr.align_up 0x200001 0x200000);
  check int "down" 0x200000 (Addr.align_down 0x3fffff 0x200000);
  check Alcotest.bool "is_aligned" true (Addr.is_aligned 0x400000 0x200000)

let test_inverse_base_window () =
  (* every kernel VA must yield a 32-bit inverse value *)
  let lo = Addr.kmap_base + Addr.default_phys_load in
  let hi = Addr.kmap_base + Addr.kaslr_max_offset in
  List.iter
    (fun va ->
      let inv = Addr.inverse_base - va in
      check Alcotest.bool "fits u32" true (inv >= 0 && inv <= 0xffffffff))
    [ lo; hi; lo + ((hi - lo) / 2) ]

(* --- guest memory --- *)

let test_guest_mem_rw () =
  let m = Guest_mem.create ~size:4096 in
  Guest_mem.write_bytes m ~pa:100 (Bytes.of_string "hello");
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Guest_mem.read_bytes m ~pa:100 ~len:5));
  Guest_mem.set_u32 m ~pa:0 0xdeadbeef;
  check int "u32" 0xdeadbeef (Guest_mem.get_u32 m ~pa:0);
  Guest_mem.set_addr m ~pa:8 Addr.link_base;
  check int "addr" Addr.link_base (Guest_mem.get_addr m ~pa:8)

let test_guest_mem_zeroed_at_creation () =
  let m = Guest_mem.create ~size:64 in
  check int "zero" 0 (Guest_mem.get_u32 m ~pa:60)

let test_guest_mem_faults () =
  let m = Guest_mem.create ~size:256 in
  let faults f =
    check Alcotest.bool "faults" true
      (try
         f ();
         false
       with Guest_mem.Fault _ -> true)
  in
  faults (fun () -> ignore (Guest_mem.read_bytes m ~pa:250 ~len:10));
  faults (fun () -> ignore (Guest_mem.get_addr m ~pa:(-1)));
  faults (fun () -> Guest_mem.write_bytes m ~pa:255 (Bytes.of_string "xy"));
  faults (fun () -> Guest_mem.zero m ~pa:0 ~len:1000);
  faults (fun () -> Guest_mem.copy_within m ~src:0 ~dst:250 ~len:10)

let test_copy_within_overlap () =
  let m = Guest_mem.create ~size:64 in
  Guest_mem.write_bytes m ~pa:0 (Bytes.of_string "abcdef");
  Guest_mem.copy_within m ~src:0 ~dst:2 ~len:6;
  check Alcotest.string "blit semantics" "ababcdef"
    (Bytes.to_string (Guest_mem.read_bytes m ~pa:0 ~len:8))

let test_valid_and_validated_range () =
  let m = Guest_mem.create ~size:256 in
  check Alcotest.bool "in bounds" true (Guest_mem.valid m ~pa:0 ~len:256);
  check Alcotest.bool "zero len at end" true (Guest_mem.valid m ~pa:256 ~len:0);
  check Alcotest.bool "past end" false (Guest_mem.valid m ~pa:250 ~len:10);
  check Alcotest.bool "negative pa" false (Guest_mem.valid m ~pa:(-1) ~len:4);
  check Alcotest.bool "negative len" false (Guest_mem.valid m ~pa:0 ~len:(-1));
  (* out-of-bounds run faults before the callback can run *)
  check Alcotest.bool "oob run faults" true
    (try
       Guest_mem.with_validated_range m ~pa:250 ~len:10 (fun _ ->
           Alcotest.fail "callback ran on invalid range")
     with Guest_mem.Fault _ -> true);
  check Alcotest.bool "nothing dirtied by a faulted run" true
    (Guest_mem.dirty_extent m = None);
  (* writes inside a validated run are tracked: scrubbing restores the
     fresh all-zero state, same as for the checked mutators *)
  Guest_mem.with_validated_range m ~pa:16 ~len:8 (fun data ->
      Imk_util.Byteio.set_addr data 16 0x1122334455667788);
  (match Guest_mem.dirty_extent m with
  | Some (lo, hi) ->
      check Alcotest.bool "run covered by dirty extent" true
        (lo <= 16 && hi >= 24)
  | None -> Alcotest.fail "expected a dirty extent");
  check int "write visible to checked reads" 0x1122334455667788
    (Guest_mem.get_addr m ~pa:16);
  Guest_mem.scrub m;
  check Alcotest.bool "scrubbed back to fresh" true
    (Guest_mem.dirty_extent m = None
    && Bytes.equal (Guest_mem.raw m) (Bytes.make 256 '\000'))

let test_get_i64_raw () =
  let m = Guest_mem.create ~size:16 in
  Guest_mem.write_bytes m ~pa:0 (Bytes.make 8 '\xff');
  check Alcotest.int64 "raw read" (-1L) (Guest_mem.get_i64 m ~pa:0);
  (* get_addr on the same bytes raises, which is why get_i64 exists *)
  check Alcotest.bool "get_addr rejects" true
    (try
       ignore (Guest_mem.get_addr m ~pa:0);
       false
     with Invalid_argument _ -> true)

(* --- page tables --- *)

let test_page_table_2m_1g () =
  let pt =
    Page_table.identity_map ~covered_bytes:(Imk_util.Units.gib 1)
      ~page_size:Page_table.Two_m
  in
  (* 512 2M leaves = 1 PD page; 1 PDPT; 1 PML4 *)
  check int "pd" 1 pt.Page_table.pd_pages;
  check int "pdpt" 1 pt.Page_table.pdpt_pages;
  check int "total" 3 (Page_table.total_pages pt);
  check int "bytes" (3 * 4096) (Page_table.table_bytes pt)

let test_page_table_4k_1g () =
  let pt =
    Page_table.identity_map ~covered_bytes:(Imk_util.Units.gib 1)
      ~page_size:Page_table.Four_k
  in
  (* 262144 4K leaves = 512 PT pages, 1 PD, 1 PDPT, 1 PML4 *)
  check int "pt pages" 512 pt.Page_table.pt_pages;
  check int "total" 515 (Page_table.total_pages pt);
  check Alcotest.bool "entries >= leaves" true
    (Page_table.entries pt >= 262144)

let test_page_table_small () =
  let pt =
    Page_table.identity_map ~covered_bytes:(Imk_util.Units.mib 2)
      ~page_size:Page_table.Two_m
  in
  check int "one leaf still needs tables" 3 (Page_table.total_pages pt)

let test_page_table_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Page_table.identity_map: non-positive span") (fun () ->
      ignore (Page_table.identity_map ~covered_bytes:0 ~page_size:Page_table.Four_k))

let qcheck_guest_mem_rw =
  QCheck.Test.make ~name:"guest_mem: read back what was written" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (int_bound 200))
    (fun (s, pa) ->
      let m = Guest_mem.create ~size:512 in
      let b = Bytes.of_string s in
      if pa + Bytes.length b > 512 then QCheck.assume_fail ()
      else begin
        Guest_mem.write_bytes m ~pa b;
        Bytes.equal b (Guest_mem.read_bytes m ~pa ~len:(Bytes.length b))
      end)

(* --- arena: recycled guest memory must be indistinguishable from a
   fresh create --- *)

let test_dirty_extent_tracking () =
  let m = Guest_mem.create ~size:4096 in
  check Alcotest.bool "fresh has no extent" true
    (Guest_mem.dirty_extent m = None);
  Guest_mem.write_bytes m ~pa:100 (Bytes.of_string "abc");
  Guest_mem.set_u32 m ~pa:200 0xdeadbeef;
  (match Guest_mem.dirty_extent m with
  | Some (lo, hi) ->
      check int "extent lo" 100 lo;
      check int "extent hi" 204 hi
  | None -> Alcotest.fail "expected a dirty extent");
  Guest_mem.scrub m;
  check Alcotest.bool "extent reset" true (Guest_mem.dirty_extent m = None);
  check Alcotest.bool "all zero again" true
    (Bytes.equal
       (Guest_mem.read_bytes m ~pa:0 ~len:4096)
       (Bytes.make 4096 '\000'))

let test_arena_recycles_same_buffer () =
  let a = Arena.create () in
  let m1 = Arena.borrow a ~size:8192 in
  Guest_mem.write_bytes m1 ~pa:1000 (Bytes.make 100 '\xff');
  Arena.release a m1;
  check int "pooled after release" 8192 (Arena.pooled_bytes a);
  let m2 = Arena.borrow a ~size:8192 in
  check Alcotest.bool "zeroed before reuse" true
    (Bytes.equal
       (Guest_mem.read_bytes m2 ~pa:0 ~len:8192)
       (Bytes.make 8192 '\000'));
  (* physically the same backing store, recycled rather than reallocated *)
  check Alcotest.bool "same backing store" true
    (Guest_mem.raw m2 == Guest_mem.raw m1);
  let hits, misses = Arena.stats a in
  check int "one hit" 1 hits;
  check int "one miss" 1 misses;
  (* a different size never recycles the wrong buffer *)
  let m3 = Arena.borrow a ~size:4096 in
  check int "fresh size" 4096 (Guest_mem.size m3)

exception Boom

let test_with_buffer_releases_on_raise () =
  let a = Arena.create () in
  (* normal path: buffer comes back to the pool *)
  let raw1 =
    Arena.with_buffer a ~size:8192 (fun m ->
        Guest_mem.write_bytes m ~pa:64 (Bytes.make 32 '\xaa');
        Guest_mem.raw m)
  in
  check int "pooled after return" 8192 (Arena.pooled_bytes a);
  (* raising path: same guarantee *)
  (try
     Arena.with_buffer a ~size:8192 (fun m ->
         check Alcotest.bool "recycled on the raising path" true
           (Guest_mem.raw m == raw1);
         Guest_mem.write_bytes m ~pa:4000 (Bytes.make 100 '\xff');
         raise Boom)
   with Boom -> ());
  check int "pooled after raise" 8192 (Arena.pooled_bytes a);
  (* the buffer the raising user dirtied is scrubbed, not poisoned
     (check before touching [raw], which marks the guest dirty) *)
  Arena.with_buffer a ~size:8192 (fun m ->
      check Alcotest.bool "fresh-indistinguishable after raise" true
        (Guest_mem.dirty_extent m = None
        && Bytes.equal
             (Guest_mem.read_bytes m ~pa:0 ~len:8192)
             (Bytes.make 8192 '\000'));
      check Alcotest.bool "still the same backing store" true
        (Guest_mem.raw m == raw1))

let qcheck_with_buffer_exception_safe =
  QCheck.Test.make ~count:100
    ~name:"arena: with_buffer releases scrubbed buffer on any exception"
    QCheck.(pair (int_bound 65535) bool)
    (fun (off, should_raise) ->
      let size = 65536 in
      let a = Arena.create () in
      (try
         Arena.with_buffer a ~size (fun m ->
             let len = min 257 (size - off) in
             if len > 0 then
               Guest_mem.write_bytes m ~pa:off (Bytes.make len '\x5a');
             if should_raise then raise Boom)
       with Boom -> ());
      Arena.pooled_bytes a = size
      && Arena.with_buffer a ~size (fun m ->
             Guest_mem.dirty_extent m = None
             && Bytes.equal
                  (Guest_mem.read_bytes m ~pa:0 ~len:size)
                  (Bytes.make size '\000')))

let qcheck_arena_recycled_like_fresh =
  QCheck.Test.make ~count:100
    ~name:"arena: recycled buffer indistinguishable from fresh create"
    QCheck.(small_list (pair (int_bound 65535) (int_bound 255)))
    (fun writes ->
      let size = 65536 in
      let a = Arena.create () in
      let m = Arena.borrow a ~size in
      List.iteri
        (fun i (off, v) ->
          (* mix the mutation paths the boot code uses *)
          match i mod 3 with
          | 0 ->
              let len = min 97 (size - off) in
              if len > 0 then
                Guest_mem.write_bytes m ~pa:off (Bytes.make len (Char.chr v))
          | 1 -> if off + 4 <= size then Guest_mem.set_u32 m ~pa:off v
          | _ ->
              let len = min 33 (size - off) in
              if len > 0 && off + len + len <= size then
                Guest_mem.copy_within m ~src:off ~dst:(off + len) ~len)
        writes;
      Arena.release a m;
      let r = Arena.borrow a ~size in
      let fresh = Guest_mem.create ~size in
      fst (Arena.stats a) = 1
      && Guest_mem.dirty_extent r = None
      && Bytes.equal
           (Guest_mem.read_bytes r ~pa:0 ~len:size)
           (Guest_mem.read_bytes fresh ~pa:0 ~len:size))

let qcheck_arena_fresh_after_supervised_failures =
  (* the fresh-equivalence promise must survive the supervisor's failure
     paths too: a deadline-aborted attempt, a corrupt image, a guest
     panic mid-boot and a transient storm that exhausts its retries all
     release their guest memory through the with_buffer bracket *)
  let module S = Imk_harness.Boot_supervisor in
  let module Inject = Imk_fault.Inject in
  let module Vm_config = Imk_monitor.Vm_config in
  let shared =
    lazy
      (let env = Testkit.make_env ~functions:50 () in
       let vm =
         Vm_config.make ~rando:Vm_config.Rando_kaslr
           ~relocs_path:(Some (Testkit.relocs_path env))
           ~mem_bytes:(64 * 1024 * 1024)
           ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
           ~seed:0L ()
       in
       (env, vm))
  in
  QCheck.Test.make ~count:20
    ~name:"arena: deadline-aborted and storm-failed boots leave it fresh"
    QCheck.(pair (int_bound 3) (int_bound 9_999))
    (fun (scenario, seed) ->
      let env, vm = Lazy.force shared in
      let arena = Arena.create () in
      let armed kind =
        let disk = Testkit.pristine_disk env in
        let a =
          Inject.arm kind ~seed ~disk ~kernel_path:(Testkit.vmlinux_path env)
            ~relocs_path:(Testkit.relocs_path env) ()
        in
        {
          S.cache = Imk_storage.Page_cache.create disk;
          inject = a.Inject.inject;
          plans = None;
        }
      in
      let seed64 = Int64.of_int (seed + 1) in
      let report =
        match scenario with
        | 0 ->
            (* hopeless budget: the attempt and its fallback both abort *)
            let policy =
              { S.default_policy with S.attempt_budget_ns = Some 1 }
            in
            let fleet = S.fleet ~policy () in
            let ctx =
              S.plain_ctx (Imk_storage.Page_cache.create (Testkit.pristine_disk env))
            in
            S.supervise ~arena ~fleet ~seed:seed64 ~ctx vm
        | 1 -> S.supervise ~arena ~seed:seed64 ~ctx:(armed Inject.Flip_image_magic) vm
        | 2 -> S.supervise ~arena ~seed:seed64 ~ctx:(armed Inject.Flip_entry_magic) vm
        | _ ->
            S.supervise ~arena ~max_retries:1 ~seed:seed64
              ~ctx:(armed (Inject.Transient_init 99))
              vm
      in
      (match (scenario, report.S.outcome) with
      | 0, Error (Imk_fault.Failure.Deadline_exceeded _)
      | 1, Error (Imk_fault.Failure.Corrupt_image _)
      | 2, Error (Imk_fault.Failure.Guest_panic _)
      | _, Error (Imk_fault.Failure.Transient _) ->
          ()
      | _, Error f ->
          QCheck.Test.fail_reportf "wrong failure kind: %s"
            (Imk_fault.Failure.describe f)
      | _, Ok _ -> QCheck.Test.fail_report "expected a failed supervised boot");
      let size = vm.Vm_config.mem_bytes in
      Arena.pooled_bytes arena = size
      &&
      let r = Arena.borrow arena ~size in
      Guest_mem.dirty_extent r = None
      && Bytes.equal
           (Guest_mem.read_bytes r ~pa:0 ~len:size)
           (Bytes.make size '\000'))

let qcheck_page_table_monotone =
  QCheck.Test.make ~name:"page tables grow with coverage" ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 1 2000))
    (fun (a, b) ->
      let mib = Imk_util.Units.mib 1 in
      let small = min a b * mib and large = max a b * mib in
      let p s =
        Page_table.entries (Page_table.identity_map ~covered_bytes:s ~page_size:Page_table.Four_k)
      in
      p small <= p large)

let () =
  Alcotest.run "imk_memory"
    [
      ( "addr",
        [
          Alcotest.test_case "constants" `Quick test_addr_constants;
          Alcotest.test_case "low32 roundtrip" `Quick test_va_low32_roundtrip;
          Alcotest.test_case "va_of_low32 rejects" `Quick
            test_va_of_low32_rejects;
          Alcotest.test_case "is_kernel_va" `Quick test_is_kernel_va;
          Alcotest.test_case "align helpers" `Quick test_align_helpers;
          Alcotest.test_case "inverse window" `Quick test_inverse_base_window;
        ] );
      ( "guest_mem",
        [
          Alcotest.test_case "read/write" `Quick test_guest_mem_rw;
          Alcotest.test_case "zeroed" `Quick test_guest_mem_zeroed_at_creation;
          Alcotest.test_case "faults" `Quick test_guest_mem_faults;
          Alcotest.test_case "copy_within" `Quick test_copy_within_overlap;
          Alcotest.test_case "valid + validated range" `Quick
            test_valid_and_validated_range;
          Alcotest.test_case "get_i64 raw" `Quick test_get_i64_raw;
          Testkit.to_alcotest qcheck_guest_mem_rw;
        ] );
      ( "arena",
        [
          Alcotest.test_case "dirty extent" `Quick test_dirty_extent_tracking;
          Alcotest.test_case "recycles buffer" `Quick
            test_arena_recycles_same_buffer;
          Alcotest.test_case "with_buffer exception-safe" `Quick
            test_with_buffer_releases_on_raise;
          Testkit.to_alcotest qcheck_arena_recycled_like_fresh;
          Testkit.to_alcotest qcheck_with_buffer_exception_safe;
          Testkit.to_alcotest qcheck_arena_fresh_after_supervised_failures;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "2M over 1G" `Quick test_page_table_2m_1g;
          Alcotest.test_case "4K over 1G" `Quick test_page_table_4k_1g;
          Alcotest.test_case "small" `Quick test_page_table_small;
          Alcotest.test_case "invalid" `Quick test_page_table_invalid;
          Testkit.to_alcotest qcheck_page_table_monotone;
        ] );
    ]
