(* Tests for Imk_kernel: configs, graph generation, image building, the
   relocs tool, and the bzImage container. *)

open Imk_kernel

let check = Alcotest.check
let int = Alcotest.int

let small_cfg ?(functions = 60) ?(variant = Config.Kaslr) () =
  { (Config.make ~scale:4 Config.Aws variant) with Config.functions }

let test_config_matrix () =
  let all = Config.all () in
  check int "nine kernels" 9 (List.length all);
  List.iter
    (fun (c : Config.t) ->
      check Alcotest.bool (c.Config.name ^ " relocatable iff randomizing") true
        (c.Config.relocatable = (c.Config.variant <> Config.Nokaslr));
      check Alcotest.bool (c.Config.name ^ " fg iff fgkaslr") true
        (c.Config.fg_sections = (c.Config.variant = Config.Fgkaslr)))
    all

let test_config_fg_more_relocs () =
  let k = Config.make Config.Aws Config.Kaslr in
  let f = Config.make Config.Aws Config.Fgkaslr in
  check Alcotest.bool "fg build has more call sites" true
    (f.Config.avg_call_sites > k.Config.avg_call_sites)

let test_config_deterministic_seed () =
  let a = Config.make Config.Lupine Config.Kaslr in
  let b = Config.make Config.Lupine Config.Kaslr in
  check Alcotest.int64 "same seed" a.Config.seed b.Config.seed

let test_graph_strongly_connected_ring () =
  let g = Function_graph.generate (small_cfg ()) in
  Array.iteri
    (fun i (f : Function_graph.fn) ->
      check Alcotest.bool "ring edge present" true
        (Array.exists
           (fun (s : Function_graph.site) ->
             s.target = (i + 1) mod Array.length g.Function_graph.fns)
           f.sites))
    g.Function_graph.fns

let test_graph_deterministic () =
  let cfg = small_cfg () in
  let a = Function_graph.generate cfg in
  let b = Function_graph.generate cfg in
  check int "same text size" (Function_graph.total_text_bytes a)
    (Function_graph.total_text_bytes b)

let test_graph_fn_sizes_aligned () =
  let g = Function_graph.generate (small_cfg ()) in
  Array.iter
    (fun f ->
      check int "16-aligned" 0 (Function_graph.fn_size f mod 16);
      check Alcotest.bool "covers header+sites" true
        (Function_graph.fn_size f
        >= Function_graph.fn_header_bytes
           + (Array.length f.Function_graph.sites * Function_graph.site_bytes)))
    g.Function_graph.fns

let test_fn_magic_properties () =
  check Alcotest.bool "odd" true (Function_graph.fn_magic 0 land 1 = 1);
  check Alcotest.bool "distinct" true
    (Function_graph.fn_magic 1 <> Function_graph.fn_magic 2)

let test_image_builds_and_parses () =
  let b = Image.build (small_cfg ()) in
  let parsed = Imk_elf.Parser.parse b.Image.vmlinux in
  check int "entry is fn 0" b.Image.fn_va.(0) parsed.Imk_elf.Types.entry;
  check Alcotest.bool "has .text" true
    (Imk_elf.Types.section_by_name parsed ".text" <> None);
  check Alcotest.bool "has tables" true
    (Imk_elf.Types.section_by_name parsed ".kallsyms" <> None
    && Imk_elf.Types.section_by_name parsed ".extab" <> None
    && Imk_elf.Types.section_by_name parsed ".rodata" <> None
    && Imk_elf.Types.section_by_name parsed ".bss" <> None)

let test_image_fg_sections () =
  let b = Image.build (small_cfg ~variant:Config.Fgkaslr ()) in
  let parsed = Imk_elf.Parser.parse b.Image.vmlinux in
  let fn_sections =
    Array.to_list parsed.Imk_elf.Types.sections
    |> List.filter Imk_elf.Types.is_function_section
  in
  check int "one section per function" 60 (List.length fn_sections);
  check Alcotest.bool "no plain .text" true
    (Imk_elf.Types.section_by_name parsed ".text" = None)

let test_image_nokaslr_has_no_relocs () =
  let b = Image.build (small_cfg ~variant:Config.Nokaslr ()) in
  check int "no relocs" 0 (Imk_elf.Relocation.entry_count b.Image.relocs)

let test_image_relocs_sorted () =
  let b = Image.build (small_cfg ()) in
  check Alcotest.bool "sorted" true
    (Imk_elf.Relocation.sorted_dedup_invariant b.Image.relocs)

let test_image_sizes_ordering () =
  (* Table 1 shape at small scale: fgkaslr image is bigger than kaslr *)
  let k = Image.build (small_cfg ~variant:Config.Kaslr ()) in
  let f = Image.build (small_cfg ~variant:Config.Fgkaslr ()) in
  check Alcotest.bool "fg bigger" true
    (Bytes.length f.Image.vmlinux > Bytes.length k.Image.vmlinux);
  check Alcotest.bool "fg more reloc bytes" true
    (Bytes.length f.Image.relocs_bytes > Bytes.length k.Image.relocs_bytes)

let test_modeled_sizes () =
  let b = Image.build (small_cfg ()) in
  check int "scale multiplies" (4 * Bytes.length b.Image.vmlinux)
    (Image.modeled_vmlinux_bytes b)

(* --- unikernel flavor --- *)

let test_unikernel_configs () =
  let plain = Unikernel.config ~aslr:false () in
  let rando = Unikernel.config ~aslr:true () in
  check Alcotest.bool "plain not relocatable" true
    (not plain.Config.relocatable);
  check Alcotest.bool "aslr build is fg-sectioned" true rando.Config.fg_sections;
  check int "full-size build scale" 1 rando.Config.scale;
  check Alcotest.bool "tiny boot" true (rando.Config.linux_boot_ms < 5.)

let test_unikernel_builds () =
  let b = Unikernel.build ~aslr:true () in
  check Alcotest.bool "has relocations" true
    (Imk_elf.Relocation.entry_count b.Image.relocs > 0);
  check Alcotest.bool "small image" true
    (Bytes.length b.Image.vmlinux < 2 * 1024 * 1024);
  let plain = Unikernel.build ~aslr:false () in
  check int "no relocs without aslr" 0
    (Imk_elf.Relocation.entry_count plain.Image.relocs)

(* --- relocs tool --- *)

let test_relocs_tool_matches_build () =
  List.iter
    (fun variant ->
      let b = Image.build (small_cfg ~variant ()) in
      let extracted = Relocs_tool.extract b.Image.vmlinux in
      check Alcotest.bool
        (Config.variant_name variant ^ ": extracted = built")
        true
        (extracted.Imk_elf.Relocation.abs64 = b.Image.relocs.Imk_elf.Relocation.abs64
         || not b.Image.config.Config.relocatable)
        ;
      if b.Image.config.Config.relocatable then begin
        Alcotest.(check (array int)) "abs64"
          b.Image.relocs.Imk_elf.Relocation.abs64
          extracted.Imk_elf.Relocation.abs64;
        Alcotest.(check (array int)) "abs32"
          b.Image.relocs.Imk_elf.Relocation.abs32
          extracted.Imk_elf.Relocation.abs32;
        Alcotest.(check (array int)) "inv32"
          b.Image.relocs.Imk_elf.Relocation.inv32
          extracted.Imk_elf.Relocation.inv32
      end)
    [ Config.Kaslr; Config.Fgkaslr ]

let test_relocs_tool_rejects_garbage () =
  check Alcotest.bool "rejects" true
    (try
       ignore (Relocs_tool.extract (Bytes.make 64 'z'));
       false
     with Relocs_tool.Unsupported _ -> true)

let test_walk_functions_counts () =
  let b = Image.build (small_cfg ()) in
  let elf = Imk_elf.Parser.parse b.Image.vmlinux in
  let seen = ref 0 in
  Relocs_tool.walk_functions elf
    ~f:(fun ~section_va:_ ~fn_off:_ ~id ~size ~n_sites:_ ~data:_ ->
      check int "size matches graph"
        (Function_graph.fn_size b.Image.graph.Function_graph.fns.(id))
        size;
      incr seen);
  check int "all functions walked" 60 !seen

(* --- bzImage --- *)

let test_bzimage_roundtrip () =
  let b = Image.build (small_cfg ()) in
  List.iter
    (fun (codec, variant) ->
      let bz = Bzimage.link b ~codec ~variant in
      let decoded = Bzimage.decode (Bzimage.encode bz) in
      check Alcotest.string "codec" codec decoded.Bzimage.codec;
      check int "vmlinux len" (Bytes.length b.Image.vmlinux)
        decoded.Bzimage.vmlinux_len;
      let vmlinux, relocs = Bzimage.unpack_payload decoded in
      check Alcotest.bool "vmlinux intact" true
        (Bytes.equal vmlinux b.Image.vmlinux);
      check Alcotest.bool "relocs intact" true
        (Bytes.equal relocs b.Image.relocs_bytes))
    [
      ("lz4", Bzimage.Standard);
      ("none", Bzimage.Standard);
      ("none", Bzimage.None_optimized);
      ("gzip", Bzimage.Standard);
    ]

let test_bzimage_none_opt_requires_none () =
  let b = Image.build (small_cfg ()) in
  Alcotest.check_raises "codec mismatch"
    (Invalid_argument "Bzimage.link: none-optimized implies codec \"none\"")
    (fun () -> ignore (Bzimage.link b ~codec:"lz4" ~variant:Bzimage.None_optimized))

let test_bzimage_none_opt_aligned () =
  let b = Image.build (small_cfg ()) in
  let bz = Bzimage.link b ~codec:"none" ~variant:Bzimage.None_optimized in
  check int "payload aligned to 128K" 0 (Bzimage.payload_file_offset bz mod (128 * 1024))

let test_bzimage_rejects_garbage () =
  check Alcotest.bool "bad magic" true
    (try
       ignore (Bzimage.decode (Bytes.make 200 'q'));
       false
     with Bzimage.Malformed _ -> true);
  check Alcotest.bool "truncated" true
    (try
       ignore (Bzimage.decode (Bytes.create 10));
       false
     with Bzimage.Malformed _ -> true)

let test_bzimage_corrupt_payload () =
  let b = Image.build (small_cfg ()) in
  let bz = Bzimage.link b ~codec:"lz4" ~variant:Bzimage.Standard in
  let enc = Bzimage.encode bz in
  (* flip a byte inside the payload *)
  let off = Bytes.length enc - 100 in
  Bytes.set enc off (Char.chr (Char.code (Bytes.get enc off) lxor 0xff));
  let decoded = Bzimage.decode enc in
  check Alcotest.bool "corrupt payload detected" true
    (try
       ignore (Bzimage.unpack_payload decoded);
       false
     with Imk_compress.Codec.Corrupt _ -> true)

let qcheck_image_builds =
  QCheck.Test.make ~name:"images build and round-trip for random configs"
    ~count:15
    QCheck.(triple (int_range 2 80) bool int64)
    (fun (functions, fg, seed) ->
      let variant = if fg then Config.Fgkaslr else Config.Kaslr in
      let cfg =
        { (Config.make ~scale:2 ~seed Config.Lupine variant) with Config.functions }
      in
      let b = Image.build cfg in
      let parsed = Imk_elf.Parser.parse b.Image.vmlinux in
      Array.length parsed.Imk_elf.Types.symbols = functions
      && Imk_elf.Relocation.sorted_dedup_invariant b.Image.relocs)

let () =
  Alcotest.run "imk_kernel"
    [
      ( "config",
        [
          Alcotest.test_case "matrix" `Quick test_config_matrix;
          Alcotest.test_case "fg relocs" `Quick test_config_fg_more_relocs;
          Alcotest.test_case "deterministic" `Quick
            test_config_deterministic_seed;
        ] );
      ( "function_graph",
        [
          Alcotest.test_case "ring" `Quick test_graph_strongly_connected_ring;
          Alcotest.test_case "deterministic" `Quick test_graph_deterministic;
          Alcotest.test_case "sizes" `Quick test_graph_fn_sizes_aligned;
          Alcotest.test_case "magic" `Quick test_fn_magic_properties;
        ] );
      ( "image",
        [
          Alcotest.test_case "builds+parses" `Quick test_image_builds_and_parses;
          Alcotest.test_case "fg sections" `Quick test_image_fg_sections;
          Alcotest.test_case "nokaslr no relocs" `Quick
            test_image_nokaslr_has_no_relocs;
          Alcotest.test_case "relocs sorted" `Quick test_image_relocs_sorted;
          Alcotest.test_case "size ordering" `Quick test_image_sizes_ordering;
          Alcotest.test_case "modeled sizes" `Quick test_modeled_sizes;
          Testkit.to_alcotest qcheck_image_builds;
        ] );
      ( "unikernel",
        [
          Alcotest.test_case "configs" `Quick test_unikernel_configs;
          Alcotest.test_case "builds" `Quick test_unikernel_builds;
        ] );
      ( "relocs_tool",
        [
          Alcotest.test_case "matches build" `Quick
            test_relocs_tool_matches_build;
          Alcotest.test_case "rejects garbage" `Quick
            test_relocs_tool_rejects_garbage;
          Alcotest.test_case "walk counts" `Quick test_walk_functions_counts;
        ] );
      ( "bzimage",
        [
          Alcotest.test_case "roundtrip" `Quick test_bzimage_roundtrip;
          Alcotest.test_case "none-opt codec" `Quick
            test_bzimage_none_opt_requires_none;
          Alcotest.test_case "none-opt alignment" `Quick
            test_bzimage_none_opt_aligned;
          Alcotest.test_case "rejects garbage" `Quick
            test_bzimage_rejects_garbage;
          Alcotest.test_case "corrupt payload" `Quick
            test_bzimage_corrupt_payload;
        ] );
    ]
