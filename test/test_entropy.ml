(* Tests for Imk_entropy: PRNG determinism and uniformity invariants,
   entropy pools, Fisher-Yates shuffling. *)

open Imk_entropy

let check = Alcotest.check

let test_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  check Alcotest.bool "different streams" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_split_independent () =
  let parent = Prng.create ~seed:7L in
  let child = Prng.split parent in
  check Alcotest.bool "child differs from parent" true
    (Prng.next_int64 child <> Prng.next_int64 parent)

let test_next_int_bounds () =
  let rng = Prng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Prng.next_int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_next_int_invalid () =
  let rng = Prng.create ~seed:3L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.next_int: bound must be positive") (fun () ->
      ignore (Prng.next_int rng 0))

let test_next_int_covers_all () =
  let rng = Prng.create ~seed:11L in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.next_int rng 8) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all Fun.id seen)

let test_next_float_range () =
  let rng = Prng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Prng.next_float rng in
    check Alcotest.bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_next_aligned () =
  let rng = Prng.create ~seed:9L in
  for _ = 1 to 500 do
    let v = Prng.next_aligned rng ~lo:0x1000000 ~hi:0x40000000 ~align:0x200000 in
    check Alcotest.bool "aligned" true (v mod 0x200000 = 0);
    check Alcotest.bool "in range" true (v >= 0x1000000 && v <= 0x40000000)
  done

let test_next_aligned_empty () =
  let rng = Prng.create ~seed:9L in
  Alcotest.check_raises "no aligned value"
    (Invalid_argument "Prng.next_aligned: empty aligned range") (fun () ->
      ignore (Prng.next_aligned rng ~lo:3 ~hi:5 ~align:8))

let test_next_aligned_single_slot () =
  let rng = Prng.create ~seed:9L in
  for _ = 1 to 10 do
    check Alcotest.int "only slot" 8 (Prng.next_aligned rng ~lo:5 ~hi:10 ~align:8)
  done

let test_gaussian_moments () =
  let rng = Prng.create ~seed:13L in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.gaussian rng ~mean:10. ~stddev:2.) in
  let mean = Array.fold_left ( +. ) 0. samples /. float_of_int n in
  check Alcotest.bool "mean near 10" true (abs_float (mean -. 10.) < 0.1)

let test_pool_sources () =
  let host = Pool.create Pool.Host_pool ~seed:1L in
  let guest = Pool.create Pool.Guest_rdrand ~seed:1L in
  check Alcotest.bool "host draw cheaper" true
    (Pool.draw_cost_ns host < Pool.draw_cost_ns guest);
  (* same seed, same source-independent stream *)
  check Alcotest.int64 "stream from seed" (Pool.draw_u64 host) (Pool.draw_u64 guest)

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:21L in
  let a = Array.init 100 (fun i -> i) in
  Shuffle.shuffle_in_place rng a;
  check Alcotest.bool "permutation" true (Shuffle.is_permutation a)

let test_permutation_uniform_smoke () =
  (* every position should receive every value eventually *)
  let rng = Prng.create ~seed:22L in
  let hits = Array.make_matrix 4 4 0 in
  for _ = 1 to 2000 do
    let p = Shuffle.permutation rng 4 in
    Array.iteri (fun i v -> hits.(i).(v) <- hits.(i).(v) + 1) p
  done;
  Array.iter
    (Array.iter (fun c -> check Alcotest.bool "cell populated" true (c > 50)))
    hits

let test_is_permutation_rejects () =
  check Alcotest.bool "dup" false (Shuffle.is_permutation [| 0; 0 |]);
  check Alcotest.bool "oob" false (Shuffle.is_permutation [| 0; 2 |]);
  check Alcotest.bool "ok" true (Shuffle.is_permutation [| 1; 0 |])

let test_identity_fraction () =
  check (Alcotest.float 1e-9) "identity" 1.
    (Shuffle.identity_fraction [| 0; 1; 2 |]);
  check (Alcotest.float 1e-9) "derangement" 0.
    (Shuffle.identity_fraction [| 1; 2; 0 |])

let test_log2_factorial () =
  (* log2(4!) = log2 24 ≈ 4.585 *)
  let v = Shuffle.log2_factorial 4 in
  check Alcotest.bool "log2 24" true (abs_float (v -. 4.5849625) < 1e-6);
  check (Alcotest.float 1e-9) "0! = 1" 0. (Shuffle.log2_factorial 0)

let qcheck_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle always yields a permutation" ~count:100
    QCheck.(pair (int_bound 200) int64)
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      Shuffle.is_permutation (Shuffle.permutation rng n))

let qcheck_aligned_always_aligned =
  QCheck.Test.make ~name:"next_aligned respects alignment and bounds" ~count:300
    QCheck.(triple int64 (int_range 1 20) (int_range 0 1000))
    (fun (seed, align_log, lo) ->
      let rng = Prng.create ~seed in
      let align = 1 lsl (align_log mod 12) in
      let hi = lo + (align * 10) in
      let v = Prng.next_aligned rng ~lo ~hi ~align in
      v mod align = 0 && v >= lo && v <= hi)

let () =
  Alcotest.run "imk_entropy"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "next_int bounds" `Quick test_next_int_bounds;
          Alcotest.test_case "next_int invalid" `Quick test_next_int_invalid;
          Alcotest.test_case "next_int coverage" `Quick test_next_int_covers_all;
          Alcotest.test_case "next_float range" `Quick test_next_float_range;
          Alcotest.test_case "next_aligned" `Quick test_next_aligned;
          Alcotest.test_case "next_aligned empty" `Quick test_next_aligned_empty;
          Alcotest.test_case "next_aligned single slot" `Quick
            test_next_aligned_single_slot;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Testkit.to_alcotest qcheck_aligned_always_aligned;
        ] );
      ( "pool",
        [ Alcotest.test_case "source costs" `Quick test_pool_sources ] );
      ( "shuffle",
        [
          Alcotest.test_case "permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "uniform smoke" `Quick
            test_permutation_uniform_smoke;
          Alcotest.test_case "is_permutation rejects" `Quick
            test_is_permutation_rejects;
          Alcotest.test_case "identity fraction" `Quick test_identity_fraction;
          Alcotest.test_case "log2 factorial" `Quick test_log2_factorial;
          Testkit.to_alcotest qcheck_shuffle_permutes;
        ] );
    ]
