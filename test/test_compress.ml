(* Tests for Imk_compress: format-level units for each codec stage and
   round-trip properties for every registered codec on adversarial inputs. *)

open Imk_compress

let check = Alcotest.check
let int = Alcotest.int

let bytes_testable =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

(* deterministic sample inputs covering the codec edge cases *)
let samples =
  [
    ("empty", Bytes.create 0);
    ("one byte", Bytes.of_string "x");
    ("all zeros", Bytes.make 4096 '\000');
    ("all same", Bytes.make 1000 'a');
    ("short text", Bytes.of_string "the quick brown fox jumps over the lazy dog");
    ( "repetitive",
      Bytes.of_string (String.concat "" (List.init 200 (fun _ -> "abcdefgh"))) );
    ( "incompressible",
      let rng = Imk_entropy.Prng.create ~seed:99L in
      Bytes.init 8192 (fun _ -> Char.chr (Imk_entropy.Prng.next_int rng 256)) );
    ( "kernel-ish",
      (* mix of repeated opcode-like patterns and embedded addresses *)
      let rng = Imk_entropy.Prng.create ~seed:7L in
      let b = Bytes.create 32768 in
      for i = 0 to (Bytes.length b / 16) - 1 do
        let pat = Imk_entropy.Prng.next_int rng 4 in
        for j = 0 to 15 do
          Bytes.set b ((i * 16) + j)
            (Char.chr ((pat * 16) + (j land 7) + if j = 15 then Imk_entropy.Prng.next_int rng 16 else 0))
        done
      done;
      b );
  ]

let roundtrip_case codec (label, input) () =
  let compressed = codec.Codec.compress input in
  let out = codec.Codec.decompress compressed in
  check bytes_testable (codec.Codec.name ^ " roundtrip " ^ label) input out

let roundtrip_tests codec =
  List.map
    (fun ((label, _) as sample) ->
      Alcotest.test_case (codec.Codec.name ^ "/" ^ label) `Quick
        (roundtrip_case codec sample))
    samples

let test_frame_rejects_wrong_codec () =
  let data = Bytes.of_string "hello hello hello hello" in
  let compressed = Lz4.codec.Codec.compress data in
  Alcotest.check_raises "codec mismatch"
    (Codec.Corrupt "frame: payload is not gzip") (fun () ->
      ignore (Gzip.codec.Codec.decompress compressed))

let test_frame_rejects_truncated () =
  Alcotest.check_raises "truncated" (Codec.Corrupt "frame: truncated header")
    (fun () -> ignore (Lz4.codec.Codec.decompress (Bytes.create 3)))

let test_frame_detects_corruption () =
  let data = Bytes.of_string (String.concat "-" (List.init 64 string_of_int)) in
  let compressed = Store.codec.Codec.compress data in
  (* flip a payload byte past the header *)
  let i = Bytes.length compressed - 1 in
  Bytes.set compressed i (Char.chr (Char.code (Bytes.get compressed i) lxor 1));
  check Alcotest.bool "corrupt raises" true
    (try
       ignore (Store.codec.Codec.decompress compressed);
       false
     with Codec.Corrupt _ -> true)

let test_registry_contents () =
  check int "seven codecs" 7 (List.length Registry.all);
  check int "six bakeoff codecs" 6 (List.length Registry.bakeoff_codecs);
  check Alcotest.string "find lz4" "lz4" (Registry.find "lz4").Codec.name;
  check Alcotest.bool "unknown" true (Registry.find_opt "zip" = None)

let test_compression_actually_compresses () =
  (* on a repetitive input every real codec must beat store *)
  let input = Bytes.make 65536 'k' in
  List.iter
    (fun codec ->
      let ratio =
        float_of_int (Bytes.length input)
        /. float_of_int (Bytes.length (codec.Codec.compress input))
      in
      check Alcotest.bool (codec.Codec.name ^ " compresses") true (ratio > 4.))
    Registry.bakeoff_codecs

let test_ratio_ordering_on_kernel_like_data () =
  (* lzma/xz should beat gzip, gzip should beat lzo on structured data —
     the ratio ordering behind Table 1 *)
  let rng = Imk_entropy.Prng.create ~seed:123L in
  let b = Bytes.create 262144 in
  for i = 0 to (Bytes.length b / 8) - 1 do
    let v = Imk_entropy.Prng.next_int rng 64 in
    for j = 0 to 7 do
      Bytes.set b ((i * 8) + j) (Char.chr ((v + (j * 3)) land 0xff))
    done
  done;
  let size name = Bytes.length ((Registry.find name).Codec.compress b) in
  check Alcotest.bool "lzma <= gzip" true (size "lzma" <= size "gzip");
  check Alcotest.bool "gzip <= lzo" true (size "gzip" <= size "lzo")

(* --- bit I/O --- *)

let test_bitio_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits w 0b101 3;
  Bitio.Writer.put_bits w 0xbeef 16;
  Bitio.Writer.put_bit w 1;
  let data = Bitio.Writer.contents w in
  let r = Bitio.Reader.create data ~pos:0 in
  check int "3 bits" 0b101 (Bitio.Reader.get_bits r 3);
  check int "16 bits" 0xbeef (Bitio.Reader.get_bits r 16);
  check int "1 bit" 1 (Bitio.Reader.get_bit r)

let test_bitio_align () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits w 1 1;
  Bitio.Writer.align_byte w;
  Bitio.Writer.put_bits w 0xff 8;
  let data = Bitio.Writer.contents w in
  check int "two bytes" 2 (Bytes.length data);
  let r = Bitio.Reader.create data ~pos:0 in
  check int "first" 1 (Bitio.Reader.get_bit r);
  Bitio.Reader.align_byte r;
  check int "second byte" 0xff (Bitio.Reader.get_bits r 8)

let test_bitio_truncated () =
  let r = Bitio.Reader.create (Bytes.create 0) ~pos:0 in
  check Alcotest.bool "raises" true
    (try
       ignore (Bitio.Reader.get_bit r);
       false
     with Bitio.Reader.Truncated -> true)

(* --- Huffman --- *)

let test_huffman_roundtrip () =
  let freqs = [| 45; 13; 12; 16; 9; 5; 0; 1 |] in
  let lens = Huffman.lengths_of_freqs freqs in
  check int "zero freq no code" 0 lens.(6);
  check Alcotest.bool "kraft valid" true (Huffman.kraft_sum_valid lens);
  let enc = Huffman.encoder_of_lengths lens in
  let dec = Huffman.decoder_of_lengths lens in
  let syms = [ 0; 1; 2; 3; 4; 5; 7; 0; 0; 4 ] in
  let w = Bitio.Writer.create () in
  List.iter (fun s -> Huffman.encode enc w s) syms;
  let r = Bitio.Reader.create (Bitio.Writer.contents w) ~pos:0 in
  List.iter (fun s -> check int "sym" s (Huffman.decode dec r)) syms

let test_huffman_single_symbol () =
  let lens = Huffman.lengths_of_freqs [| 0; 10; 0 |] in
  check int "single symbol gets len 1" 1 lens.(1)

let test_huffman_max_len_respected () =
  (* fibonacci-ish frequencies force deep trees; max_len must clamp *)
  let freqs = Array.init 40 (fun i ->
      let rec fib n = if n < 2 then 1 else fib (n - 1) + fib (n - 2) in
      fib (min i 25)) in
  let lens = Huffman.lengths_of_freqs ~max_len:15 freqs in
  Array.iter (fun l -> check Alcotest.bool "<=15" true (l <= 15)) lens;
  check Alcotest.bool "kraft valid" true (Huffman.kraft_sum_valid lens)

let test_huffman_lengths_table_io () =
  let lens = [| 3; 0; 2; 15; 1 |] in
  let w = Bitio.Writer.create () in
  Huffman.write_lengths w lens;
  let r = Bitio.Reader.create (Bitio.Writer.contents w) ~pos:0 in
  let back = Huffman.read_lengths r 5 in
  Alcotest.(check (array int)) "lengths" lens back

(* --- BWT / MTF / RLE2 --- *)

let test_bwt_known () =
  (* banana: a classic *)
  let t = Bwt.forward (Bytes.of_string "banana") in
  let back = Bwt.inverse t in
  check bytes_testable "banana" (Bytes.of_string "banana") back

let test_bwt_empty () =
  let t = Bwt.forward (Bytes.create 0) in
  check int "empty last column" 0 (Bytes.length t.Bwt.last_column);
  check bytes_testable "empty" (Bytes.create 0) (Bwt.inverse t)

let test_suffix_array_sorted () =
  let b = Bytes.of_string "mississippi" in
  let sa = Bwt.suffix_array b in
  let n = Bytes.length b + 1 in
  check int "length" n (Array.length sa);
  let suffix i =
    Bytes.sub_string b i (Bytes.length b - i) ^ "\000" (* sentinel proxy *)
  in
  for i = 0 to n - 2 do
    let a = if sa.(i) = n - 1 then "" else suffix sa.(i) in
    let c = if sa.(i + 1) = n - 1 then "" else suffix sa.(i + 1) in
    check Alcotest.bool "sorted" true (a < c || a = "")
  done

let test_mtf_roundtrip () =
  let input = Bytes.of_string "aaabbbcccabc\000\255" in
  let enc = Mtf.encode input in
  check bytes_testable "mtf" input (Mtf.decode enc);
  (* runs become zeros after the first occurrence *)
  check int "second a" 0 enc.(1)

let test_rle2_roundtrip () =
  let cases =
    [ [||]; [| 0 |]; [| 0; 0; 0; 0 |]; [| 5; 0; 0; 3 |]; Array.make 100 0;
      Array.init 50 (fun i -> i mod 7) ]
  in
  List.iter
    (fun mtf ->
      let syms = Bzip2.rle2_encode mtf in
      Alcotest.(check (array int)) "rle2" mtf (Bzip2.rle2_decode syms))
    cases

(* --- LZ4/LZO format details --- *)

let test_lz4_long_runs () =
  (* literal runs and match lengths beyond the 15-escape *)
  let rng = Imk_entropy.Prng.create ~seed:5L in
  let incompressible =
    Bytes.init 400 (fun _ -> Char.chr (Imk_entropy.Prng.next_int rng 256))
  in
  let long_match = Bytes.make 1000 'z' in
  let input = Bytes.cat incompressible long_match in
  let out = Lz4.decode_payload (Lz4.encode_payload input) ~orig_len:(Bytes.length input) in
  check bytes_testable "long runs" input out

let test_lz4_corrupt_rejected () =
  check Alcotest.bool "corrupt raises" true
    (try
       ignore (Lz4.decode_payload (Bytes.of_string "\xff\xff\xff") ~orig_len:10);
       false
     with Codec.Corrupt _ -> true)

let test_gzip_code_tables () =
  let sym, bits, extra = Gzip.length_code 3 in
  check int "len 3 sym" 257 sym;
  check int "len 3 bits" 0 bits;
  check int "len 3 extra" 0 extra;
  let sym, _, _ = Gzip.length_code 258 in
  check int "len 258 sym" 284 sym;
  let sym, bits, extra = Gzip.distance_code 1 in
  check int "dist 1" 0 sym;
  check int "dist 1 bits" 0 bits;
  check int "dist 1 extra" 0 extra;
  let sym, _, _ = Gzip.distance_code 32768 in
  check int "dist max sym" 29 sym

(* --- range coder --- *)

let test_range_coder_bits () =
  let e = Range_coder.Encoder.create () in
  let probs = Range_coder.make_probs 1 in
  let bits = List.init 500 (fun i -> if i mod 7 = 0 then 1 else 0) in
  List.iter (fun b -> Range_coder.Encoder.encode_bit e probs 0 b) bits;
  let data = Range_coder.Encoder.finish e in
  let probs' = Range_coder.make_probs 1 in
  let d = Range_coder.Decoder.create data ~pos:0 in
  List.iter
    (fun b -> check int "bit" b (Range_coder.Decoder.decode_bit d probs' 0))
    bits

let test_range_coder_direct_and_tree () =
  let e = Range_coder.Encoder.create () in
  let tree = Range_coder.make_probs 256 in
  Range_coder.Encoder.encode_direct e 0xabc 12;
  Range_coder.Encoder.encode_tree e tree 0x5a 8;
  Range_coder.Encoder.encode_direct e 0 1;
  let data = Range_coder.Encoder.finish e in
  let tree' = Range_coder.make_probs 256 in
  let d = Range_coder.Decoder.create data ~pos:0 in
  check int "direct" 0xabc (Range_coder.Decoder.decode_direct d 12);
  check int "tree" 0x5a (Range_coder.Decoder.decode_tree d tree' 8);
  check int "direct single" 0 (Range_coder.Decoder.decode_direct d 1)

let test_range_coder_skewed_compresses () =
  (* heavily skewed bit streams should code well below 1 bit per symbol *)
  let e = Range_coder.Encoder.create () in
  let probs = Range_coder.make_probs 1 in
  for i = 1 to 10_000 do
    Range_coder.Encoder.encode_bit e probs 0 (if i mod 100 = 0 then 1 else 0)
  done;
  let data = Range_coder.Encoder.finish e in
  check Alcotest.bool "well under 1250 bytes" true (Bytes.length data < 400)

(* --- qcheck round-trip properties for all codecs --- *)

let arbitrary_input =
  QCheck.(
    map
      (fun (mode, s, n) ->
        match mode mod 3 with
        | 0 -> Bytes.of_string s
        | 1 -> Bytes.make (n mod 2048) 'r'
        | _ ->
            let rng = Imk_entropy.Prng.create ~seed:(Int64.of_int n) in
            Bytes.init (n mod 4096) (fun _ ->
                Char.chr (Imk_entropy.Prng.next_int rng 256)))
      (triple small_nat (string_of_size Gen.(0 -- 2048)) small_nat))

let qcheck_roundtrip codec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: decompress ∘ compress = id" codec.Codec.name)
    ~count:60 arbitrary_input
    (fun input -> Bytes.equal input (codec.Codec.decompress (codec.Codec.compress input)))

let qcheck_bwt_roundtrip =
  QCheck.Test.make ~name:"bwt: inverse ∘ forward = id" ~count:100
    QCheck.(string_of_size Gen.(0 -- 512))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Bwt.inverse (Bwt.forward b)))

let qcheck_mtf_roundtrip =
  QCheck.Test.make ~name:"mtf: decode ∘ encode = id" ~count:100
    QCheck.(string_of_size Gen.(0 -- 512))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Mtf.decode (Mtf.encode b)))

(* mutation oracle: flipping any byte of a compressed frame must either
   be detected (Corrupt) or be harmless (decode to the original) — a
   silently different output would mean the CRC failed its one job *)
let qcheck_mutation codec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: mutations detected or harmless" codec.Codec.name)
    ~count:40
    QCheck.(triple (string_of_size Gen.(1 -- 512)) small_nat small_nat)
    (fun (s, pos, delta) ->
      let input = Bytes.of_string s in
      let compressed = codec.Codec.compress input in
      let i = pos mod Bytes.length compressed in
      Bytes.set compressed i
        (Char.chr (Char.code (Bytes.get compressed i) lxor (1 + (delta mod 255))));
      match codec.Codec.decompress compressed with
      | out -> Bytes.equal out input
      | exception Codec.Corrupt _ -> true)

(* truncation oracle: every prefix of a frame must fail cleanly *)
let qcheck_truncation codec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: truncations fail cleanly" codec.Codec.name)
    ~count:40
    QCheck.(pair (string_of_size Gen.(1 -- 256)) small_nat)
    (fun (s, cut) ->
      let input = Bytes.of_string s in
      let compressed = codec.Codec.compress input in
      let n = Bytes.length compressed in
      let keep = cut mod n in
      match codec.Codec.decompress (Bytes.sub compressed 0 keep) with
      | out -> Bytes.equal out input (* only possible if nothing was lost *)
      | exception Codec.Corrupt _ -> true)

(* sink oracle: decompress_into is pinned to the allocating decode
   byte-for-byte, and never writes outside the validated destination
   window — sentinel bytes on both sides must survive the decode *)
let qcheck_into_equiv codec =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: decompress_into ≡ decompress" codec.Codec.name)
    ~count:60
    QCheck.(pair arbitrary_input small_nat)
    (fun (input, off0) ->
      let compressed = codec.Codec.compress input in
      let expect = codec.Codec.decompress compressed in
      let dst_off = off0 mod 64 in
      let dst = Bytes.make (dst_off + Bytes.length expect + 64) '\xab' in
      let n = codec.Codec.decompress_into compressed ~dst ~dst_off in
      let confined = ref true in
      for i = 0 to dst_off - 1 do
        if Bytes.get dst i <> '\xab' then confined := false
      done;
      for i = dst_off + n to Bytes.length dst - 1 do
        if Bytes.get dst i <> '\xab' then confined := false
      done;
      n = Bytes.length expect
      && Bytes.equal expect (Bytes.sub dst dst_off n)
      && !confined)

(* corrupt sinks fail typed: any mutation or truncation of the frame
   either decodes to the original or raises Corrupt — never
   Invalid_argument (qcheck reports any other exception as a failure) —
   and never writes below the destination offset. The destination is
   sized exactly to the true output so an inflated length field is
   rejected before a single byte lands. *)
let qcheck_into_corrupt codec =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: corrupt sink decodes fail typed, confined"
         codec.Codec.name)
    ~count:60
    QCheck.(
      quad (string_of_size Gen.(1 -- 512)) small_nat small_nat bool)
    (fun (s, pos, delta, truncate) ->
      let input = Bytes.of_string s in
      let compressed = codec.Codec.compress input in
      let frame =
        if truncate then
          Bytes.sub compressed 0 (pos mod Bytes.length compressed)
        else begin
          let b = Bytes.copy compressed in
          let i = pos mod Bytes.length b in
          Bytes.set b i
            (Char.chr
               (Char.code (Bytes.get b i) lxor (1 + (delta mod 255))));
          b
        end
      in
      let dst_off = 32 in
      let dst = Bytes.make (dst_off + Bytes.length input) '\xab' in
      let prefix_confined () =
        let ok = ref true in
        for i = 0 to dst_off - 1 do
          if Bytes.get dst i <> '\xab' then ok := false
        done;
        !ok
      in
      match codec.Codec.decompress_into frame ~dst ~dst_off with
      | n ->
          prefix_confined () && n = Bytes.length input
          && Bytes.equal input (Bytes.sub dst dst_off n)
      | exception Codec.Corrupt _ -> prefix_confined ())

let test_into_rejects_bad_destination () =
  let codec = Registry.find "none" in
  let frame = codec.Codec.compress (Bytes.of_string "payload") in
  (* caller bugs are Invalid_argument (programming error), not Corrupt *)
  check Alcotest.bool "negative offset" true
    (match codec.Codec.decompress_into frame ~dst:(Bytes.make 64 ' ') ~dst_off:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* an untrusted length that overflows the destination is the frame's
     fault, so it classifies as Corrupt *)
  check Alcotest.bool "output exceeds destination" true
    (match codec.Codec.decompress_into frame ~dst:(Bytes.make 3 ' ') ~dst_off:0 with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

let qcheck_huffman_kraft =
  QCheck.Test.make ~name:"huffman lengths always satisfy kraft" ~count:200
    QCheck.(list_of_size Gen.(1 -- 64) (int_bound 10_000))
    (fun freqs ->
      let lens = Huffman.lengths_of_freqs (Array.of_list freqs) in
      Huffman.kraft_sum_valid lens)

(* --- table-driven vs bit-serial Huffman decoder equivalence --- *)

let test_bitio_peek_consume () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits w 0b1011 4;
  Bitio.Writer.put_bits w 0xcafe 16;
  let data = Bitio.Writer.contents w in
  let r = Bitio.Reader.create data ~pos:0 in
  check int "peek does not consume" 0b1011 (Bitio.Reader.peek_bits r 4);
  check int "peek again" 0b1011 (Bitio.Reader.peek_bits r 4);
  Bitio.Reader.consume r 4;
  check int "after consume" 0xcafe (Bitio.Reader.peek_bits r 16);
  Bitio.Reader.consume r 16;
  (* 4 padding bits remain in the final byte; past them peek pads with
     zeros but consume must refuse to claim the padding *)
  check int "peek pads past end" 0 (Bitio.Reader.peek_bits r 12);
  check Alcotest.bool "consume past end raises" true
    (try
       Bitio.Reader.consume r 12;
       false
     with Bitio.Reader.Truncated -> true)

let qcheck_bitio_roundtrip =
  QCheck.Test.make ~name:"bitio: batched writer/reader roundtrip" ~count:200
    QCheck.(list_of_size Gen.(0 -- 200) (pair small_nat (int_range 0 24)))
    (fun chunks ->
      let w = Bitio.Writer.create () in
      List.iter (fun (v, n) -> Bitio.Writer.put_bits w v n) chunks;
      let r = Bitio.Reader.create (Bitio.Writer.contents w) ~pos:0 in
      List.for_all
        (fun (v, n) -> Bitio.Reader.get_bits r n = v land ((1 lsl n) - 1))
        chunks)

(* random decodable length sets, biased to include deep (> 9-bit) codes
   so the subtable path is exercised *)
let arb_huffman_lens =
  QCheck.map
    (fun freqs ->
      Huffman.lengths_of_freqs
        (Array.of_list (List.map (fun f -> 1 + (f * f)) freqs)))
    QCheck.(list_of_size Gen.(2 -- 64) (int_bound 40))

let coded_symbols lens =
  let out = ref [] in
  Array.iteri (fun i l -> if l > 0 then out := i :: !out) lens;
  Array.of_list !out

(* decode a fixed number of symbols, tagging how the stream ends *)
let decode_outcome decode_fn dec data limit =
  let r = Bitio.Reader.create data ~pos:0 in
  let syms = ref [] in
  let tag = ref `Ok in
  (try
     for _ = 1 to limit do
       syms := decode_fn dec r :: !syms
     done
   with
  | Codec.Corrupt _ -> tag := `Corrupt
  | Bitio.Reader.Truncated -> tag := `Truncated
  | Invalid_argument m -> tag := `Invalid m);
  (List.rev !syms, !tag)

let qcheck_huffman_table_equiv_valid_streams =
  (* on well-formed streams the table decoder must reproduce the encoded
     symbols and leave the reader at the same bit position as the
     bit-serial reference decoder (checked by draining both readers) *)
  QCheck.Test.make
    ~name:"huffman: table decode = bit-serial decode on valid streams"
    ~count:300
    QCheck.(
      triple arb_huffman_lens
        (list_of_size Gen.(0 -- 100) small_nat)
        (pair small_nat (int_range 0 16)))
    (fun (lens, picks, (trail, trail_bits)) ->
      let coded = coded_symbols lens in
      if Array.length coded = 0 then true
      else begin
        let syms =
          List.map (fun p -> coded.(p mod Array.length coded)) picks
        in
        let enc = Huffman.encoder_of_lengths lens in
        let w = Bitio.Writer.create () in
        List.iter (fun s -> Huffman.encode enc w s) syms;
        Bitio.Writer.put_bits w trail trail_bits;
        let data = Bitio.Writer.contents w in
        let dec = Huffman.decoder_of_lengths lens in
        let drain r =
          let bits = ref [] in
          (try
             while true do
               bits := Bitio.Reader.get_bit r :: !bits
             done
           with Bitio.Reader.Truncated -> ());
          List.rev !bits
        in
        let run decode_fn =
          let r = Bitio.Reader.create data ~pos:0 in
          let out = List.map (fun _ -> decode_fn dec r) syms in
          (out, drain r)
        in
        let table_syms, table_rest = run Huffman.decode in
        let ref_syms, ref_rest = run Huffman.decode_ref in
        table_syms = syms && ref_syms = syms && table_rest = ref_rest
      end)

let qcheck_huffman_table_equiv_random_streams =
  (* on arbitrary bitstreams both decoders must agree symbol for symbol
     and fail at the same point; the exception may differ only at
     end-of-stream, where the table can prove Corrupt while the
     bit-serial walk runs out of bits first (Truncated) — and neither
     may ever leak Invalid_argument from the unsafe table lookups *)
  QCheck.Test.make
    ~name:"huffman: table decode = bit-serial decode on random streams"
    ~count:300
    QCheck.(pair arb_huffman_lens (string_of_size Gen.(0 -- 64)))
    (fun (lens, blob) ->
      let dec = Huffman.decoder_of_lengths lens in
      let data = Bytes.of_string blob in
      let table_syms, table_tag = decode_outcome Huffman.decode dec data 600 in
      let ref_syms, ref_tag = decode_outcome Huffman.decode_ref dec data 600 in
      let clean = function
        | `Ok | `Corrupt | `Truncated -> true
        | `Invalid _ -> false
      in
      table_syms = ref_syms && clean table_tag && clean ref_tag
      && (table_tag = ref_tag
         || (table_tag = `Corrupt && ref_tag = `Truncated)))

let test_huffman_rejects_oversubscribed () =
  Alcotest.check_raises "kraft violation"
    (Codec.Corrupt "huffman: over-subscribed code lengths") (fun () ->
      ignore (Huffman.decoder_of_lengths [| 1; 1; 1 |]))

let test_huffman_rejects_out_of_range_length () =
  Alcotest.check_raises "length 16"
    (Codec.Corrupt "huffman: code length out of range") (fun () ->
      ignore (Huffman.decoder_of_lengths [| 16 |]))

let test_huffman_table_deep_codes () =
  (* skewed frequencies force codes past the 9-bit root so both the root
     and subtable paths run; roundtrip through both decoders *)
  let freqs = Array.init 40 (fun i ->
      let rec fib n = if n < 2 then 1 else fib (n - 1) + fib (n - 2) in
      fib (min i 25)) in
  let lens = Huffman.lengths_of_freqs ~max_len:15 freqs in
  check Alcotest.bool "has a deep code" true
    (Array.exists (fun l -> l > 9) lens);
  let enc = Huffman.encoder_of_lengths lens in
  let dec = Huffman.decoder_of_lengths lens in
  let syms = List.init 200 (fun i -> i mod 40) in
  let w = Bitio.Writer.create () in
  List.iter (fun s -> Huffman.encode enc w s) syms;
  let data = Bitio.Writer.contents w in
  let r = Bitio.Reader.create data ~pos:0 in
  List.iter (fun s -> check int "table" s (Huffman.decode dec r)) syms;
  let r = Bitio.Reader.create data ~pos:0 in
  List.iter (fun s -> check int "reference" s (Huffman.decode_ref dec r)) syms

let () =
  Alcotest.run "imk_compress"
    [
      ("bitio",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "align" `Quick test_bitio_align;
          Alcotest.test_case "truncated" `Quick test_bitio_truncated;
          Alcotest.test_case "peek/consume" `Quick test_bitio_peek_consume;
          Testkit.to_alcotest qcheck_bitio_roundtrip;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "roundtrip" `Quick test_huffman_roundtrip;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "max_len clamp" `Quick test_huffman_max_len_respected;
          Alcotest.test_case "length table io" `Quick
            test_huffman_lengths_table_io;
          Alcotest.test_case "rejects over-subscribed lengths" `Quick
            test_huffman_rejects_oversubscribed;
          Alcotest.test_case "rejects out-of-range length" `Quick
            test_huffman_rejects_out_of_range_length;
          Alcotest.test_case "deep codes hit the subtables" `Quick
            test_huffman_table_deep_codes;
          Testkit.to_alcotest qcheck_huffman_kraft;
          Testkit.to_alcotest qcheck_huffman_table_equiv_valid_streams;
          Testkit.to_alcotest qcheck_huffman_table_equiv_random_streams;
        ] );
      ( "bwt+mtf",
        [
          Alcotest.test_case "bwt banana" `Quick test_bwt_known;
          Alcotest.test_case "bwt empty" `Quick test_bwt_empty;
          Alcotest.test_case "suffix array sorted" `Quick
            test_suffix_array_sorted;
          Alcotest.test_case "mtf roundtrip" `Quick test_mtf_roundtrip;
          Alcotest.test_case "rle2 roundtrip" `Quick test_rle2_roundtrip;
          Testkit.to_alcotest qcheck_bwt_roundtrip;
          Testkit.to_alcotest qcheck_mtf_roundtrip;
        ] );
      ( "lz formats",
        [
          Alcotest.test_case "lz4 long runs" `Quick test_lz4_long_runs;
          Alcotest.test_case "lz4 corrupt" `Quick test_lz4_corrupt_rejected;
          Alcotest.test_case "gzip code tables" `Quick test_gzip_code_tables;
        ] );
      ( "range coder",
        [
          Alcotest.test_case "bits" `Quick test_range_coder_bits;
          Alcotest.test_case "direct and tree" `Quick
            test_range_coder_direct_and_tree;
          Alcotest.test_case "skewed compresses" `Quick
            test_range_coder_skewed_compresses;
        ] );
      ( "frames",
        [
          Alcotest.test_case "wrong codec" `Quick test_frame_rejects_wrong_codec;
          Alcotest.test_case "truncated" `Quick test_frame_rejects_truncated;
          Alcotest.test_case "corruption detected" `Quick
            test_frame_detects_corruption;
          Alcotest.test_case "registry" `Quick test_registry_contents;
          Alcotest.test_case "ratios > 4 on runs" `Quick
            test_compression_actually_compresses;
          Alcotest.test_case "ratio ordering" `Quick
            test_ratio_ordering_on_kernel_like_data;
          Alcotest.test_case "sink rejects bad destination" `Quick
            test_into_rejects_bad_destination;
        ] );
      ( "sinks",
        List.map (fun c -> Testkit.to_alcotest (qcheck_into_equiv c))
          Registry.all
        @ List.map (fun c -> Testkit.to_alcotest (qcheck_into_corrupt c))
            Registry.all );
      ( "roundtrips",
        List.concat_map roundtrip_tests Registry.all
        @ List.map (fun c -> Testkit.to_alcotest (qcheck_roundtrip c))
            Registry.all );
      ( "adversarial",
        List.map (fun c -> Testkit.to_alcotest (qcheck_mutation c))
          Registry.all
        @ List.map (fun c -> Testkit.to_alcotest (qcheck_truncation c))
            Registry.all );
    ]
