(* Tests for Imk_util: byte codecs, checksums, stats, tables, units. *)

open Imk_util

let check = Alcotest.check
let int = Alcotest.int

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let test_u8_roundtrip () =
  let b = Bytes.create 4 in
  Byteio.set_u8 b 1 0xab;
  check int "u8" 0xab (Byteio.get_u8 b 1);
  Byteio.set_u8 b 1 0x1ff;
  check int "u8 masks" 0xff (Byteio.get_u8 b 1)

let test_u16_roundtrip () =
  let b = Bytes.create 4 in
  Byteio.set_u16 b 0 0xbeef;
  check int "u16" 0xbeef (Byteio.get_u16 b 0);
  check int "u16 low byte first" 0xef (Byteio.get_u8 b 0)

let test_u32_roundtrip () =
  let b = Bytes.create 8 in
  Byteio.set_u32 b 2 0xdeadbeef;
  check int "u32" 0xdeadbeef (Byteio.get_u32 b 2);
  Byteio.set_u32 b 2 0xffffffff;
  check int "u32 max" 0xffffffff (Byteio.get_u32 b 2)

let test_i64_roundtrip () =
  let b = Bytes.create 8 in
  Byteio.set_i64 b 0 (-1L);
  check Alcotest.int64 "i64" (-1L) (Byteio.get_i64 b 0)

let test_addr_roundtrip () =
  let b = Bytes.create 8 in
  (* simulated canonical kernel base: preserves Linux's low-32-bit
     structure while fitting OCaml's 63-bit int *)
  let addr = 0x3fffffff81000000 in
  Byteio.set_addr b 0 addr;
  check int "addr" addr (Byteio.get_addr b 0)

let test_addr_negative_rejected () =
  let b = Bytes.create 8 in
  Alcotest.check_raises "negative addr"
    (Invalid_argument "Byteio.set_addr: negative address") (fun () ->
      Byteio.set_addr b 0 (-1))

let test_u32_signed () =
  let b = Bytes.create 4 in
  Byteio.set_u32 b 0 0xffffffff;
  check int "signed -1" (-1) (Byteio.get_u32_signed b 0);
  Byteio.set_u32 b 0 0x7fffffff;
  check int "signed max" 0x7fffffff (Byteio.get_u32_signed b 0)

let test_fill_zero () =
  let b = Bytes.make 8 'x' in
  Byteio.fill_zero b 2 4;
  check Alcotest.string "fill" "xx\000\000\000\000xx" (Bytes.to_string b)

let test_hex_dump () =
  let b = Bytes.of_string "ABC\000" in
  let dump = Byteio.hex_dump b in
  check Alcotest.bool "contains hex" true
    (contains ~affix:"41 42 43 00" dump)

let test_crc32_known () =
  (* standard test vector: crc32("123456789") = 0xCBF43926 *)
  check int "crc32 vector" 0xcbf43926 (Crc.crc32_string "123456789")

let test_crc32_empty () = check int "crc32 empty" 0 (Crc.crc32_string "")

let test_crc32_incremental () =
  let b = Bytes.of_string "hello world" in
  let whole = Crc.crc32 b 0 11 in
  (* incremental chaining: crc of first half feeds the second *)
  let part = Crc.crc32 ~init:(Crc.crc32 b 0 5) b 5 6 in
  check int "incremental equals whole" whole part

let test_adler32_known () =
  (* adler32("Wikipedia") = 0x11E60398 *)
  let b = Bytes.of_string "Wikipedia" in
  check int "adler vector" 0x11e60398 (Crc.adler32 b 0 9)

let test_stats_basic () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  check (Alcotest.float 1e-9) "mean" 3. s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.min;
  check (Alcotest.float 1e-9) "max" 5. s.Stats.max;
  check (Alcotest.float 1e-9) "p50" 3. s.Stats.p50;
  check int "n" 5 s.Stats.n

let test_stats_singleton () =
  let s = Stats.summarize [ 42. ] in
  check (Alcotest.float 1e-9) "mean" 42. s.Stats.mean;
  check (Alcotest.float 1e-9) "stddev" 0. s.Stats.stddev

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: no samples")
    (fun () -> ignore (Stats.summarize []))

let test_stats_nonfinite_raises () =
  let expect_raise what xs =
    Alcotest.check_raises what
      (Invalid_argument "Stats.summarize: non-finite sample") (fun () ->
        ignore (Stats.summarize xs))
  in
  expect_raise "nan" [ 1.; Float.nan; 3. ];
  expect_raise "inf" [ Float.infinity ];
  expect_raise "neg inf" [ 2.; Float.neg_infinity ]

let test_stats_sort_is_numeric () =
  (* percentiles must come from a numeric sort; a polymorphic compare on
     floats is structural and this ordering is its canary *)
  let s = Stats.summarize [ 100.; 2.; 30.; -5.; 0.25 ] in
  check (Alcotest.float 1e-9) "p50" 2. s.Stats.p50;
  check (Alcotest.float 1e-9) "min" (-5.) s.Stats.min;
  check (Alcotest.float 1e-9) "max" 100. s.Stats.max

let test_pct_change () =
  check (Alcotest.float 1e-9) "up" 4. (Stats.pct_change 100. 104.);
  check (Alcotest.float 1e-9) "down" (-50.) (Stats.pct_change 100. 50.)

let test_percentile_interpolates () =
  let a = [| 0.; 10. |] in
  check (Alcotest.float 1e-9) "p50 interp" 5. (Stats.percentile a 50.)

let test_units_bytes () =
  check Alcotest.string "mib" "4.0M" (Units.bytes_to_string (Units.mib 4));
  check Alcotest.string "kib" "94K" (Units.bytes_to_string (Units.kib 94));
  check Alcotest.string "small" "17" (Units.bytes_to_string 17)

let test_units_time () =
  check (Alcotest.float 1e-9) "ns->ms" 1.5 (Units.ns_to_ms 1_500_000);
  check int "ms->ns" 2_000_000 (Units.ms_to_ns 2.);
  check Alcotest.string "pp_ms" "28.10 ms" (Units.ms_string 28_100_000)

(* ---- Minjson: the BENCH_<exp>.json reader ---- *)

let test_minjson_values () =
  let j =
    Minjson.parse
      "{ \"a\": 1, \"b\": -2.5e1, \"s\": \"x\\n\\\"y\\\"\\u00e9\", \"l\": [ \
       true, false, null ] }"
  in
  check int "int" 1 (Minjson.to_int (Minjson.member_exn "a" j));
  check (Alcotest.float 1e-9) "exp float" (-25.)
    (Minjson.to_float (Minjson.member_exn "b" j));
  check Alcotest.string "escapes" "x\n\"y\"\xe9"
    (Minjson.to_string (Minjson.member_exn "s" j));
  check int "list" 3 (List.length (Minjson.to_list (Minjson.member_exn "l" j)));
  check Alcotest.bool "missing member" true (Minjson.member "zz" j = None)

let test_minjson_rejects () =
  let bad what s =
    check Alcotest.bool what true
      (match Minjson.parse s with
      | _ -> false
      | exception Minjson.Malformed _ -> true)
  in
  bad "trailing garbage" "{} x";
  bad "truncated object" "{ \"a\": 1,";
  bad "unterminated string" "\"abc";
  bad "bare word" "nope";
  bad "lone minus" "-";
  bad "non-latin1 escape" "\"\\u0400\"";
  check Alcotest.bool "non-integral to_int" true
    (match Minjson.to_int (Minjson.parse "1.5") with
    | _ -> false
    | exception Minjson.Malformed _ -> true);
  check Alcotest.bool "to_float of string" true
    (match Minjson.to_float (Minjson.parse "\"3\"") with
    | _ -> false
    | exception Minjson.Malformed _ -> true)

let test_table_render () =
  let t = Table.create ~headers:[ "kernel"; "ms" ] in
  Table.add_row t [ "lupine"; "16.0" ];
  Table.add_row t [ "aws" ];
  let s = Table.render t in
  check Alcotest.bool "has header" true (contains ~affix:"kernel" s);
  check Alcotest.bool "has row" true (contains ~affix:"lupine" s)

let test_table_too_many_cells () =
  let t = Table.create ~headers:[ "one" ] in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "a"; "b" ])

let qcheck_crc_differs =
  QCheck.Test.make ~name:"crc32 detects single-byte corruption" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let b = Bytes.of_string s in
      let i = i mod Bytes.length b in
      let before = Crc.crc32 b 0 (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      before <> Crc.crc32 b 0 (Bytes.length b))

let qcheck_crc_slice_matches_ref =
  (* the slice-by-8 word loop is pinned to the checked byte-at-a-time
     reference over arbitrary (bytes, off, len, init) — unaligned
     offsets, odd tails shorter than a word, and every init value the
     chaining API can produce *)
  QCheck.Test.make ~name:"crc32 slice-by-8 ≡ crc32_ref on any range"
    ~count:500
    QCheck.(
      quad
        (string_of_size Gen.(0 -- 300))
        small_nat small_nat (option int))
    (fun (s, off0, len0, init) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let off = if n = 0 then 0 else off0 mod (n + 1) in
      let len = if n - off = 0 then 0 else len0 mod (n - off + 1) in
      let init = Option.map (fun i -> i land 0xffffffff) init in
      Crc.crc32 ?init b off len = Crc.crc32_ref ?init b off len)

let qcheck_crc_chaining =
  (* splitting a buffer at any point and chaining ~init composes to the
     one-shot CRC — the property the word loop's tail handoff relies on *)
  QCheck.Test.make ~name:"crc32 chained halves ≡ whole" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 200)) small_nat)
    (fun (s, cut0) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let cut = cut0 mod (n + 1) in
      let whole = Crc.crc32 b 0 n in
      let chained = Crc.crc32 ~init:(Crc.crc32 b 0 cut) b cut (n - cut) in
      let chained_ref =
        Crc.crc32_ref ~init:(Crc.crc32_ref b 0 cut) b cut (n - cut)
      in
      whole = chained && whole = chained_ref)

let qcheck_stats_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let qcheck_stats_percentiles_ordered =
  (* monotone percentiles and either a raise (non-finite input) or a
     fully finite summary — never a quietly poisoned one *)
  QCheck.Test.make ~name:"percentiles ordered, non-finite rejected" ~count:200
    (QCheck.make
       ~print:QCheck.Print.(list float)
       QCheck.Gen.(
         list_size (1 -- 50)
           (oneof [ float_bound_exclusive 1e6; return Float.nan ])))
    (fun xs ->
      QCheck.assume (xs <> []);
      match Stats.summarize xs with
      | s ->
          List.for_all Float.is_finite
            [ s.Stats.mean; s.Stats.stddev; s.Stats.p50; s.Stats.p90; s.Stats.p99 ]
          && s.Stats.min <= s.Stats.p50 +. 1e-9
          && s.Stats.p50 <= s.Stats.p90 +. 1e-9
          && s.Stats.p90 <= s.Stats.p99 +. 1e-9
          && s.Stats.p99 <= s.Stats.max +. 1e-9
      | exception Invalid_argument _ ->
          List.exists (fun x -> not (Float.is_finite x)) xs)

let () =
  Alcotest.run "imk_util"
    [
      ( "byteio",
        [
          Alcotest.test_case "u8 roundtrip" `Quick test_u8_roundtrip;
          Alcotest.test_case "u16 roundtrip" `Quick test_u16_roundtrip;
          Alcotest.test_case "u32 roundtrip" `Quick test_u32_roundtrip;
          Alcotest.test_case "i64 roundtrip" `Quick test_i64_roundtrip;
          Alcotest.test_case "addr roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "addr rejects negative" `Quick
            test_addr_negative_rejected;
          Alcotest.test_case "u32 signed" `Quick test_u32_signed;
          Alcotest.test_case "fill_zero" `Quick test_fill_zero;
          Alcotest.test_case "hex_dump" `Quick test_hex_dump;
        ] );
      ( "crc",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_known;
          Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
          Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
          Alcotest.test_case "adler32 vector" `Quick test_adler32_known;
          Testkit.to_alcotest qcheck_crc_differs;
          Testkit.to_alcotest qcheck_crc_slice_matches_ref;
          Testkit.to_alcotest qcheck_crc_chaining;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "non-finite raises" `Quick
            test_stats_nonfinite_raises;
          Alcotest.test_case "numeric sort" `Quick test_stats_sort_is_numeric;
          Alcotest.test_case "pct_change" `Quick test_pct_change;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolates;
          Testkit.to_alcotest qcheck_stats_bounds;
          Testkit.to_alcotest qcheck_stats_percentiles_ordered;
        ] );
      ( "minjson",
        [
          Alcotest.test_case "values" `Quick test_minjson_values;
          Alcotest.test_case "rejects" `Quick test_minjson_rejects;
        ] );
      ( "units+table",
        [
          Alcotest.test_case "bytes formatting" `Quick test_units_bytes;
          Alcotest.test_case "time formatting" `Quick test_units_time;
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table overflow" `Quick test_table_too_many_cells;
        ] );
    ]
