(* Suite 20: the fleet serving simulator (Imk_fleet) and its harness
   wiring.

   The contracts under test: arrival gaps are pure in
   (model, seed, index); the warm pool never exceeds its bound and
   recycled memory is indistinguishable from fresh (the existing
   arena/fresh oracle — the calibration boots recycle through the
   workspace arena); the simulator is deterministic and conserves
   requests; and --exp fleet rows are bit-identical for any jobs
   fan-out, like every other experiment. *)

module Arrival = Imk_fleet.Arrival
module Pool = Imk_fleet.Pool
module Sim = Imk_fleet.Sim
module Timeline = Imk_vclock.Timeline
module W = Imk_fault.Weather
module Inject = Imk_fault.Inject

let check = Alcotest.check
let int = Alcotest.int

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

(* --- virtual-time request stamps --- *)

let timeline_accessors () =
  let st = Timeline.stamp ~arrival_ns:10 ~start_ns:25 ~finish_ns:100 in
  check int "queue wait" 15 (Timeline.queue_wait_ns st);
  check int "service" 75 (Timeline.service_ns st);
  check int "sojourn" 90 (Timeline.sojourn_ns st)

let timeline_rejects_disorder () =
  expect_invalid "start before arrival" (fun () ->
      Timeline.stamp ~arrival_ns:10 ~start_ns:5 ~finish_ns:20);
  expect_invalid "finish before start" (fun () ->
      Timeline.stamp ~arrival_ns:0 ~start_ns:5 ~finish_ns:4);
  expect_invalid "negative arrival" (fun () ->
      Timeline.stamp ~arrival_ns:(-1) ~start_ns:0 ~finish_ns:0)

(* --- arrival models --- *)

let arb_model_seed_index =
  let open QCheck in
  let print (m, seed, index) =
    Printf.sprintf "%s seed=%d index=%d" (Arrival.model_name m) seed index
  in
  let gen =
    let open Gen in
    let rate = map (fun r -> float_of_int r /. 10.) (int_range 1 10_000) in
    let poisson = map (fun r -> Arrival.Poisson { rate_per_s = r }) rate in
    let bursty =
      int_range 1 256 >>= fun period ->
      int_range 0 period >>= fun burst_len ->
      map2
        (fun base_per_s burst_per_s ->
          Arrival.Bursty { base_per_s; burst_per_s; burst_len; period })
        rate rate
    in
    triple (oneof [ poisson; bursty ]) (int_bound 1_000_000) (int_bound 5_000)
  in
  make ~print gen

let qcheck_gap_pure =
  QCheck.Test.make ~count:300
    ~name:"fleet: arrival gaps pure in (model, seed, index), >= 1 ns"
    arb_model_seed_index
    (fun (model, seed, index) ->
      let g = Arrival.gap_ns model ~seed ~index in
      g >= 1 && g = Arrival.gap_ns model ~seed ~index)

let qcheck_arrivals_prefix_sums =
  QCheck.Test.make ~count:100
    ~name:"fleet: arrivals = strictly increasing prefix sums of gaps"
    arb_model_seed_index
    (fun (model, seed, _) ->
      let n = 200 in
      let times = Arrival.arrivals model ~seed ~n in
      let acc = ref 0 and ok = ref (Array.length times = n) in
      for i = 0 to n - 1 do
        acc := !acc + Arrival.gap_ns model ~seed ~index:i;
        if times.(i) <> !acc then ok := false;
        if i > 0 && times.(i) <= times.(i - 1) then ok := false
      done;
      !ok)

let arrival_rejects_malformed () =
  expect_invalid "zero rate" (fun () ->
      Arrival.validate (Arrival.Poisson { rate_per_s = 0. }));
  expect_invalid "nan rate" (fun () ->
      Arrival.validate (Arrival.Poisson { rate_per_s = Float.nan }));
  expect_invalid "burst_len > period" (fun () ->
      Arrival.validate
        (Arrival.Bursty
           { base_per_s = 1.; burst_per_s = 2.; burst_len = 5; period = 4 }));
  expect_invalid "negative index" (fun () ->
      Arrival.gap_ns (Arrival.Poisson { rate_per_s = 1. }) ~seed:0 ~index:(-1))

(* --- warm pool --- *)

let qcheck_pool_bounded =
  let open QCheck in
  QCheck.Test.make ~count:300
    ~name:"fleet: pool occupancy never exceeds capacity; counters add up"
    (pair (int_bound 4) (list_of_size (Gen.int_range 0 200) bool))
    (fun (capacity, ops) ->
      let pool = Pool.create ~capacity in
      let now = ref 0 and next_id = ref 0 and acquires = ref 0 in
      let ok = ref true in
      List.iter
        (fun acquire_op ->
          incr now;
          if acquire_op then begin
            incr acquires;
            ignore (Pool.acquire pool ~now_ns:!now)
          end
          else begin
            let id = !next_id in
            incr next_id;
            Pool.release pool { Pool.id; layout_seed = id } ~now_ns:!now
          end;
          if Pool.size pool > capacity then ok := false)
        ops;
      !ok
      && Pool.hits pool + Pool.misses pool = !acquires
      && Pool.size pool <= capacity)

let pool_lru_semantics () =
  let pool = Pool.create ~capacity:2 in
  let inst id = { Pool.id; layout_seed = id } in
  Pool.release pool (inst 0) ~now_ns:1;
  Pool.release pool (inst 1) ~now_ns:2;
  (* full: releasing a third evicts the least recently used (0) *)
  Pool.release pool (inst 2) ~now_ns:3;
  check int "one eviction" 1 (Pool.evictions pool);
  (* acquire returns the hottest instance first *)
  (match Pool.acquire pool ~now_ns:4 with
  | Some i -> check int "MRU first" 2 i.Pool.id
  | None -> Alcotest.fail "pool unexpectedly empty");
  (match Pool.acquire pool ~now_ns:5 with
  | Some i -> check int "then the survivor" 1 i.Pool.id
  | None -> Alcotest.fail "pool unexpectedly empty");
  check Alcotest.bool "then a miss" true (Pool.acquire pool ~now_ns:6 = None);
  expect_invalid "time ran backwards" (fun () ->
      Pool.release pool (inst 9) ~now_ns:2)

(* recycled =~ fresh is what lets the warm tier recycle guest memory
   through the arena at all; the differential oracle certifies it *)
let arena_oracle_green () =
  let open Imk_check in
  let p =
    {
      Point.preset = Imk_kernel.Config.Aws;
      variant = Imk_kernel.Config.Kaslr;
      codec = "lz4";
      functions = 60;
      seed = 11L;
    }
  in
  match (Oracle.arena_fresh.Oracle.run (Env.build p) p).Oracle.outcome with
  | Oracle.Pass -> ()
  | Oracle.Divergence d -> Alcotest.failf "arena/fresh oracle diverged: %s" d

(* --- the simulator --- *)

let sim_cfg ?(arrival = Arrival.Poisson { rate_per_s = 40. }) ?(seed = 11)
    ?(requests = 800) ?(servers = 2) ?(pool_capacity = 2)
    ?(queue_capacity = 8) ?(cold = [| 40_000_000; 45_000_000 |])
    ?(warm = [| 5_000_000; 6_000_000 |]) ?(fault = [||]) ?weather () =
  {
    Sim.arrival;
    seed;
    requests;
    servers;
    pool_capacity;
    queue_capacity;
    cold_ns = cold;
    warm_ns = warm;
    fault_ns = fault;
    weather;
    seams = [ Inject.Transient_init 1; Inject.Truncate_relocs ];
  }

let sim_deterministic () =
  let cfg =
    sim_cfg ~weather:(W.make W.Storm ~seed:5) ~fault:[| 60_000_000 |] ()
  in
  let a = Sim.run cfg and b = Sim.run cfg in
  check Alcotest.bool "equal reports" true (a = b)

let sim_conserves_requests () =
  List.iter
    (fun cfg ->
      let r = Sim.run cfg in
      check int "completed + dropped = requests" r.Sim.requests
        (r.Sim.completed + r.Sim.dropped);
      check int "classes partition completions" r.Sim.completed
        (r.Sim.cold_starts + r.Sim.warm_starts + r.Sim.fault_starts);
      check int "sojourn counts completions" r.Sim.completed
        r.Sim.sojourn.Imk_util.Stats.n;
      check Alcotest.bool "pool within bound" true
        (r.Sim.pool_hits = 0
        || r.Sim.hit_rate > 0.))
    [
      sim_cfg ();
      sim_cfg
        ~arrival:
          (Arrival.Bursty
             {
               base_per_s = 10.;
               burst_per_s = 400.;
               burst_len = 32;
               period = 128;
             })
        ();
      sim_cfg ~weather:(W.make W.Flaky ~seed:9) ~fault:[| 60_000_000 |] ();
    ]

let sim_drops_when_queue_full () =
  (* one slow server, no queue: overlapping arrivals must be dropped,
     not silently absorbed *)
  let r =
    Sim.run
      (sim_cfg
         ~arrival:(Arrival.Poisson { rate_per_s = 200. })
         ~servers:1 ~queue_capacity:0 ~cold:[| 100_000_000 |]
         ~warm:[| 90_000_000 |] ())
  in
  check Alcotest.bool "some requests dropped" true (r.Sim.dropped > 0);
  check int "still conserved" r.Sim.requests (r.Sim.completed + r.Sim.dropped)

let sim_weather_faults_served_apart () =
  let calm = Sim.run (sim_cfg ()) in
  check int "no weather, no fault starts" 0 calm.Sim.fault_starts;
  let storm =
    Sim.run (sim_cfg ~weather:(W.make W.Storm ~seed:5) ~fault:[| 60_000_000 |] ())
  in
  check Alcotest.bool "storm serves fault-laden starts" true
    (storm.Sim.fault_starts > 0);
  check int "fault summary counts them" storm.Sim.fault_starts
    storm.Sim.fault_service.Imk_util.Stats.n

let sim_rejects_malformed () =
  expect_invalid "servers < 1" (fun () -> Sim.run (sim_cfg ~servers:0 ()));
  expect_invalid "empty cold samples" (fun () -> Sim.run (sim_cfg ~cold:[||] ()));
  expect_invalid "weather without fault samples" (fun () ->
      Sim.run (sim_cfg ~weather:(W.make W.Storm ~seed:1) ~fault:[||] ()))

(* --- the corrected throughput metric (satellite of this PR): rate
   divides by the actual elapsed span, not the full window --- *)

let instantiation_rate_uses_elapsed_span () =
  (* one core, 3 s boots, 10 s window: completions at 3/6/9 s. The old
     code reported 3 / 10 s = 0.30; the span is 9 s, so 1/3 per s. *)
  let r = Sim.instantiation_rate ~cores:1 ~window_ms:10_000. [| 3_000. |] in
  check (Alcotest.float 1e-9) "boots per second" (1. /. 3.) r;
  let r2 = Sim.instantiation_rate ~cores:2 ~window_ms:10_000. [| 3_000. |] in
  check (Alcotest.float 1e-9) "cores scale linearly" (2. /. 3.) r2;
  check (Alcotest.float 0.) "nothing fits the window" 0.
    (Sim.instantiation_rate ~cores:1 ~window_ms:1_000. [| 3_000. |]);
  expect_invalid "cores < 1" (fun () ->
      Sim.instantiation_rate ~cores:0 ~window_ms:1_000. [| 1. |]);
  expect_invalid "non-positive sample" (fun () ->
      Sim.instantiation_rate ~cores:1 ~window_ms:1_000. [| 0. |])

(* --- campaign rows must be bit-identical for any jobs fan-out --- *)

let fleet_jobs_invariant () =
  let saved = !Imk_harness.Boot_runner.default_jobs in
  let run jobs =
    Imk_harness.Boot_runner.default_jobs := jobs;
    let ws = Imk_harness.Workspace.create ~scale:4 ~functions_override:50 () in
    Imk_harness.Experiments.fleet ~runs:2 ~requests:1500 ws
  in
  Fun.protect
    ~finally:(fun () -> Imk_harness.Boot_runner.default_jobs := saved)
    (fun () ->
      let a = run 1 and b = run 4 in
      check
        Alcotest.(list (list string))
        "table rows identical"
        (Imk_util.Table.rows a.Imk_harness.Experiments.table)
        (Imk_util.Table.rows b.Imk_harness.Experiments.table);
      check
        Alcotest.(list string)
        "notes identical" a.Imk_harness.Experiments.notes
        b.Imk_harness.Experiments.notes;
      check Alcotest.bool "telemetry rows identical" true
        (a.Imk_harness.Experiments.telemetry
        = b.Imk_harness.Experiments.telemetry))

let () =
  Alcotest.run "fleet"
    [
      ( "timeline",
        [
          Alcotest.test_case "stamp accessors" `Quick timeline_accessors;
          Alcotest.test_case "rejects disordered stamps" `Quick
            timeline_rejects_disorder;
        ] );
      ( "arrival",
        [
          Testkit.to_alcotest qcheck_gap_pure;
          Testkit.to_alcotest qcheck_arrivals_prefix_sums;
          Alcotest.test_case "rejects malformed models" `Quick
            arrival_rejects_malformed;
        ] );
      ( "pool",
        [
          Testkit.to_alcotest qcheck_pool_bounded;
          Alcotest.test_case "LRU semantics" `Quick pool_lru_semantics;
          Alcotest.test_case "recycled ≡ fresh (arena oracle)" `Quick
            arena_oracle_green;
        ] );
      ( "sim",
        [
          Alcotest.test_case "deterministic" `Quick sim_deterministic;
          Alcotest.test_case "conserves requests" `Quick sim_conserves_requests;
          Alcotest.test_case "drops at a full queue" `Quick
            sim_drops_when_queue_full;
          Alcotest.test_case "weather faults accounted" `Quick
            sim_weather_faults_served_apart;
          Alcotest.test_case "rejects malformed configs" `Quick
            sim_rejects_malformed;
          Alcotest.test_case "instantiation rate uses elapsed span" `Quick
            instantiation_rate_uses_elapsed_span;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "fleet rows jobs-invariant" `Slow
            fleet_jobs_invariant;
        ] );
    ]
