(* Tests for Imk_fault (failure taxonomy + deterministic injectors) and
   Imk_harness.Boot_supervisor: every armed fault must end as a typed
   failure or a recovered verify-green boot — never a silent success —
   and supervision must be bit-identical for any ~jobs value. *)

open Imk_monitor
open Imk_harness
module Failure = Imk_fault.Failure
module Inject = Imk_fault.Inject

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* --- taxonomy --- *)

let kind_of e =
  match Failure.classify e with
  | Some f -> Failure.kind_name f
  | None -> "unclassified"

let test_classify_map () =
  let expect tag e = check string tag tag (kind_of e) in
  expect "corrupt-image" (Vmm.Boot_error "x");
  expect "corrupt-image" (Imk_elf.Types.Malformed "x");
  expect "corrupt-image" (Imk_kernel.Bzimage.Malformed "x");
  expect "corrupt-image" (Imk_bootstrap.Loader.Loader_error "x");
  expect "corrupt-image" (Imk_guest.Boot_info.Invalid "x");
  expect "bad-reloc" (Imk_elf.Relocation.Bad_table "x");
  expect "bad-reloc" (Imk_kernel.Relocs_tool.Unsupported "x");
  expect "decode-error" (Imk_compress.Codec.Corrupt "x");
  expect "decode-error" (Snapshot.Corrupt "x");
  expect "decode-error" (Imk_kernel.Rootfs.Corrupt "x");
  expect "decode-error" (Imk_kernel.Initrd.Corrupt "x");
  expect "transient" (Vmm.Transient "x");
  expect "guest-panic" (Imk_guest.Runtime.Panic "x");
  expect "guest-panic" (Imk_memory.Guest_mem.Fault "x");
  expect "deadline-exceeded" (Imk_vclock.Deadline.Exceeded "x")

let test_recoverable_partition () =
  let yes = [ Failure.Transient "x"; Failure.Deadline_exceeded "x" ] in
  let no =
    [
      Failure.Corrupt_image "x"; Failure.Bad_reloc "x"; Failure.Decode_error "x";
      Failure.Guest_panic "x";
    ]
  in
  List.iter
    (fun f ->
      check Alcotest.bool (Failure.kind_name f) true (Failure.recoverable f))
    yes;
  List.iter
    (fun f ->
      check Alcotest.bool (Failure.kind_name f) false (Failure.recoverable f))
    no

let test_classify_rejects_programming_errors () =
  List.iter
    (fun e -> check string "unclassified" "unclassified" (kind_of e))
    [ Not_found; Invalid_argument "x"; Stdlib.Failure "x"; Exit ]

let test_describe () =
  check string "describe" "bad-reloc: truncated"
    (Failure.describe (Failure.Bad_reloc "truncated"));
  check string "event name" "rederived-relocs"
    (Failure.event_name (Failure.Rederived_relocs (Failure.Bad_reloc "m")))

(* --- injector determinism --- *)

let make_disk = Testkit.pristine_disk

let test_arm_is_deterministic () =
  let env = Testkit.make_env ~functions:50 () in
  List.iter
    (fun kind ->
      let corrupted_view seed =
        let disk = make_disk env in
        let _armed =
          Inject.arm kind ~seed ~disk ~kernel_path:(Testkit.vmlinux_path env)
            ~relocs_path:(Testkit.relocs_path env) ()
        in
        ( Imk_storage.Disk.find disk (Testkit.vmlinux_path env),
          Imk_storage.Disk.find disk (Testkit.relocs_path env) )
      in
      let k1, r1 = corrupted_view 42 and k2, r2 = corrupted_view 42 in
      check Alcotest.bool (Inject.name kind ^ " image deterministic") true
        (Bytes.equal k1 k2);
      check Alcotest.bool (Inject.name kind ^ " relocs deterministic") true
        (Bytes.equal r1 r2))
    [
      Inject.Truncate_image; Inject.Flip_image_magic; Inject.Flip_entry_magic;
      Inject.Truncate_relocs; Inject.Flip_relocs_magic;
      Inject.Read_fault_entry_magic;
    ]

let qcheck_flip_one_bit_flips_exactly_one =
  QCheck.Test.make ~count:200 ~name:"inject: flip_one_bit changes exactly one bit"
    QCheck.(pair small_int (string_of_size (QCheck.Gen.int_range 1 512)))
    (fun (seed, s) ->
      let b = Bytes.of_string s in
      let flipped = Inject.flip_one_bit ~seed (Bytes.copy b) in
      let diff_bits = ref 0 in
      Bytes.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code (Bytes.get flipped i) in
          for bit = 0 to 7 do
            if x land (1 lsl bit) <> 0 then incr diff_bits
          done)
        b;
      !diff_bits = 1
      && Bytes.equal flipped (Inject.flip_one_bit ~seed (Bytes.copy b)))

(* --- supervision --- *)

let supervise_env ?preset () =
  let env = Testkit.make_env ?preset ~functions:50 () in
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~seed:0L ()
  in
  (env, vm)

let armed_ctx ?(files = []) ?kernel_path env kind ~seed =
  let disk = make_disk env in
  List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) files;
  let kernel_path =
    Option.value ~default:(Testkit.vmlinux_path env) kernel_path
  in
  let armed =
    Inject.arm kind ~seed ~disk ~kernel_path
      ~relocs_path:(Testkit.relocs_path env) ()
  in
  {
    Boot_supervisor.cache = Imk_storage.Page_cache.create disk;
    inject = armed.Inject.inject;
    plans = None;
  }

let plain_report ?(seed = 5L) () =
  let env, vm = supervise_env () in
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env)) in
  Boot_supervisor.supervise ~seed ~ctx vm

let test_supervise_clean_boot () =
  let r = plain_report () in
  (match r.Boot_supervisor.outcome with
  | Ok stats -> check int "verified" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "clean boot failed: %s" (Failure.describe f));
  check int "one attempt" 1 r.Boot_supervisor.attempts;
  check int "no events" 0 (List.length r.Boot_supervisor.events)

let test_transient_retried_with_paid_backoff () =
  let env, vm = supervise_env () in
  let ctx = armed_ctx env (Inject.Transient_init 1) ~seed:3 in
  let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Ok stats -> check int "verified after retry" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "retry did not recover: %s" (Failure.describe f));
  check int "two attempts" 2 r.Boot_supervisor.attempts;
  (match r.Boot_supervisor.events with
  | [ Failure.Retried { attempt = 1; failure = Failure.Transient _; backoff_ns } ] ->
      check int "first backoff" Boot_supervisor.backoff_base_ns backoff_ns
  | _ -> Alcotest.fail "expected exactly one Retried event");
  (* the backoff is on the virtual clock: dearer than the same boot clean *)
  let clean = plain_report ~seed:5L () in
  check Alcotest.bool "retry charged" true
    (r.Boot_supervisor.total_ns
    > clean.Boot_supervisor.total_ns + Boot_supervisor.backoff_base_ns)

let test_transient_exhausts_retries () =
  let env, vm = supervise_env () in
  let ctx = armed_ctx env (Inject.Transient_init 99) ~seed:3 in
  let r = Boot_supervisor.supervise ~max_retries:2 ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Transient _) -> ()
  | Ok _ -> Alcotest.fail "persistent transient must not end green"
  | Error f -> Alcotest.failf "wrong kind: %s" (Failure.describe f));
  check int "initial + 2 retries" 3 r.Boot_supervisor.attempts;
  check int "two Retried events" 2 (List.length r.Boot_supervisor.events)

let test_corrupt_image_is_typed_failure () =
  let env, vm = supervise_env () in
  List.iter
    (fun (kind, expected) ->
      let ctx = armed_ctx env kind ~seed:7 in
      let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
      match r.Boot_supervisor.outcome with
      | Error f ->
          check string (Inject.name kind) expected (Failure.kind_name f);
          check int "no retries for persistent corruption" 1
            r.Boot_supervisor.attempts
      | Ok _ -> Alcotest.failf "%s booted green" (Inject.name kind))
    [
      (Inject.Truncate_image, "corrupt-image");
      (Inject.Flip_image_magic, "corrupt-image");
      (Inject.Flip_entry_magic, "guest-panic");
      (Inject.Read_fault_entry_magic, "guest-panic");
    ]

let test_bad_relocs_rederived () =
  let env, vm = supervise_env () in
  List.iter
    (fun kind ->
      let ctx = armed_ctx env kind ~seed:11 in
      let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
      (match r.Boot_supervisor.outcome with
      | Ok stats ->
          check int
            (Inject.name kind ^ " verifies after re-derivation")
            50 stats.Imk_guest.Runtime.functions_visited
      | Error f -> Alcotest.failf "rederive failed: %s" (Failure.describe f));
      match r.Boot_supervisor.events with
      | [ Failure.Rederived_relocs (Failure.Bad_reloc _) ] -> ()
      | _ -> Alcotest.fail "expected exactly one Rederived_relocs event")
    [ Inject.Truncate_relocs; Inject.Flip_relocs_magic ]

let test_failed_attempts_do_not_poison_arena () =
  let env, vm = supervise_env () in
  let arena = Imk_memory.Arena.create () in
  let ctx = armed_ctx env Inject.Flip_entry_magic ~seed:7 in
  let r = Boot_supervisor.supervise ~arena ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Guest_panic _) -> ()
  | _ -> Alcotest.fail "expected a guest panic");
  (* the dead boot's memory is back, scrubbed: the next (clean) boot
     recycles it and still verifies *)
  check int "buffer back in pool" vm.Vm_config.mem_bytes
    (Imk_memory.Arena.pooled_bytes arena);
  let clean_ctx =
    Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))
  in
  let r2 = Boot_supervisor.supervise ~arena ~seed:6L ~ctx:clean_ctx vm in
  (match r2.Boot_supervisor.outcome with
  | Ok stats -> check int "recycled boot verifies" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "recycled boot failed: %s" (Failure.describe f));
  check int "pool recycled, not regrown" vm.Vm_config.mem_bytes
    (Imk_memory.Arena.pooled_bytes arena)

let test_snapshot_falls_back_to_cold_boot () =
  let env, vm = supervise_env () in
  let _, r = Testkit.boot env ~seed:404L in
  let blob = Snapshot.serialize (Snapshot.capture r) in
  let disk = make_disk env in
  Imk_storage.Disk.add disk ~name:"base.snapshot"
    (Inject.flip_one_bit ~seed:17 (Bytes.copy blob));
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create disk) in
  let rep =
    Boot_supervisor.supervise_snapshot ~seed:5L ~ctx
      ~snapshot_path:"base.snapshot" ~working_set_pages:64 vm
  in
  (match rep.Boot_supervisor.outcome with
  | Ok stats -> check int "fallback verifies" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "fallback failed: %s" (Failure.describe f));
  check int "restore + fallback boot" 2 rep.Boot_supervisor.attempts;
  (match rep.Boot_supervisor.events with
  | Failure.Fell_back_to_cold_boot (Failure.Decode_error _) :: _ -> ()
  | _ -> Alcotest.fail "expected a cold-boot fallback event");
  (* the pristine snapshot restores without any fallback *)
  Imk_storage.Disk.add disk ~name:"base.snapshot" blob;
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create disk) in
  let ok =
    Boot_supervisor.supervise_snapshot ~seed:5L ~ctx
      ~snapshot_path:"base.snapshot" ~working_set_pages:64 vm
  in
  check int "pristine restore, one attempt" 1 ok.Boot_supervisor.attempts;
  check int "pristine restore, no events" 0 (List.length ok.Boot_supervisor.events)

(* --- recovery accounting: the report's labelled intervals must tile
   total_ns around the successful attempt (enforced at construction;
   these tests pin the shape on each outcome class) --- *)

let sum_recovery (r : Boot_supervisor.report) =
  List.fold_left (fun acc (_, d) -> acc + d) 0 r.Boot_supervisor.recovery

let test_recovery_accounting () =
  (* clean boot: no recovery at all *)
  let clean = plain_report () in
  check int "clean: no recovery spans" 0 (List.length clean.Boot_supervisor.recovery);
  (* typed failure: the whole trace is recovery *)
  let env, vm = supervise_env () in
  let ctx = armed_ctx env Inject.Flip_image_magic ~seed:7 in
  let failed = Boot_supervisor.supervise ~seed:5L ~ctx vm in
  (match failed.Boot_supervisor.outcome with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt image booted green");
  check int "failure: recovery covers the trace"
    failed.Boot_supervisor.total_ns (sum_recovery failed);
  (* recovered transient: recovery is the failed attempt + backoff,
     strictly between zero and the trace total *)
  let ctx = armed_ctx env (Inject.Transient_init 1) ~seed:3 in
  let rec_r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
  (match rec_r.Boot_supervisor.outcome with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "transient not recovered: %s" (Failure.describe f));
  let s = sum_recovery rec_r in
  check Alcotest.bool "recovered: 0 < recovery < total" true
    (s > 0 && s < rec_r.Boot_supervisor.total_ns);
  check Alcotest.bool "recovered: backoff is in the recovery" true
    (s >= Boot_supervisor.backoff_base_ns);
  match
    List.filter (fun (l, _) -> l = "retry-backoff") rec_r.Boot_supervisor.recovery
  with
  | [ (_, d) ] -> check Alcotest.bool "backoff interval charged" true (d > 0)
  | _ -> Alcotest.fail "expected exactly one retry-backoff interval"

(* --- weather: seed-deterministic correlated fault processes --- *)

module Weather = Imk_fault.Weather

let direct_seams =
  [
    Inject.Truncate_image; Inject.Flip_image_magic; Inject.Flip_entry_magic;
    Inject.Truncate_relocs; Inject.Flip_relocs_magic;
    Inject.Read_fault_entry_magic;
  ]

let test_weather_profiles_roundtrip () =
  List.iter
    (fun p ->
      match Weather.profile_of_name (Weather.profile_name p) with
      | Some q -> check Alcotest.bool (Weather.profile_name p) true (p = q)
      | None -> Alcotest.failf "%s did not round-trip" (Weather.profile_name p))
    Weather.all_profiles;
  check Alcotest.bool "unknown name" true (Weather.profile_of_name "hail" = None)

let test_weather_calm_is_faultless () =
  let w = Weather.make Weather.Calm ~seed:3 in
  for run = 1 to 64 do
    let fc = Weather.forecast w ~run ~seams:direct_seams in
    check Alcotest.bool "calm draws no fault" true (fc.Weather.fault = None);
    check Alcotest.bool "calm is never cold" false fc.Weather.cold;
    check Alcotest.bool "calm has no bursts" false (Weather.in_burst w ~run)
  done

let test_weather_forecast_deterministic () =
  List.iter
    (fun p ->
      let w1 = Weather.make p ~seed:9 and w2 = Weather.make p ~seed:9 in
      for run = 1 to 64 do
        check Alcotest.bool "same seed, same forecast" true
          (Weather.forecast w1 ~run ~seams:direct_seams
          = Weather.forecast w2 ~run ~seams:direct_seams);
        check int "same seed, same fault seed"
          (Weather.fault_seed w1 ~run)
          (Weather.fault_seed w2 ~run)
      done)
    Weather.all_profiles;
  (* fault seeds are distinct per run: no two runs corrupt identically *)
  let w = Weather.make Weather.Storm ~seed:9 in
  let seeds = List.init 64 (fun i -> Weather.fault_seed w ~run:(i + 1)) in
  check int "distinct fault seeds" 64
    (List.length (List.sort_uniq compare seeds))

let test_weather_storm_bursts_are_windowed () =
  let w = Weather.make Weather.Storm ~seed:1 in
  let stormy = ref 0 and quiet = ref 0 in
  for window = 0 to 31 do
    let first = (window * Weather.window_len) + 1 in
    let b = Weather.in_burst w ~run:first in
    if b then incr stormy else incr quiet;
    (* the whole window agrees with its first run: bursts are
       correlated, not per-boot coin flips *)
    for run = first to first + Weather.window_len - 1 do
      check Alcotest.bool "burst constant within window" b
        (Weather.in_burst w ~run)
    done
  done;
  check Alcotest.bool "both stormy and quiet windows occur" true
    (!stormy > 0 && !quiet > 0)

let test_weather_flaky_rates () =
  let w = Weather.make Weather.Flaky ~seed:2 in
  let faults = ref 0 and cold = ref 0 and transients = ref 0 in
  let runs = 400 in
  for run = 1 to runs do
    let fc = Weather.forecast w ~run ~seams:direct_seams in
    (match fc.Weather.fault with
    | Some (Inject.Transient_init _) ->
        incr faults;
        incr transients
    | Some _ -> incr faults
    | None -> ());
    if fc.Weather.cold then incr cold
  done;
  (* flaky is low-rate weather: faults happen, most boots are clean *)
  check Alcotest.bool "some faults" true (!faults > 0);
  check Alcotest.bool "mostly clean" true (!faults < runs / 2);
  check Alcotest.bool "transients and corruptions both drawn" true
    (!transients > 0 && !faults > !transients);
  check Alcotest.bool "some cold starts" true (!cold > 0 && !cold < runs / 2)

(* --- fleet supervision: circuit breaker, deadlines, retry budget --- *)

let clean_ctx env =
  Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))

let test_breaker_opens_short_circuits_and_probes () =
  let env, vm = supervise_env () in
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.breaker_threshold = 2;
      breaker_cooldown = 2;
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let corrupt () = armed_ctx env Inject.Flip_image_magic ~seed:7 in
  (* two consecutive persistent failures open the breaker *)
  let r1 = Boot_supervisor.supervise ~fleet ~seed:5L ~ctx:(corrupt ()) vm in
  (match r1.Boot_supervisor.outcome with
  | Error (Failure.Corrupt_image _) -> ()
  | _ -> Alcotest.fail "expected a corrupt-image failure");
  check string "still closed after one" "closed"
    (Boot_supervisor.breaker_state_name fleet);
  let r2 = Boot_supervisor.supervise ~fleet ~seed:6L ~ctx:(corrupt ()) vm in
  (match
     List.filter
       (function Failure.Breaker_opened _ -> true | _ -> false)
       r2.Boot_supervisor.events
   with
  | [ Failure.Breaker_opened { consecutive = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected Breaker_opened at the threshold");
  check string "open after two" "open" (Boot_supervisor.breaker_state_name fleet);
  check int "one trip" 1 (Boot_supervisor.breaker_trips fleet);
  (* while open, boots are short-circuited for a small charged cost —
     even with a perfectly healthy context *)
  let r3 =
    Boot_supervisor.supervise ~jitter:false ~fleet ~seed:7L ~ctx:(clean_ctx env)
      vm
  in
  check int "short-circuit makes no attempt" 0 r3.Boot_supervisor.attempts;
  (match r3.Boot_supervisor.events with
  | [ Failure.Breaker_short_circuit _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one Breaker_short_circuit event");
  check int "short-circuit cost charged" Boot_supervisor.short_circuit_ns
    r3.Boot_supervisor.total_ns;
  check int "short-circuit fully accounted" r3.Boot_supervisor.total_ns
    (sum_recovery r3);
  let _r4 =
    Boot_supervisor.supervise ~fleet ~seed:8L ~ctx:(clean_ctx env) vm
  in
  check string "cooldown spent: half-open" "half-open"
    (Boot_supervisor.breaker_state_name fleet);
  (* the half-open probe boots for real; success closes the breaker *)
  let r5 = Boot_supervisor.supervise ~fleet ~seed:9L ~ctx:(clean_ctx env) vm in
  (match r5.Boot_supervisor.outcome with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "probe failed: %s" (Failure.describe f));
  (match r5.Boot_supervisor.events with
  | [ Failure.Breaker_probe { succeeded = true } ] -> ()
  | _ -> Alcotest.fail "expected a successful Breaker_probe event");
  check string "probe success closes" "closed"
    (Boot_supervisor.breaker_state_name fleet);
  let r6 = Boot_supervisor.supervise ~fleet ~seed:10L ~ctx:(clean_ctx env) vm in
  check int "closed breaker is invisible" 0
    (List.length r6.Boot_supervisor.events)

let test_breaker_probe_failure_reopens () =
  let env, vm = supervise_env () in
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.breaker_threshold = 1;
      breaker_cooldown = 1;
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let corrupt () = armed_ctx env Inject.Flip_image_magic ~seed:7 in
  let _ = Boot_supervisor.supervise ~fleet ~seed:5L ~ctx:(corrupt ()) vm in
  check string "open after threshold 1" "open"
    (Boot_supervisor.breaker_state_name fleet);
  let _ = Boot_supervisor.supervise ~fleet ~seed:6L ~ctx:(clean_ctx env) vm in
  let r_probe =
    Boot_supervisor.supervise ~fleet ~seed:7L ~ctx:(corrupt ()) vm
  in
  (match
     List.filter
       (function Failure.Breaker_probe _ -> true | _ -> false)
       r_probe.Boot_supervisor.events
   with
  | [ Failure.Breaker_probe { succeeded = false } ] -> ()
  | _ -> Alcotest.fail "expected a failed Breaker_probe event");
  check string "failed probe re-opens" "open"
    (Boot_supervisor.breaker_state_name fleet);
  check int "re-opening is not a new trip" 1
    (Boot_supervisor.breaker_trips fleet);
  (* and a later healthy probe still closes it *)
  let _ = Boot_supervisor.supervise ~fleet ~seed:8L ~ctx:(clean_ctx env) vm in
  let _ = Boot_supervisor.supervise ~fleet ~seed:9L ~ctx:(clean_ctx env) vm in
  check string "healthy probe closes" "closed"
    (Boot_supervisor.breaker_state_name fleet)

let test_breaker_ignores_transients () =
  let env, vm = supervise_env () in
  let policy =
    { Boot_supervisor.default_policy with Boot_supervisor.breaker_threshold = 1 }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let ctx = armed_ctx env (Inject.Transient_init 1) ~seed:3 in
  let r = Boot_supervisor.supervise ~fleet ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "transient not recovered: %s" (Failure.describe f));
  check string "transients never open the breaker" "closed"
    (Boot_supervisor.breaker_state_name fleet);
  check int "no trips" 0 (Boot_supervisor.breaker_trips fleet)

let test_retry_budget_fails_fast_when_dry () =
  let env, vm = supervise_env () in
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.max_retries = 5;
      retry_budget = 1;
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let ctx = armed_ctx env (Inject.Transient_init 3) ~seed:3 in
  let r = Boot_supervisor.supervise ~fleet ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Transient _) -> ()
  | _ -> Alcotest.fail "dry budget must fail fast on the next transient");
  (match r.Boot_supervisor.events with
  | [ Failure.Retried _; Failure.Retry_budget_exhausted _ ] -> ()
  | _ ->
      Alcotest.fail "expected one Retried then Retry_budget_exhausted");
  check int "campaign budget drained" 0 (Boot_supervisor.retries_left fleet);
  check int "one retry, then fail-fast" 2 r.Boot_supervisor.attempts

let test_deadline_aborts_cold_attempt_recovers_warm () =
  let env, vm = supervise_env () in
  let disk = make_disk env in
  (* reference totals on one shared cache: first boot cold, second warm *)
  let cache = Imk_storage.Page_cache.create disk in
  let ctx = Boot_supervisor.plain_ctx cache in
  let t_cold =
    (Boot_supervisor.supervise ~jitter:false ~seed:5L ~ctx vm)
      .Boot_supervisor.total_ns
  in
  let t_warm =
    (Boot_supervisor.supervise ~jitter:false ~seed:5L ~ctx vm)
      .Boot_supervisor.total_ns
  in
  check Alcotest.bool "cold boot is dearer" true (t_warm < t_cold);
  (* budget below the cold total: the first attempt on a cold cache
     overruns at a phase boundary and is aborted; its reads populated
     the cache, so the fresh-budget retry fits *)
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.attempt_budget_ns = Some (t_cold - 1);
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let ctx =
    Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))
  in
  let r = Boot_supervisor.supervise ~jitter:false ~fleet ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "warm retry did not recover: %s" (Failure.describe f));
  check int "aborted attempt + warm retry" 2 r.Boot_supervisor.attempts;
  (match r.Boot_supervisor.events with
  | [ Failure.Deadline_aborted { failure = Failure.Deadline_exceeded _; fresh_budget_ns } ] ->
      check int "fresh budget is the policy budget" (t_cold - 1) fresh_budget_ns
  | _ -> Alcotest.fail "expected exactly one Deadline_aborted event");
  (match
     List.filter (fun (l, _) -> l = "failed-attempt") r.Boot_supervisor.recovery
   with
  | [ (_, d) ] ->
      check Alcotest.bool "aborted attempt charged up to its boundary" true
        (d > 0)
  | _ -> Alcotest.fail "expected one failed-attempt interval");
  check Alcotest.bool "recovery strictly inside the total" true
    (let s = sum_recovery r in
     s > 0 && s < r.Boot_supervisor.total_ns)

let test_deadline_double_overrun_is_typed () =
  let env, vm = supervise_env () in
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.attempt_budget_ns = Some 1;
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  let ctx = clean_ctx env in
  let r = Boot_supervisor.supervise ~jitter:false ~fleet ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "hopeless budget must end as Deadline_exceeded");
  check int "one abort, one fallback" 2 r.Boot_supervisor.attempts;
  (match r.Boot_supervisor.events with
  | [ Failure.Deadline_aborted _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one Deadline_aborted event");
  check int "failure fully accounted" r.Boot_supervisor.total_ns
    (sum_recovery r)

(* --- satellite 3: weathered supervision is total (typed or recovered,
   never a raw exception) and deterministically replayable --- *)

let weathered_campaign env vm ~profile ~seed ~runs =
  let w = Weather.make profile ~seed in
  let policy =
    {
      Boot_supervisor.default_policy with
      Boot_supervisor.breaker_threshold = 2;
      breaker_cooldown = 1;
      retry_budget = 4;
    }
  in
  let fleet = Boot_supervisor.fleet ~policy () in
  List.init runs (fun i ->
      let run = i + 1 in
      let fc = Weather.forecast w ~run ~seams:direct_seams in
      let ctx =
        match fc.Weather.fault with
        | None -> clean_ctx env
        | Some kind ->
            armed_ctx env kind ~seed:(Weather.fault_seed w ~run)
      in
      if not fc.Weather.cold then begin
        Imk_storage.Page_cache.warm ctx.Boot_supervisor.cache
          (Testkit.vmlinux_path env);
        Imk_storage.Page_cache.warm ctx.Boot_supervisor.cache
          (Testkit.relocs_path env)
      end;
      Boot_supervisor.supervise ~jitter:false ~fleet
        ~seed:(Boot_runner.run_seed run) ~ctx vm)

let test_weathered_replay_is_deterministic () =
  let env, vm = supervise_env () in
  (* forecasts are pure, so scan for a storm seed that actually draws a
     fault within the campaign — the replay must exercise recovery, not
     just eight clean boots *)
  let seed =
    let draws_fault s =
      let w = Weather.make Weather.Storm ~seed:s in
      List.exists
        (fun run ->
          (Weather.forecast w ~run ~seams:direct_seams).Weather.fault <> None)
        (List.init 8 (fun i -> i + 1))
    in
    let rec find s = if draws_fault s then s else find (s + 1) in
    find 1
  in
  let a = weathered_campaign env vm ~profile:Weather.Storm ~seed ~runs:8 in
  let b = weathered_campaign env vm ~profile:Weather.Storm ~seed ~runs:8 in
  List.iteri
    (fun i (x : Boot_supervisor.report) ->
      check Alcotest.bool (Printf.sprintf "run %d replays" (i + 1)) true
        (x = List.nth b i))
    a;
  (* the chosen seed actually exercises the machinery: the storm must
     have touched at least one run *)
  check Alcotest.bool "storm left a mark" true
    (List.exists
       (fun (r : Boot_supervisor.report) ->
         r.Boot_supervisor.events <> []
         || Result.is_error r.Boot_supervisor.outcome)
       a)

let qcheck_weathered_supervision_total =
  let shared = lazy (supervise_env ()) in
  let kinds = Array.of_list direct_seams in
  QCheck.Test.make ~count:30
    ~name:"fault: every seam x profile ends typed or recovered under a fleet"
    QCheck.(
      triple
        (int_bound (Array.length kinds - 1))
        (int_bound 2) (int_bound 9_999))
    (fun (k, p, seed) ->
      let env, vm = Lazy.force shared in
      let profile = List.nth Weather.all_profiles p in
      let w = Weather.make profile ~seed in
      let policy =
        {
          Boot_supervisor.default_policy with
          Boot_supervisor.breaker_threshold = 2;
          breaker_cooldown = 1;
        }
      in
      let fleet = Boot_supervisor.fleet ~policy () in
      let ctx = armed_ctx env kinds.(k) ~seed:(Weather.fault_seed w ~run:1) in
      if not (Weather.forecast w ~run:1 ~seams:direct_seams).Weather.cold then begin
        Imk_storage.Page_cache.warm ctx.Boot_supervisor.cache
          (Testkit.vmlinux_path env);
        Imk_storage.Page_cache.warm ctx.Boot_supervisor.cache
          (Testkit.relocs_path env)
      end;
      let r =
        Boot_supervisor.supervise ~fleet ~seed:(Int64.of_int (seed + 1)) ~ctx vm
      in
      match r.Boot_supervisor.outcome with
      | Error f -> Failure.kind_name f <> "unclassified"
      | Ok _ -> r.Boot_supervisor.events <> [])

(* --- jobs-invariance with injected faults (satellite 4) --- *)

let reports_with_jobs env vm ~jobs =
  (* cycle the fault kinds over the runs so both orders exercise
     corruption, recovery and clean boots *)
  let kinds =
    [|
      None;
      Some Inject.Truncate_image;
      Some Inject.Flip_relocs_magic;
      Some (Inject.Transient_init 1);
      Some Inject.Flip_entry_magic;
    |]
  in
  Boot_supervisor.supervise_many ~jobs ~runs:10
    ~ctx_for:(fun ~run ->
      match kinds.(run mod Array.length kinds) with
      | None -> Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))
      | Some kind -> armed_ctx env kind ~seed:(131 * run))
    ~make_vm:(fun ~seed -> { vm with Vm_config.seed })
    ()

let test_supervise_many_jobs_invariant () =
  let env, vm = supervise_env () in
  let seq = reports_with_jobs env vm ~jobs:1 in
  let par = reports_with_jobs env vm ~jobs:3 in
  check int "same length" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (a : Boot_supervisor.report) ->
      let b = par.(i) in
      check Alcotest.bool (Printf.sprintf "run %d identical" (i + 1)) true
        (a = b))
    seq

(* --- soundness property: no armed fault ever yields a silent green
   boot, and nothing escapes the taxonomy --- *)

let test_bz_kinds_refuse_vmlinux () =
  (* arming a bz fault on a vmlinux is harness miswiring, not a boot
     failure: the injector must refuse rather than corrupt blindly *)
  let env, _ = supervise_env () in
  List.iter
    (fun kind ->
      match armed_ctx env kind ~seed:1 with
      | (_ : Boot_supervisor.ctx) ->
          Alcotest.failf "%s armed on a vmlinux" (Inject.name kind)
      | exception Invalid_argument _ -> ())
    [ Inject.Truncate_bzimage; Inject.Flip_bz_payload_crc ]

let qcheck_no_silent_success =
  (* the preset axis comes from the shared kernel-matrix generator; envs
     are built lazily once per preset the sweep actually draws *)
  let envs = Hashtbl.create 3 in
  let env_for preset =
    match Hashtbl.find_opt envs preset with
    | Some e -> e
    | None ->
        let env, vm = supervise_env ~preset () in
        let bz_path =
          Testkit.add_bzimage env ~codec:"lz4"
            ~variant:Imk_kernel.Bzimage.Standard
        in
        let bz_bytes = Imk_storage.Disk.find env.Testkit.disk bz_path in
        let bz_vm =
          Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr
            ~rando:Vm_config.Rando_kaslr ~relocs_path:None
            ~mem_bytes:(64 * 1024 * 1024) ~kernel_path:bz_path
            ~kernel_config:env.Testkit.cfg ~seed:0L ()
        in
        let e = (env, vm, bz_path, bz_bytes, bz_vm) in
        Hashtbl.add envs preset e;
        e
  in
  let kinds = Array.of_list Inject.all in
  QCheck.Test.make ~count:40 ~name:"fault: armed boots never silently green"
    QCheck.(
      triple
        (int_bound (Array.length kinds - 1))
        (int_bound 10_000) Testkit.arb_preset)
    (fun (k, seed, preset) ->
      let env, vm, bz_path, bz_bytes, bz_vm = env_for preset in
      let kind = kinds.(k) in
      let is_bz =
        match kind with
        | Inject.Truncate_bzimage | Inject.Flip_bz_payload_crc -> true
        | _ -> false
      in
      let ctx, vm =
        if is_bz then
          ( armed_ctx env ~files:[ (bz_path, bz_bytes) ] ~kernel_path:bz_path
              kind ~seed,
            bz_vm )
        else (armed_ctx env kind ~seed, vm)
      in
      let r = Boot_supervisor.supervise ~seed:(Int64.of_int (seed + 1)) ~ctx vm in
      match r.Boot_supervisor.outcome with
      | Error _ -> true
      | Ok _ -> r.Boot_supervisor.events <> [])

let () =
  Alcotest.run "imk_fault"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "classification map" `Quick test_classify_map;
          Alcotest.test_case "programming errors unclassified" `Quick
            test_classify_rejects_programming_errors;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "recoverable partition" `Quick
            test_recoverable_partition;
        ] );
      ( "weather",
        [
          Alcotest.test_case "profiles round-trip" `Quick
            test_weather_profiles_roundtrip;
          Alcotest.test_case "calm is faultless" `Quick
            test_weather_calm_is_faultless;
          Alcotest.test_case "forecast deterministic" `Quick
            test_weather_forecast_deterministic;
          Alcotest.test_case "storm bursts windowed" `Quick
            test_weather_storm_bursts_are_windowed;
          Alcotest.test_case "flaky rates sane" `Quick test_weather_flaky_rates;
        ] );
      ( "inject",
        [
          Alcotest.test_case "arm is deterministic" `Quick
            test_arm_is_deterministic;
          Alcotest.test_case "bz kinds refuse a vmlinux" `Quick
            test_bz_kinds_refuse_vmlinux;
          Testkit.to_alcotest qcheck_flip_one_bit_flips_exactly_one;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "clean boot" `Quick test_supervise_clean_boot;
          Alcotest.test_case "transient retried, backoff charged" `Quick
            test_transient_retried_with_paid_backoff;
          Alcotest.test_case "transient exhausts retries" `Quick
            test_transient_exhausts_retries;
          Alcotest.test_case "corruption is typed" `Quick
            test_corrupt_image_is_typed_failure;
          Alcotest.test_case "bad relocs re-derived" `Quick
            test_bad_relocs_rederived;
          Alcotest.test_case "arena survives failed attempts" `Quick
            test_failed_attempts_do_not_poison_arena;
          Alcotest.test_case "snapshot falls back to cold boot" `Quick
            test_snapshot_falls_back_to_cold_boot;
          Alcotest.test_case "recovery accounting" `Quick
            test_recovery_accounting;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "breaker opens, short-circuits, probes" `Quick
            test_breaker_opens_short_circuits_and_probes;
          Alcotest.test_case "failed probe re-opens" `Quick
            test_breaker_probe_failure_reopens;
          Alcotest.test_case "transients never trip the breaker" `Quick
            test_breaker_ignores_transients;
          Alcotest.test_case "retry budget fails fast when dry" `Quick
            test_retry_budget_fails_fast_when_dry;
          Alcotest.test_case "deadline abort recovers on a warm retry" `Quick
            test_deadline_aborts_cold_attempt_recovers_warm;
          Alcotest.test_case "double overrun is typed" `Quick
            test_deadline_double_overrun_is_typed;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "jobs-invariant under faults" `Quick
            test_supervise_many_jobs_invariant;
          Alcotest.test_case "weathered replay deterministic" `Quick
            test_weathered_replay_is_deterministic;
          Testkit.to_alcotest qcheck_no_silent_success;
          Testkit.to_alcotest qcheck_weathered_supervision_total;
        ] );
    ]
