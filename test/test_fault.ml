(* Tests for Imk_fault (failure taxonomy + deterministic injectors) and
   Imk_harness.Boot_supervisor: every armed fault must end as a typed
   failure or a recovered verify-green boot — never a silent success —
   and supervision must be bit-identical for any ~jobs value. *)

open Imk_monitor
open Imk_harness
module Failure = Imk_fault.Failure
module Inject = Imk_fault.Inject

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* --- taxonomy --- *)

let kind_of e =
  match Failure.classify e with
  | Some f -> Failure.kind_name f
  | None -> "unclassified"

let test_classify_map () =
  let expect tag e = check string tag tag (kind_of e) in
  expect "corrupt-image" (Vmm.Boot_error "x");
  expect "corrupt-image" (Imk_elf.Types.Malformed "x");
  expect "corrupt-image" (Imk_kernel.Bzimage.Malformed "x");
  expect "corrupt-image" (Imk_bootstrap.Loader.Loader_error "x");
  expect "corrupt-image" (Imk_guest.Boot_info.Invalid "x");
  expect "bad-reloc" (Imk_elf.Relocation.Bad_table "x");
  expect "bad-reloc" (Imk_kernel.Relocs_tool.Unsupported "x");
  expect "decode-error" (Imk_compress.Codec.Corrupt "x");
  expect "decode-error" (Snapshot.Corrupt "x");
  expect "decode-error" (Imk_kernel.Rootfs.Corrupt "x");
  expect "decode-error" (Imk_kernel.Initrd.Corrupt "x");
  expect "transient" (Vmm.Transient "x");
  expect "guest-panic" (Imk_guest.Runtime.Panic "x");
  expect "guest-panic" (Imk_memory.Guest_mem.Fault "x")

let test_classify_rejects_programming_errors () =
  List.iter
    (fun e -> check string "unclassified" "unclassified" (kind_of e))
    [ Not_found; Invalid_argument "x"; Stdlib.Failure "x"; Exit ]

let test_describe () =
  check string "describe" "bad-reloc: truncated"
    (Failure.describe (Failure.Bad_reloc "truncated"));
  check string "event name" "rederived-relocs"
    (Failure.event_name (Failure.Rederived_relocs (Failure.Bad_reloc "m")))

(* --- injector determinism --- *)

let make_disk = Testkit.pristine_disk

let test_arm_is_deterministic () =
  let env = Testkit.make_env ~functions:50 () in
  List.iter
    (fun kind ->
      let corrupted_view seed =
        let disk = make_disk env in
        let _armed =
          Inject.arm kind ~seed ~disk ~kernel_path:(Testkit.vmlinux_path env)
            ~relocs_path:(Testkit.relocs_path env) ()
        in
        ( Imk_storage.Disk.find disk (Testkit.vmlinux_path env),
          Imk_storage.Disk.find disk (Testkit.relocs_path env) )
      in
      let k1, r1 = corrupted_view 42 and k2, r2 = corrupted_view 42 in
      check Alcotest.bool (Inject.name kind ^ " image deterministic") true
        (Bytes.equal k1 k2);
      check Alcotest.bool (Inject.name kind ^ " relocs deterministic") true
        (Bytes.equal r1 r2))
    [
      Inject.Truncate_image; Inject.Flip_image_magic; Inject.Flip_entry_magic;
      Inject.Truncate_relocs; Inject.Flip_relocs_magic;
      Inject.Read_fault_entry_magic;
    ]

let qcheck_flip_one_bit_flips_exactly_one =
  QCheck.Test.make ~count:200 ~name:"inject: flip_one_bit changes exactly one bit"
    QCheck.(pair small_int (string_of_size (QCheck.Gen.int_range 1 512)))
    (fun (seed, s) ->
      let b = Bytes.of_string s in
      let flipped = Inject.flip_one_bit ~seed (Bytes.copy b) in
      let diff_bits = ref 0 in
      Bytes.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code (Bytes.get flipped i) in
          for bit = 0 to 7 do
            if x land (1 lsl bit) <> 0 then incr diff_bits
          done)
        b;
      !diff_bits = 1
      && Bytes.equal flipped (Inject.flip_one_bit ~seed (Bytes.copy b)))

(* --- supervision --- *)

let supervise_env ?preset () =
  let env = Testkit.make_env ?preset ~functions:50 () in
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~seed:0L ()
  in
  (env, vm)

let armed_ctx ?(files = []) ?kernel_path env kind ~seed =
  let disk = make_disk env in
  List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) files;
  let kernel_path =
    Option.value ~default:(Testkit.vmlinux_path env) kernel_path
  in
  let armed =
    Inject.arm kind ~seed ~disk ~kernel_path
      ~relocs_path:(Testkit.relocs_path env) ()
  in
  {
    Boot_supervisor.cache = Imk_storage.Page_cache.create disk;
    inject = armed.Inject.inject;
    plans = None;
  }

let plain_report ?(seed = 5L) () =
  let env, vm = supervise_env () in
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env)) in
  Boot_supervisor.supervise ~seed ~ctx vm

let test_supervise_clean_boot () =
  let r = plain_report () in
  (match r.Boot_supervisor.outcome with
  | Ok stats -> check int "verified" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "clean boot failed: %s" (Failure.describe f));
  check int "one attempt" 1 r.Boot_supervisor.attempts;
  check int "no events" 0 (List.length r.Boot_supervisor.events)

let test_transient_retried_with_paid_backoff () =
  let env, vm = supervise_env () in
  let ctx = armed_ctx env (Inject.Transient_init 1) ~seed:3 in
  let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Ok stats -> check int "verified after retry" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "retry did not recover: %s" (Failure.describe f));
  check int "two attempts" 2 r.Boot_supervisor.attempts;
  (match r.Boot_supervisor.events with
  | [ Failure.Retried { attempt = 1; failure = Failure.Transient _; backoff_ns } ] ->
      check int "first backoff" Boot_supervisor.backoff_base_ns backoff_ns
  | _ -> Alcotest.fail "expected exactly one Retried event");
  (* the backoff is on the virtual clock: dearer than the same boot clean *)
  let clean = plain_report ~seed:5L () in
  check Alcotest.bool "retry charged" true
    (r.Boot_supervisor.total_ns
    > clean.Boot_supervisor.total_ns + Boot_supervisor.backoff_base_ns)

let test_transient_exhausts_retries () =
  let env, vm = supervise_env () in
  let ctx = armed_ctx env (Inject.Transient_init 99) ~seed:3 in
  let r = Boot_supervisor.supervise ~max_retries:2 ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Transient _) -> ()
  | Ok _ -> Alcotest.fail "persistent transient must not end green"
  | Error f -> Alcotest.failf "wrong kind: %s" (Failure.describe f));
  check int "initial + 2 retries" 3 r.Boot_supervisor.attempts;
  check int "two Retried events" 2 (List.length r.Boot_supervisor.events)

let test_corrupt_image_is_typed_failure () =
  let env, vm = supervise_env () in
  List.iter
    (fun (kind, expected) ->
      let ctx = armed_ctx env kind ~seed:7 in
      let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
      match r.Boot_supervisor.outcome with
      | Error f ->
          check string (Inject.name kind) expected (Failure.kind_name f);
          check int "no retries for persistent corruption" 1
            r.Boot_supervisor.attempts
      | Ok _ -> Alcotest.failf "%s booted green" (Inject.name kind))
    [
      (Inject.Truncate_image, "corrupt-image");
      (Inject.Flip_image_magic, "corrupt-image");
      (Inject.Flip_entry_magic, "guest-panic");
      (Inject.Read_fault_entry_magic, "guest-panic");
    ]

let test_bad_relocs_rederived () =
  let env, vm = supervise_env () in
  List.iter
    (fun kind ->
      let ctx = armed_ctx env kind ~seed:11 in
      let r = Boot_supervisor.supervise ~seed:5L ~ctx vm in
      (match r.Boot_supervisor.outcome with
      | Ok stats ->
          check int
            (Inject.name kind ^ " verifies after re-derivation")
            50 stats.Imk_guest.Runtime.functions_visited
      | Error f -> Alcotest.failf "rederive failed: %s" (Failure.describe f));
      match r.Boot_supervisor.events with
      | [ Failure.Rederived_relocs (Failure.Bad_reloc _) ] -> ()
      | _ -> Alcotest.fail "expected exactly one Rederived_relocs event")
    [ Inject.Truncate_relocs; Inject.Flip_relocs_magic ]

let test_failed_attempts_do_not_poison_arena () =
  let env, vm = supervise_env () in
  let arena = Imk_memory.Arena.create () in
  let ctx = armed_ctx env Inject.Flip_entry_magic ~seed:7 in
  let r = Boot_supervisor.supervise ~arena ~seed:5L ~ctx vm in
  (match r.Boot_supervisor.outcome with
  | Error (Failure.Guest_panic _) -> ()
  | _ -> Alcotest.fail "expected a guest panic");
  (* the dead boot's memory is back, scrubbed: the next (clean) boot
     recycles it and still verifies *)
  check int "buffer back in pool" vm.Vm_config.mem_bytes
    (Imk_memory.Arena.pooled_bytes arena);
  let clean_ctx =
    Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))
  in
  let r2 = Boot_supervisor.supervise ~arena ~seed:6L ~ctx:clean_ctx vm in
  (match r2.Boot_supervisor.outcome with
  | Ok stats -> check int "recycled boot verifies" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "recycled boot failed: %s" (Failure.describe f));
  check int "pool recycled, not regrown" vm.Vm_config.mem_bytes
    (Imk_memory.Arena.pooled_bytes arena)

let test_snapshot_falls_back_to_cold_boot () =
  let env, vm = supervise_env () in
  let _, r = Testkit.boot env ~seed:404L in
  let blob = Snapshot.serialize (Snapshot.capture r) in
  let disk = make_disk env in
  Imk_storage.Disk.add disk ~name:"base.snapshot"
    (Inject.flip_one_bit ~seed:17 (Bytes.copy blob));
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create disk) in
  let rep =
    Boot_supervisor.supervise_snapshot ~seed:5L ~ctx
      ~snapshot_path:"base.snapshot" ~working_set_pages:64 vm
  in
  (match rep.Boot_supervisor.outcome with
  | Ok stats -> check int "fallback verifies" 50 stats.Imk_guest.Runtime.functions_visited
  | Error f -> Alcotest.failf "fallback failed: %s" (Failure.describe f));
  check int "restore + fallback boot" 2 rep.Boot_supervisor.attempts;
  (match rep.Boot_supervisor.events with
  | Failure.Fell_back_to_cold_boot (Failure.Decode_error _) :: _ -> ()
  | _ -> Alcotest.fail "expected a cold-boot fallback event");
  (* the pristine snapshot restores without any fallback *)
  Imk_storage.Disk.add disk ~name:"base.snapshot" blob;
  let ctx = Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create disk) in
  let ok =
    Boot_supervisor.supervise_snapshot ~seed:5L ~ctx
      ~snapshot_path:"base.snapshot" ~working_set_pages:64 vm
  in
  check int "pristine restore, one attempt" 1 ok.Boot_supervisor.attempts;
  check int "pristine restore, no events" 0 (List.length ok.Boot_supervisor.events)

(* --- jobs-invariance with injected faults (satellite 4) --- *)

let reports_with_jobs env vm ~jobs =
  (* cycle the fault kinds over the runs so both orders exercise
     corruption, recovery and clean boots *)
  let kinds =
    [|
      None;
      Some Inject.Truncate_image;
      Some Inject.Flip_relocs_magic;
      Some (Inject.Transient_init 1);
      Some Inject.Flip_entry_magic;
    |]
  in
  Boot_supervisor.supervise_many ~jobs ~runs:10
    ~ctx_for:(fun ~run ->
      match kinds.(run mod Array.length kinds) with
      | None -> Boot_supervisor.plain_ctx (Imk_storage.Page_cache.create (make_disk env))
      | Some kind -> armed_ctx env kind ~seed:(131 * run))
    ~make_vm:(fun ~seed -> { vm with Vm_config.seed })
    ()

let test_supervise_many_jobs_invariant () =
  let env, vm = supervise_env () in
  let seq = reports_with_jobs env vm ~jobs:1 in
  let par = reports_with_jobs env vm ~jobs:3 in
  check int "same length" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (a : Boot_supervisor.report) ->
      let b = par.(i) in
      check Alcotest.bool (Printf.sprintf "run %d identical" (i + 1)) true
        (a = b))
    seq

(* --- soundness property: no armed fault ever yields a silent green
   boot, and nothing escapes the taxonomy --- *)

let test_bz_kinds_refuse_vmlinux () =
  (* arming a bz fault on a vmlinux is harness miswiring, not a boot
     failure: the injector must refuse rather than corrupt blindly *)
  let env, _ = supervise_env () in
  List.iter
    (fun kind ->
      match armed_ctx env kind ~seed:1 with
      | (_ : Boot_supervisor.ctx) ->
          Alcotest.failf "%s armed on a vmlinux" (Inject.name kind)
      | exception Invalid_argument _ -> ())
    [ Inject.Truncate_bzimage; Inject.Flip_bz_payload_crc ]

let qcheck_no_silent_success =
  (* the preset axis comes from the shared kernel-matrix generator; envs
     are built lazily once per preset the sweep actually draws *)
  let envs = Hashtbl.create 3 in
  let env_for preset =
    match Hashtbl.find_opt envs preset with
    | Some e -> e
    | None ->
        let env, vm = supervise_env ~preset () in
        let bz_path =
          Testkit.add_bzimage env ~codec:"lz4"
            ~variant:Imk_kernel.Bzimage.Standard
        in
        let bz_bytes = Imk_storage.Disk.find env.Testkit.disk bz_path in
        let bz_vm =
          Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr
            ~rando:Vm_config.Rando_kaslr ~relocs_path:None
            ~mem_bytes:(64 * 1024 * 1024) ~kernel_path:bz_path
            ~kernel_config:env.Testkit.cfg ~seed:0L ()
        in
        let e = (env, vm, bz_path, bz_bytes, bz_vm) in
        Hashtbl.add envs preset e;
        e
  in
  let kinds = Array.of_list Inject.all in
  QCheck.Test.make ~count:40 ~name:"fault: armed boots never silently green"
    QCheck.(
      triple
        (int_bound (Array.length kinds - 1))
        (int_bound 10_000) Testkit.arb_preset)
    (fun (k, seed, preset) ->
      let env, vm, bz_path, bz_bytes, bz_vm = env_for preset in
      let kind = kinds.(k) in
      let is_bz =
        match kind with
        | Inject.Truncate_bzimage | Inject.Flip_bz_payload_crc -> true
        | _ -> false
      in
      let ctx, vm =
        if is_bz then
          ( armed_ctx env ~files:[ (bz_path, bz_bytes) ] ~kernel_path:bz_path
              kind ~seed,
            bz_vm )
        else (armed_ctx env kind ~seed, vm)
      in
      let r = Boot_supervisor.supervise ~seed:(Int64.of_int (seed + 1)) ~ctx vm in
      match r.Boot_supervisor.outcome with
      | Error _ -> true
      | Ok _ -> r.Boot_supervisor.events <> [])

let () =
  Alcotest.run "imk_fault"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "classification map" `Quick test_classify_map;
          Alcotest.test_case "programming errors unclassified" `Quick
            test_classify_rejects_programming_errors;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "inject",
        [
          Alcotest.test_case "arm is deterministic" `Quick
            test_arm_is_deterministic;
          Alcotest.test_case "bz kinds refuse a vmlinux" `Quick
            test_bz_kinds_refuse_vmlinux;
          Testkit.to_alcotest qcheck_flip_one_bit_flips_exactly_one;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "clean boot" `Quick test_supervise_clean_boot;
          Alcotest.test_case "transient retried, backoff charged" `Quick
            test_transient_retried_with_paid_backoff;
          Alcotest.test_case "transient exhausts retries" `Quick
            test_transient_exhausts_retries;
          Alcotest.test_case "corruption is typed" `Quick
            test_corrupt_image_is_typed_failure;
          Alcotest.test_case "bad relocs re-derived" `Quick
            test_bad_relocs_rederived;
          Alcotest.test_case "arena survives failed attempts" `Quick
            test_failed_attempts_do_not_poison_arena;
          Alcotest.test_case "snapshot falls back to cold boot" `Quick
            test_snapshot_falls_back_to_cold_boot;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "jobs-invariant under faults" `Quick
            test_supervise_many_jobs_invariant;
          Testkit.to_alcotest qcheck_no_silent_success;
        ] );
    ]
