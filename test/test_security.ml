(* Tests for Imk_security: entropy accounting and the leak-and-locate
   attack's core result — a single leak defeats KASLR but not FGKASLR. *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

let test_entropy_nokaslr () =
  let r = Imk_security.Entropy_analysis.nokaslr in
  check int "one slot" 1 r.Imk_security.Entropy_analysis.base_slots;
  check (Alcotest.float 1e-9) "zero bits" 0. r.Imk_security.Entropy_analysis.total_bits

let test_entropy_kaslr () =
  let r = Imk_security.Entropy_analysis.kaslr ~image_memsz:(16 * 1024 * 1024) in
  check int "497 slots" 497 r.Imk_security.Entropy_analysis.base_slots;
  check Alcotest.bool "about 9 bits" true
    (abs_float (r.Imk_security.Entropy_analysis.base_bits -. 8.957) < 0.01);
  check (Alcotest.float 1e-9) "no permutation bits" 0.
    r.Imk_security.Entropy_analysis.permutation_bits

let test_entropy_fgkaslr () =
  let r =
    Imk_security.Entropy_analysis.fgkaslr ~image_memsz:(16 * 1024 * 1024)
      ~functions:1000
  in
  check Alcotest.bool "permutation dominates" true
    (r.Imk_security.Entropy_analysis.permutation_bits
    > 100. *. r.Imk_security.Entropy_analysis.base_bits);
  check (Alcotest.float 1e-6) "total = base + perm"
    (r.Imk_security.Entropy_analysis.base_bits
    +. r.Imk_security.Entropy_analysis.permutation_bits)
    r.Imk_security.Entropy_analysis.total_bits

let test_entropy_grows_with_smaller_image () =
  let small = Imk_security.Entropy_analysis.kaslr ~image_memsz:(4 * 1024 * 1024) in
  let large = Imk_security.Entropy_analysis.kaslr ~image_memsz:(256 * 1024 * 1024) in
  check Alcotest.bool "smaller image, more slots" true
    (small.Imk_security.Entropy_analysis.base_slots
    > large.Imk_security.Entropy_analysis.base_slots)

let attack_fraction variant rando ~seed =
  let env = Testkit.make_env ~functions:120 ~variant () in
  let _, r = Testkit.boot env ~rando ~seed in
  let rng = Imk_entropy.Prng.create ~seed in
  let outcomes =
    List.init 5 (fun _ ->
        let leaked_fn = Imk_entropy.Prng.next_int rng 120 in
        Imk_security.Attack.leak_and_locate ~mem:r.Vmm.mem ~params:r.Vmm.params
          ~link_fn_va:env.Testkit.built.Imk_kernel.Image.fn_va ~leaked_fn
          ~scheme:"test")
  in
  Imk_util.Stats.mean
    (List.map
       (fun o -> o.Imk_security.Attack.gadgets_exposed_fraction)
       outcomes)

let test_attack_nokaslr_full_exposure () =
  let f = attack_fraction Imk_kernel.Config.Nokaslr Vm_config.Rando_off ~seed:1L in
  check (Alcotest.float 1e-9) "everything exposed" 1.0 f

let test_attack_kaslr_full_exposure () =
  (* coarse KASLR: one leak rebases the whole kernel (§3.1) *)
  let f = attack_fraction Imk_kernel.Config.Kaslr Vm_config.Rando_kaslr ~seed:2L in
  check (Alcotest.float 1e-9) "everything exposed" 1.0 f

let test_attack_fgkaslr_minimal_exposure () =
  let f =
    attack_fraction Imk_kernel.Config.Fgkaslr Vm_config.Rando_fgkaslr ~seed:3L
  in
  check Alcotest.bool "almost nothing exposed" true (f < 0.05)

let test_attack_outcome_fields () =
  let env = Testkit.make_env ~functions:50 () in
  let _, r = Testkit.boot env in
  let o =
    Imk_security.Attack.leak_and_locate ~mem:r.Vmm.mem ~params:r.Vmm.params
      ~link_fn_va:env.Testkit.built.Imk_kernel.Image.fn_va ~leaked_fn:7
      ~scheme:"kaslr"
  in
  check int "n" 50 o.Imk_security.Attack.n_functions;
  check int "leak id" 7 o.Imk_security.Attack.leaked_fn;
  check Alcotest.string "scheme" "kaslr" o.Imk_security.Attack.scheme

let test_attack_bad_leak_rejected () =
  let env = Testkit.make_env ~functions:50 () in
  let _, r = Testkit.boot env in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Attack.leak_and_locate: leaked_fn out of range")
    (fun () ->
      ignore
        (Imk_security.Attack.leak_and_locate ~mem:r.Vmm.mem ~params:r.Vmm.params
           ~link_fn_va:env.Testkit.built.Imk_kernel.Image.fn_va ~leaked_fn:999
           ~scheme:"x"))

let test_probe_budget_exhaustion () =
  (* blind probing in the 1 GiB window at 16-byte granularity is
     hopeless with a small budget — the FGKASLR story *)
  let env = Testkit.make_env ~functions:50 ~variant:Imk_kernel.Config.Fgkaslr () in
  let _, r = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr in
  let rng = Imk_entropy.Prng.create ~seed:4L in
  check (Alcotest.option int) "no hit in 1000 probes" None
    (Imk_security.Attack.probe_until_found ~mem:r.Vmm.mem ~params:r.Vmm.params
       ~rng ~target_fn:10 ~max_probes:1000)

(* --- uniformity --- *)

let test_chi_square_uniform_data () =
  (* perfectly uniform counts give statistic 0 *)
  check (Alcotest.float 1e-9) "zero" 0.
    (Imk_security.Uniformity.chi_square ~observed:(Array.make 10 100))

let test_chi_square_skew_detected () =
  let observed = Array.make 10 100 in
  observed.(0) <- 1000;
  check Alcotest.bool "large statistic" true
    (Imk_security.Uniformity.chi_square ~observed
    > Imk_security.Uniformity.critical_value ~df:9 ~alpha:0.001)

let test_critical_value_sane () =
  (* chi2 0.99 quantile at df=100 is ≈135.8 *)
  let v = Imk_security.Uniformity.critical_value ~df:100 ~alpha:0.01 in
  check Alcotest.bool "near 135.8" true (abs_float (v -. 135.8) < 2.)

let test_offset_selection_uniform () =
  let v =
    Imk_security.Uniformity.test_virtual_offsets
      ~image_memsz:(16 * 1024 * 1024) ~draws:20_000 ~seed:7L
  in
  check Alcotest.bool "uniform at 1%" true v.Imk_security.Uniformity.uniform;
  check int "497 slots" 497 v.Imk_security.Uniformity.slots

let test_permutation_positions_uniform () =
  let v =
    Imk_security.Uniformity.test_permutation_positions ~sections:128
      ~draws:20_000 ~seed:8L
  in
  check Alcotest.bool "uniform at 1%" true v.Imk_security.Uniformity.uniform

let test_biased_sampler_caught () =
  (* sanity: a sampler that avoids half the slots must fail the test;
     emulate by folding draws into half the bins *)
  let observed = Array.make 100 0 in
  let rng = Imk_entropy.Prng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let slot = Imk_entropy.Prng.next_int rng 50 in
    observed.(slot) <- observed.(slot) + 1
  done;
  check Alcotest.bool "bias detected" true
    (Imk_security.Uniformity.chi_square ~observed
    > Imk_security.Uniformity.critical_value ~df:99 ~alpha:0.01)

let test_permutation_matrix_uniform () =
  (* the whole element × position table, not just where element 0 lands:
     a bias anywhere in the shuffle shows up here *)
  let v =
    Imk_security.Uniformity.test_permutation_matrix ~sections:16
      ~draws:2_000 ~seed:9L
  in
  check Alcotest.bool "uniform at 1%" true v.Imk_security.Uniformity.uniform;
  check int "sections^2 cells" 256 v.Imk_security.Uniformity.slots

let test_pool_bits_balanced () =
  (* a stuck bit in either entropy source silently halves KASLR entropy *)
  List.iter
    (fun (name, source) ->
      let v =
        Imk_security.Uniformity.test_pool_bit_balance ~source ~draws:20_000
          ~seed:11L
      in
      check Alcotest.bool (name ^ " bits balanced at 1%") true
        v.Imk_security.Uniformity.uniform)
    [
      ("host-pool", Imk_entropy.Pool.Host_pool);
      ("guest-rdrand", Imk_entropy.Pool.Guest_rdrand);
    ]

let test_stuck_bit_caught () =
  (* sanity for the bit-balance statistic: a source whose top bit is
     always clear must fail decisively *)
  let draws = 20_000 in
  let ones = Array.make 64 (draws / 2) in
  ones.(63) <- 0;
  let half = float_of_int draws /. 2. in
  let statistic =
    Array.fold_left
      (fun acc o ->
        let d = float_of_int o -. half in
        acc +. (2. *. d *. d /. half))
      0. ones
  in
  check Alcotest.bool "stuck bit detected" true
    (statistic > Imk_security.Uniformity.critical_value ~df:64 ~alpha:0.001)

let qcheck_fgkaslr_leak_value_small =
  QCheck.Test.make ~name:"fgkaslr: leaks expose <10% whatever is leaked"
    ~count:8 QCheck.int64
    (fun seed ->
      let env =
        Testkit.make_env ~functions:60 ~variant:Imk_kernel.Config.Fgkaslr ()
      in
      let _, r = Testkit.boot env ~rando:Vm_config.Rando_fgkaslr ~seed in
      let rng = Imk_entropy.Prng.create ~seed in
      let leaked_fn = Imk_entropy.Prng.next_int rng 60 in
      let o =
        Imk_security.Attack.leak_and_locate ~mem:r.Vmm.mem ~params:r.Vmm.params
          ~link_fn_va:env.Testkit.built.Imk_kernel.Image.fn_va ~leaked_fn
          ~scheme:"fg"
      in
      o.Imk_security.Attack.gadgets_exposed_fraction < 0.1)

let () =
  Alcotest.run "imk_security"
    [
      ( "entropy",
        [
          Alcotest.test_case "nokaslr" `Quick test_entropy_nokaslr;
          Alcotest.test_case "kaslr" `Quick test_entropy_kaslr;
          Alcotest.test_case "fgkaslr" `Quick test_entropy_fgkaslr;
          Alcotest.test_case "image size effect" `Quick
            test_entropy_grows_with_smaller_image;
        ] );
      ( "attack",
        [
          Alcotest.test_case "nokaslr exposure" `Quick
            test_attack_nokaslr_full_exposure;
          Alcotest.test_case "kaslr exposure" `Quick
            test_attack_kaslr_full_exposure;
          Alcotest.test_case "fgkaslr exposure" `Quick
            test_attack_fgkaslr_minimal_exposure;
          Alcotest.test_case "outcome fields" `Quick test_attack_outcome_fields;
          Alcotest.test_case "bad leak" `Quick test_attack_bad_leak_rejected;
          Alcotest.test_case "probe budget" `Quick test_probe_budget_exhaustion;
          Testkit.to_alcotest qcheck_fgkaslr_leak_value_small;
        ] );
      ( "uniformity",
        [
          Alcotest.test_case "chi-square zero" `Quick
            test_chi_square_uniform_data;
          Alcotest.test_case "skew detected" `Quick
            test_chi_square_skew_detected;
          Alcotest.test_case "critical value" `Quick test_critical_value_sane;
          Alcotest.test_case "offsets uniform" `Quick
            test_offset_selection_uniform;
          Alcotest.test_case "shuffle uniform" `Quick
            test_permutation_positions_uniform;
          Alcotest.test_case "biased sampler caught" `Quick
            test_biased_sampler_caught;
          Alcotest.test_case "permutation matrix uniform" `Quick
            test_permutation_matrix_uniform;
          Alcotest.test_case "pool bits balanced" `Quick
            test_pool_bits_balanced;
          Alcotest.test_case "stuck bit caught" `Quick test_stuck_bit_caught;
        ] );
    ]
