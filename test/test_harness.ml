(* Tests for Imk_harness: workspace caching/registration, the boot runner's
   statistics, and smoke runs of representative experiments on shrunken
   kernels. *)

open Imk_harness
open Imk_kernel

let check = Alcotest.check
let int = Alcotest.int

let small_ws () = Workspace.create ~scale:4 ~functions_override:50 ()

let test_workspace_builds_once () =
  let ws = small_ws () in
  let a = Workspace.built ws Config.Aws Config.Kaslr in
  let b = Workspace.built ws Config.Aws Config.Kaslr in
  check Alcotest.bool "cached build" true (a == b)

let test_workspace_registers_images () =
  let ws = small_ws () in
  let path = Workspace.vmlinux_path ws Config.Lupine Config.Kaslr in
  check Alcotest.bool "on disk" true (Imk_storage.Disk.mem (Workspace.disk ws) path);
  let rpath = Workspace.relocs_path ws Config.Lupine Config.Kaslr in
  check Alcotest.bool "relocs on disk" true
    (Imk_storage.Disk.mem (Workspace.disk ws) rpath)

let test_workspace_bzimage () =
  let ws = small_ws () in
  let path =
    Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
      ~bz:Bzimage.Standard
  in
  check Alcotest.bool "bzimage on disk" true
    (Imk_storage.Disk.mem (Workspace.disk ws) path);
  (* second request returns the same artifact without error *)
  let path2 =
    Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
      ~bz:Bzimage.Standard
  in
  check Alcotest.string "same path" path path2

let test_workspace_functions_override () =
  let ws = small_ws () in
  let c = Workspace.config ws Config.Ubuntu Config.Fgkaslr in
  check int "override applied" 50 c.Config.functions

let test_boot_runner_stats () =
  let ws = small_ws () in
  Workspace.warm_all ws;
  let make_vm ~seed =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
      ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
      ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
      ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  let s =
    Boot_runner.boot_many ~warmups:1 ~runs:8 ~cache:(Workspace.cache ws)
      ~make_vm ()
  in
  check int "8 samples" 8 s.Boot_runner.total.Imk_util.Stats.n;
  check Alcotest.bool "min <= mean <= max" true
    (s.Boot_runner.total.Imk_util.Stats.min
     <= s.Boot_runner.total.Imk_util.Stats.mean
    && s.Boot_runner.total.Imk_util.Stats.mean
       <= s.Boot_runner.total.Imk_util.Stats.max);
  check Alcotest.bool "jitter spreads samples" true
    (s.Boot_runner.total.Imk_util.Stats.max
    > s.Boot_runner.total.Imk_util.Stats.min);
  check Alcotest.bool "phases sum to total" true
    (let sum =
       s.Boot_runner.in_monitor.Imk_util.Stats.mean
       +. s.Boot_runner.bootstrap.Imk_util.Stats.mean
       +. s.Boot_runner.decompression.Imk_util.Stats.mean
       +. s.Boot_runner.linux_boot.Imk_util.Stats.mean
     in
     abs_float (sum -. s.Boot_runner.total.Imk_util.Stats.mean) < 1000.)

let test_boot_many_parallel_identical () =
  (* jobs must never change the numbers: same seeds, per-worker cache
     clones, order-preserving aggregation *)
  let run jobs =
    let ws = small_ws () in
    Workspace.warm_all ws;
    let make_vm ~seed =
      Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
        ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
        ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
        ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
        ~mem_bytes:(64 * 1024 * 1024) ~seed ()
    in
    Boot_runner.boot_many ~warmups:2 ~jobs ~arena:(Workspace.arena ws) ~runs:6
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  let seq = run 1 in
  let par = run 4 in
  check Alcotest.bool "phase_stats bit-identical" true (seq = par);
  (* and without warmups, where run 1 doubles as the priming boot *)
  let run0 jobs =
    let ws = small_ws () in
    Workspace.warm_all ws;
    let make_vm ~seed =
      Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
        ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
        ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
        ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
        ~mem_bytes:(64 * 1024 * 1024) ~seed ()
    in
    Boot_runner.boot_many ~warmups:0 ~jobs ~arena:(Workspace.arena ws) ~runs:5
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  check Alcotest.bool "warmups:0 bit-identical" true (run0 1 = run0 3)

let test_empty_phase_reports_zero_count () =
  (* a direct boot has no decompression phase; its summary must say
     n = 0, not fabricate a zero sample *)
  let ws = small_ws () in
  Workspace.warm_all ws;
  let make_vm ~seed =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_off
      ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Nokaslr)
      ~kernel_config:(Workspace.config ws Config.Aws Config.Nokaslr)
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  let s =
    Boot_runner.boot_many ~warmups:1 ~runs:3 ~arena:(Workspace.arena ws)
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  check int "no decompression samples" 0
    s.Boot_runner.decompression.Imk_util.Stats.n;
  check int "3 totals" 3 s.Boot_runner.total.Imk_util.Stats.n;
  check (Alcotest.float 0.) "empty phase mean is 0" 0.
    (Boot_runner.ms s.Boot_runner.decompression)

let test_ms_keeps_fractional_ns () =
  let s = Imk_util.Stats.summarize [ 1.; 2. ] in
  check (Alcotest.float 1e-15) "fractional ns survive" 1.5e-6
    (Boot_runner.ms s)

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_telemetry_json () =
  let o = Experiments.fig6 ~runs:2 (small_ws ()) in
  let rows = Telemetry.rows o in
  check int "one row per method" 4 (List.length rows);
  let means = Telemetry.boot_means o in
  check int "one mean per row" 4 (List.length means);
  check Alcotest.bool "labelled" true (List.mem_assoc "lz4" means);
  let json =
    Telemetry.to_json ~experiment:"fig6" ~runs:2 ~jobs:1 ~scale:4
      ~functions:(Some 50) ~wall_clock_s:0.25 rows
  in
  check Alcotest.bool "has wall clock" true
    (contains json "\"wall_clock_s\": 0.250");
  check Alcotest.bool "has experiment" true
    (contains json "\"experiment\": \"fig6\"");
  check Alcotest.bool "has label" true (contains json "\"label\": \"lz4\"");
  check Alcotest.bool "has p99" true (contains json "\"p99_ms\"")

(* ---- schema 2: round-trips, traps, duplicate labels, the gate ---- *)

let mk_file ?(experiment = "x") rows =
  {
    Telemetry.schema = Telemetry.schema_version;
    experiment;
    runs = 3;
    jobs = 1;
    scale = 4;
    functions = None;
    wall_clock_s = 0.1;
    rows;
  }

let render ?(experiment = "x") rows =
  Telemetry.to_json ~experiment ~runs:3 ~jobs:1 ~scale:4 ~functions:None
    ~wall_clock_s:0.1 rows

let mk_row label samples phases =
  {
    Telemetry.label;
    total = Imk_util.Stats.summarize samples;
    phases = List.map (fun (p, s) -> (p, Imk_util.Stats.summarize s)) phases;
  }

let test_schema2_roundtrip () =
  (* to_json -> of_json preserves every summary field to the emitted
     %.6f ms precision, phases included *)
  let o = Experiments.fig6 ~runs:2 (small_ws ()) in
  let rows = Telemetry.rows o in
  let f =
    Telemetry.of_json
      (Telemetry.to_json ~experiment:"fig6" ~runs:2 ~jobs:1 ~scale:4
         ~functions:(Some 50) ~wall_clock_s:0.25 rows)
  in
  check int "schema" Telemetry.schema_version f.Telemetry.schema;
  check Alcotest.string "experiment" "fig6" f.Telemetry.experiment;
  check (Alcotest.option int) "functions" (Some 50) f.Telemetry.functions;
  check int "row count" (List.length rows) (List.length f.Telemetry.rows);
  List.iter2
    (fun (a : Telemetry.row) (b : Telemetry.row) ->
      check Alcotest.string "label" a.Telemetry.label b.Telemetry.label;
      let close what x y = check (Alcotest.float 1e-5) what x y in
      close "p50" a.Telemetry.total.Imk_util.Stats.p50
        b.Telemetry.total.Imk_util.Stats.p50;
      close "p99" a.Telemetry.total.Imk_util.Stats.p99
        b.Telemetry.total.Imk_util.Stats.p99;
      close "stddev" a.Telemetry.total.Imk_util.Stats.stddev
        b.Telemetry.total.Imk_util.Stats.stddev;
      check int "phase count"
        (List.length a.Telemetry.phases)
        (List.length b.Telemetry.phases);
      (* phase means, weighted by how often each phase fired, recover
         the headline total (absent phases are absent, never zero-padded) *)
      let weighted (r : Telemetry.row) =
        List.fold_left
          (fun acc (_, (s : Imk_util.Stats.summary)) ->
            acc
            +. s.Imk_util.Stats.mean
               *. float_of_int s.Imk_util.Stats.n
               /. float_of_int r.Telemetry.total.Imk_util.Stats.n)
          0. r.Telemetry.phases
      in
      close "phase sums = total" b.Telemetry.total.Imk_util.Stats.mean
        (weighted b))
    rows f.Telemetry.rows

let test_schema2_empty_and_escaping () =
  let f = Telemetry.of_json (render []) in
  check int "no rows" 0 (List.length f.Telemetry.rows);
  let wild = "aws/\"kaslr\"\n\tbs\\128M" in
  let row = mk_row wild [ 1.0; 2.0; 3.0 ] [ ("in-monitor", [ 1.0 ]) ] in
  let f = Telemetry.of_json (render [ row ]) in
  match f.Telemetry.rows with
  | [ r ] ->
      check Alcotest.string "wild label round-trips" wild r.Telemetry.label;
      check (Alcotest.float 1e-9) "p50" 2.0 r.Telemetry.total.Imk_util.Stats.p50
  | rs -> Alcotest.failf "expected 1 row, got %d" (List.length rs)

let test_duplicate_labels_rejected () =
  let rows = [ mk_row "same" [ 1.0 ] []; mk_row "same" [ 2.0 ] [] ] in
  check Alcotest.bool "to_json raises" true
    (match render rows with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_schema1_rejected () =
  (* a schema-1 file carried only means; reading it as distributions
     must fail loudly, not fabricate percentiles *)
  let v1 =
    "{ \"schema\": 1, \"experiment\": \"fig9\", \"runs\": 20, \"jobs\": 1,\n\
    \  \"scale\": 16, \"functions\": null, \"wall_clock_s\": 19.1,\n\
    \  \"boot_ms\": [ { \"label\": \"aws/kaslr\", \"mean_ms\": 85.4 } ] }"
  in
  check Alcotest.bool "schema 1 refused" true
    (match Telemetry.of_json v1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "garbage refused" true
    (match Telemetry.of_json "{ \"schema\": 2, " with
    | _ -> false
    | exception Imk_util.Minjson.Malformed _ -> true)

let test_value_column_traps () =
  let vc = Telemetry.value_column in
  check (Alcotest.option int) "atoms is not ms" None
    (vc [ "kernel"; "atoms" ]);
  check (Alcotest.option int) "programs is not ms" None
    (vc [ "rando"; "programs"; "loss %" ]);
  check (Alcotest.option int) "total ms preferred" (Some 2)
    (vc [ "kernel"; "atoms"; "total ms"; "boot ms" ]);
  check (Alcotest.option int) "boot ms fallback" (Some 1)
    (vc [ "kernel"; "boot ms" ]);
  check (Alcotest.option int) "token suffix matches" (Some 1)
    (vc [ "kernel"; "restore ms" ]);
  check (Alcotest.option int) "bare ms matches" (Some 0) (vc [ "ms" ])

let test_baseline_gate () =
  let rows =
    [
      mk_row "a" [ 10.0; 11.0; 12.0 ] [ ("in-monitor", [ 4.0; 4.5; 5.0 ]) ];
      mk_row "b" [ 20.0; 21.0; 22.0 ] [];
    ]
  in
  let current = mk_file rows in
  (* self-diff: zero regressions *)
  let self = Telemetry.diff ~baseline:current ~current () in
  check int "no self regressions" 0 (List.length (Telemetry.regressions self));
  check int "total+phase deltas" 3 (List.length self);
  (* doctored baseline: halve label a's total p50 -> +100% regression *)
  let doctored =
    mk_file
      [
        mk_row "a" [ 5.0; 5.5; 6.0 ] [ ("in-monitor", [ 4.0; 4.5; 5.0 ]) ];
        mk_row "b" [ 20.0; 21.0; 22.0 ] [];
      ]
  in
  let deltas = Telemetry.diff ~baseline:doctored ~current () in
  (match Telemetry.regressions deltas with
  | [ d ] ->
      check Alcotest.string "regressing label" "a" d.Telemetry.d_label;
      check (Alcotest.option Alcotest.string) "headline total" None
        d.Telemetry.d_phase;
      check (Alcotest.float 1e-9) "+100%" 100.0 d.Telemetry.change_pct
  | ds -> Alcotest.failf "expected 1 regression, got %d" (List.length ds));
  (* a phase-only shift never trips the gate: same totals, slower phase *)
  let phase_shift =
    mk_file
      [
        mk_row "a" [ 10.0; 11.0; 12.0 ] [ ("in-monitor", [ 1.0; 1.5; 2.0 ]) ];
        mk_row "b" [ 20.0; 21.0; 22.0 ] [];
      ]
  in
  let deltas = Telemetry.diff ~baseline:phase_shift ~current () in
  check int "phase deltas are diagnostic" 0
    (List.length (Telemetry.regressions deltas));
  (* a single-sample side is degenerate: its quantiles alias the one
     draw, so even a huge p50 change is reported but never a regression *)
  let one_shot = mk_file [ mk_row "a" [ 5.0 ] []; mk_row "b" [ 20.0 ] [] ] in
  let deltas = Telemetry.diff ~baseline:one_shot ~current () in
  check int "degenerate deltas never regress" 0
    (List.length (Telemetry.regressions deltas));
  (match List.find_opt (fun d -> d.Telemetry.d_label = "a") deltas with
  | Some d ->
      check Alcotest.bool "marked degenerate" true d.Telemetry.degenerate;
      check (Alcotest.float 1e-9) "the delta itself is still reported" 120.0
        d.Telemetry.change_pct
  | None -> Alcotest.fail "missing delta for label a");
  (* label drift is reported, not silently ignored *)
  let renamed = mk_file [ mk_row "c" [ 10.0 ] [] ] in
  let only_base, only_cur =
    Telemetry.missing_labels ~baseline:renamed ~current
  in
  check (Alcotest.list Alcotest.string) "only in baseline" [ "c" ] only_base;
  check (Alcotest.list Alcotest.string) "only in current" [ "a"; "b" ] only_cur

let test_trace_sink_fires () =
  let ws = small_ws () in
  Workspace.warm_all ws;
  let vm =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_off
      ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Nokaslr)
      ~kernel_config:(Workspace.config ws Config.Aws Config.Nokaslr)
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  let count = ref 0 in
  let seen_total = ref 0 in
  Boot_runner.trace_sink :=
    Some
      (fun tr ->
        incr count;
        seen_total := Imk_vclock.Trace.total tr);
  Fun.protect
    ~finally:(fun () -> Boot_runner.trace_sink := None)
    (fun () ->
      let trace, _ =
        Boot_runner.boot_once ~jitter:false ~seed:1L
          ~cache:(Workspace.cache ws) vm
      in
      check int "sink fired once" 1 !count;
      check int "sink saw the finished trace" (Imk_vclock.Trace.total trace)
        !seen_total);
  (* uninstalling restores the no-op default *)
  ignore
    (Boot_runner.boot_once ~jitter:false ~seed:2L ~cache:(Workspace.cache ws)
       vm);
  check int "no sink, no fire" 1 !count

let test_boot_once_spans () =
  let ws = small_ws () in
  Workspace.warm_all ws;
  let vm =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_off
      ~kernel_path:
        (Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
           ~bz:Bzimage.Standard)
      ~flavor:Imk_monitor.Vm_config.Bzimage_support
      ~kernel_config:(Workspace.config ws Config.Aws Config.Nokaslr)
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  let trace, _ = Boot_runner.boot_once ~jitter:false ~seed:1L ~cache:(Workspace.cache ws) vm in
  let spans = Boot_runner.spans_by_label trace in
  check Alcotest.bool "has loader-setup" true
    (List.mem_assoc "loader-setup" spans);
  check Alcotest.bool "has decompress span" true
    (List.mem_assoc "decompress-lz4" spans)

(* smoke runs of the cheap experiments; assert structural soundness and
   the headline directions *)

let note_contains o needle =
  List.exists
    (fun n ->
      let rec go i =
        i + String.length needle <= String.length n
        && (String.sub n i (String.length needle) = needle || go (i + 1))
      in
      String.length needle <= String.length n && go 0)
    o.Experiments.notes

let test_table1_smoke () =
  let o = Experiments.table1 (small_ws ()) in
  check Alcotest.string "id" "table1" o.Experiments.id;
  let rendered = Imk_util.Table.render o.Experiments.table in
  check Alcotest.bool "has all nine kernels" true
    (List.for_all
       (fun k ->
         let rec go i =
           i + String.length k <= String.length rendered
           && (String.sub rendered i (String.length k) = k || go (i + 1))
         in
         go 0)
       [ "lupine-nokaslr"; "aws-fgkaslr"; "ubuntu-kaslr" ])

let test_fig6_smoke () =
  let o = Experiments.fig6 ~runs:2 (small_ws ()) in
  check Alcotest.bool "direct fastest" true
    (note_contains o "> uncompressed(direct)")

let test_fig3_smoke () =
  let o = Experiments.fig3 ~runs:2 (small_ws ()) in
  check Alcotest.bool "lz4 wins" true (note_contains o "fastest codec: lz4")

let test_security_smoke () =
  let o = Experiments.security (small_ws ()) in
  check Alcotest.string "id" "security" o.Experiments.id

let test_by_id_lookup () =
  check Alcotest.bool "fig9 known" true (Experiments.by_id "fig9" <> None);
  check Alcotest.bool "unknown" true (Experiments.by_id "fig99" = None);
  (* every advertised id resolves *)
  List.iter
    (fun id ->
      check Alcotest.bool (id ^ " resolves") true (Experiments.by_id id <> None))
    Experiments.all_ids

let test_throughput_smoke () =
  let o = Experiments.throughput ~runs:5 (small_ws ()) in
  check Alcotest.string "id" "throughput" o.Experiments.id;
  (* the headline direction: fgkaslr costs more throughput than kaslr *)
  check Alcotest.bool "ordering note present" true
    (note_contains o "FGKASLR costs")

let test_fig9_parallel_identical () =
  (* cell-level fan-out with per-worker workspaces renders the exact
     table the sequential run does *)
  let render jobs =
    Boot_runner.default_jobs := jobs;
    Fun.protect
      ~finally:(fun () -> Boot_runner.default_jobs := 1)
      (fun () ->
        let o = Experiments.fig9 ~runs:2 (small_ws ()) in
        Imk_util.Table.render o.Experiments.table)
  in
  check Alcotest.string "fig9 table identical" (render 1) (render 3)

let test_zygote_smoke () =
  let o = Experiments.ablation_zygote ~runs:3 (small_ws ()) in
  check Alcotest.bool "restores faster" true (note_contains o "faster than boots")

let () =
  Alcotest.run "imk_harness"
    [
      ( "workspace",
        [
          Alcotest.test_case "builds once" `Quick test_workspace_builds_once;
          Alcotest.test_case "registers images" `Quick
            test_workspace_registers_images;
          Alcotest.test_case "bzimage" `Quick test_workspace_bzimage;
          Alcotest.test_case "functions override" `Quick
            test_workspace_functions_override;
        ] );
      ( "boot_runner",
        [
          Alcotest.test_case "stats" `Quick test_boot_runner_stats;
          Alcotest.test_case "span labels" `Quick test_boot_once_spans;
          Alcotest.test_case "parallel identical" `Quick
            test_boot_many_parallel_identical;
          Alcotest.test_case "empty phase n=0" `Quick
            test_empty_phase_reports_zero_count;
          Alcotest.test_case "ms precision" `Quick test_ms_keeps_fractional_ns;
          Alcotest.test_case "trace sink" `Quick test_trace_sink_fires;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "json" `Quick test_telemetry_json;
          Alcotest.test_case "schema2 roundtrip" `Quick test_schema2_roundtrip;
          Alcotest.test_case "empty + escaping" `Quick
            test_schema2_empty_and_escaping;
          Alcotest.test_case "duplicate labels" `Quick
            test_duplicate_labels_rejected;
          Alcotest.test_case "schema1 rejected" `Quick test_schema1_rejected;
          Alcotest.test_case "value_column traps" `Quick
            test_value_column_traps;
          Alcotest.test_case "baseline gate" `Quick test_baseline_gate;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1_smoke;
          Alcotest.test_case "fig3" `Slow test_fig3_smoke;
          Alcotest.test_case "fig6" `Quick test_fig6_smoke;
          Alcotest.test_case "security" `Quick test_security_smoke;
          Alcotest.test_case "by_id" `Quick test_by_id_lookup;
          Alcotest.test_case "throughput" `Slow test_throughput_smoke;
          Alcotest.test_case "fig9 parallel" `Slow test_fig9_parallel_identical;
          Alcotest.test_case "zygote" `Slow test_zygote_smoke;
        ] );
    ]
