(* Tests for Imk_harness: workspace caching/registration, the boot runner's
   statistics, and smoke runs of representative experiments on shrunken
   kernels. *)

open Imk_harness
open Imk_kernel

let check = Alcotest.check
let int = Alcotest.int

let small_ws () = Workspace.create ~scale:4 ~functions_override:50 ()

let test_workspace_builds_once () =
  let ws = small_ws () in
  let a = Workspace.built ws Config.Aws Config.Kaslr in
  let b = Workspace.built ws Config.Aws Config.Kaslr in
  check Alcotest.bool "cached build" true (a == b)

let test_workspace_registers_images () =
  let ws = small_ws () in
  let path = Workspace.vmlinux_path ws Config.Lupine Config.Kaslr in
  check Alcotest.bool "on disk" true (Imk_storage.Disk.mem (Workspace.disk ws) path);
  let rpath = Workspace.relocs_path ws Config.Lupine Config.Kaslr in
  check Alcotest.bool "relocs on disk" true
    (Imk_storage.Disk.mem (Workspace.disk ws) rpath)

let test_workspace_bzimage () =
  let ws = small_ws () in
  let path =
    Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
      ~bz:Bzimage.Standard
  in
  check Alcotest.bool "bzimage on disk" true
    (Imk_storage.Disk.mem (Workspace.disk ws) path);
  (* second request returns the same artifact without error *)
  let path2 =
    Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
      ~bz:Bzimage.Standard
  in
  check Alcotest.string "same path" path path2

let test_workspace_functions_override () =
  let ws = small_ws () in
  let c = Workspace.config ws Config.Ubuntu Config.Fgkaslr in
  check int "override applied" 50 c.Config.functions

let test_boot_runner_stats () =
  let ws = small_ws () in
  Workspace.warm_all ws;
  let make_vm ~seed =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
      ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
      ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
      ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  let s =
    Boot_runner.boot_many ~warmups:1 ~runs:8 ~cache:(Workspace.cache ws)
      ~make_vm ()
  in
  check int "8 samples" 8 s.Boot_runner.total.Imk_util.Stats.n;
  check Alcotest.bool "min <= mean <= max" true
    (s.Boot_runner.total.Imk_util.Stats.min
     <= s.Boot_runner.total.Imk_util.Stats.mean
    && s.Boot_runner.total.Imk_util.Stats.mean
       <= s.Boot_runner.total.Imk_util.Stats.max);
  check Alcotest.bool "jitter spreads samples" true
    (s.Boot_runner.total.Imk_util.Stats.max
    > s.Boot_runner.total.Imk_util.Stats.min);
  check Alcotest.bool "phases sum to total" true
    (let sum =
       s.Boot_runner.in_monitor.Imk_util.Stats.mean
       +. s.Boot_runner.bootstrap.Imk_util.Stats.mean
       +. s.Boot_runner.decompression.Imk_util.Stats.mean
       +. s.Boot_runner.linux_boot.Imk_util.Stats.mean
     in
     abs_float (sum -. s.Boot_runner.total.Imk_util.Stats.mean) < 1000.)

let test_boot_many_parallel_identical () =
  (* jobs must never change the numbers: same seeds, per-worker cache
     clones, order-preserving aggregation *)
  let run jobs =
    let ws = small_ws () in
    Workspace.warm_all ws;
    let make_vm ~seed =
      Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
        ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
        ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
        ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
        ~mem_bytes:(64 * 1024 * 1024) ~seed ()
    in
    Boot_runner.boot_many ~warmups:2 ~jobs ~arena:(Workspace.arena ws) ~runs:6
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  let seq = run 1 in
  let par = run 4 in
  check Alcotest.bool "phase_stats bit-identical" true (seq = par);
  (* and without warmups, where run 1 doubles as the priming boot *)
  let run0 jobs =
    let ws = small_ws () in
    Workspace.warm_all ws;
    let make_vm ~seed =
      Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
        ~relocs_path:(Some (Workspace.relocs_path ws Config.Aws Config.Kaslr))
        ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Kaslr)
        ~kernel_config:(Workspace.config ws Config.Aws Config.Kaslr)
        ~mem_bytes:(64 * 1024 * 1024) ~seed ()
    in
    Boot_runner.boot_many ~warmups:0 ~jobs ~arena:(Workspace.arena ws) ~runs:5
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  check Alcotest.bool "warmups:0 bit-identical" true (run0 1 = run0 3)

let test_empty_phase_reports_zero_count () =
  (* a direct boot has no decompression phase; its summary must say
     n = 0, not fabricate a zero sample *)
  let ws = small_ws () in
  Workspace.warm_all ws;
  let make_vm ~seed =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_off
      ~kernel_path:(Workspace.vmlinux_path ws Config.Aws Config.Nokaslr)
      ~kernel_config:(Workspace.config ws Config.Aws Config.Nokaslr)
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  let s =
    Boot_runner.boot_many ~warmups:1 ~runs:3 ~arena:(Workspace.arena ws)
      ~cache:(Workspace.cache ws) ~make_vm ()
  in
  check int "no decompression samples" 0
    s.Boot_runner.decompression.Imk_util.Stats.n;
  check int "3 totals" 3 s.Boot_runner.total.Imk_util.Stats.n;
  check (Alcotest.float 0.) "empty phase mean is 0" 0.
    (Boot_runner.ms s.Boot_runner.decompression)

let test_ms_keeps_fractional_ns () =
  let s = Imk_util.Stats.summarize [ 1.; 2. ] in
  check (Alcotest.float 1e-15) "fractional ns survive" 1.5e-6
    (Boot_runner.ms s)

let test_telemetry_json () =
  let o = Experiments.fig6 ~runs:2 (small_ws ()) in
  let means = Telemetry.boot_means o in
  check int "one mean per row" 4 (List.length means);
  check Alcotest.bool "labelled" true (List.mem_assoc "lz4" means);
  let json =
    Telemetry.to_json ~experiment:"fig6" ~runs:2 ~jobs:1 ~scale:4
      ~functions:(Some 50) ~wall_clock_s:0.25 means
  in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length json
      && (String.sub json i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "has wall clock" true (has "\"wall_clock_s\": 0.250");
  check Alcotest.bool "has experiment" true (has "\"experiment\": \"fig6\"");
  check Alcotest.bool "has label" true (has "\"label\": \"lz4\"")

let test_boot_once_spans () =
  let ws = small_ws () in
  Workspace.warm_all ws;
  let vm =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_off
      ~kernel_path:
        (Workspace.bzimage_path ws Config.Aws Config.Nokaslr ~codec:"lz4"
           ~bz:Bzimage.Standard)
      ~flavor:Imk_monitor.Vm_config.Bzimage_support
      ~kernel_config:(Workspace.config ws Config.Aws Config.Nokaslr)
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  let trace, _ = Boot_runner.boot_once ~jitter:false ~seed:1L ~cache:(Workspace.cache ws) vm in
  let spans = Boot_runner.spans_by_label trace in
  check Alcotest.bool "has loader-setup" true
    (List.mem_assoc "loader-setup" spans);
  check Alcotest.bool "has decompress span" true
    (List.mem_assoc "decompress-lz4" spans)

(* smoke runs of the cheap experiments; assert structural soundness and
   the headline directions *)

let note_contains o needle =
  List.exists
    (fun n ->
      let rec go i =
        i + String.length needle <= String.length n
        && (String.sub n i (String.length needle) = needle || go (i + 1))
      in
      String.length needle <= String.length n && go 0)
    o.Experiments.notes

let test_table1_smoke () =
  let o = Experiments.table1 (small_ws ()) in
  check Alcotest.string "id" "table1" o.Experiments.id;
  let rendered = Imk_util.Table.render o.Experiments.table in
  check Alcotest.bool "has all nine kernels" true
    (List.for_all
       (fun k ->
         let rec go i =
           i + String.length k <= String.length rendered
           && (String.sub rendered i (String.length k) = k || go (i + 1))
         in
         go 0)
       [ "lupine-nokaslr"; "aws-fgkaslr"; "ubuntu-kaslr" ])

let test_fig6_smoke () =
  let o = Experiments.fig6 ~runs:2 (small_ws ()) in
  check Alcotest.bool "direct fastest" true
    (note_contains o "> uncompressed(direct)")

let test_fig3_smoke () =
  let o = Experiments.fig3 ~runs:2 (small_ws ()) in
  check Alcotest.bool "lz4 wins" true (note_contains o "fastest codec: lz4")

let test_security_smoke () =
  let o = Experiments.security (small_ws ()) in
  check Alcotest.string "id" "security" o.Experiments.id

let test_by_id_lookup () =
  check Alcotest.bool "fig9 known" true (Experiments.by_id "fig9" <> None);
  check Alcotest.bool "unknown" true (Experiments.by_id "fig99" = None);
  (* every advertised id resolves *)
  List.iter
    (fun id ->
      check Alcotest.bool (id ^ " resolves") true (Experiments.by_id id <> None))
    Experiments.all_ids

let test_throughput_smoke () =
  let o = Experiments.throughput ~runs:5 (small_ws ()) in
  check Alcotest.string "id" "throughput" o.Experiments.id;
  (* the headline direction: fgkaslr costs more throughput than kaslr *)
  check Alcotest.bool "ordering note present" true
    (note_contains o "FGKASLR costs")

let test_fig9_parallel_identical () =
  (* cell-level fan-out with per-worker workspaces renders the exact
     table the sequential run does *)
  let render jobs =
    Boot_runner.default_jobs := jobs;
    Fun.protect
      ~finally:(fun () -> Boot_runner.default_jobs := 1)
      (fun () ->
        let o = Experiments.fig9 ~runs:2 (small_ws ()) in
        Imk_util.Table.render o.Experiments.table)
  in
  check Alcotest.string "fig9 table identical" (render 1) (render 3)

let test_zygote_smoke () =
  let o = Experiments.ablation_zygote ~runs:3 (small_ws ()) in
  check Alcotest.bool "restores faster" true (note_contains o "faster than boots")

let () =
  Alcotest.run "imk_harness"
    [
      ( "workspace",
        [
          Alcotest.test_case "builds once" `Quick test_workspace_builds_once;
          Alcotest.test_case "registers images" `Quick
            test_workspace_registers_images;
          Alcotest.test_case "bzimage" `Quick test_workspace_bzimage;
          Alcotest.test_case "functions override" `Quick
            test_workspace_functions_override;
        ] );
      ( "boot_runner",
        [
          Alcotest.test_case "stats" `Quick test_boot_runner_stats;
          Alcotest.test_case "span labels" `Quick test_boot_once_spans;
          Alcotest.test_case "parallel identical" `Quick
            test_boot_many_parallel_identical;
          Alcotest.test_case "empty phase n=0" `Quick
            test_empty_phase_reports_zero_count;
          Alcotest.test_case "ms precision" `Quick test_ms_keeps_fractional_ns;
          Alcotest.test_case "telemetry json" `Quick test_telemetry_json;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1_smoke;
          Alcotest.test_case "fig3" `Slow test_fig3_smoke;
          Alcotest.test_case "fig6" `Quick test_fig6_smoke;
          Alcotest.test_case "security" `Quick test_security_smoke;
          Alcotest.test_case "by_id" `Quick test_by_id_lookup;
          Alcotest.test_case "throughput" `Slow test_throughput_smoke;
          Alcotest.test_case "fig9 parallel" `Slow test_fig9_parallel_identical;
          Alcotest.test_case "zygote" `Slow test_zygote_smoke;
        ] );
    ]
