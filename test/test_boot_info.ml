(* Tests for Imk_guest.Boot_info and Imk_kernel.Initrd, plus their
   integration: cmdline randomization veto flags (§5.1), initrd loading
   and the guest's validation of both. *)

open Imk_monitor
open Imk_guest

let check = Alcotest.check
let int = Alcotest.int

let sample ?(proto = Boot_info.Proto_linux64) ?(cmdline = "console=ttyS0")
    ?(initrd = None) ~mem_bytes () =
  {
    Boot_info.proto;
    cmdline;
    e820 = Boot_info.e820_of_mem ~mem_bytes;
    initrd;
  }

let mem_64m () = Imk_memory.Guest_mem.create ~size:(64 * 1024 * 1024)

let test_roundtrip () =
  let mem = mem_64m () in
  let t = sample ~cmdline:"console=ttyS0 quiet nokaslr" ~mem_bytes:(64 * 1024 * 1024) () in
  Boot_info.write mem t;
  let back = Boot_info.read mem in
  check Alcotest.string "cmdline" t.Boot_info.cmdline back.Boot_info.cmdline;
  check int "e820 entries" 3 (List.length back.Boot_info.e820);
  check Alcotest.bool "no initrd" true (back.Boot_info.initrd = None)

let test_pvh_roundtrip () =
  let mem = mem_64m () in
  let t =
    sample ~proto:Boot_info.Proto_pvh ~initrd:(Some (0x2000000, 4096))
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  Boot_info.write mem t;
  let back = Boot_info.read mem in
  check Alcotest.bool "pvh" true (back.Boot_info.proto = Boot_info.Proto_pvh);
  check Alcotest.bool "initrd" true (back.Boot_info.initrd = Some (0x2000000, 4096))

let test_e820_shape () =
  let entries = Boot_info.e820_of_mem ~mem_bytes:(128 * 1024 * 1024) in
  match entries with
  | [ low; hole; high ] ->
      check Alcotest.bool "low usable" true low.Boot_info.usable;
      check Alcotest.bool "hole reserved" true (not hole.Boot_info.usable);
      check int "high covers rest"
        (128 * 1024 * 1024)
        (high.Boot_info.base + high.Boot_info.size)
  | _ -> Alcotest.fail "expected three entries"

let test_has_flag () =
  let t = sample ~cmdline:"console=ttyS0 nokaslr panic=1" ~mem_bytes:4096000 () in
  check Alcotest.bool "nokaslr" true (Boot_info.has_flag t "nokaslr");
  check Alcotest.bool "substring no match" false (Boot_info.has_flag t "kaslr");
  check Alcotest.bool "absent" false (Boot_info.has_flag t "nofgkaslr")

let test_write_rejects_long_cmdline () =
  let mem = mem_64m () in
  let t = sample ~cmdline:(String.make 4000 'x') ~mem_bytes:(64 * 1024 * 1024) () in
  check Alcotest.bool "rejected" true
    (try
       Boot_info.write mem t;
       false
     with Boot_info.Invalid _ -> true)

let test_read_rejects_garbage () =
  let mem = mem_64m () in
  check Alcotest.bool "bad magic" true
    (try
       ignore (Boot_info.read mem);
       false
     with Boot_info.Invalid _ -> true)

let test_validate_rejects_bad_map () =
  let mem = mem_64m () in
  let t =
    {
      (sample ~mem_bytes:(64 * 1024 * 1024) ()) with
      Boot_info.e820 =
        [
          { Boot_info.base = 0; size = 1024; usable = true };
          (* overlapping *)
          { Boot_info.base = 512; size = 2048; usable = true };
        ];
    }
  in
  Boot_info.write mem t;
  check Alcotest.bool "overlap rejected" true
    (try
       ignore (Boot_info.validate mem ~mem_bytes:(64 * 1024 * 1024));
       false
     with Boot_info.Invalid _ -> true)

(* --- initrd --- *)

let test_initrd_roundtrip () =
  let image = Imk_kernel.Initrd.make ~size:8192 ~seed:3L in
  check int "exact size" 8192 (Bytes.length image);
  Imk_kernel.Initrd.validate image

let test_initrd_detects_corruption () =
  let image = Imk_kernel.Initrd.make ~size:4096 ~seed:3L in
  Bytes.set image 2000 (Char.chr (Char.code (Bytes.get image 2000) lxor 1));
  check Alcotest.bool "corrupt" true
    (try
       Imk_kernel.Initrd.validate image;
       false
     with Imk_kernel.Initrd.Corrupt _ -> true)

let test_initrd_truncation () =
  check Alcotest.bool "truncated" true
    (try
       Imk_kernel.Initrd.validate (Bytes.create 4);
       false
     with Imk_kernel.Initrd.Corrupt _ -> true)

(* --- integration through the monitor --- *)

let test_boot_with_initrd () =
  let env = Testkit.make_env ~functions:40 () in
  let initrd = Imk_kernel.Initrd.make ~size:(256 * 1024) ~seed:9L in
  Imk_storage.Disk.add env.Testkit.disk ~name:"initrd.img" initrd;
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~initrd_path:(Some "initrd.img")
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg ()
  in
  let _, ch = Testkit.charge () in
  let r = Vmm.boot ch env.Testkit.cache vm in
  (* guest saw and validated the ramdisk *)
  let info =
    Boot_info.read r.Vmm.mem
  in
  check Alcotest.bool "initrd advertised" true (info.Boot_info.initrd <> None)

let test_boot_with_corrupt_initrd_panics () =
  let env = Testkit.make_env ~functions:40 () in
  let initrd = Imk_kernel.Initrd.make ~size:(64 * 1024) ~seed:9L in
  Bytes.set initrd 100 '\xAA';
  Imk_storage.Disk.add env.Testkit.disk ~name:"bad-initrd.img" initrd;
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_off
      ~initrd_path:(Some "bad-initrd.img")
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg ()
  in
  let _, ch = Testkit.charge () in
  check Alcotest.bool "panics" true
    (try
       ignore (Vmm.boot ch env.Testkit.cache vm);
       false
     with Imk_guest.Runtime.Panic _ -> true)

let bz_boot env ~boot_args ~rando =
  let path =
    Testkit.add_bzimage env ~codec:"none"
      ~variant:Imk_kernel.Bzimage.None_optimized
  in
  let vm =
    Vm_config.make ~flavor:Vm_config.In_monitor_fgkaslr ~rando ~boot_args
      ~mem_bytes:(64 * 1024 * 1024) ~kernel_path:path
      ~kernel_config:env.Testkit.cfg ~seed:77L ()
  in
  let _, ch = Testkit.charge () in
  Vmm.boot ch env.Testkit.cache vm

let test_cmdline_nokaslr_vetoes_loader_rando () =
  let env = Testkit.make_env ~functions:40 ~variant:Imk_kernel.Config.Kaslr () in
  let r =
    bz_boot env ~boot_args:"console=ttyS0 nokaslr" ~rando:Vm_config.Rando_kaslr
  in
  check int "no offset despite kaslr request" 0
    (Imk_guest.Boot_params.delta r.Vmm.params)

let test_cmdline_nofgkaslr_downgrades () =
  let env =
    Testkit.make_env ~functions:40 ~variant:Imk_kernel.Config.Fgkaslr ()
  in
  let r =
    bz_boot env ~boot_args:"console=ttyS0 nofgkaslr"
      ~rando:Vm_config.Rando_fgkaslr
  in
  (* base randomization still applied... *)
  check Alcotest.bool "still kaslr" true
    (Imk_guest.Boot_params.delta r.Vmm.params <> 0);
  (* ...but no shuffle: functions remain in link order *)
  let _, ch = Testkit.charge () in
  let fn_va =
    Imk_lebench.Runner.layout_of_guest ch r.Vmm.mem r.Vmm.params
  in
  let sorted = Array.for_all2 ( = ) fn_va (let c = Array.copy fn_va in Array.sort compare c; c) in
  check Alcotest.bool "link order preserved" true sorted

let test_cmdline_flags_ignored_by_direct_boot () =
  (* in-monitor randomization is host policy; guest flags cannot veto it *)
  let env = Testkit.make_env ~functions:40 () in
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~boot_args:"console=ttyS0 nokaslr"
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~seed:5L ()
  in
  let _, ch = Testkit.charge () in
  let r = Vmm.boot ch env.Testkit.cache vm in
  check Alcotest.bool "still randomized" true
    (Imk_guest.Boot_params.delta r.Vmm.params <> 0)

let qcheck_boot_info_roundtrip =
  QCheck.Test.make ~name:"boot info: read ∘ write = id" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 200)) bool)
    (fun (raw_cmdline, pvh) ->
      (* NULs terminate C strings; the encoding stores length explicitly
         but keep the generator realistic *)
      let cmdline =
        String.map (fun c -> if c = '\000' then ' ' else c) raw_cmdline
      in
      let mem = mem_64m () in
      let t =
        sample
          ~proto:(if pvh then Boot_info.Proto_pvh else Boot_info.Proto_linux64)
          ~cmdline ~mem_bytes:(64 * 1024 * 1024) ()
      in
      Boot_info.write mem t;
      Boot_info.read mem = t)

let () =
  Alcotest.run "boot_info"
    [
      ( "encode/decode",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "pvh" `Quick test_pvh_roundtrip;
          Alcotest.test_case "e820 shape" `Quick test_e820_shape;
          Alcotest.test_case "has_flag" `Quick test_has_flag;
          Alcotest.test_case "long cmdline" `Quick
            test_write_rejects_long_cmdline;
          Alcotest.test_case "garbage" `Quick test_read_rejects_garbage;
          Alcotest.test_case "bad e820" `Quick test_validate_rejects_bad_map;
          Testkit.to_alcotest qcheck_boot_info_roundtrip;
        ] );
      ( "initrd",
        [
          Alcotest.test_case "roundtrip" `Quick test_initrd_roundtrip;
          Alcotest.test_case "corruption" `Quick test_initrd_detects_corruption;
          Alcotest.test_case "truncation" `Quick test_initrd_truncation;
        ] );
      ( "integration",
        [
          Alcotest.test_case "boot with initrd" `Quick test_boot_with_initrd;
          Alcotest.test_case "corrupt initrd panics" `Quick
            test_boot_with_corrupt_initrd_panics;
          Alcotest.test_case "nokaslr vetoes loader" `Quick
            test_cmdline_nokaslr_vetoes_loader_rando;
          Alcotest.test_case "nofgkaslr downgrades" `Quick
            test_cmdline_nofgkaslr_downgrades;
          Alcotest.test_case "direct boot ignores flags" `Quick
            test_cmdline_flags_ignored_by_direct_boot;
        ] );
    ]
