(* Tests for Imk_elf: writer/parser round-trips, layout, relocation table
   codec, builder invariants, malformed-input rejection. *)

open Imk_elf

let check = Alcotest.check
let int = Alcotest.int

let sample_image () =
  let b = Builder.create () in
  let text = Bytes.of_string (String.make 256 'T') in
  let rodata = Bytes.of_string (String.make 64 'R') in
  let base = Imk_memory.Addr.link_base in
  Builder.add_section b ~name:".text" ~sh_type:Types.sht_progbits
    ~flags:(Types.shf_alloc lor Types.shf_execinstr)
    ~addr:base ~addralign:16 text;
  Builder.add_section b ~name:".rodata" ~sh_type:Types.sht_progbits
    ~flags:Types.shf_alloc ~addr:(base + 4096) ~addralign:64 rodata;
  Builder.add_section b ~name:".bss" ~sh_type:Types.sht_nobits
    ~flags:(Types.shf_alloc lor Types.shf_write)
    ~addr:(base + 8192) ~mem_size:512 (Bytes.create 0);
  Builder.add_symbol b ~name:"startup_64" ~value:base ~size:64
    ~sym_type:Types.stt_func ~section:".text";
  Builder.add_symbol b ~name:"some_data" ~value:(base + 4096) ~size:8
    ~sym_type:Types.stt_object ~section:".rodata";
  Builder.set_entry b base;
  Builder.finalize b ~phys_of_vaddr:(fun va -> va - Imk_memory.Addr.kmap_base)

let sections_equal (a : Types.section) (b : Types.section) =
  a.name = b.name && a.sh_type = b.sh_type && a.flags = b.flags
  && a.addr = b.addr && a.offset = b.offset && a.size = b.size
  && a.addralign = b.addralign && Bytes.equal a.data b.data

let test_roundtrip () =
  let t = sample_image () in
  let written = Writer.write t in
  let parsed = Parser.parse written in
  check int "entry" t.Types.entry parsed.Types.entry;
  check int "sections" (Array.length t.Types.sections)
    (Array.length parsed.Types.sections);
  Array.iteri
    (fun i s ->
      check Alcotest.bool ("section " ^ s.Types.name) true
        (sections_equal s parsed.Types.sections.(i)))
    t.Types.sections;
  check int "segments" (Array.length t.Types.segments)
    (Array.length parsed.Types.segments);
  check int "symbols" (Array.length t.Types.symbols)
    (Array.length parsed.Types.symbols);
  Array.iteri
    (fun i (s : Types.symbol) ->
      let p = parsed.Types.symbols.(i) in
      check Alcotest.string "sym name" s.sym_name p.Types.sym_name;
      check int "sym value" s.value p.Types.value;
      check int "sym shndx" s.shndx p.Types.shndx;
      check int "sym type" s.sym_type p.Types.sym_type)
    t.Types.symbols

let test_entry_point_fast_path () =
  let t = sample_image () in
  let written = Writer.write t in
  check int "entry_point" t.Types.entry (Parser.entry_point written)

let test_is_elf () =
  let t = sample_image () in
  check Alcotest.bool "valid" true (Parser.is_elf (Writer.write t));
  check Alcotest.bool "invalid" false (Parser.is_elf (Bytes.of_string "nope"))

let expect_malformed label f =
  Alcotest.test_case label `Quick (fun () ->
      check Alcotest.bool label true
        (try
           ignore (f ());
           false
         with Parser.Malformed _ -> true))

let test_segments_derived () =
  let t = sample_image () in
  check Alcotest.bool "at least one PT_LOAD" true
    (Array.exists (fun (p : Types.segment) -> p.p_type = Types.pt_load) t.Types.segments);
  Array.iter
    (fun (p : Types.segment) ->
      check Alcotest.bool "paddr mapping" true
        (p.Types.p_paddr = p.Types.p_vaddr - Imk_memory.Addr.kmap_base))
    t.Types.segments

let test_nobits_breaks_segment_file_size () =
  let t = sample_image () in
  (* the .bss section must not contribute file size to any segment *)
  Array.iter
    (fun (p : Types.segment) ->
      check Alcotest.bool "filesz <= memsz" true (p.Types.p_filesz <= p.Types.p_memsz))
    t.Types.segments

let test_builder_duplicate_section () =
  let b = Builder.create () in
  Builder.add_section b ~name:".text" ~sh_type:Types.sht_progbits
    ~flags:Types.shf_alloc ~addr:0 (Bytes.create 1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Elf.Builder: duplicate section .text") (fun () ->
      Builder.add_section b ~name:".text" ~sh_type:Types.sht_progbits
        ~flags:Types.shf_alloc ~addr:64 (Bytes.create 1))

let test_builder_unknown_symbol_section () =
  let b = Builder.create () in
  Alcotest.check_raises "unknown section"
    (Invalid_argument "Elf.Builder: unknown section .text") (fun () ->
      Builder.add_symbol b ~name:"x" ~value:0 ~size:0
        ~sym_type:Types.stt_func ~section:".text")

let test_builder_out_of_order_addresses () =
  let b = Builder.create () in
  Builder.add_section b ~name:".a" ~sh_type:Types.sht_progbits
    ~flags:Types.shf_alloc ~addr:8192 (Bytes.create 16);
  Builder.add_section b ~name:".b" ~sh_type:Types.sht_progbits
    ~flags:Types.shf_alloc ~addr:0 (Bytes.create 16);
  check Alcotest.bool "finalize rejects" true
    (try
       ignore (Builder.finalize b ~phys_of_vaddr:Fun.id);
       false
     with Invalid_argument _ -> true)

let test_layout_align_up () =
  check int "already aligned" 4096 (Layout.align_up 4096 4096);
  check int "rounds" 8192 (Layout.align_up 4097 4096);
  check int "one" 7 (Layout.align_up 7 1);
  Alcotest.check_raises "zero align"
    (Invalid_argument "Layout.align_up: non-positive alignment") (fun () ->
      ignore (Layout.align_up 1 0))

let test_layout_assign_offsets () =
  let mk name size align =
    {
      Types.name;
      sh_type = Types.sht_progbits;
      flags = Types.shf_alloc;
      addr = 0;
      offset = 0;
      size;
      addralign = align;
      entsize = 0;
      data = Bytes.create size;
    }
  in
  let out =
    Layout.assign_offsets ~first_offset:100 [| mk ".a" 10 16; mk ".b" 5 64 |]
  in
  check int ".a offset" 112 out.(0).Types.offset;
  check int ".b offset" 128 out.(1).Types.offset

let test_function_section_recognition () =
  let s sec_name =
    {
      Types.name = sec_name;
      sh_type = Types.sht_progbits;
      flags = 0;
      addr = 0;
      offset = 0;
      size = 0;
      addralign = 1;
      entsize = 0;
      data = Bytes.create 0;
    }
  in
  check Alcotest.bool ".text.fn" true (Types.is_function_section (s ".text.fn_00001"));
  check Alcotest.bool ".text" false (Types.is_function_section (s ".text"));
  check Alcotest.bool ".rodata" false (Types.is_function_section (s ".rodata"))

(* --- relocation tables --- *)

let test_reloc_roundtrip () =
  let t =
    {
      Relocation.abs64 = [| 1; 2; 300 |];
      abs32 = [| 10; 20 |];
      inv32 = [| 5 |];
    }
  in
  let back = Relocation.decode (Relocation.encode t) in
  Alcotest.(check (array int)) "abs64" t.Relocation.abs64 back.Relocation.abs64;
  Alcotest.(check (array int)) "abs32" t.Relocation.abs32 back.Relocation.abs32;
  Alcotest.(check (array int)) "inv32" t.Relocation.inv32 back.Relocation.inv32;
  check int "count" 6 (Relocation.entry_count back);
  check int "size" (16 + 48) (Relocation.size_bytes t)

let test_reloc_empty () =
  let back = Relocation.decode (Relocation.encode Relocation.empty) in
  check int "empty" 0 (Relocation.entry_count back)

let test_reloc_bad_magic () =
  Alcotest.check_raises "bad magic"
    (Relocation.Bad_table "Relocation.decode: bad magic") (fun () ->
      ignore (Relocation.decode (Bytes.make 16 'x')))

let test_reloc_truncated () =
  let t = { Relocation.abs64 = [| 1; 2 |]; abs32 = [||]; inv32 = [||] } in
  let enc = Relocation.encode t in
  Alcotest.check_raises "truncated"
    (Relocation.Bad_table "Relocation.decode: truncated entries") (fun () ->
      ignore (Relocation.decode (Bytes.sub enc 0 (Bytes.length enc - 4))))

let test_reloc_invariant () =
  check Alcotest.bool "sorted ok" true
    (Relocation.sorted_dedup_invariant
       { Relocation.abs64 = [| 1; 2; 3 |]; abs32 = [||]; inv32 = [||] });
  check Alcotest.bool "dup rejected" false
    (Relocation.sorted_dedup_invariant
       { Relocation.abs64 = [| 1; 1 |]; abs32 = [||]; inv32 = [||] })

let test_reloc_map_sites () =
  let t = { Relocation.abs64 = [| 1 |]; abs32 = [| 2 |]; inv32 = [| 3 |] } in
  let t' = Relocation.map_sites t ~f:(fun v -> v * 10) in
  Alcotest.(check (array int)) "mapped" [| 10 |] t'.Relocation.abs64;
  Alcotest.(check (array int)) "mapped32" [| 20 |] t'.Relocation.abs32

(* --- notes --- *)

let test_note_roundtrip () =
  let t = { Note.owner = "IMK-TEST"; note_type = 42; desc = Bytes.of_string "abcde" } in
  let back = Note.decode (Note.encode t) in
  check Alcotest.string "owner" t.Note.owner back.Note.owner;
  check int "type" 42 back.Note.note_type;
  check Alcotest.string "desc" "abcde" (Bytes.to_string back.Note.desc)

let test_kaslr_note_roundtrip () =
  let c =
    {
      Note.phys_start = Imk_memory.Addr.default_phys_load;
      phys_align = Imk_memory.Addr.kernel_align;
      kmap_base = Imk_memory.Addr.kmap_base;
      image_size_max = Imk_memory.Addr.kaslr_max_offset;
    }
  in
  let back = Note.decode_kaslr (Note.decode (Note.encode (Note.encode_kaslr c))) in
  check int "phys_start" c.Note.phys_start back.Note.phys_start;
  check int "kmap" c.Note.kmap_base back.Note.kmap_base

let test_note_rejects_garbage () =
  check Alcotest.bool "truncated" true
    (try
       ignore (Note.decode (Bytes.create 4));
       false
     with Types.Malformed _ -> true);
  check Alcotest.bool "wrong owner" true
    (try
       ignore
         (Note.decode_kaslr
            { Note.owner = "GNU"; note_type = 1; desc = Bytes.create 32 });
       false
     with Types.Malformed _ -> true)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"elf: parse ∘ write = id on random images" ~count:40
    QCheck.(triple (int_range 1 5) (int_range 0 8) int64)
    (fun (nsections, nsyms, seed) ->
      let rng = Imk_entropy.Prng.create ~seed in
      let b = Builder.create () in
      let base = Imk_memory.Addr.link_base in
      let addr = ref base in
      let names = ref [] in
      for i = 0 to nsections - 1 do
        let size = 16 + Imk_entropy.Prng.next_int rng 512 in
        let name = Printf.sprintf ".sec%d" i in
        names := name :: !names;
        Builder.add_section b ~name ~sh_type:Types.sht_progbits
          ~flags:Types.shf_alloc ~addr:!addr
          (Bytes.init size (fun _ ->
               Char.chr (Imk_entropy.Prng.next_int rng 256)));
        addr := Imk_memory.Addr.align_up (!addr + size) 64
      done;
      let names = Array.of_list !names in
      for i = 0 to nsyms - 1 do
        Builder.add_symbol b
          ~name:(Printf.sprintf "sym%d" i)
          ~value:(base + i) ~size:i ~sym_type:Types.stt_func
          ~section:names.(Imk_entropy.Prng.next_int rng (Array.length names))
      done;
      Builder.set_entry b base;
      let t = Builder.finalize b ~phys_of_vaddr:(fun v -> v - base) in
      let parsed = Parser.parse (Writer.write t) in
      parsed.Types.entry = t.Types.entry
      && Array.length parsed.Types.sections = Array.length t.Types.sections
      && Array.for_all2 sections_equal t.Types.sections parsed.Types.sections
      && Array.length parsed.Types.symbols = Array.length t.Types.symbols)

let qcheck_reloc_roundtrip =
  QCheck.Test.make ~name:"relocs: decode ∘ encode = id" ~count:100
    QCheck.(triple (list small_nat) (list small_nat) (list small_nat))
    (fun (a, b, c) ->
      let arr l = Array.of_list (List.sort_uniq compare l) in
      let t = { Relocation.abs64 = arr a; abs32 = arr b; inv32 = arr c } in
      Relocation.decode (Relocation.encode t) = t)

(* --- adversarial decoding: any corruption fails typed, never as a raw
   [Invalid_argument]/[Failure] from the byte readers (mirrors the
   test_compress adversarial suites) --- *)

let mutate rng b =
  let b = Bytes.copy b in
  match Imk_entropy.Prng.next_int rng 3 with
  | 0 ->
      (* flip 1..8 bits anywhere *)
      for _ = 1 to 1 + Imk_entropy.Prng.next_int rng 8 do
        let bit = Imk_entropy.Prng.next_int rng (Bytes.length b * 8) in
        Bytes.set b (bit / 8)
          (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))))
      done;
      b
  | 1 ->
      (* truncate to a random prefix *)
      Bytes.sub b 0 (Imk_entropy.Prng.next_int rng (Bytes.length b))
  | _ ->
      (* splice a run of random garbage *)
      let off = Imk_entropy.Prng.next_int rng (Bytes.length b) in
      let len = min (Bytes.length b - off) (1 + Imk_entropy.Prng.next_int rng 64) in
      for i = off to off + len - 1 do
        Bytes.set b i (Char.chr (Imk_entropy.Prng.next_int rng 256))
      done;
      b

let qcheck_parser_adversarial =
  QCheck.Test.make
    ~name:"elf: corrupted images parse or fail typed (Malformed)" ~count:300
    QCheck.int64
    (fun seed ->
      let rng = Imk_entropy.Prng.create ~seed in
      let b = mutate rng (Writer.write (sample_image ())) in
      match Parser.parse b with
      | _ -> true
      | exception Parser.Malformed _ -> true
      | exception _ -> false)

let qcheck_reloc_adversarial =
  QCheck.Test.make
    ~name:"relocs: corrupted tables decode or fail typed (Bad_table)"
    ~count:300 QCheck.int64
    (fun seed ->
      let rng = Imk_entropy.Prng.create ~seed in
      let t =
        {
          Relocation.abs64 = Array.init 5 (fun i -> 100 + i);
          abs32 = [| 7; 9 |];
          inv32 = [| 3 |];
        }
      in
      let b = mutate rng (Relocation.encode t) in
      match Relocation.decode b with
      | _ -> true
      | exception Relocation.Bad_table _ -> true
      | exception _ -> false)

let qcheck_note_adversarial =
  QCheck.Test.make
    ~name:"notes: corrupted notes decode or fail typed (Malformed)"
    ~count:300 QCheck.int64
    (fun seed ->
      let rng = Imk_entropy.Prng.create ~seed in
      let note =
        { Note.owner = "IMK-TEST"; note_type = 7; desc = Bytes.make 24 'd' }
      in
      let b = mutate rng (Note.encode note) in
      match Note.decode_kaslr (Note.decode b) with
      | _ -> true
      | exception Types.Malformed _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "imk_elf"
    [
      ( "writer+parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "entry point" `Quick test_entry_point_fast_path;
          Alcotest.test_case "is_elf" `Quick test_is_elf;
          expect_malformed "truncated header" (fun () ->
              Parser.parse (Bytes.create 10));
          expect_malformed "bad magic" (fun () ->
              Parser.parse (Bytes.make 200 'x'));
          expect_malformed "wrong class" (fun () ->
              let b = Writer.write (sample_image ()) in
              Imk_util.Byteio.set_u8 b 4 1;
              Parser.parse b);
          expect_malformed "sections out of bounds" (fun () ->
              let b = Writer.write (sample_image ()) in
              (* corrupt e_shoff *)
              Imk_util.Byteio.set_addr b 40 (Bytes.length b * 2);
              Parser.parse b);
          Testkit.to_alcotest qcheck_roundtrip;
          Testkit.to_alcotest qcheck_parser_adversarial;
        ] );
      ( "layout+builder",
        [
          Alcotest.test_case "segments derived" `Quick test_segments_derived;
          Alcotest.test_case "nobits file size" `Quick
            test_nobits_breaks_segment_file_size;
          Alcotest.test_case "duplicate section" `Quick
            test_builder_duplicate_section;
          Alcotest.test_case "unknown symbol section" `Quick
            test_builder_unknown_symbol_section;
          Alcotest.test_case "address order" `Quick
            test_builder_out_of_order_addresses;
          Alcotest.test_case "align_up" `Quick test_layout_align_up;
          Alcotest.test_case "assign_offsets" `Quick test_layout_assign_offsets;
          Alcotest.test_case "function sections" `Quick
            test_function_section_recognition;
        ] );
      ( "notes",
        [
          Alcotest.test_case "roundtrip" `Quick test_note_roundtrip;
          Alcotest.test_case "kaslr constants" `Quick test_kaslr_note_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_note_rejects_garbage;
          Testkit.to_alcotest qcheck_note_adversarial;
        ] );
      ( "relocations",
        [
          Alcotest.test_case "roundtrip" `Quick test_reloc_roundtrip;
          Alcotest.test_case "empty" `Quick test_reloc_empty;
          Alcotest.test_case "bad magic" `Quick test_reloc_bad_magic;
          Alcotest.test_case "truncated" `Quick test_reloc_truncated;
          Alcotest.test_case "sorted invariant" `Quick test_reloc_invariant;
          Alcotest.test_case "map_sites" `Quick test_reloc_map_sites;
          Testkit.to_alcotest qcheck_reloc_roundtrip;
          Testkit.to_alcotest qcheck_reloc_adversarial;
        ] );
    ]
