(* Tests for Imk_monitor.Snapshot and Zygote: capture/restore fidelity,
   layout cloning (the §7 weakness), pool diversity, and cost shape
   (restore ≪ boot). *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

let booted ?(seed = 21L) () =
  let env = Testkit.make_env ~functions:50 () in
  let trace, r = Testkit.boot env ~seed in
  (env, trace, r)

let test_capture_restore_verifies () =
  let _, _, r = booted () in
  let snap = Snapshot.capture r in
  let _, ch = Testkit.charge () in
  let restored = Snapshot.restore ch snap ~working_set_pages:64 in
  check int "all functions verified" 50
    restored.Vmm.stats.Imk_guest.Runtime.functions_visited;
  (* the clone is exact, including its randomization *)
  check int "same virtual base"
    r.Vmm.params.Imk_guest.Boot_params.virt_base
    restored.Vmm.params.Imk_guest.Boot_params.virt_base

let test_capture_is_deep () =
  let _, _, r = booted () in
  let snap = Snapshot.capture r in
  let before = Snapshot.layout_seed_of snap in
  (* mutating the source VM must not change the snapshot *)
  Imk_memory.Guest_mem.zero r.Vmm.mem
    ~pa:r.Vmm.params.Imk_guest.Boot_params.phys_load ~len:4096;
  check int "snapshot unaffected" before (Snapshot.layout_seed_of snap)

let dirty_ranges m =
  List.rev
    (Imk_memory.Guest_mem.fold_dirty_ranges m ~init:[] ~f:(fun acc ~lo ~hi ->
         (lo, hi) :: acc))

let test_capture_leaves_tracker_untouched () =
  (* the old full-image capture went through [Guest_mem.raw], which
     conservatively dirtied the whole guest — a snapshotted boot's next
     arena scrub became a whole-guest re-zero. Capture (and the layout
     probe) must be invisible to the tracker. *)
  let _, _, r = booted () in
  let extent_before = Imk_memory.Guest_mem.dirty_extent r.Vmm.mem in
  let ranges_before = dirty_ranges r.Vmm.mem in
  let snap = Snapshot.capture r in
  ignore (Snapshot.layout_seed_of snap);
  check Alcotest.bool "dirty extent unchanged by capture" true
    (extent_before = Imk_memory.Guest_mem.dirty_extent r.Vmm.mem);
  check Alcotest.bool "dirty ranges unchanged by capture" true
    (ranges_before = dirty_ranges r.Vmm.mem);
  (* scrub cost = bytes the tracker reports; it must match an identical
     boot that was never snapshotted, and stay below a whole-guest
     re-zero *)
  let _, _, plain = booted () in
  check Alcotest.bool "scrub cost identical to a non-snapshotted boot"
    true
    (dirty_ranges r.Vmm.mem = dirty_ranges plain.Vmm.mem);
  let dirty_bytes =
    List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0
      (dirty_ranges r.Vmm.mem)
  in
  check Alcotest.bool "scrub stays below a whole-guest re-zero" true
    (dirty_bytes < Imk_memory.Guest_mem.size r.Vmm.mem)

let test_restore_cheaper_than_boot () =
  let _, boot_trace, r = booted () in
  let snap = Snapshot.capture r in
  let trace, ch = Testkit.charge () in
  let _ = Snapshot.restore ch snap ~working_set_pages:256 in
  check Alcotest.bool "restore ≪ boot" true
    (Imk_vclock.Trace.total trace * 5 < Imk_vclock.Trace.total boot_trace)

let test_restore_charges_working_set () =
  let _, _, r = booted () in
  let snap = Snapshot.capture r in
  let small =
    let trace, ch = Testkit.charge () in
    ignore (Snapshot.restore ch snap ~working_set_pages:16);
    Imk_vclock.Trace.total trace
  in
  let large =
    let trace, ch = Testkit.charge () in
    ignore (Snapshot.restore ch snap ~working_set_pages:4096);
    Imk_vclock.Trace.total trace
  in
  check Alcotest.bool "more faults cost more" true (large > small)

let test_serialize_roundtrip () =
  let _, _, r = booted () in
  let snap = Snapshot.capture r in
  let blob = Snapshot.serialize snap in
  let reloaded = Snapshot.load ~config:r.Vmm.config blob in
  check int "layout seed survives" (Snapshot.layout_seed_of snap)
    (Snapshot.layout_seed_of reloaded);
  let _, ch = Testkit.charge () in
  let restored = Snapshot.restore ch reloaded ~working_set_pages:64 in
  check int "reloaded clone verifies" 50
    restored.Vmm.stats.Imk_guest.Runtime.functions_visited;
  check int "same virtual base"
    r.Vmm.params.Imk_guest.Boot_params.virt_base
    restored.Vmm.params.Imk_guest.Boot_params.virt_base

let expect_corrupt name f =
  match f () with
  | (_ : Snapshot.t) -> Alcotest.failf "%s: corruption not detected" name
  | exception Snapshot.Corrupt _ -> ()

(* one boot shared by the corruption tests: serializing a 64 MiB guest per
   qcheck case would dominate the suite's runtime *)
let snapshot_fixture =
  lazy
    (let _, _, r = booted ~seed:77L () in
     (Snapshot.serialize (Snapshot.capture r), r.Vmm.config))

let qcheck_load_rejects_bit_flips =
  QCheck.Test.make ~count:60
    ~name:"snapshot: any single flipped bit fails load with Corrupt"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let blob, config = Lazy.force snapshot_fixture in
      let mangled = Imk_fault.Inject.flip_one_bit ~seed (Bytes.copy blob) in
      match Snapshot.load ~config mangled with
      | (_ : Snapshot.t) -> false
      | exception Snapshot.Corrupt _ -> true)

let test_load_rejects_truncation () =
  let blob, config = Lazy.force snapshot_fixture in
  List.iter
    (fun keep ->
      expect_corrupt
        (Printf.sprintf "truncated to %d bytes" keep)
        (fun () -> Snapshot.load ~config (Bytes.sub blob 0 keep)))
    [ 0; 4; 111; Bytes.length blob - 1; Bytes.length blob - 3 ]

let test_load_rejects_bad_magic () =
  let blob, config = Lazy.force snapshot_fixture in
  let blob = Bytes.copy blob in
  Bytes.set blob 0 'X';
  expect_corrupt "bad magic" (fun () -> Snapshot.load ~config blob)

let test_layout_seed_distinguishes () =
  let env = Testkit.make_env ~functions:50 () in
  let _, a = Testkit.boot env ~seed:1L in
  let _, b = Testkit.boot env ~seed:2L in
  check Alcotest.bool "different layouts fingerprint differently" true
    (Snapshot.layout_seed_of (Snapshot.capture a)
    <> Snapshot.layout_seed_of (Snapshot.capture b))

let make_pool_env () =
  let env = Testkit.make_env ~functions:50 () in
  let make_vm ~seed =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~seed ()
  in
  (env, make_vm)

let test_zygote_pool_diversity () =
  let env, make_vm = make_pool_env () in
  let _, ch = Testkit.charge () in
  let pool = Zygote.build ch env.Testkit.cache ~make_vm ~size:6 in
  check int "size" 6 (Zygote.size pool);
  check int "all layouts distinct" 6 (Zygote.distinct_layouts pool);
  (* pool cost scales with the pool (the Morula trade the paper
     highlights), but framed snapshots cost the bytes each boot wrote,
     not 6 whole guests *)
  let bytes = Zygote.memory_bytes pool in
  check Alcotest.bool "each snapshot carries real pages" true
    (bytes > 6 * 4096);
  check Alcotest.bool "frames cost less than full guests" true
    (bytes < 6 * 64 * 1024 * 1024)

let test_zygote_draw_verifies () =
  let env, make_vm = make_pool_env () in
  let _, ch = Testkit.charge () in
  let pool = Zygote.build ch env.Testkit.cache ~make_vm ~size:3 in
  let rng = Imk_entropy.Prng.create ~seed:9L in
  for _ = 1 to 5 do
    let r = Zygote.draw ch pool ~rng ~working_set_pages:32 in
    check int "verified" 50 r.Vmm.stats.Imk_guest.Runtime.functions_visited
  done

let test_zygote_empty_rejected () =
  let env, make_vm = make_pool_env () in
  let _, ch = Testkit.charge () in
  Alcotest.check_raises "empty pool" (Invalid_argument "Zygote.build: empty pool")
    (fun () -> ignore (Zygote.build ch env.Testkit.cache ~make_vm ~size:0))

let test_zygote_draws_repeat_layouts () =
  (* the residual weakness: a pool cycles a finite set of layouts *)
  let env, make_vm = make_pool_env () in
  let _, ch = Testkit.charge () in
  let pool = Zygote.build ch env.Testkit.cache ~make_vm ~size:2 in
  let rng = Imk_entropy.Prng.create ~seed:13L in
  let bases = Hashtbl.create 4 in
  for _ = 1 to 10 do
    let r = Zygote.draw ch pool ~rng ~working_set_pages:8 in
    Hashtbl.replace bases r.Vmm.params.Imk_guest.Boot_params.virt_base ()
  done;
  check Alcotest.bool "at most pool-size layouts" true (Hashtbl.length bases <= 2)

let () =
  Alcotest.run "snapshot+zygote"
    [
      ( "snapshot",
        [
          Alcotest.test_case "capture/restore verifies" `Quick
            test_capture_restore_verifies;
          Alcotest.test_case "capture is deep" `Quick test_capture_is_deep;
          Alcotest.test_case "capture leaves tracker untouched" `Quick
            test_capture_leaves_tracker_untouched;
          Alcotest.test_case "restore cheaper than boot" `Quick
            test_restore_cheaper_than_boot;
          Alcotest.test_case "working-set cost" `Quick
            test_restore_charges_working_set;
          Alcotest.test_case "layout fingerprint" `Quick
            test_layout_seed_distinguishes;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "serialize/load round-trip" `Quick
            test_serialize_roundtrip;
          Alcotest.test_case "truncation rejected" `Quick
            test_load_rejects_truncation;
          Alcotest.test_case "bad magic rejected" `Quick
            test_load_rejects_bad_magic;
          Testkit.to_alcotest qcheck_load_rejects_bit_flips;
        ] );
      ( "zygote",
        [
          Alcotest.test_case "pool diversity" `Quick test_zygote_pool_diversity;
          Alcotest.test_case "draws verify" `Quick test_zygote_draw_verifies;
          Alcotest.test_case "empty rejected" `Quick test_zygote_empty_rejected;
          Alcotest.test_case "draws repeat layouts" `Quick
            test_zygote_draws_repeat_layouts;
        ] );
    ]
