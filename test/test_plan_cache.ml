(* The boot-plan cache's two contracts (DESIGN.md §4):

   - content addressing: a plan is reused iff the image bytes are
     content-identical — physically shared objects hit fast, equal
     copies hit via CRC, any content change (including injected
     corruption) misses and rebuilds;
   - observational invisibility: traces, verify stats, boot params and
     phase_stats are bit-identical with the cache on or off, for any
     jobs fan-out, and nothing a boot does mutates a plan or the disk. *)

open Imk_monitor
module PC = Plan_cache

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- keying ---------- *)

let test_hit_on_same_object () =
  let env = Testkit.make_env () in
  let t = PC.create () in
  let b = env.Testkit.built.Imk_kernel.Image.vmlinux in
  let p1 = PC.elf_plan t ~path:"k" b in
  let p2 = PC.elf_plan t ~path:"k" b in
  check bool "same plan object" true (p1 == p2);
  let hits, builds = PC.stats t in
  check int "one hit" 1 hits;
  check int "one build" 1 builds

let test_hit_on_equal_copy () =
  (* a workspace clone rebuilds byte-identical images as fresh objects;
     the CRC fallback must still hit *)
  let env = Testkit.make_env () in
  let t = PC.create () in
  let b = env.Testkit.built.Imk_kernel.Image.vmlinux in
  let p1 = PC.elf_plan t ~path:"k" b in
  let p2 = PC.elf_plan t ~path:"k" (Bytes.copy b) in
  check bool "copy hits" true (p1 == p2);
  let hits, builds = PC.stats t in
  check int "one hit" 1 hits;
  check int "one build" 1 builds

let test_miss_on_content_change () =
  (* same path, different kernel content: must rebuild, never alias *)
  let a = Testkit.make_env ~seed:9L () in
  let b = Testkit.make_env ~seed:10L () in
  let t = PC.create () in
  let pa = PC.elf_plan t ~path:"k" a.Testkit.built.Imk_kernel.Image.vmlinux in
  let pb = PC.elf_plan t ~path:"k" b.Testkit.built.Imk_kernel.Image.vmlinux in
  check bool "distinct plans" true (pa != pb);
  let _, builds = PC.stats t in
  check int "two builds" 2 builds;
  (* and the path now maps to b's content: a's bytes miss again *)
  let pa2 = PC.elf_plan t ~path:"k" a.Testkit.built.Imk_kernel.Image.vmlinux in
  check bool "a rebuilt after replacement" true (pa2 != pa)

let test_failed_build_not_cached () =
  let t = PC.create () in
  let bad = Bytes.make 64 '\000' in
  (try ignore (PC.elf_plan t ~path:"k" bad) ; Alcotest.fail "parsed garbage"
   with Imk_elf.Parser.Malformed _ -> ());
  let hits, builds = PC.stats t in
  check int "no hits" 0 hits;
  check int "no builds cached" 0 builds;
  (* same bytes fail again — typed, not served stale *)
  (try ignore (PC.elf_plan t ~path:"k" bad) ; Alcotest.fail "parsed garbage"
   with Imk_elf.Parser.Malformed _ -> ())

let test_bz_and_relocs_keying () =
  let env = Testkit.make_env () in
  let t = PC.create () in
  let bz_name =
    Testkit.add_bzimage env ~codec:"lz4" ~variant:Imk_kernel.Bzimage.Standard
  in
  let bz_bytes = Imk_storage.Disk.find env.Testkit.disk bz_name in
  let p1 = PC.bz_plan t ~path:bz_name bz_bytes in
  let p2 = PC.bz_plan t ~path:bz_name (Bytes.copy bz_bytes) in
  check bool "bz plan shared" true (p1 == p2);
  let rb = env.Testkit.built.Imk_kernel.Image.relocs_bytes in
  let r1 = PC.relocs t ~path:"k.relocs" rb in
  let r2 = PC.relocs t ~path:"k.relocs" (Bytes.copy rb) in
  check bool "relocs table shared" true (r1 == r2)

(* ---------- observational invisibility ---------- *)

(* comparisons need a warm page cache on both sides: a cold-vs-warm read
   difference is real (and charged) but has nothing to do with plans *)
let warm (env : Testkit.env) =
  List.iter
    (fun n -> Imk_storage.Page_cache.warm env.Testkit.cache n)
    (Imk_storage.Disk.names env.Testkit.disk)

let same_boot (tr_a, (ra : Vmm.boot_result)) (tr_b, (rb : Vmm.boot_result)) =
  Imk_vclock.Trace.spans tr_a = Imk_vclock.Trace.spans tr_b
  && ra.Vmm.stats = rb.Vmm.stats
  && ra.Vmm.params = rb.Vmm.params

let test_cached_uncached_identical_direct () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  warm env;
  let t = PC.create () in
  List.iter
    (fun rando ->
      List.iter
        (fun seed ->
          let cached = Testkit.boot ~rando ~plans:t ~seed env in
          let plain = Testkit.boot ~rando ~seed env in
          check bool "trace+stats+params identical" true
            (same_boot cached plain))
        [ 1L; 2L; 77L ])
    [ Vm_config.Rando_kaslr; Vm_config.Rando_fgkaslr ];
  let hits, _ = PC.stats t in
  check bool "later boots hit" true (hits > 0)

let test_cached_uncached_identical_bz () =
  let env = Testkit.make_env () in
  let t = PC.create () in
  let bz_name =
    Testkit.add_bzimage env ~codec:"lz4" ~variant:Imk_kernel.Bzimage.Standard
  in
  warm env;
  List.iter
    (fun seed ->
      let boot ?plans () =
        Testkit.boot ?plans ~flavor:Vm_config.In_monitor_fgkaslr
          ~loader:Vm_config.Loader_stripped ~kernel_path:bz_name
          ~relocs:None ~seed env
      in
      let cached = boot ~plans:t () in
      let plain = boot () in
      check bool "bz boot identical" true (same_boot cached plain))
    [ 5L; 6L ]

let qcheck_cached_matches_uncached =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  warm env;
  let t = PC.create () in
  QCheck.Test.make ~name:"plan cache invisible for any seed" ~count:25
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, fg) ->
      let seed = Int64.of_int seed in
      let rando =
        if fg then Vm_config.Rando_fgkaslr else Vm_config.Rando_kaslr
      in
      same_boot
        (Testkit.boot ~rando ~plans:t ~seed env)
        (Testkit.boot ~rando ~seed env))

let small_ws ?plan_cache () =
  Imk_harness.Workspace.create ~scale:4 ~functions_override:50 ?plan_cache ()

let fig9_cell ws ~jobs =
  let module W = Imk_harness.Workspace in
  let module C = Imk_kernel.Config in
  let make_vm ~seed =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (W.relocs_path ws C.Aws C.Kaslr))
      ~kernel_path:(W.vmlinux_path ws C.Aws C.Kaslr)
      ~kernel_config:(W.config ws C.Aws C.Kaslr)
      ~mem_bytes:(64 * 1024 * 1024) ~seed ()
  in
  Imk_harness.Boot_runner.boot_many ~warmups:2 ~jobs ~arena:(W.arena ws)
    ?plans:(W.plans ws) ~runs:6 ~cache:(W.cache ws) ~make_vm ()

let test_boot_many_invariant_cache_and_jobs () =
  (* phase_stats must be bit-identical across {cache on, cache off} x
     {jobs 1, jobs 4} — the tentpole's acceptance matrix in miniature *)
  let base = fig9_cell (small_ws ~plan_cache:false ()) ~jobs:1 in
  List.iter
    (fun (label, stats) ->
      check bool label true (stats = base))
    [
      ("cache off, jobs 4", fig9_cell (small_ws ~plan_cache:false ()) ~jobs:4);
      ("cache on, jobs 1", fig9_cell (small_ws ()) ~jobs:1);
      ("cache on, jobs 4", fig9_cell (small_ws ()) ~jobs:4);
    ]

(* ---------- fault transparency ---------- *)

let test_corruption_never_sees_stale_plan () =
  let env = Testkit.make_env () in
  let t = PC.create () in
  let path = Testkit.vmlinux_path env in
  let pristine = Imk_storage.Disk.find env.Testkit.disk path in
  let _, r1 = Testkit.boot ~plans:t ~seed:3L env in
  (* corrupt the image in place (fresh bytes, ELF magic destroyed): the
     warm cache must not serve the pristine plan *)
  let corrupt = Bytes.copy pristine in
  Bytes.set corrupt 0 '\xff';
  Imk_storage.Disk.add env.Testkit.disk ~name:path corrupt;
  (match Testkit.boot ~plans:t ~seed:4L env with
  | _ -> Alcotest.fail "booted a corrupt image via a stale plan"
  | exception e ->
      check bool "typed failure" true
        (Imk_fault.Failure.classify e <> None));
  (* restore pristine content as a *fresh copy*: CRC path must hit and
     boot verify-green again *)
  Imk_storage.Disk.add env.Testkit.disk ~name:path (Bytes.copy pristine);
  let _, r2 = Testkit.boot ~plans:t ~seed:3L env in
  check bool "restored boot matches original" true
    (r1.Vmm.stats = r2.Vmm.stats)

let test_supervised_campaign_with_shared_plans () =
  (* one plan cache across a whole supervised campaign with armed
     faults: no silent successes, and clean runs still verify green *)
  let module S = Imk_harness.Boot_supervisor in
  let module I = Imk_fault.Inject in
  let env = Testkit.make_env () in
  let t = PC.create () in
  let pristine =
    List.map
      (fun n -> (n, Imk_storage.Disk.find env.Testkit.disk n))
      [ Testkit.vmlinux_path env; Testkit.relocs_path env ]
  in
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg
      ~mem_bytes:(64 * 1024 * 1024) ~seed:0L ()
  in
  let run kind ~seed =
    let disk = Imk_storage.Disk.create () in
    List.iter (fun (n, b) -> Imk_storage.Disk.add disk ~name:n b) pristine;
    let inject =
      match kind with
      | None -> None
      | Some k ->
          (I.arm k ~seed ~disk ~kernel_path:(Testkit.vmlinux_path env)
             ~relocs_path:(Testkit.relocs_path env) ())
            .I.inject
    in
    let ctx = { S.cache = Imk_storage.Page_cache.create disk; inject;
                plans = Some t } in
    S.supervise ~seed:(Int64.of_int seed) ~ctx vm
  in
  (* interleave clean and corrupted runs against the same plan cache *)
  for seed = 1 to 3 do
    let clean = run None ~seed in
    (match clean.S.outcome with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "clean run failed: %s"
                   (Imk_fault.Failure.describe f));
    List.iter
      (fun kind ->
        let r = run (Some kind) ~seed in
        match r.S.outcome with
        | Error _ -> ()
        | Ok _ ->
            check bool "armed run has recovery events" true (r.S.events <> []))
      [ I.Flip_image_magic; I.Truncate_image; I.Flip_relocs_magic ]
  done

(* ---------- immutability and disk integrity ---------- *)

let crc b = Imk_util.Crc.crc32 b 0 (Bytes.length b)

let test_plans_immutable_across_boots () =
  let env = Testkit.make_env ~variant:Imk_kernel.Config.Fgkaslr () in
  let t = PC.create () in
  let b = env.Testkit.built.Imk_kernel.Image.vmlinux in
  let plan = PC.elf_plan t ~path:(Testkit.vmlinux_path env) b in
  let fingerprint () =
    List.map
      (fun (s : Imk_elf.Types.section) -> (s.Imk_elf.Types.name, crc s.Imk_elf.Types.data))
      plan.PC.alloc
  in
  let before = fingerprint () in
  List.iter
    (fun seed ->
      ignore (Testkit.boot ~rando:Vm_config.Rando_fgkaslr ~plans:t ~seed env))
    [ 1L; 2L; 3L ];
  check bool "plan section bytes untouched" true (before = fingerprint ())

let test_disk_unchanged_by_cached_boots () =
  (* satellite guard for the Page_cache/Disk aliasing hazard: boots read
     images through shared backing bytes; nothing on the boot path may
     write them. CRC every disk object around a fig9-style cell. *)
  let ws = small_ws () in
  let module W = Imk_harness.Workspace in
  let module C = Imk_kernel.Config in
  ignore (W.bzimage_path ws C.Aws C.Kaslr ~codec:"lz4" ~bz:Imk_kernel.Bzimage.Standard);
  let manifest () =
    List.map
      (fun n -> (n, crc (Imk_storage.Disk.find (W.disk ws) n)))
      (List.sort String.compare (Imk_storage.Disk.names (W.disk ws)))
  in
  let before = manifest () in
  ignore (fig9_cell ws ~jobs:2);
  check bool "disk contents unchanged" true (before = manifest ())

let () =
  Alcotest.run "imk_plan_cache"
    [
      ( "keying",
        [
          Alcotest.test_case "same object hits" `Quick test_hit_on_same_object;
          Alcotest.test_case "equal copy hits via crc" `Quick
            test_hit_on_equal_copy;
          Alcotest.test_case "content change misses" `Quick
            test_miss_on_content_change;
          Alcotest.test_case "failed build not cached" `Quick
            test_failed_build_not_cached;
          Alcotest.test_case "bz + relocs keying" `Quick
            test_bz_and_relocs_keying;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "direct boots identical" `Quick
            test_cached_uncached_identical_direct;
          Alcotest.test_case "bz boots identical" `Quick
            test_cached_uncached_identical_bz;
          Testkit.to_alcotest qcheck_cached_matches_uncached;
          Alcotest.test_case "boot_many invariant (cache x jobs)" `Quick
            test_boot_many_invariant_cache_and_jobs;
        ] );
      ( "fault transparency",
        [
          Alcotest.test_case "corruption never sees stale plan" `Quick
            test_corruption_never_sees_stale_plan;
          Alcotest.test_case "supervised campaign, shared plans" `Quick
            test_supervised_campaign_with_shared_plans;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "plans immutable across boots" `Quick
            test_plans_immutable_across_boots;
          Alcotest.test_case "disk unchanged by cached boots" `Quick
            test_disk_unchanged_by_cached_boots;
        ] );
    ]
