(* Benchmark harness: regenerates every table and figure of the paper
   (via Imk_harness.Experiments) and runs real-CPU micro-benchmarks of the
   primitive operations with Bechamel.

   Usage:
     bench/main.exe                 run everything (default runs/config)
     bench/main.exe --exp fig9      one experiment
     bench/main.exe --runs 100      paper-strength repetitions
     bench/main.exe --functions 400 smaller synthetic kernels (smoke)
     bench/main.exe --jobs 4        fan boots out over 4 domains
     bench/main.exe --exp micro     only the Bechamel micro-benchmarks

   Each experiment also writes BENCH_<id>.json (wall-clock seconds and
   the per-row virtual boot-time means) into the current directory. *)

let runs = ref 20
let exps = ref []
let functions = ref None
let scale = ref 16
let jobs = ref (Imk_util.Par.default_jobs ())

let usage () =
  prerr_endline
    "usage: main.exe [--exp <id>]... [--runs N] [--functions N] [--scale N] [--jobs N]\n\
     experiments: table1 fig3 fig4 fig5 fig6 fig9 fig10 fig11 qemu throughput security faults\n\
     \             ablation-kallsyms ablation-orc ablation-page-sharing ablation-rerando ablation-zygote ablation-unikernel ablation-devices micro all";
  exit 2

let rec parse = function
  | [] -> ()
  | "--exp" :: v :: rest ->
      exps := v :: !exps;
      parse rest
  | "--runs" :: v :: rest ->
      runs := int_of_string v;
      parse rest
  | "--functions" :: v :: rest ->
      functions := Some (int_of_string v);
      parse rest
  | "--scale" :: v :: rest ->
      scale := int_of_string v;
      parse rest
  | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      parse rest
  | _ -> usage ()

let print_output (o : Imk_harness.Experiments.output) =
  Printf.printf "\n=== %s ===\n" o.Imk_harness.Experiments.title;
  Imk_util.Table.print o.Imk_harness.Experiments.table;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) o.Imk_harness.Experiments.notes;
  flush stdout

(* run one experiment under the wall clock and drop BENCH_<id>.json next
   to the invocation — the real-time cost of the simulation, as opposed
   to the virtual boot times in the table itself *)
let timed_experiment id
    (f : ?runs:int -> Imk_harness.Workspace.t -> Imk_harness.Experiments.output)
    ws =
  let t0 = Unix.gettimeofday () in
  let o = f ~runs:!runs ws in
  let wall = Unix.gettimeofday () -. t0 in
  print_output o;
  let json =
    Imk_harness.Telemetry.to_json ~experiment:id ~runs:!runs ~jobs:!jobs
      ~scale:!scale ~functions:!functions ~wall_clock_s:wall
      (Imk_harness.Telemetry.boot_means o)
  in
  let path = "BENCH_" ^ id ^ ".json" in
  Imk_harness.Telemetry.write_file path json;
  Printf.printf "  wall clock: %.2f s (jobs=%d) -> %s\n" wall !jobs path;
  flush stdout

(* --- Bechamel micro-benchmarks: the primitive costs behind the cost
   model, measured on the real CPU --- *)

let micro () =
  let open Bechamel in
  let small_cfg () =
    {
      (Imk_kernel.Config.make ~scale:1 Imk_kernel.Config.Aws Imk_kernel.Config.Kaslr)
      with Imk_kernel.Config.functions = 400;
    }
  in
  let input = (Imk_kernel.Image.build (small_cfg ())).Imk_kernel.Image.vmlinux in
  let sample = Bytes.sub input 0 (min (256 * 1024) (Bytes.length input)) in
  let codec_tests =
    List.concat_map
      (fun codec ->
        let open Imk_compress in
        let compressed = codec.Codec.compress sample in
        [
          Test.make
            ~name:(codec.Codec.name ^ "-compress-256k")
            (Staged.stage (fun () -> ignore (codec.Codec.compress sample)));
          Test.make
            ~name:(codec.Codec.name ^ "-decompress-256k")
            (Staged.stage (fun () -> ignore (codec.Codec.decompress compressed)));
        ])
      [ Imk_compress.Lz4.codec; Imk_compress.Gzip.codec ]
  in
  let reloc_test =
    let built = Imk_kernel.Image.build (small_cfg ()) in
    Test.make ~name:"kaslr-apply-relocs"
      (Staged.stage (fun () ->
           let mem = Imk_memory.Guest_mem.create ~size:(64 * 1024 * 1024) in
           let phys = Imk_memory.Addr.default_phys_load in
           Imk_randomize.Loadelf.place mem built.Imk_kernel.Image.elf
             ~phys_load:phys ~plan:None;
           Imk_randomize.Kaslr.apply ~mem ~relocs:built.Imk_kernel.Image.relocs
             ~site_pa:(fun va -> va - Imk_memory.Addr.link_base + phys)
             ~new_va_of:(Imk_randomize.Kaslr.delta_new_va ~delta:0x200000)))
  in
  let shuffle_test =
    let rng = Imk_entropy.Prng.create ~seed:3L in
    let sections =
      Array.init 4000 (fun i -> (Imk_memory.Addr.link_base + (i * 512), 512))
    in
    Test.make ~name:"fgkaslr-plan-4000-sections"
      (Staged.stage (fun () ->
           ignore
             (Imk_randomize.Fgkaslr.make_plan rng ~sections
                ~text_base:Imk_memory.Addr.link_base)))
  in
  let elf_test =
    Test.make ~name:"elf-parse"
      (Staged.stage (fun () -> ignore (Imk_elf.Parser.parse input)))
  in
  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s/%s"
      (codec_tests @ [ reloc_test; shuffle_test; elf_test ])
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Micro-benchmarks (real CPU, Bechamel) ===\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-42s %14.0f ns/run\n" name est)
    (List.sort compare !rows);
  flush stdout

let () =
  parse (List.tl (Array.to_list Sys.argv));
  jobs := max 1 !jobs;
  Imk_harness.Boot_runner.default_jobs := !jobs;
  let requested = if !exps = [] then [ "all" ] else List.rev !exps in
  let ws =
    Imk_harness.Workspace.create ~scale:!scale ?functions_override:!functions ()
  in
  List.iter
    (fun id ->
      match id with
      | "all" ->
          List.iter
            (fun eid ->
              match Imk_harness.Experiments.by_id eid with
              | Some f -> timed_experiment eid f ws
              | None -> assert false)
            Imk_harness.Experiments.all_ids;
          micro ()
      | "micro" -> micro ()
      | id -> (
          match Imk_harness.Experiments.by_id id with
          | Some f -> timed_experiment id f ws
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              usage ()))
    requested
