(* Benchmark harness: regenerates every table and figure of the paper
   (via Imk_harness.Experiments) and runs real-CPU micro-benchmarks of the
   primitive operations with Bechamel.

   Usage:
     bench/main.exe                 run everything (default runs/config)
     bench/main.exe --exp fig9      one experiment
     bench/main.exe --runs 100      paper-strength repetitions
     bench/main.exe --functions 400 smaller synthetic kernels (smoke)
     bench/main.exe --jobs 4        fan boots out over 4 domains
     bench/main.exe --exp fig9 --baseline BENCH_fig9.json
                                    diff against a saved run; exit 1 on
                                    p50 regressions (--threshold PCT)
     bench/main.exe --exp fig5 --trace boot.json
                                    dump one boot's span timeline in
                                    Chrome tracing format
     bench/main.exe --exp micro     only the Bechamel micro-benchmarks
     bench/main.exe --no-plan-cache disable the shared boot-plan cache
                                    (A/B baseline; telemetry is
                                    bit-identical either way)
     bench/main.exe --contend 2,4   capacities for the fig9 contention
                                    row: disk-bandwidth units, decompress
                                    slots (default 1,1 — full contention)
     bench/main.exe --exp diffcheck --mutate
                                    plant an off-by-one in the cross-path
                                    oracle; the campaign must report it
                                    caught and print a shrunk reproducer

   Each experiment also writes BENCH_<id>.json (schema 2: wall-clock
   seconds plus per-row boot-time distributions and per-phase
   breakdowns) into the current directory. *)

let runs = ref 20
let exps = ref []
let functions = ref None
let scale = ref 16
let jobs = ref (Imk_util.Par.default_jobs ())
let baseline_path = ref None
let threshold = ref Imk_harness.Telemetry.default_threshold_pct
let trace_path = ref None
let no_plan_cache = ref false
let mutate = ref false
let requests = ref None
let contend = ref None

let usage () =
  prerr_endline
    "usage: main.exe [--exp <id>]... [--runs N] [--functions N] [--scale N] [--jobs N]\n\
     \               [--baseline BENCH_<id>.json] [--threshold PCT] [--trace out.json]\n\
     \               [--no-plan-cache] [--mutate] [--requests N] [--contend D,S]\n\
     experiments: table1 fig3 fig4 fig5 fig6 fig9 fig10 fig11 qemu throughput security faults resilience diffcheck fleet\n\
     \             ablation-kallsyms ablation-orc ablation-page-sharing ablation-rerando ablation-zygote ablation-unikernel ablation-devices micro all";
  exit 2

let rec parse = function
  | [] -> ()
  | "--exp" :: v :: rest ->
      exps := v :: !exps;
      parse rest
  | "--runs" :: v :: rest ->
      runs := int_of_string v;
      parse rest
  | "--functions" :: v :: rest ->
      functions := Some (int_of_string v);
      parse rest
  | "--scale" :: v :: rest ->
      scale := int_of_string v;
      parse rest
  | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      parse rest
  | "--baseline" :: v :: rest ->
      baseline_path := Some v;
      parse rest
  | "--threshold" :: v :: rest ->
      threshold := float_of_string v;
      parse rest
  | "--trace" :: v :: rest ->
      trace_path := Some v;
      parse rest
  | "--no-plan-cache" :: rest ->
      no_plan_cache := true;
      parse rest
  | "--mutate" :: rest ->
      mutate := true;
      parse rest
  | "--requests" :: v :: rest ->
      requests := Some (int_of_string v);
      parse rest
  | "--contend" :: v :: rest ->
      (match String.split_on_char ',' v with
      | [ d; s ] -> contend := Some (int_of_string d, int_of_string s)
      | _ -> usage ());
      parse rest
  | _ -> usage ()

let print_output (o : Imk_harness.Experiments.output) =
  Printf.printf "\n=== %s ===\n" o.Imk_harness.Experiments.title;
  Imk_util.Table.print o.Imk_harness.Experiments.table;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) o.Imk_harness.Experiments.notes;
  flush stdout

(* --baseline: read once up front so a missing or malformed file fails
   before any experiment burns wall-clock time. Any parse failure must
   fail the gate, not pass it — so no handler here. *)
let baseline =
  lazy
    (Option.map
       (fun p ->
         Imk_harness.Telemetry.of_json (Imk_harness.Telemetry.read_file p))
       !baseline_path)

let gate_failed = ref false

(* Diff one experiment's fresh rows against the baseline file and print
   the per-label / per-phase p50 delta table. Only headline totals trip
   the gate; phase rows say where a regression lives. *)
let check_baseline id (current : Imk_harness.Telemetry.file) =
  match Lazy.force baseline with
  | None -> ()
  | Some base when base.Imk_harness.Telemetry.experiment <> id ->
      Printf.printf
        "  baseline: file is for experiment %s, not %s — skipping the gate\n"
        base.Imk_harness.Telemetry.experiment id
  | Some base ->
      let module T = Imk_harness.Telemetry in
      let deltas = T.diff ~threshold_pct:!threshold ~baseline:base ~current () in
      let tbl =
        Imk_util.Table.create
          ~headers:
            [ "label"; "phase"; "base p50 ms"; "cur p50 ms"; "delta %"; "gate" ]
      in
      List.iter
        (fun (d : T.delta) ->
          Imk_util.Table.add_row tbl
            [
              d.T.d_label;
              Option.value ~default:"total" d.T.d_phase;
              Printf.sprintf "%.4f" d.T.baseline_p50;
              Printf.sprintf "%.4f" d.T.current_p50;
              Printf.sprintf "%+.2f" d.T.change_pct;
              (if d.T.regression then "REGRESSION"
               else if d.T.degenerate then "n<2"
               else "ok");
            ])
        deltas;
      Printf.printf "\n  --- baseline diff (%s, threshold %+.1f%% on total p50) ---\n"
        id !threshold;
      Imk_util.Table.print tbl;
      let only_base, only_cur = T.missing_labels ~baseline:base ~current in
      List.iter
        (fun l -> Printf.printf "  note: label %S only in baseline\n" l)
        only_base;
      List.iter
        (fun l -> Printf.printf "  note: label %S only in current run\n" l)
        only_cur;
      (match T.regressions deltas with
      | [] -> Printf.printf "  baseline: no regressions\n"
      | rs ->
          gate_failed := true;
          Printf.printf "  baseline: %d regression(s) beyond %+.1f%%\n"
            (List.length rs) !threshold);
      flush stdout

(* --trace: tap the first completed boot of the run via the ambient
   Boot_runner sink. The sink fires on whatever domain booted (a worker
   under --jobs), so the capture is mutex-guarded; only the first trace
   across all requested experiments is kept. *)
let trace_written = ref false

let with_trace_capture id f =
  match !trace_path with
  | Some path when not !trace_written ->
      let mu = Mutex.create () in
      let captured = ref None in
      Imk_harness.Boot_runner.trace_sink :=
        Some
          (fun tr ->
            Mutex.lock mu;
            (match !captured with
            | None -> captured := Some tr
            | Some _ -> ());
            Mutex.unlock mu);
      Fun.protect
        ~finally:(fun () -> Imk_harness.Boot_runner.trace_sink := None)
        (fun () ->
          let r = f () in
          (match !captured with
          | Some tr ->
              Imk_vclock.Trace_export.write_file tr ~path
                ~process_name:(id ^ " boot");
              trace_written := true;
              Printf.printf "  trace: first %s boot -> %s\n" id path
          | None ->
              Printf.printf "  trace: %s booted nothing, no trace written\n" id);
          r)
  | _ -> f ()

(* run one experiment under the wall clock and drop BENCH_<id>.json next
   to the invocation — the real-time cost of the simulation, as opposed
   to the virtual boot times in the table itself *)
let timed_experiment id
    (f : ?runs:int -> Imk_harness.Workspace.t -> Imk_harness.Experiments.output)
    ws =
  let t0 = Unix.gettimeofday () in
  let o = with_trace_capture id (fun () -> f ~runs:!runs ws) in
  let wall = Unix.gettimeofday () -. t0 in
  print_output o;
  (* correctness campaigns (diffcheck, resilience) flag their failures in
     notes with fixed markers; a flagged note must fail the invocation,
     not just print — CI runs these as gates *)
  let failing_note n =
    let has_prefix p =
      String.length n >= String.length p && String.sub n 0 (String.length p) = p
    in
    has_prefix "DIVERGENCE" || has_prefix "MUTATE NOT CAUGHT"
    || has_prefix "SOUNDNESS VIOLATION" || has_prefix "UNRECOVERED"
  in
  if List.exists failing_note o.Imk_harness.Experiments.notes then begin
    gate_failed := true;
    Printf.printf "  gate: %s reported a failing note\n" id
  end;
  let rows = Imk_harness.Telemetry.rows o in
  (match
     ( rows,
       Imk_harness.Telemetry.value_column
         (Imk_util.Table.headers o.Imk_harness.Experiments.table) )
   with
  | [], Some _ ->
      Printf.printf
        "  warning: %s renders a millisecond column but exported no telemetry \
         rows\n"
        id
  | _ -> ());
  let json =
    Imk_harness.Telemetry.to_json ~experiment:id ~runs:!runs ~jobs:!jobs
      ~scale:!scale ~functions:!functions ~wall_clock_s:wall rows
  in
  let path = "BENCH_" ^ id ^ ".json" in
  Imk_harness.Telemetry.write_file path json;
  Printf.printf "  wall clock: %.2f s (jobs=%d) -> %s (schema %d)\n" wall !jobs
    path Imk_harness.Telemetry.schema_version;
  check_baseline id (Imk_harness.Telemetry.of_json json);
  flush stdout

(* --- Bechamel micro-benchmarks: the primitive costs behind the cost
   model, measured on the real CPU --- *)

let micro () =
  let open Bechamel in
  let small_cfg () =
    {
      (Imk_kernel.Config.make ~scale:1 Imk_kernel.Config.Aws Imk_kernel.Config.Kaslr)
      with Imk_kernel.Config.functions = 400;
    }
  in
  let built = Imk_kernel.Image.build (small_cfg ()) in
  let input = built.Imk_kernel.Image.vmlinux in
  let sample = Bytes.sub input 0 (min (256 * 1024) (Bytes.length input)) in
  let codec_tests =
    List.concat_map
      (fun codec ->
        let open Imk_compress in
        let compressed = codec.Codec.compress sample in
        [
          Test.make
            ~name:(codec.Codec.name ^ "-compress-256k")
            (Staged.stage (fun () -> ignore (codec.Codec.compress sample)));
          Test.make
            ~name:(codec.Codec.name ^ "-decompress-256k")
            (Staged.stage (fun () -> ignore (codec.Codec.decompress compressed)));
        ])
      [ Imk_compress.Lz4.codec; Imk_compress.Gzip.codec ]
  in
  let reloc_test =
    Test.make ~name:"kaslr-apply-relocs"
      (Staged.stage (fun () ->
           let mem = Imk_memory.Guest_mem.create ~size:(64 * 1024 * 1024) in
           let phys = Imk_memory.Addr.default_phys_load in
           Imk_randomize.Loadelf.place mem built.Imk_kernel.Image.elf
             ~phys_load:phys ~plan:None;
           Imk_randomize.Kaslr.apply ~mem ~relocs:built.Imk_kernel.Image.relocs
             ~site_pa:(fun va -> va - Imk_memory.Addr.link_base + phys)
             ~new_va_of:(Imk_randomize.Kaslr.delta_new_va ~delta:0x200000)))
  in
  let shuffle_test =
    let rng = Imk_entropy.Prng.create ~seed:3L in
    let sections =
      Array.init 4000 (fun i -> (Imk_memory.Addr.link_base + (i * 512), 512))
    in
    Test.make ~name:"fgkaslr-plan-4000-sections"
      (Staged.stage (fun () ->
           ignore
             (Imk_randomize.Fgkaslr.make_plan rng ~sections
                ~text_base:Imk_memory.Addr.link_base)))
  in
  (* the two derivations the boot-plan cache amortizes: what one cache
     hit saves per boot, in real ns *)
  let elf_test =
    Test.make ~name:"elf-parse"
      (Staged.stage (fun () -> ignore (Imk_elf.Parser.parse input)))
  in
  let relocs_decode_test =
    let encoded = built.Imk_kernel.Image.relocs_bytes in
    Test.make ~name:"relocs-decode"
      (Staged.stage (fun () -> ignore (Imk_elf.Relocation.decode encoded)))
  in
  (* the two per-boot byte-moving hot loops the table-driven decoder and
     batched relocation apply target: raw inflate (Huffman + LZ77, no
     frame/CRC overhead) and raw relocation patching on a pre-placed
     image (delta 0 keeps the apply idempotent across iterations while
     doing every read, validation and store) *)
  let inflate_test =
    let payload = Imk_compress.Gzip.encode_payload sample in
    let orig_len = Bytes.length sample in
    Test.make ~name:"inflate"
      (Staged.stage (fun () ->
           ignore (Imk_compress.Gzip.decode_payload payload ~orig_len)))
  in
  (* the zero-copy boot-path primitives: the slice-by-8 CRC against its
     byte-at-a-time reference (every frame check and plan-cache probe
     pays this), and the sink decode against the allocating copy decode
     it replaces in the loader *)
  let crc32_test =
    Test.make ~name:"crc32-256k"
      (Staged.stage (fun () ->
           ignore (Imk_util.Crc.crc32 sample 0 (Bytes.length sample))))
  in
  let crc32_ref_test =
    Test.make ~name:"crc32-ref-256k"
      (Staged.stage (fun () ->
           ignore (Imk_util.Crc.crc32_ref sample 0 (Bytes.length sample))))
  in
  let gzip_into_test =
    let compressed = Imk_compress.Gzip.codec.Imk_compress.Codec.compress sample in
    let dst = Bytes.make (Bytes.length sample) '\000' in
    Test.make ~name:"gzip-into"
      (Staged.stage (fun () ->
           ignore
             (Imk_compress.Gzip.codec.Imk_compress.Codec.decompress_into
                compressed ~dst ~dst_off:0)))
  in
  let reloc_apply_test =
    let mem = Imk_memory.Guest_mem.create ~size:(64 * 1024 * 1024) in
    let phys = Imk_memory.Addr.default_phys_load in
    Imk_randomize.Loadelf.place mem built.Imk_kernel.Image.elf ~phys_load:phys
      ~plan:None;
    Test.make ~name:"reloc-apply"
      (Staged.stage (fun () ->
           Imk_randomize.Kaslr.apply ~mem ~relocs:built.Imk_kernel.Image.relocs
             ~site_pa:(fun va -> va - Imk_memory.Addr.link_base + phys)
             ~new_va_of:(Imk_randomize.Kaslr.delta_new_va ~delta:0)))
  in
  (* the snapshot pair: capture walks the booted guest's dirty ranges
     (copy-free on the tracker), restore rebuilds a fresh guest from the
     frames — the zygote-pool hot path *)
  let boot_result =
    let open Imk_monitor in
    let cfg = small_cfg () in
    let disk = Imk_storage.Disk.create () in
    let cache = Imk_storage.Page_cache.create disk in
    Imk_storage.Disk.add disk ~name:"bench.vmlinux"
      built.Imk_kernel.Image.vmlinux;
    Imk_storage.Disk.add disk ~name:"bench.relocs"
      built.Imk_kernel.Image.relocs_bytes;
    let vm =
      Vm_config.make ~rando:Vm_config.Rando_kaslr
        ~relocs_path:(Some "bench.relocs") ~mem_bytes:(64 * 1024 * 1024)
        ~kernel_path:"bench.vmlinux" ~kernel_config:cfg ~seed:7L ()
    in
    let clock = Imk_vclock.Clock.create () in
    let trace = Imk_vclock.Trace.create clock in
    let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
    Vmm.boot ch cache vm
  in
  let snapshot_capture_test =
    Test.make ~name:"snapshot-capture"
      (Staged.stage (fun () ->
           ignore (Imk_monitor.Snapshot.capture boot_result)))
  in
  let snapshot_restore_test =
    let snap = Imk_monitor.Snapshot.capture boot_result in
    let clock = Imk_vclock.Clock.create () in
    let trace = Imk_vclock.Trace.create clock in
    let ch = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
    Test.make ~name:"snapshot-restore"
      (Staged.stage (fun () ->
           ignore (Imk_monitor.Snapshot.restore ch snap ~working_set_pages:64)))
  in
  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s/%s"
      (codec_tests
      @ [
          reloc_test; shuffle_test; elf_test; relocs_decode_test; inflate_test;
          crc32_test; crc32_ref_test; gzip_into_test; reloc_apply_test;
          snapshot_capture_test; snapshot_restore_test;
        ])
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Micro-benchmarks (real CPU, Bechamel) ===\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-42s %14.0f ns/run\n" name est)
    (List.sort compare !rows);
  flush stdout

let () =
  parse (List.tl (Array.to_list Sys.argv));
  jobs := max 1 !jobs;
  Imk_harness.Boot_runner.default_jobs := !jobs;
  (match !contend with
  | None -> ()
  | Some (d, s) ->
      if d < 1 || s < 1 then usage ();
      Imk_harness.Boot_runner.contend_capacities := (d, s));
  let requested = if !exps = [] then [ "all" ] else List.rev !exps in
  let ws =
    Imk_harness.Workspace.create ~scale:!scale ?functions_override:!functions
      ~plan_cache:(not !no_plan_cache) ()
  in
  List.iter
    (fun id ->
      match id with
      | "all" ->
          List.iter
            (fun eid ->
              match Imk_harness.Experiments.by_id eid with
              | Some f -> timed_experiment eid f ws
              | None -> assert false)
            Imk_harness.Experiments.all_ids;
          micro ()
      | "micro" -> micro ()
      (* --mutate only changes diffcheck, and only when asked: by_id keeps
         the healthy catalogue for --exp all *)
      | "diffcheck" when !mutate ->
          timed_experiment "diffcheck"
            (fun ?runs ws -> Imk_harness.Experiments.diffcheck ?runs ~mutate:true ws)
            ws
      (* --requests only applies to the fleet campaign; by_id keeps the
         default for --exp all *)
      | "fleet" when !requests <> None ->
          timed_experiment "fleet"
            (fun ?runs ws ->
              Imk_harness.Experiments.fleet ?runs ?requests:!requests ws)
            ws
      | id -> (
          match Imk_harness.Experiments.by_id id with
          | Some f -> timed_experiment id f ws
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              usage ()))
    requested;
  if !gate_failed then exit 1
