#!/bin/sh
# Tier-1 gate, in one command: build everything, run all test suites,
# then lint. CI and pre-commit both call this; if it exits 0 the tree
# is in the state ROADMAP.md calls "tier-1 green".

set -eu
cd "$(dirname "$0")"

dune build @all
dune runtest
./lint.sh
echo "check.sh: tier-1 green"
