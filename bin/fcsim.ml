(* fcsim: boot a simulated microVM, the way the paper's evaluation invokes
   Firecracker.

   Examples:
     fcsim --kernel aws-kaslr --rando kaslr
     fcsim --kernel ubuntu-fgkaslr --rando fgkaslr --runs 20
     fcsim --kernel lupine-nokaslr --method lz4 --cold
     fcsim --kernel aws-kaslr --rando kaslr --method none-opt --vmm qemu *)

open Cmdliner

let parse_kernel s =
  match String.split_on_char '-' s with
  | [ p; v ] -> (
      let preset =
        match p with
        | "lupine" -> Some Imk_kernel.Config.Lupine
        | "aws" -> Some Imk_kernel.Config.Aws
        | "ubuntu" -> Some Imk_kernel.Config.Ubuntu
        | _ -> None
      in
      let variant =
        match v with
        | "nokaslr" -> Some Imk_kernel.Config.Nokaslr
        | "kaslr" -> Some Imk_kernel.Config.Kaslr
        | "fgkaslr" -> Some Imk_kernel.Config.Fgkaslr
        | _ -> None
      in
      match (preset, variant) with
      | Some p, Some v -> Ok (p, v)
      | _ -> Error (`Msg ("unknown kernel " ^ s)))
  | _ -> Error (`Msg "kernel must be <preset>-<variant>, e.g. aws-kaslr")

let kernel_conv =
  Arg.conv
    ( parse_kernel,
      fun ppf (p, v) ->
        Format.fprintf ppf "%s-%s"
          (Imk_kernel.Config.preset_name p)
          (Imk_kernel.Config.variant_name v) )

let kernel =
  Arg.(
    required
    & opt (some kernel_conv) None
    & info [ "kernel"; "k" ] ~docv:"PRESET-VARIANT"
        ~doc:"Guest kernel, e.g. aws-kaslr, lupine-fgkaslr, ubuntu-nokaslr.")

let rando =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("kaslr", `Kaslr); ("fgkaslr", `Fgkaslr) ]) `Off
    & info [ "rando" ] ~docv:"MODE"
        ~doc:"Randomization: off, kaslr or fgkaslr. In-monitor for direct \
              boots, self-randomization for bzImage methods.")

let method_ =
  Arg.(
    value
    & opt
        (enum
           [ ("direct", `Direct); ("lz4", `Lz4); ("gzip", `Gzip);
             ("none", `None); ("none-opt", `None_opt) ])
        `Direct
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:"Boot method: direct (uncompressed vmlinux), lz4 or gzip \
              (bzImage), none (unoptimized compression-none bzImage), \
              none-opt (optimized compression-none bzImage).")

let mem_mib =
  Arg.(
    value & opt int 256
    & info [ "mem" ] ~docv:"MIB" ~doc:"Guest memory in MiB (paper default 256).")

let runs =
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Measured boots.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Entropy seed.")

let cold =
  Arg.(
    value & flag
    & info [ "cold" ] ~doc:"Drop the page cache before each boot (Figure 4's \
                            cold-cache protocol). Default warms it first.")

let vmm =
  Arg.(
    value
    & opt (enum [ ("firecracker", `Fc); ("qemu", `Qemu) ]) `Fc
    & info [ "vmm" ] ~docv:"VMM" ~doc:"Cost profile: firecracker or qemu.")

let cmdline =
  Arg.(
    value
    & opt string "console=ttyS0 reboot=k panic=1 pci=off"
    & info [ "cmdline" ] ~docv:"ARGS"
        ~doc:"Guest kernel command line. The bootstrap loader honours \
              nokaslr and nofgkaslr flags (direct-boot in-monitor \
              randomization is host policy and ignores them).")

let with_devices =
  Arg.(
    value & flag
    & info [ "devices" ]
        ~doc:"Attach a Lambda-style device set (serial, virtio-blk rootfs, \
              virtio-net).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the boot timeline as Chrome tracing JSON (load in \
              chrome://tracing or Perfetto).")

let deferred_kallsyms =
  Arg.(
    value & flag
    & info [ "deferred-kallsyms" ]
        ~doc:"Defer the FGKASLR kallsyms fixup to first access (§4.3).")

let functions =
  Arg.(
    value
    & opt (some int) None
    & info [ "functions" ] ~docv:"N"
        ~doc:"Override every kernel's function count (the diffcheck \
              shrinker's size knob — its reproducer commands carry this \
              flag so the boot matches the minimized campaign point).")

let jobs =
  Arg.(
    value
    & opt int (Imk_util.Par.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for repeated boots (--runs). Results are \
              bit-identical for any N; defaults to the recommended domain \
              count.")

let run kernel rando method_ mem_mib runs seed cold vmm cmdline with_devices
    trace_out deferred_kallsyms functions jobs =
  let preset, variant = kernel in
  let ws = Imk_harness.Workspace.create ?functions_override:functions () in
  let kernel_config = Imk_harness.Workspace.config ws preset variant in
  let rando_mode =
    match rando with
    | `Off -> Imk_monitor.Vm_config.Rando_off
    | `Kaslr -> Imk_monitor.Vm_config.Rando_kaslr
    | `Fgkaslr -> Imk_monitor.Vm_config.Rando_fgkaslr
  in
  let kernel_path, relocs_path, flavor =
    match method_ with
    | `Direct ->
        ( Imk_harness.Workspace.vmlinux_path ws preset variant,
          (if rando_mode = Imk_monitor.Vm_config.Rando_off then None
           else Some (Imk_harness.Workspace.relocs_path ws preset variant)),
          None )
    | `Lz4 ->
        ( Imk_harness.Workspace.bzimage_path ws preset variant ~codec:"lz4"
            ~bz:Imk_kernel.Bzimage.Standard,
          None,
          Some Imk_monitor.Vm_config.In_monitor_fgkaslr )
    | `Gzip ->
        ( Imk_harness.Workspace.bzimage_path ws preset variant ~codec:"gzip"
            ~bz:Imk_kernel.Bzimage.Standard,
          None,
          Some Imk_monitor.Vm_config.In_monitor_fgkaslr )
    | `None ->
        ( Imk_harness.Workspace.bzimage_path ws preset variant ~codec:"none"
            ~bz:Imk_kernel.Bzimage.Standard,
          None,
          Some Imk_monitor.Vm_config.In_monitor_fgkaslr )
    | `None_opt ->
        ( Imk_harness.Workspace.bzimage_path ws preset variant ~codec:"none"
            ~bz:Imk_kernel.Bzimage.None_optimized,
          None,
          Some Imk_monitor.Vm_config.In_monitor_fgkaslr )
  in
  let profile =
    match vmm with
    | `Fc -> Imk_monitor.Profiles.firecracker
    | `Qemu -> Imk_monitor.Profiles.qemu
  in
  let devices =
    if not with_devices then []
    else begin
      Imk_storage.Disk.add
        (Imk_harness.Workspace.disk ws)
        ~name:"rootfs.img"
        (Imk_kernel.Rootfs.make ~size:(512 * 1024) ~seed:7L);
      [
        Imk_monitor.Devices.Serial;
        Imk_monitor.Devices.Virtio_blk { image = "rootfs.img" };
        Imk_monitor.Devices.Virtio_net;
      ]
    end
  in
  let make_vm ~seed =
    Imk_monitor.Vm_config.make ?flavor ~profile ~rando:rando_mode
      ~relocs_path ~boot_args:cmdline ~devices
      ~kallsyms:
        (if deferred_kallsyms then Imk_monitor.Vm_config.Kallsyms_deferred
         else Imk_monitor.Vm_config.Kallsyms_eager)
      ~mem_bytes:(mem_mib * 1024 * 1024)
      ~kernel_path ~kernel_config ~seed ()
  in
  if not cold then Imk_harness.Workspace.warm_all ws;
  (* one verbose boot with the requested seed *)
  let trace, result =
    Imk_harness.Boot_runner.boot_once ~jitter:false ~seed:(Int64.of_int seed)
      ~cache:(Imk_harness.Workspace.cache ws)
      (make_vm ~seed:(Int64.of_int seed))
  in
  let p = result.Imk_monitor.Vmm.params in
  Printf.printf "booted %s via %s (%s)\n" kernel_config.Imk_kernel.Config.name
    (match method_ with
    | `Direct -> "direct boot"
    | `Lz4 -> "bzImage/lz4"
    | `Gzip -> "bzImage/gzip"
    | `None -> "bzImage/compression-none"
    | `None_opt -> "bzImage/none-optimized")
    profile.Imk_monitor.Profiles.name;
  Printf.printf "  virt base    %#x (offset %#x)\n"
    p.Imk_guest.Boot_params.virt_base
    (Imk_guest.Boot_params.delta p);
  Printf.printf "  phys load    %#x\n" p.Imk_guest.Boot_params.phys_load;
  Printf.printf "  entry        %#x\n" p.Imk_guest.Boot_params.entry_va;
  let st = result.Imk_monitor.Vmm.stats in
  Printf.printf
    "  verified     %d functions, %d call sites, %d rodata ptrs, %d extab\n"
    st.Imk_guest.Runtime.functions_visited st.Imk_guest.Runtime.sites_verified
    st.Imk_guest.Runtime.rodata_verified st.Imk_guest.Runtime.extab_verified;
  List.iter
    (fun (phase, ns) ->
      Printf.printf "  %-16s %s\n"
        (Imk_vclock.Trace.phase_name phase)
        (Imk_util.Units.ms_string ns))
    (Imk_vclock.Trace.breakdown trace);
  Printf.printf "  %-16s %s\n" "Total"
    (Imk_util.Units.ms_string (Imk_vclock.Trace.total trace));
  (match trace_out with
  | None -> ()
  | Some path ->
      Imk_vclock.Trace_export.write_file trace ~path
        ~process_name:(kernel_config.Imk_kernel.Config.name ^ " boot");
      Printf.printf "trace written to %s\n" path);
  if runs > 1 then begin
    let stats =
      Imk_harness.Boot_runner.boot_many ~cold ~jobs
        ~arena:(Imk_harness.Workspace.arena ws) ~runs
        ~cache:(Imk_harness.Workspace.cache ws) ~make_vm ()
    in
    let s = stats.Imk_harness.Boot_runner.total in
    let ms = Imk_util.Units.ns_float_to_ms in
    Printf.printf "over %d boots: mean %.2f ms  min %.2f  max %.2f  sd %.2f\n"
      runs
      (ms s.Imk_util.Stats.mean)
      (ms s.Imk_util.Stats.min)
      (ms s.Imk_util.Stats.max)
      (ms s.Imk_util.Stats.stddev);
    Printf.printf "              p50 %.2f ms  p90 %.2f  p99 %.2f\n"
      (ms s.Imk_util.Stats.p50)
      (ms s.Imk_util.Stats.p90)
      (ms s.Imk_util.Stats.p99)
  end;
  0

let cmd =
  let doc = "boot a simulated microVM with in-monitor (FG)KASLR" in
  Cmd.v
    (Cmd.info "fcsim" ~doc)
    Term.(
      const run $ kernel $ rando $ method_ $ mem_mib $ runs $ seed $ cold
      $ vmm $ cmdline $ with_devices $ trace_out $ deferred_kallsyms
      $ functions $ jobs)

let () = exit (Cmd.eval' cmd)
