examples/attack_surface.ml: Array Imk_entropy Imk_harness Imk_kernel Imk_monitor Imk_randomize Imk_security Imk_util List Printf Vm_config Vmm
