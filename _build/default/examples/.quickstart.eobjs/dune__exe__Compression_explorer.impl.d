examples/compression_explorer.ml: Bytes Codec Imk_compress Imk_kernel Imk_util Imk_vclock List Printf Unix
