examples/quickstart.ml: Bytes Imk_elf Imk_guest Imk_kernel Imk_monitor Imk_storage Imk_util Imk_vclock List Printf
