examples/quickstart.mli:
