examples/serverless_pool.mli:
