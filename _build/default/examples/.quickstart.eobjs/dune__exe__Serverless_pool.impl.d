examples/serverless_pool.ml: Bytes Hashtbl Imk_guest Imk_harness Imk_kernel Imk_memory Imk_monitor Imk_util Imk_vclock Int64 List Printf Vm_config Vmm
