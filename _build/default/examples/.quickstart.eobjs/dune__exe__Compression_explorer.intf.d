examples/compression_explorer.mli:
