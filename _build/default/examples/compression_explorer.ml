(* Compression explorer: the ratio/speed trade-off behind Figures 3-6.

   Compresses a real synthetic kernel image with all six codecs, printing
   actual compressed sizes (real codec output) alongside modelled
   decompression time at paper scale — the two quantities whose tension
   drives the paper's §2.2 analysis: better ratio saves I/O on a cold
   cache, faster decompression wins once images are cached.

   Run with:  dune exec examples/compression_explorer.exe *)

let () =
  let cfg =
    Imk_kernel.Config.make Imk_kernel.Config.Aws Imk_kernel.Config.Kaslr
  in
  let built = Imk_kernel.Image.build cfg in
  let input =
    Bytes.cat built.Imk_kernel.Image.vmlinux built.Imk_kernel.Image.relocs_bytes
  in
  let modeled = Imk_kernel.Config.modeled_of_actual cfg in
  Printf.printf
    "input: %s vmlinux+relocs (models a %s kernel payload)\n\n"
    (Imk_util.Units.bytes_to_string (Bytes.length input))
    (Imk_util.Units.bytes_to_string (modeled (Bytes.length input)));
  let table =
    Imk_util.Table.create
      ~headers:
        [ "codec"; "compressed"; "ratio"; "compress s"; "decompress s";
          "modelled boot decompress" ]
  in
  let cm = Imk_vclock.Cost_model.default in
  List.iter
    (fun codec ->
      let open Imk_compress in
      let t0 = Unix.gettimeofday () in
      let compressed = codec.Codec.compress input in
      let t1 = Unix.gettimeofday () in
      let out = codec.Codec.decompress compressed in
      let t2 = Unix.gettimeofday () in
      assert (Bytes.equal out input);
      let ratio =
        float_of_int (Bytes.length input) /. float_of_int (Bytes.length compressed)
      in
      let boot_cost =
        Imk_vclock.Cost_model.decompress_cost cm ~codec:codec.Codec.name
          ~out_bytes:(modeled (Bytes.length input))
      in
      Imk_util.Table.add_row table
        [
          codec.Codec.name;
          Imk_util.Units.bytes_to_string (Bytes.length compressed);
          Printf.sprintf "%.2fx" ratio;
          Printf.sprintf "%.2f" (t1 -. t0);
          Printf.sprintf "%.2f" (t2 -. t1);
          Imk_util.Units.ms_string boot_cost;
        ])
    Imk_compress.Registry.bakeoff_codecs;
  Imk_util.Table.print table;
  Printf.printf
    "\n'compress s'/'decompress s' are real wall-clock seconds of these \
     OCaml codecs;\nthe last column is the calibrated boot-time cost at \
     paper scale (Figure 3's x-axis).\nLZ4 decompresses fastest — why \
     microVM kernels choose it, and why skipping\ndecompression entirely \
     (direct boot) is faster still once the image is cached.\n"
