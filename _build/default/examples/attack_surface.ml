(* Attack surface: what a single kernel-pointer leak is worth under each
   randomization scheme — the security story of §3.1 and §4.1 made
   concrete against real booted guests.

   The attacker model: a compromised container process atop the guest
   kernel (W^X + SMEP, so code reuse only), holding the distribution
   kernel image (link-time layout) and exactly one leaked address.

   Run with:  dune exec examples/attack_surface.exe *)

open Imk_monitor

let schemes =
  [
    ("nokaslr", Imk_kernel.Config.Nokaslr, Vm_config.Rando_off);
    ("kaslr", Imk_kernel.Config.Kaslr, Vm_config.Rando_kaslr);
    ("fgkaslr", Imk_kernel.Config.Fgkaslr, Vm_config.Rando_fgkaslr);
  ]

let () =
  let ws = Imk_harness.Workspace.create () in
  let preset = Imk_kernel.Config.Aws in
  Printf.printf "one leaked kernel pointer vs. three randomization schemes\n\n";

  (* entropy on paper first *)
  let built = Imk_harness.Workspace.built ws preset Imk_kernel.Config.Kaslr in
  let memsz =
    Imk_kernel.Config.modeled_of_actual built.Imk_kernel.Image.config
      (Imk_randomize.Loadelf.image_memsz built.Imk_kernel.Image.elf)
  in
  let fns =
    Imk_kernel.Config.modeled_of_actual built.Imk_kernel.Image.config
      built.Imk_kernel.Image.config.Imk_kernel.Config.functions
  in
  let k = Imk_security.Entropy_analysis.kaslr ~image_memsz:memsz in
  let f = Imk_security.Entropy_analysis.fgkaslr ~image_memsz:memsz ~functions:fns in
  Printf.printf "entropy at paper scale: KASLR %.1f bits (%d bases); FGKASLR \
                 adds %.0f bits of permutation\n\n"
    k.Imk_security.Entropy_analysis.base_bits
    k.Imk_security.Entropy_analysis.base_slots
    f.Imk_security.Entropy_analysis.permutation_bits;

  List.iter
    (fun (name, variant, rando) ->
      Imk_harness.Workspace.warm_all ws;
      let vm =
        Vm_config.make ~rando
          ~relocs_path:
            (if rando = Vm_config.Rando_off then None
             else Some (Imk_harness.Workspace.relocs_path ws preset variant))
          ~kernel_path:(Imk_harness.Workspace.vmlinux_path ws preset variant)
          ~kernel_config:(Imk_harness.Workspace.config ws preset variant)
          ()
      in
      let _, r =
        Imk_harness.Boot_runner.boot_once ~jitter:false ~seed:90125L
          ~cache:(Imk_harness.Workspace.cache ws)
          vm
      in
      let built = Imk_harness.Workspace.built ws preset variant in
      let rng = Imk_entropy.Prng.create ~seed:5L in
      let n = Array.length built.Imk_kernel.Image.fn_va in
      let trials =
        List.init 8 (fun _ ->
            let leaked_fn = Imk_entropy.Prng.next_int rng n in
            Imk_security.Attack.leak_and_locate ~mem:r.Vmm.mem
              ~params:r.Vmm.params ~link_fn_va:built.Imk_kernel.Image.fn_va
              ~leaked_fn ~scheme:name)
      in
      let mean_frac =
        Imk_util.Stats.mean
          (List.map
             (fun o -> o.Imk_security.Attack.gadgets_exposed_fraction)
             trials)
      in
      let sample = List.hd trials in
      Printf.printf "%-8s leak of fn_%05d exposes %6.1f%% of the other %d \
                     kernel functions\n"
        name sample.Imk_security.Attack.leaked_fn (100. *. mean_frac) (n - 1);
      (* blind probing as a fallback for the attacker *)
      let probe_rng = Imk_entropy.Prng.create ~seed:6L in
      (match
         Imk_security.Attack.probe_until_found ~mem:r.Vmm.mem
           ~params:r.Vmm.params ~rng:probe_rng ~target_fn:(n / 2)
           ~max_probes:20_000
       with
      | Some probes ->
          Printf.printf
            "         blind probing found a target gadget after %d probes\n"
            probes
      | None ->
          Printf.printf
            "         blind probing failed within 20000 crash-risking probes\n"))
    schemes;

  Printf.printf
    "\ntakeaway (paper §3.1): coarse KASLR collapses under one leak — the \
     whole text shares\none offset; FGKASLR reduces a leak's value to the \
     single leaked function.\n"
