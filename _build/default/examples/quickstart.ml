(* Quickstart: build a microVM kernel, boot it with in-monitor KASLR, and
   inspect what happened — the smallest end-to-end use of the library.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. "Compile" a kernel: the AWS Firecracker reference config with
     CONFIG_RANDOMIZE_BASE, at the default 1/16 build scale. *)
  let config = Imk_kernel.Config.make Imk_kernel.Config.Aws Imk_kernel.Config.Kaslr in
  let built = Imk_kernel.Image.build config in
  Printf.printf "built %s: vmlinux %s (models %s), %d relocations\n"
    config.Imk_kernel.Config.name
    (Imk_util.Units.bytes_to_string (Bytes.length built.Imk_kernel.Image.vmlinux))
    (Imk_util.Units.bytes_to_string (Imk_kernel.Image.modeled_vmlinux_bytes built))
    (Imk_elf.Relocation.entry_count built.Imk_kernel.Image.relocs);

  (* 2. Put the kernel and its relocation file on the host disk and warm
     the page cache, as a serverless host would between invocations. *)
  let disk = Imk_storage.Disk.create () in
  let cache = Imk_storage.Page_cache.create disk in
  Imk_storage.Disk.add disk ~name:"vmlinux" built.Imk_kernel.Image.vmlinux;
  Imk_storage.Disk.add disk ~name:"vmlinux.relocs" built.Imk_kernel.Image.relocs_bytes;
  Imk_storage.Page_cache.warm cache "vmlinux";
  Imk_storage.Page_cache.warm cache "vmlinux.relocs";

  (* 3. Configure the monitor: Firecracker with the in-monitor KASLR
     patch, relocation info passed as the extra argument (Figure 8). *)
  let vm =
    Imk_monitor.Vm_config.make ~rando:Imk_monitor.Vm_config.Rando_kaslr
      ~relocs_path:(Some "vmlinux.relocs") ~kernel_path:"vmlinux"
      ~kernel_config:config ~seed:2026L ()
  in

  (* 4. Boot, charging costs to a virtual clock. *)
  let clock = Imk_vclock.Clock.create () in
  let trace = Imk_vclock.Trace.create clock in
  let charge = Imk_vclock.Charge.create trace Imk_vclock.Cost_model.default in
  let result = Imk_monitor.Vmm.boot charge cache vm in

  (* 5. Inspect the randomized guest. *)
  let p = result.Imk_monitor.Vmm.params in
  Printf.printf "\nkernel randomized to %#x (offset +%d MiB)\n"
    p.Imk_guest.Boot_params.virt_base
    (Imk_guest.Boot_params.delta p / 1024 / 1024);
  let s = result.Imk_monitor.Vmm.stats in
  Printf.printf
    "guest booted and verified itself: %d functions, %d call sites, %d \
     rodata pointers, %d exception entries\n"
    s.Imk_guest.Runtime.functions_visited s.Imk_guest.Runtime.sites_verified
    s.Imk_guest.Runtime.rodata_verified s.Imk_guest.Runtime.extab_verified;
  Printf.printf "\nboot time breakdown (simulated, paper-calibrated):\n";
  List.iter
    (fun (phase, ns) ->
      Printf.printf "  %-16s %s\n"
        (Imk_vclock.Trace.phase_name phase)
        (Imk_util.Units.ms_string ns))
    (Imk_vclock.Trace.breakdown trace);
  Printf.printf "  %-16s %s\n" "Total"
    (Imk_util.Units.ms_string (Imk_vclock.Trace.total trace));

  (* 6. Ask the guest a question through kallsyms, like a profiler would. *)
  let kallsyms = Imk_guest.Kallsyms.create () in
  let id =
    Imk_guest.Kallsyms.lookup kallsyms charge result.Imk_monitor.Vmm.mem p
      ~va:p.Imk_guest.Boot_params.entry_va
  in
  Printf.printf "\nkallsyms: the entry point resolves to fn_%05d (startup_64)\n" id
