(* relocs: extract a relocation table from a vmlinux file — the analogue
   of the Linux source tree's relocs tool the paper points at (§4.3) as
   the way to obtain vmlinux.relocs for the monitor's extra argument.

   Example:
     relocs /tmp/k/aws-kaslr.vmlinux -o /tmp/k/aws-kaslr.relocs *)

open Cmdliner

let input =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"VMLINUX" ~doc:"Kernel ELF image to scan.")

let output =
  Arg.(
    value & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:"Where to write the table (default: print a summary only).")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let run input output =
  let vmlinux = read_file input in
  match Imk_kernel.Relocs_tool.extract vmlinux with
  | exception Imk_kernel.Relocs_tool.Unsupported m ->
      Printf.eprintf "relocs: %s\n" m;
      1
  | table ->
      let open Imk_elf.Relocation in
      Printf.printf "%s: %d relocations (%d abs64, %d abs32, %d inv32), %s\n"
        input (entry_count table)
        (Array.length table.abs64)
        (Array.length table.abs32)
        (Array.length table.inv32)
        (Imk_util.Units.bytes_to_string (size_bytes table));
      (match output with
      | None -> ()
      | Some path ->
          let oc = open_out_bin path in
          output_bytes oc (encode table);
          close_out oc;
          Printf.printf "wrote %s\n" path);
      0

let cmd =
  let doc = "extract relocation info from a vmlinux (like Linux's relocs tool)" in
  Cmd.v (Cmd.info "relocs" ~doc) Term.(const run $ input $ output)

let () = exit (Cmd.eval' cmd)
