(* mkkernel: build a synthetic kernel image (and companions) to real files
   on the host filesystem — the build step that precedes boot-time
   experiments, analogous to compiling a Linux tree.

   Example:
     mkkernel --kernel aws-fgkaslr --out /tmp/k
   writes /tmp/k/aws-fgkaslr.vmlinux, .relocs, .bzimage-lz4, .bzimage-none-opt *)

open Cmdliner

let kernel =
  let parse s =
    match String.split_on_char '-' s with
    | [ p; v ] -> (
        let preset =
          match p with
          | "lupine" -> Some Imk_kernel.Config.Lupine
          | "aws" -> Some Imk_kernel.Config.Aws
          | "ubuntu" -> Some Imk_kernel.Config.Ubuntu
          | _ -> None
        and variant =
          match v with
          | "nokaslr" -> Some Imk_kernel.Config.Nokaslr
          | "kaslr" -> Some Imk_kernel.Config.Kaslr
          | "fgkaslr" -> Some Imk_kernel.Config.Fgkaslr
          | _ -> None
        in
        match (preset, variant) with
        | Some p, Some v -> Ok (p, v)
        | _ -> Error (`Msg ("unknown kernel " ^ s)))
    | _ -> Error (`Msg "expected <preset>-<variant>")
  in
  let print ppf (p, v) =
    Format.fprintf ppf "%s-%s"
      (Imk_kernel.Config.preset_name p)
      (Imk_kernel.Config.variant_name v)
  in
  Arg.(
    required
    & opt (some (conv (parse, print))) None
    & info [ "kernel"; "k" ] ~docv:"PRESET-VARIANT" ~doc:"Kernel to build.")

let out_dir =
  Arg.(
    value & opt string "."
    & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")

let scale =
  Arg.(
    value & opt int 16
    & info [ "scale" ] ~docv:"N"
        ~doc:"Build scale: the image models a kernel N× its actual size.")

let codecs =
  Arg.(
    value
    & opt (list string) [ "lz4" ]
    & info [ "codecs" ] ~docv:"LIST"
        ~doc:"bzImage codecs to link (from gzip bzip2 lzma xz lzo lz4 none).")

let write_file path data =
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc;
  Printf.printf "wrote %-48s %s\n" path
    (Imk_util.Units.bytes_to_string (Bytes.length data))

let run kernel out_dir scale codecs =
  let preset, variant = kernel in
  let cfg = Imk_kernel.Config.make ~scale preset variant in
  Printf.printf "building %s (%d functions, scale %d)...\n"
    cfg.Imk_kernel.Config.name cfg.Imk_kernel.Config.functions scale;
  let built = Imk_kernel.Image.build cfg in
  let base = Filename.concat out_dir cfg.Imk_kernel.Config.name in
  write_file (base ^ ".vmlinux") built.Imk_kernel.Image.vmlinux;
  if cfg.Imk_kernel.Config.relocatable then
    write_file (base ^ ".relocs") built.Imk_kernel.Image.relocs_bytes;
  List.iter
    (fun codec ->
      match Imk_compress.Registry.find_opt codec with
      | None -> Printf.eprintf "skipping unknown codec %s\n" codec
      | Some _ ->
          let bz =
            Imk_kernel.Bzimage.link built ~codec
              ~variant:Imk_kernel.Bzimage.Standard
          in
          write_file
            (Printf.sprintf "%s.bzimage-%s" base codec)
            (Imk_kernel.Bzimage.encode bz))
    codecs;
  let bz_opt =
    Imk_kernel.Bzimage.link built ~codec:"none"
      ~variant:Imk_kernel.Bzimage.None_optimized
  in
  write_file (base ^ ".bzimage-none-opt") (Imk_kernel.Bzimage.encode bz_opt);
  Printf.printf "modelled sizes: vmlinux %s, relocs %s, %d sections\n"
    (Imk_util.Units.bytes_to_string (Imk_kernel.Image.modeled_vmlinux_bytes built))
    (Imk_util.Units.bytes_to_string (Imk_kernel.Image.modeled_reloc_bytes built))
    (Imk_kernel.Image.modeled_sections built);
  0

let cmd =
  let doc = "build a synthetic kernel image and its boot companions" in
  Cmd.v (Cmd.info "mkkernel" ~doc)
    Term.(const run $ kernel $ out_dir $ scale $ codecs)

let () = exit (Cmd.eval' cmd)
