bin/relocs.ml: Arg Array Bytes Cmd Cmdliner Imk_elf Imk_kernel Imk_util Printf Term
