bin/relocs.mli:
