bin/fcsim.mli:
