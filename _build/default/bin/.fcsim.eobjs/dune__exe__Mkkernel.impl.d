bin/mkkernel.ml: Arg Bytes Cmd Cmdliner Filename Format Imk_compress Imk_kernel Imk_util List Printf String Term
