bin/mkkernel.mli:
