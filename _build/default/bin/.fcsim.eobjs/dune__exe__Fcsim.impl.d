bin/fcsim.ml: Arg Cmd Cmdliner Format Imk_guest Imk_harness Imk_kernel Imk_monitor Imk_storage Imk_util Imk_vclock Int64 List Printf String Term
