(* Tests for Imk_monitor.Devices and Imk_kernel.Rootfs: device cost
   shapes, rootfs superblock validation, and device integration through
   full boots. *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

let test_rootfs_roundtrip () =
  let image = Imk_kernel.Rootfs.make ~size:(64 * 1024) ~seed:5L in
  check int "exact size" (64 * 1024) (Bytes.length image);
  Imk_kernel.Rootfs.mount_check
    (Bytes.sub image 0 Imk_kernel.Rootfs.superblock_bytes)

let test_rootfs_corruption () =
  let image = Imk_kernel.Rootfs.make ~size:(16 * 1024) ~seed:5L in
  Bytes.set image 100 'X';
  check Alcotest.bool "corrupt" true
    (try
       Imk_kernel.Rootfs.mount_check
         (Bytes.sub image 0 Imk_kernel.Rootfs.superblock_bytes);
       false
     with Imk_kernel.Rootfs.Corrupt _ -> true)

let test_rootfs_too_small () =
  Alcotest.check_raises "too small" (Invalid_argument "Rootfs.make: size too small")
    (fun () -> ignore (Imk_kernel.Rootfs.make ~size:100 ~seed:1L))

let test_device_costs_shape () =
  let fc = Profiles.firecracker and qemu = Profiles.qemu in
  List.iter
    (fun d ->
      check Alcotest.bool (Devices.name d ^ " qemu heavier") true
        (Devices.monitor_setup_ns qemu d > Devices.monitor_setup_ns fc d);
      check Alcotest.bool (Devices.name d ^ " probe positive") true
        (Devices.guest_probe_ns d > 0))
    [ Devices.Serial; Devices.Virtio_blk { image = "x" }; Devices.Virtio_net ]

let test_blk_read_lazy_costing () =
  let env = Testkit.make_env () in
  Imk_storage.Disk.add env.Testkit.disk ~name:"disk.img"
    (Imk_kernel.Rootfs.make ~size:(1024 * 1024) ~seed:2L);
  Imk_storage.Page_cache.drop_caches env.Testkit.cache;
  let trace, ch = Testkit.charge () in
  let clock = Imk_vclock.Trace.clock trace in
  let _ = Devices.blk_read ch env.Testkit.cache ~image:"disk.img" ~off:0 ~len:4096 in
  let cold_small = Imk_vclock.Clock.now clock in
  (* cold 4K read must cost far less than a cold 1M read would *)
  Imk_storage.Page_cache.drop_caches env.Testkit.cache;
  let trace2, ch2 = Testkit.charge () in
  let clock2 = Imk_vclock.Trace.clock trace2 in
  let _ =
    Devices.blk_read ch2 env.Testkit.cache ~image:"disk.img" ~off:0
      ~len:(1024 * 1024)
  in
  check Alcotest.bool "lazy: cost scales with span" true
    (Imk_vclock.Clock.now clock2 > 10 * cold_small)

let test_blk_read_bounds () =
  let env = Testkit.make_env () in
  Imk_storage.Disk.add env.Testkit.disk ~name:"disk.img" (Bytes.create 4096);
  let _, ch = Testkit.charge () in
  Alcotest.check_raises "range" (Invalid_argument "Devices.blk_read: out of range")
    (fun () ->
      ignore
        (Devices.blk_read ch env.Testkit.cache ~image:"disk.img" ~off:4000
           ~len:4096))

let boot_with ?(devices = []) env =
  let vm =
    Vm_config.make ~rando:Vm_config.Rando_kaslr
      ~relocs_path:(Some (Testkit.relocs_path env))
      ~devices ~mem_bytes:(64 * 1024 * 1024)
      ~kernel_path:(Testkit.vmlinux_path env) ~kernel_config:env.Testkit.cfg ()
  in
  let trace, ch = Testkit.charge () in
  let r = Vmm.boot ch env.Testkit.cache vm in
  (trace, r)

let test_boot_with_device_set () =
  let env = Testkit.make_env ~functions:40 () in
  Imk_storage.Disk.add env.Testkit.disk ~name:"rootfs.img"
    (Imk_kernel.Rootfs.make ~size:(128 * 1024) ~seed:3L);
  (* warm the cache so bare-vs-devices is not a cold-vs-warm comparison *)
  let _ = boot_with env in
  let bare_trace, _ = boot_with env in
  let full_trace, r =
    boot_with env
      ~devices:
        [ Devices.Serial; Devices.Virtio_blk { image = "rootfs.img" };
          Devices.Virtio_net ]
  in
  check int "still verifies" 40 r.Vmm.stats.Imk_guest.Runtime.functions_visited;
  check Alcotest.bool "devices cost time" true
    (Imk_vclock.Trace.total full_trace > Imk_vclock.Trace.total bare_trace)

let test_boot_missing_backing_file () =
  let env = Testkit.make_env ~functions:40 () in
  check Alcotest.bool "boot error" true
    (try
       ignore
         (boot_with env ~devices:[ Devices.Virtio_blk { image = "absent.img" } ]);
       false
     with Vmm.Boot_error _ -> true)

let test_boot_corrupt_rootfs_panics () =
  let env = Testkit.make_env ~functions:40 () in
  let image = Imk_kernel.Rootfs.make ~size:(64 * 1024) ~seed:3L in
  Bytes.set image 64 '\x00';
  Imk_storage.Disk.add env.Testkit.disk ~name:"bad.img" image;
  check Alcotest.bool "guest panics at mount" true
    (try
       ignore (boot_with env ~devices:[ Devices.Virtio_blk { image = "bad.img" } ]);
       false
     with Imk_guest.Runtime.Panic _ -> true)

let () =
  Alcotest.run "devices"
    [
      ( "rootfs",
        [
          Alcotest.test_case "roundtrip" `Quick test_rootfs_roundtrip;
          Alcotest.test_case "corruption" `Quick test_rootfs_corruption;
          Alcotest.test_case "too small" `Quick test_rootfs_too_small;
        ] );
      ( "device model",
        [
          Alcotest.test_case "cost shape" `Quick test_device_costs_shape;
          Alcotest.test_case "lazy blk reads" `Quick test_blk_read_lazy_costing;
          Alcotest.test_case "blk bounds" `Quick test_blk_read_bounds;
        ] );
      ( "integration",
        [
          Alcotest.test_case "full device set" `Quick test_boot_with_device_set;
          Alcotest.test_case "missing backing file" `Quick
            test_boot_missing_backing_file;
          Alcotest.test_case "corrupt rootfs" `Quick
            test_boot_corrupt_rootfs_panics;
        ] );
    ]
