test/test_lebench.mli:
