test/test_elf.ml: Alcotest Array Builder Bytes Char Fun Imk_elf Imk_entropy Imk_memory Imk_util Layout List Note Parser Printf QCheck QCheck_alcotest Relocation String Types Writer
