test/test_security.ml: Alcotest Array Imk_entropy Imk_kernel Imk_monitor Imk_security Imk_util List QCheck QCheck_alcotest Testkit Vm_config Vmm
