test/test_boot_paths.mli:
