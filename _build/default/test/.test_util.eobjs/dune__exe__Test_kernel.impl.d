test/test_kernel.ml: Alcotest Array Bytes Bzimage Char Config Function_graph Image Imk_compress Imk_elf Imk_kernel List QCheck QCheck_alcotest Relocs_tool Unikernel
