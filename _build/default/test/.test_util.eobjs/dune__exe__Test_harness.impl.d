test/test_harness.ml: Alcotest Boot_runner Bzimage Config Experiments Imk_harness Imk_kernel Imk_monitor Imk_storage Imk_util List String Workspace
