test/test_memory.ml: Addr Alcotest Bytes Gen Guest_mem Imk_memory Imk_util List Page_table QCheck QCheck_alcotest
