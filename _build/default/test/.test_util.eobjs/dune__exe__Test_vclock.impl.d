test/test_vclock.ml: Alcotest Clock Cost_model Imk_entropy Imk_util Imk_vclock List QCheck QCheck_alcotest String Trace Trace_export
