test/test_randomize.ml: Addr Alcotest Array Fgkaslr Guest_mem Imk_elf Imk_entropy Imk_memory Imk_randomize Kaslr List QCheck QCheck_alcotest
