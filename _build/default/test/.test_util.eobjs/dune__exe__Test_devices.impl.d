test/test_devices.ml: Alcotest Bytes Devices Imk_guest Imk_kernel Imk_monitor Imk_storage Imk_vclock List Profiles Testkit Vm_config Vmm
