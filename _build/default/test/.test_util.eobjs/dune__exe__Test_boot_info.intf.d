test/test_boot_info.mli:
