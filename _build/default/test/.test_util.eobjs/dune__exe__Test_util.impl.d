test/test_util.ml: Alcotest Byteio Bytes Char Crc Gen Imk_util QCheck QCheck_alcotest Stats String Table Units
