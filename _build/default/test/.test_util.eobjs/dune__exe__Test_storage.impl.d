test/test_storage.ml: Alcotest Bytes Disk Imk_storage Page_cache
