test/test_guest.ml: Alcotest Bytes Imk_elf Imk_guest Imk_kernel Imk_memory Imk_monitor Imk_vclock QCheck QCheck_alcotest Testkit Vm_config Vmm
