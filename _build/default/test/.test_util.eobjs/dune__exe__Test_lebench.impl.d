test/test_lebench.ml: Alcotest Array Imk_entropy Imk_guest Imk_kernel Imk_lebench Imk_memory Imk_monitor List Testkit Vm_config Vmm
