test/test_entropy.ml: Alcotest Array Fun Imk_entropy Pool Prng QCheck QCheck_alcotest Shuffle
