test/test_boot_info.ml: Alcotest Array Boot_info Bytes Char Gen Imk_guest Imk_kernel Imk_lebench Imk_memory Imk_monitor Imk_storage List QCheck QCheck_alcotest String Testkit Vm_config Vmm
