test/test_entropy.mli:
