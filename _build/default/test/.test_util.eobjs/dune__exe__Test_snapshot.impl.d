test/test_snapshot.ml: Alcotest Hashtbl Imk_entropy Imk_guest Imk_memory Imk_monitor Imk_vclock Snapshot Testkit Vm_config Vmm Zygote
