test/testkit.ml: Imk_kernel Imk_monitor Imk_storage Imk_vclock Option Printf Vm_config Vmm
