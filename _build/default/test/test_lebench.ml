(* Tests for Imk_lebench: workload catalogue, the i-cache locality model's
   key property (KASLR shift = no penalty, shuffle = penalty), and the
   runner's normalization. *)

open Imk_monitor

let check = Alcotest.check
let int = Alcotest.int

let test_workloads_well_formed () =
  check Alcotest.bool "suite nonempty" true (List.length Imk_lebench.Workloads.all >= 15);
  List.iter
    (fun (w : Imk_lebench.Workloads.t) ->
      check Alcotest.bool (w.name ^ " base positive") true (w.base_ns > 0.);
      check Alcotest.bool (w.name ^ " sensitivity in range") true
        (w.icache_sensitivity >= 0. && w.icache_sensitivity <= 1.);
      check Alcotest.bool (w.name ^ " hot fns positive") true (w.hot_fns > 0))
    Imk_lebench.Workloads.all

let test_find () =
  check Alcotest.bool "getpid exists" true
    (Imk_lebench.Workloads.find "getpid" <> None);
  check Alcotest.bool "unknown" true (Imk_lebench.Workloads.find "frobnicate" = None)

let linked_layout n = Array.init n (fun i -> Imk_memory.Addr.link_base + (i * 640))

let test_slowdown_identity_layout () =
  let fn_va = linked_layout 2000 in
  List.iter
    (fun w ->
      check (Alcotest.float 1e-9) (w.Imk_lebench.Workloads.name ^ " no penalty")
        1.0
        (Imk_lebench.Icache.slowdown w ~fn_va))
    Imk_lebench.Workloads.all

let test_slowdown_kaslr_shift_is_free () =
  (* plain KASLR: every function shifted by the same delta -> same
     relative layout -> same slowdown (figure 11's kaslr ≈ 1.0) *)
  let base = linked_layout 2000 in
  let shifted = Array.map (fun v -> v + 0x1260000) base in
  List.iter
    (fun w ->
      check (Alcotest.float 1e-9) w.Imk_lebench.Workloads.name
        (Imk_lebench.Icache.slowdown w ~fn_va:base)
        (Imk_lebench.Icache.slowdown w ~fn_va:shifted))
    Imk_lebench.Workloads.all

let test_slowdown_shuffle_costs () =
  let base = linked_layout 2000 in
  let rng = Imk_entropy.Prng.create ~seed:17L in
  let perm = Imk_entropy.Shuffle.permutation rng 2000 in
  let shuffled = Array.init 2000 (fun i -> base.(perm.(i))) in
  let suite_avg layout =
    let fs =
      List.map
        (fun w -> Imk_lebench.Icache.slowdown w ~fn_va:layout)
        Imk_lebench.Workloads.all
    in
    List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)
  in
  let avg = suite_avg shuffled in
  check Alcotest.bool "shuffle costs something" true (avg > 1.01);
  check Alcotest.bool "but stays bounded" true (avg < 1.25)

let test_hot_set_deterministic () =
  let w = List.hd Imk_lebench.Workloads.all in
  let a = Imk_lebench.Icache.hot_set w ~n_functions:1000 in
  let b = Imk_lebench.Icache.hot_set w ~n_functions:1000 in
  Alcotest.(check (array int)) "same" a b;
  check int "size" w.Imk_lebench.Workloads.hot_fns (Array.length a)

let test_pages_spanned () =
  let fn_va = [| 0; 100; 4096; 8192 |] in
  check int "three pages" 3
    (Imk_lebench.Icache.pages_spanned ~fn_va ~hot:[| 0; 1; 2; 3 |]);
  check int "one page" 1 (Imk_lebench.Icache.pages_spanned ~fn_va ~hot:[| 0; 1 |])

let test_runner_results () =
  let fn_va = linked_layout 500 in
  let results = Imk_lebench.Runner.run ~iterations:200 ~fn_va () in
  check int "one result per workload"
    (List.length Imk_lebench.Workloads.all)
    (List.length results);
  List.iter
    (fun (r : Imk_lebench.Runner.result) ->
      let base = r.workload.Imk_lebench.Workloads.base_ns in
      check Alcotest.bool "mean near base" true
        (r.mean_ns > base *. 0.9 && r.mean_ns < base *. 1.5))
    results

let test_normalize () =
  let fn_va = linked_layout 500 in
  let a = Imk_lebench.Runner.run ~iterations:100 ~fn_va () in
  let normalized = Imk_lebench.Runner.normalize ~baseline:a a in
  List.iter
    (fun (_, v) -> check (Alcotest.float 1e-9) "self-normalized" 1.0 v)
    normalized

let test_normalize_mismatch () =
  let fn_va = linked_layout 500 in
  let a = Imk_lebench.Runner.run ~iterations:10 ~fn_va () in
  check Alcotest.bool "rejects mismatch" true
    (try
       ignore (Imk_lebench.Runner.normalize ~baseline:(List.tl a) a);
       false
     with Invalid_argument _ -> true)

(* end-to-end: layouts extracted from booted guests *)
let test_layout_from_guest () =
  let env = Testkit.make_env ~functions:60 () in
  let _, r = Testkit.boot env in
  let _, ch = Testkit.charge () in
  let fn_va = Imk_lebench.Runner.layout_of_guest ch r.Vmm.mem r.Vmm.params in
  check int "one va per fn" 60 (Array.length fn_va);
  (* addresses must point at the right functions *)
  Array.iteri
    (fun id va ->
      check (Alcotest.option int) "fn_at agrees" (Some id)
        (Imk_guest.Runtime.fn_at r.Vmm.mem r.Vmm.params ~va))
    fn_va

let test_fgkaslr_guest_slowdown_exceeds_kaslr () =
  let boot variant rando =
    let env = Testkit.make_env ~functions:400 ~variant () in
    let _, r = Testkit.boot env ~rando in
    let _, ch = Testkit.charge () in
    Imk_lebench.Runner.layout_of_guest ch r.Vmm.mem r.Vmm.params
  in
  let nok = boot Imk_kernel.Config.Nokaslr Vm_config.Rando_off in
  let kas = boot Imk_kernel.Config.Kaslr Vm_config.Rando_kaslr in
  let fg = boot Imk_kernel.Config.Fgkaslr Vm_config.Rando_fgkaslr in
  let avg layout =
    let fs =
      List.map
        (fun w -> Imk_lebench.Icache.slowdown w ~fn_va:layout)
        Imk_lebench.Workloads.all
    in
    List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)
  in
  check Alcotest.bool "kaslr ≈ nokaslr" true (abs_float (avg kas -. avg nok) < 0.01);
  check Alcotest.bool "fgkaslr slower" true (avg fg > avg nok +. 0.01)

let () =
  Alcotest.run "imk_lebench"
    [
      ( "workloads",
        [
          Alcotest.test_case "well formed" `Quick test_workloads_well_formed;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "icache model",
        [
          Alcotest.test_case "identity layout free" `Quick
            test_slowdown_identity_layout;
          Alcotest.test_case "kaslr shift free" `Quick
            test_slowdown_kaslr_shift_is_free;
          Alcotest.test_case "shuffle costs" `Quick test_slowdown_shuffle_costs;
          Alcotest.test_case "hot set deterministic" `Quick
            test_hot_set_deterministic;
          Alcotest.test_case "pages spanned" `Quick test_pages_spanned;
        ] );
      ( "runner",
        [
          Alcotest.test_case "results" `Quick test_runner_results;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "normalize mismatch" `Quick test_normalize_mismatch;
          Alcotest.test_case "layout from guest" `Quick test_layout_from_guest;
          Alcotest.test_case "fgkaslr slowdown" `Quick
            test_fgkaslr_guest_slowdown_exceeds_kaslr;
        ] );
    ]
