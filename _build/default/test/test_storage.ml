(* Tests for Imk_storage: disk registry and the page cache's warm/cold
   protocol (the mechanism behind the paper's Figure 4). *)

open Imk_storage

let check = Alcotest.check

let test_disk_basics () =
  let d = Disk.create () in
  Disk.add d ~name:"vmlinux" (Bytes.of_string "kernel!");
  check Alcotest.bool "mem" true (Disk.mem d "vmlinux");
  check Alcotest.int "size" 7 (Disk.size d "vmlinux");
  check Alcotest.string "contents" "kernel!" (Bytes.to_string (Disk.find d "vmlinux"));
  check Alcotest.bool "absent" false (Disk.mem d "other")

let test_disk_replace () =
  let d = Disk.create () in
  Disk.add d ~name:"k" (Bytes.of_string "v1");
  Disk.add d ~name:"k" (Bytes.of_string "version2");
  check Alcotest.int "replaced" 8 (Disk.size d "k")

let test_disk_not_found () =
  let d = Disk.create () in
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Disk.find d "x"))

let test_cache_cold_then_warm () =
  let d = Disk.create () in
  Disk.add d ~name:"k" (Bytes.of_string "data");
  let c = Page_cache.create d in
  let _, cached1 = Page_cache.read c "k" in
  check Alcotest.bool "first read cold" false cached1;
  let _, cached2 = Page_cache.read c "k" in
  check Alcotest.bool "second read warm" true cached2

let test_cache_warm_explicit () =
  let d = Disk.create () in
  Disk.add d ~name:"k" (Bytes.of_string "data");
  let c = Page_cache.create d in
  Page_cache.warm c "k";
  let _, cached = Page_cache.read c "k" in
  check Alcotest.bool "warmed" true cached

let test_cache_drop () =
  let d = Disk.create () in
  Disk.add d ~name:"k" (Bytes.of_string "data");
  let c = Page_cache.create d in
  Page_cache.warm c "k";
  Page_cache.drop_caches c;
  check Alcotest.bool "dropped" false (Page_cache.is_cached c "k");
  let _, cached = Page_cache.read c "k" in
  check Alcotest.bool "cold after drop" false cached

let test_cache_warm_missing () =
  let d = Disk.create () in
  let c = Page_cache.create d in
  Alcotest.check_raises "missing" Not_found (fun () -> Page_cache.warm c "x")

let test_cache_independent_files () =
  let d = Disk.create () in
  Disk.add d ~name:"a" (Bytes.of_string "1");
  Disk.add d ~name:"b" (Bytes.of_string "2");
  let c = Page_cache.create d in
  Page_cache.warm c "a";
  check Alcotest.bool "a cached" true (Page_cache.is_cached c "a");
  check Alcotest.bool "b not" false (Page_cache.is_cached c "b")

let () =
  Alcotest.run "imk_storage"
    [
      ( "disk",
        [
          Alcotest.test_case "basics" `Quick test_disk_basics;
          Alcotest.test_case "replace" `Quick test_disk_replace;
          Alcotest.test_case "not found" `Quick test_disk_not_found;
        ] );
      ( "page_cache",
        [
          Alcotest.test_case "cold then warm" `Quick test_cache_cold_then_warm;
          Alcotest.test_case "warm explicit" `Quick test_cache_warm_explicit;
          Alcotest.test_case "drop_caches" `Quick test_cache_drop;
          Alcotest.test_case "warm missing" `Quick test_cache_warm_missing;
          Alcotest.test_case "independent files" `Quick
            test_cache_independent_files;
        ] );
    ]
