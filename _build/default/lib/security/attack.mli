(** The leak-and-locate attack: what one information leak buys.

    Threat model (§4.1): the attacker controls a process in a container
    atop the guest kernel; W^X and SMEP block code injection, so they
    need {e addresses} of existing kernel code for a reuse attack. They
    have obtained exactly one leak — the runtime address of one kernel
    function — and know the kernel build (link-time layout), as any
    attacker with the distribution image does.

    The attack derives every other function's address from the leak by
    adding link-time offsets, then checks each prediction against the
    booted guest's actual memory. Under no randomization or coarse KASLR
    a single leak defeats everything — one offset rebases the whole
    kernel (§3.1: "the entire text of the kernel shares the same
    offset"). Under FGKASLR the prediction only holds for the leaked
    function itself: the leak's value collapses to one address, the
    paper's core security claim for fine granularity. *)

type outcome = {
  scheme : string;
  leaked_fn : int;
  predictions_correct : int;  (** of [n_functions - 1] derived addresses *)
  n_functions : int;
  gadgets_exposed_fraction : float;
}

val leak_and_locate :
  mem:Imk_memory.Guest_mem.t ->
  params:Imk_guest.Boot_params.t ->
  link_fn_va:int array ->
  leaked_fn:int ->
  scheme:string ->
  outcome
(** [leak_and_locate ~mem ~params ~link_fn_va ~leaked_fn ~scheme] mounts
    the attack against a booted guest. [link_fn_va] is the link-time
    layout (from the distribution image); the leak is the actual runtime
    address of [leaked_fn], obtained via the guest's own structures. *)

val probe_until_found :
  mem:Imk_memory.Guest_mem.t ->
  params:Imk_guest.Boot_params.t ->
  rng:Imk_entropy.Prng.t ->
  target_fn:int ->
  max_probes:int ->
  int option
(** [probe_until_found ~mem ~params ~rng ~target_fn ~max_probes] models
    blind probing for a specific function: random 16-byte-aligned guesses
    in the kernel window, each "probe" standing for one crash-risking
    access. Returns the probe count on success. Expected cost ~ the
    number of aligned slots divided by one — i.e. hopeless at FGKASLR
    granularity, which is the point. *)
