(** Statistical check of offset-selection uniformity.

    §4.3 claims in-monitor randomization provides "entropy equivalent to
    that of Linux" because the slot-selection algorithm is shared. The
    entropy claim needs every aligned slot to be equiprobable — a biased
    generator would silently lose bits. This module tests that with a
    chi-square goodness-of-fit over many independent offset draws, using
    the Wilson–Hilferty approximation for the critical value (exact
    enough at hundreds of degrees of freedom). *)

val chi_square : observed:int array -> float
(** [chi_square ~observed] is the statistic against the uniform
    expectation (total/slots per bin). Raises [Invalid_argument] on empty
    input or zero total. *)

val critical_value : df:int -> alpha:float -> float
(** [critical_value ~df ~alpha] approximates the upper-[alpha] quantile
    of the chi-square distribution (supported [alpha]: 0.05, 0.01,
    0.001). *)

type verdict = {
  slots : int;
  draws : int;
  statistic : float;
  threshold : float;  (** critical value at the 1% level *)
  uniform : bool;  (** statistic below threshold *)
}

val test_virtual_offsets : image_memsz:int -> draws:int -> seed:int64 -> verdict
(** [test_virtual_offsets ~image_memsz ~draws ~seed] draws KASLR virtual
    bases with fresh generators (split per draw, as VM boots are) and
    tests slot uniformity at the 1% level. *)

val test_permutation_positions : sections:int -> draws:int -> seed:int64 -> verdict
(** [test_permutation_positions ~sections ~draws ~seed] checks FGKASLR's
    shuffle: where the {e first} section lands must be uniform over all
    positions. *)
