type report = {
  scheme : string;
  base_slots : int;
  base_bits : float;
  permutation_bits : float;
  total_bits : float;
}

let log2 x = log x /. log 2.

let nokaslr =
  {
    scheme = "nokaslr";
    base_slots = 1;
    base_bits = 0.;
    permutation_bits = 0.;
    total_bits = 0.;
  }

let kaslr ~image_memsz =
  let slots = Imk_randomize.Kaslr.virtual_slots ~image_memsz in
  let bits = log2 (float_of_int slots) in
  {
    scheme = "kaslr";
    base_slots = slots;
    base_bits = bits;
    permutation_bits = 0.;
    total_bits = bits;
  }

let fgkaslr ~image_memsz ~functions =
  let base = kaslr ~image_memsz in
  let perm = Imk_entropy.Shuffle.log2_factorial functions in
  {
    scheme = "fgkaslr";
    base_slots = base.base_slots;
    base_bits = base.base_bits;
    permutation_bits = perm;
    total_bits = base.base_bits +. perm;
  }
