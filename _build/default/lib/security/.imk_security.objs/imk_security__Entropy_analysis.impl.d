lib/security/entropy_analysis.ml: Imk_entropy Imk_randomize
