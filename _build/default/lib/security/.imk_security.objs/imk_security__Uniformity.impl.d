lib/security/uniformity.ml: Array Imk_entropy Imk_memory Imk_randomize Printf
