lib/security/attack.ml: Addr Array Guest_mem Imk_entropy Imk_guest Imk_kernel Imk_memory
