lib/security/attack.mli: Imk_entropy Imk_guest Imk_memory
