lib/security/uniformity.mli:
