lib/security/entropy_analysis.mli:
