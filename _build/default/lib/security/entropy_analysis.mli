(** Randomization entropy accounting.

    §4.3 claims in-monitor randomization provides entropy "equivalent to
    that of Linux" because the algorithm is shared; this module computes
    what that entropy is for each scheme, at the paper's true kernel
    sizes (modelled bytes):

    - KASLR base: the number of 2 MiB-aligned virtual slots between the
      16 MiB default and the 1 GiB fixmap limit that still fit the image;
    - FGKASLR: the base entropy {e plus} the permutation entropy of the
      function sections, log2(n!) — astronomically larger, though what
      matters practically is the per-leak exposure measured by
      {!Attack}. *)

type report = {
  scheme : string;
  base_slots : int;  (** distinct virtual bases *)
  base_bits : float;
  permutation_bits : float;  (** 0 for coarse KASLR *)
  total_bits : float;
}

val kaslr : image_memsz:int -> report
(** [kaslr ~image_memsz] for a kernel occupying [image_memsz] bytes of
    virtual space (use modelled size for paper-scale numbers). *)

val fgkaslr : image_memsz:int -> functions:int -> report

val nokaslr : report
(** One layout, zero bits. *)
