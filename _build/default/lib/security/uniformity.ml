let chi_square ~observed =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Uniformity.chi_square: no bins";
  let total = Array.fold_left ( + ) 0 observed in
  if total = 0 then invalid_arg "Uniformity.chi_square: no samples";
  let expected = float_of_int total /. float_of_int k in
  Array.fold_left
    (fun acc o ->
      let d = float_of_int o -. expected in
      acc +. (d *. d /. expected))
    0. observed

let z_of_alpha = function
  | 0.05 -> 1.6449
  | 0.01 -> 2.3263
  | 0.001 -> 3.0902
  | a -> invalid_arg (Printf.sprintf "Uniformity.critical_value: alpha %g" a)

(* Wilson–Hilferty: chi2_q ≈ df (1 - 2/(9 df) + z sqrt(2/(9 df)))^3 *)
let critical_value ~df ~alpha =
  let z = z_of_alpha alpha in
  let d = float_of_int df in
  let t = 1. -. (2. /. (9. *. d)) +. (z *. sqrt (2. /. (9. *. d))) in
  d *. t *. t *. t

type verdict = {
  slots : int;
  draws : int;
  statistic : float;
  threshold : float;
  uniform : bool;
}

let verdict ~observed ~draws =
  let slots = Array.length observed in
  let statistic = chi_square ~observed in
  let threshold = critical_value ~df:(slots - 1) ~alpha:0.01 in
  { slots; draws; statistic; threshold; uniform = statistic < threshold }

let test_virtual_offsets ~image_memsz ~draws ~seed =
  let slots = Imk_randomize.Kaslr.virtual_slots ~image_memsz in
  let observed = Array.make slots 0 in
  let master = Imk_entropy.Prng.create ~seed in
  let lo = Imk_memory.Addr.kmap_base + Imk_memory.Addr.default_phys_load in
  let first = Imk_memory.Addr.align_up lo Imk_memory.Addr.kernel_align in
  for _ = 1 to draws do
    (* each boot gets a fresh generator, as VM instances do *)
    let rng = Imk_entropy.Prng.split master in
    let base = Imk_randomize.Kaslr.choose_virtual rng ~image_memsz in
    let slot = (base - first) / Imk_memory.Addr.kernel_align in
    observed.(slot) <- observed.(slot) + 1
  done;
  verdict ~observed ~draws

let test_permutation_positions ~sections ~draws ~seed =
  let observed = Array.make sections 0 in
  let master = Imk_entropy.Prng.create ~seed in
  for _ = 1 to draws do
    let rng = Imk_entropy.Prng.split master in
    let perm = Imk_entropy.Shuffle.permutation rng sections in
    (* position of element 0 after the shuffle *)
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) perm;
    observed.(!pos) <- observed.(!pos) + 1
  done;
  verdict ~observed ~draws
