open Imk_memory

type outcome = {
  scheme : string;
  leaked_fn : int;
  predictions_correct : int;
  n_functions : int;
  gadgets_exposed_fraction : float;
}

(* the leak: read the target function's true runtime address out of the
   guest (standing in for a kptr leak through a log line or a side
   channel) *)
let runtime_va_of_fn mem params ~link_fn_va ~fn =
  ignore link_fn_va;
  (* walk kallsyms directly (the ground truth table in guest memory) *)
  let info = params.Imk_guest.Boot_params.kernel in
  let delta = Imk_guest.Boot_params.delta params in
  let table_va = info.Imk_guest.Boot_params.link_kallsyms_va + delta in
  let pa = Imk_guest.Boot_params.va_to_pa params table_va in
  let base = Guest_mem.get_addr mem ~pa in
  let count = Guest_mem.get_u32 mem ~pa:(pa + 8) in
  let header = Imk_kernel.Image.kallsyms_header_bytes in
  let entry = Imk_kernel.Image.kallsyms_entry_bytes in
  let rec find k =
    if k >= count then None
    else
      let off_pa = pa + header + (k * entry) in
      let id = Guest_mem.get_u32 mem ~pa:(off_pa + 4) in
      if id = fn then Some (base + Guest_mem.get_u32 mem ~pa:off_pa)
      else find (k + 1)
  in
  find 0

let leak_and_locate ~mem ~params ~link_fn_va ~leaked_fn ~scheme =
  let n = Array.length link_fn_va in
  if leaked_fn < 0 || leaked_fn >= n then
    invalid_arg "Attack.leak_and_locate: leaked_fn out of range";
  let leaked_va =
    match runtime_va_of_fn mem params ~link_fn_va ~fn:leaked_fn with
    | Some va -> va
    | None -> invalid_arg "Attack.leak_and_locate: leak source missing"
  in
  let correct = ref 0 in
  for target = 0 to n - 1 do
    if target <> leaked_fn then begin
      let predicted =
        leaked_va + (link_fn_va.(target) - link_fn_va.(leaked_fn))
      in
      match Imk_guest.Runtime.fn_at mem params ~va:predicted with
      | Some id when id = target -> incr correct
      | Some _ | None -> ()
    end
  done;
  {
    scheme;
    leaked_fn;
    predictions_correct = !correct;
    n_functions = n;
    gadgets_exposed_fraction = float_of_int !correct /. float_of_int (n - 1);
  }

let probe_until_found ~mem ~params ~rng ~target_fn ~max_probes =
  let lo = Addr.kmap_base + Addr.default_phys_load in
  let hi = Addr.kmap_base + Addr.kaslr_max_offset in
  let rec go probes =
    if probes >= max_probes then None
    else begin
      let guess = Imk_entropy.Prng.next_aligned rng ~lo ~hi ~align:16 in
      match Imk_guest.Runtime.fn_at mem params ~va:guess with
      | Some id when id = target_fn -> Some (probes + 1)
      | Some _ | None -> go (probes + 1)
    end
  in
  go 0
