lib/bootstrap/loader.mli: Imk_entropy Imk_guest Imk_kernel Imk_memory Imk_vclock
