lib/bootstrap/loader.ml: Addr Array Bytes Bzimage Charge Config Cost_model Guest_mem Imk_elf Imk_entropy Imk_guest Imk_kernel Imk_memory Imk_randomize Imk_util Imk_vclock Page_table Printf Trace
