type flavor = Baseline | Bzimage_support | In_monitor_kaslr | In_monitor_fgkaslr

let flavor_name = function
  | Baseline -> "firecracker-baseline"
  | Bzimage_support -> "firecracker-bzimage"
  | In_monitor_kaslr -> "firecracker-kaslr"
  | In_monitor_fgkaslr -> "firecracker-fgkaslr"

type rando_mode = Rando_off | Rando_kaslr | Rando_fgkaslr
type kallsyms_policy = Kallsyms_eager | Kallsyms_deferred
type orc_policy = Orc_update | Orc_skip
type protocol = Linux64 | Pvh
type loader_policy = Loader_default | Loader_stripped

type t = {
  flavor : flavor;
  profile : Profiles.t;
  kernel_path : string;
  relocs_path : string option;
  kernel_config : Imk_kernel.Config.t;
  mem_bytes : int;
  rando : rando_mode;
  kallsyms : kallsyms_policy;
  orc : orc_policy;
  protocol : protocol;
  loader : loader_policy;
  boot_args : string;
  initrd_path : string option;
  devices : Devices.t list;
  seed : int64;
}

let make ?flavor ?(profile = Profiles.firecracker) ?(relocs_path = None)
    ?(mem_bytes = 256 * 1024 * 1024) ?(rando = Rando_off)
    ?(kallsyms = Kallsyms_eager) ?(orc = Orc_skip) ?(protocol = Linux64)
    ?(loader = Loader_default)
    ?(boot_args = "console=ttyS0 reboot=k panic=1 pci=off")
    ?(initrd_path = None) ?(devices = []) ?(seed = 1L) ~kernel_path
    ~kernel_config () =
  let flavor =
    match flavor with
    | Some f -> f
    | None -> (
        match rando with
        | Rando_off -> Baseline
        | Rando_kaslr -> In_monitor_kaslr
        | Rando_fgkaslr -> In_monitor_fgkaslr)
  in
  {
    flavor;
    profile;
    kernel_path;
    relocs_path;
    kernel_config;
    mem_bytes;
    rando;
    kallsyms;
    orc;
    protocol;
    loader;
    boot_args;
    initrd_path;
    devices;
    seed;
  }
