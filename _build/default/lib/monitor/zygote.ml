type t = { members : Snapshot.t array }

let build ch cache ~make_vm ~size =
  if size <= 0 then invalid_arg "Zygote.build: empty pool";
  let members =
    Array.init size (fun i ->
        let vm = make_vm ~seed:(Int64.of_int (0x5a5a + (i * 131))) in
        Snapshot.capture (Vmm.boot ch cache vm))
  in
  { members }

let size t = Array.length t.members

let memory_bytes t =
  Array.fold_left (fun acc s -> acc + Snapshot.encoded_bytes s) 0 t.members

let distinct_layouts t =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun s -> Hashtbl.replace seen (Snapshot.layout_seed_of s) ())
    t.members;
  Hashtbl.length seen

let draw ch t ~rng ~working_set_pages =
  let i = Imk_entropy.Prng.next_int rng (Array.length t.members) in
  Snapshot.restore ch t.members.(i) ~working_set_pages
