(** A Morula-style zygote pool: pre-randomized snapshots (§7).

    Morula's answer to snapshot-layout cloning is a pool of zygotes, each
    randomized differently, drawn from at instance-creation time. The
    pool buys restore-speed {e and} layout diversity, paying with memory
    (one full image per member) and background refill work. The paper
    argues fast randomized boots via in-monitor KASLR reduce the need for
    this machinery; this module exists so the harness can measure both
    sides. *)

type t

val build :
  Imk_vclock.Charge.t ->
  Imk_storage.Page_cache.t ->
  make_vm:(seed:int64 -> Vm_config.t) ->
  size:int ->
  t
(** [build charge cache ~make_vm ~size] boots [size] VMs with distinct
    seeds and captures each — the pool-fill cost is charged to
    [charge]. *)

val size : t -> int

val memory_bytes : t -> int
(** Resident cost of keeping the pool. *)

val distinct_layouts : t -> int
(** Number of distinct layout fingerprints across members (must equal
    [size] for a correctly built pool). *)

val draw :
  Imk_vclock.Charge.t ->
  t ->
  rng:Imk_entropy.Prng.t ->
  working_set_pages:int ->
  Vmm.boot_result
(** [draw charge t ~rng ~working_set_pages] restores a uniformly chosen
    member. Consecutive draws may repeat layouts — the residual weakness
    the paper notes even for pooled zygotes. *)
