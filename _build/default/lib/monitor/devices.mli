(** The device model.

    A microVM is more than a kernel: Firecracker wires a handful of
    virtio devices (block for the rootfs, net, a serial console) before
    entry, and the guest probes their drivers during boot. Firecracker's
    minimalism here — a few MMIO virtio devices instead of QEMU's full PC
    — is part of why its In-Monitor time is small (§2.1's "lightweight
    monitors"). Devices are off by default so the paper-calibrated boot
    numbers are unchanged; experiments opt in. *)

type t =
  | Serial
  | Virtio_blk of { image : string }
      (** a block device backed by a host file (the rootfs) *)
  | Virtio_net

val name : t -> string

val monitor_setup_ns : Profiles.t -> t -> int
(** Wiring the device model before VM entry: MMIO registration, queue
    setup, tap/backing-file plumbing. Cheap on Firecracker-style
    monitors, ~10× heavier on QEMU's device tree. *)

val guest_probe_ns : t -> int
(** Driver probe during the guest's Linux boot. *)

val blk_read :
  Imk_vclock.Charge.t ->
  Imk_storage.Page_cache.t ->
  image:string ->
  off:int ->
  len:int ->
  bytes
(** [blk_read charge cache ~image ~off ~len] serves a guest block read
    from the backing file through the host page cache, charging cold or
    warm I/O for the requested span only (block devices are read lazily,
    unlike kernel images). Raises [Not_found] if the backing file is
    missing and [Invalid_argument] if the read is out of range. *)
