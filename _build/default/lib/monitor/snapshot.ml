open Imk_memory
open Imk_vclock

type t = {
  memory : bytes;  (** full guest image *)
  params : Imk_guest.Boot_params.t;
  config : Vm_config.t;
}

let capture (r : Vmm.boot_result) =
  {
    memory = Bytes.copy (Guest_mem.raw r.Vmm.mem);
    params = r.Vmm.params;
    config = r.Vmm.config;
  }

let encoded_bytes t = Bytes.length t.memory

let layout_seed_of t =
  let text_pa = t.params.Imk_guest.Boot_params.phys_load in
  let probe = min (256 * 1024) (Bytes.length t.memory - text_pa) in
  t.params.Imk_guest.Boot_params.virt_base
  lxor Imk_util.Crc.crc32 t.memory text_pa probe

let page = 4096

let restore ch t ~working_set_pages =
  let cm = Charge.model ch in
  Charge.span ch Trace.In_monitor "snapshot-restore" (fun () ->
      (* CoW mapping setup: per-page bookkeeping across the image *)
      let pages = (Bytes.length t.memory + page - 1) / page in
      Charge.pay ch
        (int_of_float (cm.Cost_model.pte_write_ns *. float_of_int pages));
      (* first-touch faults of the working set: each fault copies a page *)
      Charge.pay ch
        (Cost_model.memcpy_cost cm ~in_guest:false (working_set_pages * page));
      Charge.pay ch (int_of_float cm.Cost_model.vmm_entry_ns));
  (* the clone itself: in a real CoW restore this is lazy; the simulation
     materializes it so the guest is fully inspectable *)
  let mem = Guest_mem.create ~size:(Bytes.length t.memory) in
  Guest_mem.write_bytes mem ~pa:0 t.memory;
  let stats = Imk_guest.Runtime.verify_boot mem t.params in
  { Vmm.config = t.config; params = t.params; stats; mem }

let verify_restored (r : Vmm.boot_result) =
  Imk_guest.Runtime.verify_boot r.Vmm.mem r.Vmm.params
