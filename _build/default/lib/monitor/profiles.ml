type t = { name : string; vmm_init_ns : int; io_setup_ns : int }

let firecracker =
  { name = "firecracker"; vmm_init_ns = 4_600_000; io_setup_ns = 400_000 }

let qemu = { name = "qemu"; vmm_init_ns = 52_000_000; io_setup_ns = 3_000_000 }

let solo5 = { name = "solo5"; vmm_init_ns = 650_000; io_setup_ns = 50_000 }

let by_name = function
  | "firecracker" -> Some firecracker
  | "qemu" -> Some qemu
  | "solo5" -> Some solo5
  | _ -> None
