(** VMM cost profiles.

    §2.2 cross-checks the Firecracker findings on QEMU: "due to
    differences in the implementations ... the time spent in the
    hypervisor varies", but the conclusions hold. A profile captures the
    implementation-dependent constants; everything else (loading,
    randomization, guest behaviour) is shared. *)

type t = {
  name : string;
  vmm_init_ns : int;
      (** process start to ready-to-load: device model + memory setup.
          Firecracker ≈ 5 ms; QEMU ≈ 55 ms (full PC machine model). *)
  io_setup_ns : int;  (** virtio/MMIO region wiring before entry *)
}

val firecracker : t
val qemu : t

val solo5 : t
(** A ukvm-style unikernel monitor (§6/§7): almost no device model and a
    sub-millisecond path to VM entry. *)

val by_name : string -> t option
