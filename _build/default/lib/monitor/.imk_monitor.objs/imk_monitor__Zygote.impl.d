lib/monitor/zygote.ml: Array Hashtbl Imk_entropy Int64 Snapshot Vmm
