lib/monitor/devices.ml: Bytes Imk_storage Imk_vclock Profiles
