lib/monitor/vm_config.mli: Devices Imk_kernel Profiles
