lib/monitor/profiles.ml:
