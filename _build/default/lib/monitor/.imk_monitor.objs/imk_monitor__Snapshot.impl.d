lib/monitor/snapshot.ml: Bytes Charge Cost_model Guest_mem Imk_guest Imk_memory Imk_util Imk_vclock Trace Vm_config Vmm
