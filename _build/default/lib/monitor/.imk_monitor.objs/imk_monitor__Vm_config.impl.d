lib/monitor/vm_config.ml: Devices Imk_kernel Profiles
