lib/monitor/vmm.mli: Imk_guest Imk_memory Imk_storage Imk_vclock Vm_config
