lib/monitor/profiles.mli:
