lib/monitor/zygote.mli: Imk_entropy Imk_storage Imk_vclock Vm_config Vmm
