lib/monitor/snapshot.mli: Imk_guest Imk_vclock Vmm
