lib/monitor/devices.mli: Imk_storage Imk_vclock Profiles
