(** MicroVM configuration.

    Mirrors the four Firecracker builds of §5.1 as [flavor]s:
    [Baseline] (stock v0.26: direct uncompressed boot only),
    [Bzimage_support] (the unmerged bzImage patch), [In_monitor_kaslr]
    and [In_monitor_fgkaslr] (the paper's implementations; each also
    supports everything the previous flavors do). The relocation file is
    the extra runtime argument of Figure 8. *)

type flavor = Baseline | Bzimage_support | In_monitor_kaslr | In_monitor_fgkaslr

val flavor_name : flavor -> string

type rando_mode = Rando_off | Rando_kaslr | Rando_fgkaslr

type kallsyms_policy = Kallsyms_eager | Kallsyms_deferred

type orc_policy = Orc_update | Orc_skip

type protocol = Linux64 | Pvh
(** Direct-boot protocols for uncompressed kernels (§2.2): the 64-bit
    Linux boot protocol and Xen PVH. They differ in how boot-time system
    information is conveyed; both skip the bootstrap loader. *)

type loader_policy = Loader_default | Loader_stripped
(** Which bootstrap loader a bzImage boot runs: the stock one (eager
    kallsyms fixup) or the paper's stripped comparator (§4.3). *)

type t = {
  flavor : flavor;
  profile : Profiles.t;
  kernel_path : string;  (** image name on the host disk *)
  relocs_path : string option;  (** the Figure 8 extra argument *)
  kernel_config : Imk_kernel.Config.t;
      (** build configuration of the kernel being booted (the monitor
          would get these constants from the config/ELF notes, §4.3) *)
  mem_bytes : int;
  rando : rando_mode;
  kallsyms : kallsyms_policy;
  orc : orc_policy;
  protocol : protocol;
  loader : loader_policy;
  boot_args : string;
      (** guest kernel command line; the bootstrap loader honours
          [nokaslr] and [nofgkaslr] flags, as Linux does (§5.1) *)
  initrd_path : string option;  (** optional initial ramdisk image *)
  devices : Devices.t list;
      (** attached devices; empty by default so paper-calibrated boot
          numbers are device-free *)
  seed : int64;  (** host entropy-pool seed for this boot *)
}

val make :
  ?flavor:flavor ->
  ?profile:Profiles.t ->
  ?relocs_path:string option ->
  ?mem_bytes:int ->
  ?rando:rando_mode ->
  ?kallsyms:kallsyms_policy ->
  ?orc:orc_policy ->
  ?protocol:protocol ->
  ?loader:loader_policy ->
  ?boot_args:string ->
  ?initrd_path:string option ->
  ?devices:Devices.t list ->
  ?seed:int64 ->
  kernel_path:string ->
  kernel_config:Imk_kernel.Config.t ->
  unit ->
  t
(** Defaults: Firecracker profile, 256 MiB (the paper's baseline VM
    size), randomization off, eager kallsyms, ORC skipped, flavor
    inferred from [rando] (baseline when off), Firecracker's standard
    command line, no initrd. *)
