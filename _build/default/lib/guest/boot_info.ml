open Imk_util
open Imk_memory

type protocol = Proto_linux64 | Proto_pvh

let protocol_name = function
  | Proto_linux64 -> "linux64"
  | Proto_pvh -> "pvh"

type e820_entry = { base : int; size : int; usable : bool }

let e820_of_mem ~mem_bytes =
  let low = 640 * 1024 in
  let hole_end = 1024 * 1024 in
  [
    { base = 0; size = low; usable = true };
    { base = low; size = hole_end - low; usable = false };
    { base = hole_end; size = mem_bytes - hole_end; usable = true };
  ]

type t = {
  proto : protocol;
  cmdline : string;
  e820 : e820_entry list;
  initrd : (int * int) option;
}

let zero_page_pa = 0x7000
let cmdline_pa = 0x20000
let max_cmdline = 2047
let max_e820 = 128

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let magic_of = function
  | Proto_linux64 -> 0x53726448 (* "HdrS", the Linux setup-header magic *)
  | Proto_pvh -> 0x336ec578 (* XEN_HVM_START_MAGIC_VALUE *)

let proto_of_magic m =
  if m = magic_of Proto_linux64 then Proto_linux64
  else if m = magic_of Proto_pvh then Proto_pvh
  else fail "bad boot-info magic %#x" m

(* layout at zero_page_pa:
   u32 magic | u32 cmdline_len | u64 cmdline_ptr |
   u64 initrd_addr | u64 initrd_len (0/0 = none) |
   u32 e820_count | u32 pad | e820 entries (u64 base, u64 size, u32 type, u32 pad) *)
let header_bytes = 40
let e820_entry_bytes = 24

let write mem t =
  if String.length t.cmdline > max_cmdline then fail "command line too long";
  let n = List.length t.e820 in
  if n > max_e820 then fail "too many e820 entries";
  let buf = Bytes.make (header_bytes + (n * e820_entry_bytes)) '\000' in
  Byteio.set_u32 buf 0 (magic_of t.proto);
  Byteio.set_u32 buf 4 (String.length t.cmdline);
  Byteio.set_addr buf 8 cmdline_pa;
  (match t.initrd with
  | None -> ()
  | Some (addr, len) ->
      Byteio.set_addr buf 16 addr;
      Byteio.set_addr buf 24 len);
  Byteio.set_u32 buf 32 n;
  List.iteri
    (fun i e ->
      let off = header_bytes + (i * e820_entry_bytes) in
      Byteio.set_addr buf off e.base;
      Byteio.set_addr buf (off + 8) e.size;
      Byteio.set_u32 buf (off + 16) (if e.usable then 1 else 2))
    t.e820;
  Guest_mem.write_bytes mem ~pa:zero_page_pa buf;
  let cl = Bytes.make (String.length t.cmdline + 1) '\000' in
  Byteio.blit_string t.cmdline cl 0;
  Guest_mem.write_bytes mem ~pa:cmdline_pa cl

let read mem =
  let hdr =
    try Guest_mem.read_bytes mem ~pa:zero_page_pa ~len:header_bytes
    with Guest_mem.Fault m -> fail "boot info unreadable: %s" m
  in
  let proto = proto_of_magic (Byteio.get_u32 hdr 0) in
  let cmdline_len = Byteio.get_u32 hdr 4 in
  if cmdline_len > max_cmdline then fail "implausible command-line length";
  let cmdline_ptr = Byteio.get_addr hdr 8 in
  let cmdline =
    try
      Bytes.to_string
        (Guest_mem.read_bytes mem ~pa:cmdline_ptr ~len:cmdline_len)
    with Guest_mem.Fault m -> fail "command line unreadable: %s" m
  in
  let initrd_addr = Byteio.get_addr hdr 16 in
  let initrd_len = Byteio.get_addr hdr 24 in
  let initrd =
    if initrd_len = 0 then None else Some (initrd_addr, initrd_len)
  in
  let n = Byteio.get_u32 hdr 32 in
  if n > max_e820 then fail "implausible e820 count";
  let entries =
    try
      Guest_mem.read_bytes mem
        ~pa:(zero_page_pa + header_bytes)
        ~len:(n * e820_entry_bytes)
    with Guest_mem.Fault m -> fail "e820 unreadable: %s" m
  in
  let e820 =
    List.init n (fun i ->
        let off = i * e820_entry_bytes in
        {
          base = Byteio.get_addr entries off;
          size = Byteio.get_addr entries (off + 8);
          usable = Byteio.get_u32 entries (off + 16) = 1;
        })
  in
  { proto; cmdline; e820; initrd }

let validate mem ~mem_bytes =
  let t = read mem in
  let usable_total = ref 0 in
  let prev_end = ref (-1) in
  List.iter
    (fun e ->
      if e.size <= 0 then fail "e820 entry with non-positive size";
      if e.base < !prev_end then fail "overlapping e820 entries";
      if e.base + e.size > mem_bytes then fail "e820 entry beyond guest memory";
      prev_end := e.base + e.size;
      if e.usable then usable_total := !usable_total + e.size)
    t.e820;
  if !usable_total * 10 < mem_bytes * 9 then
    fail "e820 map loses too much memory (%d of %d usable)" !usable_total
      mem_bytes;
  (match t.initrd with
  | None -> ()
  | Some (addr, len) ->
      let covered =
        List.exists
          (fun e -> e.usable && addr >= e.base && addr + len <= e.base + e.size)
          t.e820
      in
      if not covered then fail "initrd outside usable memory");
  t

let has_flag t flag =
  String.split_on_char ' ' t.cmdline |> List.exists (String.equal flag)
