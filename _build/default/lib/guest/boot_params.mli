(** What the kernel knows when it starts executing.

    A real kernel discovers its physical and virtual base from where it is
    running and finds its own tables through linked (relocated) symbols;
    this record is the explicit equivalent. The monitor (or bootstrap
    loader) fills it in before jumping to the entry point.

    For the deferred-kallsyms ablation (§4.3) the monitor can leave the
    kallsyms table stale and stash the section displacement map in guest
    memory as a setup-data blob the guest reads on first kallsyms
    access. *)

type kernel_info = {
  link_entry_va : int;
  link_rodata_va : int;
  link_kallsyms_va : int;
  link_extab_va : int;
  link_orc_va : int option;
  n_functions : int;
  modeled_functions : int;  (** actual × scale, for cost accounting *)
}

val kernel_info_of_built : Imk_kernel.Image.built -> kernel_info
(** Reads the link-time section addresses out of a built image. *)

val kernel_info_of_elf : Imk_elf.Types.t -> Imk_kernel.Config.t -> kernel_info
(** Same, from a parsed ELF (the boot-time path, where the build record is
    not available): function count from the symbol table. *)

type t = {
  phys_load : int;  (** guest-phys address of the image base *)
  virt_base : int;  (** randomized VA of the image base (link_base + Δ) *)
  entry_va : int;  (** randomized entry point *)
  mem_bytes : int;
  kernel : kernel_info;
  kallsyms_fixed : bool;
      (** true when the randomizer eagerly fixed up kallsyms (or nothing
          moved); false = the paper's deferred-fixup proposal *)
  orc_fixed : bool;
      (** whether the ORC table (if any) reflects the shuffle; the paper's
          in-monitor implementation leaves it false *)
  setup_data_pa : int option;
      (** where the displacement blob lives for deferred fixups *)
}

val delta : t -> int
(** [delta t] is the virtual randomization offset,
    [virt_base - Addr.link_base]. *)

val va_to_pa : t -> int -> int
(** [va_to_pa t va] translates a randomized kernel VA to guest-physical.
    Raises [Runtime_fault] via the caller's memory access when out of
    range — translation itself is pure arithmetic. *)

(** {1 Setup data blob} (displacement table for deferred fixups) *)

val default_setup_data_pa : int
(** Conventional guest-physical address of the blob: the real-mode data
    area at 0x90000, free in both boot paths. *)

val setup_data_encode : (int * int * int) array -> bytes
(** [(old_va, new_va, size)] triples, as produced by
    [Fgkaslr.displacement_pairs]. *)

val setup_data_decode : bytes -> (int * int * int) array
(** Raises [Invalid_argument] on a malformed blob. *)

val setup_data_read : Imk_memory.Guest_mem.t -> pa:int -> (int * int * int) array
(** [setup_data_read mem ~pa] decodes a blob in guest memory. *)
